package results

import (
	"fmt"
	"strings"
)

// Table renders a fixed-width text table — the formatting behind every
// report the repository regenerates from the paper.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
	widths []int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

// AddRow appends a row of cells; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	for i, c := range cells {
		if i < len(t.widths) && len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with %v, floats with prec
// decimal places.
func (t *Table) AddRowf(prec int, cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.*f", prec, v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", t.widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", t.widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
