package results

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestDerivedMetrics(t *testing.T) {
	r := Run{
		Cycles: 1000, Committed: 1500, Mispredicts: 3,
		ReplayedMiss: 40, ReplayedBank: 2,
		L1Hits: 90, L1Misses: 10,
		SchedWakeups: 2000, SchedEvents: 500,
	}
	if got := r.IPC(); got != 1.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := r.Replayed(); got != 42 {
		t.Errorf("Replayed = %v", got)
	}
	if got := r.MPKI(); got != 2 {
		t.Errorf("MPKI = %v", got)
	}
	if got := r.L1MissRate(); got != 0.1 {
		t.Errorf("L1MissRate = %v", got)
	}
	if r.WakeupsPerCycle() != 2 || r.EventsPerCycle() != 0.5 {
		t.Errorf("per-cycle diagnostics: %v %v", r.WakeupsPerCycle(), r.EventsPerCycle())
	}
	var zero Run
	if zero.IPC() != 0 || zero.MPKI() != 0 || zero.L1MissRate() != 0 ||
		zero.WakeupsPerCycle() != 0 || zero.EventsPerCycle() != 0 {
		t.Error("zero-value Run must not divide by zero")
	}
}

func TestAccumulatePoolsCountersAndElapsed(t *testing.T) {
	a := Run{Workload: "gzip", Config: "Baseline_0", Cycles: 10, Committed: 20, Elapsed: time.Second}
	b := Run{Workload: "gzip", Config: "Baseline_0", Cycles: 1, Committed: 2, Elapsed: time.Second}
	a.Accumulate(&b)
	if a.Cycles != 11 || a.Committed != 22 {
		t.Fatalf("counters not pooled: %+v", a)
	}
	if a.Elapsed != 2*time.Second {
		t.Fatalf("Elapsed not summed: %v", a.Elapsed)
	}
	if a.Workload != "gzip" || a.Config != "Baseline_0" {
		t.Fatal("identity fields must be untouched")
	}
}

func TestSpeedupAndGMean(t *testing.T) {
	base := Run{Cycles: 100, Committed: 100} // IPC 1
	fast := Run{Cycles: 100, Committed: 150} // IPC 1.5
	if got := Speedup(&fast, &base); got != 1.5 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(&fast, &Run{}); got != 0 {
		t.Errorf("Speedup vs zero baseline = %v", got)
	}
	if got := GMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GMean = %v", got)
	}
	if got := GMean([]float64{2, 0, -3, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GMean must skip non-positive entries, got %v", got)
	}
	if got := GMean(nil); got != 0 {
		t.Errorf("GMean(nil) = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T", "name", "x")
	tb.AddRowf(2, "a", 1.239)
	tb.AddRow("long-name-cell")
	out := tb.String()
	for _, want := range []string{"== T ==", "name", "1.24", "long-name-cell"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}
