// Package results holds the typed outcome of specsched simulations: the
// per-run counter record (Run) with the paper's derived metrics, plus the
// aggregation and formatting helpers (geometric-mean speedups, fixed-width
// report tables) used to reproduce the paper's reporting conventions.
//
// The package is pure data — it imports nothing from the simulator — so it
// can be depended on by any consumer of specsched results without pulling
// in the simulation engine.
package results

import (
	"math"
	"reflect"
	"time"
)

// Run holds the counters of a single simulation run (one workload on one
// configuration). All counters describe the measurement window only;
// warmup µ-ops are excluded.
type Run struct {
	Workload string
	Config   string

	// Cycles is the number of simulated cycles in the measurement window.
	Cycles int64
	// Committed is the number of correct-path µ-ops retired.
	Committed int64

	// Issued is the total number of issue events, including re-issues of
	// replayed µ-ops and wrong-path issues.
	Issued int64
	// Unique is the number of distinct µ-ops issued at least once
	// (correct or wrong path) — the paper's "Unique" category.
	Unique int64
	// ReplayedMiss counts µ-ops squashed and re-issued because of an L1
	// load miss that was speculatively scheduled as a hit ("RpldMiss").
	ReplayedMiss int64
	// ReplayedBank counts µ-ops squashed and re-issued because of an L1
	// bank conflict ("RpldBank").
	ReplayedBank int64

	// MissReplayEvents and BankReplayEvents count replay trigger events
	// by cause (each event squashes a group of µ-ops).
	MissReplayEvents int64
	BankReplayEvents int64

	// Loads committed, L1 load hits/misses, and bank-conflict-delayed
	// loads observed at execute (correct path and wrong path alike).
	Loads         int64
	L1Hits        int64
	L1Misses      int64
	BankConflicts int64

	// Branch predictor performance.
	Branches    int64
	Mispredicts int64

	// MemOrderViolations counts loads squashed-refetched by older stores.
	MemOrderViolations int64
	// LateOperands counts µ-ops reaching Execute before a source was on
	// the bypass — a model-consistency diagnostic that should stay ~0.
	LateOperands int64

	// Scheduler occupancy sampling (sum over cycles, for averages).
	IQOccupancySum  int64
	ROBOccupancySum int64

	// Hit/miss arbitration outcomes: how many loads were allowed to wake
	// dependents speculatively vs. forced to wait for the hit signal.
	LoadsSpecWakeup    int64
	LoadsDelayedWakeup int64

	// Simulator-side diagnostics of the event-driven scheduler
	// implementation (zero under the scan implementation and
	// architecturally meaningless): wakeup-list flushes, timing-wheel
	// events, and quiescent-cycle skipping activity.
	SchedWakeups  int64
	SchedEvents   int64
	SkippedCycles int64
	SkipSpans     int64

	// Bitmap ready-selection diagnostics (the default event-scheduler
	// ready queue): candidates consumed by the bitmap pick loop and
	// occupancy words scanned. Zero under the scan implementation and
	// under the list-based event ready queues.
	SchedBitmapPicks int64
	SchedBitmapWords int64

	// Elapsed is the wall-clock time spent simulating: the measurement
	// window for Simulator runs, the whole cell (construction + warmup +
	// measure) for sweep cells. Zero for checkpoint-cached sweep cells.
	Elapsed time.Duration `json:",omitempty"`
}

// IPC returns committed µ-ops per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Replayed returns the total number of replayed µ-ops.
func (r *Run) Replayed() int64 { return r.ReplayedMiss + r.ReplayedBank }

// MPKI returns branch mispredictions per 1000 committed µ-ops.
func (r *Run) MPKI() float64 {
	if r.Committed == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Committed)
}

// L1MissRate returns the L1 load miss ratio.
func (r *Run) L1MissRate() float64 {
	if r.L1Hits+r.L1Misses == 0 {
		return 0
	}
	return float64(r.L1Misses) / float64(r.L1Hits+r.L1Misses)
}

// WakeupsPerCycle reports the event scheduler's consumer-wakeup rate — a
// simulator-throughput diagnostic, not a property of the simulated machine.
func (r *Run) WakeupsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SchedWakeups) / float64(r.Cycles)
}

// EventsPerCycle reports the event scheduler's timing-wheel event rate.
func (r *Run) EventsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SchedEvents) / float64(r.Cycles)
}

// Accumulate adds every int64 counter of o into r — the pooling step that
// folds seed replicas of one (config, workload) cell into a single Run
// whose ratio statistics (IPC, miss rate, MPKI) become pooled-over-replicas
// values. Elapsed durations are summed too; the identity fields (Workload,
// Config) are left untouched and must already agree.
func (r *Run) Accumulate(o *Run) {
	rv := reflect.ValueOf(r).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < rv.NumField(); i++ {
		if f := rv.Field(i); f.Kind() == reflect.Int64 {
			f.SetInt(f.Int() + ov.Field(i).Int())
		}
	}
}

// Speedup returns r's performance relative to base (IPC ratio): >1 is
// faster. It is the paper's per-benchmark normalization.
func Speedup(r, base *Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// GMean returns the geometric mean of xs, ignoring non-positive values
// (the paper: "when averaging speedups, the geometric mean is used").
func GMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
