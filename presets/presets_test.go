package presets_test

import (
	"sort"
	"strings"
	"testing"

	"specsched/presets"
)

// TestNamesResolve pins the listing/resolution contract: every name
// Names() returns must resolve (Valid), the list is sorted and free of
// duplicates, and the simulator-study _IQ256 variants are deliberately
// not listed.
func TestNamesResolve(t *testing.T) {
	names := presets.Names()
	if len(names) == 0 {
		t.Fatal("Names() is empty")
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("Names() lists %q twice", n)
		}
		seen[n] = true
		if !presets.Valid(n) {
			t.Errorf("listed preset %q does not resolve", n)
		}
		if strings.HasSuffix(n, "_IQ256") {
			t.Errorf("Names() lists widened-window study point %q", n)
		}
	}
}

// TestWideWindowRoundTrips pins the _IQ256 suffix contract on every
// registered preset: WideWindow(name) appends exactly the suffix, the
// result resolves wherever a preset name is accepted, and an unregistered
// base does not become valid by suffixing.
func TestWideWindowRoundTrips(t *testing.T) {
	for _, n := range presets.Names() {
		wide := presets.WideWindow(n)
		if wide != n+"_IQ256" {
			t.Errorf("WideWindow(%q) = %q, want %q", n, wide, n+"_IQ256")
		}
		if !presets.Valid(wide) {
			t.Errorf("widened preset %q does not resolve", wide)
		}
		if got := strings.TrimSuffix(wide, "_IQ256"); got != n {
			t.Errorf("suffix round trip of %q lost the base: %q", n, got)
		}
	}
	if presets.Valid(presets.WideWindow("NotAPreset_9")) {
		t.Error("widened unknown preset resolves")
	}
	if presets.Valid("_IQ256") {
		t.Error("bare suffix resolves")
	}
}

// TestBuilderNamesAreRegistered checks every name-building helper against
// the registry: for each registered delay, the built name must be listed
// (and thus resolvable); unregistered delays build names that do not
// resolve.
func TestBuilderNamesAreRegistered(t *testing.T) {
	listed := map[string]bool{}
	for _, n := range presets.Names() {
		listed[n] = true
	}
	builders := []struct {
		label string
		build func(delay int) string
	}{
		{"Baseline", presets.Baseline},
		{"SpecSched banked", func(d int) string { return presets.SpecSched(d, true) }},
		{"SpecSched dual", func(d int) string { return presets.SpecSched(d, false) }},
		{"Shift", presets.Shift},
		{"BankPred", presets.BankPred},
		{"Ctr", presets.Ctr},
		{"Filter", presets.Filter},
		{"Combined", presets.Combined},
		{"Crit", presets.Crit},
	}
	for _, d := range presets.Delays() {
		for _, b := range builders {
			name := b.build(d)
			if !listed[name] {
				t.Errorf("%s(%d) = %q is not in Names()", b.label, d, name)
			}
		}
	}
	if !listed[presets.BaselineSingleLoad()] {
		t.Errorf("BaselineSingleLoad() = %q is not in Names()", presets.BaselineSingleLoad())
	}
	if presets.Valid(presets.Baseline(3)) {
		t.Error("Baseline(3) resolves; 3 is not a registered delay")
	}
	if got := presets.Delays(); len(got) != 4 || got[0] != 0 || got[3] != 6 {
		t.Errorf("Delays() = %v, want [0 2 4 6]", got)
	}
}
