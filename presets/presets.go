// Package presets names the machine configurations evaluated in Perais et
// al.'s ISCA 2015 paper. Configurations are addressed *by name* throughout
// the public specsched API — simulator options, sweep grids, and sweep
// checkpoints all key on the preset name — so this package deals in names:
// it lists the registered ones and builds well-formed names for the
// delay-parameterized families.
//
// The registered delays are 0, 2, 4 and 6 cycles of issue-to-execute delay
// (the paper's sweep); a name built for any other delay is rejected
// wherever it is used, with specsched.ErrInvalidConfig.
package presets

import "specsched/internal/config"

// Names returns every registered preset name in sorted order.
func Names() []string { return config.Presets() }

// Valid reports whether name resolves to a registered preset (including
// WideWindow-suffixed variants).
func Valid(name string) bool {
	_, err := config.Preset(name)
	return err == nil
}

// Delays returns the issue-to-execute delays the preset families are
// registered for: 0, 2, 4, 6.
func Delays() []int { return append([]int(nil), config.PresetDelays...) }

// Baseline names Baseline_N: no speculative scheduling (load dependents
// wait for the data), dual-ported L1D. Baseline(0) is the normalization
// baseline of the paper's §5.
func Baseline(delay int) string { return config.Baseline(delay).Name }

// BaselineSingleLoad names Baseline_0 restricted to one load issue per
// cycle (the first bar of the paper's Fig. 3).
func BaselineSingleLoad() string { return config.BaselineSingleLoad().Name }

// SpecSched names SpecSched_N (banked L1) or SpecSched_N_dual: speculative
// scheduling with the Always Hit policy and recovery-buffer replay.
func SpecSched(delay int, banked bool) string { return config.SpecSched(delay, banked).Name }

// Shift names SpecSched_N_Shift: SpecSched plus Schedule Shifting (§5.1).
func Shift(delay int) string { return config.SpecSchedShift(delay).Name }

// BankPred names SpecSched_N_BankPred: Schedule Shifting applied only when
// a Yoaz-style bank predictor expects the issue group's loads to collide.
func BankPred(delay int) string { return config.SpecSchedBankPred(delay).Name }

// Ctr names SpecSched_N_Ctr: the Alpha 21264 4-bit global counter drives
// speculative wakeup (§5.2).
func Ctr(delay int) string { return config.SpecSchedCtr(delay).Name }

// Filter names SpecSched_N_Filter: per-PC hit/miss filter backed by the
// global counter (§5.2).
func Filter(delay int) string { return config.SpecSchedFilter(delay).Name }

// Combined names SpecSched_N_Combined: Schedule Shifting plus hit/miss
// filtering (§5.3).
func Combined(delay int) string { return config.SpecSchedCombined(delay).Name }

// Crit names SpecSched_N_Crit: Combined plus criticality-gated wakeup —
// the paper's best configuration (§5.3).
func Crit(delay int) string { return config.SpecSchedCrit(delay).Name }

// WideWindow names the widened-window study point of any preset: a
// 256-entry IQ with the ROB, LSQ, and PRF grown to keep it fillable. The
// variant is resolvable wherever a preset name is accepted but is not part
// of Names() — it measures the simulator, not the paper.
func WideWindow(name string) string { return name + "_IQ256" }
