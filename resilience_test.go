package specsched_test

// Public-façade resilience tests: the chaos/retry/watchdog options and the
// failure report, driven purely through the specsched API (the same surface
// cmd/experiments uses).

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"specsched"
	"specsched/results"
)

// TestSweepChaosConvergesPublic: a public sweep with injected panics and
// transient errors plus a retry budget finishes every cell, bit-identical
// to a fault-free sweep, and the failure report accounts for the recovery.
func TestSweepChaosConvergesPublic(t *testing.T) {
	clean, err := specsched.NewSweep(sweepOpts(specsched.SweepJobs(4))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	sweep := specsched.NewSweep(sweepOpts(
		specsched.SweepJobs(4),
		specsched.SweepChaos(specsched.Chaos{Seed: 7, PanicRate: 0.4, TransientRate: 0.4}),
		specsched.SweepRetries(4),
		specsched.SweepRetryBackoff(time.Millisecond, 0),
	)...)
	cells, err := sweep.Run(ctx)
	if err != nil {
		t.Fatalf("chaos sweep did not converge: %v", err)
	}
	retried := 0
	for i, c := range cells {
		if c.Err != nil {
			t.Fatalf("cell %s failed: %v", c.CellRef, c.Err)
		}
		got, want := c.Run, clean[i].Run
		got.Elapsed, want.Elapsed = 0, 0
		if got != want {
			t.Fatalf("cell %s: chaos run diverged from fault-free run", c.CellRef)
		}
		if c.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("chaos plan injected nothing; rates or seed wiring broken")
	}
	fr := sweep.FailureReport()
	if len(fr.Failed) != 0 {
		t.Fatalf("FailureReport lists %d failed cells after a converged sweep: %+v", len(fr.Failed), fr.Failed)
	}
	if fr.Retries == 0 || fr.Recovered == 0 {
		t.Fatalf("FailureReport Retries=%d Recovered=%d, want both > 0", fr.Retries, fr.Recovered)
	}
}

// TestSweepPermanentFailuresReported: permanent (bad-trace-class) failures
// are not retried, surface per cell as ErrBadTrace, and land in the
// failure report marked non-transient.
func TestSweepPermanentFailuresReported(t *testing.T) {
	sweep := specsched.NewSweep(sweepOpts(
		specsched.SweepChaos(specsched.Chaos{CorruptTraceRate: 1}),
		specsched.SweepRetries(3),
		specsched.SweepRetryBackoff(time.Millisecond, 0),
	)...)
	cells, err := sweep.Run(ctx)
	if err == nil {
		t.Fatal("sweep with every cell corrupt reported success")
	}
	for _, c := range cells {
		if !errors.Is(c.Err, specsched.ErrBadTrace) {
			t.Fatalf("cell %s: err = %v, want ErrBadTrace", c.CellRef, c.Err)
		}
		if c.Attempts != 1 {
			t.Fatalf("cell %s: %d attempts on a permanent failure", c.CellRef, c.Attempts)
		}
	}
	fr := sweep.FailureReport()
	if len(fr.Failed) != len(cells) {
		t.Fatalf("FailureReport lists %d of %d failed cells", len(fr.Failed), len(cells))
	}
	for _, f := range fr.Failed {
		if f.Transient {
			t.Fatalf("cell %s reported transient; corrupt traces are permanent", f.Cell)
		}
		if !errors.Is(f.Err, specsched.ErrBadTrace) {
			t.Fatalf("cell %s: report err = %v, want ErrBadTrace", f.Cell, f.Err)
		}
	}
	if fr.Retries != 0 {
		t.Fatalf("FailureReport Retries=%d for permanent-only failures", fr.Retries)
	}
}

// TestSweepTornCheckpointSalvageResume: a checkpointed sweep whose every
// flush is injected torn still leaves a resumable file — the resumed sweep
// salvages it, reports the salvage, and ends bit-identical to a clean run.
func TestSweepTornCheckpointSalvageResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	clean, err := specsched.NewSweep(sweepOpts()...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := specsched.NewSweep(sweepOpts(
		specsched.SweepCheckpoint(path),
		specsched.SweepChaos(specsched.Chaos{TornWriteRate: 1}),
	)...).Run(ctx); err != nil {
		t.Fatalf("torn-flush sweep failed: %v", err)
	}

	resumed := specsched.NewSweep(sweepOpts(specsched.SweepCheckpoint(path))...)
	cells, err := resumed.Run(ctx)
	if err != nil {
		t.Fatalf("resume from torn checkpoint failed: %v", err)
	}
	cached := 0
	byRef := map[specsched.CellRef]results.Run{}
	for _, c := range clean {
		byRef[c.CellRef] = c.Run
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatalf("cell %s failed on resume: %v", c.CellRef, c.Err)
		}
		got, want := c.Run, byRef[c.CellRef]
		got.Elapsed, want.Elapsed = 0, 0
		if got != want {
			t.Fatalf("cell %s: resumed run diverged from clean run", c.CellRef)
		}
		if c.Cached {
			cached++
		}
	}
	if cached == 0 {
		t.Fatal("salvage recovered no cells from the torn checkpoint")
	}
	if fr := resumed.FailureReport(); fr.CheckpointSalvage == "" {
		t.Fatal("FailureReport does not mention the checkpoint salvage")
	}
	t.Logf("salvaged %d/%d cells", cached, len(cells))
}

// TestSweepStallTimeoutPublic: the public stall watchdog option reaches the
// pool — a sweep over real cells with a generous stall window succeeds
// (real cells heartbeat), proving the wiring doesn't kill healthy cells.
func TestSweepStallTimeoutPublic(t *testing.T) {
	cells, err := specsched.NewSweep(sweepOpts(
		specsched.SweepStallTimeout(30*time.Second),
		specsched.SweepCellTimeout(5*time.Minute),
	)...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Fatalf("cell %s: %v", c.CellRef, c.Err)
		}
	}
}
