package specsched_test

import (
	"sync"
	"testing"

	"specsched"
	"specsched/results"
)

// TestSweepCellCacheDedup is the cross-sweep dedup contract: two sweeps
// sharing a CellCache produce cells bit-identical to an uncached run,
// while the second sweep simulates nothing — every cell is served from
// the cache and marked Deduped.
func TestSweepCellCacheDedup(t *testing.T) {
	baseline, err := specsched.NewSweep(sweepOpts()...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cache := specsched.NewCellCache(0)
	first, err := specsched.NewSweep(sweepOpts(specsched.SweepCellCache(cache))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := specsched.NewSweep(sweepOpts(specsched.SweepCellCache(cache))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got []specsched.Cell, wantDeduped bool) {
		t.Helper()
		if len(got) != len(baseline) {
			t.Fatalf("%s sweep: %d cells, want %d", name, len(got), len(baseline))
		}
		for i := range baseline {
			a, b := baseline[i], got[i]
			if a.CellRef != b.CellRef {
				t.Fatalf("%s sweep: cell order diverged at %d: %s vs %s", name, i, a.CellRef, b.CellRef)
			}
			ar, br := a.Run, b.Run
			ar.Elapsed, br.Elapsed = 0, 0
			if ar != br {
				t.Fatalf("%s sweep: cell %s not bit-identical to uncached run", name, a.CellRef)
			}
			if b.Deduped != wantDeduped {
				t.Fatalf("%s sweep: cell %s Deduped = %v, want %v", name, b.CellRef, b.Deduped, wantDeduped)
			}
		}
	}
	check("first", first, false)
	check("second", second, true)

	st := cache.Stats()
	if st.Simulated != int64(len(baseline)) {
		t.Fatalf("cache simulated %d cells, want %d (one per distinct cell)", st.Simulated, len(baseline))
	}
	if st.Hits+st.Deduped != int64(len(baseline)) {
		t.Fatalf("cache saved %d+%d cells, want %d", st.Hits, st.Deduped, len(baseline))
	}
	if st.Entries == 0 {
		t.Fatal("cache retained nothing")
	}
}

// TestSweepCellCacheConcurrent: two sweeps over the same grid racing on
// one cache still simulate each distinct cell exactly once between them,
// and both arrive at the uncached results. This is the daemon's
// concurrent-jobs scenario in miniature.
func TestSweepCellCacheConcurrent(t *testing.T) {
	baseline, err := specsched.NewSweep(sweepOpts()...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cache := specsched.NewCellCache(0)
	runs := make([][]specsched.Cell, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i], errs[i] = specsched.NewSweep(sweepOpts(specsched.SweepCellCache(cache))...).Run(ctx)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	for _, cells := range runs {
		for i := range baseline {
			a, b := baseline[i].Run, cells[i].Run
			a.Elapsed, b.Elapsed = 0, 0
			if baseline[i].CellRef != cells[i].CellRef || a != b {
				t.Fatalf("racing sweeps diverged from the uncached run at %s", baseline[i].CellRef)
			}
		}
	}
	st := cache.Stats()
	if st.Simulated != int64(len(baseline)) {
		t.Fatalf("racing sweeps simulated %d cells, want exactly %d", st.Simulated, len(baseline))
	}
	if st.Hits+st.Deduped != int64(len(baseline)) {
		t.Fatalf("dedup saved %d+%d cells, want %d", st.Hits, st.Deduped, len(baseline))
	}
}

// TestFailureReportConcurrentWithResults exercises the documented
// concurrency guarantee under the race detector: FailureReport (and
// Spec) hammered from other goroutines while Results streams.
func TestFailureReportConcurrentWithResults(t *testing.T) {
	sweep := specsched.NewSweep(sweepOpts(specsched.SweepRetries(2))...)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fr := sweep.FailureReport()
				if fr.Retries < 0 {
					t.Error("impossible retry count")
					return
				}
				_ = sweep.Spec()
			}
		}()
	}

	var streamed []results.Run
	for cell, cerr := range sweep.Results(ctx) {
		if cerr != nil {
			t.Errorf("cell %s: %v", cell.CellRef, cerr)
		}
		streamed = append(streamed, cell.Run)
	}
	close(stop)
	wg.Wait()
	if len(streamed) != 8 {
		t.Fatalf("streamed %d cells, want 8", len(streamed))
	}
	if fr := sweep.FailureReport(); len(fr.Failed) != 0 {
		t.Fatalf("unexpected failures: %+v", fr.Failed)
	}
}
