package specsched

import (
	"specsched/internal/sim"
)

// CellCache is a shared, bounded (LRU) cell-result cache with single-flight
// deduplication: sweeps attached to the same cache (SweepCellCache) run
// each distinct cell at most once between them, however many of them ask
// for it and however they overlap in time. A cell's identity is its full
// configuration digest, its workload's content fingerprint (profile
// identity, or recorded-trace digest), its seed index, and the simulation
// window — exactly the inputs the deterministic per-cell seeding derives
// results from, so two cells with equal identity provably produce
// bit-identical runs and sharing is safe.
//
// It is the engine behind the specschedd daemon's cross-job dedup and
// result cache, and is just as usable in-process: a CellCache is safe for
// concurrent use by any number of sweeps.
type CellCache struct {
	d *sim.DedupCache
}

// NewCellCache returns a cache bounded to the given number of cell
// results (entries <= 0 selects a default of a few thousand; a cell
// result is a few hundred bytes).
func NewCellCache(entries int) *CellCache {
	return &CellCache{d: sim.NewDedupCache(entries)}
}

// CellCacheStats is a point-in-time snapshot of a CellCache's counters.
type CellCacheStats struct {
	// Hits counts cells served from the cache's LRU; Deduped counts cells
	// that waited on a concurrent sweep's in-flight execution of the
	// identical cell; Simulated counts cells actually executed through
	// the cache. Hits + Deduped is the simulation work the cache saved.
	Hits, Deduped, Simulated int64
	// Entries is the number of results currently retained.
	Entries int
}

// Stats snapshots the cache counters.
func (c *CellCache) Stats() CellCacheStats {
	s := c.d.Stats()
	return CellCacheStats{Hits: s.Hits, Deduped: s.Shared, Simulated: s.Executed, Entries: s.Entries}
}

// SweepCellCache attaches a shared cell cache to the sweep's raw-grid runs
// (Run and Results): cells another attached sweep already computed — or is
// concurrently computing — are served from the cache, marked Deduped, and
// are not re-simulated. Results are bit-identical with or without a cache
// attached. Report grids manage their own per-sweep cache and ignore this
// option.
func SweepCellCache(c *CellCache) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.cellCache = c })
}
