package specsched

import (
	"context"
	"errors"
	"fmt"
)

// The package's error taxonomy. Every error returned by the public API
// matches exactly one of these sentinels under errors.Is, alongside the
// underlying cause (a canceled run also matches context.Canceled, a
// deadline-exceeded one context.DeadlineExceeded).
var (
	// ErrUnknownWorkload reports a workload name that is not in the Table 2
	// suite (see WorkloadNames) and was not provided as a custom workload.
	ErrUnknownWorkload = errors.New("specsched: unknown workload")
	// ErrInvalidConfig reports an unresolvable preset name, an invalid
	// custom workload profile, or an inconsistent option combination.
	ErrInvalidConfig = errors.New("specsched: invalid configuration")
	// ErrCanceled reports a simulation or sweep stopped by context
	// cancellation. Work completed before the cancel is preserved: a sweep
	// with a checkpoint configured remains resumable.
	ErrCanceled = errors.New("specsched: canceled")
	// ErrBadTrace reports an unusable recorded µ-op trace: an unreadable
	// or non-trace file, an unsupported format version, a corrupt body
	// (truncation, mangled varints, digest mismatch), or a trace too short
	// for the simulation window it is asked to drive.
	ErrBadTrace = errors.New("specsched: bad trace")
)

// apiError attaches one of the package sentinels to a concrete cause;
// errors.Is matches both.
type apiError struct {
	sentinel error
	cause    error
}

func (e *apiError) Error() string   { return e.cause.Error() }
func (e *apiError) Unwrap() []error { return []error{e.sentinel, e.cause} }

func wrapErr(sentinel, cause error) error {
	return &apiError{sentinel: sentinel, cause: cause}
}

func wrapErrf(sentinel error, format string, args ...interface{}) error {
	return &apiError{sentinel: sentinel, cause: fmt.Errorf(format, args...)}
}

// mapCtxErr lifts context cancellation errors into the package taxonomy and
// passes every other error through unchanged.
func mapCtxErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wrapErr(ErrCanceled, err)
	}
	return err
}
