package specsched

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"time"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/experiments"
	"specsched/internal/faultinject"
	"specsched/internal/sim"
	"specsched/internal/worker"
	"specsched/results"
)

// mapCellErr lifts per-cell simulation errors into the public taxonomy:
// trace-caused failures match ErrBadTrace (exactly as the Simulator path
// reports them), cancellation matches ErrCanceled, everything else passes
// through.
func mapCellErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, sim.ErrBadTrace) || errors.Is(err, core.ErrStreamEnded) {
		return wrapErr(ErrBadTrace, err)
	}
	return mapCtxErr(err)
}

// CellRef names one cell of a sweep grid: a configuration preset, a
// workload, and a seed-replica index (0 is the workload's calibrated
// seed; higher indices are decorrelated replicas).
type CellRef struct {
	Config   string
	Workload string
	Seed     int
}

func (c CellRef) String() string {
	return fmt.Sprintf("%s/%s#%d", c.Config, c.Workload, c.Seed)
}

// Cell is one finished cell of a sweep: its coordinates plus either a
// populated Run or an Err (simulation failure, panic, timeout, or
// cancellation). Cached marks cells satisfied from a resume checkpoint
// without simulating.
type Cell struct {
	CellRef
	Run    results.Run
	Err    error
	Cached bool
	// Deduped marks cells served by a shared CellCache (SweepCellCache):
	// an identical cell computed by — or concurrently in flight on —
	// another attached sweep, not re-simulated here.
	Deduped bool
	// Attempts is how many attempts the cell took (1 = first try; >1 means
	// transient failures were retried, see SweepRetries). 0 for cached
	// and deduped cells.
	Attempts int
}

// Progress is a sweep progress snapshot delivered after every finished
// cell (checkpoint-satisfied cells included).
type Progress struct {
	Done    int // cells finished so far (failed and cached included)
	Total   int // cells in the sweep
	Failed  int // cells that errored, panicked, or timed out
	Cached  int // cells satisfied from the resume checkpoint
	Deduped int // cells served by the shared CellCache, not simulated here
	// Cell is the cell that just finished, Err its failure (nil if it
	// succeeded), Elapsed the wall clock it took (0 if cached).
	Cell    CellRef
	Err     error
	IsCache bool
	IsDedup bool
	Elapsed time.Duration
	// Attempts is how many attempts this cell took (0 for cached cells;
	// >1 means transient failures were retried).
	Attempts int
}

// Sweep runs a (configuration × workload × seed) grid on a work-stealing
// worker pool with per-cell failure isolation, deterministic merging, and
// resumable checkpoints. Construct it with NewSweep and functional
// options; consume it either all-at-once (Run) or streaming (Results).
// The same Sweep also serves the paper's named experiment reports
// (Report), sharing its simulation cache across reports.
//
// Determinism: for a fixed option set, Run's output — and the set of cells
// Results streams — is bit-identical regardless of worker count or
// completion order.
type Sweep struct {
	configs         []string
	workloads       []string
	traces          []string
	seeds           int
	jobs            int
	workers         int
	warmup          int64
	measure         int64
	scheduler       Scheduler
	timeSkip        *bool
	checkpoint      string
	cellTimeout     time.Duration
	stallTimeout    time.Duration
	retries         int
	retryBackoff    time.Duration
	maxRetryBackoff time.Duration
	abandonBudget   int
	chaos           *Chaos
	cellCache       *CellCache
	onProgress      func(Progress)

	mu        sync.Mutex
	runner    *experiments.Runner // lazy; backs Report
	simulated int64               // µ-ops simulated by raw-grid runs (Run/Results)
	failures  map[CellRef]CellFailure
	retried   int // extra attempts spent across all cells
	recovered int // cells that failed at least once but ultimately succeeded
	abandoned int // goroutines abandoned to timeouts/stalls by raw-grid pools
	salvage   string

	workerRestarts   int // worker processes respawned after a crash
	workerReassigned int // cell attempts lost to a worker death and retried elsewhere
}

// SweepConfigs sets the configuration presets of the grid (required for
// Run and Results; ignored by Report, whose experiments pick their own).
func SweepConfigs(names ...string) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.configs = append([]string(nil), names...) })
}

// SweepWorkloads restricts the workload axis (default: the full Table 2
// suite).
func SweepWorkloads(names ...string) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.workloads = append([]string(nil), names...) })
}

// SweepTraces adds recorded µ-op traces (see Workload.Record and
// cmd/tracedump) as sweep workloads, each named after its file stem
// ("corpus/mcf.trace" → "mcf"). With no SweepWorkloads the grid runs over
// the traces alone; with one, the trace names are appended to the axis. A
// trace name shadows the Table 2 profile of the same name. Each trace's
// content digest joins the checkpoint fingerprint, so resuming against a
// swapped trace file is rejected instead of mixing results. Seed replicas
// of a trace cell vary the wrong-path seed only (the recorded stream is
// fixed); replica 0 replays bit-identically to the live workload.
func SweepTraces(paths ...string) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.traces = append(s.traces, paths...) })
}

// SweepSeeds sets the number of seed replicas per (config, workload) cell
// (default 1: the calibrated profile seed).
func SweepSeeds(n int) SweepOption { return sweepOptionFunc(func(s *Sweep) { s.seeds = n }) }

// SweepJobs bounds the worker goroutines (default: GOMAXPROCS).
func SweepJobs(n int) SweepOption { return sweepOptionFunc(func(s *Sweep) { s.jobs = n }) }

// defaultWorkerRetries is the per-cell attempt budget a sweep with
// subprocess workers gets when the caller set none: worker crashes are
// transient failures by design, and reassigning the lost cell needs at
// least one spare attempt.
const defaultWorkerRetries = 3

// SweepWorkers executes cells in n supervised worker subprocesses instead
// of in-process goroutines (default 0 = in-process). Each worker is a
// re-exec of the current binary — which must call MaybeWorker at the top
// of main — running one cell per request over a stdin/stdout protocol.
// Results are bit-identical to in-process execution: a cell's outcome is a
// pure function of its (configuration, workload, seed, window) spec, so
// placement cannot matter. A crashed worker (OOM kill, runaway simulation,
// stack overflow) costs one respawn and one transient cell retry rather
// than the whole process; workers that crash repeatedly are retired and,
// when every slot is gone, cells fall back to in-process execution so the
// sweep still completes. FailureReport counts the restarts and
// reassignments. Unless SweepJobs says otherwise, the pool concurrency
// follows the worker count; unless SweepRetries says otherwise, the
// per-cell attempt budget defaults to 3 so reassignment has room to work.
func SweepWorkers(n int) SweepOption { return sweepOptionFunc(func(s *Sweep) { s.workers = n }) }

// SweepWarmup sets the per-cell warmup window in µ-ops.
//
// Deprecated: use Warmup, which simulators accept too.
func SweepWarmup(uops int64) SweepOption { return Warmup(uops) }

// SweepMeasure sets the per-cell measurement window in µ-ops.
//
// Deprecated: use Measure, which simulators accept too.
func SweepMeasure(uops int64) SweepOption { return Measure(uops) }

// SweepScheduler selects the wakeup/select implementation for every cell.
//
// Deprecated: use UseScheduler, which simulators accept too.
func SweepScheduler(impl Scheduler) SweepOption { return UseScheduler(impl) }

// SweepTimeSkip toggles quiescent-cycle skipping for every cell.
//
// Deprecated: use TimeSkip, which simulators accept too.
func SweepTimeSkip(on bool) SweepOption { return TimeSkip(on) }

// SweepCheckpoint names a resumable checkpoint file: completed cells are
// recorded there (flushed periodically and on completion or cancellation)
// and a restarted sweep with the same options skips them. A file written
// under different sweep options is rejected, not silently merged.
func SweepCheckpoint(path string) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.checkpoint = path })
}

// SweepCellTimeout bounds one cell's wall-clock time (0 = unbounded); a
// timed-out cell fails alone and the sweep continues.
func SweepCellTimeout(d time.Duration) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.cellTimeout = d })
}

// SweepStallTimeout arms the per-cell stall watchdog: a cell whose
// simulated-cycle counter stops advancing for d wall-clock time is killed
// early with a stall error instead of waiting out SweepCellTimeout. Slow
// but progressing cells are spared — the watchdog reads forward progress,
// not wall clock. 0 (the default) disables it.
func SweepStallTimeout(d time.Duration) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.stallTimeout = d })
}

// SweepRetries sets the attempt budget per cell (default 1 = no retries).
// Only transiently failing cells are retried — panics, timeouts, stalls,
// and errors exposing Transient() bool — while deterministic failures
// (ErrBadTrace, ErrInvalidConfig) fail immediately: rerunning a
// deterministic simulator on identical input cannot change the outcome.
func SweepRetries(attempts int) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.retries = attempts })
}

// SweepRetryBackoff shapes the delay between retry attempts: base before
// the first retry, doubling per subsequent retry, capped at max (base 0
// defaults to 100ms, max 0 to 32×base).
func SweepRetryBackoff(base, max time.Duration) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.retryBackoff, s.maxRetryBackoff = base, max })
}

// SweepAbandonBudget bounds the goroutines a sweep may abandon to timed-out
// or stalled cells before it stops retrying them (such goroutines cannot be
// forcibly killed and may linger until their simulation polls
// cancellation). 0 (the default) allows 2× the worker count; negative is
// unlimited.
func SweepAbandonBudget(n int) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.abandonBudget = n })
}

// Chaos is a deterministic fault-injection plan for resilience testing:
// each rate is the per-attempt probability (0..1) of injecting that fault
// into a cell, decided by a pure function of (Seed, cell, attempt) so a
// rerun with the same plan injects the identical faults. Injected faults
// exercise exactly the production failure paths — panic recovery, the
// watchdog, retry classification, checkpoint salvage — so a chaos sweep
// that converges proves the recovery machinery, and its results are
// bit-identical to a fault-free run.
type Chaos struct {
	// Seed keys every injection decision (0 = a fixed default plan).
	Seed uint64
	// PanicRate injects a panic inside the cell goroutine.
	PanicRate float64
	// HangRate blocks the cell until the watchdog or timeout kills it —
	// only meaningful with SweepCellTimeout or SweepStallTimeout set,
	// otherwise the cell hangs forever.
	HangRate float64
	// TransientRate fails the cell with a retryable error.
	TransientRate float64
	// CorruptTraceRate fails the cell with a permanent ErrBadTrace-class
	// error (never retried).
	CorruptTraceRate float64
	// TornWriteRate truncates a checkpoint flush mid-write, exercising the
	// salvage/backup recovery on resume.
	TornWriteRate float64
	// MaxFaultsPerCell caps injections per cell (default 2) so a chaos
	// sweep with enough retries always converges.
	MaxFaultsPerCell int
}

// plan lowers the public chaos description to the internal fault plan.
func (c *Chaos) plan() *faultinject.Plan {
	if c == nil {
		return nil
	}
	return &faultinject.Plan{
		Seed:             c.Seed,
		PanicRate:        c.PanicRate,
		HangRate:         c.HangRate,
		TransientRate:    c.TransientRate,
		CorruptTraceRate: c.CorruptTraceRate,
		TornWriteRate:    c.TornWriteRate,
		MaxFaultsPerCell: c.MaxFaultsPerCell,
	}
}

// SweepChaos injects the given deterministic fault plan into every cell and
// checkpoint flush (nil = no injection). Production sweeps leave this
// unset; CI chaos jobs and cmd/experiments -chaos use it to prove the
// resilience machinery end to end.
func SweepChaos(c Chaos) SweepOption { return sweepOptionFunc(func(s *Sweep) { s.chaos = &c }) }

// SweepProgress installs a progress callback, invoked after every finished
// cell from a single goroutine.
func SweepProgress(fn func(Progress)) SweepOption {
	return sweepOptionFunc(func(s *Sweep) { s.onProgress = fn })
}

// NewSweep builds a sweep description. Options are validated when the
// sweep runs, so construction never fails.
func NewSweep(opts ...SweepOption) *Sweep {
	s := &Sweep{seeds: 1, warmup: DefaultWarmup, measure: DefaultMeasure}
	for _, o := range opts {
		o.applySweep(s)
	}
	return s
}

// loadTraces resolves the sweep's trace paths into a trace set plus the
// ordered trace workload names, validating every header up front.
func (s *Sweep) loadTraces() (sim.TraceSet, []string, error) {
	if len(s.traces) == 0 {
		return nil, nil, nil
	}
	set := make(sim.TraceSet, len(s.traces))
	names := make([]string, 0, len(s.traces))
	for _, path := range s.traces {
		ref, err := sim.LoadTrace(path)
		if err != nil {
			return nil, nil, wrapErr(ErrBadTrace, err)
		}
		if prev, dup := set[ref.Name]; dup {
			return nil, nil, wrapErrf(ErrInvalidConfig,
				"specsched: traces %s and %s both name workload %q", prev.Path, ref.Path, ref.Name)
		}
		set[ref.Name] = ref
		names = append(names, ref.Name)
	}
	return set, names, nil
}

// workloadAxis resolves the effective workload list: the explicit
// SweepWorkloads (validated as Table 2 profiles unless a trace shadows the
// name) plus any trace workloads not already listed; with no explicit list
// the axis is the traces alone, or the full suite when there are none.
func (s *Sweep) workloadAxis(traces sim.TraceSet, traceNames []string) ([]string, error) {
	if len(s.workloads) == 0 {
		if len(traceNames) > 0 {
			return append([]string(nil), traceNames...), nil
		}
		return WorkloadNames(), nil
	}
	wls := append([]string(nil), s.workloads...)
	for _, n := range wls {
		if _, ok := traces[n]; ok {
			continue
		}
		if err := validateWorkloads([]string{n}); err != nil {
			return nil, err
		}
	}
	listed := make(map[string]bool, len(wls))
	for _, n := range wls {
		listed[n] = true
	}
	for _, n := range traceNames {
		if !listed[n] {
			wls = append(wls, n)
		}
	}
	return wls, nil
}

// grid validates the sweep options and expands them into the cell grid, in
// deterministic grid order (configs outermost, then workloads, then
// seeds), alongside the trace set backing any trace workloads.
func (s *Sweep) grid() ([]sim.Cell, sim.TraceSet, error) {
	if len(s.configs) == 0 {
		return nil, nil, wrapErrf(ErrInvalidConfig,
			"specsched: sweep has no configurations (use SweepConfigs)")
	}
	impl, err := s.scheduler.impl()
	if err != nil {
		return nil, nil, err
	}
	traces, traceNames, err := s.loadTraces()
	if err != nil {
		return nil, nil, err
	}
	wls, err := s.workloadAxis(traces, traceNames)
	if err != nil {
		return nil, nil, err
	}
	seeds := s.seeds
	if seeds <= 0 {
		seeds = 1
	}
	cells := make([]sim.Cell, 0, len(s.configs)*len(wls)*seeds)
	for _, cn := range s.configs {
		cfg, err := config.Preset(cn)
		if err != nil {
			return nil, nil, wrapErr(ErrInvalidConfig, err)
		}
		cfg.Scheduler = impl
		if s.timeSkip != nil {
			cfg.TimeSkip = *s.timeSkip
		}
		for _, wl := range wls {
			for i := 0; i < seeds; i++ {
				cells = append(cells, sim.Cell{Config: cfg, Workload: wl, SeedIdx: i})
			}
		}
	}
	return cells, traces, nil
}

// runPool executes the cells on the work-stealing pool, streaming each
// finished cell to onResult (which may be nil), recording completions into
// the checkpoint, and flushing it before returning — including on
// cancellation, which is what keeps an interrupted sweep resumable.
func (s *Sweep) runPool(ctx context.Context, cells []sim.Cell, traces sim.TraceSet, onResult func(sim.Result)) ([]sim.Result, error) {
	plan := s.chaos.plan()
	var cp *sim.Checkpoint
	if s.checkpoint != "" {
		impl, _ := s.scheduler.impl()
		var err error
		cp, err = sim.LoadCheckpoint(s.checkpoint, sim.FingerprintTraces(s.warmup, s.measure, impl, traces))
		if err != nil {
			return nil, wrapErr(ErrInvalidConfig, err)
		}
		cp.SetChaos(plan)
	}
	jobs := s.jobs
	if jobs == 0 && s.workers > 0 {
		// One pool goroutine per worker process: more would just queue on
		// the worker slots and burn their cell timeouts waiting.
		jobs = s.workers
	}
	attempts := s.retries
	if attempts == 0 && s.workers > 0 {
		// Worker subprocesses make transient cell failures an expected
		// operational event — a crashed worker loses its in-flight cell —
		// so reassignment needs a retry budget to ride on. An explicit
		// SweepRetries still wins.
		attempts = defaultWorkerRetries
	}
	pool := &sim.Pool{
		Jobs:            jobs,
		CellTimeout:     s.cellTimeout,
		StallTimeout:    s.stallTimeout,
		MaxAttempts:     attempts,
		RetryBackoff:    s.retryBackoff,
		MaxRetryBackoff: s.maxRetryBackoff,
		AbandonBudget:   s.abandonBudget,
		Chaos:           plan,
		Checkpoint:      cp,
		OnResult:        onResult,
	}
	if s.cellCache != nil {
		pool.Dedup = s.cellCache.d
		pool.DedupKey = func(c sim.Cell) string {
			return sim.DedupKey(c, s.warmup, s.measure, traces)
		}
	}
	pool.OnProgress = s.poolProgress()

	local := sim.LocalRunner{Warmup: s.warmup, Measure: s.measure, Traces: traces}
	runner := sim.CellRunner(local)
	var wp *worker.Pool
	if s.workers > 0 {
		var err error
		wp, err = worker.NewPool(worker.Options{
			Workers:  s.workers,
			Warmup:   s.warmup,
			Measure:  s.measure,
			Traces:   traces,
			Fallback: local,
		})
		if err != nil {
			return nil, wrapErr(ErrInvalidConfig, err)
		}
		runner = wp
	}
	res := pool.RunWith(ctx, cells, runner)
	if wp != nil {
		wp.Close()
		st := wp.Stats()
		s.mu.Lock()
		s.workerRestarts += int(st.Restarts)
		s.workerReassigned += int(st.Reassigned)
		s.mu.Unlock()
	}

	var executed int64
	var failures int
	for _, r := range res {
		if r.Err == nil && !r.Cached && !r.Deduped {
			executed += s.warmup + s.measure
		}
		if r.Err != nil {
			failures++
		}
	}
	s.mu.Lock()
	s.simulated += executed
	s.abandoned += pool.Abandoned()
	if cp != nil && cp.Salvage() != nil && s.salvage == "" {
		s.salvage = cp.Salvage().String()
	}
	s.mu.Unlock()

	var flushErr error
	if cp != nil {
		// Flush even (especially) on cancellation: the completed cells are
		// what makes the interrupted sweep resumable.
		flushErr = cp.Flush()
	}
	switch {
	case ctx.Err() != nil:
		cause := context.Cause(ctx)
		if flushErr != nil {
			// Surface both: the caller needs to know the checkpoint did NOT
			// capture the completed cells despite the cancel-flush contract.
			cause = errors.Join(cause, flushErr)
		}
		return res, wrapErr(ErrCanceled,
			fmt.Errorf("specsched: sweep interrupted after %d/%d cells: %w",
				len(cells)-failures, len(cells), cause))
	case flushErr != nil:
		return res, flushErr
	case failures > 0:
		return res, fmt.Errorf("specsched: %d/%d sweep cells failed (inspect per-cell errors): %w",
			failures, len(cells), errCellsFailed)
	}
	return res, nil
}

// poolProgress bridges the internal pool progress callback to the sweep's
// public one and — callback or not — records per-cell failure outcomes for
// FailureReport. A cell that fails and later succeeds on retry (or in a
// later report sharing this sweep) is removed from the failure set and
// counted as recovered.
func (s *Sweep) poolProgress() func(sim.Progress) {
	fn := s.onProgress
	return func(p sim.Progress) {
		ref := CellRef{Config: p.Cell.Config.Name, Workload: p.Cell.Workload, Seed: p.Cell.SeedIdx}
		s.mu.Lock()
		if p.CellAttempts > 1 {
			s.retried += p.CellAttempts - 1
		}
		if p.CellErr != nil {
			if s.failures == nil {
				s.failures = make(map[CellRef]CellFailure)
			}
			s.failures[ref] = CellFailure{
				Cell:      ref,
				Err:       mapCellErr(p.CellErr),
				Attempts:  p.CellAttempts,
				Transient: sim.Transient(p.CellErr),
			}
		} else {
			if _, failedBefore := s.failures[ref]; failedBefore || p.CellAttempts > 1 {
				s.recovered++
			}
			delete(s.failures, ref)
		}
		s.mu.Unlock()
		if fn != nil {
			fn(Progress{
				Done: p.Done, Total: p.Total, Failed: p.Failed, Cached: p.Cached,
				Deduped:  p.Deduped,
				Cell:     ref,
				Err:      mapCellErr(p.CellErr),
				IsCache:  p.CellCached,
				IsDedup:  p.CellDeduped,
				Elapsed:  time.Duration(p.Elapsed * float64(time.Second)),
				Attempts: p.CellAttempts,
			})
		}
	}
}

// CellFailure describes one sweep cell that ended in failure: its
// coordinates, the (public-taxonomy) error, the attempts spent, and whether
// the failure class is transient — i.e. whether a larger SweepRetries
// budget could plausibly have recovered it.
type CellFailure struct {
	Cell      CellRef
	Err       error
	Attempts  int
	Transient bool
}

// FailureReport aggregates a sweep's resilience outcomes across everything
// it has run so far (raw grids and experiment reports).
type FailureReport struct {
	// Failed lists cells whose final outcome was an error, sorted by
	// (config, workload, seed). A cell that failed and later succeeded —
	// on retry, or re-executed by a later report — is not listed.
	Failed []CellFailure
	// Recovered counts cells that failed at least one attempt but
	// ultimately succeeded.
	Recovered int
	// Retries counts extra attempts spent beyond each cell's first.
	Retries int
	// Abandoned counts goroutines abandoned to timed-out or stalled cells
	// (they linger until their simulation polls cancellation).
	Abandoned int
	// CheckpointSalvage describes what had to be salvaged from a damaged
	// resume checkpoint ("" when the load was clean).
	CheckpointSalvage string
	// WorkerRestarts counts worker subprocesses respawned after a crash
	// (0 unless SweepWorkers is in effect).
	WorkerRestarts int
	// WorkerReassigned counts cell attempts lost to a worker death; each
	// was reassigned to another worker through the transient-retry
	// machinery.
	WorkerReassigned int
}

// FailureReport returns the sweep's aggregate resilience outcomes so far.
// It may be called mid-sweep (from a progress callback or another
// goroutine) for a consistent snapshot, or after Run/Results/Report to
// summarize what failed, what recovered, and what the retry machinery paid.
//
// Concurrency: FailureReport is safe to call at any time from any
// goroutine, including concurrently with Run, Results iteration, and
// Report — all mutable sweep state is guarded by one mutex, the returned
// report is a deep-enough copy (the CellFailure errors it shares are
// immutable), and nothing in it aliases state a running sweep will mutate.
// The specschedd status endpoint calls it on live jobs on every poll.
func (s *Sweep) FailureReport() FailureReport {
	s.mu.Lock()
	fr := FailureReport{
		Recovered:         s.recovered,
		Retries:           s.retried,
		Abandoned:         s.abandoned,
		CheckpointSalvage: s.salvage,
		WorkerRestarts:    s.workerRestarts,
		WorkerReassigned:  s.workerReassigned,
	}
	for _, f := range s.failures {
		fr.Failed = append(fr.Failed, f)
	}
	r := s.runner
	s.mu.Unlock()
	if r != nil {
		fr.Abandoned += r.Abandoned()
		restarts, reassigned := r.WorkerStats()
		fr.WorkerRestarts += restarts
		fr.WorkerReassigned += reassigned
		if fr.CheckpointSalvage == "" {
			fr.CheckpointSalvage = r.CheckpointSalvage()
		}
	}
	sort.Slice(fr.Failed, func(i, j int) bool {
		a, b := fr.Failed[i].Cell, fr.Failed[j].Cell
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Seed < b.Seed
	})
	return fr
}

// toCell converts an internal pool result to the public cell record.
func toCell(r sim.Result) Cell {
	c := Cell{
		CellRef:  CellRef{Config: r.Cell.Config.Name, Workload: r.Cell.Workload, Seed: r.Cell.SeedIdx},
		Err:      mapCellErr(r.Err),
		Cached:   r.Cached,
		Deduped:  r.Deduped,
		Attempts: r.Attempts,
	}
	if r.Run != nil {
		c.Run = runFromStatsElapsed(r.Run, time.Duration(r.Elapsed*float64(time.Second)))
	}
	return c
}

// Run executes the whole grid and returns every cell in deterministic grid
// order (configs, then workloads, then seed indices — the order the
// options declared them). A failing cell carries its error in Cell.Err and
// never aborts the sweep; the returned error is non-nil if any cell failed
// or the context was canceled (matching ErrCanceled, with the completed
// cells still present in the slice and, if configured, the checkpoint).
func (s *Sweep) Run(ctx context.Context) ([]Cell, error) {
	cells, traces, err := s.grid()
	if err != nil {
		return nil, err
	}
	res, err := s.runPool(ctx, cells, traces, nil)
	if res == nil {
		return nil, err
	}
	out := make([]Cell, len(res))
	for i, r := range res {
		out[i] = toCell(r)
	}
	return out, err
}

// Results streams the sweep: it starts the grid in the background and
// yields each cell as it completes (checkpoint-satisfied cells first, then
// fresh completions in finish order). The second element of each pair is
// that cell's error — per-cell failures stream inline and do not stop the
// sweep. Breaking out of the iteration cancels the remaining work. If the
// sweep stops early (context canceled, invalid options), one final pair
// with a zero Cell and the terminal error is yielded.
//
// The streamed cells are exactly the cells Run would return — same
// coordinates, bit-identical counters — only the order differs.
func (s *Sweep) Results(ctx context.Context) iter.Seq2[Cell, error] {
	return func(yield func(Cell, error) bool) {
		cells, traces, err := s.grid()
		if err != nil {
			yield(Cell{}, err)
			return
		}
		inner, cancel := context.WithCancel(ctx)
		defer cancel()

		// Buffered to the grid size: the pool's collector never blocks on a
		// slow — or abandoned — consumer, so breaking out of the iteration
		// can never strand the sweep goroutine.
		ch := make(chan sim.Result, len(cells))
		errc := make(chan error, 1)
		go func() {
			defer close(ch)
			_, err := s.runPool(inner, cells, traces, func(r sim.Result) { ch <- r })
			errc <- err
		}()

		stopped := false
		for r := range ch {
			if stopped {
				continue // drain so the pool's collector can finish
			}
			if !yield(toCell(r), mapCellErr(r.Err)) {
				stopped = true
				cancel()
			}
		}
		if err := <-errc; err != nil && !stopped {
			// Cell-level failures were already streamed inline (the
			// errCellsFailed aggregate adds nothing); only a terminal
			// condition (cancellation, checkpoint failure) warrants a final
			// error element.
			if !errors.Is(err, errCellsFailed) {
				yield(Cell{}, mapCellErr(err))
			}
		}
	}
}

// errCellsFailed marks the aggregate "N cells failed" sweep error, whose
// per-cell causes are carried by the cells themselves.
var errCellsFailed = errors.New("sweep cells failed")

// Reports lists the named experiment reports Report understands — the
// paper's tables and figures (table1, table2, fig3..fig8, delays, summary)
// plus the repository's ablation studies.
func Reports() []string { return experiments.Names() }

// Report regenerates one named experiment report (see Reports), running
// whatever cells of its grid are not already cached or checkpointed. The
// sweep's workload/seed/jobs/checkpoint/scheduler options apply; its
// configuration list does not (each experiment prescribes its own
// configurations). Reports called on the same Sweep share a simulation
// cache, so figures that share configurations (every figure needs the
// Baseline_0 runs) pay for them once.
func (s *Sweep) Report(ctx context.Context, name string) (string, error) {
	r, err := s.reportRunner()
	if err != nil {
		return "", err
	}
	out, err := r.Run(ctx, name)
	return out, mapCtxErr(err)
}

// reportRunner lazily builds the experiments runner backing Report.
func (s *Sweep) reportRunner() (*experiments.Runner, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runner != nil {
		return s.runner, nil
	}
	impl, err := s.scheduler.impl()
	if err != nil {
		return nil, err
	}
	traces, traceNames, err := s.loadTraces()
	if err != nil {
		return nil, err
	}
	wls, err := s.workloadAxis(traces, traceNames)
	if err != nil {
		return nil, err
	}
	refs := make([]sim.TraceRef, 0, len(traceNames))
	for _, n := range traceNames {
		refs = append(refs, traces[n])
	}
	opts := experiments.Options{
		Warmup:          s.warmup,
		Measure:         s.measure,
		Workloads:       wls,
		Traces:          refs,
		Parallel:        s.jobs,
		Workers:         s.workers,
		Seeds:           s.seeds,
		Scheduler:       impl,
		CellTimeout:     s.cellTimeout,
		StallTimeout:    s.stallTimeout,
		MaxAttempts:     s.retries,
		RetryBackoff:    s.retryBackoff,
		MaxRetryBackoff: s.maxRetryBackoff,
		AbandonBudget:   s.abandonBudget,
		Chaos:           s.chaos.plan(),
		Checkpoint:      s.checkpoint,
	}
	if s.timeSkip != nil {
		opts.DisableTimeSkip = !*s.timeSkip
	}
	opts.OnProgress = s.poolProgress()
	s.runner = experiments.NewRunner(opts)
	return s.runner, nil
}

// Snapshot returns every pooled (config, workload) run the sweep's report
// runner has produced so far, in deterministic sorted order — the payload
// behind cmd/experiments -json. Raw-grid runs (Run/Results) are not
// included; they are returned directly by those methods.
func (s *Sweep) Snapshot() []results.Run {
	s.mu.Lock()
	r := s.runner
	s.mu.Unlock()
	if r == nil {
		return nil
	}
	set := r.Snapshot()
	var out []results.Run
	for _, cn := range set.Configs() {
		for _, wl := range set.Workloads() {
			if run := set.Get(cn, wl); run != nil {
				out = append(out, runFromStats(run))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Config != out[j].Config {
			return out[i].Config < out[j].Config
		}
		return out[i].Workload < out[j].Workload
	})
	return out
}

// SimulatedUOps returns the total µ-ops simulated by this sweep so far
// (warmup included; checkpoint-cached cells excluded), across raw-grid
// runs and experiment reports — the numerator of throughput reporting.
func (s *Sweep) SimulatedUOps() int64 {
	s.mu.Lock()
	n := s.simulated
	r := s.runner
	s.mu.Unlock()
	if r != nil {
		n += r.SimulatedUOps()
	}
	return n
}
