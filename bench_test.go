// Benchmarks regenerating the paper's tables and figures. Each benchmark
// runs the corresponding experiment on a representative workload subset
// with shortened windows (full-length reproductions are produced by
// cmd/experiments) and reports the figure's key quantity as a custom
// metric, so `go test -bench=. -benchmem` both times the simulator and
// re-derives the paper's results.
package specsched_test

import (
	"context"
	"strings"
	"testing"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/experiments"
	"specsched/internal/stats"
	"specsched/internal/trace"
)

// benchWorkloads is a representative slice of the Table 2 suite: two
// bank-conflict-prone high-IPC codes, one high-miss/high-ILP, one
// streaming-DRAM, one pointer chase, one branchy INT.
var benchWorkloads = []string{"swim", "hmmer", "xalancbmk", "libquantum", "mcf", "gzip"}

// bctx is the background context the benchmarks run under.
var bctx = context.Background()

func benchOpts() experiments.Options {
	return experiments.Options{
		Warmup:    4000,
		Measure:   20000,
		Workloads: benchWorkloads,
	}
}

// BenchmarkTable2 regenerates the per-benchmark Baseline_0 IPC table with
// the (default) event-driven scheduler and reports simulation throughput.
func BenchmarkTable2(b *testing.B) {
	benchTable2(b, config.SchedEvent)
}

// BenchmarkTable2Scan is the same experiment on the legacy scan scheduler,
// kept for one release as the perf-trajectory reference: the ratio of the
// two benchmarks' Minst/s metrics is the event-driven scheduler's speedup
// (tracked in BENCH_1.json via cmd/benchjson).
func BenchmarkTable2Scan(b *testing.B) {
	benchTable2(b, config.SchedScan)
}

func benchTable2(b *testing.B, impl config.SchedulerImpl) {
	b.Helper()
	var uops int64
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Scheduler = impl
		r := experiments.NewRunner(opts)
		out, err := r.Table2(bctx)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "xalancbmk") {
			b.Fatal("table missing rows")
		}
		uops += r.SimulatedUOps()
	}
	b.ReportMetric(float64(uops)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkFig3 regenerates the conservative-scheduling slowdown and
// reports the Baseline_6 gmean slowdown (the paper's worst case).
func BenchmarkFig3(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.Fig3(bctx); err != nil {
			b.Fatal(err)
		}
		set, err := r.Collect(bctx, "Baseline_0", "Baseline_6")
		if err != nil {
			b.Fatal(err)
		}
		slowdown = set.GMeanSpeedup("Baseline_6", "Baseline_0")
	}
	b.ReportMetric(slowdown, "gmean-B6/B0")
}

// BenchmarkFig4 regenerates speculative scheduling with dual vs banked L1
// and reports the banked SpecSched_4 gmean relative to Baseline_0.
func BenchmarkFig4(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.Fig4(bctx); err != nil {
			b.Fatal(err)
		}
		set, err := r.Collect(bctx, "Baseline_0", "SpecSched_4")
		if err != nil {
			b.Fatal(err)
		}
		rel = set.GMeanSpeedup("SpecSched_4", "Baseline_0")
	}
	b.ReportMetric(rel, "gmean-SS4/B0")
}

// BenchmarkFig5 regenerates Schedule Shifting and reports the fraction of
// bank-conflict replays it removes (paper: 74.8%).
func BenchmarkFig5(b *testing.B) {
	var removed float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.Fig5(bctx); err != nil {
			b.Fatal(err)
		}
		set, err := r.Collect(bctx, "SpecSched_4", "SpecSched_4_Shift")
		if err != nil {
			b.Fatal(err)
		}
		removed = set.ReductionVs("SpecSched_4_Shift", "SpecSched_4",
			func(run *stats.Run) int64 { return run.ReplayedBank })
	}
	b.ReportMetric(100*removed, "bank-replays-removed-%")
}

// BenchmarkFig7 regenerates hit/miss filtering and reports the fraction of
// miss replays the filter removes (paper: 65.0%).
func BenchmarkFig7(b *testing.B) {
	var removed float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.Fig7(bctx); err != nil {
			b.Fatal(err)
		}
		set, err := r.Collect(bctx, "SpecSched_4", "SpecSched_4_Filter")
		if err != nil {
			b.Fatal(err)
		}
		removed = set.ReductionVs("SpecSched_4_Filter", "SpecSched_4",
			func(run *stats.Run) int64 { return run.ReplayedMiss })
	}
	b.ReportMetric(100*removed, "miss-replays-removed-%")
}

// BenchmarkFig8 regenerates Combined/Crit and reports the total replay
// reduction of SpecSched_4_Crit (paper: 90.6%).
func BenchmarkFig8(b *testing.B) {
	var removed float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.Fig8(bctx); err != nil {
			b.Fatal(err)
		}
		set, err := r.Collect(bctx, "SpecSched_4", "SpecSched_4_Crit")
		if err != nil {
			b.Fatal(err)
		}
		removed = set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
			func(run *stats.Run) int64 { return run.Replayed() })
	}
	b.ReportMetric(100*removed, "replays-removed-%")
}

// BenchmarkDelaySweep regenerates the §5.3 SpecSched_{2,6}_Crit numbers.
func BenchmarkDelaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts())
		if _, err := r.DelaySweep(bctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreThroughput measures raw simulation speed: committed µ-ops
// per wall-clock second on the heaviest configuration.
func BenchmarkCoreThroughput(b *testing.B) {
	p, err := trace.ByName("xalancbmk")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := config.Preset("SpecSched_4_Crit")
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.New(cfg, trace.New(p), p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	c.Run(5000, 1) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(0, 1000)
	}
	b.ReportMetric(float64(1000*b.N)/b.Elapsed().Seconds(), "µops/s")
}

// BenchmarkCoreStepBaseline measures per-cycle simulation cost on the
// conservative baseline (no replay machinery active).
func BenchmarkCoreStepBaseline(b *testing.B) {
	p, err := trace.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.New(cfg, trace.New(p), p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	c.Run(2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// iq256Config widens the machine to the shared config.WideWindow point —
// the regime where the scan scheduler's O(window) per-cycle cost bites
// hardest and the event-driven scheduler's event-proportional cost should
// scale near-linearly with delivered IPC instead. The conservative
// baseline on a streaming-DRAM workload keeps ~100 sleeping entries
// resident in the IQ: the scan re-polls all of them every cycle, the
// event scheduler leaves them parked on consumer lists.
func iq256Config(impl config.SchedulerImpl) config.CoreConfig {
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		panic(err)
	}
	cfg = config.WideWindow(cfg)
	cfg.Scheduler = impl
	return cfg
}

func benchIQ256(b *testing.B, impl config.SchedulerImpl) {
	b.Helper()
	p, err := trace.ByName("libquantum")
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.New(iq256Config(impl), trace.New(p), p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	c.Run(5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(0, 1000)
	}
	b.ReportMetric(float64(1000*b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkIQ256 and BenchmarkIQ256Scan are the widened-window bench
// points: their ratio shows the event-driven scheduler's advantage growing
// with window size.
func BenchmarkIQ256(b *testing.B)     { benchIQ256(b, config.SchedEvent) }
func BenchmarkIQ256Scan(b *testing.B) { benchIQ256(b, config.SchedScan) }
