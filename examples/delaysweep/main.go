// Issue-to-execute delay sweep (Fig. 3 and Fig. 4 of the paper).
//
// This example builds a custom pointer-heavy workload profile through the
// public trace API and sweeps the issue-to-execute delay from 0 to 6
// cycles, once with conservative scheduling (dependents wait for load
// data) and once with speculative scheduling — reproducing, for one
// workload, the shape of the paper's Figures 3 and 4a.
//
// Run with:
//
//	go run ./examples/delaysweep
package main

import (
	"fmt"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/stats"
	"specsched/internal/trace"
)

func main() {
	// A custom profile: L1-resident data, pointer arithmetic putting
	// loads on the critical path, predictable branches.
	profile := trace.Profile{
		Name: "pointer-loop", Seed: 99,
		Blocks: 8, BlockLen: 8,
		LoadFrac: 0.3, StoreFrac: 0.08,
		MeanDepDist: 3, UseBaseFrac: 0.3,
		AddrDepFrac: 0.4, LoadUseFrac: 0.7,
		Agens: []trace.AgenSpec{
			{Kind: trace.AgenRandom, Footprint: 8 << 10, Weight: 1},
		},
		InnerLoopFrac: 0.5, LoopTrip: 32,
		SkipFrac: 0.2, SkipBias: 0.95,
	}

	fmt.Println("pointer-loop kernel, IPC vs issue-to-execute delay")
	fmt.Println()
	tb := stats.NewTable("", "delay", "conservative", "speculative", "replayed µ-ops")
	for _, d := range []int{0, 2, 4, 6} {
		cons := config.Baseline(d)
		spec := config.SpecSched(d, true)

		cb, _ := core.New(cons, trace.New(profile), profile.Seed)
		cb.SetWorkloadName(profile.Name)
		rc := cb.Run(10000, 60000)

		sb, _ := core.New(spec, trace.New(profile), profile.Seed)
		sb.SetWorkloadName(profile.Name)
		rs := sb.Run(10000, 60000)

		tb.AddRowf(3, d, rc.IPC(), rs.IPC(), rs.Replayed())
	}
	fmt.Println(tb.String())
	fmt.Println("Conservative scheduling pays the full issue-to-execute delay on every")
	fmt.Println("load-use chain; speculative scheduling hides it, at the price of")
	fmt.Println("replays when a load misses or hits a bank conflict.")
}
