// Issue-to-execute delay sweep (Fig. 3 and Fig. 4 of the paper).
//
// This example builds a custom pointer-heavy workload through the public
// Profile API and sweeps the issue-to-execute delay from 0 to 6 cycles,
// once with conservative scheduling (dependents wait for load data) and
// once with speculative scheduling — reproducing, for one workload, the
// shape of the paper's Figures 3 and 4a.
//
// Run with:
//
//	go run ./examples/delaysweep
package main

import (
	"context"
	"fmt"
	"log"

	"specsched"
	"specsched/presets"
	"specsched/results"
)

func main() {
	ctx := context.Background()

	// A custom profile: L1-resident data, pointer arithmetic putting
	// loads on the critical path, predictable branches.
	workload := specsched.CustomWorkload(specsched.Profile{
		Name: "pointer-loop", Seed: 99,
		Blocks: 8, BlockLen: 8,
		LoadFrac: 0.3, StoreFrac: 0.08,
		MeanDepDist: 3, UseBaseFrac: 0.3,
		AddrDepFrac: 0.4, LoadUseFrac: 0.7,
		Agens: []specsched.AgenSpec{
			{Kind: specsched.AgenRandom, Footprint: 8 << 10, Weight: 1},
		},
		InnerLoopFrac: 0.5, LoopTrip: 32,
		SkipFrac: 0.2, SkipBias: 0.95,
	})

	run := func(preset string) results.Run {
		r, err := specsched.NewSimulator(
			specsched.WithWorkloadSpec(workload),
			specsched.WithPreset(preset),
			specsched.WithSeed(99),
			specsched.WithWarmup(10000),
			specsched.WithMeasure(60000),
		).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Println("pointer-loop kernel, IPC vs issue-to-execute delay")
	fmt.Println()
	tb := results.NewTable("", "delay", "conservative", "speculative", "replayed µ-ops")
	for _, d := range presets.Delays() {
		rc := run(presets.Baseline(d))        // conservative: wait for data
		rs := run(presets.SpecSched(d, true)) // speculative, banked L1
		tb.AddRowf(3, d, rc.IPC(), rs.IPC(), rs.Replayed())
	}
	fmt.Println(tb.String())
	fmt.Println("Conservative scheduling pays the full issue-to-execute delay on every")
	fmt.Println("load-use chain; speculative scheduling hides it, at the price of")
	fmt.Println("replays when a load misses or hits a bank conflict.")
}
