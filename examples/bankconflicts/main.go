// Bank conflicts and Schedule Shifting (§5.1 of the paper).
//
// The stencil kernel loads a[i] and b[i] every iteration; the arrays are
// laid out so both loads map to the same L1 bank in different sets. Issued
// in the same cycle, the second access is delayed by the bank conflict and
// every dependent scheduled assuming a normal hit must be replayed.
// Schedule Shifting wakes dependents of the second load one cycle late,
// absorbing the conflict.
//
// Run with:
//
//	go run ./examples/bankconflicts
package main

import (
	"context"
	"fmt"
	"log"

	"specsched"
	"specsched/presets"
	"specsched/results"
)

func run(ctx context.Context, preset string) results.Run {
	r, err := specsched.NewSimulator(
		specsched.WithWorkloadSpec(specsched.StencilWorkload(8<<10)),
		specsched.WithPreset(preset),
		specsched.WithWarmup(10000),
		specsched.WithMeasure(80000),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	ctx := context.Background()
	dual := run(ctx, presets.SpecSched(4, false)) // ideal dual-ported L1: no conflicts
	base := run(ctx, presets.SpecSched(4, true))  // banked L1, plain speculative scheduling
	shift := run(ctx, presets.Shift(4))

	fmt.Println("stencil kernel: c[i] = a[i] + b[i], same-bank load pairs")
	fmt.Println()
	tb := results.NewTable("", "config", "IPC", "bank conflicts", "bank replays", "issued")
	for _, r := range []results.Run{dual, base, shift} {
		tb.AddRowf(3, r.Config, r.IPC(), r.BankConflicts, r.ReplayedBank, r.Issued)
	}
	fmt.Println(tb.String())

	lost := 1 - base.IPC()/dual.IPC()
	rec := (shift.IPC() - base.IPC()) / dual.IPC()
	fmt.Printf("banking costs %.1f%% of the dual-ported IPC; Shifting recovers %.1f points\n",
		100*lost, 100*rec)
	fmt.Printf("bank-conflict replays removed by Shifting: %.1f%% (paper, suite-wide: 74.8%%)\n",
		100*(1-float64(shift.ReplayedBank)/float64(base.ReplayedBank)))
}
