// Bank conflicts and Schedule Shifting (§5.1 of the paper).
//
// The stencil kernel loads a[i] and b[i] every iteration; the arrays are
// laid out so both loads map to the same L1 bank in different sets. Issued
// in the same cycle, the second access is delayed by the bank conflict and
// every dependent scheduled assuming a normal hit must be replayed.
// Schedule Shifting wakes dependents of the second load one cycle late,
// absorbing the conflict.
//
// Run with:
//
//	go run ./examples/bankconflicts
package main

import (
	"fmt"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/stats"
	"specsched/internal/trace"
)

func run(cfgName string) *stats.Run {
	cfg, err := config.Preset(cfgName)
	if err != nil {
		panic(err)
	}
	c, err := core.New(cfg, trace.NewStencil(8<<10), 7)
	if err != nil {
		panic(err)
	}
	c.SetWorkloadName("stencil")
	return c.Run(10000, 80000)
}

func main() {
	dual := run("SpecSched_4_dual") // ideal dual-ported L1: no conflicts
	base := run("SpecSched_4")      // banked L1, plain speculative scheduling
	shift := run("SpecSched_4_Shift")

	fmt.Println("stencil kernel: c[i] = a[i] + b[i], same-bank load pairs")
	fmt.Println()
	tb := stats.NewTable("", "config", "IPC", "bank conflicts", "bank replays", "issued")
	for _, r := range []*stats.Run{dual, base, shift} {
		tb.AddRowf(3, r.Config, r.IPC(), r.BankConflicts, r.ReplayedBank, r.Issued)
	}
	fmt.Println(tb.String())

	lost := 1 - base.IPC()/dual.IPC()
	rec := (shift.IPC() - base.IPC()) / dual.IPC()
	fmt.Printf("banking costs %.1f%% of the dual-ported IPC; Shifting recovers %.1f points\n",
		100*lost, 100*rec)
	fmt.Printf("bank-conflict replays removed by Shifting: %.1f%% (paper, suite-wide: 74.8%%)\n",
		100*(1-float64(shift.ReplayedBank)/float64(base.ReplayedBank)))
}
