// Hit/miss filtering and criticality gating (§5.2, §5.3 of the paper).
//
// A libquantum-like workload streams through a DRAM-sized array: nearly
// every load misses the L1, so scheduling dependents "assuming a hit"
// replays constantly. The Alpha-style global counter, the per-PC filter,
// and criticality gating each remove a progressively larger share of those
// replays while keeping the speculation benefits on the loads that do hit.
//
// Run with:
//
//	go run ./examples/hitmiss
package main

import (
	"context"
	"fmt"
	"log"

	"specsched"
	"specsched/results"
)

func main() {
	ctx := context.Background()

	fmt.Println("libquantum-like stream (most loads miss the L1)")
	fmt.Println()
	tb := results.NewTable("", "config", "IPC", "miss replays", "spec wakeups", "delayed wakeups")
	for _, cfgName := range []string{
		"SpecSched_4",        // Always Hit
		"SpecSched_4_Ctr",    // global 4-bit counter
		"SpecSched_4_Filter", // per-PC filter + counter
		"SpecSched_4_Crit",   // + criticality gating
	} {
		r, err := specsched.NewSimulator(
			specsched.WithWorkload("libquantum"),
			specsched.WithPreset(cfgName),
			specsched.WithWarmup(15000),
			specsched.WithMeasure(80000),
		).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRowf(3, r.Config, r.IPC(), r.ReplayedMiss, r.LoadsSpecWakeup, r.LoadsDelayedWakeup)
	}
	fmt.Println(tb.String())
	fmt.Println("The filter learns per-PC \"sure miss\" loads and stops waking their")
	fmt.Println("dependents; criticality gating additionally stalls dependents of")
	fmt.Println("non-critical loads whose behaviour the filter cannot pin down.")
}
