// Quickstart: simulate one SPEC-like workload on the paper's SpecSched_4
// configuration and print the scheduling statistics — the minimal
// embedding of the public specsched API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"specsched"
)

func main() {
	ctx := context.Background()

	// Pick a workload from the Table 2 suite and a machine configuration:
	// speculative scheduling with a 4-cycle issue-to-execute delay and a
	// banked L1 (the paper's baseline speculative scheme, "Always Hit").
	// Warm the caches and predictors, then measure.
	r, err := specsched.NewSimulator(
		specsched.WithWorkload("xalancbmk"),
		specsched.WithPreset("SpecSched_4"),
		specsched.WithWarmup(20000),
		specsched.WithMeasure(100000),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s:\n", r.Workload, r.Config)
	fmt.Printf("  IPC %.3f over %d cycles\n", r.IPC(), r.Cycles)
	fmt.Printf("  %d µ-ops issued for %d committed (%.2fx)\n",
		r.Issued, r.Committed, float64(r.Issued)/float64(r.Committed))
	fmt.Printf("  %d replayed after L1 misses, %d after bank conflicts\n",
		r.ReplayedMiss, r.ReplayedBank)
	fmt.Printf("  L1 load miss rate %.1f%%, %d bank conflicts\n",
		100*r.L1MissRate(), r.BankConflicts)

	// Now the same workload with the paper's best scheme: Schedule
	// Shifting + hit/miss filter + criticality gating.
	r2, err := specsched.NewSimulator(
		specsched.WithWorkload("xalancbmk"),
		specsched.WithPreset("SpecSched_4_Crit"),
		specsched.WithWarmup(20000),
		specsched.WithMeasure(100000),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s on %s:\n", r2.Workload, r2.Config)
	fmt.Printf("  IPC %.3f (%+.1f%%)\n", r2.IPC(), 100*(r2.IPC()/r.IPC()-1))
	fmt.Printf("  replays: %d -> %d (%.1f%% removed)\n",
		r.Replayed(), r2.Replayed(),
		100*(1-float64(r2.Replayed())/float64(r.Replayed())))
}
