// Quickstart: simulate one SPEC-like workload on the paper's SpecSched_4
// configuration and print the scheduling statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/trace"
)

func main() {
	// Pick a workload profile from the Table 2 suite...
	profile, err := trace.ByName("xalancbmk")
	if err != nil {
		panic(err)
	}

	// ...and a machine configuration: speculative scheduling with a
	// 4-cycle issue-to-execute delay and a banked L1 (the paper's
	// baseline speculative scheme, "Always Hit" policy).
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		panic(err)
	}

	c, err := core.New(cfg, trace.New(profile), profile.Seed)
	if err != nil {
		panic(err)
	}
	c.SetWorkloadName(profile.Name)

	// Warm the caches and predictors, then measure.
	r := c.Run(20000, 100000)

	fmt.Printf("%s on %s:\n", r.Workload, r.Config)
	fmt.Printf("  IPC %.3f over %d cycles\n", r.IPC(), r.Cycles)
	fmt.Printf("  %d µ-ops issued for %d committed (%.2fx)\n",
		r.Issued, r.Committed, float64(r.Issued)/float64(r.Committed))
	fmt.Printf("  %d replayed after L1 misses, %d after bank conflicts\n",
		r.ReplayedMiss, r.ReplayedBank)
	fmt.Printf("  L1 load miss rate %.1f%%, %d bank conflicts\n",
		100*r.L1MissRate(), r.BankConflicts)

	// Now the same workload with the paper's best scheme: Schedule
	// Shifting + hit/miss filter + criticality gating.
	crit, _ := config.Preset("SpecSched_4_Crit")
	c2, _ := core.New(crit, trace.New(profile), profile.Seed)
	c2.SetWorkloadName(profile.Name)
	r2 := c2.Run(20000, 100000)

	fmt.Printf("\n%s on %s:\n", r2.Workload, r2.Config)
	fmt.Printf("  IPC %.3f (%+.1f%%)\n", r2.IPC(), 100*(r2.IPC()/r.IPC()-1))
	fmt.Printf("  replays: %d -> %d (%.1f%% removed)\n",
		r.Replayed(), r2.Replayed(),
		100*(1-float64(r2.Replayed())/float64(r.Replayed())))
}
