package specsched

import (
	"encoding/json"
	"fmt"
	"time"

	"specsched/internal/config"
	"specsched/internal/traceio"
)

// Duration is a time.Duration that marshals to JSON as a human-readable
// duration string ("250ms", "1m30s") and unmarshals from either that form
// or a bare number of nanoseconds — the wire representation every duration
// field of SweepSpec uses.
type Duration time.Duration

// MarshalJSON renders the duration in time.Duration.String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string ("30s") or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v interface{}
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		p, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("specsched: bad duration %q: %w", x, err)
		}
		*d = Duration(p)
		return nil
	}
	return wrapErrf(ErrInvalidConfig, "specsched: bad duration %s (want string or nanoseconds)", b)
}

func (d Duration) String() string { return time.Duration(d).String() }

// SweepSpec is the declarative, JSON-round-trippable description of a
// Sweep: every SweepOption axis as plain data. It is the wire format of
// the specschedd daemon (POST /v1/sweeps), the payload of the -spec CLI
// flags, and the library's NewSweepFromSpec input, so one description
// drives all three.
//
// Zero/omitted fields take the same defaults NewSweep applies: nil Warmup
// and Measure select DefaultWarmup/DefaultMeasure, Seeds <= 0 selects one
// replica, an empty Scheduler the event implementation, nil TimeSkip the
// scheduler's default. NewSweepFromSpec(s).Spec() returns s with those
// defaults made explicit; for a spec that already states them the round
// trip is the identity (see testdata/sweepspec.json for a fully explicit
// sample).
type SweepSpec struct {
	// Configs names the configuration presets of the grid. Required for
	// Run/Results (and by the daemon); Report-only sweeps may omit it
	// (each experiment prescribes its own configurations).
	Configs []string `json:"configs,omitempty"`
	// Workloads restricts the workload axis (default: the full Table 2
	// suite, or the traces alone when only Traces is set). A name must be
	// a Table 2 benchmark or the stem of a listed trace.
	Workloads []string `json:"workloads,omitempty"`
	// Traces lists recorded µ-op trace files joining the workload axis,
	// each named by its file stem (see SweepTraces).
	Traces []string `json:"traces,omitempty"`
	// Seeds is the number of seed replicas per (config, workload) cell
	// (<= 0 selects 1, the calibrated profile seed).
	Seeds int `json:"seeds,omitempty"`
	// Jobs bounds the worker goroutines (0 = GOMAXPROCS).
	Jobs int `json:"jobs,omitempty"`
	// Workers executes cells in that many supervised worker subprocesses
	// instead of in-process goroutines (0 = in-process; see SweepWorkers).
	// Results are bit-identical either way. The host binary must call
	// MaybeWorker at the top of main.
	Workers int `json:"workers,omitempty"`
	// Warmup and Measure are the per-cell simulation windows in µ-ops
	// (nil = DefaultWarmup / DefaultMeasure; an explicit 0 warmup is
	// honored, an explicit non-positive measure is invalid).
	Warmup  *int64 `json:"warmup_uops,omitempty"`
	Measure *int64 `json:"measure_uops,omitempty"`
	// Scheduler selects the wakeup/select implementation ("" = event).
	Scheduler Scheduler `json:"scheduler,omitempty"`
	// TimeSkip toggles quiescent-cycle skipping (nil = default on).
	TimeSkip *bool `json:"timeskip,omitempty"`
	// Checkpoint names the resumable checkpoint file ("" = none). The
	// specschedd daemon overrides it with a per-job path it owns.
	Checkpoint string `json:"checkpoint,omitempty"`
	// CellTimeout bounds one cell's wall clock (0 = unbounded).
	CellTimeout Duration `json:"cell_timeout,omitempty"`
	// StallTimeout arms the per-cell stall watchdog (0 = disabled).
	StallTimeout Duration `json:"stall_timeout,omitempty"`
	// Retries is the attempt budget per cell (0 or 1 = no retries).
	Retries int `json:"retries,omitempty"`
	// RetryBackoff and MaxRetryBackoff shape the retry delays (see
	// SweepRetryBackoff).
	RetryBackoff    Duration `json:"retry_backoff,omitempty"`
	MaxRetryBackoff Duration `json:"max_retry_backoff,omitempty"`
	// AbandonBudget bounds goroutines abandoned to timeouts/stalls
	// (0 = 2× workers; negative = unlimited).
	AbandonBudget int `json:"abandon_budget,omitempty"`
	// Chaos, when non-nil, injects the deterministic fault plan into
	// every cell (testing only; see SweepChaos).
	Chaos *Chaos `json:"chaos,omitempty"`
}

// validate is the up-front (construction-time) validation behind
// NewSweepFromSpec: every named configuration must resolve, every workload
// must be a Table 2 benchmark or the stem of a listed trace, every trace
// header must parse, and every numeric range must make sense. Violations
// surface as the package's typed sentinels (ErrInvalidConfig,
// ErrUnknownWorkload, ErrBadTrace), so a daemon can reject a bad spec at
// submission instead of queueing a job that cannot run.
func (s SweepSpec) validate() error {
	for _, cn := range s.Configs {
		if _, err := config.Preset(cn); err != nil {
			return wrapErr(ErrInvalidConfig, err)
		}
	}
	if _, err := s.Scheduler.impl(); err != nil {
		return err
	}
	traceNames := make(map[string]string, len(s.Traces))
	for _, path := range s.Traces {
		if _, err := ReadTraceInfo(path); err != nil {
			return err
		}
		name := traceio.WorkloadName(path)
		if prev, dup := traceNames[name]; dup {
			return wrapErrf(ErrInvalidConfig,
				"specsched: traces %s and %s both name workload %q", prev, path, name)
		}
		traceNames[name] = path
	}
	for _, wl := range s.Workloads {
		if _, ok := traceNames[wl]; ok {
			continue
		}
		if err := validateWorkloads([]string{wl}); err != nil {
			return err
		}
	}
	if s.Seeds < 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: negative seed count %d", s.Seeds)
	}
	if s.Jobs < 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: negative job count %d", s.Jobs)
	}
	if s.Workers < 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: negative worker count %d", s.Workers)
	}
	if s.Retries < 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: negative retry budget %d", s.Retries)
	}
	if s.Warmup != nil && *s.Warmup < 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: negative warmup window %d", *s.Warmup)
	}
	if s.Measure != nil && *s.Measure <= 0 {
		return wrapErrf(ErrInvalidConfig, "specsched: non-positive measurement window %d", *s.Measure)
	}
	for _, d := range []struct {
		name string
		d    Duration
	}{
		{"cell_timeout", s.CellTimeout},
		{"stall_timeout", s.StallTimeout},
		{"retry_backoff", s.RetryBackoff},
		{"max_retry_backoff", s.MaxRetryBackoff},
	} {
		if d.d < 0 {
			return wrapErrf(ErrInvalidConfig, "specsched: negative %s %s", d.name, d.d)
		}
	}
	if c := s.Chaos; c != nil {
		for _, r := range []struct {
			name string
			rate float64
		}{
			{"panic_rate", c.PanicRate}, {"hang_rate", c.HangRate},
			{"transient_rate", c.TransientRate}, {"corrupt_trace_rate", c.CorruptTraceRate},
			{"torn_write_rate", c.TornWriteRate},
		} {
			if r.rate < 0 || r.rate > 1 {
				return wrapErrf(ErrInvalidConfig, "specsched: chaos %s %v out of range [0,1]", r.name, r.rate)
			}
		}
	}
	return nil
}

// NewSweepFromSpec builds a sweep from its declarative description,
// validating it up front (unlike NewSweep, whose options are only checked
// when the sweep runs): unknown configurations and invalid ranges surface
// as ErrInvalidConfig, unknown workloads as ErrUnknownWorkload, unreadable
// trace files as ErrBadTrace. The inverse is (*Sweep).Spec.
//
// Options not expressible in the wire form — callbacks (SweepProgress) and
// shared in-process state (SweepCellCache) — may be passed as trailing
// opts; they apply after the spec and never affect the sweep's results.
func NewSweepFromSpec(spec SweepSpec, opts ...SweepOption) (*Sweep, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s := NewSweep(
		SweepConfigs(spec.Configs...),
		SweepWorkloads(spec.Workloads...),
		SweepSeeds(max(spec.Seeds, 1)),
		SweepJobs(spec.Jobs),
		SweepWorkers(spec.Workers),
		SweepScheduler(spec.Scheduler),
		SweepCheckpoint(spec.Checkpoint),
		SweepCellTimeout(time.Duration(spec.CellTimeout)),
		SweepStallTimeout(time.Duration(spec.StallTimeout)),
		SweepRetries(spec.Retries),
		SweepRetryBackoff(time.Duration(spec.RetryBackoff), time.Duration(spec.MaxRetryBackoff)),
		SweepAbandonBudget(spec.AbandonBudget),
	)
	s.traces = append([]string(nil), spec.Traces...)
	if spec.Warmup != nil {
		s.warmup = *spec.Warmup
	}
	if spec.Measure != nil {
		s.measure = *spec.Measure
	}
	if spec.TimeSkip != nil {
		on := *spec.TimeSkip
		s.timeSkip = &on
	}
	if spec.Chaos != nil {
		c := *spec.Chaos
		s.chaos = &c
	}
	for _, opt := range opts {
		opt.applySweep(s)
	}
	return s, nil
}

// Spec returns the sweep's declarative description — the exact inverse of
// NewSweepFromSpec, with the construction defaults (window sizes, seed
// count) made explicit. A Sweep's options are immutable after
// construction, so Spec may be called at any time, concurrently with a
// running sweep.
func (s *Sweep) Spec() SweepSpec {
	warmup, measure := s.warmup, s.measure
	spec := SweepSpec{
		Configs:         append([]string(nil), s.configs...),
		Workloads:       append([]string(nil), s.workloads...),
		Traces:          append([]string(nil), s.traces...),
		Seeds:           max(s.seeds, 1),
		Jobs:            s.jobs,
		Workers:         s.workers,
		Warmup:          &warmup,
		Measure:         &measure,
		Scheduler:       s.scheduler,
		Checkpoint:      s.checkpoint,
		CellTimeout:     Duration(s.cellTimeout),
		StallTimeout:    Duration(s.stallTimeout),
		Retries:         s.retries,
		RetryBackoff:    Duration(s.retryBackoff),
		MaxRetryBackoff: Duration(s.maxRetryBackoff),
		AbandonBudget:   s.abandonBudget,
	}
	if s.timeSkip != nil {
		on := *s.timeSkip
		spec.TimeSkip = &on
	}
	if s.chaos != nil {
		c := *s.chaos
		spec.Chaos = &c
	}
	return spec
}
