package specsched_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"specsched"
)

func i64(v int64) *int64 { return &v }

// TestSweepSpecRoundTrip pins the SweepSpec contract from three sides:
// NewSweepFromSpec(s).Spec() is the identity for an explicit spec, the
// JSON encoding round-trips losslessly (durations as strings included),
// and a spec-built sweep simulates bit-identically to the equivalent
// option-built sweep.
func TestSweepSpecRoundTrip(t *testing.T) {
	on := true
	spec := specsched.SweepSpec{
		Configs:         []string{"Baseline_0", "SpecSched_4"},
		Workloads:       []string{"gzip", "hmmer"},
		Seeds:           2,
		Jobs:            4,
		Warmup:          i64(1000),
		Measure:         i64(4000),
		Scheduler:       specsched.SchedulerEvent,
		TimeSkip:        &on,
		CellTimeout:     specsched.Duration(120 * 1e9),
		StallTimeout:    specsched.Duration(30 * 1e9),
		Retries:         2,
		RetryBackoff:    specsched.Duration(5 * 1e6),
		MaxRetryBackoff: specsched.Duration(100 * 1e6),
		AbandonBudget:   8,
	}

	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweep.Spec(); !reflect.DeepEqual(got, spec) {
		t.Fatalf("Spec() is not the inverse of NewSweepFromSpec:\n got  %+v\n want %+v", got, spec)
	}

	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back specsched.SweepSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("JSON round trip changed the spec:\n json %s\n got  %+v\n want %+v", data, back, spec)
	}

	// Durations travel as human-readable strings, and both wire forms
	// (string and nanoseconds) decode.
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire["stall_timeout"] != "30s" || wire["retry_backoff"] != "5ms" {
		t.Fatalf("durations not marshaled as strings: %s", data)
	}
	var d specsched.Duration
	if err := json.Unmarshal([]byte(`5000000`), &d); err != nil || d != specsched.Duration(5*1e6) {
		t.Fatalf("nanosecond duration form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatal("bad duration string must not decode")
	}

	// The spec-built sweep is the option-built sweep, bit for bit.
	fromOpts, err := specsched.NewSweep(sweepOpts(specsched.SweepJobs(4))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := sweep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSpec) != len(fromOpts) {
		t.Fatalf("spec sweep ran %d cells, options sweep %d", len(fromSpec), len(fromOpts))
	}
	for i := range fromOpts {
		a, b := fromOpts[i], fromSpec[i]
		a.Run.Elapsed, b.Run.Elapsed = 0, 0
		if a.CellRef != b.CellRef || a.Run != b.Run {
			t.Fatalf("cell %s: spec-built sweep diverged from option-built", a.CellRef)
		}
	}
}

// TestSweepSpecDefaults: an empty spec picks up NewSweep's defaults, and
// Spec() makes them explicit. Explicit zero warmup is honored, not
// defaulted — the pointer distinguishes absent from zero.
func TestSweepSpecDefaults(t *testing.T) {
	sweep, err := specsched.NewSweepFromSpec(specsched.SweepSpec{Configs: []string{"Baseline_0"}})
	if err != nil {
		t.Fatal(err)
	}
	got := sweep.Spec()
	if *got.Warmup != specsched.DefaultWarmup || *got.Measure != specsched.DefaultMeasure {
		t.Fatalf("defaults not applied: warmup %d, measure %d", *got.Warmup, *got.Measure)
	}
	if got.Seeds != 1 {
		t.Fatalf("seed default not canonicalized: %d", got.Seeds)
	}

	zero, err := specsched.NewSweepFromSpec(specsched.SweepSpec{
		Configs: []string{"Baseline_0"}, Warmup: i64(0), Measure: i64(500),
	})
	if err != nil {
		t.Fatal(err)
	}
	if *zero.Spec().Warmup != 0 {
		t.Fatal("explicit zero warmup was overridden by the default")
	}
}

// TestSweepSpecGolden guards the wire format itself: the committed sample
// spec must decode, build, and survive the Spec() round trip as the exact
// bytes on disk. A marshaling change that would break saved spec files or
// daemon clients fails here first.
func TestSweepSpecGolden(t *testing.T) {
	const golden = "testdata/sweepspec.json"
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var spec specsched.SweepSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatalf("%s: %v", golden, err)
	}
	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		t.Fatalf("%s does not build: %v", golden, err)
	}
	out, err := json.MarshalIndent(sweep.Spec(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if string(out) != string(data) {
		if os.Getenv("SPECSCHED_UPDATE_SPEC") != "" {
			if err := os.WriteFile(golden, out, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("updated %s", golden)
			return
		}
		t.Fatalf("wire format drifted from %s (SPECSCHED_UPDATE_SPEC=1 to regenerate):\n got %s\nwant %s",
			golden, out, data)
	}
}

// TestSweepSpecValidation is the error-taxonomy table: every way a spec
// can be wrong maps to exactly the documented sentinel, at construction
// time rather than at run time.
func TestSweepSpecValidation(t *testing.T) {
	dir := t.TempDir()
	okTrace := filepath.Join(dir, "gzip.trace")
	if err := specsched.WorkloadByName("gzip").Record(okTrace, 4000); err != nil {
		t.Fatal(err)
	}
	dupDir := filepath.Join(dir, "dup")
	if err := os.MkdirAll(dupDir, 0o755); err != nil {
		t.Fatal(err)
	}
	dupTrace := filepath.Join(dupDir, "gzip.trace")
	if err := specsched.WorkloadByName("gzip").Record(dupTrace, 4000); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		spec specsched.SweepSpec
		want error
	}{
		{"unknown config", specsched.SweepSpec{Configs: []string{"Baseline_9"}}, specsched.ErrInvalidConfig},
		{"unknown workload", specsched.SweepSpec{Workloads: []string{"nope"}}, specsched.ErrUnknownWorkload},
		{"bad scheduler", specsched.SweepSpec{Scheduler: "magic"}, specsched.ErrInvalidConfig},
		{"missing trace", specsched.SweepSpec{Traces: []string{filepath.Join(dir, "nope.trace")}}, specsched.ErrBadTrace},
		{"duplicate trace stems", specsched.SweepSpec{Traces: []string{okTrace, dupTrace}}, specsched.ErrInvalidConfig},
		{"negative seeds", specsched.SweepSpec{Seeds: -1}, specsched.ErrInvalidConfig},
		{"negative jobs", specsched.SweepSpec{Jobs: -2}, specsched.ErrInvalidConfig},
		{"negative retries", specsched.SweepSpec{Retries: -1}, specsched.ErrInvalidConfig},
		{"negative warmup", specsched.SweepSpec{Warmup: i64(-1)}, specsched.ErrInvalidConfig},
		{"zero measure", specsched.SweepSpec{Measure: i64(0)}, specsched.ErrInvalidConfig},
		{"negative cell timeout", specsched.SweepSpec{CellTimeout: -1}, specsched.ErrInvalidConfig},
		{"negative backoff", specsched.SweepSpec{RetryBackoff: -1}, specsched.ErrInvalidConfig},
		{"chaos rate out of range", specsched.SweepSpec{Chaos: &specsched.Chaos{PanicRate: 1.5}}, specsched.ErrInvalidConfig},
	}
	for _, tc := range cases {
		sweep, err := specsched.NewSweepFromSpec(tc.spec)
		if sweep != nil || err == nil {
			t.Errorf("%s: spec was accepted", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not match %v", tc.name, err, tc.want)
		}
	}

	// A trace workload name is valid precisely because the trace is listed.
	if _, err := specsched.NewSweepFromSpec(specsched.SweepSpec{
		Configs: []string{"Baseline_0"}, Workloads: []string{"gzip"}, Traces: []string{okTrace},
	}); err != nil {
		t.Fatalf("trace-backed workload rejected: %v", err)
	}
}

// TestSpecSweepWithTraces: a spec-built trace sweep replays recorded
// streams exactly like the option-built equivalent.
func TestSpecSweepWithTraces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hmmer.trace")
	if err := specsched.WorkloadByName("hmmer").Record(path, 6000); err != nil {
		t.Fatal(err)
	}
	spec := specsched.SweepSpec{
		Configs: []string{"Baseline_0"},
		Traces:  []string{path},
		Warmup:  i64(500),
		Measure: i64(2000),
	}
	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Workload != "hmmer" {
		t.Fatalf("trace sweep cells: %+v", cells)
	}
	want, err := specsched.NewSweep(
		specsched.SweepConfigs("Baseline_0"),
		specsched.SweepTraces(path),
		specsched.SweepWarmup(500),
		specsched.SweepMeasure(2000),
	).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cells[0].Run, want[0].Run
	a.Elapsed, b.Elapsed = 0, 0
	if a != b {
		t.Fatal("spec-built trace sweep diverged from option-built")
	}
	if !reflect.DeepEqual(sweep.Spec().Traces, []string{path}) {
		t.Fatal("traces lost in the Spec() round trip")
	}
}
