package specsched

import "specsched/internal/worker"

// MaybeWorker is the subprocess-worker hook: call it at the very top of
// main, before flag parsing or any other setup. In a normal invocation it
// is a no-op that returns immediately. When the process was spawned as a
// sweep cell worker (SweepWorkers / the daemon's worker mode re-exec the
// host binary with an internal environment marker), it instead serves cell
// requests on stdin/stdout until the supervisor closes the stream, then
// exits the process — main never proceeds.
//
// Binaries that skip this hook still work without SweepWorkers; with it,
// their worker subprocesses hang silently at startup until the
// supervisor's handshake timeout kills them, after which cells fall back
// to in-process execution.
func MaybeWorker() { worker.MaybeServe() }
