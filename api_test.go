package specsched_test

import (
	"os"
	"path/filepath"
	"testing"

	"specsched/internal/apigen"
)

// publicDirs are the packages whose exported surface the golden locks.
var publicDirs = []string{".", "presets", "results"}

const goldenPath = "api/specsched.txt"

// TestPublicAPIGolden regenerates the public API surface and compares it
// to the committed golden. Any surface change must be accompanied by a
// reviewed update of api/specsched.txt:
//
//	SPECSCHED_UPDATE_API=1 go test -run TestPublicAPIGolden .
func TestPublicAPIGolden(t *testing.T) {
	got, err := apigen.Surface(publicDirs...)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("SPECSCHED_UPDATE_API") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing API golden (regenerate with SPECSCHED_UPDATE_API=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed; review the diff and regenerate %s with\n"+
			"  SPECSCHED_UPDATE_API=1 go test -run TestPublicAPIGolden .\n\n--- committed ---\n%s\n--- current ---\n%s",
			goldenPath, want, got)
	}
}
