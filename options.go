package specsched

// Option configures a Simulator. Concrete options come from this
// package's constructors: the WithX family for simulator-only axes, and
// the shared CommonOption constructors (Warmup, Measure, UseScheduler,
// TimeSkip) for axes a Sweep has too.
type Option interface {
	applySimulator(*Simulator)
}

// SweepOption configures a Sweep. Concrete options come from the SweepX
// constructors for sweep-only axes and the shared CommonOption
// constructors for axes a Simulator has too.
type SweepOption interface {
	applySweep(*Sweep)
}

// simOptionFunc adapts a Simulator mutation into an Option.
type simOptionFunc func(*Simulator)

func (f simOptionFunc) applySimulator(s *Simulator) { f(s) }

// sweepOptionFunc adapts a Sweep mutation into a SweepOption.
type sweepOptionFunc func(*Sweep)

func (f sweepOptionFunc) applySweep(s *Sweep) { f(s) }

// CommonOption configures an axis that single-run simulators and sweep
// grids share — the simulation window, the scheduler implementation,
// quiescent-cycle skipping. It satisfies both Option and SweepOption, so
// one value (or one []CommonOption, spread at both call sites) drives
// NewSimulator and NewSweep identically; the historical WithX/SweepX
// pairs for these axes remain as deprecated aliases.
type CommonOption struct {
	sim   func(*Simulator)
	sweep func(*Sweep)
}

func (o CommonOption) applySimulator(s *Simulator) { o.sim(s) }
func (o CommonOption) applySweep(s *Sweep)         { o.sweep(s) }

// Warmup sets the warmup window in committed µ-ops — the cache- and
// predictor-warming run before the measurement window opens. For sweeps
// it applies to every cell.
func Warmup(uops int64) CommonOption {
	return CommonOption{
		sim:   func(s *Simulator) { s.warmup = uops },
		sweep: func(s *Sweep) { s.warmup = uops },
	}
}

// Measure sets the measurement window length in committed µ-ops. For
// sweeps it applies to every cell.
func Measure(uops int64) CommonOption {
	return CommonOption{
		sim:   func(s *Simulator) { s.measure = uops },
		sweep: func(s *Sweep) { s.measure = uops },
	}
}

// UseScheduler selects the simulator-side wakeup/select implementation
// (for sweeps: of every cell). Results are bit-identical across
// implementations; only simulation speed differs.
func UseScheduler(impl Scheduler) CommonOption {
	return CommonOption{
		sim:   func(s *Simulator) { s.scheduler = impl },
		sweep: func(s *Sweep) { s.scheduler = impl },
	}
}

// TimeSkip toggles quiescent-cycle skipping (default on; ignored by the
// scan scheduler). Results are bit-identical either way.
func TimeSkip(on bool) CommonOption {
	return CommonOption{
		sim:   func(s *Simulator) { s.timeSkip = &on },
		sweep: func(s *Sweep) { s.timeSkip = &on },
	}
}
