package specsched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/results"
)

// Default simulation window (µ-ops). The paper simulates 50M warmup + 100M
// measured instructions per run; these defaults are scaled down ~1000x so
// an interactive run completes in well under a second.
const (
	DefaultWarmup  int64 = 10000
	DefaultMeasure int64 = 60000
)

// Simulator runs one workload on one machine configuration. Construct it
// with NewSimulator and functional options, then call Run; a Simulator is
// a reusable description, so calling Run again repeats the identical
// simulation from a fresh core.
type Simulator struct {
	preset    string
	workload  Workload
	warmup    int64
	measure   int64
	seed      uint64
	seedSet   bool
	scheduler Scheduler
	timeSkip  *bool
}

// WithPreset selects the machine configuration by preset name (see the
// specsched/presets package). Default: the paper's central SpecSched_4.
func WithPreset(name string) Option {
	return simOptionFunc(func(s *Simulator) { s.preset = name })
}

// WithWorkload selects a Table 2 benchmark by name — shorthand for
// WithWorkloadSpec(WorkloadByName(name)).
func WithWorkload(name string) Option {
	return simOptionFunc(func(s *Simulator) { s.workload = WorkloadByName(name) })
}

// WithWorkloadSpec selects any workload: named, custom profile, or kernel.
func WithWorkloadSpec(w Workload) Option {
	return simOptionFunc(func(s *Simulator) { s.workload = w })
}

// WithWarmup sets the warmup window.
//
// Deprecated: use Warmup, which sweeps accept too.
func WithWarmup(uops int64) Option { return Warmup(uops) }

// WithMeasure sets the measurement window.
//
// Deprecated: use Measure, which sweeps accept too.
func WithMeasure(uops int64) Option { return Measure(uops) }

// WithSeed overrides the workload's RNG seed (named profiles default to
// their calibrated seed, kernels to a fixed one). Two runs of the same
// workload and seed are bit-identical; different seeds give decorrelated
// but statistically alike programs.
func WithSeed(seed uint64) Option {
	return simOptionFunc(func(s *Simulator) { s.seed, s.seedSet = seed, true })
}

// WithScheduler selects the wakeup/select implementation.
//
// Deprecated: use UseScheduler, which sweeps accept too.
func WithScheduler(impl Scheduler) Option { return UseScheduler(impl) }

// WithTimeSkip toggles quiescent-cycle skipping.
//
// Deprecated: use TimeSkip, which sweeps accept too.
func WithTimeSkip(on bool) Option { return TimeSkip(on) }

// NewSimulator builds a simulator description. Options are validated at
// Run, so construction never fails.
func NewSimulator(opts ...Option) *Simulator {
	s := &Simulator{preset: "SpecSched_4", warmup: DefaultWarmup, measure: DefaultMeasure}
	for _, o := range opts {
		o.applySimulator(s)
	}
	return s
}

// resolveConfig maps the preset name and scheduler/time-skip overrides to a
// validated internal configuration.
func (s *Simulator) resolveConfig() (config.CoreConfig, error) {
	cfg, err := config.Preset(s.preset)
	if err != nil {
		return config.CoreConfig{}, wrapErr(ErrInvalidConfig, err)
	}
	impl, err := s.scheduler.impl()
	if err != nil {
		return config.CoreConfig{}, err
	}
	cfg.Scheduler = impl
	if s.timeSkip != nil {
		cfg.TimeSkip = *s.timeSkip
	}
	return cfg, nil
}

// Run executes the simulation: it builds a fresh core, commits the warmup
// window, then measures. The returned Run carries the measurement window's
// counters and the wall-clock time the measurement took (Elapsed excludes
// construction and warmup, making it a clean throughput denominator).
//
// Cancellation: the core polls ctx every few thousand simulated cycles;
// a canceled run returns promptly with an error matching ErrCanceled (and
// context.Canceled / context.DeadlineExceeded as appropriate).
func (s *Simulator) Run(ctx context.Context) (results.Run, error) {
	cfg, err := s.resolveConfig()
	if err != nil {
		return results.Run{}, err
	}
	if s.workload.build == nil {
		return results.Run{}, wrapErrf(ErrUnknownWorkload,
			"specsched: no workload selected (use WithWorkload or WithWorkloadSpec)")
	}
	b, err := s.workload.build(s.seed, s.seedSet)
	if err != nil {
		return results.Run{}, err
	}
	if b.count > 0 && s.warmup+s.measure > b.count {
		return results.Run{}, wrapErrf(ErrBadTrace,
			"specsched: trace %q records %d µ-ops, window needs at least %d",
			s.workload.name, b.count, s.warmup+s.measure)
	}
	c, err := core.New(cfg, b.stream, b.wpSeed)
	if err != nil {
		return results.Run{}, wrapErr(ErrInvalidConfig, err)
	}
	c.SetWorkloadName(s.workload.name)

	if _, err := c.RunContext(ctx, s.warmup, 0); err != nil {
		return results.Run{}, s.mapRunErr(err, b)
	}
	start := time.Now()
	r, err := c.RunContext(ctx, 0, s.measure)
	if err != nil {
		return results.Run{}, s.mapRunErr(err, b)
	}
	if b.count > 0 && c.StreamExhausted() {
		// The window committed, but fetch consumed the trace's final µ-op
		// mid-window: fetch-ahead — and so the statistics — can differ
		// from the live run. Bit-identity or failure, nothing in between.
		return results.Run{}, wrapErrf(ErrBadTrace,
			"specsched: trace %q (%d recorded µ-ops) ran dry inside the simulation window's fetch-ahead; record more slack",
			s.workload.name, b.count)
	}
	return runFromStatsElapsed(r, time.Since(start)), nil
}

// mapRunErr lifts core errors into the public taxonomy: cancellation maps
// to ErrCanceled; a stream that ran dry mid-window — only finite, i.e.
// recorded, streams can — maps to ErrBadTrace, carrying the underlying
// decode corruption when there is one.
func (s *Simulator) mapRunErr(err error, b builtWorkload) error {
	if errors.Is(err, core.ErrStreamEnded) {
		if b.srcErr != nil && b.srcErr() != nil {
			return wrapErr(ErrBadTrace, b.srcErr())
		}
		return wrapErr(ErrBadTrace, fmt.Errorf(
			"specsched: trace %q (%d recorded µ-ops) ran dry inside the simulation window: %w",
			s.workload.name, b.count, err))
	}
	return mapCtxErr(err)
}
