// Package specsched reproduces "Cost-Effective Speculative Scheduling in
// High Performance Processors" (Perais, Seznec, Michaud, Sembrant,
// Hagersten — ISCA 2015) as a from-scratch, cycle-level out-of-order core
// simulator written in pure Go.
//
// The library lives under internal/: the pipeline model in internal/core,
// the substrates (TAGE branch prediction, banked L1D with a single line
// buffer, L2 with stride prefetching, DDR3 timing, store sets, register
// renaming) in sibling packages, the synthetic SPEC-like workloads in
// internal/trace, and the per-figure experiment runners in
// internal/experiments. Experiment grids are sharded across a
// deterministic work-stealing pool (internal/sim) with per-cell failure
// isolation and resumable checkpoints; cmd/experiments exposes it as a
// CLI (-jobs, -seeds, -filter, -resume, -json). The benchmarks in this
// directory regenerate every table and figure of the paper's evaluation;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results and the CI bench-regression gate.
package specsched
