package specsched_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"specsched"
	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/trace"
	"specsched/presets"
	"specsched/results"
)

var ctx = context.Background()

// TestSimulatorMatchesDirectCore pins the façade's bit-compatibility
// contract: a Simulator run is the identical simulation as the historical
// direct core.New + Run path — every counter equal, field by field.
func TestSimulatorMatchesDirectCore(t *testing.T) {
	got, err := specsched.NewSimulator(
		specsched.WithWorkload("gzip"),
		specsched.WithPreset("SpecSched_4"),
		specsched.WithWarmup(2000),
		specsched.WithMeasure(8000),
	).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	c := core.MustNew(cfg, trace.New(p), p.Seed)
	c.SetWorkloadName("gzip")
	want := c.Run(2000, 8000)

	wv := reflect.ValueOf(want).Elem()
	gv := reflect.ValueOf(got)
	wt := wv.Type()
	for i := 0; i < wt.NumField(); i++ {
		name := wt.Field(i).Name
		if g, w := gv.FieldByName(name), wv.Field(i); !w.Equal(g) {
			t.Errorf("façade diverged from direct core run: %s = %v, want %v", name, g, w)
		}
	}
	if got.Elapsed <= 0 {
		t.Error("façade run lost its Elapsed annotation")
	}
}

// TestSimulatorSeedOverride: the seed option must reach the generator
// (different dynamics) and be reproducible (same seed, same run).
func TestSimulatorSeedOverride(t *testing.T) {
	run := func(seed uint64) results.Run {
		opts := []specsched.Option{
			specsched.WithWorkload("gzip"),
			specsched.WithPreset("Baseline_0"),
			specsched.WithWarmup(1000),
			specsched.WithMeasure(5000),
		}
		if seed != 0 {
			opts = append(opts, specsched.WithSeed(seed))
		}
		r, err := specsched.NewSimulator(opts...).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		r.Elapsed = 0
		return r
	}
	base, a1, a2, b := run(0), run(11), run(11), run(12)
	if a1 != a2 {
		t.Fatal("same seed must reproduce the identical run")
	}
	if a1 == base || a1 == b {
		t.Fatal("seed override did not change the simulation")
	}
}

// TestErrorTaxonomy: every failure mode maps to exactly the documented
// sentinel.
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		sim  *specsched.Simulator
		want error
	}{
		{"unknown workload",
			specsched.NewSimulator(specsched.WithWorkload("nope")),
			specsched.ErrUnknownWorkload},
		{"no workload",
			specsched.NewSimulator(),
			specsched.ErrUnknownWorkload},
		{"unknown preset",
			specsched.NewSimulator(specsched.WithWorkload("gzip"), specsched.WithPreset("Baseline_3")),
			specsched.ErrInvalidConfig},
		{"bad scheduler",
			specsched.NewSimulator(specsched.WithWorkload("gzip"), specsched.WithScheduler("magic")),
			specsched.ErrInvalidConfig},
		{"invalid custom profile",
			specsched.NewSimulator(specsched.WithWorkloadSpec(
				specsched.CustomWorkload(specsched.Profile{Name: "bad", Blocks: 1}))),
			specsched.ErrInvalidConfig},
	}
	for _, tc := range cases {
		if _, err := tc.sim.Run(ctx); !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not match %v", tc.name, err, tc.want)
		}
	}

	if _, err := specsched.NewSweep().Run(ctx); !errors.Is(err, specsched.ErrInvalidConfig) {
		t.Errorf("config-less sweep: %v, want ErrInvalidConfig", err)
	}
	if _, err := specsched.NewSweep(
		specsched.SweepConfigs("Baseline_0"),
		specsched.SweepWorkloads("nope"),
	).Run(ctx); !errors.Is(err, specsched.ErrUnknownWorkload) {
		t.Errorf("sweep with unknown workload: %v, want ErrUnknownWorkload", err)
	}
}

func sweepOpts(extra ...specsched.SweepOption) []specsched.SweepOption {
	return append([]specsched.SweepOption{
		specsched.SweepConfigs("Baseline_0", "SpecSched_4"),
		specsched.SweepWorkloads("gzip", "hmmer"),
		specsched.SweepSeeds(2),
		specsched.SweepWarmup(1000),
		specsched.SweepMeasure(4000),
	}, extra...)
}

// TestSweepStreamEqualsRun: the cells streamed by Results must equal the
// merged grid Run returns, bit for bit — same coordinates, same counters —
// regardless of completion order.
func TestSweepStreamEqualsRun(t *testing.T) {
	grid, err := specsched.NewSweep(sweepOpts(specsched.SweepJobs(1))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2*2*2 {
		t.Fatalf("grid has %d cells, want 8", len(grid))
	}

	streamed := map[specsched.CellRef]results.Run{}
	for cell, cerr := range specsched.NewSweep(sweepOpts(specsched.SweepJobs(4))...).Results(ctx) {
		if cerr != nil {
			t.Fatalf("streamed cell %s failed: %v", cell.CellRef, cerr)
		}
		if _, dup := streamed[cell.CellRef]; dup {
			t.Fatalf("cell %s streamed twice", cell.CellRef)
		}
		cell.Run.Elapsed = 0
		streamed[cell.CellRef] = cell.Run
	}
	if len(streamed) != len(grid) {
		t.Fatalf("streamed %d cells, grid has %d", len(streamed), len(grid))
	}
	for _, cell := range grid {
		got, ok := streamed[cell.CellRef]
		if !ok {
			t.Fatalf("cell %s missing from the stream", cell.CellRef)
		}
		cell.Run.Elapsed = 0
		if got != cell.Run {
			t.Fatalf("cell %s: streamed run differs from merged grid:\n stream %+v\n grid   %+v",
				cell.CellRef, got, cell.Run)
		}
	}
}

// TestSweepResultsEarlyBreak: breaking out of the iteration must stop the
// sweep instead of leaking the pool.
func TestSweepResultsEarlyBreak(t *testing.T) {
	n := 0
	for range specsched.NewSweep(sweepOpts()...).Results(ctx) {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("iterated %d cells after break-at-2", n)
	}
}

// TestSweepCancelPromptlyWithCheckpoint is the acceptance test for
// cancellation: canceling mid-sweep returns ErrCanceled promptly, leaves a
// valid resumable checkpoint holding the completed cells, and a fresh
// sweep over the same grid serves them from the checkpoint.
func TestSweepCancelPromptlyWithCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	cctx, cancel := context.WithCancel(ctx)
	var once sync.Once
	opts := []specsched.SweepOption{
		specsched.SweepConfigs("Baseline_0"),
		specsched.SweepWorkloads("gzip", "mcf", "swim"),
		specsched.SweepWarmup(1000),
		// Cells long enough (hundreds of ms) that the cancel always lands
		// mid-cell.
		specsched.SweepMeasure(300000),
		specsched.SweepJobs(1),
		specsched.SweepCheckpoint(ckpt),
		specsched.SweepProgress(func(specsched.Progress) { once.Do(cancel) }),
	}

	start := time.Now()
	cells, err := specsched.NewSweep(opts...).Run(cctx)
	if !errors.Is(err, specsched.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned %v, want ErrCanceled (and context.Canceled)", err)
	}
	// The first cell completes, then the cancel fires and the in-flight
	// cell must abort within the core's poll interval — bound the whole
	// tail generously for race-detector CI.
	if tail := time.Since(start); tail > 30*time.Second {
		t.Fatalf("cancel took %v to unwind", tail)
	}
	var done int
	for _, c := range cells {
		switch {
		case c.Err == nil:
			done++
		case !errors.Is(c.Err, specsched.ErrCanceled):
			t.Fatalf("cell %s failed with %v, want a cancellation error", c.CellRef, c.Err)
		}
	}
	if done == 0 {
		t.Fatal("no cell completed before the cancel")
	}

	// The checkpoint is valid and complete cells resume from it.
	resumed, err := specsched.NewSweep(append(opts[:len(opts)-1],
		specsched.SweepMeasure(300000))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for _, c := range resumed {
		if c.Cached {
			cached++
		}
	}
	if cached < done {
		t.Fatalf("resume served %d cells from the checkpoint, want >= %d", cached, done)
	}
}

// TestSweepReportCacheShared: two reports on one Sweep share simulations
// (every figure needs Baseline_0, which must only run once).
func TestSweepReportCacheShared(t *testing.T) {
	sweep := specsched.NewSweep(
		specsched.SweepWorkloads("gzip", "hmmer"),
		specsched.SweepWarmup(1000),
		specsched.SweepMeasure(4000),
	)
	if _, err := sweep.Report(ctx, "table2"); err != nil {
		t.Fatal(err)
	}
	after := sweep.SimulatedUOps()
	out, err := sweep.Report(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gzip") {
		t.Fatalf("report lost its rows:\n%s", out)
	}
	if sweep.SimulatedUOps() != after {
		t.Fatal("second identical report re-simulated cells")
	}
	if len(sweep.Snapshot()) == 0 {
		t.Fatal("snapshot empty after a report")
	}
}

// TestPresetsPackage sanity-checks the name helpers against the canonical
// listing.
func TestPresetsPackage(t *testing.T) {
	names := presets.Names()
	if len(names) == 0 {
		t.Fatal("no presets listed")
	}
	for _, n := range names {
		if !presets.Valid(n) {
			t.Errorf("listed preset %q does not validate", n)
		}
	}
	for _, n := range []string{
		presets.Baseline(0), presets.BaselineSingleLoad(),
		presets.SpecSched(4, true), presets.SpecSched(4, false),
		presets.Shift(4), presets.BankPred(4), presets.Ctr(4),
		presets.Filter(4), presets.Combined(4), presets.Crit(4),
		presets.WideWindow(presets.Baseline(0)),
	} {
		if !presets.Valid(n) {
			t.Errorf("constructed preset name %q does not validate", n)
		}
	}
	if presets.Valid(presets.Baseline(3)) {
		t.Error("unregistered delay 3 must not validate")
	}
	if got := presets.Crit(4); got != "SpecSched_4_Crit" {
		t.Errorf("Crit(4) = %q", got)
	}
}

// TestWorkloadTrace: the µ-op dump is non-empty and bounded.
func TestWorkloadTrace(t *testing.T) {
	uops, err := specsched.WorkloadByName("gzip").Trace(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(uops) != 10 {
		t.Fatalf("Trace returned %d µ-ops, want 10", len(uops))
	}
	if _, err := specsched.WorkloadByName("nope").Trace(1); !errors.Is(err, specsched.ErrUnknownWorkload) {
		t.Fatalf("Trace on unknown workload: %v", err)
	}
	kuops, err := specsched.StencilWorkload(1 << 10).Trace(3)
	if err != nil || len(kuops) != 3 {
		t.Fatalf("kernel trace: %v (%d µ-ops)", err, len(kuops))
	}
}

// TestTraceWorkloadRoundTrip pins the public record/replay contract end to
// end: Record a workload, simulate the trace, and get a Run bit-identical
// to the live simulation (Elapsed excluded — it is wall clock).
func TestTraceWorkloadRoundTrip(t *testing.T) {
	const warm, measure = 1000, 5000
	dir := t.TempDir()
	path := filepath.Join(dir, "gzip.trace")
	if err := specsched.WorkloadByName("gzip").Record(path, warm+measure+8192); err != nil {
		t.Fatal(err)
	}

	info, err := specsched.ReadTraceInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.UOps != warm+measure+8192 || !strings.HasPrefix(info.Generator, "profile:gzip") {
		t.Fatalf("unexpected trace info %+v", info)
	}
	if vinfo, err := specsched.VerifyTrace(path); err != nil || vinfo != info {
		t.Fatalf("VerifyTrace = %+v, %v; want %+v", vinfo, err, info)
	}

	run := func(w specsched.Workload) results.Run {
		r, err := specsched.NewSimulator(
			specsched.WithWorkloadSpec(w),
			specsched.WithPreset("SpecSched_4"),
			specsched.WithWarmup(warm),
			specsched.WithMeasure(measure),
		).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		r.Elapsed = 0
		return r
	}
	live := run(specsched.WorkloadByName("gzip"))
	replay := run(specsched.TraceWorkload(path))
	replay.Workload = live.Workload // display name differs only if stems differ
	if live != replay {
		t.Fatalf("trace replay diverged from live run:\n live   %+v\n replay %+v", live, replay)
	}

	// The io.Reader variant replays identically and is reusable.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wr := specsched.TraceWorkloadReader(f)
	for i := 0; i < 2; i++ {
		rr := run(wr)
		rr.Workload = live.Workload
		if live != rr {
			t.Fatalf("reader replay %d diverged from live run", i)
		}
	}
}

// TestTraceErrorTaxonomy checks every ErrBadTrace path reachable through
// the public API.
func TestTraceErrorTaxonomy(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "missing.trace")
	junk := filepath.Join(dir, "junk.trace")
	if err := os.WriteFile(junk, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.trace")
	if err := specsched.StreamWorkload(8<<10).Record(short, 2000); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		err  func() error
	}{
		{"missing file", func() error { _, e := specsched.ReadTraceInfo(missing); return e }},
		{"junk info", func() error { _, e := specsched.ReadTraceInfo(junk); return e }},
		{"junk verify", func() error { _, e := specsched.VerifyTrace(junk); return e }},
		{"junk simulate", func() error {
			_, e := specsched.NewSimulator(specsched.WithWorkloadSpec(specsched.TraceWorkload(junk))).Run(ctx)
			return e
		}},
		{"window longer than trace", func() error {
			_, e := specsched.NewSimulator(
				specsched.WithWorkloadSpec(specsched.TraceWorkload(short)),
				specsched.WithWarmup(1000), specsched.WithMeasure(60000)).Run(ctx)
			return e
		}},
		{"trace runs dry inside the fetch-ahead", func() error {
			// Count covers warmup+measure, but not the fetch-ahead past
			// the last committed µ-op: the run completes, yet its machine
			// state diverged from live generation — must fail, not return
			// silently different statistics.
			tight := filepath.Join(dir, "tight.trace")
			if err := specsched.WorkloadByName("gzip").Record(tight, 1000+5000+100); err != nil {
				return err
			}
			_, e := specsched.NewSimulator(
				specsched.WithWorkloadSpec(specsched.TraceWorkload(tight)),
				specsched.WithWarmup(1000), specsched.WithMeasure(5000)).Run(ctx)
			return e
		}},
		{"sweep cell over too-short trace", func() error {
			cells, _ := specsched.NewSweep(
				specsched.SweepConfigs("Baseline_0"),
				specsched.SweepTraces(short),
				specsched.SweepWarmup(1000), specsched.SweepMeasure(60000)).Run(ctx)
			if len(cells) != 1 {
				t.Fatalf("sweep returned %d cells, want 1", len(cells))
			}
			// The cell's own error must carry the sentinel, exactly like
			// the Simulator path reports the same defect.
			return cells[0].Err
		}},
		{"sweep over junk trace", func() error {
			_, e := specsched.NewSweep(
				specsched.SweepConfigs("Baseline_0"),
				specsched.SweepTraces(junk)).Run(ctx)
			return e
		}},
	} {
		if err := tc.err(); !errors.Is(err, specsched.ErrBadTrace) {
			t.Errorf("%s: error %v does not match ErrBadTrace", tc.name, err)
		}
	}

	// Recording an unbounded workload without a count is a config error,
	// not a trace error.
	if err := specsched.WorkloadByName("gzip").Record(filepath.Join(dir, "x.trace"), 0); !errors.Is(err, specsched.ErrInvalidConfig) {
		t.Errorf("count-less Record: %v, want ErrInvalidConfig", err)
	}
}

// TestSweepTraces runs a sweep grid over recorded traces and pins three
// properties: trace cells replay bit-identically to the synthetic cells
// they recorded, the workload axis defaults to the traces alone, and the
// checkpoint fingerprint embeds the trace digest (so a swapped file
// invalidates the checkpoint instead of contaminating the resume).
func TestSweepTraces(t *testing.T) {
	const warm, measure = 1000, 4000
	dir := t.TempDir()
	for _, wl := range []string{"gzip", "hmmer"} {
		if err := specsched.WorkloadByName(wl).Record(
			filepath.Join(dir, wl+".trace"), warm+measure+8192); err != nil {
			t.Fatal(err)
		}
	}
	glob := []string{filepath.Join(dir, "gzip.trace"), filepath.Join(dir, "hmmer.trace")}

	base := []specsched.SweepOption{
		specsched.SweepConfigs("Baseline_0", "SpecSched_4"),
		specsched.SweepWarmup(warm),
		specsched.SweepMeasure(measure),
	}
	live, err := specsched.NewSweep(append(base, specsched.SweepWorkloads("gzip", "hmmer"))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := specsched.NewSweep(append(base, specsched.SweepTraces(glob...))...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(live) {
		t.Fatalf("trace sweep has %d cells, live sweep %d", len(replay), len(live))
	}
	for i := range live {
		lr, rr := live[i].Run, replay[i].Run
		lr.Elapsed, rr.Elapsed = 0, 0
		if live[i].CellRef != replay[i].CellRef || lr != rr {
			t.Fatalf("cell %d diverged:\n live   %v %+v\n replay %v %+v",
				i, live[i].CellRef, lr, replay[i].CellRef, rr)
		}
	}

	// Checkpointed trace sweep: resuming with an unchanged file reuses the
	// cells; swapping the trace contents under the same path is rejected.
	ckpt := filepath.Join(dir, "sweep.ckpt")
	withCkpt := append(base, specsched.SweepTraces(glob...), specsched.SweepCheckpoint(ckpt))
	if _, err := specsched.NewSweep(withCkpt...).Run(ctx); err != nil {
		t.Fatal(err)
	}
	resumed, err := specsched.NewSweep(withCkpt...).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, c := range resumed {
		if c.Cached {
			cached++
		}
	}
	if cached != len(resumed) {
		t.Fatalf("resume with unchanged traces reused %d/%d cells", cached, len(resumed))
	}
	if err := specsched.WorkloadByName("gzip").Record(
		filepath.Join(dir, "gzip.trace"), warm+measure+9000); err != nil {
		t.Fatal(err)
	}
	if _, err := specsched.NewSweep(withCkpt...).Run(ctx); !errors.Is(err, specsched.ErrInvalidConfig) {
		t.Fatalf("resume against swapped trace: %v, want fingerprint rejection (ErrInvalidConfig)", err)
	}
}
