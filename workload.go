package specsched

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"

	"specsched/internal/trace"
	"specsched/internal/traceio"
	"specsched/internal/uop"
)

// AgenKind selects an address-generation pattern for the memory µ-ops of a
// custom workload profile.
type AgenKind uint8

const (
	// AgenStride walks an array with a fixed byte stride, wrapping at the
	// footprint boundary.
	AgenStride AgenKind = iota
	// AgenRandom draws addresses uniformly from the footprint.
	AgenRandom
	// AgenChase emits a serialized pointer chase: each load's address
	// depends on the previously loaded value.
	AgenChase
)

// AgenSpec describes one address-stream family of a custom profile; memory
// slots of the synthetic program bind to a family by Weight.
type AgenSpec struct {
	Kind AgenKind
	// Footprint is the working-set size in bytes (rounded up to a power
	// of two internally).
	Footprint int
	// Stride is the byte stride for AgenStride.
	Stride int
	// Weight is the relative probability that a static memory slot of
	// the program binds to this family.
	Weight float64
}

// Profile parameterizes a custom synthetic workload: a static control-flow
// graph of basic blocks whose instruction slots have fixed classes, fixed
// register templates and — for memory slots — a fixed address-stream
// family. The fields control the statistical structure that drives
// scheduling behaviour: instruction mix, dependence distances (ILP),
// address streams (cache hit rates and bank behaviour) and branch
// predictability. See the delaysweep example for a worked profile.
type Profile struct {
	Name string
	Seed uint64

	// Static program shape.
	Blocks   int // number of basic blocks
	BlockLen int // mean non-branch µ-ops per block

	// Instruction mix.
	LoadFrac   float64 // fraction of slots that are loads
	StoreFrac  float64 // fraction of slots that are stores
	FPFrac     float64 // fraction of compute slots that are FP
	MulDivFrac float64 // fraction of compute slots that are long-latency

	// Dependence structure.
	MeanDepDist float64 // mean register dependence distance in µ-ops
	UseBaseFrac float64 // fraction of sources reading loop-invariant bases
	// AddrDepFrac is the fraction of (non-chase) loads whose address
	// register comes from a recent result instead of a loop-invariant
	// base — pointer arithmetic that puts the load on a dependence chain.
	AddrDepFrac float64
	// LoadUseFrac is the probability that the first compute µ-op after a
	// load consumes that load's result.
	LoadUseFrac float64

	// Address streams; memory slots bind to one family by Weight.
	Agens []AgenSpec

	// Branch behaviour (one conditional branch per block).
	InnerLoopFrac    float64 // blocks ending in a self-loop branch
	LoopTrip         int     // trip count of self-loops
	SkipFrac         float64 // blocks ending in a biased forward skip
	SkipBias         float64 // taken probability of skips
	RandomBranchFrac float64 // blocks ending in an unpredictable branch
}

// toTrace converts the public profile to the internal generator profile.
func (p Profile) toTrace() trace.Profile {
	agens := make([]trace.AgenSpec, len(p.Agens))
	for i, a := range p.Agens {
		agens[i] = trace.AgenSpec{
			Kind:      trace.AgenKind(a.Kind),
			Footprint: a.Footprint,
			Stride:    a.Stride,
			Weight:    a.Weight,
		}
	}
	return trace.Profile{
		Name:             p.Name,
		Seed:             p.Seed,
		Blocks:           p.Blocks,
		BlockLen:         p.BlockLen,
		LoadFrac:         p.LoadFrac,
		StoreFrac:        p.StoreFrac,
		FPFrac:           p.FPFrac,
		MulDivFrac:       p.MulDivFrac,
		MeanDepDist:      p.MeanDepDist,
		UseBaseFrac:      p.UseBaseFrac,
		AddrDepFrac:      p.AddrDepFrac,
		LoadUseFrac:      p.LoadUseFrac,
		Agens:            agens,
		InnerLoopFrac:    p.InnerLoopFrac,
		LoopTrip:         p.LoopTrip,
		SkipFrac:         p.SkipFrac,
		SkipBias:         p.SkipBias,
		RandomBranchFrac: p.RandomBranchFrac,
	}
}

// kernelSeed is the default RNG seed of the synthetic kernels (overridable
// with WithSeed); named profiles default to their calibrated seed instead.
const kernelSeed = 7

// builtWorkload is one realized workload instance: the µ-op stream, the
// seed the wrong-path filler generator uses, a generator fingerprint for
// trace recording, the stream's µ-op bound (0 = infinite), and — for
// replayed traces — a probe distinguishing clean stream exhaustion from
// mid-stream decode corruption.
type builtWorkload struct {
	stream uop.Stream
	wpSeed uint64
	gen    string
	count  int64
	srcErr func() error
}

// Workload selects the µ-op stream a Simulator runs: a named profile from
// the Table 2 suite, a custom Profile, one of the synthetic kernels, or a
// recorded trace. The zero value selects nothing and fails at Run with
// ErrUnknownWorkload.
type Workload struct {
	name string
	// build constructs the stream. seedSet reports whether seed overrides
	// the workload's default.
	build func(seed uint64, seedSet bool) (builtWorkload, error)
}

// Name returns the workload's display name ("" for the zero value).
func (w Workload) Name() string { return w.name }

// WorkloadByName selects a profile from the Table 2 suite by benchmark
// name. The name is resolved when the workload is used; an unknown name
// surfaces as ErrUnknownWorkload.
func WorkloadByName(name string) Workload {
	return Workload{name: name, build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		p, err := trace.ByName(name)
		if err != nil {
			return builtWorkload{}, wrapErr(ErrUnknownWorkload, err)
		}
		if seedSet {
			p = p.WithSeed(seed)
		}
		return builtWorkload{
			stream: trace.New(p),
			wpSeed: p.Seed,
			gen:    fmt.Sprintf("profile:%s seed=%d", name, p.Seed),
		}, nil
	}}
}

// CustomWorkload builds a workload from a custom synthetic profile. An
// invalid profile surfaces as ErrInvalidConfig when the workload is used.
func CustomWorkload(p Profile) Workload {
	return Workload{name: p.Name, build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		tp := p.toTrace()
		if seedSet {
			tp = tp.WithSeed(seed)
		}
		if err := tp.Validate(); err != nil {
			return builtWorkload{}, wrapErr(ErrInvalidConfig, err)
		}
		return builtWorkload{
			stream: trace.New(tp),
			wpSeed: tp.Seed,
			gen:    fmt.Sprintf("custom:%s seed=%d", tp.Name, tp.Seed),
		}, nil
	}}
}

// StencilWorkload is the bank-conflict kernel: c[i] = a[i] + b[i] with the
// arrays laid out so each iteration's two loads map to the same L1 bank —
// the pattern Schedule Shifting (§5.1) absorbs. footprint is the per-array
// working set in bytes.
func StencilWorkload(footprint int) Workload {
	return Workload{name: "stencil", build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		return builtWorkload{
			stream: trace.NewStencil(footprint),
			wpSeed: orDefault(seed, seedSet),
			gen:    fmt.Sprintf("kernel:stencil footprint=%d", footprint),
		}, nil
	}}
}

// StreamWorkload is a streaming reduction (sum += a[i]) over footprint
// bytes: sequential loads with a loop-carried dependence only through the
// accumulator.
func StreamWorkload(footprint int) Workload {
	return Workload{name: "stream", build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		return builtWorkload{
			stream: trace.NewStreamSum(footprint),
			wpSeed: orDefault(seed, seedSet),
			gen:    fmt.Sprintf("kernel:stream footprint=%d", footprint),
		}, nil
	}}
}

// PointerChaseWorkload is a serialized pointer chase over nodes list nodes:
// every load's address depends on the previous load's value, the
// worst case for load-to-use latency.
func PointerChaseWorkload(nodes int) Workload {
	return Workload{name: "chase", build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		s := orDefault(seed, seedSet)
		return builtWorkload{
			stream: trace.NewPointerChase(s, nodes),
			wpSeed: s,
			gen:    fmt.Sprintf("kernel:chase nodes=%d seed=%d", nodes, s),
		}, nil
	}}
}

func orDefault(seed uint64, seedSet bool) uint64 {
	if seedSet {
		return seed
	}
	return kernelSeed
}

// buildTraceStream decodes an in-memory trace into a built workload. An
// explicit WithSeed overrides the recorded wrong-path seed (the
// correct-path stream is fixed by the file); without one, replay
// reproduces the recording workload's statistics bit for bit.
func buildTraceStream(data []byte, seed uint64, seedSet bool) (builtWorkload, error) {
	d, err := traceio.NewDecoder(bytes.NewReader(data))
	if err != nil {
		return builtWorkload{}, wrapErr(ErrBadTrace, err)
	}
	h := d.Header()
	wpSeed := h.WrongPathSeed
	if seedSet {
		wpSeed = seed
	}
	return builtWorkload{
		stream: d,
		wpSeed: wpSeed,
		gen:    h.Generator,
		count:  h.Count,
		srcErr: d.Err,
	}, nil
}

// TraceWorkload replays a recorded µ-op trace (see Workload.Record and
// cmd/tracedump). Replaying an uncorrupted trace of a workload produces a
// Run bit-identical to simulating that workload live; the file is
// re-opened on every use, so the workload is reusable like any other. An
// unusable file surfaces as ErrBadTrace when the workload is used.
func TraceWorkload(path string) Workload {
	return Workload{name: traceio.WorkloadName(path), build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return builtWorkload{}, wrapErr(ErrBadTrace, err)
		}
		return buildTraceStream(data, seed, seedSet)
	}}
}

// TraceWorkloadReader is TraceWorkload over any reader — an embedded
// asset, a network body, an in-memory recording. The reader is drained
// once, on first use, and the bytes are retained so the workload stays
// reusable.
func TraceWorkloadReader(r io.Reader) Workload {
	load := sync.OnceValues(func() ([]byte, error) { return io.ReadAll(r) })
	return Workload{name: "trace", build: func(seed uint64, seedSet bool) (builtWorkload, error) {
		data, err := load()
		if err != nil {
			return builtWorkload{}, wrapErr(ErrBadTrace, err)
		}
		return buildTraceStream(data, seed, seedSet)
	}}
}

// RecordTo records the first n µ-ops of the workload's dynamic stream as
// a binary trace on dst (see DESIGN.md §9 for the format). The recording
// captures everything replay needs for bit-identity — including the
// wrong-path generator seed — so TraceWorkload on the result simulates
// exactly like the live workload. For workloads that are themselves
// recorded traces, n <= 0 means "the whole trace", and re-recording one
// reproduces it byte for byte.
func (w Workload) RecordTo(dst io.Writer, n int64) error {
	if w.build == nil {
		return wrapErrf(ErrUnknownWorkload, "specsched: no workload selected")
	}
	b, err := w.build(0, false)
	if err != nil {
		return err
	}
	if n <= 0 {
		n = b.count
	}
	if n <= 0 {
		return wrapErrf(ErrInvalidConfig,
			"specsched: recording an unbounded workload needs an explicit µ-op count")
	}
	if _, err := traceio.Record(dst, b.stream, n, b.gen, b.wpSeed); err != nil {
		if b.srcErr != nil && b.srcErr() != nil {
			return wrapErr(ErrBadTrace, b.srcErr())
		}
		return wrapErr(ErrInvalidConfig, err)
	}
	return nil
}

// Record is RecordTo into a file, created (or truncated) at path. On
// error the partial file is removed.
func (w Workload) Record(path string, n int64) error {
	f, err := os.Create(path)
	if err != nil {
		return wrapErr(ErrInvalidConfig, err)
	}
	if err := w.RecordTo(f, n); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return wrapErr(ErrInvalidConfig, err)
	}
	return nil
}

// TraceInfo is the self-describing front matter of a recorded trace.
type TraceInfo struct {
	// Version is the trace format version the file was written with.
	Version int
	// Generator fingerprints what produced the stream (e.g.
	// "profile:gzip seed=1001"); re-recording preserves it.
	Generator string
	// UOps is the number of µ-ops recorded.
	UOps int64
	// Digest is the FNV-64a digest of the encoded µ-op payload — the
	// identity sweep checkpoints use to detect swapped trace files.
	Digest uint64
	// WrongPathSeed seeds wrong-path fetch at replay, reproducing the
	// recording workload's wrong-path behaviour bit for bit.
	WrongPathSeed uint64
}

// ReadTraceInfo reads and validates a trace's header without decoding its
// body. Unreadable or non-trace files surface as ErrBadTrace.
func ReadTraceInfo(path string) (TraceInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceInfo{}, wrapErr(ErrBadTrace, err)
	}
	defer f.Close()
	h, err := traceio.ReadInfo(f)
	if err != nil {
		return TraceInfo{}, wrapErr(ErrBadTrace, err)
	}
	return traceInfoFromHeader(h), nil
}

// VerifyTrace fully decodes the trace at path, checking every record, the
// µ-op count, and the body digest. Any corruption surfaces as ErrBadTrace.
func VerifyTrace(path string) (TraceInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceInfo{}, wrapErr(ErrBadTrace, err)
	}
	defer f.Close()
	h, err := traceio.Verify(f)
	if err != nil {
		return TraceInfo{}, wrapErr(ErrBadTrace, err)
	}
	return traceInfoFromHeader(h), nil
}

// Trace renders the first n µ-ops of the workload's dynamic stream, one
// formatted µ-op per element — the inspection hook behind cmd/tracedump.
// Streams over before n µ-ops return what was produced.
func (w Workload) Trace(n int) ([]string, error) {
	if w.build == nil {
		return nil, wrapErrf(ErrUnknownWorkload, "specsched: no workload selected")
	}
	b, err := w.build(0, false)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		u, ok := b.stream.Next()
		if !ok {
			if b.srcErr != nil && b.srcErr() != nil {
				return out, wrapErr(ErrBadTrace, b.srcErr())
			}
			break
		}
		out = append(out, u.String())
	}
	return out, nil
}

// WorkloadInfo describes one benchmark of the Table 2 suite.
type WorkloadInfo struct {
	// Name is the benchmark name, accepted by WorkloadByName and the sweep
	// workload options.
	Name string
	// PaperIPC is the IPC the paper's Table 2 reports for the benchmark
	// the synthetic profile imitates.
	PaperIPC float64
}

// Workloads lists the Table 2 benchmark suite in the paper's table order.
func Workloads() []WorkloadInfo {
	ps := trace.Profiles()
	out := make([]WorkloadInfo, len(ps))
	for i, p := range ps {
		out[i] = WorkloadInfo{Name: p.Name, PaperIPC: p.PaperIPC}
	}
	return out
}

// WorkloadNames lists the suite's workload names in table order.
func WorkloadNames() []string { return trace.ProfileNames() }

// validateWorkloads fails fast on a sweep over unknown workload names.
func validateWorkloads(names []string) error {
	for _, n := range names {
		if _, err := trace.ByName(n); err != nil {
			return wrapErr(ErrUnknownWorkload, fmt.Errorf("workload %q: %w", n, err))
		}
	}
	return nil
}
