package specsched

import (
	"reflect"
	"testing"

	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/results"
)

// TestRunFieldParity pins the conversion contract behind runFromStats:
// every field of the internal stats.Run must exist in the public
// results.Run with the same name and type (results.Run may add
// public-only fields such as Elapsed). A new internal counter that is not
// mirrored publicly fails here, not as a silent zero in user reports.
func TestRunFieldParity(t *testing.T) {
	st := reflect.TypeFor[stats.Run]()
	rt := reflect.TypeFor[results.Run]()
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		pub, ok := rt.FieldByName(f.Name)
		if !ok {
			t.Errorf("stats.Run.%s has no counterpart in results.Run", f.Name)
			continue
		}
		if pub.Type != f.Type {
			t.Errorf("results.Run.%s is %v, internal counter is %v", f.Name, pub.Type, f.Type)
		}
	}
	// The scheduler observability counters are part of the public results
	// contract in their own right, not merely mirrors of whatever the
	// internal record happens to hold: pin them by name so dropping one
	// from stats.Run fails here instead of silently shrinking the API.
	for _, name := range []string{
		"SchedWakeups", "SchedEvents",
		"SkippedCycles", "SkipSpans",
		"SchedBitmapPicks", "SchedBitmapWords",
	} {
		if f, ok := rt.FieldByName(name); !ok {
			t.Errorf("results.Run lacks scheduler observability counter %s", name)
		} else if f.Type.Kind() != reflect.Int64 {
			t.Errorf("results.Run.%s is %v, want int64", name, f.Type)
		}
	}
}

// TestRunFromStatsCopiesEverything: a fully populated internal record must
// convert with no field dropped.
func TestRunFromStatsCopiesEverything(t *testing.T) {
	var sr stats.Run
	sv := reflect.ValueOf(&sr).Elem()
	for i := 0; i < sv.NumField(); i++ {
		switch f := sv.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(i + 1))
		case reflect.String:
			f.SetString("x")
		}
	}
	out := runFromStats(&sr)
	ov := reflect.ValueOf(out)
	st := sv.Type()
	for i := 0; i < st.NumField(); i++ {
		got := ov.FieldByName(st.Field(i).Name)
		if want := sv.Field(i); !want.Equal(got) {
			t.Errorf("field %s: converted %v, want %v", st.Field(i).Name, got, want)
		}
	}
}

// TestAgenKindParity pins the numeric correspondence the Profile
// conversion relies on.
func TestAgenKindParity(t *testing.T) {
	pairs := []struct {
		pub AgenKind
		in  trace.AgenKind
	}{
		{AgenStride, trace.AgenStride},
		{AgenRandom, trace.AgenRandom},
		{AgenChase, trace.AgenChase},
	}
	for _, p := range pairs {
		if uint8(p.pub) != uint8(p.in) {
			t.Errorf("public AgenKind %d != internal %d", p.pub, p.in)
		}
	}
}

// TestProfileFieldParity: the public Profile must mirror every exported
// field of the internal generator profile except the internal-only
// PaperIPC (calibration metadata, not a workload parameter).
func TestProfileFieldParity(t *testing.T) {
	internalOnly := map[string]bool{"PaperIPC": true}
	it := reflect.TypeFor[trace.Profile]()
	pt := reflect.TypeFor[Profile]()
	for i := 0; i < it.NumField(); i++ {
		f := it.Field(i)
		if internalOnly[f.Name] {
			continue
		}
		if _, ok := pt.FieldByName(f.Name); !ok {
			t.Errorf("trace.Profile.%s is not mirrored in the public Profile", f.Name)
		}
	}
	// And the conversion must transport every mirrored field: a profile
	// with distinct non-zero values round-trips.
	p := Profile{
		Name: "t", Seed: 1, Blocks: 2, BlockLen: 3,
		LoadFrac: .04, StoreFrac: .05, FPFrac: .06, MulDivFrac: .07,
		MeanDepDist: 8, UseBaseFrac: .09, AddrDepFrac: .10, LoadUseFrac: .11,
		Agens:         []AgenSpec{{Kind: AgenChase, Footprint: 12, Stride: 13, Weight: 14}},
		InnerLoopFrac: .15, LoopTrip: 16, SkipFrac: .17, SkipBias: .18, RandomBranchFrac: .19,
	}
	tp := p.toTrace()
	tv := reflect.ValueOf(tp)
	pv := reflect.ValueOf(p)
	for i := 0; i < pt.NumField(); i++ {
		name := pt.Field(i).Name
		if name == "Agens" {
			continue // different element types, checked below
		}
		if got, want := tv.FieldByName(name).Interface(), pv.Field(i).Interface(); got != want {
			t.Errorf("toTrace dropped %s: %v != %v", name, got, want)
		}
	}
	if len(tp.Agens) != 1 || tp.Agens[0] != (trace.AgenSpec{Kind: trace.AgenChase, Footprint: 12, Stride: 13, Weight: 14}) {
		t.Errorf("toTrace mangled Agens: %+v", tp.Agens)
	}
}
