// Package stats collects and aggregates simulation statistics.
//
// A Run holds the raw event counters of one simulation (one workload × one
// configuration). Aggregation helpers implement the paper's reporting
// conventions: performance is normalized per-benchmark against a baseline
// run and averaged with the geometric mean (§5: "when averaging speedups,
// the geometric mean is used"), while µ-op counts are reported as fractions
// of the baseline's issued µ-ops (Fig. 4b, 5b, 7b, 8b).
package stats

import (
	"reflect"
	"sort"

	"specsched/results"
)

// Run holds the counters of a single simulation run.
type Run struct {
	Workload string
	Config   string

	// Cycles is the number of simulated cycles in the measurement window.
	Cycles int64
	// Committed is the number of correct-path µ-ops retired.
	Committed int64

	// Issued is the total number of issue events, including re-issues of
	// replayed µ-ops and wrong-path issues.
	Issued int64
	// Unique is the number of distinct µ-ops issued at least once
	// (correct or wrong path) — the paper's "Unique" category.
	Unique int64
	// ReplayedMiss counts µ-ops squashed and re-issued because of an L1
	// load miss that was speculatively scheduled as a hit ("RpldMiss").
	ReplayedMiss int64
	// ReplayedBank counts µ-ops squashed and re-issued because of an L1
	// bank conflict ("RpldBank").
	ReplayedBank int64

	// Replay trigger events by cause.
	MissReplayEvents int64
	BankReplayEvents int64

	// Loads committed, L1 load hits/misses, and bank-conflict-delayed
	// loads observed at execute (correct path and wrong path alike).
	Loads         int64
	L1Hits        int64
	L1Misses      int64
	BankConflicts int64

	// Branch predictor performance.
	Branches    int64
	Mispredicts int64

	// Memory-order violations (loads squashed-refetched by older stores).
	MemOrderViolations int64
	// LateOperands counts µ-ops reaching Execute before a source was on
	// the bypass — a model-consistency diagnostic that should stay ~0.
	LateOperands int64

	// Scheduler occupancy sampling (sum over cycles, for averages).
	IQOccupancySum  int64
	ROBOccupancySum int64

	// Hit/miss arbitration outcomes: how many loads were allowed to wake
	// dependents speculatively vs. forced to wait for the hit signal.
	LoadsSpecWakeup    int64
	LoadsDelayedWakeup int64

	// Simulator-throughput diagnostics of the event-driven scheduler:
	// SchedWakeups counts consumers flushed from wakeup lists and
	// SchedEvents counts timing-wheel entries that fired (completions,
	// valid register wakeups, replay detections). Both are zero under the
	// scan implementation — they describe the simulator, not the simulated
	// machine — so equivalence comparisons must mask them (see
	// MaskSchedulerCounters).
	SchedWakeups int64
	SchedEvents  int64

	// Quiescent-cycle skipping diagnostics (config.TimeSkip, event
	// scheduler only): SkippedCycles is how many of Cycles were jumped
	// over event-to-event without executing the pipeline loop, SkipSpans
	// how many contiguous jumps that took. Cycles already includes the
	// skipped cycles — skipping is unobservable in every architectural
	// counter — so these too are simulator-side and masked by
	// MaskSchedulerCounters.
	SkippedCycles int64
	SkipSpans     int64

	// Bitmap ready-selection diagnostics (config.ReadyBitmap, event
	// scheduler only): SchedBitmapPicks counts candidates the bitmap pick
	// loop consumed (issued, re-parked, or budget-skipped) and
	// SchedBitmapWords counts occupancy words it scanned. Zero under the
	// scan implementation and under the list-based event ready queues;
	// simulator-side, so masked by MaskSchedulerCounters.
	SchedBitmapPicks int64
	SchedBitmapWords int64
}

// MaskSchedulerCounters returns a copy of r with the simulator-side
// scheduler diagnostics zeroed, leaving only architecturally meaningful
// counters — the form differential tests compare across scheduler
// implementations.
func (r *Run) MaskSchedulerCounters() Run {
	cp := *r
	cp.SchedWakeups = 0
	cp.SchedEvents = 0
	cp.SkippedCycles = 0
	cp.SkipSpans = 0
	cp.SchedBitmapPicks = 0
	cp.SchedBitmapWords = 0
	return cp
}

// Accumulate adds every counter of o into r — the pooling step that folds
// seed replicas of one (config, workload) cell into a single Run whose
// ratio statistics (IPC, miss rate, MPKI) become pooled-over-replicas
// values. It sums all int64 fields reflectively so future counters are
// pooled automatically; the identity fields (Workload, Config) are left
// untouched and must already agree.
func (r *Run) Accumulate(o *Run) {
	rv := reflect.ValueOf(r).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < rv.NumField(); i++ {
		if f := rv.Field(i); f.Kind() == reflect.Int64 {
			f.SetInt(f.Int() + ov.Field(i).Int())
		}
	}
}

// WakeupsPerCycle returns average consumer wakeups per simulated cycle.
func (r *Run) WakeupsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SchedWakeups) / float64(r.Cycles)
}

// EventsPerCycle returns average fired scheduler events per simulated cycle.
func (r *Run) EventsPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SchedEvents) / float64(r.Cycles)
}

// IPC returns committed µ-ops per cycle for the measurement window.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Replayed returns the total number of replayed µ-ops.
func (r *Run) Replayed() int64 { return r.ReplayedMiss + r.ReplayedBank }

// MPKI returns branch mispredictions per kilo-committed-µ-op.
func (r *Run) MPKI() float64 {
	if r.Committed == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Committed)
}

// L1MissRate returns the fraction of executed loads that missed in the L1.
func (r *Run) L1MissRate() float64 {
	if acc := r.L1Hits + r.L1Misses; acc > 0 {
		return float64(r.L1Misses) / float64(acc)
	}
	return 0
}

// GMean returns the geometric mean of xs. Non-positive entries are skipped;
// an empty input yields 0.
func GMean(xs []float64) float64 { return results.GMean(xs) }

// Speedup returns r's IPC relative to base's IPC.
func Speedup(r, base *Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// Set is a collection of runs indexed by (workload, config).
type Set struct {
	runs map[string]map[string]*Run // config -> workload -> run
	// order of insertion for stable iteration
	configs   []string
	workloads []string
	seenWl    map[string]bool
}

// NewSet returns an empty run set.
func NewSet() *Set {
	return &Set{
		runs:   make(map[string]map[string]*Run),
		seenWl: make(map[string]bool),
	}
}

// Add inserts a run, replacing any previous run for the same key.
func (s *Set) Add(r *Run) {
	m, ok := s.runs[r.Config]
	if !ok {
		m = make(map[string]*Run)
		s.runs[r.Config] = m
		s.configs = append(s.configs, r.Config)
	}
	if _, dup := m[r.Workload]; !dup && !s.seenWl[r.Workload] {
		s.workloads = append(s.workloads, r.Workload)
		s.seenWl[r.Workload] = true
	}
	m[r.Workload] = r
}

// Get returns the run for (config, workload), or nil.
func (s *Set) Get(config, workload string) *Run {
	if m, ok := s.runs[config]; ok {
		return m[workload]
	}
	return nil
}

// Configs returns configs in insertion order.
func (s *Set) Configs() []string { return append([]string(nil), s.configs...) }

// Workloads returns workloads in insertion order.
func (s *Set) Workloads() []string { return append([]string(nil), s.workloads...) }

// GMeanSpeedup returns the geometric-mean speedup of config over baseCfg
// across all workloads present in both.
func (s *Set) GMeanSpeedup(config, baseCfg string) float64 {
	var xs []float64
	for _, wl := range s.workloads {
		r, b := s.Get(config, wl), s.Get(baseCfg, wl)
		if r != nil && b != nil {
			xs = append(xs, Speedup(r, b))
		}
	}
	return GMean(xs)
}

// SumField sums fn over all workloads of a config.
func (s *Set) SumField(config string, fn func(*Run) int64) int64 {
	var total int64
	for _, wl := range s.workloads {
		if r := s.Get(config, wl); r != nil {
			total += fn(r)
		}
	}
	return total
}

// ReductionVs returns 1 - sum(fn over config)/sum(fn over baseCfg), i.e. the
// aggregate fractional reduction of a counter relative to a baseline config.
func (s *Set) ReductionVs(config, baseCfg string, fn func(*Run) int64) float64 {
	b := s.SumField(baseCfg, fn)
	if b == 0 {
		return 0
	}
	return 1 - float64(s.SumField(config, fn))/float64(b)
}

// Table is the fixed-width report table, now maintained in the public
// specsched/results package (the façade exposes it to embedders); these
// aliases keep the historical internal spelling working.
type Table = results.Table

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return results.NewTable(title, header...)
}

// SortedKeys returns the keys of a string-keyed map in sorted order; a small
// convenience for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
