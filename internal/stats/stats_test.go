package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func run(wl, cfg string, committed, cycles int64) *Run {
	return &Run{Workload: wl, Config: cfg, Committed: committed, Cycles: cycles}
}

func TestIPC(t *testing.T) {
	r := run("a", "c", 200, 100)
	if got := r.IPC(); got != 2.0 {
		t.Fatalf("IPC = %v, want 2", got)
	}
	empty := &Run{}
	if got := empty.IPC(); got != 0 {
		t.Fatalf("IPC of empty run = %v, want 0", got)
	}
}

func TestGMeanBasics(t *testing.T) {
	if g := GMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GMean(2,8) = %v, want 4", g)
	}
	if g := GMean(nil); g != 0 {
		t.Fatalf("GMean(nil) = %v, want 0", g)
	}
	if g := GMean([]float64{0, -1}); g != 0 {
		t.Fatalf("GMean of non-positives = %v, want 0", g)
	}
}

func TestGMeanSkipsNonPositive(t *testing.T) {
	if g := GMean([]float64{4, 0}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GMean(4,0) = %v, want 4 (0 skipped)", g)
	}
}

func TestGMeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a)/16 + 0.5, float64(b)/16 + 0.5, float64(c)/16 + 0.5}
		g1 := GMean(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 2
		}
		g2 := GMean(scaled)
		return math.Abs(g2-2*g1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	base := run("a", "base", 100, 100) // IPC 1
	fast := run("a", "fast", 150, 100) // IPC 1.5
	if s := Speedup(fast, base); math.Abs(s-1.5) > 1e-12 {
		t.Fatalf("Speedup = %v, want 1.5", s)
	}
	if s := Speedup(fast, &Run{}); s != 0 {
		t.Fatalf("Speedup vs zero baseline = %v, want 0", s)
	}
}

func TestSetRoundTrip(t *testing.T) {
	s := NewSet()
	s.Add(run("wl1", "cfgA", 100, 100))
	s.Add(run("wl2", "cfgA", 300, 100))
	s.Add(run("wl1", "cfgB", 200, 100))
	if got := s.Get("cfgA", "wl1").Committed; got != 100 {
		t.Fatalf("Get returned wrong run, committed = %d", got)
	}
	if s.Get("cfgC", "wl1") != nil {
		t.Fatal("Get of missing config should be nil")
	}
	if wls := s.Workloads(); len(wls) != 2 || wls[0] != "wl1" || wls[1] != "wl2" {
		t.Fatalf("Workloads = %v", wls)
	}
	if cfgs := s.Configs(); len(cfgs) != 2 || cfgs[0] != "cfgA" {
		t.Fatalf("Configs = %v", cfgs)
	}
}

func TestSetReplacesDuplicates(t *testing.T) {
	s := NewSet()
	s.Add(run("wl", "cfg", 100, 100))
	s.Add(run("wl", "cfg", 500, 100))
	if got := s.Get("cfg", "wl").Committed; got != 500 {
		t.Fatalf("duplicate Add did not replace: committed = %d", got)
	}
	if n := len(s.Workloads()); n != 1 {
		t.Fatalf("duplicate Add duplicated workload list: %d entries", n)
	}
}

func TestGMeanSpeedup(t *testing.T) {
	s := NewSet()
	s.Add(run("w1", "base", 100, 100))
	s.Add(run("w2", "base", 100, 100))
	s.Add(run("w1", "new", 200, 100)) // 2x
	s.Add(run("w2", "new", 50, 100))  // 0.5x
	if g := s.GMeanSpeedup("new", "base"); math.Abs(g-1.0) > 1e-12 {
		t.Fatalf("GMeanSpeedup = %v, want 1.0", g)
	}
}

func TestReductionVs(t *testing.T) {
	s := NewSet()
	a := run("w1", "base", 1, 1)
	a.ReplayedMiss = 100
	b := run("w1", "new", 1, 1)
	b.ReplayedMiss = 25
	s.Add(a)
	s.Add(b)
	red := s.ReductionVs("new", "base", func(r *Run) int64 { return r.ReplayedMiss })
	if math.Abs(red-0.75) > 1e-12 {
		t.Fatalf("ReductionVs = %v, want 0.75", red)
	}
	if red := s.ReductionVs("new", "missing", func(r *Run) int64 { return r.ReplayedMiss }); red != 0 {
		t.Fatalf("ReductionVs with empty base = %v, want 0", red)
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	r := &Run{Committed: 1000, Mispredicts: 5, L1Hits: 90, L1Misses: 10,
		ReplayedMiss: 7, ReplayedBank: 3}
	if m := r.MPKI(); math.Abs(m-5) > 1e-12 {
		t.Fatalf("MPKI = %v, want 5", m)
	}
	if mr := r.L1MissRate(); math.Abs(mr-0.1) > 1e-12 {
		t.Fatalf("L1MissRate = %v, want 0.1", mr)
	}
	if tot := r.Replayed(); tot != 10 {
		t.Fatalf("Replayed = %d, want 10", tot)
	}
	zero := &Run{}
	if zero.MPKI() != 0 || zero.L1MissRate() != 0 {
		t.Fatal("zero run derived metrics should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("x", "1")
	tb.AddRowf(2, "y", 3.14159)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "x", "3.14"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "3.14159") {
		t.Fatalf("AddRowf did not truncate precision:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("missing cell in output:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[1] != "b" || ks[2] != "c" {
		t.Fatalf("SortedKeys = %v", ks)
	}
}

// TestAccumulateSumsEveryCounter sets every int64 field of both operands
// to known values via reflection, so a future counter added to Run cannot
// silently escape seed-replica pooling.
func TestAccumulateSumsEveryCounter(t *testing.T) {
	a := &Run{Workload: "gzip", Config: "Baseline_0"}
	b := &Run{Workload: "gzip", Config: "Baseline_0"}
	av, bv := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem()
	n := 0
	for i := 0; i < av.NumField(); i++ {
		switch av.Field(i).Kind() {
		case reflect.Int64:
			av.Field(i).SetInt(int64(i + 1))
			bv.Field(i).SetInt(int64(10 * (i + 1)))
			n++
		case reflect.String: // identity fields, not pooled
		default:
			// Accumulate only sums int64 fields; any other counter kind
			// would silently escape seed-replica pooling.
			t.Fatalf("field %s has kind %s — extend Run.Accumulate (and this test) to pool it",
				av.Type().Field(i).Name, av.Field(i).Kind())
		}
	}
	if n < 20 {
		t.Fatalf("only %d int64 counters found — Run layout changed?", n)
	}
	a.Accumulate(b)
	for i := 0; i < av.NumField(); i++ {
		switch av.Field(i).Kind() {
		case reflect.Int64:
			if got, want := av.Field(i).Int(), int64(11*(i+1)); got != want {
				t.Errorf("field %s: got %d, want %d", av.Type().Field(i).Name, got, want)
			}
		case reflect.String:
			if av.Field(i).String() == "" {
				t.Errorf("identity field %s was clobbered", av.Type().Field(i).Name)
			}
		}
	}
}

// TestAccumulatePoolsRatios: pooled IPC is total committed over total
// cycles, not a mean of per-replica IPCs.
func TestAccumulatePoolsRatios(t *testing.T) {
	a := run("gzip", "Baseline_0", 100, 100) // IPC 1.0
	b := run("gzip", "Baseline_0", 100, 300) // IPC 0.33
	a.Accumulate(b)
	if got, want := a.IPC(), 200.0/400.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("pooled IPC %f, want %f", got, want)
	}
}

// TestMaskSchedulerCounters pins which counters are simulator-side: the
// differential suites compare masked records across scheduler
// implementations and time-advance modes, so a counter that describes the
// simulator (wakeups, fired events, skipped cycles) must zero out while
// every architectural counter survives.
func TestMaskSchedulerCounters(t *testing.T) {
	r := Run{
		Workload: "wl", Config: "cfg",
		Cycles: 100, Committed: 50, Issued: 60,
		SchedWakeups: 7, SchedEvents: 8, SkippedCycles: 40, SkipSpans: 3,
	}
	m := r.MaskSchedulerCounters()
	if m.SchedWakeups != 0 || m.SchedEvents != 0 || m.SkippedCycles != 0 || m.SkipSpans != 0 {
		t.Fatalf("simulator-side counters survived the mask: %+v", m)
	}
	if m.Cycles != 100 || m.Committed != 50 || m.Issued != 60 || m.Workload != "wl" {
		t.Fatalf("architectural counters damaged by the mask: %+v", m)
	}
}
