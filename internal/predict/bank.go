package predict

// BankPredictor predicts which L1 bank a static load will access, using
// per-PC last-bank history with a confidence counter — the
// "bank-history"-based scheme from Yoaz et al. that the paper discusses
// (§2.2, §4.2) as the predictive alternative to Schedule Shifting: instead
// of always delaying the second load's dependents, delay them only when
// the two loads are predicted to collide.
type BankPredictor struct {
	banks []uint8
	conf  []int8 // saturating 0..3; confident when >= 2
}

// NewBankPredictor builds a predictor with the given entry count (power of
// two).
func NewBankPredictor(entries int) *BankPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: bank predictor entries must be a positive power of two")
	}
	return &BankPredictor{
		banks: make([]uint8, entries),
		conf:  make([]int8, entries),
	}
}

func (b *BankPredictor) index(pc uint64) int {
	h := (pc >> 2) * 0x9e3779b97f4a7c15
	return int(h>>40) & (len(b.banks) - 1)
}

// Predict returns the predicted bank for the load at pc and whether the
// prediction is confident enough to act on.
func (b *BankPredictor) Predict(pc uint64) (bank int, confident bool) {
	i := b.index(pc)
	return int(b.banks[i]), b.conf[i] >= 2
}

// Update trains the predictor with the load's actual bank.
func (b *BankPredictor) Update(pc uint64, bank int) {
	i := b.index(pc)
	if b.banks[i] == uint8(bank) {
		if b.conf[i] < 3 {
			b.conf[i]++
		}
		return
	}
	if b.conf[i] > 0 {
		b.conf[i]--
		return
	}
	b.banks[i] = uint8(bank)
}
