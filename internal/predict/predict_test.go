package predict

import (
	"testing"

	"specsched/internal/rng"
)

func TestGlobalCounterStartsOptimistic(t *testing.T) {
	g := NewGlobalCounter()
	if !g.SpeculateHit() {
		t.Fatal("fresh counter must allow speculation")
	}
}

func TestGlobalCounterMissStorm(t *testing.T) {
	g := NewGlobalCounter()
	for i := 0; i < 4; i++ {
		g.Tick(true)
	}
	if g.SpeculateHit() {
		t.Fatalf("after 4 miss cycles value=%d, speculation should stop", g.Value())
	}
}

func TestGlobalCounterRecovery(t *testing.T) {
	g := NewGlobalCounter()
	for i := 0; i < 8; i++ {
		g.Tick(true)
	}
	if g.Value() != 0 {
		t.Fatalf("value = %d, want saturated at 0", g.Value())
	}
	// 2:1 asymmetry: 8 hit cycles take it back to the threshold.
	for i := 0; i < 7; i++ {
		g.Tick(false)
	}
	if g.SpeculateHit() {
		t.Fatal("recovered too early")
	}
	g.Tick(false)
	if !g.SpeculateHit() {
		t.Fatal("should speculate again after 8 clean cycles")
	}
}

func TestGlobalCounterSaturatesHigh(t *testing.T) {
	g := NewGlobalCounter()
	for i := 0; i < 100; i++ {
		g.Tick(false)
	}
	if g.Value() != 15 {
		t.Fatalf("value = %d, want 15", g.Value())
	}
}

func TestFilterAlwaysHitLoad(t *testing.T) {
	f := NewFilter(2048, 10000, false)
	pc := uint64(0x400)
	if f.Predict(pc) != FilterUnknown {
		t.Fatal("untrained entry should be unknown")
	}
	f.Update(pc, true)
	if f.Predict(pc) != FilterSureHit {
		t.Fatal("after one hit from transient start, entry should reach sure-hit")
	}
	for i := 0; i < 10; i++ {
		f.Update(pc, true)
	}
	if f.Predict(pc) != FilterSureHit {
		t.Fatal("sure-hit lost under consistent hits")
	}
}

func TestFilterAlwaysMissLoad(t *testing.T) {
	f := NewFilter(2048, 10000, false)
	pc := uint64(0x500)
	f.Update(pc, false)
	f.Update(pc, false)
	if f.Predict(pc) != FilterSureMiss {
		t.Fatalf("always-miss load predicted %v, want sure-miss", f.Predict(pc))
	}
}

func TestFilterSilencesOnFlip(t *testing.T) {
	f := NewFilter(2048, 10000, false)
	pc := uint64(0x600)
	f.Update(pc, true)  // ctr 2 -> 3
	f.Update(pc, false) // leaves saturated: silence
	if f.Predict(pc) != FilterUnknown {
		t.Fatal("flipping load must be silenced")
	}
	// Counter frozen while silent.
	for i := 0; i < 5; i++ {
		f.Update(pc, false)
	}
	if f.Predict(pc) != FilterUnknown {
		t.Fatal("silenced entry trained")
	}
}

func TestFilterSilenceReset(t *testing.T) {
	f := NewFilter(2048, 4, false)
	pc := uint64(0x700)
	f.Update(pc, true)
	f.Update(pc, false) // silenced; sinceReset=2
	f.Update(0x9999, true)
	f.Update(0x9999, true) // 4th update triggers reset
	if f.SilenceResets != 1 {
		t.Fatalf("SilenceResets = %d, want 1", f.SilenceResets)
	}
	// After the reset the frozen counter (3) speaks again.
	if f.Predict(pc) != FilterSureHit {
		t.Fatalf("after silence reset, predict = %v, want sure-hit (frozen ctr)", f.Predict(pc))
	}
}

func TestFilterNoSilenceAblation(t *testing.T) {
	f := NewFilter(2048, 10000, true)
	pc := uint64(0x800)
	// Plain 2-bit counter: tracks majority, MSB decides, never unknown.
	f.Update(pc, true)
	if f.Predict(pc) != FilterSureHit {
		t.Fatal("no-silence filter should predict hit")
	}
	f.Update(pc, false)
	f.Update(pc, false)
	f.Update(pc, false)
	if f.Predict(pc) != FilterSureMiss {
		t.Fatal("no-silence filter should flip to miss")
	}
}

func TestFilterMostlyMissWithRareHitsStaysUseful(t *testing.T) {
	// A libquantum-style load: misses dominate. With the silence bit the
	// entry silences on the rare hit but is revived by the periodic
	// reset, spending most of its time at sure-miss.
	f := NewFilter(2048, 100, false)
	r := rng.New(11)
	pc := uint64(0x900)
	sureMiss := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if f.Predict(pc) == FilterSureMiss {
			sureMiss++
		}
		f.Update(pc, r.Bool(0.02)) // 2% hits
	}
	if frac := float64(sureMiss) / n; frac < 0.35 {
		t.Fatalf("sure-miss fraction %.2f, want > 0.35 for a 98%%-miss load", frac)
	}
}

func TestFilterOutcomeString(t *testing.T) {
	if FilterSureHit.String() != "sure-hit" || FilterSureMiss.String() != "sure-miss" ||
		FilterUnknown.String() != "unknown" {
		t.Fatal("FilterOutcome stringer broken")
	}
}

func TestFilterInvalidGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid filter size did not panic")
		}
	}()
	NewFilter(1000, 10000, false)
}

func TestCriticalityDefaultsCritical(t *testing.T) {
	c := NewCriticality(8192, 4)
	if !c.Critical(0x400) {
		t.Fatal("untrained µ-op must default to critical (keep speculating)")
	}
}

func TestCriticalityLearnsNonCritical(t *testing.T) {
	c := NewCriticality(8192, 4)
	pc := uint64(0x400)
	c.Update(pc, false)
	if c.Critical(pc) {
		t.Fatal("one non-critical observation should flip the sign (0 -> -1)")
	}
	for i := 0; i < 20; i++ {
		c.Update(pc, false)
	}
	// Saturated at -8; takes 8 critical observations to flip back.
	for i := 0; i < 7; i++ {
		c.Update(pc, true)
	}
	if c.Critical(pc) {
		t.Fatal("hysteresis broken: flipped too early")
	}
	c.Update(pc, true)
	if !c.Critical(pc) {
		t.Fatal("should predict critical after sustained critical behaviour")
	}
}

func TestCriticalityCounterWidth(t *testing.T) {
	c := NewCriticality(64, 2) // range [-2, 1]
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		c.Update(pc, true)
	}
	for i := 0; i < 2; i++ {
		c.Update(pc, false)
	}
	// Saturation at +1 means two non-critical updates reach -1.
	if c.Critical(pc) {
		t.Fatal("2-bit counter should have flipped after two decrements")
	}
}

func TestCriticalityInvalidGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCriticality(100, 4) },
		func() { NewCriticality(64, 1) },
		func() { NewCriticality(64, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid criticality geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBankPredictorLearnsStableBank(t *testing.T) {
	b := NewBankPredictor(64)
	pc := uint64(0x40)
	if _, conf := b.Predict(pc); conf {
		t.Fatal("untrained predictor claims confidence")
	}
	for i := 0; i < 4; i++ {
		b.Update(pc, 5)
	}
	bank, conf := b.Predict(pc)
	if !conf || bank != 5 {
		t.Fatalf("Predict = (%d, %t), want (5, true)", bank, conf)
	}
}

func TestBankPredictorTracksChange(t *testing.T) {
	b := NewBankPredictor(64)
	pc := uint64(0x40)
	for i := 0; i < 4; i++ {
		b.Update(pc, 2)
	}
	// Bank changes: confidence must decay before the new bank installs.
	for i := 0; i < 8; i++ {
		b.Update(pc, 7)
	}
	bank, conf := b.Predict(pc)
	if !conf || bank != 7 {
		t.Fatalf("Predict after change = (%d, %t), want (7, true)", bank, conf)
	}
}

func TestBankPredictorAlternatingStaysUnconfident(t *testing.T) {
	b := NewBankPredictor(64)
	pc := uint64(0x40)
	for i := 0; i < 50; i++ {
		b.Update(pc, i%2)
	}
	if _, conf := b.Predict(pc); conf {
		t.Fatal("alternating banks should not yield confidence")
	}
}

func TestBankPredictorInvalidGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid size did not panic")
		}
	}()
	NewBankPredictor(100)
}
