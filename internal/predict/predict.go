// Package predict implements the paper's scheduling-side predictors:
//
//   - GlobalCounter: the Alpha 21264's 4-bit saturating counter whose MSB
//     decides whether loads may speculatively wake their dependents; it is
//     decremented by two on cycles with an L1 miss and incremented by one
//     otherwise (§5.2).
//   - Filter: a 2K-entry direct-mapped array of 2-bit saturating counters,
//     each with a silence bit set when the counter leaves a saturated
//     state; silenced entries defer to the global counter, and all silence
//     bits are cleared every 10K committed loads (§5.2).
//   - Criticality: an 8K-entry direct-mapped table of 4-bit signed
//     counters trained on the "was at the ROB head when it completed"
//     criterion; the sign bit gives the prediction (§5.3).
package predict

// GlobalCounter is the Alpha-style global hit/miss counter.
type GlobalCounter struct {
	value int // [0, 15]
}

// NewGlobalCounter starts saturated high (assume hits).
func NewGlobalCounter() *GlobalCounter { return &GlobalCounter{value: 15} }

// Tick records one cycle: dec-by-2 on cycles with at least one L1 miss,
// inc-by-1 otherwise.
func (g *GlobalCounter) Tick(missThisCycle bool) {
	if missThisCycle {
		g.value -= 2
		if g.value < 0 {
			g.value = 0
		}
	} else if g.value < 15 {
		g.value++
	}
}

// SpeculateHit reports whether loads should wake their dependents
// speculatively (the counter's MSB).
func (g *GlobalCounter) SpeculateHit() bool { return g.value >= 8 }

// Value exposes the raw counter (for tests and debug output).
func (g *GlobalCounter) Value() int { return g.value }

// FilterOutcome is the per-PC filter's verdict for a load.
type FilterOutcome uint8

const (
	// FilterUnknown defers the decision to the global counter (entry
	// silenced, or still in its initial transient state).
	FilterUnknown FilterOutcome = iota
	// FilterSureHit marks loads that have always hit.
	FilterSureHit
	// FilterSureMiss marks loads that have always missed.
	FilterSureMiss
)

func (o FilterOutcome) String() string {
	switch o {
	case FilterSureHit:
		return "sure-hit"
	case FilterSureMiss:
		return "sure-miss"
	default:
		return "unknown"
	}
}

type filterEntry struct {
	ctr    uint8 // 2-bit saturating, 0..3
	silent bool
}

// Filter is the per-instruction hit/miss filter. 2K entries × (2+1) bits =
// 768 bytes of state, matching §5.2.
type Filter struct {
	entries []filterEntry
	// noSilence disables the silence bit (ablation): counters always
	// train and the MSB is used as an ordinary prediction.
	noSilence bool

	resetEvery    int64
	sinceReset    int64
	SilenceResets int64
}

// NewFilter constructs a filter with the given entry count (power of two)
// and silence-bit reset interval in committed loads. noSilence selects the
// plain-2-bit-counter ablation the paper compares against.
func NewFilter(entries int, resetEvery int64, noSilence bool) *Filter {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: filter entries must be a positive power of two")
	}
	f := &Filter{
		entries:    make([]filterEntry, entries),
		noSilence:  noSilence,
		resetEvery: resetEvery,
	}
	for i := range f.entries {
		f.entries[i].ctr = 2 // transient start: first outcomes decide
	}
	return f
}

func (f *Filter) index(pc uint64) int {
	h := (pc >> 2) * 0x9e3779b97f4a7c15
	return int(h>>40) & (len(f.entries) - 1)
}

// Predict returns the filter's verdict for the load at pc.
func (f *Filter) Predict(pc uint64) FilterOutcome {
	e := &f.entries[f.index(pc)]
	if f.noSilence {
		if e.ctr >= 2 {
			return FilterSureHit
		}
		return FilterSureMiss
	}
	if e.silent {
		return FilterUnknown
	}
	switch e.ctr {
	case 3:
		return FilterSureHit
	case 0:
		return FilterSureMiss
	default:
		return FilterUnknown
	}
}

// Update trains the filter at commit time with the load's actual L1
// outcome. Counters freeze while silenced; leaving a saturated state sets
// the silence bit (§5.2).
func (f *Filter) Update(pc uint64, hit bool) {
	e := &f.entries[f.index(pc)]
	if f.noSilence {
		if hit && e.ctr < 3 {
			e.ctr++
		} else if !hit && e.ctr > 0 {
			e.ctr--
		}
	} else if !e.silent {
		switch {
		case e.ctr == 3 && !hit, e.ctr == 0 && hit:
			// Leaving a saturated state: silence, freeze the counter.
			e.silent = true
		case hit && e.ctr < 3:
			e.ctr++
		case !hit && e.ctr > 0:
			e.ctr--
		}
	}

	f.sinceReset++
	if f.resetEvery > 0 && f.sinceReset >= f.resetEvery {
		f.sinceReset = 0
		f.SilenceResets++
		for i := range f.entries {
			f.entries[i].silent = false
		}
	}
}

// Criticality is the ROB-head criticality predictor: a direct-mapped table
// of small signed counters, incremented when a µ-op was found critical
// (at the ROB head when it completed) during its last execution and
// decremented otherwise. The prediction is the sign bit.
type Criticality struct {
	table []int8
	lo    int8
	hi    int8
}

// NewCriticality constructs the predictor with the given entry count
// (power of two) and counter width in bits (e.g. 4 → range [-8, 7]).
func NewCriticality(entries, ctrBits int) *Criticality {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: criticality entries must be a positive power of two")
	}
	if ctrBits < 2 || ctrBits > 7 {
		panic("predict: criticality counter bits out of range")
	}
	return &Criticality{
		table: make([]int8, entries),
		lo:    int8(-(1 << (ctrBits - 1))),
		hi:    int8(1<<(ctrBits-1) - 1),
	}
}

func (c *Criticality) index(pc uint64) int {
	h := (pc >> 2) * 0x9e3779b97f4a7c15
	return int(h>>40) & (len(c.table) - 1)
}

// Critical predicts whether the µ-op at pc is critical. The zero-initialized
// counter predicts critical, so untrained loads keep speculating.
func (c *Criticality) Critical(pc uint64) bool {
	return c.table[c.index(pc)] >= 0
}

// Update trains the predictor at retire: wasCritical is true when the µ-op
// was at the ROB head when it completed.
func (c *Criticality) Update(pc uint64, wasCritical bool) {
	e := &c.table[c.index(pc)]
	if wasCritical {
		if *e < c.hi {
			*e++
		}
	} else if *e > c.lo {
		*e--
	}
}
