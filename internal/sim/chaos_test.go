package sim

// Chaos suite: proves the resilience machinery end to end with
// deterministic fault injection. Every test here runs under -race in the
// merge-blocking chaos CI job; the nightly soak reruns the suite with
// randomized plan seeds (SPECSCHED_CHAOS_SEED).

import (
	"context"
	"errors"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"specsched/internal/faultinject"
	"specsched/internal/stats"
)

// chaosSeed returns the fault-plan seed for this run: fixed by default so
// failures reproduce, overridable via SPECSCHED_CHAOS_SEED for the nightly
// randomized soak.
func chaosSeed(t *testing.T) uint64 {
	if s := os.Getenv("SPECSCHED_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SPECSCHED_CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos seed %d (from SPECSCHED_CHAOS_SEED)", v)
		return v
	}
	return 0xc4a05
}

// TestChaosSweepConvergesBitIdentical is the core acceptance property: a
// sweep with injected panics, hangs, and transient errors — and enough
// retries to outlast MaxFaultsPerCell — completes with every cell
// succeeding and results bit-identical to a fault-free sweep.
func TestChaosSweepConvergesBitIdentical(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf", "swim", "applu"}, 3)
	clean := (&Pool{Jobs: 4}).Run(context.Background(), cells, fakeCell)

	plan := &faultinject.Plan{
		Seed:          chaosSeed(t),
		PanicRate:     0.3,
		HangRate:      0.15,
		TransientRate: 0.3,
		// MaxFaultsPerCell 2 (default) + 1 clean attempt <= MaxAttempts 4.
	}
	chaosPool := func() *Pool {
		return &Pool{
			Jobs:          4,
			Chaos:         plan,
			MaxAttempts:   4,
			RetryBackoff:  time.Millisecond,
			StallTimeout:  100 * time.Millisecond, // releases injected hangs
			CellTimeout:   10 * time.Second,
			AbandonBudget: -1, // hangs abandon goroutines; don't let the budget block convergence
		}
	}
	faulty := chaosPool().Run(context.Background(), cells, fakeCell)

	retried := 0
	for i, r := range faulty {
		if r.Err != nil {
			t.Fatalf("cell %s failed despite retries: %v (attempts=%d)", r.Cell, r.Err, r.Attempts)
		}
		if *r.Run != *clean[i].Run {
			t.Fatalf("cell %s: chaos run diverged from fault-free run", r.Cell)
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatalf("plan injected no faults across %d cells — rates or seed wiring broken", len(cells))
	}
	t.Logf("%d/%d cells recovered via retry", retried, len(cells))

	// Determinism: the identical plan injects the identical faults, so a
	// rerun spends the identical per-cell attempts.
	again := chaosPool().Run(context.Background(), cells, fakeCell)
	for i := range faulty {
		if again[i].Attempts != faulty[i].Attempts {
			t.Fatalf("cell %s: attempts %d then %d under the same plan", cells[i], faulty[i].Attempts, again[i].Attempts)
		}
	}
}

// TestChaosRealSimulationConverges runs the convergence property over the
// real simulator (Simulate, heartbeats wired through core), not fakes.
func TestChaosRealSimulationConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf"}, 1)
	run := func(ctx context.Context, c Cell) (*stats.Run, error) {
		return Simulate(ctx, c, 500, 2000)
	}
	clean := (&Pool{Jobs: 2}).Run(context.Background(), cells, run)
	faulty := (&Pool{
		Jobs:         2,
		Chaos:        &faultinject.Plan{Seed: chaosSeed(t), PanicRate: 0.5, TransientRate: 0.4},
		MaxAttempts:  4,
		RetryBackoff: time.Millisecond,
		StallTimeout: 10 * time.Second, // arm the watchdog so real cells heartbeat through it
	}).Run(context.Background(), cells, run)
	for i, r := range faulty {
		if r.Err != nil {
			t.Fatalf("cell %s failed: %v", r.Cell, r.Err)
		}
		if clean[i].Err != nil {
			t.Fatalf("clean cell %s failed: %v", clean[i].Cell, clean[i].Err)
		}
		if *r.Run != *clean[i].Run {
			t.Fatalf("cell %s: chaos run diverged from fault-free run", r.Cell)
		}
	}
}

// TestStallWatchdogSparesProgressingCells: the watchdog distinguishes
// "slow but heartbeating" from "heartbeat frozen" — the former finishes,
// the latter dies early with ErrCellStalled long before CellTimeout.
func TestStallWatchdogSparesProgressingCells(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf"}, 1)
	const stall = 150 * time.Millisecond
	run := func(ctx context.Context, c Cell) (*stats.Run, error) {
		hb := HeartbeatFrom(ctx)
		if hb == nil {
			t.Error("watchdog armed but no heartbeat in cell context")
			return fakeRun(c)
		}
		if c.Workload == "gzip" {
			// Slow but progressing: runs 2× the stall window, heartbeats
			// every stall/6 — the watchdog must let it finish.
			for i := 0; i < 12; i++ {
				hb.Store(int64(i))
				time.Sleep(stall / 6)
			}
			return fakeRun(c)
		}
		// Hung: one heartbeat, then frozen until canceled.
		hb.Store(1)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	start := time.Now()
	res := (&Pool{Jobs: 2, StallTimeout: stall, CellTimeout: time.Minute}).Run(context.Background(), cells, run)
	for _, r := range res {
		switch r.Cell.Workload {
		case "gzip":
			if r.Err != nil {
				t.Fatalf("progressing cell killed: %v", r.Err)
			}
		case "mcf":
			if !errors.Is(r.Err, ErrCellStalled) {
				t.Fatalf("hung cell error = %v, want ErrCellStalled", r.Err)
			}
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("watchdog took %v; should fire at ~StallTimeout, far before CellTimeout", elapsed)
	}
}

// TestAbandonBudgetStopsRetries: a cell that hard-hangs (ignores its
// context) leaks a goroutine per attempt; once the budget is spent the
// pool stops retrying instead of leaking without bound.
func TestAbandonBudgetStopsRetries(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	block := make(chan struct{}) // never closed: attempts ignore cancellation
	res := (&Pool{
		Jobs:          1,
		CellTimeout:   30 * time.Millisecond,
		MaxAttempts:   10,
		RetryBackoff:  time.Millisecond,
		AbandonBudget: 2,
	}).Run(context.Background(), cells, func(ctx context.Context, c Cell) (*stats.Run, error) {
		<-block
		return nil, nil
	})
	r := res[0]
	if !errors.Is(r.Err, ErrAbandonBudget) || !errors.Is(r.Err, ErrCellTimeout) {
		t.Fatalf("error = %v, want ErrAbandonBudget wrapping ErrCellTimeout", r.Err)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (budget of 2 leaked goroutines)", r.Attempts)
	}
}

// TestAbandonedGoroutineReclaimed: an abandoned attempt that eventually
// honors cancellation returns its budget slot, so later retries are not
// starved by transient slowness.
func TestAbandonedGoroutineReclaimed(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	var attempts atomic.Int64
	p := &Pool{
		Jobs:          1,
		CellTimeout:   30 * time.Millisecond,
		MaxAttempts:   3,
		RetryBackoff:  50 * time.Millisecond, // long enough for the canceled attempt to drain
		AbandonBudget: 1,
	}
	res := p.Run(context.Background(), cells, func(ctx context.Context, c Cell) (*stats.Run, error) {
		if attempts.Add(1) == 1 {
			<-ctx.Done() // times out, then returns: slot reclaimed during backoff
			return nil, context.Cause(ctx)
		}
		return fakeRun(c)
	})
	if res[0].Err != nil {
		t.Fatalf("cell failed: %v (attempts=%d); reclaim should have freed the budget", res[0].Err, res[0].Attempts)
	}
	if res[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res[0].Attempts)
	}
	if p.Abandoned() != 1 {
		t.Fatalf("Abandoned() = %d, want 1 (monotone count)", p.Abandoned())
	}
}

// TestChaosCorruptTracePermanent: injected trace corruption classifies as
// permanent (ErrBadTrace) and is never retried, however many attempts the
// policy allows.
func TestChaosCorruptTracePermanent(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	res := (&Pool{
		Jobs:         1,
		Chaos:        &faultinject.Plan{Seed: chaosSeed(t), CorruptTraceRate: 1},
		MaxAttempts:  5,
		RetryBackoff: time.Millisecond,
	}).Run(context.Background(), cells, fakeCell)
	r := res[0]
	if !errors.Is(r.Err, ErrBadTrace) {
		t.Fatalf("error = %v, want ErrBadTrace", r.Err)
	}
	if r.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1: permanent failures must not retry", r.Attempts)
	}
	if Transient(r.Err) {
		t.Fatalf("Transient(%v) = true, want false", r.Err)
	}
}

// TestTransientClassification pins the retry taxonomy at the pool level.
func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("some simulation error"), false},
		{ErrBadTrace, false},
		{faultinject.ErrTransient, true},
		{ErrCellPanic, true},
		{ErrCellTimeout, true},
		{ErrCellStalled, true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryBackoffSchedule pins the capped exponential backoff.
func TestRetryBackoffSchedule(t *testing.T) {
	p := &Pool{RetryBackoff: 10 * time.Millisecond, MaxRetryBackoff: 25 * time.Millisecond}
	for _, c := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 25 * time.Millisecond},  // capped
		{63, 25 * time.Millisecond}, // shift overflow guarded
	} {
		if got := p.backoff(c.attempt); got != c.want {
			t.Errorf("backoff(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	d := &Pool{}
	if got := d.backoff(1); got != 100*time.Millisecond {
		t.Errorf("default backoff(1) = %v, want 100ms", got)
	}
	if got := d.backoff(20); got != 3200*time.Millisecond {
		t.Errorf("default backoff(20) = %v, want the 32× cap (3.2s)", got)
	}
}

// TestPoolProgressReportsRetries: the progress stream carries per-cell
// attempts and cumulative retry counters.
func TestPoolProgressReportsRetries(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf"}, 2)
	var last Progress
	p := &Pool{
		Jobs:         2,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		OnProgress:   func(pr Progress) { last = pr },
	}
	// Every cell fails its first attempt transiently, succeeds after.
	perCell := make(map[Cell]*atomic.Int64)
	for _, c := range cells {
		perCell[c] = new(atomic.Int64)
	}
	res := p.Run(context.Background(), cells, func(ctx context.Context, c Cell) (*stats.Run, error) {
		if perCell[c].Add(1) == 1 {
			return nil, faultinject.ErrTransient
		}
		return fakeRun(c)
	})
	for _, r := range res {
		if r.Err != nil || r.Attempts != 2 {
			t.Fatalf("cell %s: err=%v attempts=%d, want success in 2", r.Cell, r.Err, r.Attempts)
		}
	}
	if last.Retried != len(cells) || last.Recovered != len(cells) {
		t.Fatalf("final progress Retried=%d Recovered=%d, want %d/%d", last.Retried, last.Recovered, len(cells), len(cells))
	}
	if last.CellAttempts != 2 {
		t.Fatalf("final progress CellAttempts=%d, want 2", last.CellAttempts)
	}
}
