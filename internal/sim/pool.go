package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"specsched/internal/faultinject"
	"specsched/internal/stats"
)

// Cell-failure sentinels. Every failure the pool itself synthesizes wraps
// exactly one of these, so retry classification and tests match on
// errors.Is instead of message text.
var (
	// ErrCellPanic marks a cell whose goroutine panicked; the panic value
	// and stack ride along in the message. Panics are transient for retry
	// purposes: the paper-grade configs never panic, so a panic is either
	// an injected fault or a once-in-a-run environmental failure.
	ErrCellPanic = errors.New("sim: cell panicked")
	// ErrCellTimeout marks a cell that exceeded Pool.CellTimeout.
	ErrCellTimeout = errors.New("sim: cell timeout")
	// ErrCellStalled marks a cell the stall watchdog killed: its
	// simulated-cycle heartbeat stopped advancing for Pool.StallTimeout
	// even though the wall-clock cell timeout had not yet expired.
	ErrCellStalled = errors.New("sim: cell stalled (no simulated-cycle progress)")
	// ErrAbandonBudget marks a transient timeout/stall that was NOT
	// retried because the pool's abandoned-goroutine budget is spent:
	// retrying would leak yet another goroutine.
	ErrAbandonBudget = errors.New("sim: abandoned-goroutine budget exhausted, not retrying")
)

// Transient reports whether a cell failure is worth retrying: pool-level
// panics, timeouts, and stalls are; anything matching ErrBadTrace is not
// (a corrupt trace stays corrupt); and any error in the chain may opt in
// by implementing `Transient() bool` (the hook remote cell runners and
// fault injection use). Everything else — invalid configurations, unknown
// workloads — is permanent.
func Transient(err error) bool {
	if err == nil || errors.Is(err, ErrBadTrace) {
		return false
	}
	if errors.Is(err, ErrCellPanic) || errors.Is(err, ErrCellTimeout) || errors.Is(err, ErrCellStalled) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Progress is a snapshot of sweep progress delivered to Pool.OnProgress
// after every finished cell (including cells satisfied from the
// checkpoint).
type Progress struct {
	Done   int // cells finished so far (failed and cached included)
	Total  int // cells in the sweep
	Failed int // cells that errored, panicked, or timed out
	Cached int // cells satisfied from the resume checkpoint
	// Resilience counters, cumulative across the sweep so far.
	Retried   int // extra attempts spent on retries
	Recovered int // cells that succeeded after at least one retry
	Abandoned int // goroutines abandoned to timeouts/stalls (total)
	// Deduped counts cells served by the shared Dedup cache — either from
	// its LRU or by waiting on another pool's in-flight execution of the
	// identical cell — instead of simulating here.
	Deduped int
	// Cell is the cell that just finished; Elapsed its wall-clock seconds
	// across every attempt; CellAttempts how many attempts it took.
	Cell         Cell
	CellErr      error
	CellCached   bool
	CellDeduped  bool
	CellAttempts int
	Elapsed      float64
}

// Pool shards a cell grid across worker goroutines. Each worker owns a
// deque seeded with a round-robin slice of the grid and pops from its
// front; an idle worker steals from the back of a victim's deque, so load
// imbalance (mcf cells run ~5x longer than gzip cells) never strands work
// behind a slow worker. Cells only ever leave deques, which makes
// termination trivial: a worker that finds every deque empty knows every
// cell has been claimed.
//
// Failure policy: a cell attempt that fails transiently (panic, timeout,
// stall, or an error opting in via Transient()) is retried up to
// MaxAttempts times with capped exponential backoff; permanent failures
// (ErrBadTrace, invalid configurations) fail immediately. Timeouts and
// stalls abandon their goroutine (the runtime cannot preempt-kill it);
// AbandonBudget bounds how many such leaks the pool tolerates before it
// stops retrying abandoning failures, so a systematically hanging sweep
// degrades to per-cell failures instead of leaking without limit.
type Pool struct {
	// Jobs is the worker count (0 = GOMAXPROCS).
	Jobs int
	// CellTimeout bounds one cell attempt's wall-clock time; 0 disables.
	// A timed out attempt fails with ErrCellTimeout and its goroutine is
	// abandoned (reclaimed against the budget if it eventually returns).
	CellTimeout time.Duration
	// StallTimeout, when > 0, arms the stall watchdog: a cell attempt
	// whose simulated-cycle heartbeat (see WithHeartbeat; Simulate and
	// SimulateCell emit them off the core's cancellation poll) does not
	// advance for this long fails with ErrCellStalled without waiting for
	// the full CellTimeout. It distinguishes "slow but progressing" (mcf
	// keeps heartbeating) from "hung" (heartbeat frozen). Cell functions
	// that never heartbeat are treated as hung once the window passes.
	StallTimeout time.Duration
	// MaxAttempts is the per-cell attempt bound for transient failures
	// (0 or 1 = no retries).
	MaxAttempts int
	// RetryBackoff is the sleep before the second attempt, doubling per
	// subsequent attempt (0 = 100ms). The sleep is context-interruptible.
	RetryBackoff time.Duration
	// MaxRetryBackoff caps the doubling (0 = 32 × RetryBackoff).
	MaxRetryBackoff time.Duration
	// AbandonBudget bounds concurrently leaked goroutines from timeouts
	// and stalls before abandoning failures stop being retried (0 = twice
	// the worker count; negative = unlimited).
	AbandonBudget int
	// Chaos, when non-nil, injects the plan's deterministic faults into
	// cell attempts (panic, hang, transient error, corrupt trace) — the
	// reproducible test harness for every failure path above. Hang faults
	// block until the attempt's context is canceled, so they require
	// CellTimeout or StallTimeout to be set.
	Chaos *faultinject.Plan
	// Checkpoint, when non-nil, satisfies already-completed cells without
	// simulating and records fresh completions for future resumes.
	Checkpoint *Checkpoint
	// Dedup, when non-nil alongside DedupKey, deduplicates cells across
	// every pool sharing the cache: a cell whose key another pool is
	// already simulating waits for that result instead of recomputing it,
	// and previously computed cells are served from the cache's LRU. The
	// sharing is sound because equal keys imply bit-identical results
	// (see DedupKey). Deduped results still count as this pool's
	// completions (they stream, report progress, and are checkpointed)
	// but carry Result.Deduped and skip the retry machinery — the
	// executing pool already applied its own.
	Dedup *DedupCache
	// DedupKey maps a cell to its cross-pool identity; a "" return opts
	// that cell out of deduplication.
	DedupKey func(Cell) string
	// OnProgress, when non-nil, is invoked after every finished cell, from
	// a single collector goroutine (no synchronization needed inside).
	OnProgress func(Progress)
	// OnResult, when non-nil, receives every finished cell's full Result
	// (checkpoint-satisfied cells included) in completion order, from the
	// same single collector goroutine as OnProgress — the streaming hook
	// behind the public Sweep.Results iterator.
	OnResult func(Result)

	// abandoned counts currently-leaked goroutines (incremented when a
	// timeout/stall fires, decremented if the attempt later returns);
	// abandonTotal is the monotone count of abandon events.
	abandoned    atomic.Int64
	abandonTotal atomic.Int64
}

// Abandoned returns how many goroutines this pool has abandoned to
// timeouts and stalls in total (monotone; reclaims don't subtract).
func (p *Pool) Abandoned() int { return int(p.abandonTotal.Load()) }

// Run executes every cell through fn and returns the results in cell
// order — results[i] always corresponds to cells[i], regardless of worker
// count or completion order, which is what makes downstream merging
// deterministic. A failing cell (error, panic, timeout) yields a Result
// with Err set; the sweep always runs to completion.
//
// Canceling ctx stops the sweep promptly and cooperatively: workers stop
// claiming cells, the in-flight cells abort mid-simulation (fn receives
// ctx; Simulate's core polls it), and every cell that did not complete gets
// the cancellation cause as its Err. Cells that completed before the
// cancel keep their results — with a Checkpoint configured they are
// already recorded, so a canceled sweep is resumable.
func (p *Pool) Run(ctx context.Context, cells []Cell, fn func(context.Context, Cell) (*stats.Run, error)) []Result {
	return p.RunWith(ctx, cells, RunnerFunc(fn))
}

// RunWith is Run with an explicit CellRunner — the seam subprocess and
// remote cell execution plug into (see CellRunner). The runner's RunCell
// is invoked from the pool's isolated attempt goroutines with the 1-based
// attempt number; everything else (retry policy, watchdog, dedup,
// checkpointing, deterministic result order) is identical to Run. The
// pool does not Close the runner.
func (p *Pool) RunWith(ctx context.Context, cells []Cell, runner CellRunner) []Result {
	results := make([]Result, len(cells))
	done := make([]bool, len(cells))
	prog := Progress{Total: len(cells)}

	report := func(i int) {
		done[i] = true
		prog.Done++
		if results[i].Err != nil {
			prog.Failed++
		}
		if results[i].Cached {
			prog.Cached++
		}
		if results[i].Deduped {
			prog.Deduped++
		}
		if a := results[i].Attempts; a > 1 {
			prog.Retried += a - 1
			if results[i].Err == nil {
				prog.Recovered++
			}
		}
		prog.Abandoned = p.Abandoned()
		if p.OnProgress != nil {
			prog.Cell, prog.CellErr = results[i].Cell, results[i].Err
			prog.CellCached, prog.Elapsed = results[i].Cached, results[i].Elapsed
			prog.CellDeduped = results[i].Deduped
			prog.CellAttempts = results[i].Attempts
			p.OnProgress(prog)
		}
		if p.OnResult != nil {
			p.OnResult(results[i])
		}
	}

	// Satisfy resumable cells from the checkpoint up front.
	var todo []int
	for i, c := range cells {
		if p.Checkpoint != nil {
			if run, ok := p.Checkpoint.Lookup(c); ok {
				results[i] = Result{Cell: c, Run: run, Cached: true}
				report(i)
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return results
	}

	jobs := p.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(todo) {
		jobs = len(todo)
	}

	// Round-robin the remaining cells across per-worker deques.
	deques := make([]*deque, jobs)
	for w := range deques {
		deques[w] = &deque{}
	}
	for k, idx := range todo {
		deques[k%jobs].items = append(deques[k%jobs].items, idx)
	}

	finished := make(chan int, len(todo))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				idx, ok := deques[w].popFront()
				if !ok {
					idx, ok = steal(deques, w)
				}
				if !ok {
					return
				}
				results[idx] = p.runCellDeduped(ctx, cells[idx], runner)
				finished <- idx
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Single collector: progress callbacks, result streaming, and
	// checkpoint records happen here, in completion order; result slots
	// were already written by the workers at their deterministic indices.
	for idx := range finished {
		if r := &results[idx]; r.Err == nil && p.Checkpoint != nil {
			p.Checkpoint.Record(r.Cell, r.Run)
		}
		report(idx)
	}

	// On cancellation, cells never claimed (or claimed but aborted without
	// reaching the collector) fail with the cancellation cause so callers
	// can distinguish "canceled" from "never attempted" silently-zero
	// results. They are not streamed or counted as progress: the sweep did
	// not finish them.
	if ctx.Err() != nil {
		cause := context.Cause(ctx)
		for i := range results {
			if !done[i] {
				if results[i].Err == nil {
					results[i] = Result{Cell: cells[i], Err: fmt.Errorf("cell %s: %w", cells[i], cause)}
				}
			}
		}
	}
	return results
}

// runCellDeduped runs one cell through the shared dedup cache when one is
// configured (and the cell has a key), falling back to the plain retrying
// path otherwise. The retry policy runs inside the cache's single flight,
// so concurrent pools asking for the same cell share one retried
// execution; a waiter whose flight owner failed re-runs the cell itself
// (its own retry budget, its own chaos plan) instead of inheriting a
// foreign error.
func (p *Pool) runCellDeduped(ctx context.Context, cell Cell, runner CellRunner) Result {
	if p.Dedup == nil || p.DedupKey == nil {
		return p.runCellRetrying(ctx, cell, runner)
	}
	key := p.DedupKey(cell)
	if key == "" {
		return p.runCellRetrying(ctx, cell, runner)
	}
	start := time.Now()
	var owned Result
	run, src, err := p.Dedup.Do(ctx, key, func() (*stats.Run, error) {
		owned = p.runCellRetrying(ctx, cell, runner)
		return owned.Run, owned.Err
	})
	if src == DedupExecuted {
		return owned
	}
	if err != nil {
		// Canceled while waiting on another pool's flight.
		return Result{Cell: cell, Err: fmt.Errorf("cell %s: %w", cell, err), Elapsed: time.Since(start).Seconds()}
	}
	return Result{Cell: cell, Run: run, Deduped: true, Elapsed: time.Since(start).Seconds()}
}

// maxAttempts returns the effective per-cell attempt bound.
func (p *Pool) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the capped exponential sleep before attempt n+1 (n is
// the 1-based attempt that just failed).
func (p *Pool) backoff(n int) time.Duration {
	base := p.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := p.MaxRetryBackoff
	if cap <= 0 {
		cap = 32 * base
	}
	d := base << (n - 1)
	if d > cap || d <= 0 { // d<=0 guards shift overflow at absurd n
		d = cap
	}
	return d
}

// abandonBudget returns the effective leaked-goroutine bound (<0 =
// unlimited).
func (p *Pool) abandonBudget() int {
	if p.AbandonBudget != 0 {
		return p.AbandonBudget
	}
	jobs := p.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return 2 * jobs
}

// runCellRetrying drives one cell through the retry policy: attempts run
// until one succeeds, fails permanently, exhausts MaxAttempts, trips the
// abandon budget, or the sweep context is canceled. Elapsed accumulates
// across attempts; Attempts records how many ran.
func (p *Pool) runCellRetrying(ctx context.Context, cell Cell, runner CellRunner) Result {
	var elapsed float64
	for attempt := 1; ; attempt++ {
		res := p.runCell(ctx, cell, runner, attempt)
		elapsed += res.Elapsed
		res.Elapsed, res.Attempts = elapsed, attempt
		if res.Err == nil || ctx.Err() != nil || attempt >= p.maxAttempts() || !Transient(res.Err) {
			return res
		}
		select {
		case <-ctx.Done():
			return res
		case <-time.After(p.backoff(attempt)):
		}
		// Budget check after the backoff: an abandoned attempt that honored
		// cancellation during the sleep has already reclaimed its slot.
		if abandoning(res.Err) {
			if budget := p.abandonBudget(); budget >= 0 && int(p.abandoned.Load()) >= budget {
				res.Err = fmt.Errorf("cell %s: %w (%d leaked): %w", cell, ErrAbandonBudget, p.abandoned.Load(), res.Err)
				return res
			}
		}
	}
}

// abandoning reports whether a failure leaked its attempt's goroutine.
func abandoning(err error) bool {
	return errors.Is(err, ErrCellTimeout) || errors.Is(err, ErrCellStalled)
}

// runCell executes one attempt of one cell in a child goroutine so that
// panics, timeouts, and stalls are contained to the attempt.
func (p *Pool) runCell(ctx context.Context, cell Cell, runner CellRunner, attempt int) Result {
	start := time.Now()

	// The attempt context: cancelable when a timeout or watchdog is armed
	// so a killed attempt's simulation actually aborts (the core polls it)
	// instead of burning a CPU until the process exits. The heartbeat
	// counter rides the context into Simulate/SimulateCell.
	cctx, cancel := ctx, context.CancelCauseFunc(nil)
	watched := p.CellTimeout > 0 || p.StallTimeout > 0
	var hb *atomic.Int64
	if watched {
		cctx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
		if p.StallTimeout > 0 {
			hb = new(atomic.Int64)
			hb.Store(-1) // no heartbeat yet
			cctx = WithHeartbeat(cctx, hb)
		}
	}

	ch := make(chan Result, 1)
	go func() {
		defer func() {
			if pv := recover(); pv != nil {
				ch <- Result{Cell: cell, Err: fmt.Errorf("cell %s: %w: %v\n%s", cell, ErrCellPanic, pv, debug.Stack())}
			}
		}()
		if p.Chaos != nil {
			switch kind := p.Chaos.Cell(cell.Key(), attempt); kind {
			case faultinject.Panic:
				panic(fmt.Sprintf("faultinject: injected panic (%s attempt %d)", cell, attempt))
			case faultinject.Hang:
				// Model a wedged cell: no heartbeats, no completion, until
				// the watchdog/timeout cancels the attempt context.
				<-cctx.Done()
				ch <- Result{Cell: cell, Err: fmt.Errorf("cell %s: injected hang released: %w", cell, context.Cause(cctx))}
				return
			case faultinject.Transient:
				ch <- Result{Cell: cell, Err: fmt.Errorf("cell %s (attempt %d): %w", cell, attempt, faultinject.ErrTransient)}
				return
			case faultinject.CorruptTrace:
				ch <- Result{Cell: cell, Err: fmt.Errorf("%w: cell %s: faultinject: trace body digest mismatch", ErrBadTrace, cell)}
				return
			}
		}
		run, err := runner.RunCell(cctx, cell, attempt)
		if err != nil {
			err = fmt.Errorf("cell %s: %w", cell, err)
		}
		ch <- Result{Cell: cell, Run: run, Err: err}
	}()

	if !watched {
		res := <-ch
		res.Elapsed = time.Since(start).Seconds()
		return res
	}

	var timeoutC <-chan time.Time
	if p.CellTimeout > 0 {
		tm := time.NewTimer(p.CellTimeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	var stallC <-chan time.Time
	if p.StallTimeout > 0 {
		ival := p.StallTimeout / 4
		if ival < time.Millisecond {
			ival = time.Millisecond
		}
		tk := time.NewTicker(ival)
		defer tk.Stop()
		stallC = tk.C
	}

	// finished drains ch without blocking: the buffer guarantees the child
	// can always deliver, so an abandoned attempt that eventually returns
	// reclaims its budget slot via the monitor below.
	finished := func() (Result, bool) {
		select {
		case res := <-ch:
			return res, true
		default:
			return Result{}, false
		}
	}
	abandon := func(cause error) {
		p.abandoned.Add(1)
		p.abandonTotal.Add(1)
		cancel(cause) // a ctx-polling simulation aborts promptly
		go func() {
			<-ch // the attempt returned after all: slot reclaimed
			p.abandoned.Add(-1)
		}()
	}

	lastBeat, lastAdvance := int64(-1), start
	var res Result
watch:
	for {
		select {
		case res = <-ch:
			break watch
		case <-ctx.Done():
			// Sweep canceled: report the cause; the child exits via cctx.
			if r, ok := finished(); ok {
				res = r
				break watch
			}
			res = Result{Cell: cell, Err: fmt.Errorf("cell %s: %w", cell, context.Cause(ctx))}
			break watch
		case <-timeoutC:
			if r, ok := finished(); ok { // lost race: attempt did finish
				res = r
				break watch
			}
			err := fmt.Errorf("cell %s: %w after %v (diverging config? goroutine abandoned)", cell, ErrCellTimeout, p.CellTimeout)
			abandon(err)
			res = Result{Cell: cell, Err: err}
			break watch
		case <-stallC:
			if beat := hb.Load(); beat != lastBeat {
				lastBeat, lastAdvance = beat, time.Now()
				continue
			}
			if time.Since(lastAdvance) < p.StallTimeout {
				continue
			}
			if r, ok := finished(); ok {
				res = r
				break watch
			}
			err := fmt.Errorf("cell %s: %w for %v at simulated cycle %d (goroutine abandoned)", cell, ErrCellStalled, p.StallTimeout, lastBeat)
			abandon(err)
			res = Result{Cell: cell, Err: err}
			break watch
		}
	}
	res.Elapsed = time.Since(start).Seconds()
	return res
}

// deque is a mutex-guarded work deque of cell indices. Owners pop from the
// front, thieves from the back — the classic split that keeps owner and
// thieves mostly touching opposite ends.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[0]
	d.items = d.items[1:]
	return idx, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return idx, true
}

// steal scans the other workers' deques round-robin from the caller's
// right-hand neighbour and takes one cell from the first non-empty back.
func steal(deques []*deque, self int) (int, bool) {
	for off := 1; off < len(deques); off++ {
		if idx, ok := deques[(self+off)%len(deques)].popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}
