package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"specsched/internal/stats"
)

// Progress is a snapshot of sweep progress delivered to Pool.OnProgress
// after every finished cell (including cells satisfied from the
// checkpoint).
type Progress struct {
	Done   int // cells finished so far (failed and cached included)
	Total  int // cells in the sweep
	Failed int // cells that errored, panicked, or timed out
	Cached int // cells satisfied from the resume checkpoint
	// Cell is the cell that just finished; Elapsed its wall-clock seconds.
	Cell       Cell
	CellErr    error
	CellCached bool
	Elapsed    float64
}

// Pool shards a cell grid across worker goroutines. Each worker owns a
// deque seeded with a round-robin slice of the grid and pops from its
// front; an idle worker steals from the back of a victim's deque, so load
// imbalance (mcf cells run ~5x longer than gzip cells) never strands work
// behind a slow worker. Cells only ever leave deques, which makes
// termination trivial: a worker that finds every deque empty knows every
// cell has been claimed.
type Pool struct {
	// Jobs is the worker count (0 = GOMAXPROCS).
	Jobs int
	// CellTimeout bounds one cell's wall-clock time; 0 disables. A timed
	// out cell fails with an error and its goroutine is abandoned (the Go
	// runtime cannot preempt-kill it), which is acceptable for a sweep
	// process: the stuck goroutine dies with the process.
	CellTimeout time.Duration
	// Checkpoint, when non-nil, satisfies already-completed cells without
	// simulating and records fresh completions for future resumes.
	Checkpoint *Checkpoint
	// OnProgress, when non-nil, is invoked after every finished cell, from
	// a single collector goroutine (no synchronization needed inside).
	OnProgress func(Progress)
	// OnResult, when non-nil, receives every finished cell's full Result
	// (checkpoint-satisfied cells included) in completion order, from the
	// same single collector goroutine as OnProgress — the streaming hook
	// behind the public Sweep.Results iterator.
	OnResult func(Result)
}

// Run executes every cell through fn and returns the results in cell
// order — results[i] always corresponds to cells[i], regardless of worker
// count or completion order, which is what makes downstream merging
// deterministic. A failing cell (error, panic, timeout) yields a Result
// with Err set; the sweep always runs to completion.
//
// Canceling ctx stops the sweep promptly and cooperatively: workers stop
// claiming cells, the in-flight cells abort mid-simulation (fn receives
// ctx; Simulate's core polls it), and every cell that did not complete gets
// the cancellation cause as its Err. Cells that completed before the
// cancel keep their results — with a Checkpoint configured they are
// already recorded, so a canceled sweep is resumable.
func (p *Pool) Run(ctx context.Context, cells []Cell, fn func(context.Context, Cell) (*stats.Run, error)) []Result {
	results := make([]Result, len(cells))
	done := make([]bool, len(cells))
	prog := Progress{Total: len(cells)}

	report := func(i int) {
		done[i] = true
		prog.Done++
		if results[i].Err != nil {
			prog.Failed++
		}
		if results[i].Cached {
			prog.Cached++
		}
		if p.OnProgress != nil {
			prog.Cell, prog.CellErr = results[i].Cell, results[i].Err
			prog.CellCached, prog.Elapsed = results[i].Cached, results[i].Elapsed
			p.OnProgress(prog)
		}
		if p.OnResult != nil {
			p.OnResult(results[i])
		}
	}

	// Satisfy resumable cells from the checkpoint up front.
	var todo []int
	for i, c := range cells {
		if p.Checkpoint != nil {
			if run, ok := p.Checkpoint.Lookup(c); ok {
				results[i] = Result{Cell: c, Run: run, Cached: true}
				report(i)
				continue
			}
		}
		todo = append(todo, i)
	}
	if len(todo) == 0 {
		return results
	}

	jobs := p.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(todo) {
		jobs = len(todo)
	}

	// Round-robin the remaining cells across per-worker deques.
	deques := make([]*deque, jobs)
	for w := range deques {
		deques[w] = &deque{}
	}
	for k, idx := range todo {
		deques[k%jobs].items = append(deques[k%jobs].items, idx)
	}

	finished := make(chan int, len(todo))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				idx, ok := deques[w].popFront()
				if !ok {
					idx, ok = steal(deques, w)
				}
				if !ok {
					return
				}
				results[idx] = p.runCell(ctx, cells[idx], fn)
				finished <- idx
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(finished)
	}()

	// Single collector: progress callbacks, result streaming, and
	// checkpoint records happen here, in completion order; result slots
	// were already written by the workers at their deterministic indices.
	for idx := range finished {
		if r := &results[idx]; r.Err == nil && p.Checkpoint != nil {
			p.Checkpoint.Record(r.Cell, r.Run)
		}
		report(idx)
	}

	// On cancellation, cells never claimed (or claimed but aborted without
	// reaching the collector) fail with the cancellation cause so callers
	// can distinguish "canceled" from "never attempted" silently-zero
	// results. They are not streamed or counted as progress: the sweep did
	// not finish them.
	if ctx.Err() != nil {
		cause := context.Cause(ctx)
		for i := range results {
			if !done[i] {
				if results[i].Err == nil {
					results[i] = Result{Cell: cells[i], Err: fmt.Errorf("cell %s: %w", cells[i], cause)}
				}
			}
		}
	}
	return results
}

// runCell executes one cell in a child goroutine so that panics and
// timeouts are contained to the cell.
func (p *Pool) runCell(ctx context.Context, cell Cell, fn func(context.Context, Cell) (*stats.Run, error)) Result {
	start := time.Now()
	ch := make(chan Result, 1)
	go func() {
		defer func() {
			if pv := recover(); pv != nil {
				ch <- Result{Cell: cell, Err: fmt.Errorf("cell %s panicked: %v\n%s", cell, pv, debug.Stack())}
			}
		}()
		run, err := fn(ctx, cell)
		if err != nil {
			err = fmt.Errorf("cell %s: %w", cell, err)
		}
		ch <- Result{Cell: cell, Run: run, Err: err}
	}()

	var res Result
	if p.CellTimeout > 0 {
		t := time.NewTimer(p.CellTimeout)
		select {
		case res = <-ch:
			t.Stop()
		case <-t.C:
			res = Result{Cell: cell, Err: fmt.Errorf("cell %s exceeded the %v cell timeout (diverging config? goroutine abandoned)", cell, p.CellTimeout)}
		}
	} else {
		res = <-ch
	}
	res.Elapsed = time.Since(start).Seconds()
	return res
}

// deque is a mutex-guarded work deque of cell indices. Owners pop from the
// front, thieves from the back — the classic split that keeps owner and
// thieves mostly touching opposite ends.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[0]
	d.items = d.items[1:]
	return idx, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return idx, true
}

// steal scans the other workers' deques round-robin from the caller's
// right-hand neighbour and takes one cell from the first non-empty back.
func steal(deques []*deque, self int) (int, bool) {
	for off := 1; off < len(deques); off++ {
		if idx, ok := deques[(self+off)%len(deques)].popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}
