package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"specsched/internal/faultinject"
	"specsched/internal/stats"
)

// checkpointSchema versions the on-disk format; bump on incompatible
// change. v2 is a line-oriented, self-checksummed format: a header line, a
// record line per cell carrying its own FNV-64a digest, and a trailer with
// the whole-body digest — so a torn or truncated file is detected, and
// every intact record in it is still recoverable (see salvage below).
const checkpointSchema = "specsched-sweep-checkpoint/v2"

// checkpointSchemaV1 is recognized only to reject it with a clear message.
const checkpointSchemaV1 = "specsched-sweep-checkpoint/v1"

// flushEvery is how many newly recorded cells trigger an automatic flush.
// Cells run for seconds, so an 8-cell granularity keeps the at-most-lost
// work on an interrupt small without rewriting the file per cell.
const flushEvery = 8

// bakSuffix names the last-good rotation target: each flush first rotates
// the current file aside, so a crash that tears the fresh write still
// leaves the previous generation on disk for LoadCheckpoint to fall back
// on.
const bakSuffix = ".bak"

// Checkpoint persists completed cells of a sweep so an interrupted run can
// resume. The file carries a fingerprint of the sweep-wide options
// (warmup, measure, scheduler implementation) and a per-cell digest of the
// full configuration; a lookup only hits when both match, so stale or
// foreign checkpoints can never contaminate results.
//
// Durability: flushes write to a temp file, fsync it, rotate the previous
// checkpoint to .bak, rename the temp into place, and fsync the directory.
// Record and Lookup never block on a flush — the writer snapshots the cell
// map under the lock and does all marshaling and I/O outside it.
type Checkpoint struct {
	path        string
	fingerprint string

	// mu guards the in-memory state only; it is never held across
	// marshaling or I/O.
	mu      sync.Mutex
	cells   map[string]checkpointEntry
	dirty   int
	saveErr error

	// flushMu serializes whole flushes (snapshot → write → rename) so two
	// concurrent flush triggers cannot interleave their renames.
	flushMu sync.Mutex
	flushes int

	// chaos, when set, lets a fault plan tear individual flushes
	// (truncated body, no fsync) — the reproducible stand-in for a crash
	// mid-write.
	chaos *faultinject.Plan

	salvage *SalvageReport
}

// SalvageReport describes what a non-clean LoadCheckpoint recovered.
type SalvageReport struct {
	// PrimaryCells and BackupCells count digest-valid records recovered
	// from the checkpoint file and from its .bak rotation respectively
	// (a cell present in both counts once, under PrimaryCells).
	PrimaryCells int
	BackupCells  int
	// DroppedLines counts damaged record lines skipped in either file.
	DroppedLines int
}

func (s *SalvageReport) String() string {
	return fmt.Sprintf("salvaged %d cells (+%d from %s, %d damaged lines dropped)",
		s.PrimaryCells+s.BackupCells, s.BackupCells, bakSuffix, s.DroppedLines)
}

// Salvage returns a report when LoadCheckpoint had to recover this
// checkpoint from a torn/truncated file or its .bak, and nil after a clean
// load. Callers use it to tell the user a crash was absorbed.
func (c *Checkpoint) Salvage() *SalvageReport { return c.salvage }

// SetChaos installs a fault plan whose Torn schedule tears matching
// flushes. Test/chaos hook; nil disables.
func (c *Checkpoint) SetChaos(p *faultinject.Plan) { c.chaos = p }

type checkpointEntry struct {
	// Digest is the cell's config.CoreConfig.Digest() — the guard against
	// a config whose name stayed the same while its contents changed.
	Digest uint64     `json:"config_digest"`
	Run    *stats.Run `json:"run"`
}

// checkpointHeader is the H line payload.
type checkpointHeader struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
}

// checkpointRecord is the C line payload.
type checkpointRecord struct {
	Key string `json:"key"`
	checkpointEntry
}

// fnvSum is FNV-64a over b, the record and body digest function.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// LoadCheckpoint opens (or creates empty, if neither the file nor its .bak
// exists) the checkpoint at path. A file written under a different
// fingerprint or schema is an error: resuming it would silently mix
// results from different sweep options. A torn, truncated, or otherwise
// damaged file is NOT an error: every record whose own digest still
// verifies is recovered, the .bak rotation (the previous good generation)
// contributes any records the damaged file lost, and Salvage reports what
// happened — an interrupted sweep resumes with everything provably intact
// instead of refusing outright.
func LoadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, fingerprint: fingerprint, cells: map[string]checkpointEntry{}}

	primary, perr := readCheckpointFile(path, fingerprint)
	if perr != nil && !errors.Is(perr, fs.ErrNotExist) && !errors.Is(perr, errCkptDamaged) {
		// Foreign fingerprint, wrong schema, unreadable: hard errors.
		return nil, perr
	}
	backup, berr := readCheckpointFile(path+bakSuffix, fingerprint)
	if primary != nil && primary.clean {
		// Clean primary: the normal path; the backup is irrelevant.
		c.cells = primary.cells
		return c, nil
	}
	if primary == nil && errors.Is(perr, fs.ErrNotExist) && backup == nil {
		// Fresh checkpoint.
		return c, nil
	}

	// Salvage: merge the backup generation (older) under the primary's
	// surviving records (newer). A backup that failed fingerprint/schema
	// checks or doesn't exist contributes nothing — and is not an error;
	// only the primary decides hard failures above.
	rep := &SalvageReport{}
	merged := map[string]checkpointEntry{}
	if backup != nil {
		maps.Copy(merged, backup.cells)
		rep.DroppedLines += backup.dropped
	} else if berr != nil && !errors.Is(berr, fs.ErrNotExist) {
		// Unusable .bak under a salvage load: note it as damage, carry on.
		rep.DroppedLines++
	}
	if primary != nil {
		rep.PrimaryCells = len(primary.cells)
		rep.DroppedLines += primary.dropped
		for k := range primary.cells {
			delete(merged, k) // count overlaps under PrimaryCells only
		}
	}
	rep.BackupCells = len(merged)
	if primary != nil {
		maps.Copy(merged, primary.cells)
	}
	c.cells = merged
	c.salvage = rep
	// Everything recovered is durably unflushed state now: mark it dirty
	// so the next flush rewrites a clean generation.
	c.dirty = len(c.cells)
	return c, nil
}

// errCkptDamaged marks a checkpoint file that exists but could not be
// verified end-to-end — the salvage trigger, never surfaced to callers.
var errCkptDamaged = errors.New("sim: damaged checkpoint")

// ckptFileState is one parsed checkpoint file.
type ckptFileState struct {
	cells   map[string]checkpointEntry
	clean   bool // header, every record, and trailer all verified
	dropped int  // damaged record lines skipped
}

// readCheckpointFile parses one checkpoint file. Hard errors (wrong
// schema, foreign fingerprint, I/O) come back with a nil state; damage
// (truncation, torn tail, bad record digests) comes back with the
// recovered state and errCkptDamaged.
func readCheckpointFile(path, fingerprint string) (*ckptFileState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("sim: checkpoint %s: empty file: %w", path, errCkptDamaged)
	}
	// A v1 checkpoint was one indented JSON object; give it a precise
	// rejection instead of a salvage attempt on a foreign format.
	if data[0] == '{' {
		var v1 struct {
			Schema string `json:"schema"`
		}
		if json.Unmarshal(data, &v1) == nil && v1.Schema == checkpointSchemaV1 {
			return nil, fmt.Errorf("sim: checkpoint %s uses retired schema %q (want %q) — delete it or point -resume elsewhere",
				path, checkpointSchemaV1, checkpointSchema)
		}
		return nil, fmt.Errorf("sim: checkpoint %s is not a %s file", path, checkpointSchema)
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 16<<20)

	// Header line: "H {json}".
	if !sc.Scan() {
		return nil, fmt.Errorf("sim: checkpoint %s: missing header: %w", path, errCkptDamaged)
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "H ") {
		return nil, fmt.Errorf("sim: checkpoint %s is not a %s file", path, checkpointSchema)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(line[2:]), &hdr); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: unreadable header: %v", path, err)
	}
	if hdr.Schema != checkpointSchema {
		return nil, fmt.Errorf("sim: checkpoint %s has schema %q, want %q", path, hdr.Schema, checkpointSchema)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, fmt.Errorf("sim: checkpoint %s was written for different sweep options (%s; this sweep: %s) — delete it or point -resume elsewhere",
			path, hdr.Fingerprint, fingerprint)
	}

	st := &ckptFileState{cells: map[string]checkpointEntry{}}
	body := fnv.New64a()
	records, sawTrailer, trailerOK := 0, false, false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "C "):
			if sawTrailer {
				st.dropped++ // records after the trailer: a mangled file
				continue
			}
			sum, payload, ok := strings.Cut(line[2:], " ")
			if !ok {
				st.dropped++
				continue
			}
			var want uint64
			if _, err := fmt.Sscanf(sum, "%016x", &want); err != nil || fnvSum([]byte(payload)) != want {
				st.dropped++
				continue
			}
			var rec checkpointRecord
			if err := json.Unmarshal([]byte(payload), &rec); err != nil || rec.Run == nil {
				st.dropped++
				continue
			}
			st.cells[rec.Key] = rec.checkpointEntry
			records++
			body.Write([]byte(payload))
			body.Write([]byte{'\n'})
		case strings.HasPrefix(line, "T "):
			sawTrailer = true
			var n int
			var want uint64
			if _, err := fmt.Sscanf(line[2:], "%d %016x", &n, &want); err == nil {
				trailerOK = n == records && want == body.Sum64()
			}
		case strings.TrimSpace(line) == "":
			// ignore blank lines
		default:
			st.dropped++ // torn mid-line or foreign garbage
		}
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("sim: checkpoint %s: %v: %w", path, err, errCkptDamaged)
	}
	if st.dropped == 0 && sawTrailer && trailerOK {
		st.clean = true
		return st, nil
	}
	return st, fmt.Errorf("sim: checkpoint %s: %d damaged lines, trailer ok=%v: %w",
		path, st.dropped, sawTrailer && trailerOK, errCkptDamaged)
}

// Len returns the number of completed cells on record.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Lookup returns the recorded run for a cell, if one exists with a
// matching configuration digest. The returned Run is shared with the
// checkpoint: callers must copy before mutating.
func (c *Checkpoint) Lookup(cell Cell) (*stats.Run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cells[cell.Key()]
	if !ok || e.Digest != cell.Config.Digest() || e.Run == nil {
		return nil, false
	}
	return e.Run, true
}

// Record stores a completed cell and flushes to disk every flushEvery new
// cells. The flush happens outside the cell-map lock, so concurrent
// Record/Lookup calls from other workers never wait on marshaling or disk
// I/O. Write errors are retained and surfaced by the next Flush.
func (c *Checkpoint) Record(cell Cell, run *stats.Run) {
	c.mu.Lock()
	c.cells[cell.Key()] = checkpointEntry{Digest: cell.Config.Digest(), Run: run}
	c.dirty++
	trigger := c.dirty >= flushEvery
	c.mu.Unlock()
	if trigger {
		if err := c.flush(); err != nil {
			c.mu.Lock()
			if c.saveErr == nil {
				c.saveErr = err
			}
			c.mu.Unlock()
		}
	}
}

// Flush writes any unsaved cells to disk and reports the first write error
// encountered since the previous Flush.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	dirty := c.dirty > 0
	c.mu.Unlock()
	var ferr error
	if dirty {
		ferr = c.flush()
	}
	c.mu.Lock()
	err := c.saveErr
	c.saveErr = nil
	c.mu.Unlock()
	if err == nil {
		err = ferr
	}
	return err
}

// flush writes one durable generation: snapshot the cells under the lock,
// marshal and write a temp file outside it, fsync, rotate the previous
// checkpoint to .bak, rename into place, and fsync the directory — the
// crash-ordering chain that guarantees rename never publishes un-synced
// data and a crash at any point leaves either the new generation, the old
// one (as .bak with the primary missing for at most the rename window), or
// a torn file whose intact records salvage recovers.
func (c *Checkpoint) flush() error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()

	c.mu.Lock()
	claimed := c.dirty
	snap := make(map[string]checkpointEntry, len(c.cells))
	maps.Copy(snap, c.cells)
	c.mu.Unlock()

	data, err := marshalCheckpoint(c.fingerprint, snap)
	if err != nil {
		return fmt.Errorf("sim: checkpoint %s: %w", c.path, err)
	}
	torn := c.chaos.Torn(c.flushes)
	c.flushes++
	if torn {
		data = data[:len(data)*2/3]
	}

	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint %s: %w", c.path, err)
	}
	_, werr := tmp.Write(data)
	if werr == nil && !torn {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		// Keep the previous generation as the last-good fallback. Nothing
		// to rotate on the first flush; any other rename error surfaces
		// through the primary rename below.
		if _, serr := os.Stat(c.path); serr == nil {
			os.Rename(c.path, c.path+bakSuffix)
		}
		werr = os.Rename(tmp.Name(), c.path)
	}
	if werr == nil && !torn {
		werr = syncDir(filepath.Dir(c.path))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: checkpoint %s: %w", c.path, werr)
	}
	c.mu.Lock()
	if c.dirty -= claimed; c.dirty < 0 {
		c.dirty = 0
	}
	c.mu.Unlock()
	return nil
}

// marshalCheckpoint renders the v2 line format in sorted key order (the
// determinism that makes torn-write tests reproducible: a truncation
// always cuts the same suffix).
func marshalCheckpoint(fingerprint string, cells map[string]checkpointEntry) ([]byte, error) {
	var buf bytes.Buffer
	hdr, err := json.Marshal(checkpointHeader{Schema: checkpointSchema, Fingerprint: fingerprint})
	if err != nil {
		return nil, err
	}
	buf.WriteString("H ")
	buf.Write(hdr)
	buf.WriteByte('\n')

	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	body := fnv.New64a()
	for _, k := range keys {
		payload, err := json.Marshal(checkpointRecord{Key: k, checkpointEntry: cells[k]})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, "C %016x %s\n", fnvSum(payload), payload)
		body.Write(payload)
		body.Write([]byte{'\n'})
	}
	fmt.Fprintf(&buf, "T %d %016x\n", len(keys), body.Sum64())
	return buf.Bytes(), nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
