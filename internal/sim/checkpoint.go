package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"specsched/internal/stats"
)

// checkpointSchema versions the on-disk format; bump on incompatible
// change.
const checkpointSchema = "specsched-sweep-checkpoint/v1"

// flushEvery is how many newly recorded cells trigger an automatic flush.
// Cells run for seconds, so an 8-cell granularity keeps the at-most-lost
// work on an interrupt small without rewriting the file per cell.
const flushEvery = 8

// Checkpoint persists completed cells of a sweep so an interrupted run can
// resume. The file carries a fingerprint of the sweep-wide options
// (warmup, measure, scheduler implementation) and a per-cell digest of the
// full configuration; a lookup only hits when both match, so stale or
// foreign checkpoints can never contaminate results.
type Checkpoint struct {
	path        string
	fingerprint string

	mu      sync.Mutex
	cells   map[string]checkpointEntry
	dirty   int
	saveErr error
}

type checkpointEntry struct {
	// Digest is the cell's config.CoreConfig.Digest() — the guard against
	// a config whose name stayed the same while its contents changed.
	Digest uint64     `json:"config_digest"`
	Run    *stats.Run `json:"run"`
}

type checkpointFile struct {
	Schema      string                     `json:"schema"`
	Fingerprint string                     `json:"fingerprint"`
	Cells       map[string]checkpointEntry `json:"cells"`
}

// LoadCheckpoint opens (or creates empty, if the file does not exist) the
// checkpoint at path. A file written under a different fingerprint or
// schema is an error: resuming it would silently mix results from
// different sweep options.
func LoadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, fingerprint: fingerprint, cells: map[string]checkpointEntry{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	if f.Schema != checkpointSchema {
		return nil, fmt.Errorf("sim: checkpoint %s has schema %q, want %q", path, f.Schema, checkpointSchema)
	}
	if f.Fingerprint != fingerprint {
		return nil, fmt.Errorf("sim: checkpoint %s was written for different sweep options (%s; this sweep: %s) — delete it or point -resume elsewhere", path, f.Fingerprint, fingerprint)
	}
	if f.Cells != nil {
		c.cells = f.Cells
	}
	return c, nil
}

// Len returns the number of completed cells on record.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Lookup returns the recorded run for a cell, if one exists with a
// matching configuration digest. The returned Run is shared with the
// checkpoint: callers must copy before mutating.
func (c *Checkpoint) Lookup(cell Cell) (*stats.Run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cells[cell.Key()]
	if !ok || e.Digest != cell.Config.Digest() || e.Run == nil {
		return nil, false
	}
	return e.Run, true
}

// Record stores a completed cell and flushes to disk every flushEvery new
// cells. Write errors are retained and surfaced by the next Flush.
func (c *Checkpoint) Record(cell Cell, run *stats.Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[cell.Key()] = checkpointEntry{Digest: cell.Config.Digest(), Run: run}
	c.dirty++
	if c.dirty >= flushEvery {
		c.flushLocked()
	}
}

// Flush writes any unsaved cells to disk and reports the first write error
// encountered since the previous Flush.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty > 0 {
		c.flushLocked()
	}
	err := c.saveErr
	c.saveErr = nil
	return err
}

// flushLocked atomically replaces the file via a temp-file rename, so an
// interrupt mid-write leaves the previous checkpoint intact.
func (c *Checkpoint) flushLocked() {
	data, err := json.MarshalIndent(checkpointFile{
		Schema:      checkpointSchema,
		Fingerprint: c.fingerprint,
		Cells:       c.cells,
	}, "", " ")
	if err != nil {
		c.saveErr = fmt.Errorf("sim: checkpoint %s: %w", c.path, err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		c.saveErr = fmt.Errorf("sim: checkpoint %s: %w", c.path, err)
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), c.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		c.saveErr = fmt.Errorf("sim: checkpoint %s: %w", c.path, werr)
		return
	}
	c.dirty = 0
}
