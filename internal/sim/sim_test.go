package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/traceio"
)

func testGrid(t *testing.T, cfgNames []string, workloads []string, seeds int) []Cell {
	t.Helper()
	var cells []Cell
	for _, cn := range cfgNames {
		cfg, err := config.Preset(cn)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range workloads {
			for s := 0; s < seeds; s++ {
				cells = append(cells, Cell{Config: cfg, Workload: wl, SeedIdx: s})
			}
		}
	}
	return cells
}

// fakeRun synthesizes a deterministic Run from cell coordinates, so pool
// tests need no simulation.
func fakeRun(c Cell) (*stats.Run, error) {
	return &stats.Run{
		Workload:  c.Workload,
		Config:    c.Config.Name,
		Cycles:    int64(len(c.Workload)) + int64(c.SeedIdx),
		Committed: int64(c.Config.IssueToExecuteDelay),
	}, nil
}

// fakeCell adapts fakeRun to the context-threaded pool signature.
func fakeCell(_ context.Context, c Cell) (*stats.Run, error) { return fakeRun(c) }

func TestPoolResultsInCellOrder(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf", "swim"}, 2)
	for _, jobs := range []int{1, 3, 8, 32} {
		p := &Pool{Jobs: jobs}
		results := p.Run(context.Background(), cells, fakeCell)
		if len(results) != len(cells) {
			t.Fatalf("jobs=%d: %d results for %d cells", jobs, len(results), len(cells))
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("jobs=%d: cell %s failed: %v", jobs, cells[i], res.Err)
			}
			if res.Cell != cells[i] {
				t.Fatalf("jobs=%d: result %d is for %s, want %s", jobs, i, res.Cell, cells[i])
			}
			want, _ := fakeRun(cells[i])
			if *res.Run != *want {
				t.Fatalf("jobs=%d: cell %s run mismatch", jobs, cells[i])
			}
		}
	}
}

func TestPoolProgressAccounting(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf"}, 3)
	var events []Progress
	p := &Pool{Jobs: 4, OnProgress: func(pr Progress) { events = append(events, pr) }}
	p.Run(context.Background(), cells, fakeCell)
	if len(events) != len(cells) {
		t.Fatalf("%d progress events for %d cells", len(events), len(cells))
	}
	last := events[len(events)-1]
	if last.Done != len(cells) || last.Total != len(cells) || last.Failed != 0 || last.Cached != 0 {
		t.Fatalf("final progress %+v", last)
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf", "swim", "art"}, 1)
	p := &Pool{Jobs: 4}
	results := p.Run(context.Background(), cells, func(_ context.Context, c Cell) (*stats.Run, error) {
		if c.Workload == "mcf" {
			panic("diverging configuration")
		}
		return fakeRun(c)
	})
	var failed, ok int
	for _, res := range results {
		if res.Err != nil {
			failed++
			if !strings.Contains(res.Err.Error(), "panicked") ||
				!strings.Contains(res.Err.Error(), "diverging configuration") {
				t.Fatalf("panic error lost its cause: %v", res.Err)
			}
			if res.Cell.Workload != "mcf" {
				t.Fatalf("wrong cell failed: %s", res.Cell)
			}
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 3 {
		t.Fatalf("failed=%d ok=%d, want 1/3 — a panic must fail its cell only", failed, ok)
	}
}

func TestPoolCellTimeout(t *testing.T) {
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf", "swim"}, 1)
	p := &Pool{Jobs: 3, CellTimeout: 20 * time.Millisecond}
	results := p.Run(context.Background(), cells, func(_ context.Context, c Cell) (*stats.Run, error) {
		if c.Workload == "swim" {
			time.Sleep(2 * time.Second) // a "diverging" cell
		}
		return fakeRun(c)
	})
	for _, res := range results {
		if res.Cell.Workload == "swim" {
			if res.Err == nil || !strings.Contains(res.Err.Error(), "timeout") {
				t.Fatalf("diverging cell did not time out: %v", res.Err)
			}
		} else if res.Err != nil {
			t.Fatalf("healthy cell %s failed: %v", res.Cell, res.Err)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(1234, "gzip", 0); got != 1234 {
		t.Fatalf("seed index 0 must preserve the calibrated profile seed, got %d", got)
	}
	seen := map[uint64]string{}
	for _, wl := range []string{"gzip", "mcf"} {
		for idx := 1; idx <= 4; idx++ {
			s := DeriveSeed(1234, wl, idx)
			if s2 := DeriveSeed(1234, wl, idx); s2 != s {
				t.Fatalf("DeriveSeed not deterministic: %d vs %d", s, s2)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s#%d and %s", wl, idx, prev)
			}
			seen[s] = fmt.Sprintf("%s#%d", wl, idx)
		}
	}
}

// TestSimulateMatchesDirectRun pins the bit-compatibility contract: a
// seed-0 cell through the orchestration layer is the identical simulation
// as the historical direct core.New + Run path.
func TestSimulateMatchesDirectRun(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(context.Background(), Cell{Config: cfg, Workload: "gzip"}, 2000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(cfg, trace.New(p), p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkloadName("gzip")
	want := c.Run(2000, 8000)
	if *got != *want {
		t.Fatalf("pool cell diverged from direct run:\n got %+v\nwant %+v", *got, *want)
	}
}

// TestSeedReplicasDiffer checks replicas actually decorrelate: a seed-1
// cell must produce different dynamics than seed 0.
func TestSeedReplicasDiffer(t *testing.T) {
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	r0, err := Simulate(context.Background(), Cell{Config: cfg, Workload: "gzip", SeedIdx: 0}, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(context.Background(), Cell{Config: cfg, Workload: "gzip", SeedIdx: 1}, 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cycles == r1.Cycles && r0.Issued == r1.Issued && r0.L1Misses == r1.L1Misses {
		t.Fatal("seed replica 1 is identical to replica 0 — DeriveSeed not reaching the generator")
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	const fp = "warmup=1,measure=2,sched=event"
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf"}, 2)

	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	var simulated atomic.Int64
	run := func(_ context.Context, c Cell) (*stats.Run, error) { simulated.Add(1); return fakeRun(c) }
	first := (&Pool{Jobs: 4, Checkpoint: cp}).Run(context.Background(), cells, run)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	if int(simulated.Load()) != len(cells) {
		t.Fatalf("first sweep simulated %d of %d cells", simulated.Load(), len(cells))
	}

	// Resume: every cell must come from the checkpoint, bit-identical.
	cp2, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Len() != len(cells) {
		t.Fatalf("reloaded checkpoint has %d cells, want %d", cp2.Len(), len(cells))
	}
	simulated.Store(0)
	second := (&Pool{Jobs: 4, Checkpoint: cp2}).Run(context.Background(), cells, run)
	if simulated.Load() != 0 {
		t.Fatalf("resume re-simulated %d cells", simulated.Load())
	}
	for i := range cells {
		if !second[i].Cached {
			t.Fatalf("cell %s not satisfied from checkpoint", cells[i])
		}
		if !reflect.DeepEqual(*first[i].Run, *second[i].Run) {
			t.Fatalf("cell %s changed across resume", cells[i])
		}
	}

	// A partial grid extension simulates only the new cells.
	more := append(append([]Cell(nil), cells...),
		testGrid(t, []string{"Baseline_2"}, []string{"gzip"}, 1)...)
	cp3, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	simulated.Store(0)
	(&Pool{Jobs: 2, Checkpoint: cp3}).Run(context.Background(), more, run)
	if simulated.Load() != 1 {
		t.Fatalf("extension simulated %d cells, want 1", simulated.Load())
	}
}

func TestCheckpointRejectsForeignFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := LoadCheckpoint(path, "warmup=1,measure=2,sched=event")
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := config.Preset("Baseline_0")
	run, _ := fakeRun(Cell{Config: cfg, Workload: "gzip"})
	cp.Record(Cell{Config: cfg, Workload: "gzip"}, run)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "warmup=9,measure=9,sched=scan"); err == nil {
		t.Fatal("checkpoint with mismatched sweep options must be rejected")
	}
}

// TestCheckpointRejectsChangedConfig: same cell key, different config
// contents — the digest guard must force a re-simulation.
func TestCheckpointRejectsChangedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	const fp = "fp"
	cfg, _ := config.Preset("SpecSched_4")
	cell := Cell{Config: cfg, Workload: "gzip"}
	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	run, _ := fakeRun(cell)
	cp.Record(cell, run)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}

	cp2, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cp2.Lookup(cell); !ok {
		t.Fatal("unchanged config must hit the checkpoint")
	}
	changed := cell
	changed.Config.IQEntries *= 2 // same Name, different machine
	if _, ok := cp2.Lookup(changed); ok {
		t.Fatal("checkpoint hit for a config whose contents changed under the same name")
	}
}

func TestStealTakesFromVictimBack(t *testing.T) {
	deques := []*deque{{items: []int{}}, {items: []int{10, 11, 12}}}
	idx, ok := steal(deques, 0)
	if !ok || idx != 12 {
		t.Fatalf("steal got (%d,%v), want back item 12", idx, ok)
	}
	if n := len(deques[1].items); n != 2 {
		t.Fatalf("victim deque has %d items after steal, want 2", n)
	}
}

// TestPoolCancellation: canceling the sweep context must stop the pool
// promptly, keep results completed before the cancel, fail the rest with
// the cancellation cause, and leave completed cells in the checkpoint so
// the sweep is resumable.
func TestPoolCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := LoadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip", "mcf", "swim", "art", "vpr", "gcc"}, 1)

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	p := &Pool{Jobs: 2, Checkpoint: cp}
	resultsCh := make(chan []Result, 1)
	go func() {
		resultsCh <- p.Run(ctx, cells, func(ctx context.Context, c Cell) (*stats.Run, error) {
			if started.Add(1) > 2 {
				// Workers should never reach a third cell after cancel.
				<-ctx.Done()
				return nil, ctx.Err()
			}
			<-release // hold the first two cells until the test cancels
			return fakeRun(c)
		})
	}()

	// Let both workers claim a cell, then cancel and release them.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	var results []Result
	select {
	case results = <-resultsCh:
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not return after cancel")
	}

	var completed, canceled int
	for _, res := range results {
		switch {
		case res.Err == nil && res.Run != nil:
			completed++
		case res.Err != nil && errors.Is(res.Err, context.Canceled):
			canceled++
		default:
			t.Fatalf("cell %s: unexpected outcome (run=%v err=%v)", res.Cell, res.Run, res.Err)
		}
	}
	if completed != 2 || completed+canceled != len(cells) {
		t.Fatalf("completed=%d canceled=%d of %d cells, want 2 completed and the rest canceled",
			completed, canceled, len(cells))
	}
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Len() != completed {
		t.Fatalf("checkpoint holds %d cells after cancel, want %d", cp2.Len(), completed)
	}
}

// TestPoolOnResultStreams: every finished cell (fresh and cached) must be
// delivered to OnResult exactly once, with its Run attached.
func TestPoolOnResultStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := LoadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf"}, 2)
	(&Pool{Jobs: 4, Checkpoint: cp}).Run(context.Background(), cells[:4], fakeCell)

	var streamed []Result
	p := &Pool{Jobs: 4, Checkpoint: cp, OnResult: func(r Result) { streamed = append(streamed, r) }}
	p.Run(context.Background(), cells, fakeCell)
	if len(streamed) != len(cells) {
		t.Fatalf("streamed %d results for %d cells", len(streamed), len(cells))
	}
	seen := map[string]bool{}
	var cached int
	for _, r := range streamed {
		if r.Err != nil || r.Run == nil {
			t.Fatalf("streamed cell %s incomplete: %v", r.Cell, r.Err)
		}
		if seen[r.Cell.Key()] {
			t.Fatalf("cell %s streamed twice", r.Cell)
		}
		seen[r.Cell.Key()] = true
		if r.Cached {
			cached++
		}
	}
	if cached != 4 {
		t.Fatalf("streamed %d cached cells, want 4", cached)
	}
}

// recordTestTrace writes a trace of workload wl to dir and returns its ref.
func recordTestTrace(t *testing.T, dir, wl string, n int64) TraceRef {
	t.Helper()
	p, err := trace.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, wl+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traceio.Record(f, trace.New(p), n, "sim-test:"+wl, p.Seed); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ref, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestSimulateCellTraceMatchesLive pins the trace dispatch: a cell whose
// workload name resolves to a trace must replay to the exact Run the
// synthetic path produces, seed replica 0 being the recorded seed.
func TestSimulateCellTraceMatchesLive(t *testing.T) {
	const warm, measure = 1000, 5000
	dir := t.TempDir()
	ref := recordTestTrace(t, dir, "gzip", warm+measure+8192)
	if ref.Name != "gzip" {
		t.Fatalf("LoadTrace name = %q, want gzip", ref.Name)
	}
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Config: cfg, Workload: "gzip"}
	live, err := Simulate(context.Background(), cell, warm, measure)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := SimulateCell(context.Background(), cell, warm, measure, TraceSet{"gzip": ref})
	if err != nil {
		t.Fatal(err)
	}
	if *live != *replay {
		t.Fatalf("trace cell diverged from live cell:\n live   %+v\n replay %+v", *live, *replay)
	}

	// Replica 1 varies the wrong-path seed only; it must still complete
	// and may differ from replica 0 only through wrong-path effects.
	cell.SeedIdx = 1
	if _, err := SimulateCell(context.Background(), cell, warm, measure, TraceSet{"gzip": ref}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulateCellTraceTooShort checks the window guard: a trace shorter
// than warmup+measure fails the cell with a clear error instead of
// deadlocking the core.
func TestSimulateCellTraceTooShort(t *testing.T) {
	dir := t.TempDir()
	ref := recordTestTrace(t, dir, "gzip", 2000)
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = SimulateCell(context.Background(), Cell{Config: cfg, Workload: "gzip"}, 1000, 5000, TraceSet{"gzip": ref})
	if err == nil || !strings.Contains(err.Error(), "records 2000") {
		t.Fatalf("want too-short trace error, got %v", err)
	}
}

// TestFingerprintTraces pins the digest-in-checkpoint rule: the
// fingerprint must change when a trace's contents change (same path, same
// name), must be order-independent, and must extend — not replace — the
// base fingerprint.
func TestFingerprintTraces(t *testing.T) {
	dir := t.TempDir()
	a := recordTestTrace(t, dir, "gzip", 3000)
	b := recordTestTrace(t, dir, "swim", 3000)
	base := Fingerprint(1000, 5000, config.SchedEvent)
	if got := FingerprintTraces(1000, 5000, config.SchedEvent, nil); got != base {
		t.Errorf("no traces: fingerprint %q, want base %q", got, base)
	}
	fp := FingerprintTraces(1000, 5000, config.SchedEvent, TraceSet{a.Name: a, b.Name: b})
	if !strings.HasPrefix(fp, base) {
		t.Errorf("trace fingerprint %q does not extend base %q", fp, base)
	}
	// Same set, different map iteration won't change the string (sorted).
	if again := FingerprintTraces(1000, 5000, config.SchedEvent, TraceSet{b.Name: b, a.Name: a}); again != fp {
		t.Errorf("fingerprint not order-independent: %q vs %q", fp, again)
	}
	// A re-recorded trace with different contents must change it.
	c := recordTestTrace(t, dir, "gzip", 3001)
	if changed := FingerprintTraces(1000, 5000, config.SchedEvent, TraceSet{c.Name: c, b.Name: b}); changed == fp {
		t.Error("fingerprint unchanged after trace contents changed")
	}
}
