// Package sim is the experiment-orchestration layer: it shards a
// (configuration × workload × seed) simulation grid across a work-stealing
// worker pool, isolates each cell's failures (a panicking or diverging
// configuration fails its own cell, never the sweep), streams completed
// cells into a deterministic merge, and checkpoints finished cells to JSON
// so an interrupted sweep resumes from where it stopped.
//
// Determinism is the load-bearing property: every cell's RNG seed is a pure
// function of (workload, seed index) — see DeriveSeed — and merge order is
// the grid order the cells were submitted in, so a sweep's aggregate
// statistics are bit-identical regardless of worker count or the order the
// scheduler happened to finish cells in. internal/experiments and
// cmd/benchjson both run on this layer; see DESIGN.md §6.
package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/stats"
	"specsched/internal/trace"
)

// Cell is one independently dispatchable unit of the sweep grid: a full
// core configuration, a workload name, and a seed-replica index.
type Cell struct {
	Config   config.CoreConfig
	Workload string
	// SeedIdx selects the seed replica. Index 0 is the workload profile's
	// calibrated seed (bit-compatible with a direct core.New(cfg,
	// trace.New(p), p.Seed) run); higher indices derive fresh streams via
	// DeriveSeed.
	SeedIdx int
}

// Key returns the checkpoint key of the cell. It deliberately uses the
// configuration *name*; Checkpoint.Lookup additionally compares the
// configuration digest so a renamed-but-changed config never reuses stale
// results.
func (c Cell) Key() string {
	return fmt.Sprintf("%s\x00%s\x00%d", c.Config.Name, c.Workload, c.SeedIdx)
}

func (c Cell) String() string {
	return fmt.Sprintf("%s/%s#%d", c.Config.Name, c.Workload, c.SeedIdx)
}

// Result is the outcome of one cell: either a populated Run or an Err
// (simulation error, panic, or timeout). Cached marks results satisfied
// from a resume checkpoint without simulating.
type Result struct {
	Cell    Cell
	Run     *stats.Run
	Err     error
	Cached  bool
	Elapsed float64 // seconds of wall clock spent simulating (0 if cached)
}

// DeriveSeed maps (base profile seed, workload, seed index) to the RNG seed
// of one cell. Index 0 returns the profile's calibrated seed unchanged so
// the default single-seed sweep stays bit-identical to the historical
// serial path; higher indices mix the workload name and index through
// splitmix64 so replicas are decorrelated but reproducible.
//
// The configuration is deliberately *not* hashed in: the paper's
// normalization (every config vs Baseline_0, per benchmark) requires all
// configurations of a workload to execute the identical instruction
// stream, which means the trace seed must depend on the workload and seed
// index only.
func DeriveSeed(base uint64, workload string, seedIdx int) uint64 {
	if seedIdx == 0 {
		return base
	}
	h := fnv.New64a()
	io.WriteString(h, workload)
	return splitmix64(base ^ h.Sum64() ^ (uint64(seedIdx) * 0x9e3779b97f4a7c15))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Simulate runs one cell to completion: it resolves the workload profile,
// derives the cell seed, builds a core with the cell's configuration, and
// executes warmup+measure µ-ops. A canceled context aborts the cell
// mid-simulation (the core polls it) and returns the cancellation cause.
// It is the production cell function handed to Pool.Run by
// internal/experiments.
func Simulate(ctx context.Context, cell Cell, warmup, measure int64) (*stats.Run, error) {
	p, err := trace.ByName(cell.Workload)
	if err != nil {
		return nil, err
	}
	p = p.WithSeed(DeriveSeed(p.Seed, cell.Workload, cell.SeedIdx))
	c, err := core.New(cell.Config, trace.New(p), p.Seed)
	if err != nil {
		return nil, err
	}
	c.SetWorkloadName(cell.Workload)
	return c.RunContext(ctx, warmup, measure)
}

// Fingerprint summarizes the sweep-wide options that determine a cell's
// result beyond its (config, workload, seed) coordinates. Checkpoints
// created under a different fingerprint are rejected rather than silently
// merged.
func Fingerprint(warmup, measure int64, sched config.SchedulerImpl) string {
	return fmt.Sprintf("warmup=%d,measure=%d,sched=%s", warmup, measure, sched)
}
