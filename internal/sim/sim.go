// Package sim is the experiment-orchestration layer: it shards a
// (configuration × workload × seed) simulation grid across a work-stealing
// worker pool, isolates each cell's failures (a panicking or diverging
// configuration fails its own cell, never the sweep), streams completed
// cells into a deterministic merge, and checkpoints finished cells to JSON
// so an interrupted sweep resumes from where it stopped.
//
// Determinism is the load-bearing property: every cell's RNG seed is a pure
// function of (workload, seed index) — see DeriveSeed — and merge order is
// the grid order the cells were submitted in, so a sweep's aggregate
// statistics are bit-identical regardless of worker count or the order the
// scheduler happened to finish cells in. internal/experiments and
// cmd/benchjson both run on this layer; see DESIGN.md §6.
//
// This file is the cell-execution path: specschedlint's nodeterm
// analyzer holds it to the determinism rules (no wall clock, no global
// RNG, no order-leaking map iteration).

//specsched:determinism
package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"specsched/internal/config"
	"specsched/internal/core"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/traceio"
)

// Cell is one independently dispatchable unit of the sweep grid: a full
// core configuration, a workload name, and a seed-replica index.
type Cell struct {
	Config   config.CoreConfig
	Workload string
	// SeedIdx selects the seed replica. Index 0 is the workload profile's
	// calibrated seed (bit-compatible with a direct core.New(cfg,
	// trace.New(p), p.Seed) run); higher indices derive fresh streams via
	// DeriveSeed.
	SeedIdx int
}

// Key returns the checkpoint key of the cell. It deliberately uses the
// configuration *name*; Checkpoint.Lookup additionally compares the
// configuration digest so a renamed-but-changed config never reuses stale
// results.
func (c Cell) Key() string {
	return fmt.Sprintf("%s\x00%s\x00%d", c.Config.Name, c.Workload, c.SeedIdx)
}

func (c Cell) String() string {
	return fmt.Sprintf("%s/%s#%d", c.Config.Name, c.Workload, c.SeedIdx)
}

// Result is the outcome of one cell: either a populated Run or an Err
// (simulation error, panic, or timeout). Cached marks results satisfied
// from a resume checkpoint without simulating.
type Result struct {
	Cell   Cell
	Run    *stats.Run
	Err    error
	Cached bool
	// Deduped marks results served by a shared DedupCache — computed by a
	// concurrent pool (or an earlier one) for an identical cell instead of
	// being simulated here. The Run is shared: copy before mutating.
	Deduped bool
	// Attempts is how many attempts the cell took (1 = first try; >1
	// means transient failures were retried). 0 for cached cells.
	Attempts int
	Elapsed  float64 // seconds of wall clock spent simulating, summed over attempts (0 if cached)
}

// heartbeatKey carries the stall-watchdog heartbeat counter through the
// context handed to cell functions.
type heartbeatKey struct{}

// WithHeartbeat returns a context carrying a heartbeat counter for the
// cell function to bump with its simulated-cycle position. Pool.runCell
// installs one when the stall watchdog is armed; Simulate and SimulateCell
// wire it to core.SetHeartbeat so the core's cancellation poll (every 4096
// busy cycles) publishes progress for free.
func WithHeartbeat(ctx context.Context, hb *atomic.Int64) context.Context {
	return context.WithValue(ctx, heartbeatKey{}, hb)
}

// HeartbeatFrom extracts the heartbeat counter installed by WithHeartbeat,
// or nil if the context carries none.
func HeartbeatFrom(ctx context.Context) *atomic.Int64 {
	hb, _ := ctx.Value(heartbeatKey{}).(*atomic.Int64)
	return hb
}

// DeriveSeed maps (base profile seed, workload, seed index) to the RNG seed
// of one cell. Index 0 returns the profile's calibrated seed unchanged so
// the default single-seed sweep stays bit-identical to the historical
// serial path; higher indices mix the workload name and index through
// splitmix64 so replicas are decorrelated but reproducible.
//
// The configuration is deliberately *not* hashed in: the paper's
// normalization (every config vs Baseline_0, per benchmark) requires all
// configurations of a workload to execute the identical instruction
// stream, which means the trace seed must depend on the workload and seed
// index only.
func DeriveSeed(base uint64, workload string, seedIdx int) uint64 {
	if seedIdx == 0 {
		return base
	}
	h := fnv.New64a()
	io.WriteString(h, workload)
	return splitmix64(base ^ h.Sum64() ^ (uint64(seedIdx) * 0x9e3779b97f4a7c15))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Simulate runs one cell to completion: it resolves the workload profile,
// derives the cell seed, builds a core with the cell's configuration, and
// executes warmup+measure µ-ops. A canceled context aborts the cell
// mid-simulation (the core polls it) and returns the cancellation cause.
// It is the production cell function handed to Pool.Run by
// internal/experiments.
func Simulate(ctx context.Context, cell Cell, warmup, measure int64) (*stats.Run, error) {
	p, err := trace.ByName(cell.Workload)
	if err != nil {
		return nil, err
	}
	p = p.WithSeed(DeriveSeed(p.Seed, cell.Workload, cell.SeedIdx))
	c, err := core.New(cell.Config, trace.New(p), p.Seed)
	if err != nil {
		return nil, err
	}
	c.SetWorkloadName(cell.Workload)
	c.SetHeartbeat(HeartbeatFrom(ctx))
	return c.RunContext(ctx, warmup, measure)
}

// ErrBadTrace marks cell failures caused by the recorded trace backing a
// workload — unreadable or corrupt files, traces too short for the
// simulation window, or a stream that ran dry inside the window's
// fetch-ahead. The public façade maps it onto its own ErrBadTrace
// sentinel so sweep cells and single simulations fail identically.
var ErrBadTrace = errors.New("sim: unusable trace")

// TraceRef names one recorded µ-op trace (internal/traceio) serving as a
// sweep workload: cells whose Workload matches Name replay the file at
// Path instead of generating a synthetic stream. LoadTrace reads and
// decompresses the file once; every cell then decodes from the shared
// in-memory body. The header's content digest feeds the sweep fingerprint
// so a swapped trace file invalidates checkpointed cells instead of
// silently reusing them.
type TraceRef struct {
	Name   string
	Path   string
	Header traceio.Header

	// proto is the loaded decoder the ref was created with; NewStream
	// clones it (shared read-only body, fresh decode state) per cell.
	proto *traceio.Decoder
}

// LoadTrace reads and validates the trace at path and returns a TraceRef
// named after the file stem ("corpus/mcf.trace" → "mcf"). The
// decompressed body (a few bytes per µ-op) stays resident for the ref's
// lifetime — it is the working set every cell of a sweep replays.
func LoadTrace(path string) (TraceRef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return TraceRef{}, fmt.Errorf("%w: %s: %v", ErrBadTrace, path, err)
	}
	d, err := traceio.NewDecoder(bytes.NewReader(data))
	if err != nil {
		return TraceRef{}, fmt.Errorf("%w: %s: %v", ErrBadTrace, path, err)
	}
	return TraceRef{Name: traceio.WorkloadName(path), Path: path, Header: d.Header(), proto: d}, nil
}

// NewStream opens the trace for one replay. Refs from LoadTrace clone the
// cached in-memory body (no I/O, no inflation); a zero-constructed ref
// falls back to reading Path. Either way the returned stream needs no
// Close and its NextInto steady state allocates nothing.
func (t TraceRef) NewStream() (*traceio.Decoder, error) {
	if t.proto != nil {
		return t.proto.Clone(), nil
	}
	loaded, err := LoadTrace(t.Path)
	if err != nil {
		return nil, err
	}
	return loaded.proto.Clone(), nil
}

// TraceSet maps workload names to recorded traces. A trace whose name
// collides with a Table 2 profile shadows the profile for cells in sweeps
// carrying the set.
type TraceSet map[string]TraceRef

// SimulateCell is Simulate with trace dispatch: cells whose workload name
// is present in traces replay the recorded stream (bit-identical to the
// live generation it recorded); all other cells generate synthetically.
// Seed replicas of a trace cell vary the wrong-path filler seed only —
// index 0 is the recorded seed, making the default replica bit-identical
// to the live run — since the correct-path stream is fixed by the file.
// Trace-caused failures match ErrBadTrace.
func SimulateCell(ctx context.Context, cell Cell, warmup, measure int64, traces TraceSet) (*stats.Run, error) {
	tr, ok := traces[cell.Workload]
	if !ok {
		return Simulate(ctx, cell, warmup, measure)
	}
	if tr.Header.Count < warmup+measure {
		return nil, fmt.Errorf("%w: %s records %d µ-ops, window needs at least %d",
			ErrBadTrace, tr.Path, tr.Header.Count, warmup+measure)
	}
	d, err := tr.NewStream()
	if err != nil {
		return nil, err
	}
	seed := DeriveSeed(tr.Header.WrongPathSeed, cell.Workload, cell.SeedIdx)
	c, err := core.New(cell.Config, d, seed)
	if err != nil {
		return nil, err
	}
	c.SetWorkloadName(cell.Workload)
	c.SetHeartbeat(HeartbeatFrom(ctx))
	r, err := c.RunContext(ctx, warmup, measure)
	switch {
	case err != nil && d.Err() != nil:
		// The stream "ended" because a record failed to decode: surface
		// the corruption, not the drained pipeline.
		return nil, fmt.Errorf("%w: %s: %v", ErrBadTrace, tr.Path, d.Err())
	case errors.Is(err, core.ErrStreamEnded):
		return nil, fmt.Errorf("%w: %s: %v", ErrBadTrace, tr.Path, err)
	case err != nil:
		return nil, err
	case c.StreamExhausted():
		// The window committed, but fetch consumed the trace's final µ-op
		// mid-window: the fetch-ahead — and so the statistics — can differ
		// from a live run. Bit-identity or failure, nothing in between.
		return nil, fmt.Errorf("%w: %s ran dry inside the window's fetch-ahead (%d recorded µ-ops; record more slack)",
			ErrBadTrace, tr.Path, tr.Header.Count)
	}
	return r, nil
}

// Fingerprint summarizes the sweep-wide options that determine a cell's
// result beyond its (config, workload, seed) coordinates. Checkpoints
// created under a different fingerprint are rejected rather than silently
// merged.
func Fingerprint(warmup, measure int64, sched config.SchedulerImpl) string {
	return fmt.Sprintf("warmup=%d,measure=%d,sched=%s", warmup, measure, sched)
}

// FingerprintTraces is Fingerprint extended with the identity of every
// trace workload: name, body digest, µ-op count, and wrong-path seed. A
// trace file swapped for different contents under the same path therefore
// changes the fingerprint, and a checkpoint recorded against the old
// contents is rejected instead of contaminating the resumed sweep.
func FingerprintTraces(warmup, measure int64, sched config.SchedulerImpl, traces TraceSet) string {
	fp := Fingerprint(warmup, measure, sched)
	if len(traces) == 0 {
		return fp
	}
	names := make([]string, 0, len(traces))
	for name := range traces {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(fp)
	for _, name := range names {
		tr := traces[name]
		fmt.Fprintf(&b, ",trace:%s=%016x/%d/%d", name, tr.Header.Digest, tr.Header.Count, tr.Header.WrongPathSeed)
	}
	return b.String()
}
