package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specsched/internal/config"
	"specsched/internal/stats"
)

func TestDedupCacheHitAndShare(t *testing.T) {
	d := NewDedupCache(8)
	ctx := context.Background()
	want := &stats.Run{Cycles: 42}

	var calls atomic.Int64
	fn := func() (*stats.Run, error) {
		calls.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the sharing window
		return want, nil
	}

	const callers = 8
	srcs := make([]DedupSource, callers)
	runs := make([]*stats.Run, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, src, err := d.Do(ctx, "k", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			runs[i], srcs[i] = run, src
		}(i)
	}
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", calls.Load())
	}
	executed := 0
	for i := range srcs {
		if runs[i] != want {
			t.Fatalf("caller %d got a different run", i)
		}
		if srcs[i] == DedupExecuted {
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("%d callers executed, want 1", executed)
	}

	if run, src, err := d.Do(ctx, "k", fn); err != nil || src != DedupHit || run != want {
		t.Fatalf("repeat call: run=%p src=%v err=%v, want LRU hit of %p", run, src, err, want)
	}
	st := d.Stats()
	if st.Executed != 1 || st.Hits != 1 || st.Shared != int64(callers-1) {
		t.Fatalf("stats %+v, want 1 executed, 1 hit, %d shared", st, callers-1)
	}
}

// TestDedupCacheOwnerFailureNotInherited: an owner that fails (its
// cancellation, its chaos injection, its retry budget) must not fail the
// waiters — they re-execute the key themselves, and errors never enter
// the LRU.
func TestDedupCacheOwnerFailureNotInherited(t *testing.T) {
	d := NewDedupCache(8)
	ctx := context.Background()

	ownerIn := make(chan struct{})
	ownerGo := make(chan struct{})
	ownerErr := errors.New("owner-only failure")
	go func() {
		d.Do(ctx, "k", func() (*stats.Run, error) {
			close(ownerIn)
			<-ownerGo
			return nil, ownerErr
		})
	}()
	<-ownerIn

	want := &stats.Run{Cycles: 7}
	done := make(chan struct{})
	var got *stats.Run
	var gotSrc DedupSource
	var gotErr error
	go func() {
		defer close(done)
		got, gotSrc, gotErr = d.Do(ctx, "k", func() (*stats.Run, error) { return want, nil })
	}()

	select {
	case <-done:
		t.Fatal("waiter returned before the owner resolved")
	case <-time.After(10 * time.Millisecond):
	}
	close(ownerGo)
	<-done
	if gotErr != nil {
		t.Fatalf("waiter inherited the owner's failure: %v", gotErr)
	}
	if gotSrc != DedupExecuted || got != want {
		t.Fatalf("waiter got src=%v run=%p, want to re-execute itself", gotSrc, got)
	}
	if st := d.Stats(); st.Executed != 2 {
		t.Fatalf("executed %d, want 2 (owner + retrying waiter)", st.Executed)
	}
}

// TestDedupCacheWaiterCancel: a canceled waiter unblocks with its own
// cancellation cause instead of waiting out a slow owner.
func TestDedupCacheWaiterCancel(t *testing.T) {
	d := NewDedupCache(8)
	ownerIn := make(chan struct{})
	ownerGo := make(chan struct{})
	defer close(ownerGo)
	go func() {
		d.Do(context.Background(), "k", func() (*stats.Run, error) {
			close(ownerIn)
			<-ownerGo
			return &stats.Run{}, nil
		})
	}()
	<-ownerIn

	cause := errors.New("my sweep was canceled")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if _, _, err := d.Do(ctx, "k", nil); !errors.Is(err, cause) {
		t.Fatalf("canceled waiter returned %v, want its own cause", err)
	}
}

func TestDedupCacheLRUEviction(t *testing.T) {
	d := NewDedupCache(2)
	ctx := context.Background()
	mk := func(i int) func() (*stats.Run, error) {
		return func() (*stats.Run, error) { return &stats.Run{Cycles: int64(i)}, nil }
	}
	for i := 0; i < 3; i++ {
		if _, src, err := d.Do(ctx, fmt.Sprintf("k%d", i), mk(i)); err != nil || src != DedupExecuted {
			t.Fatalf("fill %d: src=%v err=%v", i, src, err)
		}
	}
	// k0 is the eviction victim; k1, k2 remain.
	if _, src, _ := d.Do(ctx, "k0", mk(0)); src != DedupExecuted {
		t.Fatalf("evicted key served from cache (src=%v)", src)
	}
	if _, src, _ := d.Do(ctx, "k2", mk(2)); src != DedupHit {
		t.Fatalf("retained key not served from cache (src=%v)", src)
	}
	if st := d.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", st.Entries)
	}
}

// TestDedupKeyIdentity: the key must fold in exactly the inputs that
// determine a cell's result — and nothing that doesn't exist yet, like
// the config *name* alone (the digest covers renames-with-changes).
func TestDedupKeyIdentity(t *testing.T) {
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	base := DedupKey(Cell{Config: cfg, Workload: "gzip", SeedIdx: 0}, 100, 400, nil)

	if k := DedupKey(Cell{Config: cfg, Workload: "gzip", SeedIdx: 0}, 100, 400, nil); k != base {
		t.Fatal("identical cells must share a key")
	}
	if k := DedupKey(Cell{Config: cfg, Workload: "gzip", SeedIdx: 1}, 100, 400, nil); k == base {
		t.Fatal("seed index not in the key")
	}
	if k := DedupKey(Cell{Config: cfg, Workload: "hmmer", SeedIdx: 0}, 100, 400, nil); k == base {
		t.Fatal("workload not in the key")
	}
	if k := DedupKey(Cell{Config: cfg, Workload: "gzip", SeedIdx: 0}, 100, 500, nil); k == base {
		t.Fatal("window not in the key")
	}
	changed := cfg
	changed.IssueWidth++
	if k := DedupKey(Cell{Config: changed, Workload: "gzip", SeedIdx: 0}, 100, 400, nil); k == base {
		t.Fatal("config contents not in the key")
	}
	// A trace workload keys on the trace's content identity, not its name.
	traces := TraceSet{"gzip": {Name: "gzip"}}
	withTrace := DedupKey(Cell{Config: cfg, Workload: "gzip", SeedIdx: 0}, 100, 400, traces)
	if withTrace == base {
		t.Fatal("trace-backed workload shares a key with the synthetic profile")
	}
}

// TestDedupCacheOwnerDeathManyWaiters models a flight owner dying
// mid-execution — e.g. its job canceled, or its worker subprocess crashed
// past the retry budget — with a crowd of waiters parked on the flight.
// Exactly one waiter must re-execute the cell; the rest share its flight
// or hit the LRU; nobody inherits the dead owner's error; and the counters
// must account for every call without leaking.
func TestDedupCacheOwnerDeathManyWaiters(t *testing.T) {
	d := NewDedupCache(8)
	ctx := context.Background()

	ownerIn := make(chan struct{})
	ownerDie := make(chan struct{})
	ownerErr := errors.New("owner died mid-execution")
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		_, src, err := d.Do(ctx, "k", func() (*stats.Run, error) {
			close(ownerIn)
			<-ownerDie
			return nil, ownerErr
		})
		if src != DedupExecuted || !errors.Is(err, ownerErr) {
			t.Errorf("owner: src=%v err=%v, want its own execution error", src, err)
		}
	}()
	<-ownerIn

	// The re-executing waiter also blocks, so its siblings demonstrably
	// park on the *second* flight (DedupShared) rather than racing it.
	want := &stats.Run{Cycles: 1234}
	retryIn := make(chan struct{})
	retryGo := make(chan struct{})
	var reexecs atomic.Int64
	retryFn := func() (*stats.Run, error) {
		if reexecs.Add(1) == 1 {
			close(retryIn)
		}
		<-retryGo
		return want, nil
	}

	const waiters = 8
	srcs := make([]DedupSource, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, src, err := d.Do(ctx, "k", retryFn)
			if err != nil {
				t.Errorf("waiter %d inherited an error: %v", i, err)
			}
			if run != want {
				t.Errorf("waiter %d got run %+v, want the re-executed result", i, run)
			}
			srcs[i] = src
		}(i)
	}

	// Let the waiters park on the owner's flight, then kill the owner.
	time.Sleep(10 * time.Millisecond)
	close(ownerDie)
	<-ownerDone
	// One waiter wins the retry flight; release it once it is inside.
	<-retryIn
	time.Sleep(10 * time.Millisecond)
	close(retryGo)
	wg.Wait()

	if n := reexecs.Load(); n != 1 {
		t.Fatalf("%d waiters re-executed, want exactly 1", n)
	}
	executed, shared, hits := 0, 0, 0
	for _, src := range srcs {
		switch src {
		case DedupExecuted:
			executed++
		case DedupShared:
			shared++
		case DedupHit:
			hits++
		}
	}
	if executed != 1 {
		t.Fatalf("%d waiters report DedupExecuted, want 1", executed)
	}
	if shared+hits != waiters-1 {
		t.Fatalf("shared=%d hits=%d, want them to cover the other %d waiters", shared, hits, waiters-1)
	}

	// Counter accounting: every Do call is visible exactly once, the dead
	// owner's included; the failed flight left no cache entry behind —
	// only the re-executed success is retained.
	st := d.Stats()
	if st.Executed != 2 {
		t.Fatalf("Stats().Executed = %d, want 2 (owner + one retrying waiter)", st.Executed)
	}
	if st.Shared != int64(shared) || st.Hits != int64(hits) {
		t.Fatalf("Stats() counted shared=%d hits=%d, callers observed shared=%d hits=%d",
			st.Shared, st.Hits, shared, hits)
	}
	if st.Entries != 1 {
		t.Fatalf("Stats().Entries = %d, want 1 (the retried success only)", st.Entries)
	}
	// And the flight table is actually empty: a fresh call is a pure hit.
	if _, src, err := d.Do(ctx, "k", nil); err != nil || src != DedupHit {
		t.Fatalf("follow-up call: src=%v err=%v, want an LRU hit", src, err)
	}
}
