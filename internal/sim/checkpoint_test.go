package sim

// Checkpoint durability suite: LoadCheckpoint failure paths (truncation,
// garbage, retired schema, damaged records), salvage, .bak fallback, and
// the end-to-end torn-write → resume acceptance property.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"specsched/internal/faultinject"
	"specsched/internal/stats"
)

const ckptTestFP = "warmup=1,measure=2,sched=event"

// writeFullCheckpoint runs every cell through a checkpointed pool and
// flushes, returning the cells and the on-disk bytes.
func writeFullCheckpoint(t *testing.T, path string) ([]Cell, []byte) {
	t.Helper()
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf", "swim"}, 2)
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	(&Pool{Jobs: 4, Checkpoint: cp}).Run(context.Background(), cells, fakeCell)
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return cells, data
}

// lookupAll returns how many of the cells a checkpoint serves, verifying
// every hit is bit-identical to the expected run.
func lookupAll(t *testing.T, cp *Checkpoint, cells []Cell) int {
	t.Helper()
	hits := 0
	for _, c := range cells {
		run, ok := cp.Lookup(c)
		if !ok {
			continue
		}
		want, _ := fakeRun(c)
		if *run != *want {
			t.Fatalf("cell %s: salvaged run differs from the recorded one", c)
		}
		hits++
	}
	return hits
}

func TestLoadCheckpointTruncated(t *testing.T) {
	dir := t.TempDir()
	cells, data := writeFullCheckpoint(t, filepath.Join(dir, "full.ckpt"))
	headerEnd := bytes.IndexByte(data, '\n') + 1

	for _, cut := range []int{headerEnd, headerEnd + 10, len(data) / 2, len(data) - 2} {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.ckpt", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpoint(path, ckptTestFP)
		if err != nil {
			t.Fatalf("cut=%d: truncated checkpoint must salvage, not error: %v", cut, err)
		}
		if cp.Salvage() == nil {
			t.Fatalf("cut=%d: no salvage report for a truncated file", cut)
		}
		hits := lookupAll(t, cp, cells)
		if hits != cp.Len() {
			t.Fatalf("cut=%d: %d lookups hit but Len()=%d", cut, hits, cp.Len())
		}
		if cut == len(data)-2 && cp.Len() < len(cells)-1 {
			t.Fatalf("cut=%d: lost %d cells to a 2-byte truncation", cut, len(cells)-cp.Len())
		}
	}
}

func TestLoadCheckpointGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(path, []byte("this is not a checkpoint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, ckptTestFP); err == nil {
		t.Fatal("foreign file accepted as a checkpoint")
	}
}

func TestLoadCheckpointEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatalf("empty checkpoint (crash before first write) must restart, not error: %v", err)
	}
	if cp.Len() != 0 || cp.Salvage() == nil {
		t.Fatalf("Len=%d Salvage=%v, want an empty salvaged restart", cp.Len(), cp.Salvage())
	}
}

func TestLoadCheckpointRetiredV1Schema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	body := `{"schema":"specsched-sweep-checkpoint/v1","fingerprint":"` + ckptTestFP + `","cells":{}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path, ckptTestFP)
	if err == nil || !strings.Contains(err.Error(), "retired schema") {
		t.Fatalf("v1 checkpoint error = %v, want a retired-schema rejection", err)
	}
}

func TestLoadCheckpointWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v9.ckpt")
	body := `H {"schema":"specsched-sweep-checkpoint/v9","fingerprint":"` + ckptTestFP + "\"}\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path, ckptTestFP)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema error = %v", err)
	}
}

// TestLoadCheckpointDamagedRecords: a record whose digest no longer
// matches, and a digest-valid record whose payload is not JSON, are each
// dropped alone — every other record loads.
func TestLoadCheckpointDamagedRecords(t *testing.T) {
	dir := t.TempDir()
	cells, data := writeFullCheckpoint(t, filepath.Join(dir, "full.ckpt"))
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpectedly small checkpoint: %d lines", len(lines))
	}

	// Flip one byte inside the JSON payload of the second record.
	corrupted := []byte(lines[2])
	corrupted[len(corrupted)-5] ^= 0xa5
	lines[2] = string(corrupted)

	// Replace the third record with a digest-valid but non-JSON payload.
	bogus := "definitely not json"
	lines[3] = fmt.Sprintf("C %016x %s", fnvSum([]byte(bogus)), bogus)

	path := filepath.Join(dir, "damaged.ckpt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatalf("damaged records must salvage, not error: %v", err)
	}
	rep := cp.Salvage()
	if rep == nil {
		t.Fatal("no salvage report")
	}
	if rep.DroppedLines != 2 {
		t.Fatalf("DroppedLines = %d, want 2", rep.DroppedLines)
	}
	if cp.Len() != len(cells)-2 {
		t.Fatalf("Len = %d, want %d (two records dropped)", cp.Len(), len(cells)-2)
	}
	lookupAll(t, cp, cells)
}

// TestCheckpointBakFallback: the primary vanishing entirely (crash in the
// rotate→rename window, or operator damage) falls back to the .bak
// generation.
func TestCheckpointBakFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	cells, _ := writeFullCheckpoint(t, path) // 12 cells → two auto-flush generations
	if _, err := os.Stat(path + bakSuffix); err != nil {
		t.Fatalf("no .bak rotation after multiple flushes: %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatalf("missing primary with intact .bak must salvage: %v", err)
	}
	rep := cp.Salvage()
	if rep == nil || rep.BackupCells == 0 || rep.BackupCells != cp.Len() {
		t.Fatalf("salvage = %+v with Len %d, want every cell from .bak", rep, cp.Len())
	}
	if hits := lookupAll(t, cp, cells); hits != cp.Len() {
		t.Fatalf("%d lookups hit, Len %d", hits, cp.Len())
	}
}

// TestChaosTornWriteSalvageResume is the torn-write acceptance property: a
// checkpoint whose every flush is injected torn (truncated body, no fsync)
// still resumes — LoadCheckpoint recovers every digest-valid record from
// the torn primary plus the previous generation, the resumed sweep
// re-simulates only what was lost, and the merged results are
// bit-identical to a fault-free sweep.
func TestChaosTornWriteSalvageResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf", "swim", "applu"}, 2)
	clean := (&Pool{Jobs: 4}).Run(context.Background(), cells, fakeCell)

	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	cp.SetChaos(&faultinject.Plan{TornWriteRate: 1}) // every flush crashes mid-write
	(&Pool{Jobs: 4, Checkpoint: cp}).Run(context.Background(), cells, fakeCell)
	cp.Flush()

	cp2, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatalf("torn checkpoint must salvage, not error: %v", err)
	}
	rep := cp2.Salvage()
	if rep == nil {
		t.Fatal("no salvage report after torn writes")
	}
	if cp2.Len() == 0 {
		t.Fatal("salvage recovered nothing from a torn checkpoint")
	}
	salvaged := lookupAll(t, cp2, cells)
	if salvaged != cp2.Len() {
		t.Fatalf("%d lookups hit but Len()=%d", salvaged, cp2.Len())
	}
	t.Logf("salvage: %s", rep)

	// Resume without chaos: exactly the lost cells re-simulate, and the
	// merged sweep is bit-identical to the fault-free run.
	var simulated atomic.Int64
	res := (&Pool{Jobs: 4, Checkpoint: cp2}).Run(context.Background(), cells,
		func(_ context.Context, c Cell) (*stats.Run, error) { simulated.Add(1); return fakeRun(c) })
	if int(simulated.Load()) != len(cells)-salvaged {
		t.Fatalf("resume simulated %d cells, want %d (total %d - salvaged %d)",
			simulated.Load(), len(cells)-salvaged, len(cells), salvaged)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %s failed on resume: %v", r.Cell, r.Err)
		}
		if *r.Run != *clean[i].Run {
			t.Fatalf("cell %s: resumed run diverged from fault-free run", r.Cell)
		}
	}

	// The resume marks salvaged state dirty: the next flush writes a clean
	// generation and a third load is pristine.
	if err := cp2.Flush(); err != nil {
		t.Fatal(err)
	}
	cp3, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	if cp3.Salvage() != nil || cp3.Len() != len(cells) {
		t.Fatalf("post-resume load: salvage=%v Len=%d, want clean with all %d cells",
			cp3.Salvage(), cp3.Len(), len(cells))
	}
}

// TestCheckpointForeignFingerprintBakIgnored: the .bak fallback still
// enforces the fingerprint — a torn primary plus a foreign-sweep .bak
// salvages only the primary's records.
func TestCheckpointForeignFingerprintBakIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	_, data := writeFullCheckpoint(t, path)

	// Rewrite the .bak as a checkpoint of a different sweep.
	other, err := LoadCheckpoint(filepath.Join(dir, "other.ckpt"), "warmup=9,measure=9,sched=event")
	if err != nil {
		t.Fatal(err)
	}
	otherCells := testGrid(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	(&Pool{Jobs: 1, Checkpoint: other}).Run(context.Background(), otherCells, fakeCell)
	if err := other.Flush(); err != nil {
		t.Fatal(err)
	}
	foreign, err := os.ReadFile(filepath.Join(dir, "other.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+bakSuffix, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear the primary so the load takes the salvage path.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	rep := cp.Salvage()
	if rep == nil || rep.BackupCells != 0 {
		t.Fatalf("salvage = %+v, want zero cells from the foreign .bak", rep)
	}
}

// TestCheckpointConcurrentRecordFlush: Record never holds the cell-map
// lock across marshal+I/O, so concurrent Record/Lookup traffic during
// flushes is safe (the -race build is the assertion here) and nothing is
// lost.
func TestCheckpointConcurrentRecordFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	cells := testGrid(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "mcf", "swim", "applu"}, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cells); i += 8 {
				run, _ := fakeRun(cells[i])
				cp.Record(cells[i], run)
				cp.Lookup(cells[i])
			}
		}(w)
	}
	wg.Wait()
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(path, ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Salvage() != nil || cp2.Len() != len(cells) {
		t.Fatalf("reload: salvage=%v Len=%d, want clean %d", cp2.Salvage(), cp2.Len(), len(cells))
	}
}

// TestCheckpointFlushErrorSurfaced: a flush that cannot write (directory
// gone) is reported by Flush, not swallowed.
func TestCheckpointFlushErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "gone")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(filepath.Join(sub, "sweep.ckpt"), ckptTestFP)
	if err != nil {
		t.Fatal(err)
	}
	cells := testGrid(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	run, _ := fakeRun(cells[0])
	cp.Record(cells[0], run)
	if err := os.RemoveAll(sub); err != nil {
		t.Fatal(err)
	}
	if err := cp.Flush(); err == nil {
		t.Fatal("Flush into a removed directory reported success")
	}
}
