// Cell-execution path: nodeterm's determinism rules apply (a runner's
// result must be a pure function of the cell spec).

//specsched:determinism
package sim

import (
	"context"

	"specsched/internal/stats"
)

// CellRunner is the execution seam of the pool: one attempt of one cell,
// wherever that attempt actually runs. The in-process LocalRunner is the
// default; internal/worker provides a subprocess-backed implementation
// whose results are bit-identical (the per-cell seeding makes a cell's
// result a pure function of the cell spec, so placement cannot matter).
//
// The pool calls RunCell from the attempt goroutine it already isolates —
// panics, timeouts, stalls, and retry classification all apply unchanged,
// which is what lets a crashed worker subprocess look like any other
// transient cell failure. attempt is 1-based and increments across retries
// of the same cell, so a runner (or an injected fault plan behind it) can
// key deterministic per-attempt behavior off it.
//
// Close releases whatever the runner holds (worker processes, sockets);
// the pool does not call it — the runner's owner does, after every
// RunWith using it has returned.
type CellRunner interface {
	RunCell(ctx context.Context, cell Cell, attempt int) (*stats.Run, error)
	Close() error
}

// RunnerFunc adapts a plain cell function to CellRunner, ignoring the
// attempt number and holding no resources. Pool.Run uses it to keep the
// historical func-based signature.
type RunnerFunc func(ctx context.Context, cell Cell) (*stats.Run, error)

// RunCell implements CellRunner.
func (f RunnerFunc) RunCell(ctx context.Context, cell Cell, _ int) (*stats.Run, error) {
	return f(ctx, cell)
}

// Close implements CellRunner as a no-op.
func (f RunnerFunc) Close() error { return nil }

// LocalRunner is the default in-process CellRunner: SimulateCell with the
// configured windows and trace set, on the calling goroutine.
type LocalRunner struct {
	Warmup  int64
	Measure int64
	Traces  TraceSet
}

// RunCell implements CellRunner.
func (l LocalRunner) RunCell(ctx context.Context, cell Cell, _ int) (*stats.Run, error) {
	return SimulateCell(ctx, cell, l.Warmup, l.Measure, l.Traces)
}

// Close implements CellRunner as a no-op.
func (l LocalRunner) Close() error { return nil }
