// Cell-execution path: nodeterm's determinism rules apply — DedupKey
// equality promises bit-identical results, which only holds if nothing
// here depends on wall clock, global RNG, or map order.

//specsched:determinism
package sim

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"specsched/internal/stats"
)

// DedupKey returns the cross-sweep identity of one cell's result: the full
// configuration digest, the workload's content fingerprint (its profile
// identity, or the recorded trace's digest/count/wrong-path seed), the
// seed-replica index, and the simulation window. Two cells with equal keys
// provably produce bit-identical runs — the deterministic per-cell seeding
// (DeriveSeed) is a pure function of exactly these inputs — so a result
// computed for one sweep can be handed to every other sweep asking for the
// same key. It is the key of DedupCache and of the service layer's
// cross-job dedup and result cache.
func DedupKey(c Cell, warmup, measure int64, traces TraceSet) string {
	wl := "profile:" + c.Workload
	if tr, ok := traces[c.Workload]; ok {
		wl = fmt.Sprintf("trace:%s/%016x/%d/%d", c.Workload, tr.Header.Digest, tr.Header.Count, tr.Header.WrongPathSeed)
	}
	return fmt.Sprintf("%016x\x00%s\x00%d\x00%d\x00%d", c.Config.Digest(), wl, c.SeedIdx, warmup, measure)
}

// DedupSource says how a DedupCache.Do call obtained its result.
type DedupSource uint8

const (
	// DedupExecuted: this caller ran the cell function itself.
	DedupExecuted DedupSource = iota
	// DedupShared: another in-flight caller ran it; we received its result.
	DedupShared
	// DedupHit: the result was already in the LRU cache.
	DedupHit
)

// DedupCache combines a single-flight table with an LRU result cache so
// that identical cells requested by any number of concurrent sweeps run
// exactly once: the first caller of a key executes, concurrent callers of
// the same key wait and share the result, and later callers are served
// from the LRU until the entry is evicted. Failed executions are never
// cached — and a waiter whose flight owner failed (or was canceled) retries
// the key itself rather than inheriting a foreign error, so one job's
// cancellation can never fail another job's cell.
//
// Stored runs are shared between callers: treat them as immutable, copy
// before mutating (the same contract as Checkpoint.Lookup).
type DedupCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // key → LRU element holding *dedupEntry
	order    *list.List               // front = most recent
	flights  map[string]*flight

	hits, shared, executed int64
}

type dedupEntry struct {
	key string
	run *stats.Run
}

// flight is one in-progress execution; waiters block on done. run/err are
// written once, before done is closed, and read-only afterwards.
type flight struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// DefaultDedupEntries is the LRU capacity NewDedupCache applies when the
// caller passes a non-positive one. At a few hundred bytes per stats.Run,
// the default keeps the cache's working set in the low megabytes.
const DefaultDedupEntries = 4096

// NewDedupCache returns a cache bounded to capacity result entries
// (capacity <= 0 selects DefaultDedupEntries).
func NewDedupCache(capacity int) *DedupCache {
	if capacity <= 0 {
		capacity = DefaultDedupEntries
	}
	return &DedupCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		flights:  make(map[string]*flight),
	}
}

// DedupStats is a point-in-time snapshot of a DedupCache's counters.
type DedupStats struct {
	// Hits counts calls served from the LRU; Shared counts calls that
	// waited on another caller's in-flight execution; Executed counts
	// calls that ran the cell function themselves.
	Hits, Shared, Executed int64
	// Entries is the current LRU size.
	Entries int
}

// Stats snapshots the cache counters.
func (d *DedupCache) Stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DedupStats{Hits: d.hits, Shared: d.shared, Executed: d.executed, Entries: d.order.Len()}
}

// Do returns the result for key, executing fn at most once across all
// concurrent callers of the same key and serving repeat calls from the
// LRU. The returned source says which path served the call. A ctx
// canceled while waiting on another caller's flight returns the
// cancellation cause without waiting further; fn itself must honor ctx
// (and must not panic — the pool's per-attempt recovery runs inside fn).
func (d *DedupCache) Do(ctx context.Context, key string, fn func() (*stats.Run, error)) (*stats.Run, DedupSource, error) {
	for {
		d.mu.Lock()
		if e, ok := d.entries[key]; ok {
			d.order.MoveToFront(e)
			run := e.Value.(*dedupEntry).run
			d.hits++
			d.mu.Unlock()
			return run, DedupHit, nil
		}
		if f, ok := d.flights[key]; ok {
			d.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, DedupShared, context.Cause(ctx)
			case <-f.done:
			}
			if f.err == nil && f.run != nil {
				d.mu.Lock()
				d.shared++
				d.mu.Unlock()
				return f.run, DedupShared, nil
			}
			// The owner failed or was canceled. Its error may be specific
			// to its sweep (cancellation, chaos injection, its own retry
			// budget), so do not inherit it: loop and run — or wait on a
			// newer flight — ourselves.
			continue
		}
		f := &flight{done: make(chan struct{})}
		d.flights[key] = f
		d.executed++
		d.mu.Unlock()

		func() {
			defer func() {
				d.mu.Lock()
				delete(d.flights, key)
				if f.err == nil && f.run != nil {
					d.store(key, f.run)
				}
				d.mu.Unlock()
				close(f.done) // waiters read f only after this
			}()
			f.run, f.err = fn()
		}()
		return f.run, DedupExecuted, f.err
	}
}

// store inserts (or refreshes) key under the LRU bound. Callers hold d.mu.
func (d *DedupCache) store(key string, run *stats.Run) {
	if e, ok := d.entries[key]; ok {
		e.Value.(*dedupEntry).run = run
		d.order.MoveToFront(e)
		return
	}
	d.entries[key] = d.order.PushFront(&dedupEntry{key: key, run: run})
	for d.order.Len() > d.capacity {
		oldest := d.order.Back()
		d.order.Remove(oldest)
		delete(d.entries, oldest.Value.(*dedupEntry).key)
	}
}
