// Package traceio records and replays dynamic µ-op streams as compact,
// versioned binary trace files — the on-ramp for externally captured
// instruction streams (the paper's evaluation is defined over recorded
// SPEC traces; see DESIGN.md §9 for the substitution story).
//
// A trace is a gzip stream whose decompressed payload is
//
//	magic "SSCHTRC\x00" | header | body
//
// The header is self-describing: format version, a generator fingerprint
// naming what produced the stream, the wrong-path RNG seed the recording
// workload would have used (so replay reproduces wrong-path fetch
// bit-identically), the µ-op count, and an FNV-64a digest of the body
// bytes. The body encodes one record per µ-op: a flags byte (class +
// presence bits) followed by varint-encoded fields, with sequence numbers,
// PCs, and effective addresses delta-encoded against the previous µ-op —
// synthetic and real instruction streams alike are locally correlated, so
// deltas keep most records in the 3-6 byte range before gzip.
//
// The contract is bit-identity: replaying a recorded trace through the
// core must produce a stats.Run identical to generating the stream live
// (asserted by the differential suite), and re-recording a decoded trace
// must reproduce the source file byte for byte (the encoding has no
// timestamps or other nondeterminism). The wire format canonicalizes
// fields the timing model never consumes: Size is carried for memory
// µ-ops only and Target for branches only; on every other class they
// replay as zero.
package traceio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"specsched/internal/uop"
)

// magic identifies a specsched µ-op trace; it is the first thing in the
// decompressed payload so a wrong file type fails immediately with a
// useful error instead of a varint parse failure.
var magic = []byte("SSCHTRC\x00")

// Version is the current trace format version. Decoders accept only
// versions they know (currently: exactly this one); incompatible layout
// changes must bump it. See DESIGN.md §9 for the versioning policy.
const Version = 1

// maxGeneratorLen bounds the header's generator-fingerprint string so a
// corrupt or hostile length prefix cannot drive a large allocation.
const maxGeneratorLen = 4096

// FNV-64a parameters; the body digest is plain FNV-64a folded byte by
// byte, cheap enough to compute inline on both the encode and decode path.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// WorkloadName derives the workload name a trace file is addressed by:
// the file stem ("corpus/mcf.trace" → "mcf"). The sweep layer and the
// public façade both name trace workloads through this one convention.
func WorkloadName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// Header is the self-describing front matter of a trace.
type Header struct {
	// Version is the format version the trace was written with.
	Version int
	// Generator fingerprints what produced the stream (e.g.
	// "profile:gzip seed=1001"). Re-recording a trace preserves it, so
	// provenance survives round trips.
	Generator string
	// WrongPathSeed seeds the wrong-path filler generator at replay;
	// recording captures the seed the live workload would have used, which
	// is what makes replayed statistics bit-identical to live ones.
	WrongPathSeed uint64
	// Count is the number of µ-ops in the body.
	Count int64
	// Digest is the FNV-64a digest of the (uncompressed) body bytes.
	Digest uint64
}

// flags-byte layout: low four bits carry the µ-op class, the high bits the
// presence of optional fields.
const (
	flagClassMask = 0x0f
	flagTaken     = 1 << 4
	flagSrc1      = 1 << 5
	flagSrc2      = 1 << 6
	flagDest      = 1 << 7
)

// zigzag maps signed deltas to unsigned varint-friendly space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is zigzag's inverse.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encoder tracks the delta state shared by consecutive records.
type encState struct {
	seq  int64
	pc   uint64
	addr uint64
}

// appendUOp encodes one µ-op onto buf. It rejects µ-ops the wire format
// cannot represent (wrong-path markers, out-of-range registers).
func appendUOp(buf []byte, u *uop.UOp, st *encState) ([]byte, error) {
	if err := u.Validate(); err != nil {
		return buf, fmt.Errorf("traceio: unencodable µ-op: %w", err)
	}
	if u.WrongPath {
		return buf, fmt.Errorf("traceio: refusing to record wrong-path µ-op %d (wrong-path fetch is regenerated at replay from the recorded seed)", u.Seq)
	}
	flags := byte(u.Class) & flagClassMask
	if u.Taken {
		flags |= flagTaken
	}
	if u.Src1 != uop.RegNone {
		flags |= flagSrc1
	}
	if u.Src2 != uop.RegNone {
		flags |= flagSrc2
	}
	if u.Dest != uop.RegNone {
		flags |= flagDest
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, zigzag(u.Seq-st.seq))
	buf = binary.AppendUvarint(buf, zigzag(int64(u.PC-st.pc)))
	st.seq, st.pc = u.Seq, u.PC
	if u.Src1 != uop.RegNone {
		buf = append(buf, byte(u.Src1))
	}
	if u.Src2 != uop.RegNone {
		buf = append(buf, byte(u.Src2))
	}
	if u.Dest != uop.RegNone {
		buf = append(buf, byte(u.Dest))
	}
	if u.Class.IsMem() {
		buf = binary.AppendUvarint(buf, zigzag(int64(u.Addr-st.addr)))
		buf = append(buf, u.Size)
		st.addr = u.Addr
	}
	if u.Class == uop.ClassBranch {
		buf = binary.AppendUvarint(buf, zigzag(int64(u.Target-u.PC)))
	}
	return buf, nil
}

// Record drains exactly n µ-ops from src and writes a complete trace to w.
// The body is staged in memory first — the header carries the µ-op count
// and body digest, both unknown until the stream has been drained — so
// Record's memory footprint is proportional to the encoded body (a few
// bytes per µ-op). A stream that ends before n µ-ops is an error: a trace
// must replay the window it claims to hold.
func Record(w io.Writer, src uop.Stream, n int64, generator string, wrongPathSeed uint64) (Header, error) {
	if n <= 0 {
		return Header{}, fmt.Errorf("traceio: non-positive µ-op count %d", n)
	}
	if len(generator) > maxGeneratorLen {
		return Header{}, fmt.Errorf("traceio: generator fingerprint longer than %d bytes", maxGeneratorLen)
	}
	into, _ := src.(uop.StreamInto)
	var (
		// Capacity is a hint only, and n can come from an untrusted trace
		// header (re-recording): cap the pre-allocation and let append
		// grow with the data that actually arrives.
		body = make([]byte, 0, min(6*n, 1<<20))
		st   encState
		u    uop.UOp
		err  error
	)
	for i := int64(0); i < n; i++ {
		ok := false
		if into != nil {
			ok = into.NextInto(&u)
		} else {
			u, ok = src.Next()
		}
		if !ok {
			return Header{}, fmt.Errorf("traceio: stream ended after %d of %d µ-ops", i, n)
		}
		if body, err = appendUOp(body, &u, &st); err != nil {
			return Header{}, err
		}
	}
	digest := uint64(fnvOffset)
	for _, b := range body {
		digest = (digest ^ uint64(b)) * fnvPrime
	}
	h := Header{
		Version:       Version,
		Generator:     generator,
		WrongPathSeed: wrongPathSeed,
		Count:         n,
		Digest:        digest,
	}

	gz := gzip.NewWriter(w)
	var head []byte
	head = append(head, magic...)
	head = binary.AppendUvarint(head, Version)
	head = binary.AppendUvarint(head, uint64(len(generator)))
	head = append(head, generator...)
	head = binary.AppendUvarint(head, wrongPathSeed)
	head = binary.AppendUvarint(head, uint64(n))
	head = binary.AppendUvarint(head, digest)
	if _, err := gz.Write(head); err != nil {
		return h, fmt.Errorf("traceio: %w", err)
	}
	if _, err := gz.Write(body); err != nil {
		return h, fmt.Errorf("traceio: %w", err)
	}
	if err := gz.Close(); err != nil {
		return h, fmt.Errorf("traceio: %w", err)
	}
	return h, nil
}

// Decoder streams µ-ops out of a recorded trace. It implements uop.Stream
// and uop.StreamInto; the NextInto steady state allocates nothing, so a
// replayed core keeps the simulator's zero-alloc property. To guarantee
// that, NewDecoder decompresses the container once up front (streaming
// gzip would allocate at flate block boundaries) — memory is proportional
// to the decoded body, a few bytes per µ-op, matching the encoder — and
// verifies the body digest right there: replay normally stops inside the
// recorded slack and never reaches the last record, so an end-of-decode
// check would let a tampered body replay silently. Digest mismatches
// therefore fail construction, before a single µ-op is produced.
//
// NextInto returns false at the end of the trace — after Count µ-ops have
// been decoded and the container checked for trailing garbage — or on a
// malformed record. Err distinguishes the two: it is nil after a clean,
// complete decode and carries the corruption otherwise. Malformed input
// of any kind (bad header, truncated body, corrupt varints, digest
// mismatch) produces an error, never a panic, and never an allocation
// sized by untrusted header fields.
type Decoder struct {
	payload []byte // decompressed body (records only; the header is parsed off the stream)
	pos     int
	h       Header
	st      encState
	read    int64
	done    bool
	err     error
}

// NewDecoder opens a trace, validates its header, decompresses the body,
// and verifies the body digest against the header. Structural corruption
// of individual records surfaces later, from NextInto/Err.
func NewDecoder(r io.Reader) (*Decoder, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("traceio: not a trace (gzip container): %w", err)
	}
	br := bufio.NewReader(gz)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: corrupt container: %w", err)
	}
	digest := uint64(fnvOffset)
	for _, b := range body {
		digest = (digest ^ uint64(b)) * fnvPrime
	}
	if digest != h.Digest {
		return nil, fmt.Errorf("traceio: body digest mismatch (header %#016x, body %#016x)", h.Digest, digest)
	}
	return &Decoder{payload: body, h: h}, nil
}

// Clone returns an independent decoder over the same decompressed,
// digest-verified body, reset to the first µ-op — the cheap way to replay
// one loaded trace many times (one decoder per sweep cell) without
// re-reading or re-inflating the file. The body slice is shared and
// read-only; all mutable decode state is per-decoder.
func (d *Decoder) Clone() *Decoder {
	return &Decoder{payload: d.payload, h: d.h}
}

// headUvarint reads one header varint off the stream (not digest-folded:
// the digest covers the body only).
func headUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("traceio: header: bad %s varint: %w", what, err)
	}
	return v, nil
}

// readHeader parses and validates the magic and header from the
// decompressed stream, consuming exactly through the last header byte so
// the body follows. It reads a bounded number of bytes regardless of
// input, which is what lets ReadInfo serve header queries without
// inflating the body.
func readHeader(br *bufio.Reader) (Header, error) {
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return Header{}, fmt.Errorf("traceio: short header: %w", err)
	}
	if !bytes.Equal(m[:], magic) {
		return Header{}, fmt.Errorf("traceio: bad magic %q (not a specsched µ-op trace)", m[:])
	}
	ver, err := headUvarint(br, "version")
	if err != nil {
		return Header{}, err
	}
	if ver != Version {
		return Header{}, fmt.Errorf("traceio: unsupported format version %d (this build reads version %d)", ver, Version)
	}
	genLen, err := headUvarint(br, "generator length")
	if err != nil {
		return Header{}, err
	}
	if genLen > maxGeneratorLen {
		return Header{}, fmt.Errorf("traceio: generator fingerprint length %d exceeds limit %d", genLen, maxGeneratorLen)
	}
	gen := make([]byte, genLen)
	if _, err := io.ReadFull(br, gen); err != nil {
		return Header{}, fmt.Errorf("traceio: truncated generator fingerprint: %w", err)
	}
	wpSeed, err := headUvarint(br, "wrong-path seed")
	if err != nil {
		return Header{}, err
	}
	count, err := headUvarint(br, "µ-op count")
	if err != nil {
		return Header{}, err
	}
	if count > 1<<50 {
		return Header{}, fmt.Errorf("traceio: implausible µ-op count %d", count)
	}
	digest, err := headUvarint(br, "digest")
	if err != nil {
		return Header{}, err
	}
	return Header{
		Version:       int(ver),
		Generator:     string(gen),
		WrongPathSeed: wpSeed,
		Count:         int64(count),
		Digest:        digest,
	}, nil
}

// Header returns the trace's front matter.
func (d *Decoder) Header() Header { return d.h }

// Err returns the decode error, if any. It is nil while µ-ops are still
// being produced and after a clean end-of-trace; a truncated body, corrupt
// record, digest mismatch, or trailing garbage makes it non-nil once
// NextInto has returned false.
func (d *Decoder) Err() error { return d.err }

// bodyByte reads one body byte.
func (d *Decoder) bodyByte() (byte, bool) {
	if d.pos >= len(d.payload) {
		return 0, false
	}
	b := d.payload[d.pos]
	d.pos++
	return b, true
}

// bodyUvarint reads one body varint.
func (d *Decoder) bodyUvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.payload[d.pos:])
	if n <= 0 {
		return 0, false
	}
	d.pos += n
	return v, true
}

// fail records a terminal decode error.
func (d *Decoder) fail(format string, args ...interface{}) bool {
	d.done = true
	d.err = fmt.Errorf("traceio: µ-op %d: "+format, append([]interface{}{d.read}, args...)...)
	return false
}

// finish runs the end-of-trace checks exactly once. The body digest was
// already verified at construction; what remains is structural: every
// payload byte must belong to one of the Count records.
func (d *Decoder) finish() bool {
	d.done = true
	if d.pos != len(d.payload) {
		d.err = fmt.Errorf("traceio: %d bytes of trailing data after %d µ-ops", len(d.payload)-d.pos, d.h.Count)
	}
	return false
}

// Next implements uop.Stream.
func (d *Decoder) Next() (uop.UOp, bool) {
	var u uop.UOp
	ok := d.NextInto(&u)
	return u, ok
}

// readReg decodes one register operand byte.
func (d *Decoder) readReg(dst *int) bool {
	b, ok := d.bodyByte()
	if !ok {
		return d.fail("truncated register operand")
	}
	if int(b) >= uop.NumArchRegs {
		return d.fail("register %d out of range", b)
	}
	*dst = int(b)
	return true
}

// NextInto implements uop.StreamInto: it decodes the next record straight
// into dst without allocating (TestDecoderSteadyStateZeroAllocs pins it
// at runtime; specschedlint's hotpathalloc pins it at the diff).
//
//specsched:hotpath
func (d *Decoder) NextInto(dst *uop.UOp) bool {
	if d.done {
		return false
	}
	if d.read == d.h.Count {
		return d.finish()
	}
	flags, ok := d.bodyByte()
	if !ok {
		return d.fail("truncated record")
	}
	class := uop.Class(flags & flagClassMask)
	if int(class) >= uop.NumClasses {
		return d.fail("unknown class %d", class)
	}
	seqDelta, ok := d.bodyUvarint()
	if !ok {
		return d.fail("bad sequence delta")
	}
	pcDelta, ok := d.bodyUvarint()
	if !ok {
		return d.fail("bad pc delta")
	}
	d.st.seq += unzigzag(seqDelta)
	d.st.pc += uint64(unzigzag(pcDelta))

	dst.Seq = d.st.seq
	dst.PC = d.st.pc
	dst.Class = class
	dst.Src1 = uop.RegNone
	dst.Src2 = uop.RegNone
	dst.Dest = uop.RegNone
	dst.Addr = 0
	dst.Size = 0
	dst.Taken = flags&flagTaken != 0
	dst.Target = 0
	dst.WrongPath = false

	if flags&flagSrc1 != 0 && !d.readReg(&dst.Src1) {
		return false
	}
	if flags&flagSrc2 != 0 && !d.readReg(&dst.Src2) {
		return false
	}
	if flags&flagDest != 0 && !d.readReg(&dst.Dest) {
		return false
	}
	if class.IsMem() {
		addrDelta, ok := d.bodyUvarint()
		if !ok {
			return d.fail("bad address delta")
		}
		d.st.addr += uint64(unzigzag(addrDelta))
		dst.Addr = d.st.addr
		sz, ok := d.bodyByte()
		if !ok {
			return d.fail("truncated access size")
		}
		dst.Size = sz
	}
	if class == uop.ClassBranch {
		tgtDelta, ok := d.bodyUvarint()
		if !ok {
			return d.fail("bad target delta")
		}
		dst.Target = dst.PC + uint64(unzigzag(tgtDelta))
	}
	d.read++
	return true
}

// ReadInfo reads and validates a trace's header without inflating or
// decoding the body: it reads only the compressed bytes the header parse
// demands, so header queries over large traces stay cheap.
func ReadInfo(r io.Reader) (Header, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return Header{}, fmt.Errorf("traceio: not a trace (gzip container): %w", err)
	}
	return readHeader(bufio.NewReader(gz))
}

// Verify fully decodes a trace, checking every record, the µ-op count, the
// body digest, and the container trailer. It returns the header on success.
func Verify(r io.Reader) (Header, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return Header{}, err
	}
	var u uop.UOp
	for d.NextInto(&u) {
	}
	return d.h, d.Err()
}
