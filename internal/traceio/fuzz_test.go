package traceio

import (
	"bytes"
	"compress/gzip"
	"testing"

	"specsched/internal/trace"
	"specsched/internal/uop"
)

// FuzzTraceDecode feeds arbitrary bytes to the decoder. The contract under
// fuzzing is: malformed input of every kind — broken containers, corrupt
// headers, truncated bodies, mangled varints — must surface as an error,
// never a panic, never an over-allocation driven by untrusted header
// fields, and never a µ-op that fails structural validation.
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: a small valid trace, truncations of it at container and
	// body granularity, a bit-flipped variant, a huge-count header, and
	// plain junk.
	var valid bytes.Buffer
	if _, err := Record(&valid, trace.NewStreamSum(4<<10), 600, "fuzz:seed", 9); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add(valid.Bytes()[:18])
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[valid.Len()/2] ^= 0x40
	f.Add(flipped)
	var huge bytes.Buffer
	gz := gzip.NewWriter(&huge)
	gz.Write(magic)
	gz.Write([]byte{Version, 0})                               // version, empty generator
	gz.Write([]byte{0})                                        // wrong-path seed
	gz.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // enormous count
	gz.Write([]byte{0})                                        // digest
	gz.Close()
	f.Add(huge.Bytes())
	f.Add([]byte("definitely not a trace"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine, as long as it didn't panic
		}
		var u uop.UOp
		decoded := 0
		for d.NextInto(&u) {
			// The decoder must never produce more µ-ops than the input
			// could plausibly encode: records are >= 3 bytes and deflate
			// expands at most ~1032x, so the input length bounds the count.
			if decoded++; decoded > 400*len(data)+1024 {
				t.Fatalf("decoded %d µ-ops from %d input bytes", decoded, len(data))
			}
			if err := u.Validate(); err != nil {
				t.Fatalf("decoder produced invalid µ-op: %v", err)
			}
			if u.WrongPath {
				t.Fatal("decoder produced a wrong-path µ-op")
			}
		}
		if int64(decoded) > d.Header().Count {
			t.Fatalf("decoded %d µ-ops, header claims %d", decoded, d.Header().Count)
		}
		if int64(decoded) < d.Header().Count && d.Err() == nil {
			t.Fatalf("decode stopped at %d of %d µ-ops with nil Err", decoded, d.Header().Count)
		}
	})
}
