package traceio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"testing"

	"specsched/internal/trace"
	"specsched/internal/uop"
)

// streams under test: the statistical generator plus every exact-semantics
// kernel — together they cover every class, operand shape, and address
// pattern the codec must represent.
func testStreams(t *testing.T) map[string]func() uop.Stream {
	t.Helper()
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]func() uop.Stream{
		"profile-gzip":       func() uop.Stream { return trace.New(p) },
		"profile-libquantum": func() uop.Stream { return trace.New(mem) },
		"kernel-chase":       func() uop.Stream { return trace.NewPointerChase(7, 512) },
		"kernel-stream":      func() uop.Stream { return trace.NewStreamSum(16 << 10) },
		"kernel-stencil":     func() uop.Stream { return trace.NewStencil(16 << 10) },
	}
}

func drain(t *testing.T, s uop.Stream, n int) []uop.UOp {
	t.Helper()
	out := make([]uop.UOp, 0, n)
	for i := 0; i < n; i++ {
		u, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended after %d of %d µ-ops", i, n)
		}
		out = append(out, u)
	}
	return out
}

// canonical maps a live µ-op to its wire-canonical form: the format
// carries Size for memory µ-ops only and Target for branches only (the
// timing model never reads either off those paths).
func canonical(u uop.UOp) uop.UOp {
	if !u.Class.IsMem() {
		u.Size = 0
	}
	if u.Class != uop.ClassBranch {
		u.Target = 0
	}
	return u
}

// TestRoundTrip records each stream and checks the decoded µ-ops are
// field-for-field identical to a twin of the live stream.
func TestRoundTrip(t *testing.T) {
	const n = 5000
	for name, mk := range testStreams(t) {
		var buf bytes.Buffer
		h, err := Record(&buf, mk(), n, "test:"+name, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.Count != n || h.Generator != "test:"+name || h.WrongPathSeed != 42 || h.Version != Version {
			t.Fatalf("%s: bad header %+v", name, h)
		}
		want := drain(t, mk(), n)

		d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Header() != h {
			t.Fatalf("%s: decoded header %+v != recorded %+v", name, d.Header(), h)
		}
		got := drain(t, d, n)
		for i := range want {
			want[i] = canonical(want[i])
			if want[i] != got[i] {
				t.Fatalf("%s: µ-op %d differs\nlive:   %+v\nreplay: %+v", name, i, want[i], got[i])
			}
		}
		var u uop.UOp
		if d.NextInto(&u) {
			t.Fatalf("%s: decoder produced more than %d µ-ops", name, n)
		}
		if err := d.Err(); err != nil {
			t.Fatalf("%s: clean decode reported error: %v", name, err)
		}
	}
}

// TestReRecordByteIdentity is the codec's determinism pin: decoding a trace
// and re-recording it (same count, same header metadata) must reproduce
// the source file byte for byte — the property the CI traces job checks on
// real files via cmd/tracedump.
func TestReRecordByteIdentity(t *testing.T) {
	const n = 4000
	for name, mk := range testStreams(t) {
		var first bytes.Buffer
		h, err := Record(&first, mk(), n, "test:"+name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := NewDecoder(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var second bytes.Buffer
		h2, err := Record(&second, d, h.Count, h.Generator, h.WrongPathSeed)
		if err != nil {
			t.Fatalf("%s: re-record: %v", name, err)
		}
		if h2 != h {
			t.Fatalf("%s: re-record header %+v != %+v", name, h2, h)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s: re-recorded trace differs from source (%d vs %d bytes)",
				name, first.Len(), second.Len())
		}
	}
}

// TestVerify exercises Verify on a good trace and on targeted corruptions
// of the decompressed payload (re-wrapped in a valid gzip container so the
// corruption reaches the codec, not the container CRC).
func TestVerify(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, trace.NewStreamSum(8<<10), 2000, "test:verify", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("clean trace failed verification: %v", err)
	}

	gz, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	rewrap := func(p []byte) io.Reader {
		var out bytes.Buffer
		w := gzip.NewWriter(&out)
		w.Write(p)
		w.Close()
		return bytes.NewReader(out.Bytes())
	}

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped body byte (digest mismatch)", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[len(q)-1] ^= 0xff
			return q
		}},
		{"truncated body", func(p []byte) []byte { return p[:len(p)-10] }},
		{"trailing garbage", func(p []byte) []byte { return append(append([]byte(nil), p...), 0xde, 0xad) }},
		{"bad magic", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[0] = 'X'
			return q
		}},
		{"future version", func(p []byte) []byte {
			q := append([]byte(nil), p...)
			q[len(magic)] = Version + 1
			return q
		}},
	} {
		if _, err := Verify(rewrap(tc.mutate(payload))); err == nil {
			t.Errorf("%s: verification passed, want error", tc.name)
		}
	}

	if _, err := Verify(bytes.NewReader([]byte("not a gzip stream"))); err == nil {
		t.Error("non-gzip input: verification passed, want error")
	}
}

// TestShortStream pins the recording contract: a stream that ends before
// the requested count is an error, not a silently short trace.
func TestShortStream(t *testing.T) {
	var buf bytes.Buffer
	src, err := NewDecoder(func() io.Reader {
		var b bytes.Buffer
		if _, err := Record(&b, trace.NewStreamSum(8<<10), 100, "g", 0); err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(b.Bytes())
	}())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(&buf, src, 500, "g", 0); err == nil {
		t.Fatal("recording 500 µ-ops from a 100-µ-op stream succeeded")
	}
}

// TestReadInfo checks the header-only fast path.
func TestReadInfo(t *testing.T) {
	var buf bytes.Buffer
	h, err := Record(&buf, trace.NewPointerChase(3, 64), 300, "kernel:chase nodes=64 seed=3", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("ReadInfo = %+v, want %+v", got, h)
	}
}

// TestDecoderSteadyStateZeroAllocs is the decoder's allocation regression
// guard: once constructed, NextInto must decode µ-ops without allocating,
// so a trace-replayed core keeps the simulator's zero-alloc steady state.
func TestDecoderSteadyStateZeroAllocs(t *testing.T) {
	p, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	var buf bytes.Buffer
	if _, err := Record(&buf, trace.New(p), n, "test:allocs", 1); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var u uop.UOp
	// Warm past the first flate blocks so the decompressor's buffers exist.
	for i := 0; i < 50000; i++ {
		if !d.NextInto(&u) {
			t.Fatalf("trace ended during warmup at %d: %v", i, d.Err())
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 10000; i++ {
			if !d.NextInto(&u) {
				t.Fatalf("trace ended mid-measurement: %v", d.Err())
			}
		}
	})
	if avg != 0 {
		t.Errorf("%.1f allocations per 10000 decoded µ-ops, want 0", avg)
	}
}

// TestTamperedBodyRejectedAtOpen pins the replay-path digest guard:
// replay normally stops inside the recorded slack and never reaches the
// last record, so the digest must be verified when the trace is opened —
// a tampered body has to fail NewDecoder, not just a full Verify.
func TestTamperedBodyRejectedAtOpen(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, trace.NewStreamSum(8<<10), 2000, "test:tamper", 1); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-1] ^= 0xff
	var rewrapped bytes.Buffer
	w := gzip.NewWriter(&rewrapped)
	w.Write(payload)
	w.Close()
	if _, err := NewDecoder(bytes.NewReader(rewrapped.Bytes())); err == nil {
		t.Fatal("NewDecoder accepted a trace with a tampered body")
	}
}

// TestRecordHugeClaimedCountNoPanic pins the no-over-allocation contract
// on the encode side: re-recording from a trace whose header claims an
// enormous µ-op count must fail cleanly when the stream runs dry, not
// pre-allocate (and panic or OOM) off the untrusted count.
func TestRecordHugeClaimedCountNoPanic(t *testing.T) {
	var evil bytes.Buffer
	w := gzip.NewWriter(&evil)
	w.Write(magic)
	w.Write([]byte{Version, 0, 0})                        // version, empty generator, wp seed
	w.Write(binary.AppendUvarint(nil, 1<<49))             // enormous count
	w.Write(binary.AppendUvarint(nil, uint64(fnvOffset))) // digest of the empty body
	w.Close()
	d, err := NewDecoder(bytes.NewReader(evil.Bytes()))
	if err != nil {
		t.Fatalf("header-only trace should open (body checks are lazy): %v", err)
	}
	var out bytes.Buffer
	if _, err := Record(&out, d, d.Header().Count, "g", 0); err == nil {
		t.Fatal("recording a stream with a fraudulent count succeeded")
	}
}
