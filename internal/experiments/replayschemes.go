package experiments

import (
	"context"
	"fmt"
	"strings"

	"specsched/internal/config"
	"specsched/internal/stats"
)

// ReplaySchemes compares the Alpha-21264-style recovery-buffer replay the
// paper models against Pentium-4-style selective replay (§2.1), for both
// the baseline speculative scheduler and SpecSched_4_Crit. The paper's
// mechanisms claim to be replay-scheme-agnostic: the replay *reductions*
// from Shifting + filtering + criticality should hold under either scheme.
func (r *Runner) ReplaySchemes(ctx context.Context) (string, error) {
	mk := func(base config.CoreConfig, scheme config.ReplayScheme, name string) config.CoreConfig {
		base.Replay = scheme
		base.Name = name
		return base
	}
	cfgs := []config.CoreConfig{
		mk(config.SpecSched(4, true), config.RecoveryBuffer, "SS4_alpha"),
		mk(config.SpecSched(4, true), config.SelectiveReplay, "SS4_selective"),
		mk(config.SpecSchedCrit(4), config.RecoveryBuffer, "Crit_alpha"),
		mk(config.SpecSchedCrit(4), config.SelectiveReplay, "Crit_selective"),
	}
	set, err := r.collectConfigs(ctx, cfgs)
	if err != nil {
		return "", err
	}
	refSet, err := r.Collect(ctx, baselineName)
	if err != nil {
		return "", err
	}
	for _, wl := range r.opts.Workloads {
		if run := refSet.Get(baselineName, wl); run != nil {
			set.Add(run)
		}
	}

	tb := stats.NewTable("Replay schemes: Alpha-style squash vs Pentium-4-style selective",
		"config", "gmean perf", "replayed µ-ops", "issued")
	for _, cn := range []string{"SS4_alpha", "SS4_selective", "Crit_alpha", "Crit_selective"} {
		tb.AddRowf(3, cn,
			set.GMeanSpeedup(cn, baselineName),
			set.SumField(cn, func(run *stats.Run) int64 { return run.Replayed() }),
			set.SumField(cn, func(run *stats.Run) int64 { return run.Issued }))
	}

	redUnder := func(scheme string) float64 {
		return set.ReductionVs("Crit_"+scheme, "SS4_"+scheme,
			func(run *stats.Run) int64 { return run.Replayed() })
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nCrit's replay reduction under the Alpha scheme:     %.1f%%\n", 100*redUnder("alpha"))
	fmt.Fprintf(&b, "Crit's replay reduction under selective replay:     %.1f%%\n", 100*redUnder("selective"))
	b.WriteString("(similar reductions = the mechanisms are replay-scheme-agnostic, §1)\n")
	return b.String(), nil
}
