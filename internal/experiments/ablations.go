package experiments

import (
	"context"
	"fmt"
	"strings"

	"specsched/internal/config"
	"specsched/internal/stats"
)

// collectConfigs runs arbitrary (possibly non-preset) configurations across
// the workload set on the sim pool, bypassing the preset-name cache
// (ablation configs are one-shot). The set is assembled in grid order, so
// its iteration order is deterministic too.
func (r *Runner) collectConfigs(ctx context.Context, cfgs []config.CoreConfig) (*stats.Set, error) {
	runs, err := r.runGrid(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	set := stats.NewSet()
	for _, cfg := range cfgs {
		for _, wl := range r.opts.Workloads {
			if run := runs[key(cfg.Name, wl)]; run != nil {
				set.Add(run)
			}
		}
	}
	return set, nil
}

// ablationVariants builds the design-choice ablations DESIGN.md lists, all
// derived from SpecSched_4-family presets.
func ablationVariants() []config.CoreConfig {
	var out []config.CoreConfig

	// Per-PC filter without the silence bit (§5.2 argues the bit wins).
	noSilence := config.SpecSchedFilter(4)
	noSilence.FilterNoSilence = true
	noSilence.Name = "SpecSched_4_Filter_NoSilence"
	out = append(out, noSilence)

	// No single line buffer: same-set pairs conflict too (§4.2 notes the
	// SLB already removes those conflicts).
	noSLB := config.SpecSched(4, true)
	noSLB.SingleLineBuffer = false
	noSLB.Name = "SpecSched_4_NoSLB"
	out = append(out, noSLB)

	// Set-interleaved banks instead of quadword-interleaved (§4.2:
	// "performs similarly" at equal bank count).
	setIl := config.SpecSched(4, true)
	setIl.L1Interleave = config.SetInterleave
	setIl.Name = "SpecSched_4_SetInterleave"
	out = append(out, setIl)

	// IQ retention replay (§3.1: "greatly decreased performance").
	ret := config.SpecSched(4, true)
	ret.Replay = config.IQRetention
	ret.Name = "SpecSched_4_IQRetention"
	out = append(out, ret)

	// Criticality table sized down 8x and up 4x.
	for _, entries := range []int{1024, 32768} {
		c := config.SpecSchedCrit(4)
		c.CritEntries = entries
		c.Name = fmt.Sprintf("SpecSched_4_Crit_%dK", entries/1024)
		out = append(out, c)
	}

	// Yoaz-style bank-predicted shifting: shift only predicted conflicts.
	out = append(out, config.SpecSchedBankPred(4))

	// Shifting under selective replay (replay-scheme agnosticism).
	shiftSel := config.SpecSchedShift(4)
	shiftSel.Replay = config.SelectiveReplay
	shiftSel.Name = "SpecSched_4_Shift_Selective"
	out = append(out, shiftSel)
	return out
}

// Ablations runs the design-choice ablations against their SpecSched_4
// reference points and reports gmean performance and replay counts.
func (r *Runner) Ablations(ctx context.Context) (string, error) {
	refSet, err := r.Collect(ctx, baselineName, "SpecSched_4", "SpecSched_4_Filter", "SpecSched_4_Crit")
	if err != nil {
		return "", err
	}
	variants := ablationVariants()
	varSet, err := r.collectConfigs(ctx, variants)
	if err != nil {
		return "", err
	}

	// Merge reference runs into the variant set so normalization works.
	for _, cfg := range []string{baselineName, "SpecSched_4", "SpecSched_4_Filter", "SpecSched_4_Crit"} {
		for _, wl := range r.opts.Workloads {
			if run := refSet.Get(cfg, wl); run != nil {
				varSet.Add(run)
			}
		}
	}

	tb := stats.NewTable("Ablations (gmean vs Baseline_0; replay sums across suite)",
		"config", "gmean perf", "rpld miss", "rpld bank", "issued")
	rows := append([]string{"SpecSched_4", "SpecSched_4_Filter", "SpecSched_4_Crit"},
		namesOf(variants)...)
	for _, cn := range rows {
		tb.AddRowf(3, cn,
			varSet.GMeanSpeedup(cn, baselineName),
			varSet.SumField(cn, func(run *stats.Run) int64 { return run.ReplayedMiss }),
			varSet.SumField(cn, func(run *stats.Run) int64 { return run.ReplayedBank }),
			varSet.SumField(cn, func(run *stats.Run) int64 { return run.Issued }))
	}

	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nnotes:\n")
	b.WriteString("  NoSilence   — plain 2-bit counters; the silence bit should do at least as well (§5.2)\n")
	b.WriteString("  NoSLB       — same-set pairs now conflict; more bank replays than SpecSched_4 (§4.2)\n")
	b.WriteString("  SetInterleave — expected to perform similarly to quadword interleaving (§4.2)\n")
	b.WriteString("  IQRetention — µ-ops hold IQ entries until correct execution (§3.1)\n")
	b.WriteString("  Crit_1K/32K — criticality table size sensitivity\n")
	b.WriteString("  BankPred    — Yoaz-style bank predictor: shift only predicted conflicts (§2.2)\n")
	b.WriteString("  Shift_Selective — Schedule Shifting under Pentium-4-style selective replay\n")
	return b.String(), nil
}

func namesOf(cfgs []config.CoreConfig) []string {
	out := make([]string, len(cfgs))
	for i := range cfgs {
		out[i] = cfgs[i].Name
	}
	return out
}
