package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"specsched/internal/sim"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/traceio"
)

// ctx is the background context shared by these tests; cancellation
// behaviour is covered separately.
var ctx = context.Background()

// tinyOpts keeps experiment tests fast: three contrasting workloads (one
// with load-use chains over L1 hits, one bank-conflict-prone, one
// miss-heavy) and short windows.
func tinyOpts() Options {
	return Options{
		Warmup:    3000,
		Measure:   15000,
		Workloads: []string{"gzip", "hmmer", "xalancbmk"},
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1()
	for _, want := range []string{"192-entry ROB", "60-entry", "TAGE", "DDR3-1600", "75/185"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range tinyOpts().Workloads {
		if !strings.Contains(out, wl) {
			t.Errorf("Table 2 missing workload %s", wl)
		}
	}
	if !strings.Contains(out, "paper IPC") {
		t.Error("Table 2 missing paper reference column")
	}
}

func TestFig3Shape(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Fig3(ctx); err != nil {
		t.Fatal(err)
	}
	set, err := r.Collect(ctx, "Baseline_0", "Baseline_2", "Baseline_4", "Baseline_6")
	if err != nil {
		t.Fatal(err)
	}
	g2 := set.GMeanSpeedup("Baseline_2", "Baseline_0")
	g4 := set.GMeanSpeedup("Baseline_4", "Baseline_0")
	g6 := set.GMeanSpeedup("Baseline_6", "Baseline_0")
	if !(g2 > g4 && g4 > g6) {
		t.Fatalf("Fig 3 not monotone: %.3f %.3f %.3f", g2, g4, g6)
	}
	if g6 >= 1 {
		t.Fatalf("Baseline_6 gmean %.3f, must be a slowdown", g6)
	}
}

func TestFig5ShiftingRemovesBankReplays(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Fig5(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "74.8%") {
		t.Error("Fig 5 report missing the paper reference number")
	}
	set, err := r.Collect(ctx, "SpecSched_4", "SpecSched_4_Shift")
	if err != nil {
		t.Fatal(err)
	}
	red := set.ReductionVs("SpecSched_4_Shift", "SpecSched_4",
		func(run *stats.Run) int64 { return run.ReplayedBank })
	if red < 0.5 {
		t.Fatalf("Shifting removed only %.1f%% of bank replays (paper: 74.8%%)", 100*red)
	}
}

func TestFig8CritRemovesMostReplays(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Fig8(ctx); err != nil {
		t.Fatal(err)
	}
	set, err := r.Collect(ctx, "SpecSched_4", "SpecSched_4_Crit")
	if err != nil {
		t.Fatal(err)
	}
	red := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.Replayed() })
	if red < 0.6 {
		t.Fatalf("Crit removed only %.1f%% of replays (paper: 90.6%%)", 100*red)
	}
}

func TestRunnerCacheReuse(t *testing.T) {
	r := NewRunner(tinyOpts())
	a, err := r.Collect(ctx, "Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Collect(ctx, "Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	// Cached: identical pointers.
	if a.Get("Baseline_0", "swim") != b.Get("Baseline_0", "swim") {
		t.Fatal("runner re-simulated a cached configuration")
	}
}

func TestRunnerParallelDeterminism(t *testing.T) {
	opts := tinyOpts()
	opts.Parallel = 4
	a, err := NewRunner(opts).Collect(ctx, "SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 1
	b, err := NewRunner(opts).Collect(ctx, "SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range opts.Workloads {
		ra, rb := a.Get("SpecSched_4", wl), b.Get("SpecSched_4", wl)
		if *ra != *rb {
			t.Fatalf("%s: parallel and serial runs differ", wl)
		}
	}
}

// summarySet runs the full Summary() sweep (every config the headline
// numbers need) and returns the resulting pooled runs.
func summarySet(t *testing.T, opts Options) (*Runner, *stats.Set) {
	t.Helper()
	r := NewRunner(opts)
	if _, err := r.Summary(ctx); err != nil {
		t.Fatal(err)
	}
	return r, r.Snapshot()
}

func assertSetsIdentical(t *testing.T, a, b *stats.Set, what string) {
	t.Helper()
	ac, bc := a.Configs(), b.Configs()
	if len(ac) != len(bc) {
		t.Fatalf("%s: config count %d vs %d", what, len(ac), len(bc))
	}
	for _, cn := range ac {
		for _, wl := range a.Workloads() {
			ra, rb := a.Get(cn, wl), b.Get(cn, wl)
			if (ra == nil) != (rb == nil) {
				t.Fatalf("%s: %s/%s present in one set only", what, cn, wl)
			}
			if ra != nil && *ra != *rb {
				t.Fatalf("%s: %s/%s differs:\n a=%+v\n b=%+v", what, cn, wl, *ra, *rb)
			}
		}
	}
}

// TestSummarySweepBitIdenticalAcrossJobs pins the pool's determinism
// contract on the full Summary() sweep: one worker and eight workers must
// produce bit-identical statistics, cell scheduling order notwithstanding.
func TestSummarySweepBitIdenticalAcrossJobs(t *testing.T) {
	opts := tinyOpts()
	opts.Parallel = 1
	_, serial := summarySet(t, opts)
	opts.Parallel = 8
	_, pooled := summarySet(t, opts)
	assertSetsIdentical(t, serial, pooled, "jobs=1 vs jobs=8")
}

// TestSeedReplicasPoolDeterministically: multi-seed sweeps must pool
// replicas in seed order regardless of worker count, and must actually
// change the statistics relative to a single-seed sweep.
func TestSeedReplicasPoolDeterministically(t *testing.T) {
	opts := tinyOpts()
	opts.Seeds = 3
	opts.Parallel = 1
	a, err := NewRunner(opts).Collect(ctx, "Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	b, err := NewRunner(opts).Collect(ctx, "Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	assertSetsIdentical(t, a, b, "seeds=3 jobs=1 vs jobs=8")

	single := tinyOpts()
	c, err := NewRunner(single).Collect(ctx, "Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	r3, r1 := a.Get("Baseline_0", "gzip"), c.Get("Baseline_0", "gzip")
	if r3.Cycles <= r1.Cycles {
		t.Fatalf("3-seed pooled cycles %d not larger than 1-seed %d", r3.Cycles, r1.Cycles)
	}
}

// TestRunnerCheckpointResume: a second runner pointed at the same
// checkpoint re-simulates nothing and reproduces identical statistics; a
// wider sweep only simulates the new cells.
func TestRunnerCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	opts := tinyOpts()
	opts.Checkpoint = ckpt

	r1 := NewRunner(opts)
	a, err := r1.Collect(ctx, "Baseline_0", "SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	if r1.SimulatedUOps() == 0 {
		t.Fatal("first sweep simulated nothing")
	}

	r2 := NewRunner(opts)
	b, err := r2.Collect(ctx, "Baseline_0", "SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	if n := r2.SimulatedUOps(); n != 0 {
		t.Fatalf("resumed sweep re-simulated %d µ-ops, want 0", n)
	}
	assertSetsIdentical(t, a, b, "fresh vs resumed")

	// Extending the grid only pays for the new config.
	r3 := NewRunner(opts)
	if _, err := r3.Collect(ctx, "Baseline_0", "SpecSched_4", "SpecSched_4_Crit"); err != nil {
		t.Fatal(err)
	}
	perCfg := (opts.Warmup + opts.Measure) * int64(len(opts.Workloads))
	if n := r3.SimulatedUOps(); n != perCfg {
		t.Fatalf("extended sweep simulated %d µ-ops, want %d (one config)", n, perCfg)
	}
}

// TestCollectReportsFailedCellsAfterSweep: a bad workload fails its own
// cells and is named in the error; the error arrives after the sweep (the
// healthy cells of the same grid still ran and were cached).
func TestCollectReportsFailedCellsAfterSweep(t *testing.T) {
	opts := tinyOpts()
	opts.Workloads = []string{"gzip", "nonexistent"}
	r := NewRunner(opts)
	_, err := r.Collect(ctx, "Baseline_0")
	if err == nil {
		t.Fatal("sweep with a broken cell must error")
	}
	if !strings.Contains(err.Error(), "nonexistent") || !strings.Contains(err.Error(), "cells failed") {
		t.Fatalf("error does not name the failed cells: %v", err)
	}
	if got := r.Snapshot().Get("Baseline_0", "gzip"); got == nil {
		t.Fatal("healthy cell was not completed despite the failing sibling")
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Run(ctx, "fig42"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunDispatch(t *testing.T) {
	r := NewRunner(tinyOpts())
	for _, name := range []string{"table1", "summary"} {
		out, err := r.Run(ctx, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out == "" {
			t.Fatalf("%s: empty report", name)
		}
	}
}

func TestUnknownWorkloadPropagates(t *testing.T) {
	opts := tinyOpts()
	opts.Workloads = []string{"nonexistent"}
	r := NewRunner(opts)
	if _, err := r.Table2(ctx); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestAblationsRun(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Ablations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NoSilence", "NoSLB", "SetInterleave", "IQRetention", "Crit_1K"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestReplaySchemesAgnosticism(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.ReplaySchemes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SS4_alpha", "SS4_selective", "Crit_selective", "agnostic"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay-schemes report missing %q", want)
		}
	}
}

// TestCollectCanceledFlushesCheckpoint: canceling a sweep mid-flight must
// surface context.Canceled, keep the completed cells in the checkpoint, and
// let a resumed runner pick up from there without re-simulating them.
func TestCollectCanceledFlushesCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	opts := tinyOpts()
	opts.Checkpoint = ckpt
	opts.Parallel = 1
	// Long cells so the cancel lands mid-sweep.
	opts.Measure = 150000

	cctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	opts.OnProgress = func(sim.Progress) { once.Do(cancel) } // cancel after the 1st cell
	r := NewRunner(opts)
	_, err := r.Collect(cctx, "Baseline_0")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned %v, want context.Canceled", err)
	}

	cp, err := sim.LoadCheckpoint(ckpt, sim.Fingerprint(opts.Warmup, opts.Measure, opts.Scheduler))
	if err != nil {
		t.Fatalf("checkpoint unusable after cancel: %v", err)
	}
	if cp.Len() == 0 {
		t.Fatal("no completed cells in the checkpoint after cancel")
	}
	done := cp.Len()

	// Resume: the completed cells are served from the checkpoint.
	r2 := NewRunner(opts)
	if _, err := r2.Collect(context.Background(), "Baseline_0"); err != nil {
		t.Fatal(err)
	}
	perCell := opts.Warmup + opts.Measure
	want := perCell * int64(len(opts.Workloads)-done)
	if got := r2.SimulatedUOps(); got != want {
		t.Fatalf("resume simulated %d µ-ops, want %d (%d cells were checkpointed)", got, want, done)
	}
}

// TestRunnerTraces pins the trace workload axis: with only Traces set, the
// grid runs over the traces alone (each named by file stem), and the
// replayed Table 2 report equals the live one for the recorded workloads.
func TestRunnerTraces(t *testing.T) {
	const warm, measure = 1000, 5000
	dir := t.TempDir()
	var refs []sim.TraceRef
	for _, wl := range []string{"gzip", "hmmer"} {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, wl+".trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := traceio.Record(f, trace.New(p), warm+measure+8192, "test:"+wl, p.Seed); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		ref, err := sim.LoadTrace(path)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}

	rt := NewRunner(Options{Warmup: warm, Measure: measure, Traces: refs})
	if got := rt.Opts().Workloads; len(got) != 2 || got[0] != "gzip" || got[1] != "hmmer" {
		t.Fatalf("trace-only options resolved workloads %v, want [gzip hmmer]", got)
	}
	replayed, err := rt.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewRunner(Options{Warmup: warm, Measure: measure,
		Workloads: []string{"gzip", "hmmer"}}).Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != live {
		t.Errorf("trace-driven Table 2 differs from live:\n-- replayed --\n%s\n-- live --\n%s", replayed, live)
	}
}
