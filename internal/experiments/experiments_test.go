package experiments

import (
	"strings"
	"testing"

	"specsched/internal/stats"
)

// tinyOpts keeps experiment tests fast: three contrasting workloads (one
// with load-use chains over L1 hits, one bank-conflict-prone, one
// miss-heavy) and short windows.
func tinyOpts() Options {
	return Options{
		Warmup:    3000,
		Measure:   15000,
		Workloads: []string{"gzip", "hmmer", "xalancbmk"},
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1()
	for _, want := range []string{"192-entry ROB", "60-entry", "TAGE", "DDR3-1600", "75/185"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range tinyOpts().Workloads {
		if !strings.Contains(out, wl) {
			t.Errorf("Table 2 missing workload %s", wl)
		}
	}
	if !strings.Contains(out, "paper IPC") {
		t.Error("Table 2 missing paper reference column")
	}
}

func TestFig3Shape(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Fig3(); err != nil {
		t.Fatal(err)
	}
	set, err := r.Collect("Baseline_0", "Baseline_2", "Baseline_4", "Baseline_6")
	if err != nil {
		t.Fatal(err)
	}
	g2 := set.GMeanSpeedup("Baseline_2", "Baseline_0")
	g4 := set.GMeanSpeedup("Baseline_4", "Baseline_0")
	g6 := set.GMeanSpeedup("Baseline_6", "Baseline_0")
	if !(g2 > g4 && g4 > g6) {
		t.Fatalf("Fig 3 not monotone: %.3f %.3f %.3f", g2, g4, g6)
	}
	if g6 >= 1 {
		t.Fatalf("Baseline_6 gmean %.3f, must be a slowdown", g6)
	}
}

func TestFig5ShiftingRemovesBankReplays(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "74.8%") {
		t.Error("Fig 5 report missing the paper reference number")
	}
	set, err := r.Collect("SpecSched_4", "SpecSched_4_Shift")
	if err != nil {
		t.Fatal(err)
	}
	red := set.ReductionVs("SpecSched_4_Shift", "SpecSched_4",
		func(run *stats.Run) int64 { return run.ReplayedBank })
	if red < 0.5 {
		t.Fatalf("Shifting removed only %.1f%% of bank replays (paper: 74.8%%)", 100*red)
	}
}

func TestFig8CritRemovesMostReplays(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Fig8(); err != nil {
		t.Fatal(err)
	}
	set, err := r.Collect("SpecSched_4", "SpecSched_4_Crit")
	if err != nil {
		t.Fatal(err)
	}
	red := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.Replayed() })
	if red < 0.6 {
		t.Fatalf("Crit removed only %.1f%% of replays (paper: 90.6%%)", 100*red)
	}
}

func TestRunnerCacheReuse(t *testing.T) {
	r := NewRunner(tinyOpts())
	a, err := r.Collect("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Collect("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	// Cached: identical pointers.
	if a.Get("Baseline_0", "swim") != b.Get("Baseline_0", "swim") {
		t.Fatal("runner re-simulated a cached configuration")
	}
}

func TestRunnerParallelDeterminism(t *testing.T) {
	opts := tinyOpts()
	opts.Parallel = 4
	a, err := NewRunner(opts).Collect("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 1
	b, err := NewRunner(opts).Collect("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range opts.Workloads {
		ra, rb := a.Get("SpecSched_4", wl), b.Get("SpecSched_4", wl)
		if *ra != *rb {
			t.Fatalf("%s: parallel and serial runs differ", wl)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := NewRunner(tinyOpts())
	if _, err := r.Run("fig42"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunDispatch(t *testing.T) {
	r := NewRunner(tinyOpts())
	for _, name := range []string{"table1", "summary"} {
		out, err := r.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out == "" {
			t.Fatalf("%s: empty report", name)
		}
	}
}

func TestUnknownWorkloadPropagates(t *testing.T) {
	opts := tinyOpts()
	opts.Workloads = []string{"nonexistent"}
	r := NewRunner(opts)
	if _, err := r.Table2(); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestAblationsRun(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NoSilence", "NoSLB", "SetInterleave", "IQRetention", "Crit_1K"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestReplaySchemesAgnosticism(t *testing.T) {
	r := NewRunner(tinyOpts())
	out, err := r.ReplaySchemes()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SS4_alpha", "SS4_selective", "Crit_selective", "agnostic"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay-schemes report missing %q", want)
		}
	}
}
