// Package experiments regenerates every table and figure of the paper's
// evaluation (§3-§5): Table 2's per-benchmark IPCs, Fig. 3's conservative
// scheduling slowdown, Fig. 4's speculative scheduling with dual-ported vs
// banked L1 plus the replayed-µ-op breakdown, Fig. 5's Schedule Shifting,
// Fig. 7's hit/miss filtering, Fig. 8's Combined/Crit results, and the
// §5.3 delay sweep. The same runners back cmd/experiments and the
// repository's benchmarks.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"specsched/internal/config"
	"specsched/internal/faultinject"
	"specsched/internal/sim"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/worker"
)

// Options controls simulation length and scope. The paper simulates 50M
// warmup + 100M measured instructions per run; the defaults here are scaled
// down ~1000x so the full matrix completes on a laptop (see DESIGN.md §2).
type Options struct {
	Warmup  int64
	Measure int64
	// Workloads restricts the benchmark list (nil = the full Table 2
	// suite, or the trace names when Traces is set).
	Workloads []string
	// Traces adds recorded µ-op traces (internal/traceio) as workloads:
	// any workload name matching a trace name replays the file instead of
	// generating synthetically. Trace names not already in Workloads are
	// appended to the axis; their header digests join the checkpoint
	// fingerprint so a swapped trace file invalidates stale cells.
	Traces []sim.TraceRef
	// Parallel bounds sweep worker goroutines (0 = GOMAXPROCS) — the
	// CLI's -jobs.
	Parallel int
	// Workers, when positive, executes cells in that many supervised
	// worker subprocesses (internal/worker) instead of in-process — the
	// CLI's -workers. The host binary must install the worker hook
	// (specsched.MaybeWorker) at the top of main. Results are
	// bit-identical to in-process execution; a crashed worker costs one
	// respawn and a transient cell retry. When Parallel is unset, pool
	// concurrency follows the worker count.
	Workers int
	// Seeds is the number of seed replicas per (config, workload) cell
	// (0/1 = the single calibrated profile seed). Replica counters are
	// pooled into one Run per cell; see sim.DeriveSeed for the seed
	// derivation.
	Seeds int
	// Scheduler overrides the simulator-side wakeup/select implementation
	// for every run (config.SchedEvent is the presets' default; the scan
	// implementation is kept for differential testing and perf-trajectory
	// comparisons). Results are bit-identical either way.
	Scheduler config.SchedulerImpl
	// DisableTimeSkip turns quiescent-cycle skipping (config.TimeSkip) off
	// for every run — the CLI's -timeskip=false. Like Scheduler, it only
	// changes simulator speed; results are bit-identical either way.
	DisableTimeSkip bool
	// CellTimeout bounds one cell's wall clock (0 = unbounded); a timed
	// out cell fails alone, the sweep continues.
	CellTimeout time.Duration
	// StallTimeout arms the pool's stall watchdog (see sim.Pool): a cell
	// whose simulated-cycle heartbeat freezes for this long fails early
	// with sim.ErrCellStalled instead of waiting out CellTimeout.
	StallTimeout time.Duration
	// MaxAttempts, RetryBackoff, MaxRetryBackoff, and AbandonBudget are
	// the pool's retry policy for transient cell failures (see sim.Pool;
	// zero values select the pool defaults, MaxAttempts 0/1 = no retry).
	MaxAttempts     int
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	AbandonBudget   int
	// Chaos, when set, injects the plan's deterministic faults into cells
	// and checkpoint flushes — the CLI's -chaos flags.
	Chaos *faultinject.Plan
	// Checkpoint names a resumable sweep-checkpoint JSON file ("" =
	// disabled): completed cells are recorded there and an interrupted
	// sweep restarted with the same options skips them.
	Checkpoint string
	// OnProgress, when set, receives a callback after every finished cell.
	OnProgress func(sim.Progress)
}

// Defaults fills unset fields. With traces configured, an empty workload
// list means "the traces only"; trace names missing from an explicit list
// are appended so every configured trace is part of the grid.
func (o Options) withDefaults() Options {
	if o.Warmup <= 0 {
		o.Warmup = 10000
	}
	if o.Measure <= 0 {
		o.Measure = 60000
	}
	if len(o.Workloads) == 0 && len(o.Traces) == 0 {
		o.Workloads = trace.ProfileNames()
	}
	have := make(map[string]bool, len(o.Workloads))
	for _, wl := range o.Workloads {
		have[wl] = true
	}
	for _, tr := range o.Traces {
		if !have[tr.Name] {
			o.Workloads = append(o.Workloads, tr.Name)
		}
	}
	if o.Parallel <= 0 {
		if o.Workers > 0 {
			o.Parallel = o.Workers
		} else {
			o.Parallel = runtime.GOMAXPROCS(0)
		}
	}
	if o.MaxAttempts == 0 && o.Workers > 0 {
		// A crashed worker subprocess loses its in-flight cell as a
		// transient failure; reassignment needs spare attempts to ride on.
		o.MaxAttempts = 3
	}
	if o.Seeds <= 0 {
		o.Seeds = 1
	}
	return o
}

// Runner executes (configuration × workload × seed) simulations on the
// internal/sim work-stealing pool, caching pooled per-(config, workload)
// results so figures sharing configurations (every figure needs
// Baseline_0) run each simulation exactly once.
type Runner struct {
	opts Options
	// traces indexes opts.Traces by workload name for cell dispatch.
	traces sim.TraceSet

	mu    sync.Mutex
	cache map[string]*stats.Run
	ckpt  *sim.Checkpoint
	// simulated counts µ-ops simulated by this runner (warmup + measure,
	// per executed cell; checkpoint-cached cells excluded) — the
	// numerator of Minsts/sec throughput reports.
	simulated int64
	// abandoned accumulates goroutines the runner's pools abandoned to
	// timeouts and stalls, across every grid it has run.
	abandoned int
	// workerRestarts and workerReassigned accumulate subprocess-worker
	// supervision outcomes (zero unless opts.Workers > 0).
	workerRestarts   int
	workerReassigned int
}

// Abandoned returns how many goroutines this runner's sweeps have
// abandoned to timeouts and stalls so far.
func (r *Runner) Abandoned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.abandoned
}

// WorkerStats returns how many worker subprocesses this runner's sweeps
// have respawned after crashes, and how many cell attempts those crashes
// cost (each reassigned through the transient-retry machinery). Both are
// zero unless Options.Workers is in effect.
func (r *Runner) WorkerStats() (restarts, reassigned int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.workerRestarts, r.workerReassigned
}

// CheckpointSalvage reports what LoadCheckpoint had to salvage from a
// damaged resume checkpoint ("" when the load was clean or no checkpoint
// is configured).
func (r *Runner) CheckpointSalvage() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ckpt == nil || r.ckpt.Salvage() == nil {
		return ""
	}
	return r.ckpt.Salvage().String()
}

// SimulatedUOps returns the total µ-ops simulated so far (including
// warmup), across all jobs this runner executed.
func (r *Runner) SimulatedUOps() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simulated
}

// NewRunner constructs a Runner.
func NewRunner(opts Options) *Runner {
	r := &Runner{opts: opts.withDefaults(), cache: make(map[string]*stats.Run)}
	if len(r.opts.Traces) > 0 {
		r.traces = make(sim.TraceSet, len(r.opts.Traces))
		for _, tr := range r.opts.Traces {
			r.traces[tr.Name] = tr
		}
	}
	return r
}

// Opts returns the effective options.
func (r *Runner) Opts() Options { return r.opts }

func key(cfg, wl string) string { return cfg + "\x00" + wl }

// checkpoint lazily opens the runner's resume checkpoint, if configured.
// The fingerprint covers warmup, measure, and scheduler implementation, so
// a checkpoint written under different sweep options is rejected instead
// of silently merged.
func (r *Runner) checkpoint() (*sim.Checkpoint, error) {
	if r.opts.Checkpoint == "" {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ckpt != nil {
		return r.ckpt, nil
	}
	cp, err := sim.LoadCheckpoint(r.opts.Checkpoint,
		sim.FingerprintTraces(r.opts.Warmup, r.opts.Measure, r.opts.Scheduler, r.traces))
	if err != nil {
		return nil, err
	}
	cp.SetChaos(r.opts.Chaos)
	r.ckpt = cp
	return cp, nil
}

// runGrid shards the (cfgs × workloads × seeds) grid across the sim pool
// and folds seed replicas into one pooled Run per (config, workload) pair.
// The merge walks results in grid-submission order, so the returned map's
// contents are bit-identical for any worker count. Cell failures (error,
// panic, timeout) never abort the sweep; they are aggregated into the
// returned error after every other cell has completed, so the checkpoint
// retains the surviving cells.
func (r *Runner) runGrid(ctx context.Context, cfgs []config.CoreConfig) (map[string]*stats.Run, error) {
	cells := make([]sim.Cell, 0, len(cfgs)*len(r.opts.Workloads)*r.opts.Seeds)
	for _, cfg := range cfgs {
		cfg.Scheduler = r.opts.Scheduler
		if r.opts.DisableTimeSkip {
			cfg.TimeSkip = false
		}
		for _, wl := range r.opts.Workloads {
			for s := 0; s < r.opts.Seeds; s++ {
				cells = append(cells, sim.Cell{Config: cfg, Workload: wl, SeedIdx: s})
			}
		}
	}
	cp, err := r.checkpoint()
	if err != nil {
		return nil, err
	}
	pool := &sim.Pool{
		Jobs:            r.opts.Parallel,
		CellTimeout:     r.opts.CellTimeout,
		StallTimeout:    r.opts.StallTimeout,
		MaxAttempts:     r.opts.MaxAttempts,
		RetryBackoff:    r.opts.RetryBackoff,
		MaxRetryBackoff: r.opts.MaxRetryBackoff,
		AbandonBudget:   r.opts.AbandonBudget,
		Chaos:           r.opts.Chaos,
		Checkpoint:      cp,
		OnProgress:      r.opts.OnProgress,
	}
	local := sim.LocalRunner{Warmup: r.opts.Warmup, Measure: r.opts.Measure, Traces: r.traces}
	runner := sim.CellRunner(local)
	var wp *worker.Pool
	if r.opts.Workers > 0 {
		var err error
		wp, err = worker.NewPool(worker.Options{
			Workers:  r.opts.Workers,
			Warmup:   r.opts.Warmup,
			Measure:  r.opts.Measure,
			Traces:   r.traces,
			Fallback: local,
		})
		if err != nil {
			return nil, err
		}
		runner = wp
	}
	results := pool.RunWith(ctx, cells, runner)
	defer func() {
		r.mu.Lock()
		r.abandoned += pool.Abandoned()
		if wp != nil {
			wp.Close()
			st := wp.Stats()
			r.workerRestarts += int(st.Restarts)
			r.workerReassigned += int(st.Reassigned)
		}
		r.mu.Unlock()
	}()

	out := make(map[string]*stats.Run)
	var failures []string
	var executed int64
	for _, res := range results {
		if res.Err != nil {
			failures = append(failures, res.Err.Error())
			continue
		}
		if !res.Cached {
			executed += r.opts.Warmup + r.opts.Measure
		}
		k := key(res.Cell.Config.Name, res.Cell.Workload)
		if pooled, ok := out[k]; ok {
			pooled.Accumulate(res.Run)
		} else {
			clone := *res.Run // checkpoint-owned runs must not be mutated
			out[k] = &clone
		}
	}
	r.mu.Lock()
	r.simulated += executed
	r.mu.Unlock()
	if cp != nil {
		// Flush even (especially) on cancellation: the completed cells are
		// what makes an interrupted sweep resumable.
		if err := cp.Flush(); err != nil {
			return out, err
		}
	}
	if ctx.Err() != nil {
		return out, fmt.Errorf("experiments: sweep interrupted after %d/%d cells: %w",
			len(cells)-len(failures), len(cells), context.Cause(ctx))
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("experiments: %d/%d cells failed:\n  %s",
			len(failures), len(cells), strings.Join(failures, "\n  "))
	}
	return out, nil
}

// Collect ensures every (config, workload) pair has run and returns the
// populated set. Missing pairs execute on the work-stealing pool.
func (r *Runner) Collect(ctx context.Context, cfgNames ...string) (*stats.Set, error) {
	var missing []config.CoreConfig
	r.mu.Lock()
	for _, cn := range cfgNames {
		cfg, err := config.Preset(cn)
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		need := false
		for _, wl := range r.opts.Workloads {
			// A nil entry is a reservation left by a failed cell — retry
			// it rather than silently serving an incomplete set.
			if run, ok := r.cache[key(cn, wl)]; !ok || run == nil {
				r.cache[key(cn, wl)] = nil // reserve
				need = true
			}
		}
		if need {
			missing = append(missing, cfg)
		}
	}
	r.mu.Unlock()

	if len(missing) > 0 {
		runs, err := r.runGrid(ctx, missing)
		r.mu.Lock()
		for k, run := range runs {
			r.cache[k] = run
		}
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	set := stats.NewSet()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cn := range cfgNames {
		for _, wl := range r.opts.Workloads {
			if run := r.cache[key(cn, wl)]; run != nil {
				set.Add(run)
			}
		}
	}
	return set, nil
}

// Snapshot returns every run this runner has cached so far as a Set in
// deterministic (sorted-key) order — the payload of cmd/experiments -json.
func (r *Runner) Snapshot() *stats.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := stats.NewSet()
	for _, k := range stats.SortedKeys(r.cache) {
		if run := r.cache[k]; run != nil {
			set.Add(run)
		}
	}
	return set
}

// baselineName is the normalization baseline used throughout §5: the
// zero-delay machine with a dual-ported L1D.
const baselineName = "Baseline_0"

// perfTable renders per-workload IPC normalized to Baseline_0 for the given
// configs, with a gmean row — the format of Figs. 3, 4a, 5a, 7a, 8a.
func perfTable(title string, set *stats.Set, cfgs []string) string {
	header := append([]string{"workload"}, cfgs...)
	tb := stats.NewTable(title, header...)
	for _, wl := range set.Workloads() {
		base := set.Get(baselineName, wl)
		if base == nil {
			continue
		}
		cells := []interface{}{wl}
		for _, cn := range cfgs {
			if run := set.Get(cn, wl); run != nil {
				cells = append(cells, stats.Speedup(run, base))
			} else {
				cells = append(cells, "-")
			}
		}
		tb.AddRowf(3, cells...)
	}
	gm := []interface{}{"gmean"}
	for _, cn := range cfgs {
		gm = append(gm, set.GMeanSpeedup(cn, baselineName))
	}
	tb.AddRowf(3, gm...)
	return tb.String()
}

// replayTable renders the issued-µ-op breakdown normalized to Baseline_0's
// issued count — the format of Figs. 4b, 5b, 7b, 8b: Unique, RpldMiss,
// RpldBank per configuration.
func replayTable(title string, set *stats.Set, cfgs []string) string {
	header := []string{"workload"}
	for _, cn := range cfgs {
		short := strings.TrimPrefix(cn, "SpecSched_")
		header = append(header, short+":uniq", short+":rpldM", short+":rpldB")
	}
	tb := stats.NewTable(title, header...)
	addRow := func(label string, get func(cfg string) (uniq, rm, rb, base float64)) {
		cells := []interface{}{label}
		for _, cn := range cfgs {
			uniq, rm, rb, base := get(cn)
			if base == 0 {
				cells = append(cells, "-", "-", "-")
				continue
			}
			cells = append(cells, uniq/base, rm/base, rb/base)
		}
		tb.AddRowf(3, cells...)
	}
	for _, wl := range set.Workloads() {
		base := set.Get(baselineName, wl)
		if base == nil {
			continue
		}
		wl := wl
		addRow(wl, func(cfg string) (float64, float64, float64, float64) {
			run := set.Get(cfg, wl)
			if run == nil {
				return 0, 0, 0, 0
			}
			return float64(run.Unique), float64(run.ReplayedMiss),
				float64(run.ReplayedBank), float64(base.Issued)
		})
	}
	addRow("total", func(cfg string) (float64, float64, float64, float64) {
		var u, m, bk, bi int64
		for _, wl := range set.Workloads() {
			run, base := set.Get(cfg, wl), set.Get(baselineName, wl)
			if run == nil || base == nil {
				continue
			}
			u += run.Unique
			m += run.ReplayedMiss
			bk += run.ReplayedBank
			bi += base.Issued
		}
		return float64(u), float64(m), float64(bk), float64(bi)
	})
	return tb.String()
}

// Table1 renders the simulator configuration overview (no simulation).
func Table1() string {
	cfg := config.Default()
	tb := stats.NewTable("Table 1: simulator configuration", "component", "value")
	rows := [][2]string{
		{"frontend", fmt.Sprintf("%d-wide fetch/decode/rename, %d-cycle frontend (Baseline_0)", cfg.FetchWidth, cfg.FrontendDepth)},
		{"branch pred", fmt.Sprintf("TAGE 1+%d components, 2-way %dK-entry BTB, %d-entry RAS, %d-cycle min. penalty", cfg.TAGEComponents, cfg.BTBEntries/1024, cfg.RASEntries, cfg.MinBranchPenalty)},
		{"window", fmt.Sprintf("%d-entry ROB, %d-entry unified IQ, %d/%d-entry LQ/SQ", cfg.ROBEntries, cfg.IQEntries, cfg.LQEntries, cfg.SQEntries)},
		{"registers", fmt.Sprintf("%d INT / %d FP physical registers", cfg.IntPRF, cfg.FPPRF)},
		{"issue", fmt.Sprintf("%d-issue; %dxALU(1c) %dxMulDiv(3c/25c*) %dxFP(3c) %dxFPMulDiv(5c/10c*) %dxLd/St (max %d loads, %d store)", cfg.IssueWidth, cfg.NumALU, cfg.NumMulDiv, cfg.NumFP, cfg.NumFPMulDiv, cfg.NumLdStPorts, cfg.MaxLoadsPerCycle, cfg.MaxStoresPerCycle)},
		{"memdep", "1K-SSID/LFST Store Sets"},
		{"L1D", fmt.Sprintf("%dKB %d-way, %d-cycle load-to-use, %d MSHRs, %d banks (%s-interleaved), SLB", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency, cfg.L1D.MSHRs, cfg.L1Banks, cfg.L1Interleave)},
		{"L2", fmt.Sprintf("%dMB %d-way, %d cycles, %d MSHRs, stride prefetcher degree %d", cfg.L2.SizeBytes>>20, cfg.L2.Ways, cfg.L2.Latency, cfg.L2.MSHRs, cfg.PrefetchDegree)},
		{"DRAM", fmt.Sprintf("DDR3-1600 (%d-%d-%d), %d ranks x %d banks, %dKB rows; min/max read %d/%d cycles", cfg.DRAM.TRCD, cfg.DRAM.TCAS, cfg.DRAM.TRP, cfg.DRAM.Ranks, cfg.DRAM.BanksPerRank, cfg.DRAM.RowBytes>>10, 75, 185)},
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1])
	}
	return tb.String() + "*divides unpipelined\n"
}

// Table2 runs Baseline_0 on the full suite and reports measured IPC next to
// the paper's Table 2 value.
func (r *Runner) Table2(ctx context.Context) (string, error) {
	set, err := r.Collect(ctx, baselineName)
	if err != nil {
		return "", err
	}
	tb := stats.NewTable("Table 2: benchmarks (Baseline_0)",
		"workload", "IPC", "paper IPC", "L1 miss", "MPKI")
	for _, wl := range set.Workloads() {
		run := set.Get(baselineName, wl)
		p, _ := trace.ByName(wl)
		tb.AddRowf(3, wl, run.IPC(), p.PaperIPC, run.L1MissRate(), run.MPKI())
	}
	return tb.String(), nil
}

// Fig3 reproduces the conservative-scheduling slowdown: Baseline_0 with a
// single load port, and Baseline_{2,4,6}, normalized to Baseline_0.
func (r *Runner) Fig3(ctx context.Context) (string, error) {
	cfgs := []string{"Baseline_0_1ld", "Baseline_2", "Baseline_4", "Baseline_6"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	return perfTable("Fig 3: slowdown without speculative scheduling (vs Baseline_0)",
		set, cfgs), nil
}

// Fig4 reproduces speculative scheduling across delays with dual-ported
// vs banked L1 (a) and the replayed-µ-op breakdown for the banked case (b).
func (r *Runner) Fig4(ctx context.Context) (string, error) {
	perfCfgs := []string{
		"SpecSched_2_dual", "SpecSched_2",
		"SpecSched_4_dual", "SpecSched_4",
		"SpecSched_6_dual", "SpecSched_6",
	}
	set, err := r.Collect(ctx, append(perfCfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	a := perfTable("Fig 4a: SpecSched performance, dual-ported vs banked L1 (vs Baseline_0)",
		set, perfCfgs)
	b := replayTable("Fig 4b: issued µ-ops breakdown, banked L1 (normalized to Baseline_0 issued)",
		set, []string{"SpecSched_2", "SpecSched_4", "SpecSched_6"})
	return a + "\n" + b, nil
}

// Fig5 reproduces Schedule Shifting on SpecSched_4 with a banked L1.
func (r *Runner) Fig5(ctx context.Context) (string, error) {
	cfgs := []string{"SpecSched_4", "SpecSched_4_Shift"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	a := perfTable("Fig 5a: Schedule Shifting (vs Baseline_0)", set, cfgs)
	b := replayTable("Fig 5b: replayed µ-ops with Schedule Shifting", set, cfgs)
	red := set.ReductionVs("SpecSched_4_Shift", "SpecSched_4",
		func(run *stats.Run) int64 { return run.ReplayedBank })
	sp := set.GMeanSpeedup("SpecSched_4_Shift", "SpecSched_4")
	s := fmt.Sprintf("\nbank-conflict replays removed by Shifting: %.1f%% (paper: 74.8%%)\n"+
		"speedup over SpecSched_4: %+.1f%% (paper: +2.9%%)\n", 100*red, 100*(sp-1))
	return a + "\n" + b + s, nil
}

// Fig7 reproduces hit/miss filtering: the global counter alone and the
// per-PC filter backed by the counter.
func (r *Runner) Fig7(ctx context.Context) (string, error) {
	cfgs := []string{"SpecSched_4", "SpecSched_4_Ctr", "SpecSched_4_Filter"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	a := perfTable("Fig 7a: hit/miss filtering (vs Baseline_0)", set, cfgs)
	b := replayTable("Fig 7b: replayed µ-ops with hit/miss filtering", set, cfgs)
	missRed := func(cfg string) float64 {
		return set.ReductionVs(cfg, "SpecSched_4",
			func(run *stats.Run) int64 { return run.ReplayedMiss })
	}
	totRed := func(cfg string) float64 {
		return set.ReductionVs(cfg, "SpecSched_4",
			func(run *stats.Run) int64 { return run.Replayed() })
	}
	s := fmt.Sprintf("\nmiss replays removed: Ctr %.1f%% (paper: 59.3%%), Filter %.1f%% (paper: 65.0%%)\n"+
		"total replays removed: Ctr %.1f%% (paper: 44.7%%), Filter %.1f%% (paper: 45.4%%)\n",
		100*missRed("SpecSched_4_Ctr"), 100*missRed("SpecSched_4_Filter"),
		100*totRed("SpecSched_4_Ctr"), 100*totRed("SpecSched_4_Filter"))
	return a + "\n" + b + s, nil
}

// Fig8 reproduces the combined mechanisms and criticality gating.
func (r *Runner) Fig8(ctx context.Context) (string, error) {
	cfgs := []string{"SpecSched_4", "SpecSched_4_Combined", "SpecSched_4_Crit"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	a := perfTable("Fig 8a: Combined and Crit (vs Baseline_0)", set, cfgs)
	b := replayTable("Fig 8b: replayed µ-ops, Combined and Crit", set, cfgs)
	totRed := func(cfg string) float64 {
		return set.ReductionVs(cfg, "SpecSched_4",
			func(run *stats.Run) int64 { return run.Replayed() })
	}
	sp := func(cfg string) float64 { return set.GMeanSpeedup(cfg, "SpecSched_4") }
	issRed := func(cfg string) float64 {
		return set.ReductionVs(cfg, "SpecSched_4",
			func(run *stats.Run) int64 { return run.Issued })
	}
	s := fmt.Sprintf("\nreplays removed: Combined %.1f%% (paper: 68.2%%), Crit %.1f%% (paper: 90.6%%)\n"+
		"speedup over SpecSched_4: Combined %+.1f%% (paper: +3.7%%), Crit %+.1f%% (paper: +3.4%%)\n"+
		"issued µ-ops reduced: Combined %.1f%% (paper: 11.6%%), Crit %.1f%% (paper: 13.4%%)\n",
		100*totRed("SpecSched_4_Combined"), 100*totRed("SpecSched_4_Crit"),
		100*(sp("SpecSched_4_Combined")-1), 100*(sp("SpecSched_4_Crit")-1),
		100*issRed("SpecSched_4_Combined"), 100*issRed("SpecSched_4_Crit"))
	return a + "\n" + b + s, nil
}

// DelaySweep reports the §5.3 text numbers: SpecSched_{2,6}_Crit replay and
// issue reductions relative to SpecSched_{2,6}.
func (r *Runner) DelaySweep(ctx context.Context) (string, error) {
	cfgs := []string{"SpecSched_2", "SpecSched_2_Crit", "SpecSched_6", "SpecSched_6_Crit"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "== §5.3 delay sweep: SpecSched_N_Crit vs SpecSched_N ==")
	for _, d := range []string{"2", "6"} {
		base, crit := "SpecSched_"+d, "SpecSched_"+d+"_Crit"
		replRed := set.ReductionVs(crit, base, func(run *stats.Run) int64 { return run.Replayed() })
		issRed := set.ReductionVs(crit, base, func(run *stats.Run) int64 { return run.Issued })
		sp := set.GMeanSpeedup(crit, base)
		paperIss, paperSp := "11.2%", "+2.3%"
		if d == "6" {
			paperIss, paperSp = "18.7%", "+4.8%"
		}
		fmt.Fprintf(&b, "delay %s: replays -%.1f%% (paper: ~90%%), issued -%.1f%% (paper: %s), speedup %+.1f%% (paper: %s)\n",
			d, 100*replRed, 100*issRed, paperIss, 100*(sp-1), paperSp)
	}
	return b.String(), nil
}

// Summary reports the paper's headline numbers for SpecSched_4_Crit.
func (r *Runner) Summary(ctx context.Context) (string, error) {
	cfgs := []string{"SpecSched_4", "SpecSched_4_Shift", "SpecSched_4_Filter",
		"SpecSched_4_Combined", "SpecSched_4_Crit"}
	set, err := r.Collect(ctx, append(cfgs, baselineName)...)
	if err != nil {
		return "", err
	}
	bankRed := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.ReplayedBank })
	missRed := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.ReplayedMiss })
	totRed := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.Replayed() })
	issRed := set.ReductionVs("SpecSched_4_Crit", "SpecSched_4",
		func(run *stats.Run) int64 { return run.Issued })
	sp := set.GMeanSpeedup("SpecSched_4_Crit", "SpecSched_4")
	var b strings.Builder
	fmt.Fprintln(&b, "== Headline results (SpecSched_4_Crit vs SpecSched_4, 4-cycle issue-to-execute) ==")
	fmt.Fprintf(&b, "bank-conflict replays avoided: %.1f%%  (paper: 78.0%%)\n", 100*bankRed)
	fmt.Fprintf(&b, "L1-miss replays avoided:       %.1f%%  (paper: 96.5%%)\n", 100*missRed)
	fmt.Fprintf(&b, "all replays avoided:           %.1f%%  (paper: 90.6%%)\n", 100*totRed)
	fmt.Fprintf(&b, "issued µ-ops reduced:          %.1f%%  (paper: 13.4%%)\n", 100*issRed)
	fmt.Fprintf(&b, "performance:                   %+.1f%% (paper: +3.4%%)\n", 100*(sp-1))
	return b.String(), nil
}

// Names lists the experiment identifiers understood by Run.
func Names() []string {
	return []string{"table1", "table2", "fig3", "fig4", "fig5", "fig7", "fig8",
		"delays", "summary", "ablations", "replayschemes"}
}

// Run executes one named experiment and returns its report.
func (r *Runner) Run(ctx context.Context, name string) (string, error) {
	switch name {
	case "table1":
		return Table1(), nil
	case "table2":
		return r.Table2(ctx)
	case "fig3":
		return r.Fig3(ctx)
	case "fig4":
		return r.Fig4(ctx)
	case "fig5":
		return r.Fig5(ctx)
	case "fig7":
		return r.Fig7(ctx)
	case "fig8":
		return r.Fig8(ctx)
	case "delays":
		return r.DelaySweep(ctx)
	case "summary":
		return r.Summary(ctx)
	case "ablations":
		return r.Ablations(ctx)
	case "replayschemes":
		return r.ReplaySchemes(ctx)
	default:
		known := Names()
		sort.Strings(known)
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, known)
	}
}
