// Package uop defines the dynamic micro-operation (µ-op) model consumed by
// the trace-driven out-of-order core simulator.
//
// A µ-op carries everything the timing model needs — operation class,
// architectural source and destination registers, the effective address of
// memory operations, and branch outcome/target — but no data values:
// the simulator models time, not semantics.
package uop

import "fmt"

// Class enumerates µ-op execution classes. Each class maps to a functional
// unit family and a fixed execution latency (loads and stores have variable
// memory latency on top of the fixed AGU/access component).
type Class uint8

// µ-op classes, mirroring the functional units of the simulated core
// (Table 1 of the paper): 4×ALU(1c), 1×MulDiv(3c/25c unpipelined divide),
// 2×FP(3c), 2×FPMulDiv(5c/10c unpipelined divide), 2×Ld/Str AGU of which at
// most one store per cycle.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassFP
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	numClasses
)

// NumClasses is the number of distinct µ-op classes.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"nop", "alu", "mul", "div", "fp", "fpmul", "fpdiv", "load", "store", "branch",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Latency returns the fixed execution latency, in cycles, of the class.
// For loads this is the cache-access component only; the load-to-use latency
// is owned by the memory hierarchy. Divide latencies model unpipelined units.
func (c Class) Latency() int {
	switch c {
	case ClassALU, ClassBranch, ClassNop, ClassStore:
		return 1
	case ClassMul, ClassFP:
		return 3
	case ClassFPMul:
		return 5
	case ClassFPDiv:
		return 10
	case ClassDiv:
		return 25
	case ClassLoad:
		return 1 // AGU; memory latency is added by the hierarchy.
	default:
		return 1
	}
}

// Pipelined reports whether the functional unit executing this class accepts
// a new µ-op every cycle. Integer and FP divides are not pipelined.
func (c Class) Pipelined() bool {
	return c != ClassDiv && c != ClassFPDiv
}

// IsMem reports whether the µ-op accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Architectural register file geometry. Registers [0, NumIntRegs) are
// integer, [NumIntRegs, NumArchRegs) are floating point. RegNone marks an
// absent operand.
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumArchRegs = NumIntRegs + NumFPRegs
	RegNone     = -1
)

// IsFPReg reports whether architectural register r belongs to the FP file.
func IsFPReg(r int) bool { return r >= NumIntRegs && r < NumArchRegs }

// UOp is one dynamic micro-operation of the simulated instruction stream.
type UOp struct {
	// Seq is the dynamic sequence number, unique and monotonically
	// increasing along the correct path. Wrong-path µ-ops have Seq == -1.
	Seq int64
	// PC is the (synthetic) program counter of the parent instruction.
	PC uint64
	// Class selects the functional unit and fixed latency.
	Class Class
	// Src1, Src2 are architectural source registers, or RegNone.
	Src1, Src2 int
	// Dest is the architectural destination register, or RegNone.
	Dest int
	// Addr is the effective byte address for loads and stores.
	Addr uint64
	// Size is the access size in bytes for loads and stores.
	Size uint8
	// Taken is the resolved direction for branches.
	Taken bool
	// Target is the resolved target for taken branches; for not-taken
	// branches it is the fall-through PC.
	Target uint64
	// WrongPath marks synthetic µ-ops injected after a branch
	// misprediction; they never commit.
	WrongPath bool
}

// HasDest reports whether the µ-op produces a register result.
func (u *UOp) HasDest() bool { return u.Dest != RegNone }

// validReg reports whether r is an architectural register index or RegNone.
func validReg(r int) bool { return r == RegNone || (r >= 0 && r < NumArchRegs) }

// Validate reports structurally impossible µ-ops: an unknown class or an
// out-of-range register operand. Generators are trusted to emit valid
// µ-ops; the trace codec (internal/traceio) and fuzz harnesses use this to
// reject records that cannot have come from a well-formed stream.
func (u *UOp) Validate() error {
	switch {
	case u.Class >= numClasses:
		return fmt.Errorf("uop %d: unknown class %d", u.Seq, uint8(u.Class))
	case !validReg(u.Src1):
		return fmt.Errorf("uop %d: source 1 register %d out of range", u.Seq, u.Src1)
	case !validReg(u.Src2):
		return fmt.Errorf("uop %d: source 2 register %d out of range", u.Seq, u.Src2)
	case !validReg(u.Dest):
		return fmt.Errorf("uop %d: destination register %d out of range", u.Seq, u.Dest)
	}
	return nil
}

// String renders a compact human-readable form, useful in tests and debug
// dumps.
func (u *UOp) String() string {
	switch {
	case u.Class.IsMem():
		return fmt.Sprintf("%d:%s pc=%#x addr=%#x d=%d s=[%d,%d]",
			u.Seq, u.Class, u.PC, u.Addr, u.Dest, u.Src1, u.Src2)
	case u.Class == ClassBranch:
		return fmt.Sprintf("%d:%s pc=%#x taken=%t tgt=%#x",
			u.Seq, u.Class, u.PC, u.Taken, u.Target)
	default:
		return fmt.Sprintf("%d:%s pc=%#x d=%d s=[%d,%d]",
			u.Seq, u.Class, u.PC, u.Dest, u.Src1, u.Src2)
	}
}

// Stream produces a dynamic µ-op stream. Implementations must be
// deterministic for a given construction seed.
type Stream interface {
	// Next returns the next correct-path µ-op. The returned value is owned
	// by the caller. ok is false when the stream is exhausted (streams used
	// by the experiments are infinite and never return ok == false).
	Next() (u UOp, ok bool)
}

// StreamInto is an optional Stream fast path: NextInto writes the next
// µ-op into dst, sparing the two value copies Next costs per fetched µ-op
// on the simulator's hottest path. Semantics are otherwise identical to
// Next; consumers must fall back to Next when the stream does not
// implement it.
type StreamInto interface {
	NextInto(dst *UOp) bool
}
