package uop

import (
	"strings"
	"testing"
)

func TestClassLatencies(t *testing.T) {
	cases := []struct {
		c    Class
		want int
	}{
		{ClassALU, 1}, {ClassBranch, 1}, {ClassNop, 1}, {ClassStore, 1},
		{ClassMul, 3}, {ClassFP, 3}, {ClassFPMul, 5}, {ClassFPDiv, 10},
		{ClassDiv, 25}, {ClassLoad, 1},
	}
	for _, tc := range cases {
		if got := tc.c.Latency(); got != tc.want {
			t.Errorf("%v.Latency() = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestPipelined(t *testing.T) {
	for c := ClassNop; c < Class(NumClasses); c++ {
		want := c != ClassDiv && c != ClassFPDiv
		if got := c.Pipelined(); got != want {
			t.Errorf("%v.Pipelined() = %t, want %t", c, got, want)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !ClassLoad.IsMem() || !ClassStore.IsMem() {
		t.Error("load/store must be memory classes")
	}
	if ClassALU.IsMem() || ClassBranch.IsMem() {
		t.Error("ALU/branch must not be memory classes")
	}
}

func TestRegisterGeometry(t *testing.T) {
	if NumArchRegs != NumIntRegs+NumFPRegs {
		t.Fatal("arch reg count mismatch")
	}
	if IsFPReg(0) || IsFPReg(NumIntRegs-1) {
		t.Error("integer regs misclassified as FP")
	}
	if !IsFPReg(NumIntRegs) || !IsFPReg(NumArchRegs-1) {
		t.Error("FP regs misclassified")
	}
	if IsFPReg(NumArchRegs) || IsFPReg(RegNone) {
		t.Error("out-of-range regs must not be FP")
	}
}

func TestHasDest(t *testing.T) {
	u := UOp{Dest: 3}
	if !u.HasDest() {
		t.Error("HasDest with dest=3")
	}
	u.Dest = RegNone
	if u.HasDest() {
		t.Error("HasDest with RegNone")
	}
}

func TestStringForms(t *testing.T) {
	ld := UOp{Seq: 1, Class: ClassLoad, PC: 0x40, Addr: 0x1000, Dest: 2, Src1: 1, Src2: RegNone}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string = %q", s)
	}
	br := UOp{Seq: 2, Class: ClassBranch, PC: 0x44, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "branch") || !strings.Contains(s, "true") {
		t.Errorf("branch string = %q", s)
	}
	alu := UOp{Seq: 3, Class: ClassALU, PC: 0x48, Dest: 5, Src1: 1, Src2: 2}
	if s := alu.String(); !strings.Contains(s, "alu") {
		t.Errorf("alu string = %q", s)
	}
	var bogus Class = 99
	if s := bogus.String(); !strings.Contains(s, "99") {
		t.Errorf("unknown class string = %q", s)
	}
}
