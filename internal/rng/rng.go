// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the workload generators. It is a SplitMix64 seeder
// feeding an xoshiro256** state, reproducing the reference algorithms by
// Blackman and Vigna. Determinism across runs and platforms is a hard
// requirement for reproducible experiments, which is why the simulator does
// not depend on math/rand's global state.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, so that any seed
// (including 0) yields a well-mixed state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the number of trials until first success with p = 1/m,
// drawn by inversion — one uniform draw and one logarithm regardless of m,
// where the rejection formulation consumes a mean of m draws. Hot loops
// with a fixed mean should hold a GeometricSampler instead, which shares
// this implementation with the denominator precomputed.
func (r *RNG) Geometric(m float64) int {
	return NewGeometricSampler(m).Sample(r)
}

// Fork derives an independent generator from this one, for splitting a
// workload seed into per-component streams without correlation.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}

// GeometricSampler draws geometric samples for a fixed mean with the
// denominator of the inversion precomputed — one uniform draw and one
// logarithm per sample. Hot generator loops (dependence distances) use it
// instead of Geometric.
type GeometricSampler struct {
	invLogQ float64 // 1 / log(1 - 1/m); 0 marks the degenerate m <= 1 case
}

// NewGeometricSampler prepares a sampler with mean m.
func NewGeometricSampler(m float64) GeometricSampler {
	if m <= 1 {
		return GeometricSampler{}
	}
	return GeometricSampler{invLogQ: 1 / math.Log(1-1/m)}
}

// Sample draws one geometric variate using r's stream.
func (s GeometricSampler) Sample(r *RNG) int {
	if s.invLogQ == 0 {
		return 1
	}
	u := r.Float64()
	if u == 0 {
		return 1 << 20
	}
	n := 1 + int(math.Log(u)*s.invLogQ)
	if n < 1 {
		n = 1
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}
