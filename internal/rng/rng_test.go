package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var orAll uint64
	for i := 0; i < 64; i++ {
		orAll |= r.Uint64()
	}
	if orAll == 0 {
		t.Fatal("zero seed produced all-zero output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 8
	const n = 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(4)
	}
	mean := float64(sum) / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("geometric(4) sample mean = %v, want ~4", mean)
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(0.5); g != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", g)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit fraction = %v", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(31)
	b := a.Fork()
	// The fork advances a; the two must now produce distinct sequences.
	equal := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("fork produced %d collisions in 64 draws", equal)
	}
}
