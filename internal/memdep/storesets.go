// Package memdep implements the Store Sets memory dependence predictor of
// Chrysos & Emer, configured as in Table 1 of the paper: a 1K-entry Store
// Set ID Table (SSIT) and a 1K-entry Last Fetched Store Table (LFST).
//
// The predictor learns, from memory-order violations, which loads must wait
// for which stores. At rename, each memory µ-op consults the SSIT with its
// PC; if it belongs to a store set, the LFST yields the sequence number of
// the most recently renamed store of that set, which the µ-op must order
// after. Memory µ-ops with no predicted dependence issue out of order.
package memdep

const invalidSeq = int64(-1)

// StoreSets is the predictor. It is not safe for concurrent use.
type StoreSets struct {
	ssit []int32 // PC-indexed; -1 = no store set
	lfst []int64 // SSID-indexed; sequence number of last fetched store, or -1

	nextSSID int32
	// accesses counts SSIT assignments for cyclic clearing.
	accesses   int64
	clearEvery int64
	Violations int64 // number of violations trained on (exported for stats)
}

// New constructs a Store Sets predictor with ssitEntries and lfstEntries
// (both must be positive powers of two).
func New(ssitEntries, lfstEntries int) *StoreSets {
	if ssitEntries <= 0 || ssitEntries&(ssitEntries-1) != 0 ||
		lfstEntries <= 0 || lfstEntries&(lfstEntries-1) != 0 {
		panic("memdep: table sizes must be positive powers of two")
	}
	s := &StoreSets{
		ssit:       make([]int32, ssitEntries),
		lfst:       make([]int64, lfstEntries),
		clearEvery: 1 << 20,
	}
	s.reset()
	return s
}

func (s *StoreSets) reset() {
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	for i := range s.lfst {
		s.lfst[i] = invalidSeq
	}
	s.nextSSID = 0
}

func (s *StoreSets) index(pc uint64) int {
	// Fibonacci hash: disperses the structured PC strides of real code so
	// destructive SSIT aliasing stays at the birthday-bound level.
	h := (pc >> 2) * 0x9e3779b97f4a7c15
	return int(h>>40) & (len(s.ssit) - 1)
}

func (s *StoreSets) ssidOf(pc uint64) int32 { return s.ssit[s.index(pc)] }

// RenameStore is called when a store µ-op is renamed. It returns the
// sequence number of the store this one must order after (or ok=false), and
// records the store as the last fetched store of its set.
func (s *StoreSets) RenameStore(pc uint64, seq int64) (dependsOn int64, ok bool) {
	ssid := s.ssidOf(pc)
	if ssid < 0 {
		return 0, false
	}
	slot := int(ssid) & (len(s.lfst) - 1)
	prev := s.lfst[slot]
	s.lfst[slot] = seq
	if prev == invalidSeq {
		return 0, false
	}
	return prev, true
}

// RenameLoad is called when a load µ-op is renamed. It returns the sequence
// number of the store the load must order after (or ok=false).
func (s *StoreSets) RenameLoad(pc uint64) (dependsOn int64, ok bool) {
	ssid := s.ssidOf(pc)
	if ssid < 0 {
		return 0, false
	}
	slot := int(ssid) & (len(s.lfst) - 1)
	if prev := s.lfst[slot]; prev != invalidSeq {
		return prev, true
	}
	return 0, false
}

// StoreExecuted removes the store from the LFST once its address is known
// and it has executed, releasing waiting µ-ops.
func (s *StoreSets) StoreExecuted(pc uint64, seq int64) {
	ssid := s.ssidOf(pc)
	if ssid < 0 {
		return
	}
	slot := int(ssid) & (len(s.lfst) - 1)
	if s.lfst[slot] == seq {
		s.lfst[slot] = invalidSeq
	}
}

// SquashAfter clears LFST entries that point at squashed (younger than seq)
// stores, so stale dependences do not dam the pipeline after a misprediction
// recovery.
func (s *StoreSets) SquashAfter(seq int64) {
	for i, v := range s.lfst {
		if v != invalidSeq && v > seq {
			s.lfst[i] = invalidSeq
		}
	}
}

// Violation trains the predictor after a memory-order violation between a
// load and an older store, using the classic store-set assignment rules:
//   - neither has a set: allocate a new one for both;
//   - one has a set: the other joins it;
//   - both have sets: the load's set wins and the store joins it (a simple,
//     deterministic merge rule).
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	s.Violations++
	li, si := s.index(loadPC), s.index(storePC)
	lset, sset := s.ssit[li], s.ssit[si]
	switch {
	case lset < 0 && sset < 0:
		id := s.allocSSID()
		s.ssit[li], s.ssit[si] = id, id
	case lset < 0:
		s.ssit[li] = sset
	case sset < 0:
		s.ssit[si] = lset
	default:
		if lset != sset {
			s.ssit[si] = lset
		}
	}
	s.accesses++
	if s.accesses >= s.clearEvery {
		s.accesses = 0
		s.reset()
	}
}

func (s *StoreSets) allocSSID() int32 {
	id := s.nextSSID
	s.nextSSID = (s.nextSSID + 1) & int32(len(s.lfst)-1)
	return id
}
