package memdep

import "testing"

const (
	loadPC  = uint64(0x1000)
	storePC = uint64(0x2000)
)

func TestNoPredictionBeforeTraining(t *testing.T) {
	s := New(1024, 1024)
	if _, ok := s.RenameLoad(loadPC); ok {
		t.Fatal("untrained predictor predicted a dependence for a load")
	}
	if _, ok := s.RenameStore(storePC, 1); ok {
		t.Fatal("untrained predictor predicted a dependence for a store")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := New(1024, 1024)
	s.Violation(loadPC, storePC)

	// The store renames first, then the load must be ordered after it.
	if _, ok := s.RenameStore(storePC, 42); ok {
		t.Fatal("first store of a set should have no predecessor")
	}
	dep, ok := s.RenameLoad(loadPC)
	if !ok || dep != 42 {
		t.Fatalf("RenameLoad = (%d, %t), want (42, true)", dep, ok)
	}
}

func TestStoreExecutedReleases(t *testing.T) {
	s := New(1024, 1024)
	s.Violation(loadPC, storePC)
	s.RenameStore(storePC, 42)
	s.StoreExecuted(storePC, 42)
	if _, ok := s.RenameLoad(loadPC); ok {
		t.Fatal("dependence survived store execution")
	}
}

func TestStoreExecutedIgnoresStaleSeq(t *testing.T) {
	s := New(1024, 1024)
	s.Violation(loadPC, storePC)
	s.RenameStore(storePC, 42)
	s.RenameStore(storePC, 43) // newer instance of the same static store
	s.StoreExecuted(storePC, 42)
	dep, ok := s.RenameLoad(loadPC)
	if !ok || dep != 43 {
		t.Fatalf("RenameLoad = (%d, %t), want (43, true)", dep, ok)
	}
}

func TestStoreStoreOrderingWithinSet(t *testing.T) {
	s := New(1024, 1024)
	otherStore := uint64(0x3000)
	s.Violation(loadPC, storePC)
	s.Violation(loadPC, otherStore) // both stores now share the load's set

	if _, ok := s.RenameStore(storePC, 10); ok {
		t.Fatal("first store should have no predecessor")
	}
	dep, ok := s.RenameStore(otherStore, 11)
	if !ok || dep != 10 {
		t.Fatalf("second store of set: dep = (%d, %t), want (10, true)", dep, ok)
	}
}

func TestMergeRules(t *testing.T) {
	s := New(1024, 1024)
	// Create two distinct sets.
	s.Violation(0x1000, 0x2000) // set A: load 0x1000, store 0x2000
	s.Violation(0x1100, 0x2100) // set B: load 0x1100, store 0x2100
	if s.ssidOf(0x1000) == s.ssidOf(0x1100) {
		t.Fatal("independent violations mapped to the same set")
	}
	// Violation between load of A and store of B: store joins load's set.
	s.Violation(0x1000, 0x2100)
	if s.ssidOf(0x2100) != s.ssidOf(0x1000) {
		t.Fatal("merge did not move store into load's set")
	}
}

func TestSquashAfterClearsYoungStores(t *testing.T) {
	s := New(1024, 1024)
	s.Violation(loadPC, storePC)
	s.RenameStore(storePC, 100)
	s.SquashAfter(50) // store 100 was squashed
	if _, ok := s.RenameLoad(loadPC); ok {
		t.Fatal("squashed store still dams loads")
	}
	// Older stores survive a squash.
	s.RenameStore(storePC, 30)
	s.SquashAfter(50)
	if _, ok := s.RenameLoad(loadPC); !ok {
		t.Fatal("pre-squash store dependence lost")
	}
}

func TestViolationCounter(t *testing.T) {
	s := New(1024, 1024)
	for i := 0; i < 5; i++ {
		s.Violation(uint64(0x1000+i*8), uint64(0x2000+i*8))
	}
	if s.Violations != 5 {
		t.Fatalf("Violations = %d, want 5", s.Violations)
	}
}

func TestCyclicClearing(t *testing.T) {
	s := New(64, 64)
	s.clearEvery = 4
	for i := 0; i < 4; i++ {
		s.Violation(uint64(0x1000+i*4), uint64(0x2000+i*4))
	}
	// After clearEvery assignments the tables reset.
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Fatal("tables not cleared after clearEvery violations")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 64) },
		func() { New(64, 0) },
		func() { New(100, 64) },
		func() { New(64, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestManySetsLowCrosstalk(t *testing.T) {
	s := New(1024, 1024)
	// 100 disjoint load/store pairs. A 1K-entry SSIT necessarily aliases
	// some of the 200 distinct PCs (birthday bound), so we require 90 %
	// of the pairs to stay isolated rather than all of them.
	for i := 0; i < 100; i++ {
		s.Violation(uint64(0x10000+i*4), uint64(0x20000+i*4))
	}
	for i := 0; i < 100; i++ {
		s.RenameStore(uint64(0x20000+i*4), int64(1000+i))
	}
	good := 0
	for i := 0; i < 100; i++ {
		if dep, ok := s.RenameLoad(uint64(0x10000 + i*4)); ok && dep == int64(1000+i) {
			good++
		}
	}
	if good < 90 {
		t.Fatalf("only %d/100 pairs isolated; excessive SSIT crosstalk", good)
	}
}
