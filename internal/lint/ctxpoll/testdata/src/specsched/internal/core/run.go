// Fixture: unbounded loops in context-taking simulation functions.
package core

import "context"

type machine struct {
	committed, target int64
	queue             []int
}

func (m *machine) step() { m.committed++ }

// runContext mirrors core.stepTo: cond-only loop, ctx.Err poll — clean.
func (m *machine) runContext(ctx context.Context) error {
	poll := 4096
	for m.committed < m.target {
		if poll--; poll <= 0 {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			poll = 4096
		}
		m.step()
	}
	return nil
}

// spin never polls: the seeded violation.
func (m *machine) spin(ctx context.Context) {
	for m.committed < m.target { // want `unbounded loop in a context-taking simulation function never polls cancellation`
		m.step()
	}
}

// wait polls through a select arm — clean.
func wait(ctx context.Context, ch <-chan int) int {
	for {
		select {
		case v := <-ch:
			if v > 0 {
				return v
			}
		case <-ctx.Done():
			return -1
		}
	}
}

// drainBare receives from Done outside a select — clean.
func drainBare(ctx context.Context) {
	for {
		<-ctx.Done()
		return
	}
}

// bounded three-clause loops and range loops are structurally bounded.
func bounded(ctx context.Context, xs []int) int {
	sum := 0
	for i := 0; i < len(xs); i++ {
		sum += xs[i]
	}
	for _, x := range xs {
		sum += x
	}
	return sum
}

// popAll is genuinely bounded by the queue length; the allow states it.
func (m *machine) popAll(ctx context.Context) {
	for len(m.queue) > 0 { //lint:allow ctxpoll(bounded: every iteration shrinks queue)
		m.queue = m.queue[:len(m.queue)-1]
	}
}

// noCtx takes no context: out of scope, whatever its loops do.
func (m *machine) noCtx() {
	for m.committed < m.target {
		m.step()
	}
}

// nestedLiteral: loops inside a func literal belong to the goroutine's
// own review, not to the enclosing signature.
func nestedLiteral(ctx context.Context, done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			}
		}
	}()
	<-ctx.Done()
}
