// Fixture: internal/service is outside the ctxpoll scope (its loops
// block on channels and HTTP, not simulated cycles).
package service

import "context"

func Serve(ctx context.Context, ch <-chan int) {
	for {
		if <-ch == 0 {
			return
		}
	}
}
