// Package ctxpoll enforces the cancellation-responsiveness invariant
// from PRs 4 and 6: simulation code in internal/core and internal/sim
// that accepts a context must keep honoring it — core.RunContext polls
// every 4096 simulated cycles and publishes the heartbeat the PR 6
// stall watchdog reads, and every other potentially unbounded loop on
// that path has to do one of the same things. A loop that spins without
// a poll turns a canceled sweep into an abandoned goroutine and a
// frozen heartbeat into a false stall.
//
// Scope: inside the packages listed in Packages, every `for` loop that
// has no loop clause bounding it structurally — `for {}` and
// `for cond {}` — lexically within a function (or method) whose
// signature takes a context.Context. Three-clause `for i := …; …; i++`
// loops and `range` loops are structurally bounded and exempt.
//
// A loop satisfies the rule if its body (at any nesting depth inside
// the loop, but not inside a nested function literal) contains one of:
//
//   - a select with a `case <-ctx.Done():` arm
//   - a receive from ctx.Done() outside a select
//   - a call to ctx.Err()
//
// where ctx is any value of type context.Context. Loops that are
// genuinely bounded by other means carry
// `//lint:allow ctxpoll(reason)` with the bound as the reason.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/lintutil"
)

// Packages bound by the rule (prefix semantics).
var Packages = []string{
	"specsched/internal/core",
	"specsched/internal/sim",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "unbounded loops in context-taking simulation functions must poll cancellation (select on ctx.Done, receive from it, or call ctx.Err)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inScope := false
	for _, p := range Packages {
		if lintutil.PathHasPrefix(pass.Pkg.Path(), p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !takesContext(pass, fd.Type) {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
	return nil, nil
}

func takesContext(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A nested literal is its own schedulable unit (usually a
			// goroutine); it is in scope only if it takes a ctx itself,
			// which a literal cannot express positionally — leave its
			// loops to the reviewer.
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Init != nil || loop.Post != nil {
			return true // three-clause loop: structurally bounded
		}
		if !pollsContext(pass, loop.Body) {
			pass.Reportf(loop.Pos(), "unbounded loop in a context-taking simulation function never polls cancellation; add a ctx.Err()/ctx.Done() poll (see core.stepTo's 4096-cycle pattern) or state the bound in a //lint:allow")
		}
		return true
	})
}

// pollsContext reports whether the loop body contains a cancellation
// poll, not descending into nested function literals.
func pollsContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			// <-ctx.Done(), in a select case or bare.
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isCtxMethodCall(pass, call, "Done") {
				found = true
				return false
			}
		case *ast.CallExpr:
			if isCtxMethodCall(pass, n, "Err") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isCtxMethodCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && isContextType(tv.Type)
}
