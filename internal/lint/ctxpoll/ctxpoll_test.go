package ctxpoll_test

import (
	"testing"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/ctxpoll"
	"specsched/internal/lint/linttest"
)

func TestCtxpoll(t *testing.T) {
	linttest.Run(t, "testdata",
		[]*analysis.Analyzer{ctxpoll.Analyzer},
		"specsched/internal/core",
		"specsched/internal/service",
	)
}
