// Package lint assembles the specschedlint analyzer suite: the
// mechanical enforcement of the repo's determinism, hot-path,
// API-boundary, error-taxonomy, and cancellation invariants. The
// catalog of rules, the annotation syntax, and the recipe for adding an
// analyzer live in DESIGN.md §13.
package lint

import (
	"specsched/internal/lint/analysis"
	"specsched/internal/lint/boundary"
	"specsched/internal/lint/ctxpoll"
	"specsched/internal/lint/errtaxonomy"
	"specsched/internal/lint/hotpathalloc"
	"specsched/internal/lint/nodeterm"
)

// Analyzers is the full suite, in the order diagnostics are grouped.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		boundary.Analyzer,
		ctxpoll.Analyzer,
		errtaxonomy.Analyzer,
		hotpathalloc.Analyzer,
		nodeterm.Analyzer,
	}
}
