// Package unitchecker makes the specschedlint suite drivable by
// `go vet -vettool=…`: a std-library-only implementation of the vet
// tool protocol that golang.org/x/tools/go/analysis/unitchecker
// implements for x/tools analyzers (this module vendors nothing, so it
// speaks the protocol itself — the contract is small and documented on
// unitchecker.Config).
//
// The protocol, as cmd/go drives it:
//
//	tool -V=full     print "<exe> version devel … buildID=<hex>" so the
//	                 build cache can fingerprint the tool
//	tool -flags      print a JSON list of supported analyzer flags
//	tool foo.cfg     analyze one compilation unit described by the JSON
//	                 config file: parse cfg.GoFiles, type-check against
//	                 the export data the build provided in
//	                 cfg.PackageFile, run the analyzers, print
//	                 "file:line:col: message" diagnostics to stderr,
//	                 write the (empty — this suite uses no facts) fact
//	                 file to cfg.VetxOutput, and exit 2 iff diagnostics
//	                 were reported
//
// Units that the build only needs for facts (VetxOnly) are satisfied
// with an empty fact file and no analysis at all, which keeps
// `go vet -vettool=specschedlint ./...` close to free on dependency
// packages.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"specsched/internal/lint/analysis"
)

// Config is the JSON compilation-unit description cmd/go hands the
// tool. Field set and semantics follow x/tools' unitchecker.Config;
// fields this driver does not consume are kept so the decoder accepts
// every config cmd/go writes.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool entry point for the analyzer suite and
// returns the process exit code. Standalone invocation (package
// patterns instead of a .cfg file) is handled by the caller
// (cmd/specschedlint re-executes itself through `go vet`).
func Main(args []string, analyzers []*analysis.Analyzer) int {
	if err := analysis.Validate(analyzers); err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			return printVersion(args[0])
		case args[0] == "-flags":
			// No tool-specific flags: an empty list tells cmd/go there
			// is nothing to forward.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], analyzers)
		}
	}
	fmt.Fprintln(os.Stderr, "specschedlint (vet mode): want -V=full, -flags, or a single *.cfg file")
	return 1
}

// printVersion implements the -V=full handshake: cmd/go requires the
// line "<f0> version <f2> … buildID=<hex>" and uses the buildID (a hash
// of the executable) to invalidate cached vet results when the tool
// changes.
func printVersion(arg string) int {
	if arg != "-V=full" {
		fmt.Fprintf(os.Stderr, "specschedlint: unsupported flag %s (use -V=full)\n", arg)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "specschedlint: decoding %s: %v\n", cfgFile, err)
		return 1
	}

	// The build always expects the fact file, even from a suite that
	// records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "specschedlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it with a better message
			}
			fmt.Fprintln(os.Stderr, "specschedlint:", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}

	diags, err := analysis.RunAnalyzers(analyzers, func(a *analysis.Analyzer) *analysis.Pass {
		return &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheck builds the unit's types.Package against the compiler
// export data the build system listed in cfg.PackageFile, resolving
// import paths through cfg.ImportMap exactly as x/tools' unitchecker
// does.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
