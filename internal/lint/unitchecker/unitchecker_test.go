package unitchecker_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles cmd/specschedlint once per test binary.
func buildLint(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "specschedlint")
	cmd := exec.Command("go", "build", "-o", exe, "specsched/cmd/specschedlint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building specschedlint: %v\n%s", err, out)
	}
	return exe
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	// internal/lint/unitchecker/unitchecker_test.go → module root.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(self))))
}

// TestSeededViolationsFailTheBuild is the acceptance proof for the
// whole pipeline: a throwaway module (path "specsched", so the
// analyzers' scopes engage) with one deliberate violation per analyzer
// must make `go vet -vettool=specschedlint ./...` exit nonzero and
// name every violation.
func TestSeededViolationsFailTheBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	exe := buildLint(t)
	dir := t.TempDir()

	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}

	write("go.mod", "module specsched\n\ngo 1.23\n")
	// nodeterm: a wall-clock read in internal/core.
	write("internal/core/clock.go", `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	// ctxpoll: an unbounded pollless loop in a ctx-taking core function.
	write("internal/core/loop.go", `package core

import "context"

func Spin(ctx context.Context, n *int64) {
	for *n > 0 {
		*n--
	}
}
`)
	// hotpathalloc: an annotated hot function that allocates.
	write("internal/core/hot.go", `package core

//specsched:hotpath
func Hot(xs []int, x int) []int { return append(xs, x) }
`)
	// errtaxonomy: a façade error outside the taxonomy.
	write("facade.go", `package specsched

import "fmt"

func Validate(name string) error { return fmt.Errorf("bad name %q", name) }
`)
	// boundary: an example reaching into internal/.
	write("examples/bad/main.go", `package main

import "specsched/internal/core"

func main() { _ = core.Stamp() }
`)

	cmd := exec.Command("go", "vet", "-vettool="+exe, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over seeded violations; output:\n%s", out)
	}
	for _, wantFragment := range []string{
		"time.Now in determinism-critical code",
		"never polls cancellation",
		"append in hot path",
		"fmt.Errorf without %w in exported Validate",
		"imports specsched/internal/core",
		"[nodeterm]", "[ctxpoll]", "[hotpathalloc]", "[errtaxonomy]", "[boundary]",
	} {
		if !strings.Contains(string(out), wantFragment) {
			t.Errorf("go vet output missing %q;\noutput:\n%s", wantFragment, out)
		}
	}
}

// TestVersionHandshake pins the -V=full protocol line cmd/go parses to
// fingerprint the tool for build caching.
func TestVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	exe := buildLint(t)
	out, err := exec.Command(exe, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output %q does not match the \"<exe> version … buildID=<hex>\" contract", out)
	}
}

// TestFlagsHandshake pins the -flags protocol: a JSON flag list (empty
// for this suite).
func TestFlagsHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	exe := buildLint(t)
	out, err := exec.Command(exe, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("-flags printed %q, want []", got)
	}
}
