// Package lintutil holds the scope helpers shared by the specschedlint
// analyzers: test-file exclusion, `//specsched:` directive detection,
// and import-path prefix matching.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IsTestFile reports whether the file was parsed from a _test.go file.
// Every determinism/hot-path rule exempts tests: a test may legitimately
// read the wall clock or allocate; the invariants bind the simulator.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// HasFileDirective reports whether any comment in the file is exactly
// the given directive (e.g. "//specsched:determinism"), which opts the
// whole file into an analyzer's scope.
func HasFileDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if directiveText(c.Text) == directive {
				return true
			}
		}
	}
	return false
}

// FuncHasDirective reports whether the function's doc comment carries
// the given directive line (e.g. "//specsched:hotpath").
func FuncHasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if directiveText(c.Text) == directive {
			return true
		}
	}
	return false
}

func directiveText(text string) string {
	return strings.TrimRight(text, " \t")
}

// PathHasPrefix reports whether pkg path is prefix itself or lies under
// it ("a/b" matches "a/b" and "a/b/c", never "a/bc"). An external test
// package ("a/b_test") and a test-variant ID share the source package's
// files, which IsTestFile already excludes, so plain prefix semantics
// are enough here.
func PathHasPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// CalleeFunc resolves the called package-level function or method of a
// call expression, or nil if the callee is not a static *types.Func
// (builtins, function values, type conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is a package-level function (not a
// method) of the package with the given import path.
func IsPkgFunc(fn *types.Func, pkgPath string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
