// Package analysis is the repo-local core of the specschedlint analyzer
// suite: a deliberately small, API-shape-compatible subset of
// golang.org/x/tools/go/analysis. The module carries no third-party
// dependencies (go.mod has an empty require block, and the build must
// work in network-less containers where the x/tools module cannot be
// fetched), so the suite supplies the three pieces it actually needs —
// the Analyzer/Pass/Diagnostic contract, the `//lint:allow` suppression
// directive, and a `go vet -vettool` protocol driver (see
// internal/lint/unitchecker) — in ~500 lines of std-library-only code.
// Analyzers written against this package use the same field names and
// run signature as x/tools analyzers, so lifting them onto the real
// framework later is a mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer (the subset without facts and
// result dependencies, which no specschedlint check needs: every rule
// here is decidable from a single type-checked package).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>(reason)` suppression directives.
	// It must be a valid identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to a package. It returns an
	// analyzer-specific result (unused by this driver, kept for API
	// compatibility) or an error.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and the sink for its diagnostics. Field names match
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits a diagnostic. The driver installs it; analyzers
	// normally use Reportf.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported problem at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate rejects an analyzer list that the drivers cannot serve:
// missing names or run functions, or duplicate names (which would make
// `//lint:allow` directives ambiguous).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// RunAnalyzers runs every analyzer over one type-checked package,
// applies `//lint:allow` suppression, appends the diagnostics for
// malformed allow directives, and returns the surviving diagnostics
// sorted by position. This is the single execution path shared by the
// unitchecker driver and the linttest fixture harness, so fixtures test
// exactly what `go vet -vettool=specschedlint` enforces — including the
// suppression semantics.
//
// The returned slice carries the diagnostics of all analyzers merged;
// each message is suffixed with the originating analyzer name by the
// callers that print them (the fixture harness matches the raw message).
func RunAnalyzers(analyzers []*Analyzer, pass func(a *Analyzer) *Pass) ([]Named, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	var (
		all    []Named
		allows allowIndex
	)
	for i, a := range analyzers {
		p := pass(a)
		if i == 0 {
			allows = indexAllows(p.Fset, p.Files)
			for _, d := range allows.malformed {
				all = append(all, Named{Analyzer: allowCheckName, Diagnostic: d})
			}
		}
		var diags []Diagnostic
		p.Report = func(d Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(p); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for _, d := range diags {
			if allows.suppressed(p.Fset, a.Name, d.Pos) {
				continue
			}
			all = append(all, Named{Analyzer: a.Name, Diagnostic: d})
		}
	}
	sortNamed(all)
	return all, nil
}

// Named is a diagnostic tagged with the analyzer that produced it.
type Named struct {
	Analyzer string
	Diagnostic
}

func sortNamed(ds []Named) {
	// Insertion sort by Pos then message: diagnostic counts are tiny and
	// this keeps the package free of even std sort's interface boxing.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b Named) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}
