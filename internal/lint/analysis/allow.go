package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The `//lint:allow` escape hatch. Every suppression must name the
// analyzer it silences and carry a non-empty reason — the reason is the
// reviewable paper trail for why an invariant is waived at that line:
//
//	c.pool = append(c.pool, c.graveyard...) //lint:allow hotpathalloc(pool and graveyard share one pre-sized backing)
//
// A directive suppresses the named analyzer's diagnostics on its own
// line and on the line directly below it (so it can ride at the end of
// the offending line or stand alone above a multi-line statement). A
// directive without a parenthesized reason does not suppress
// anything and is itself reported (by the pseudo-check named
// "lintallow"), so a bare `//lint:allow nodeterm` cannot silently waive
// a rule.
const allowCheckName = "lintallow"

const allowPrefix = "//lint:allow"

// allowRe matches the well-formed directive body: an identifier, then a
// non-empty reason in parentheses. Anything after the closing paren is
// tolerated (trailing prose).
var allowRe = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*)\(([^)]+)\)`)

type allowKey struct {
	file string
	line int
}

type allowIndex struct {
	// byLine maps file:line to the analyzer names allowed there (a line
	// may carry several directives in one comment group).
	byLine    map[allowKey][]string
	malformed []Diagnostic
}

// indexAllows scans every comment in the package's files once and
// builds the suppression index plus the malformed-directive report.
func indexAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{byLine: make(map[allowKey][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(text[len(allowPrefix):])
				m := allowRe.FindStringSubmatch(rest)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos: c.Pos(),
						Message: "malformed //lint:allow directive: want //lint:allow <analyzer>(<reason>) " +
							"with a non-empty reason; this directive suppresses nothing",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				k := allowKey{file: pos.Filename, line: pos.Line}
				idx.byLine[k] = append(idx.byLine[k], m[1])
			}
		}
	}
	return idx
}

// suppressed reports whether an allow for analyzer name covers pos:
// a directive on the same line, or on the line immediately above.
func (idx allowIndex) suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, allowed := range idx.byLine[allowKey{file: p.Filename, line: line}] {
			if allowed == name {
				return true
			}
		}
	}
	return false
}
