package errtaxonomy_test

import (
	"testing"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/errtaxonomy"
	"specsched/internal/lint/linttest"
)

func TestErrtaxonomy(t *testing.T) {
	linttest.Run(t, "testdata",
		[]*analysis.Analyzer{errtaxonomy.Analyzer},
		"specsched",
		"specsched/internal/other",
	)
}
