// Fixture: the root façade package under the error-taxonomy rule.
package specsched

import (
	"errors"
	"fmt"
)

var ErrInvalidConfig = errors.New("specsched: invalid configuration")

// Run is exported: its errors cross the API boundary.
func Run(name string) error {
	if name == "" {
		return errors.New("empty name") // want `Run returns a naked errors\.New error`
	}
	if name == "legacy" {
		return fmt.Errorf("unknown preset %q", name) // want `fmt\.Errorf without %w in exported Run`
	}
	if name == "bad" {
		return fmt.Errorf("preset %q: %w", name, ErrInvalidConfig)
	}
	cb := func() error {
		return errors.New("from closure") // want `Run returns a naked errors\.New error`
	}
	return cb()
}

// Exported methods on exported types are in scope too.
type Sweep struct{}

func (s *Sweep) Validate() error {
	return fmt.Errorf("no cells") // want `fmt\.Errorf without %w in exported Validate`
}

// unexported helpers may build errors freely — the exported callers
// are responsible for classifying them before they escape.
func wrapErrf(sentinel error, format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

func newCause(msg string) error { return errors.New(msg) }

// The sentinel declarations themselves (package-level errors.New) are
// the taxonomy, not a violation.
var errInternal = errors.New("specsched: internal")

// Allowed with a reason: a deliberate stringly error.
func Describe(name string) error {
	return fmt.Errorf("describe %s", name) //lint:allow errtaxonomy(human-readable description, never matched programmatically)
}
