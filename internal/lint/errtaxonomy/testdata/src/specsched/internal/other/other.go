// Fixture: internal packages are not bound by the façade taxonomy.
package other

import (
	"errors"
	"fmt"
)

func Fail(name string) error {
	if name == "" {
		return errors.New("empty name")
	}
	return fmt.Errorf("fail %s", name)
}
