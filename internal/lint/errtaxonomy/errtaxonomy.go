// Package errtaxonomy enforces the PR 4 error-taxonomy contract on the
// public façade: every error that crosses the specsched API boundary
// must match one of the package's typed sentinels (ErrInvalidConfig,
// ErrUnknownWorkload, ErrBadTrace, ErrCanceled, …) under errors.Is.
// An error built with a bare errors.New, or with fmt.Errorf and no %w
// verb, wraps nothing — callers get a string instead of a taxonomy.
//
// Scope: exported functions and methods of the root package (path
// "specsched"), including function literals nested in them. Flagged:
//
//   - `return errors.New(…)` — a naked, unclassifiable error
//   - any fmt.Errorf call whose format string lacks %w — it erases
//     whatever sentinel or cause its arguments carried
//
// The check is syntactic and intraprocedural: the real matrix of
// errors.Is matches is pinned by the façade's error-taxonomy tests;
// this analyzer catches the lazy path at the diff. Construct errors
// with wrapErr/wrapErrf (which attach a sentinel) or fmt.Errorf with
// %w around one.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/lintutil"
)

// FacadePath is the package whose exported surface is bound by the
// taxonomy.
const FacadePath = "specsched"

var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "errors crossing the specsched façade must wrap a typed sentinel (no naked errors.New returns, no fmt.Errorf without %w)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() != FacadePath {
		return nil, nil
	}
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPkgCall(pass, call, "errors", "New") {
					pass.Reportf(res.Pos(), "%s returns a naked errors.New error: it matches no specsched sentinel under errors.Is; wrap one (wrapErr/wrapErrf or fmt.Errorf with %%w)", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkErrorf(pass, fd, n)
		}
		return true
	})
}

func checkErrorf(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if !isPkgCall(pass, call, "fmt", "Errorf") || len(call.Args) == 0 {
		return
	}
	format, ok := stringLit(call.Args[0])
	if !ok {
		// A non-constant format cannot be checked syntactically; the
		// façade does not use one outside wrapErrf, which is exempt by
		// being unexported.
		return
	}
	if !strings.Contains(format, "%w") {
		pass.Reportf(call.Pos(), "fmt.Errorf without %%w in exported %s erases the error taxonomy; wrap a sentinel or the cause", fd.Name.Name)
	}
}

func isPkgCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == name && lintutil.IsPkgFunc(fn, pkgPath)
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
