// Package hotpathalloc guards the zero-allocation steady-state
// invariant (PR 1's event-scheduler speedup depends on it; the runtime
// regression tests are internal/core/alloc_test.go and traceio's
// TestDecoderSteadyStateZeroAllocs). Functions annotated with a
// `//specsched:hotpath` doc-comment directive may not contain
// allocation-causing constructs:
//
//   - calls into fmt (every verb formats onto a fresh heap buffer)
//   - make, new, and func literals (closures capture onto the heap)
//   - slice and map composite literals, and &T{…} (may escape; the
//     analyzer cannot prove otherwise intraprocedurally)
//   - append (growth beyond the backing array cannot be ruled out
//     locally — pre-size and waive with an allow if the capacity
//     invariant is real)
//   - boxing a struct- or array-typed value into an interface
//     (conversions and arguments to interface-typed parameters)
//   - string↔[]byte conversions (always copy)
//
// The analysis is intraprocedural and syntactic by design: it cannot
// replace the runtime AllocsPerRun guards, but it catches the
// regression at the diff — in the PR that introduces the allocation —
// instead of three layers away in a flaky differential test. Cold
// paths inside hot functions (watchdog panics, malformed-input errors)
// are waived with `//lint:allow hotpathalloc(reason)`, which doubles as
// their documentation.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/lintutil"
)

// Directive marks a function whose body must not allocate in the
// steady state.
const Directive = "//specsched:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-causing constructs in //specsched:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintutil.FuncHasDirective(fd, Directive) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in hot path: closures capture onto the heap")
			return false // its body runs behind the closure; one finding is enough
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&composite literal in hot path may escape to the heap; reuse a pooled object")
				checkCompositeElems(pass, cl)
				return false
			}
		case *ast.CompositeLit:
			checkComposite(pass, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins: make/new/append always (potentially) allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					pass.Reportf(call.Pos(), "make in hot path allocates; size buffers at construction")
				case "new":
					pass.Reportf(call.Pos(), "new in hot path allocates; reuse a pooled object")
				case "append":
					pass.Reportf(call.Pos(), "append in hot path may grow the backing array; pre-size at construction and waive with the capacity invariant as the reason")
				}
				return
			}
		}
	}

	// Conversions: T(x) to an interface boxes; string↔[]byte copies.
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, call, tv.Type)
		return
	}

	// fmt calls allocate unconditionally.
	if fn := lintutil.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call allocates on the hot path; move formatting to the cold path", fn.Name())
		return
	}

	checkBoxedArgs(pass, call)
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	argT := pass.TypesInfo.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(argT) && boxedKind(argT) {
		pass.Reportf(call.Pos(), "conversion boxes %s into an interface on the hot path", argT)
		return
	}
	_, toString := target.Underlying().(*types.Basic)
	if toString && target.Underlying().(*types.Basic).Kind() == types.String {
		if isByteSlice(argT) {
			pass.Reportf(call.Pos(), "[]byte→string conversion copies on the hot path")
		}
		return
	}
	if isByteSlice(target) {
		if b, ok := argT.Underlying().(*types.Basic); ok && b.Kind() == types.String {
			pass.Reportf(call.Pos(), "string→[]byte conversion copies on the hot path")
		}
	}
}

// checkBoxedArgs flags struct/array values passed where the callee
// takes an interface (including …interface{} variadics).
func checkBoxedArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			paramT = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramT = params.At(i).Type()
		default:
			continue
		}
		argT := pass.TypesInfo.Types[arg].Type
		if argT == nil {
			continue
		}
		if types.IsInterface(paramT) && !types.IsInterface(argT) && boxedKind(argT) {
			pass.Reportf(arg.Pos(), "argument boxes %s into an interface parameter on the hot path", argT)
		}
	}
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// boxedKind reports whether boxing a value of this concrete type into
// an interface heap-allocates in a way the hot path must not: struct
// and array values (the "hot structs" of the invariant — a µ-op or a
// stats record silently boxed into an any). Pointers and small scalars
// are left to the runtime guard.
func boxedKind(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func checkComposite(pass *analysis.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(cl.Pos(), "slice literal in hot path allocates its backing array")
	case *types.Map:
		pass.Reportf(cl.Pos(), "map literal in hot path allocates")
	}
}

// checkCompositeElems keeps scanning inside an &T{…} literal whose
// outer report already fired (nested slice/map literals still matter).
func checkCompositeElems(pass *analysis.Pass, cl *ast.CompositeLit) {
	for _, e := range cl.Elts {
		ast.Inspect(e, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CompositeLit); ok {
				checkComposite(pass, inner)
			}
			return true
		})
	}
}
