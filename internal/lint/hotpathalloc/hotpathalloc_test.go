package hotpathalloc_test

import (
	"testing"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/hotpathalloc"
	"specsched/internal/lint/linttest"
)

func TestHotpathalloc(t *testing.T) {
	linttest.Run(t, "testdata",
		[]*analysis.Analyzer{hotpathalloc.Analyzer},
		"specsched/internal/hot",
	)
}
