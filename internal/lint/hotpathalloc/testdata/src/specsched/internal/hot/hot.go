// Fixture for hotpathalloc: only //specsched:hotpath functions are
// checked, and every allocation-causing construct is flagged.
package hot

import "fmt"

type UOp struct {
	Seq  uint64
	PC   uint64
	Dest int
}

type core struct {
	pool      []*UOp
	graveyard []*UOp
	scratch   []int
	names     map[string]int
}

// Step is the steady-state loop body.
//
//specsched:hotpath
func (c *core) Step(u UOp) {
	c.pool = append(c.pool, c.graveyard...) // want `append in hot path may grow the backing array`
	buf := make([]int, 8)                   // want `make in hot path allocates`
	_ = buf
	p := new(UOp) // want `new in hot path allocates`
	_ = p
	e := &UOp{Seq: u.Seq} // want `&composite literal in hot path may escape`
	_ = e
	s := []int{1, 2, 3} // want `slice literal in hot path allocates`
	_ = s
	m := map[string]int{} // want `map literal in hot path allocates`
	_ = m
	v := UOp{Seq: u.Seq} // a plain value literal stays on the stack
	_ = v
	fmt.Printf("cycle %d", u.Seq) // want `fmt\.Printf call allocates on the hot path`
	f := func() {}                // want `func literal in hot path: closures capture onto the heap`
	f()
	sink(u)        // want `argument boxes specsched/internal/hot\.UOp into an interface parameter`
	sinks("x", u)  // want `argument boxes specsched/internal/hot\.UOp into an interface parameter`
	_ = any(u)     // want `conversion boxes specsched/internal/hot\.UOp into an interface`
	_ = string(bs) // want `\[\]byte→string conversion copies`
	_ = []byte(st) // want `string→\[\]byte conversion copies`
	sink(&u)       // boxing a pointer is cheap enough for the runtime guard to own
	sinkInt(u.Dest)
}

var (
	bs []byte
	st string
)

func sink(v interface{})                  {}
func sinks(k string, vs ...interface{})   {}
func sinkInt(n int)                       {}
func escape(f func())                     {}
func format(verb string, n uint64) string { return fmt.Sprintf(verb, n) }
func coldHelper(c *core, us []UOp) []*UOp {
	// Not annotated: allocation is legal outside the hot path.
	out := make([]*UOp, 0, len(us))
	for i := range us {
		out = append(out, &us[i])
	}
	return out
}

// stepAllowed shows the waiver: the capacity invariant is stated as
// the reason and the finding is suppressed.
//
//specsched:hotpath
func (c *core) stepAllowed() {
	c.pool = append(c.pool, c.graveyard...) //lint:allow hotpathalloc(pool and graveyard share one backing sized at construction)
}

type readyBM struct {
	words [2][]uint64
	slots []*UOp
	act   [2]int
}

// pickBitmap mirrors the scheduler's bitmap pick loop: pure index and
// bit arithmetic over pre-sized arrays is allocation-free and must pass
// the analyzer untouched.
//
//specsched:hotpath
func (bm *readyBM) pickBitmap(budget int) *UOp {
	for wi := range bm.words[0] {
		cur := bm.words[0][wi] | bm.words[1][wi]
		for cur != 0 {
			slot := wi<<6 + trailingZeros(cur)
			cur &= cur - 1
			if e := bm.slots[slot]; e != nil {
				if budget--; budget < 0 {
					return nil
				}
				return e
			}
		}
	}
	return nil
}

// pickBitmapLeaky is the regression shape the analyzer exists to catch:
// a per-pick scratch slice snuck into the loop.
//
//specsched:hotpath
func (bm *readyBM) pickBitmapLeaky() []*UOp {
	picked := make([]*UOp, 0, 4) // want `make in hot path allocates`
	for wi := range bm.words[0] {
		for cur := bm.words[0][wi]; cur != 0; cur &= cur - 1 {
			picked = append(picked, bm.slots[wi<<6+trailingZeros(cur)]) // want `append in hot path may grow the backing array`
		}
	}
	return picked
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
