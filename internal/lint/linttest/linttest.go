// Package linttest is the fixture harness for the specschedlint
// analyzers: the repo-local equivalent of
// golang.org/x/tools/go/analysis/analysistest, built on the std library
// only. Fixtures live under the analyzer package in the analysistest
// layout —
//
//	testdata/src/<import/path>/*.go
//
// — and state their expected diagnostics with `// want "regexp"`
// comments on the offending line. Run loads the named packages (plus
// any fixture packages they import), type-checks them, executes the
// analyzers through the same analysis.RunAnalyzers path the vet driver
// uses (so `//lint:allow` suppression behaves identically in fixtures
// and in CI), and diffs the diagnostics against the want annotations.
//
// Imports resolve against the analyzer's own testdata/src first, then
// against the shared stub standard library in
// internal/lint/linttest/testdata/stdstub/src (tiny bodiless
// declarations of time, math/rand, fmt, errors, context, …). Real
// GOROOT sources are never type-checked: fixtures stay hermetic, fast,
// and independent of the host toolchain's std library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"specsched/internal/lint/analysis"
)

// Run loads each fixture package from dir (an analyzer package's
// testdata directory) and checks the analyzers' diagnostics against the
// package's `// want` annotations.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			ld := newLoader(dir)
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading fixture package %s: %v", path, err)
			}
			diags, err := analysis.RunAnalyzers(analyzers, func(a *analysis.Analyzer) *analysis.Pass {
				return &analysis.Pass{
					Analyzer:  a,
					Fset:      ld.fset,
					Files:     pkg.files,
					Pkg:       pkg.pkg,
					TypesInfo: pkg.info,
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, ld.fset, pkg.files, diags)
		})
	}
}

// checkWants matches diagnostics against `// want` annotations: every
// diagnostic must match an unconsumed regexp on its own line, and every
// regexp must be consumed.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Named) {
	t.Helper()
	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re   *regexp.Regexp
		used bool
	}
	wants := make(map[wantKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	keys := make([]wantKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "re1" "re2"`
// annotation. The marker may start the comment or follow other text in
// it (a line comment swallows the rest of its line, so an expectation
// about a directive comment rides inside that same comment).
// Returns ok=false for comments that are not want annotations.
func parseWant(text string) ([]string, bool) {
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil, false
	}
	body := text[i+len("// want "):]
	var patterns []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			break
		}
		prefix, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			break
		}
		patterns = append(patterns, unq)
		rest = strings.TrimSpace(rest[len(prefix):])
	}
	return patterns, true
}

// loader type-checks fixture packages, resolving imports against the
// fixture tree first and the shared std stubs second.
type loader struct {
	fset  *token.FileSet
	roots []string // testdata/src roots, in resolution order
	pkgs  map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(testdata string) *loader {
	return &loader{
		fset:  token.NewFileSet(),
		roots: []string{filepath.Join(testdata, "src"), stubRoot()},
		pkgs:  make(map[string]*loadedPkg),
	}
}

// stubRoot locates the shared stub std library relative to this source
// file (linttest is only ever compiled for tests inside this module).
func stubRoot() string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		panic("linttest: cannot locate stub root")
	}
	return filepath.Join(filepath.Dir(self), "testdata", "stdstub", "src")
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard

	var dir string
	for _, root := range l.roots {
		cand := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			dir = cand
			break
		}
	}
	if dir == "" {
		return nil, fmt.Errorf("no fixture or stub package for import %q", path)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
