// Stub of std "context" for hermetic linttest fixtures. ctxpoll
// recognizes cancellation polls by the methods of this interface, keyed
// on the package path "context" — identical for the stub and the real
// std library.
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

type CancelFunc func()

func Background() Context
func TODO() Context
func WithCancel(parent Context) (Context, CancelFunc)
func Cause(c Context) error
