// Stub of std "errors" for hermetic linttest fixtures.
package errors

func New(text string) error
func Is(err, target error) bool
func Unwrap(err error) error
