// Stub of std "fmt" for hermetic linttest fixtures.
package fmt

type Stringer interface {
	String() string
}

func Errorf(format string, a ...interface{}) error
func Sprintf(format string, a ...interface{}) string
func Sprint(a ...interface{}) string
func Printf(format string, a ...interface{}) (n int, err error)
func Println(a ...interface{}) (n int, err error)
func Fprintf(w Writer, format string, a ...interface{}) (n int, err error)

// Writer stands in for io.Writer so the stub tree needs no io package.
type Writer interface {
	Write(p []byte) (n int, err error)
}
