// Stub of std "time" for hermetic linttest fixtures: signatures only,
// no bodies (go/types does not require them).
package time

type Time struct{ wall, ext uint64 }

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func Now() Time
func Since(t Time) Duration
func Until(t Time) Duration
func Sleep(d Duration)
func After(d Duration) <-chan Time
func Tick(d Duration) <-chan Time

func (t Time) UnixNano() int64
func (t Time) Sub(u Time) Duration

type Timer struct{ C <-chan Time }

func NewTimer(d Duration) *Timer
func AfterFunc(d Duration, f func()) *Timer

type Ticker struct{ C <-chan Time }

func NewTicker(d Duration) *Ticker
