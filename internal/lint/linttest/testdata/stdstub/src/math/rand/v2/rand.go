// Stub of std "math/rand/v2" for hermetic linttest fixtures.
package rand

type Source interface {
	Uint64() uint64
}

func NewPCG(seed1, seed2 uint64) *PCG

type PCG struct{ hi, lo uint64 }

func (p *PCG) Uint64() uint64

type Rand struct{ src Source }

func New(src Source) *Rand

func (r *Rand) IntN(n int) int
func (r *Rand) Uint64() uint64

// Global-state functions: exactly what nodeterm forbids.
func Int() int
func IntN(n int) int
func Uint64() uint64
func Float64() float64
