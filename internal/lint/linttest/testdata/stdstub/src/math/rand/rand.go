// Stub of std "math/rand" for hermetic linttest fixtures.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

func NewSource(seed int64) Source

type Rand struct{ src Source }

func New(src Source) *Rand

func (r *Rand) Int() int
func (r *Rand) Intn(n int) int
func (r *Rand) Int63() int64
func (r *Rand) Float64() float64
func (r *Rand) Perm(n int) []int
func (r *Rand) Shuffle(n int, swap func(i, j int))

// Global-state functions: exactly what nodeterm forbids.
func Int() int
func Intn(n int) int
func Int63() int64
func Float64() float64
func Perm(n int) []int
func Shuffle(n int, swap func(i, j int))
func Seed(seed int64)
