// Stub of std "crypto/rand" for hermetic linttest fixtures. nodeterm
// flags the import itself: hardware entropy has no place in a
// determinism-critical package.
package rand

func Read(b []byte) (n int, err error)
