package nodeterm_test

import (
	"testing"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/linttest"
	"specsched/internal/lint/nodeterm"
)

func TestNodeterm(t *testing.T) {
	linttest.Run(t, "testdata",
		[]*analysis.Analyzer{nodeterm.Analyzer},
		"specsched/internal/core",
		"specsched/internal/sim",
		"specsched/internal/stats",
	)
}
