// Fixture: a package outside the determinism scope — nothing here is
// flagged.
package stats

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(int(time.Since(time.Now()))))
}
