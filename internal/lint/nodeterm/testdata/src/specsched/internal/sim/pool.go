// Fixture: no determinism directive — the wall clock is legal here
// (retry backoff and stall watchdogs are wall-clock by nature).
package sim

import "time"

func retryBackoff() time.Time {
	return time.Now()
}
