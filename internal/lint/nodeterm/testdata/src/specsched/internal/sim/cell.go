// Fixture: internal/sim is not in nodeterm.Packages; this file opts in
// with the determinism directive, mirroring the real cell-execution
// files.

//specsched:determinism

package sim

import "time"

func simulateCell() int64 {
	return time.Now().UnixNano() // want `time\.Now in determinism-critical code`
}
