// Fixture: the whole package is in nodeterm scope (listed in
// nodeterm.Packages).
package core

import (
	crand "crypto/rand" // want `crypto/rand imported in determinism-critical code`
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

type Core struct {
	cycle int64
	stats map[string]int64
}

func (c *Core) Step() int64 {
	start := time.Now()          // want `time\.Now in determinism-critical code`
	_ = time.Since(start)        // want `time\.Since in determinism-critical code`
	time.Sleep(time.Millisecond) // want `time\.Sleep in determinism-critical code`
	jitter := rand.Intn(4)       // want `rand\.Intn uses the process-global RNG`
	_ = rand.Float64()           // want `rand\.Float64 uses the process-global RNG`
	_ = randv2.Uint64()          // want `rand\.Uint64 uses the process-global RNG`
	var buf [8]byte
	_, _ = crand.Read(buf[:])
	return c.cycle + int64(jitter)
}

// Explicitly seeded generators are legal: determinism comes from the
// derived seed, not from avoiding randomness.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// Duration arithmetic and time.Time plumbing without a wall-clock read
// stay legal.
func budget(d time.Duration) time.Duration { return 2 * d }

func (c *Core) serialize(out []string) []string {
	for name := range c.stats { // want `map iteration order is nondeterministic`
		out = append(out, name)
		c.cycle++
	}
	return out
}

// The collect-then-sort idiom: a body that only appends the iteration
// variables is order-insensitive once the caller sorts.
func (c *Core) keys() []string {
	names := make([]string, 0, len(c.stats))
	for name := range c.stats {
		names = append(names, name)
	}
	return names
}

// A pure delete loop is order-independent.
func (c *Core) clear() {
	for name := range c.stats {
		delete(c.stats, name)
	}
}

// The escape hatch: a reasoned //lint:allow suppresses the finding.
func (c *Core) wallProfile() time.Time {
	return time.Now() //lint:allow nodeterm(profiling hook, result never reaches simulated state)
}

// A reason-less directive suppresses nothing and is itself flagged.
func (c *Core) badAllow() time.Time {
	//lint:allow nodeterm // want `malformed //lint:allow directive`
	return time.Now() // want `time\.Now in determinism-critical code`
}
