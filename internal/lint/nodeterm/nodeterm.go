// Package nodeterm forbids nondeterminism in the packages whose output
// must be a pure function of (config, workload, seed): the paper's
// replay schemes, the differential event-vs-scan tests, and the PR 7
// DedupKey all assume a cell's result is bit-identical run to run.
//
// Scope: every non-test file of the packages listed in Packages, plus
// any file carrying a `//specsched:determinism` directive (the
// cell-execution files of internal/sim opt in this way — the rest of
// that package legitimately reads the wall clock for retry backoff and
// stall watchdogs).
//
// Rules:
//   - no wall-clock reads: time.Now/Since/Until/Sleep/After/AfterFunc/
//     Tick/NewTicker/NewTimer
//   - no math/rand or math/rand/v2 package-level (global-state)
//     functions; explicitly constructed, explicitly seeded generators
//     (rand.New(rand.NewSource(seed)), internal/rng) are fine
//   - no crypto/rand at all (the import is flagged)
//   - no iteration over a map except the collect-keys-then-sort idiom
//     (a body that only appends the key/value to a slice) or a pure
//     delete loop: any other map-range order can leak into serialized
//     output or accumulated statistics
//
// Waive a finding with `//lint:allow nodeterm(reason)` and a reason
// that will survive review.
package nodeterm

import (
	"go/ast"
	"go/types"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/lintutil"
)

// Packages are the import paths that are determinism-critical in their
// entirety. Prefix semantics: subpackages are included.
var Packages = []string{
	"specsched/internal/core",
	"specsched/internal/uop",
	"specsched/internal/rng",
	"specsched/internal/traceio",
}

// Directive opts an individual file into the determinism scope.
const Directive = "//specsched:determinism"

// wallClock are the "time" package functions that read or schedule off
// the wall clock. Duration arithmetic and time.Time plumbing stay legal.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand and math/rand/v2 package-level
// functions that build an explicitly seeded generator rather than
// touching global state.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock reads, global RNG state, and order-leaking map iteration in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, f) || !inScope(pass.Pkg.Path(), f) {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

func inScope(pkgPath string, f *ast.File) bool {
	for _, p := range Packages {
		if lintutil.PathHasPrefix(pkgPath, p) {
			return true
		}
	}
	return lintutil.HasFileDirective(f, Directive)
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		if impPath(imp) == "crypto/rand" {
			pass.Reportf(imp.Pos(), "crypto/rand imported in determinism-critical code: entropy makes cell results irreproducible; use the seeded internal/rng")
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkRange(pass, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if lintutil.IsPkgFunc(fn, "time") && wallClock[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s in determinism-critical code: the wall clock varies run to run; derive timing from the simulated cycle counter", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if lintutil.IsPkgFunc(fn, fn.Pkg().Path()) && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s uses the process-global RNG: seed an explicit generator (internal/rng, or rand.New with a derived seed) instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRange flags `for … range m` over a map unless the body is the
// sanctioned collect-then-sort idiom (only appends of the iteration
// variables to an outer slice) or a pure delete loop.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is nondeterministic and this loop does more than collect keys for sorting or delete entries; sort the keys first (see sim.FingerprintTraces) or restructure")
}

func orderInsensitiveBody(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// x = append(x, …) collecting into an outer slice.
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !isAppendCall(s.Rhs[0]) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k): removal is order-independent.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

func impPath(imp *ast.ImportSpec) string {
	if len(imp.Path.Value) < 2 {
		return ""
	}
	return imp.Path.Value[1 : len(imp.Path.Value)-1]
}
