// Package boundary enforces the public-façade import rule from PR 4:
// cmd/ and examples/ are the continuous proof that the root specsched
// API is sufficient, so they may not import specsched/internal/…
// packages. It replaces the grep gate that used to live in
// .github/workflows/ci.yml — a real import-graph check cannot be fooled
// by an aliased import, a renamed file, or a build-tagged variant, and
// its one sanctioned exception is configuration instead of a grep -v:
// cmd/specschedd is the thin main around internal/service, the daemon
// engine that is deliberately not public API.
package boundary

import (
	"strconv"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/lintutil"
)

// Config is the boundary rule as data.
type Config struct {
	// ScopePrefixes are the package-path subtrees that must stay on the
	// public surface.
	ScopePrefixes []string
	// RestrictedPrefixes are the subtrees they may not import.
	RestrictedPrefixes []string
	// Exceptions maps an in-scope package path to the restricted
	// packages it is sanctioned to import (exact paths, not prefixes).
	Exceptions map[string][]string
}

// Default is the repo's rule. Tests may construct analyzers with other
// configs via New.
var Default = Config{
	ScopePrefixes:      []string{"specsched/cmd", "specsched/examples"},
	RestrictedPrefixes: []string{"specsched/internal"},
	Exceptions: map[string][]string{
		// The daemon main around the deliberately-internal service engine.
		"specsched/cmd/specschedd": {"specsched/internal/service"},
		// The lint driver around the deliberately-internal analyzer suite.
		"specsched/cmd/specschedlint": {
			"specsched/internal/lint",
			"specsched/internal/lint/unitchecker",
		},
	},
}

// Analyzer applies Default.
var Analyzer = New(Default)

// New builds a boundary analyzer for a config.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "boundary",
		Doc:  "cmd/ and examples/ must use the public specsched API only (no specsched/internal imports)",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) (interface{}, error) {
	pkgPath := pass.Pkg.Path()
	inScope := false
	for _, p := range cfg.ScopePrefixes {
		if lintutil.PathHasPrefix(pkgPath, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	allowed := make(map[string]bool)
	for _, p := range cfg.Exceptions[pkgPath] {
		allowed[p] = true
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range cfg.RestrictedPrefixes {
				if lintutil.PathHasPrefix(path, r) && !allowed[path] {
					pass.Reportf(imp.Pos(), "%s imports %s: cmd/ and examples/ must use the public specsched API only (sanctioned exceptions live in internal/lint/boundary.Default)", pkgPath, path)
				}
			}
		}
	}
	return nil, nil
}
