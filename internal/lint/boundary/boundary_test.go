package boundary_test

import (
	"testing"

	"specsched/internal/lint/analysis"
	"specsched/internal/lint/boundary"
	"specsched/internal/lint/linttest"
)

func TestBoundary(t *testing.T) {
	linttest.Run(t, "testdata",
		[]*analysis.Analyzer{boundary.Analyzer},
		"specsched/cmd/badtool",
		"specsched/cmd/specschedd",
		"specsched/examples/badexample",
		"specsched/examples/cleanexample",
		"specsched", // the façade itself is out of scope
	)
}
