// Fixture stub of the public façade: the root package itself may (and
// must) import internal packages — it is outside the boundary scope.
package specsched

import "specsched/internal/core"

func Version() int { return core.Version() }
