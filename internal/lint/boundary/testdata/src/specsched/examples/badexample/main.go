// Fixture: examples are held to the same rule as commands.
package main

import "specsched/internal/core" // want `specsched/examples/badexample imports specsched/internal/core`

func main() { _ = core.Version() }
