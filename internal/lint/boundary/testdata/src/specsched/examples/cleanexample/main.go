// Fixture: the happy path — public surface only.
package main

import "specsched"

func main() { _ = specsched.Version() }
