// Fixture stub of an internal package.
package core

func Version() int { return 1 }
