// Fixture stub of the daemon engine package.
package service

func Serve() error { return nil }
