// Fixture: the sanctioned exception — cmd/specschedd may import
// internal/service (and only it).
package main

import (
	"specsched/internal/core" // want `specsched/cmd/specschedd imports specsched/internal/core`
	"specsched/internal/service"
)

func main() {
	_ = service.Serve()
	_ = core.Version()
}
