// Fixture: a command reaching around the façade — the deliberately
// seeded violation that must fail the build.
package main

import (
	"specsched"
	score "specsched/internal/core" // want `specsched/cmd/badtool imports specsched/internal/core`
)

func main() {
	_ = specsched.Version() + score.Version()
}
