// Package worker executes sweep cells in supervised subprocesses. It has
// two halves joined by a wire protocol:
//
//   - the worker side (Serve/MaybeServe): a re-exec'd copy of the host
//     binary that reads cell requests from stdin, simulates them with
//     exactly the in-process code path (sim.SimulateCell), and writes
//     results — plus liveness heartbeats carrying the simulated-cycle
//     counter — to stdout;
//   - the supervisor side (Pool): a sim.CellRunner that owns a bounded
//     fleet of worker processes, dispatches one cell per request, watches
//     heartbeats, detects crashes (process exit, protocol EOF, missed
//     heartbeats), respawns workers under capped exponential backoff with
//     a per-slot restart budget, and surfaces every crash as a transient
//     cell failure so the sim pool's retry machinery reassigns the cell.
//
// Determinism: a cell's result is a pure function of the cell spec
// (configuration, workload identity, seed index, window) — the wire
// carries exactly that, every counter is an int64 so the JSON round trip
// is exact, and trace workloads are content-addressed (the worker verifies
// the trace file digest before replaying). Results are therefore
// bit-identical to in-process execution, which the differential tests
// assert.
package worker

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"specsched/internal/config"
	"specsched/internal/stats"
)

// ProtocolVersion is the wire version both sides must agree on; the
// worker's hello frame carries it and the supervisor rejects mismatches.
const ProtocolVersion = 1

// EnvWorker is the environment marker that turns a process into a cell
// worker: when set, MaybeServe serves the protocol on stdin/stdout and
// exits instead of returning to the host's main. The supervisor sets it on
// every process it spawns.
const EnvWorker = "SPECSCHED_CELL_WORKER"

// EnvChaos optionally arms deterministic crash injection in the worker
// ("seed=N,exit=RATE"): before simulating, the worker draws a
// faultinject decision for (cell, attempt) and hard-exits the process on a
// hit — the reproducible stand-in for an OOM kill or stack overflow that
// the crash-recovery tests and CI chaos steps use. Workers inherit it from
// the supervisor's environment.
const EnvChaos = "SPECSCHED_WORKER_CHAOS"

// workerExitChaos is the exit code of an injected crash (diagnosable in
// supervisor logs as "injected", unlike a real fault's code).
const workerExitChaos = 7

// maxFrameBytes bounds one frame. Cell specs and results are a few KB;
// anything bigger is protocol corruption, not data.
const maxFrameBytes = 1 << 20

// cellSpec is the wire form of one cell request: everything that
// determines the cell's result, and nothing else. ConfigDigest double-
// checks the configuration after decoding (a wire-mangled config must
// fail loudly, never silently diverge); TraceDigest content-addresses a
// trace-backed workload so the worker verifies it replays the exact
// recording the supervisor swept.
type cellSpec struct {
	Config       config.CoreConfig `json:"config"`
	ConfigDigest uint64            `json:"config_digest"`
	Workload     string            `json:"workload"`
	SeedIdx      int               `json:"seed_idx"`
	Warmup       int64             `json:"warmup"`
	Measure      int64             `json:"measure"`
	Attempt      int               `json:"attempt"`
	TracePath    string            `json:"trace_path,omitempty"`
	TraceDigest  uint64            `json:"trace_digest,omitempty"`
	// BeatEveryMS is the worker's heartbeat emission period while this
	// cell runs (0 selects the worker default).
	BeatEveryMS int `json:"beat_every_ms,omitempty"`
}

// Frame kinds. Supervisor→worker: run, cancel. Worker→supervisor: hello
// (once, at startup), beat (periodically during a run), result (once per
// run request).
const (
	frameHello  = "hello"
	frameRun    = "run"
	frameCancel = "cancel"
	frameBeat   = "beat"
	frameResult = "result"
)

// Result error kinds that must survive the wire with their retry
// classification intact.
const (
	kindBadTrace = "bad_trace" // permanent: matches sim.ErrBadTrace on arrival
	kindCanceled = "canceled"  // the supervisor asked; mapped to the context cause
)

// frame is the single wire message shape, direction-tagged by Type.
type frame struct {
	Type string `json:"type"`
	ID   uint64 `json:"id,omitempty"`
	// hello
	Version int `json:"version,omitempty"`
	PID     int `json:"pid,omitempty"`
	// run
	Cell *cellSpec `json:"cell,omitempty"`
	// beat: the worker's simulated-cycle heartbeat for the running cell.
	Cycle int64 `json:"cycle,omitempty"`
	// result
	Run   *stats.Run `json:"run,omitempty"`
	Error string     `json:"error,omitempty"`
	Kind  string     `json:"kind,omitempty"`
}

// writeFrame emits one length-prefixed JSON frame. Callers serialize
// writes themselves (both sides write from more than one goroutine).
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("worker: marshal %s frame: %w", f.Type, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame. io.EOF at a frame
// boundary is returned as-is (orderly shutdown); everything else wraps a
// description of what broke.
func readFrame(r io.Reader, f *frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("worker: frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("worker: frame of %d bytes exceeds the %d-byte bound", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("worker: frame body: %w", err)
	}
	*f = frame{}
	if err := json.Unmarshal(body, f); err != nil {
		return fmt.Errorf("worker: frame decode: %w", err)
	}
	return nil
}
