package worker

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"syscall"
	"testing"
	"time"

	"specsched/internal/config"
	"specsched/internal/sim"
	"specsched/internal/stats"
)

// TestMain installs the worker hook: when the supervisor under test
// re-execs this test binary with the EnvWorker marker, the child serves
// cells instead of running the tests.
func TestMain(m *testing.M) {
	MaybeServe()
	os.Exit(m.Run())
}

const (
	testWarmup  = int64(500)
	testMeasure = int64(2000)
)

func testCells(t *testing.T, cfgNames, workloads []string, seeds int) []sim.Cell {
	t.Helper()
	var cells []sim.Cell
	for _, cn := range cfgNames {
		cfg, err := config.Preset(cn)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range workloads {
			for s := 0; s < seeds; s++ {
				cells = append(cells, sim.Cell{Config: cfg, Workload: wl, SeedIdx: s})
			}
		}
	}
	return cells
}

func newTestPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p, err := NewPool(Options{
		Workers:      workers,
		Warmup:       testWarmup,
		Measure:      testMeasure,
		BeatEvery:    20 * time.Millisecond,
		SpawnBackoff: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	in := frame{
		Type: frameRun, ID: 42,
		Cell: &cellSpec{
			Config: cfg, ConfigDigest: cfg.Digest(),
			Workload: "gzip", SeedIdx: 3,
			Warmup: 500, Measure: 2000, Attempt: 2,
		},
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out frame
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("frame did not round-trip:\n in=%+v\nout=%+v", in, out)
	}
	if err := readFrame(&buf, &out); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	var f frame
	if err := readFrame(&buf, &f); err == nil || err == io.EOF {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

// runInProcess is the ground truth every subprocess result must match bit
// for bit.
func runInProcess(t *testing.T, cells []sim.Cell) []*stats.Run {
	t.Helper()
	local := sim.LocalRunner{Warmup: testWarmup, Measure: testMeasure}
	out := make([]*stats.Run, len(cells))
	for i, c := range cells {
		run, err := local.RunCell(context.Background(), c, 1)
		if err != nil {
			t.Fatalf("in-process %s: %v", c, err)
		}
		out[i] = run
	}
	return out
}

func TestSubprocessBitIdentical(t *testing.T) {
	cells := testCells(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "hmmer"}, 2)
	want := runInProcess(t, cells)

	p := newTestPool(t, 2)
	for i, c := range cells {
		got, err := p.RunCell(context.Background(), c, 1)
		if err != nil {
			t.Fatalf("worker %s: %v", c, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("cell %s differs between worker and in-process:\n got=%+v\nwant=%+v", c, got, want[i])
		}
	}
	st := p.Stats()
	if st.Executed != int64(len(cells)) {
		t.Fatalf("executed %d cells, want %d", st.Executed, len(cells))
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Fatalf("healthy run recorded crashes: %+v", st)
	}
}

// TestChaosCrashReassignment arms deterministic crash injection (every
// cell's first attempt hard-exits its worker) and drives the grid through
// the sim pool's retry machinery: every cell must converge on attempt 2
// with results bit-identical to a crash-free in-process run.
func TestChaosCrashReassignment(t *testing.T) {
	cells := testCells(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "hmmer"}, 1)
	want := runInProcess(t, cells)

	t.Setenv(EnvChaos, "seed=7,exit=1,maxfaults=1") // workers inherit: attempt 1 always crashes
	p, err := NewPool(Options{
		Workers:       2,
		Warmup:        testWarmup,
		Measure:       testMeasure,
		BeatEvery:     20 * time.Millisecond,
		SpawnBackoff:  5 * time.Millisecond,
		RestartBudget: 10,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pool := &sim.Pool{Jobs: 2, MaxAttempts: 3, RetryBackoff: time.Millisecond}
	res := pool.RunWith(context.Background(), cells, p)
	if len(res) != len(cells) {
		t.Fatalf("%d results for %d cells", len(res), len(cells))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %s did not converge: %v", r.Cell, r.Err)
		}
		if r.Attempts < 2 {
			t.Fatalf("cell %s took %d attempts; injected crash should have cost one", r.Cell, r.Attempts)
		}
		if !reflect.DeepEqual(r.Run, want[i]) {
			t.Fatalf("cell %s differs after crash reassignment:\n got=%+v\nwant=%+v", r.Cell, r.Run, want[i])
		}
	}
	st := p.Stats()
	if st.Crashes < int64(len(cells)) {
		t.Fatalf("expected >= %d crashes, got %+v", len(cells), st)
	}
	if st.Reassigned < int64(len(cells)) {
		t.Fatalf("expected >= %d reassigned attempts, got %+v", len(cells), st)
	}
	if st.Restarts == 0 {
		t.Fatalf("crashed workers were never respawned: %+v", st)
	}
}

// TestKill9MidSweep SIGKILLs a live worker while a sweep runs — the
// supervisor must respawn it and the sweep must complete bit-identical.
func TestKill9MidSweep(t *testing.T) {
	cells := testCells(t, []string{"Baseline_0", "SpecSched_4"}, []string{"gzip", "hmmer", "mcf"}, 2)
	want := runInProcess(t, cells)

	p := newTestPool(t, 2)

	// Kill a worker as soon as one exists and has likely started a cell.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.After(10 * time.Second)
		for {
			if pids := p.WorkerPIDs(); len(pids) > 0 {
				time.Sleep(10 * time.Millisecond) // let it pick up a cell
				syscall.Kill(pids[0], syscall.SIGKILL)
				return
			}
			select {
			case <-deadline:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	pool := &sim.Pool{Jobs: 2, MaxAttempts: 3, RetryBackoff: time.Millisecond}
	res := pool.RunWith(context.Background(), cells, p)
	<-killed
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %s failed despite retry budget: %v", r.Cell, r.Err)
		}
		if !reflect.DeepEqual(r.Run, want[i]) {
			t.Fatalf("cell %s differs after kill -9:\n got=%+v\nwant=%+v", r.Cell, r.Run, want[i])
		}
	}
	// The victim died either mid-cell (reassigned) or idle; both must end
	// in a respawn. The respawn is asynchronous (manage loop + backoff), so
	// poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Restarts == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("killed worker was not respawned: %+v", p.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartBudgetFallback points the pool at a binary that can never
// speak the protocol: every slot must burn its restart budget, retire, and
// cells must gracefully degrade to the Fallback runner.
func TestRestartBudgetFallback(t *testing.T) {
	if _, err := os.Stat("/bin/false"); err != nil {
		t.Skip("/bin/false unavailable")
	}
	cells := testCells(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	want := runInProcess(t, cells)

	p, err := NewPool(Options{
		Workers:         2,
		BinPath:         "/bin/false",
		Warmup:          testWarmup,
		Measure:         testMeasure,
		RestartBudget:   2,
		SpawnBackoff:    time.Millisecond,
		MaxSpawnBackoff: 2 * time.Millisecond,
		HelloTimeout:    2 * time.Second,
		Fallback:        sim.LocalRunner{Warmup: testWarmup, Measure: testMeasure},
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := p.RunCell(context.Background(), cells[0], 1)
	if err != nil {
		t.Fatalf("fallback cell failed: %v", err)
	}
	if !reflect.DeepEqual(got, want[0]) {
		t.Fatalf("fallback result differs:\n got=%+v\nwant=%+v", got, want[0])
	}
	if !p.Degraded() {
		t.Fatal("pool did not report degradation")
	}
	st := p.Stats()
	if st.Retired != 2 || st.FallbackCells == 0 {
		t.Fatalf("expected 2 retired slots and fallback cells, got %+v", st)
	}
}

// TestRestartBudgetNoFallback: with no Fallback, a fully retired pool
// fails cells with ErrPoolDegraded instead of hanging.
func TestRestartBudgetNoFallback(t *testing.T) {
	if _, err := os.Stat("/bin/false"); err != nil {
		t.Skip("/bin/false unavailable")
	}
	p, err := NewPool(Options{
		Workers:         1,
		BinPath:         "/bin/false",
		RestartBudget:   2,
		SpawnBackoff:    time.Millisecond,
		MaxSpawnBackoff: 2 * time.Millisecond,
		HelloTimeout:    2 * time.Second,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cells := testCells(t, []string{"Baseline_0"}, []string{"gzip"}, 1)
	if _, err := p.RunCell(context.Background(), cells[0], 1); !errors.Is(err, ErrPoolDegraded) {
		t.Fatalf("err = %v, want ErrPoolDegraded", err)
	}
}

// TestCancelPropagation: canceling the cell context must interrupt the
// running worker promptly and return the cancellation cause.
func TestCancelPropagation(t *testing.T) {
	cfg, err := config.Preset("Baseline_0")
	if err != nil {
		t.Fatal(err)
	}
	big := sim.Cell{Config: cfg, Workload: "gzip"}
	p, err := NewPool(Options{
		Workers:      1,
		Warmup:       0,
		Measure:      1 << 40, // would run effectively forever
		BeatEvery:    20 * time.Millisecond,
		SpawnBackoff: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	cause := errors.New("test: deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel(cause)
	}()
	start := time.Now()
	_, err = p.RunCell(ctx, big, 1)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v to propagate", elapsed)
	}
}

// TestWorkerCrashIsTransient: the error a worker death produces must
// classify as transient so the sim pool's retry machinery reassigns it.
func TestWorkerCrashIsTransient(t *testing.T) {
	err := &transientError{fmt.Errorf("%w: pid 1 gone", ErrWorkerCrashed)}
	if !sim.Transient(err) {
		t.Fatal("worker crash error did not classify as transient")
	}
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatal("wrapped crash error lost its sentinel")
	}
}

func TestChaosFromEnv(t *testing.T) {
	for _, tc := range []struct {
		v    string
		want bool
	}{
		{"", false},
		{"seed=1,exit=0.5", true},
		{"seed=1,exit=0.5,maxfaults=3", true},
		{"exit=0", false},         // enabled needs a positive rate
		{"seed=1,exit=2", false},  // out of range
		{"bogus", false},          // malformed
		{"seed=1,boom=1", false},  // unknown key
		{"seed=x,exit=.1", false}, // unparsable seed
	} {
		t.Setenv(EnvChaos, tc.v)
		if got := chaosFromEnv() != nil; got != tc.want {
			t.Errorf("chaosFromEnv(%q) armed=%v, want %v", tc.v, got, tc.want)
		}
	}
}
