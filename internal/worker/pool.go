package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"specsched/internal/sim"
	"specsched/internal/stats"
)

// Cosmetic argv[0] of worker processes, so `ps`/`pgrep -f` can find them
// (the CI chaos step kill -9s one by this name).
const workerArgv0 = "specsched-cell-worker"

// ErrWorkerCrashed marks a cell attempt lost to a worker-process death:
// non-zero exit, protocol EOF, or missed heartbeats. It classifies as
// transient (sim.Transient returns true), so the sim pool's existing retry
// machinery reassigns the cell to another worker — a crash looks exactly
// like a panicked in-process cell.
var ErrWorkerCrashed = errors.New("worker: cell worker crashed")

// ErrPoolDegraded reports a RunCell call that found every worker slot
// retired (restart budget exhausted) and no Fallback configured.
var ErrPoolDegraded = errors.New("worker: all worker slots retired")

// transientError opts its wrapped error into the sim pool's retry
// classification via the Transient() hook.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Options configures a supervisor Pool. The zero value is not usable —
// call NewPool, which applies the documented defaults.
type Options struct {
	// Workers is the number of worker processes (slots). Default 1.
	Workers int

	// BinPath is the worker binary — a program whose main calls
	// MaybeServe (specsched.MaybeWorker) before anything else. Default:
	// the current executable (re-exec).
	BinPath string

	// Warmup and Measure are the per-cell simulation windows, and Traces
	// the recorded workloads, exactly as LocalRunner takes them. Trace
	// refs are sent by path + content digest; workers load and verify the
	// file themselves.
	Warmup  int64
	Measure int64
	Traces  sim.TraceSet

	// BeatEvery is the heartbeat period workers are asked to emit during
	// a run (default 250ms). LivenessTimeout is how long a run may go
	// without any frame from its worker before the supervisor declares
	// the process dead and kills it (default max(20*BeatEvery, 5s)).
	BeatEvery       time.Duration
	LivenessTimeout time.Duration

	// HelloTimeout bounds the startup handshake (default 10s). A binary
	// that never says hello — typically one missing the MaybeWorker hook
	// — is killed and counted as a crash.
	HelloTimeout time.Duration

	// CancelGrace is how long a canceled cell's worker gets to acknowledge
	// the cancel frame before being killed (default 2s).
	CancelGrace time.Duration

	// RestartBudget is how many consecutive failed spawns/crashes one
	// slot tolerates before retiring (default 5; completing a cell resets
	// the count). Respawns back off exponentially from SpawnBackoff
	// (default 100ms) capped at MaxSpawnBackoff (default 5s).
	RestartBudget   int
	SpawnBackoff    time.Duration
	MaxSpawnBackoff time.Duration

	// Fallback, when non-nil, executes cells after every slot has retired
	// — graceful degradation to (typically) in-process execution instead
	// of failing the sweep. Deterministic results make the switch
	// invisible in the output.
	Fallback sim.CellRunner

	// Stderr receives worker processes' stderr (default os.Stderr).
	Stderr io.Writer

	// Logf, when non-nil, receives supervisor lifecycle events (spawns,
	// crashes, retirements).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.BinPath == "" {
		bin, err := os.Executable()
		if err != nil {
			return opts, fmt.Errorf("worker: resolve current executable: %w", err)
		}
		opts.BinPath = bin
	}
	if opts.BeatEvery <= 0 {
		opts.BeatEvery = defaultBeatEvery
	}
	if opts.LivenessTimeout <= 0 {
		opts.LivenessTimeout = 20 * opts.BeatEvery
		if opts.LivenessTimeout < 5*time.Second {
			opts.LivenessTimeout = 5 * time.Second
		}
	}
	if opts.HelloTimeout <= 0 {
		opts.HelloTimeout = 10 * time.Second
	}
	if opts.CancelGrace <= 0 {
		opts.CancelGrace = 2 * time.Second
	}
	if opts.RestartBudget <= 0 {
		opts.RestartBudget = 5
	}
	if opts.SpawnBackoff <= 0 {
		opts.SpawnBackoff = 100 * time.Millisecond
	}
	if opts.MaxSpawnBackoff <= 0 {
		opts.MaxSpawnBackoff = 5 * time.Second
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return opts, nil
}

// Stats is a snapshot of supervisor counters.
type Stats struct {
	Spawns        int64 // worker processes started (including respawns)
	Restarts      int64 // respawns after a crash (Spawns minus first-time starts)
	Crashes       int64 // worker deaths observed (exit, EOF, missed heartbeats)
	Retired       int64 // slots that exhausted their restart budget
	Executed      int64 // cells completed by workers (success or cell error)
	Reassigned    int64 // cell attempts lost to a worker death (each is retried elsewhere)
	FallbackCells int64 // cells executed by the Fallback runner after degradation
}

// Pool is the supervisor half of the worker protocol: a bounded fleet of
// worker subprocesses behind the sim.CellRunner interface. Each slot runs
// a manage loop that spawns its process, performs the hello handshake,
// offers the process to RunCell callers, and respawns (capped exponential
// backoff, consecutive-crash budget) when it dies. A crash during a cell
// surfaces as an ErrWorkerCrashed transient error, so the sim pool retries
// — reassigning the cell to whichever worker is free next.
type Pool struct {
	opts Options

	idle     chan *proc
	closed   chan struct{}
	degraded chan struct{} // closed when every slot has retired

	wg sync.WaitGroup // slot manage goroutines

	mu      sync.Mutex
	procs   map[int]*proc // live processes by pid
	retired int           // slots out of budget

	spawns     atomic.Int64
	restarts   atomic.Int64
	crashes    atomic.Int64
	executed   atomic.Int64
	reassigned atomic.Int64
	fallback   atomic.Int64

	closeOnce sync.Once
}

// NewPool starts a supervisor with opts.Workers slots. Workers spawn
// asynchronously; RunCell blocks until one is ready (or degradation).
func NewPool(o Options) (*Pool, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		opts:     opts,
		idle:     make(chan *proc, opts.Workers),
		closed:   make(chan struct{}),
		degraded: make(chan struct{}),
		procs:    make(map[int]*proc),
	}
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.manageSlot(i)
	}
	return p, nil
}

// proc is one live worker process. The reaper goroutine owns the read
// side: it pumps frames into frames, and on any read error reaps the
// process, records waitErr, then closes frames and dead (in that order,
// so waitErr is safely readable after either close).
type proc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	pid    int
	frames chan frame
	dead   chan struct{}

	waitErr error // valid after frames/dead close
	nextID  uint64
	cells   atomic.Int64 // cells completed by this process
}

func (w *proc) isDead() bool {
	select {
	case <-w.dead:
		return true
	default:
		return false
	}
}

func (w *proc) kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
}

// manageSlot is one slot's lifecycle loop: spawn, handshake, offer to
// RunCell, wait for death, respawn under backoff — or retire after
// RestartBudget consecutive failures.
func (p *Pool) manageSlot(slot int) {
	defer p.wg.Done()
	failures := 0
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		w, err := p.spawn()
		if err == nil {
			err = p.awaitHello(w)
		}
		if err != nil {
			failures++
			p.crashes.Add(1)
			p.opts.Logf("worker[slot %d]: start failed (%d/%d): %v", slot, failures, p.opts.RestartBudget, err)
			if failures >= p.opts.RestartBudget {
				p.retire(slot)
				return
			}
			if !p.backoff(failures) {
				return
			}
			p.restarts.Add(1)
			continue
		}

		// Healthy: offer to RunCell callers and wait for death.
		select {
		case p.idle <- w:
		case <-p.closed:
			p.reap(w)
			return
		}
		select {
		case <-w.dead:
		case <-p.closed:
			p.reap(w)
			return
		}

		p.forget(w)
		select {
		case <-p.closed:
			return
		default:
		}
		p.crashes.Add(1)
		if w.cells.Load() > 0 {
			failures = 1 // completing cells resets the consecutive-crash count
		} else {
			failures++
		}
		p.opts.Logf("worker[slot %d]: pid %d died (%v) after %d cells; crash %d/%d",
			slot, w.pid, w.waitErr, w.cells.Load(), failures, p.opts.RestartBudget)
		if failures >= p.opts.RestartBudget {
			p.retire(slot)
			return
		}
		if !p.backoff(failures) {
			return
		}
		p.restarts.Add(1)
	}
}

// backoff sleeps min(SpawnBackoff << (failures-1), MaxSpawnBackoff),
// returning false if the pool closed while waiting.
func (p *Pool) backoff(failures int) bool {
	d := p.opts.SpawnBackoff
	for i := 1; i < failures && d < p.opts.MaxSpawnBackoff; i++ {
		d *= 2
	}
	if d > p.opts.MaxSpawnBackoff {
		d = p.opts.MaxSpawnBackoff
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.closed:
		return false
	}
}

func (p *Pool) retire(slot int) {
	p.opts.Logf("worker[slot %d]: restart budget exhausted, retiring", slot)
	p.mu.Lock()
	p.retired++
	all := p.retired >= p.opts.Workers
	p.mu.Unlock()
	if all {
		close(p.degraded)
	}
}

// spawn starts one worker process (a re-exec of BinPath with the EnvWorker
// marker) and its reaper goroutine.
func (p *Pool) spawn() (*proc, error) {
	cmd := &exec.Cmd{
		Path:   p.opts.BinPath,
		Args:   []string{workerArgv0},
		Env:    append(os.Environ(), EnvWorker+"=1"),
		Stderr: p.opts.Stderr,
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		stdout.Close()
		return nil, fmt.Errorf("worker: spawn %s: %w", p.opts.BinPath, err)
	}
	p.spawns.Add(1)
	w := &proc{
		cmd:    cmd,
		stdin:  stdin,
		pid:    cmd.Process.Pid,
		frames: make(chan frame, 16),
		dead:   make(chan struct{}),
	}
	p.mu.Lock()
	p.procs[w.pid] = w
	p.mu.Unlock()
	go func() {
		for {
			var f frame
			if err := readFrame(stdout, &f); err != nil {
				break
			}
			select {
			case w.frames <- f:
			case <-p.closed:
				// Drain so the worker's writes don't wedge it open.
			}
		}
		w.waitErr = cmd.Wait()
		close(w.frames)
		close(w.dead)
	}()
	return w, nil
}

// awaitHello performs the startup handshake: first frame must be a
// version-matched hello within HelloTimeout. Failures kill the process.
func (p *Pool) awaitHello(w *proc) error {
	t := time.NewTimer(p.opts.HelloTimeout)
	defer t.Stop()
	select {
	case f, ok := <-w.frames:
		if !ok {
			return fmt.Errorf("worker: pid %d exited before hello (%v) — does the binary call specsched.MaybeWorker at the top of main?", w.pid, w.waitErr)
		}
		if f.Type != frameHello {
			w.kill()
			return fmt.Errorf("worker: pid %d sent %q before hello", w.pid, f.Type)
		}
		if f.Version != ProtocolVersion {
			w.kill()
			return fmt.Errorf("worker: pid %d speaks protocol v%d, supervisor speaks v%d", w.pid, f.Version, ProtocolVersion)
		}
		return nil
	case <-t.C:
		w.kill()
		return fmt.Errorf("worker: pid %d said nothing for %v — does the binary call specsched.MaybeWorker at the top of main?", w.pid, p.opts.HelloTimeout)
	case <-p.closed:
		w.kill()
		return errors.New("worker: pool closed during handshake")
	}
}

func (p *Pool) forget(w *proc) {
	p.mu.Lock()
	delete(p.procs, w.pid)
	p.mu.Unlock()
}

func (p *Pool) reap(w *proc) {
	w.stdin.Close()
	t := time.NewTimer(2 * time.Second)
	defer t.Stop()
	select {
	case <-w.dead:
	case <-t.C:
		w.kill()
		<-w.dead
	}
	p.forget(w)
}

// RunCell implements sim.CellRunner: it claims an idle worker, dispatches
// the cell, and relays heartbeats and the result. A worker death mid-cell
// returns an ErrWorkerCrashed transient error — the sim pool's retry
// machinery then reassigns the cell. After all slots retire, cells run on
// the Fallback runner (or fail with ErrPoolDegraded).
func (p *Pool) RunCell(ctx context.Context, cell sim.Cell, attempt int) (*stats.Run, error) {
	for {
		select {
		case w := <-p.idle:
			if w.isDead() {
				continue // stale: died while parked in the channel
			}
			run, err, reusable := p.runOn(ctx, w, cell, attempt)
			if reusable {
				select {
				case p.idle <- w:
				case <-p.closed:
					p.reap(w)
				}
			} else {
				w.kill() // manage loop sees dead and respawns
			}
			if err != nil && errors.Is(err, ErrWorkerCrashed) {
				p.reassigned.Add(1)
			}
			return run, err
		case <-p.degraded:
			if p.opts.Fallback != nil {
				p.fallback.Add(1)
				return p.opts.Fallback.RunCell(ctx, cell, attempt)
			}
			return nil, ErrPoolDegraded
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-p.closed:
			return nil, errors.New("worker: pool closed")
		}
	}
}

// runOn dispatches one cell to one worker and pumps its frames. Returns
// reusable=false when the process must not be offered again (it died, or
// was killed for missed heartbeats / ignored cancel).
func (p *Pool) runOn(ctx context.Context, w *proc, cell sim.Cell, attempt int) (run *stats.Run, err error, reusable bool) {
	w.nextID++
	id := w.nextID
	spec := &cellSpec{
		Config:       cell.Config,
		ConfigDigest: cell.Config.Digest(),
		Workload:     cell.Workload,
		SeedIdx:      cell.SeedIdx,
		Warmup:       p.opts.Warmup,
		Measure:      p.opts.Measure,
		Attempt:      attempt,
		BeatEveryMS:  int(p.opts.BeatEvery / time.Millisecond),
	}
	if ref, ok := p.opts.Traces[cell.Workload]; ok && ref.Path != "" {
		spec.TracePath = ref.Path
		spec.TraceDigest = ref.Header.Digest
	}
	if err := writeFrame(w.stdin, &frame{Type: frameRun, ID: id, Cell: spec}); err != nil {
		return nil, p.crashErr(w, fmt.Sprintf("dispatching %s", cell)), false
	}

	hb := sim.HeartbeatFrom(ctx)
	liveness := time.NewTimer(p.opts.LivenessTimeout)
	defer liveness.Stop()
	var cancelSent bool
	var grace <-chan time.Time
	done := ctx.Done()

	for {
		select {
		case f, ok := <-w.frames:
			if !ok {
				return nil, p.crashErr(w, fmt.Sprintf("running %s", cell)), false
			}
			if !liveness.Stop() {
				<-liveness.C
			}
			liveness.Reset(p.opts.LivenessTimeout)
			if f.ID != id {
				continue // stale frame from a previous cell on this worker
			}
			switch f.Type {
			case frameBeat:
				if hb != nil && f.Cycle >= 0 {
					hb.Store(f.Cycle)
				}
			case frameResult:
				w.cells.Add(1)
				p.executed.Add(1)
				if f.Error != "" {
					return nil, p.resultErr(ctx, f), true
				}
				if f.Run == nil {
					return nil, fmt.Errorf("worker: pid %d returned an empty result for %s", w.pid, cell), true
				}
				return f.Run, nil, true
			}
		case <-liveness.C:
			w.kill()
			<-w.dead
			return nil, &transientError{fmt.Errorf("%w: pid %d sent no frames for %v while running %s (killed)",
				ErrWorkerCrashed, w.pid, p.opts.LivenessTimeout, cell)}, false
		case <-done:
			if !cancelSent {
				cancelSent = true
				writeFrame(w.stdin, &frame{Type: frameCancel, ID: id})
				g := time.NewTimer(p.opts.CancelGrace)
				defer g.Stop()
				grace = g.C
			}
			done = nil // keep pumping frames until ack, grace, or death
		case <-grace:
			w.kill()
			<-w.dead
			return nil, context.Cause(ctx), false
		}
	}
}

// crashErr waits for the dead process to be reaped and wraps its exit
// status as a transient ErrWorkerCrashed.
func (p *Pool) crashErr(w *proc, doing string) error {
	<-w.dead
	return &transientError{fmt.Errorf("%w: pid %d (%v) while %s", ErrWorkerCrashed, w.pid, w.waitErr, doing)}
}

// resultErr maps a wire error back into the supervisor's error space with
// its retry classification intact.
func (p *Pool) resultErr(ctx context.Context, f frame) error {
	switch f.Kind {
	case kindBadTrace:
		return fmt.Errorf("%w: %s", sim.ErrBadTrace, f.Error)
	case kindCanceled:
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return fmt.Errorf("worker: %s", f.Error)
	}
	return errors.New(f.Error)
}

// Close shuts the supervisor down: close every worker's stdin (orderly
// exit), kill stragglers, and wait for the slot manage loops. Callers
// must not have RunCell in flight (the sim pool guarantees this — Close
// is called after RunWith returns).
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	// Reap anything parked in idle; manage loops reap what they hold.
	for {
		select {
		case w := <-p.idle:
			p.reap(w)
			continue
		default:
		}
		break
	}
	p.wg.Wait()
	// Kill any remaining live processes (e.g. mid-handshake casualties).
	p.mu.Lock()
	rest := make([]*proc, 0, len(p.procs))
	for _, w := range p.procs {
		rest = append(rest, w)
	}
	p.mu.Unlock()
	for _, w := range rest {
		p.reap(w)
	}
	return nil
}

// Stats snapshots the supervisor counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	retired := int64(p.retired)
	p.mu.Unlock()
	return Stats{
		Spawns:        p.spawns.Load(),
		Restarts:      p.restarts.Load(),
		Crashes:       p.crashes.Load(),
		Retired:       retired,
		Executed:      p.executed.Load(),
		Reassigned:    p.reassigned.Load(),
		FallbackCells: p.fallback.Load(),
	}
}

// WorkerPIDs returns the pids of currently live worker processes — the
// hook chaos tests and the CI kill -9 step use to pick a victim.
func (p *Pool) WorkerPIDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	pids := make([]int, 0, len(p.procs))
	for pid := range p.procs {
		pids = append(pids, pid)
	}
	return pids
}

// Degraded reports whether every slot has retired (cells are running on
// the Fallback, or failing).
func (p *Pool) Degraded() bool {
	select {
	case <-p.degraded:
		return true
	default:
		return false
	}
}
