package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specsched/internal/faultinject"
	"specsched/internal/sim"
	"specsched/internal/stats"
)

// MaybeServe turns the process into a cell worker when the EnvWorker
// marker is set: it serves the protocol on stdin/stdout until the
// supervisor closes stdin, then exits the process. Host binaries that
// want subprocess sweep workers call it at the top of main (the public
// facade re-exports it as specsched.MaybeWorker); without the marker it
// returns immediately and main proceeds normally.
func MaybeServe() {
	if os.Getenv(EnvWorker) == "" {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "specsched-worker[%d]: %v\n", os.Getpid(), err)
		os.Exit(1)
	}
	os.Exit(0)
}

// defaultBeatEvery is the heartbeat emission period when the run request
// does not specify one.
const defaultBeatEvery = 250 * time.Millisecond

// Serve runs the worker side of the protocol: hello, then a loop of run
// requests — one cell at a time, simulated with exactly the in-process
// code path — interleaved with cancel requests for the running cell.
// Heartbeat frames carrying the simulated-cycle counter flow while a cell
// runs. Serve returns nil when the supervisor closes its end.
func Serve(r io.Reader, w io.Writer) error {
	s := &workerServer{r: r, w: w, chaos: chaosFromEnv()}
	if err := s.send(&frame{Type: frameHello, Version: ProtocolVersion, PID: os.Getpid()}); err != nil {
		return err
	}
	// While a cell runs the protocol reader lives in a goroutine (cancel
	// frames must interrupt the simulation); the frame it was blocked on
	// when the cell finished — normally the next run request — is handed
	// back here as pending.
	var pending *frame
	for {
		var f frame
		if pending != nil {
			f, pending = *pending, nil
		} else {
			switch err := readFrame(r, &f); {
			case err == io.EOF:
				return nil
			case err != nil:
				return err
			}
		}
		switch f.Type {
		case frameRun:
			if f.Cell == nil {
				return fmt.Errorf("worker: run frame %d without a cell", f.ID)
			}
			next, err := s.runCell(f.ID, f.Cell)
			switch {
			case err == io.EOF:
				return nil
			case err != nil:
				return err
			}
			pending = next
		case frameCancel:
			// Stale cancel for a cell whose result already went out.
		default:
			return fmt.Errorf("worker: unexpected %q frame from supervisor", f.Type)
		}
	}
}

// workerServer is one worker process's state: the write lock (results,
// beats, and hello interleave), the cancel hook of the running cell, and
// a cache of loaded traces (a sweep re-requests the same trace for every
// cell of that workload; decompress once).
type workerServer struct {
	r io.Reader
	w io.Writer

	wmu sync.Mutex // serializes frame writes

	cmu       sync.Mutex
	runningID uint64
	cancel    context.CancelCauseFunc

	traces map[string]sim.TraceRef
	chaos  *faultinject.Plan
}

func (s *workerServer) send(f *frame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.w, f)
}

// errCanceledBySupervisor is the cancel-frame cause; it reports on the
// wire as the "canceled" kind, which the supervisor swaps for its own
// context cause.
var errCanceledBySupervisor = errors.New("worker: canceled by supervisor")

// runCell executes one cell request and sends its result frame. It owns
// the protocol reader for the duration (forwarding cancel frames into the
// running simulation) and returns the first non-cancel frame that arrived
// after — the next run request — for Serve's loop to dispatch, or the
// reader's error (io.EOF for orderly shutdown).
func (s *workerServer) runCell(id uint64, spec *cellSpec) (*frame, error) {
	ctx, cancel := context.WithCancelCause(context.Background())
	s.cmu.Lock()
	s.runningID, s.cancel = id, cancel
	s.cmu.Unlock()

	type readOutcome struct {
		frame *frame
		err   error
	}
	readerDone := make(chan readOutcome, 1)
	go func() {
		for {
			var f frame
			if err := readFrame(s.r, &f); err != nil {
				readerDone <- readOutcome{err: err}
				return
			}
			if f.Type == frameCancel {
				s.cancelRunning(f.ID)
				continue
			}
			readerDone <- readOutcome{frame: &f}
			return
		}
	}()

	// Heartbeats: the core publishes its cycle counter into hb at its
	// cancellation poll; a ticker forwards it as beat frames. The value
	// freezing while beats keep flowing is exactly how the sim pool's
	// stall watchdog distinguishes "hung" from "slow" — and the beats
	// themselves are the supervisor's process-liveness signal.
	hb := new(atomic.Int64)
	hb.Store(-1)
	beatEvery := defaultBeatEvery
	if spec.BeatEveryMS > 0 {
		beatEvery = time.Duration(spec.BeatEveryMS) * time.Millisecond
	}
	beatStop := make(chan struct{})
	var beatWG sync.WaitGroup
	beatWG.Add(1)
	go func() {
		defer beatWG.Done()
		tk := time.NewTicker(beatEvery)
		defer tk.Stop()
		for {
			select {
			case <-beatStop:
				return
			case <-tk.C:
				s.send(&frame{Type: frameBeat, ID: id, Cycle: hb.Load()})
			}
		}
	}()

	run, err := s.simulate(sim.WithHeartbeat(ctx, hb), spec)

	close(beatStop)
	beatWG.Wait()
	s.cmu.Lock()
	s.runningID, s.cancel = 0, nil
	s.cmu.Unlock()
	cancel(nil)

	res := &frame{Type: frameResult, ID: id, Run: run}
	if err != nil {
		res.Run, res.Error, res.Kind = nil, err.Error(), errKind(ctx, err)
	}
	if err := s.send(res); err != nil {
		// stdout gone: the supervisor died or killed us mid-result.
		return nil, fmt.Errorf("worker: send result: %w", err)
	}

	out := <-readerDone
	return out.frame, out.err
}

// cancelRunning cancels the running cell if its ID matches (a stale cancel
// for an already-finished cell is a no-op).
func (s *workerServer) cancelRunning(id uint64) {
	s.cmu.Lock()
	cancel := s.cancel
	match := s.runningID == id
	s.cmu.Unlock()
	if match && cancel != nil {
		cancel(errCanceledBySupervisor)
	}
}

// simulate runs one cell spec through sim.SimulateCell — the identical
// code path the in-process runner uses, which is the whole determinism
// argument. Trace workloads are loaded once per path and verified against
// the supervisor's content digest.
func (s *workerServer) simulate(ctx context.Context, spec *cellSpec) (*stats.Run, error) {
	if d := spec.Config.Digest(); d != spec.ConfigDigest {
		return nil, fmt.Errorf("worker: config %q digest mismatch after decode (%016x on the wire, %016x decoded)",
			spec.Config.Name, spec.ConfigDigest, d)
	}
	if s.chaos != nil && s.chaos.Cell(cellKey(spec), spec.Attempt) == faultinject.Panic {
		fmt.Fprintf(os.Stderr, "specsched-worker[%d]: injected crash (%s/%s#%d attempt %d)\n",
			os.Getpid(), spec.Config.Name, spec.Workload, spec.SeedIdx, spec.Attempt)
		os.Exit(workerExitChaos)
	}
	var traces sim.TraceSet
	if spec.TracePath != "" {
		ref, err := s.loadTrace(spec.TracePath)
		if err != nil {
			return nil, err
		}
		if ref.Header.Digest != spec.TraceDigest {
			return nil, fmt.Errorf("%w: %s: content digest %016x does not match the swept trace %016x (file changed under the sweep?)",
				sim.ErrBadTrace, spec.TracePath, ref.Header.Digest, spec.TraceDigest)
		}
		traces = sim.TraceSet{spec.Workload: ref}
	}
	cell := sim.Cell{Config: spec.Config, Workload: spec.Workload, SeedIdx: spec.SeedIdx}
	return sim.SimulateCell(ctx, cell, spec.Warmup, spec.Measure, traces)
}

func (s *workerServer) loadTrace(path string) (sim.TraceRef, error) {
	if ref, ok := s.traces[path]; ok {
		return ref, nil
	}
	ref, err := sim.LoadTrace(path)
	if err != nil {
		return sim.TraceRef{}, err
	}
	if s.traces == nil {
		s.traces = make(map[string]sim.TraceRef)
	}
	s.traces[path] = ref
	return ref, nil
}

// cellKey mirrors sim.Cell.Key for chaos draws, so an injected worker
// crash hits the same (cell, attempt) coordinates a sim-pool chaos plan
// with the same seed would.
func cellKey(spec *cellSpec) string {
	return fmt.Sprintf("%s\x00%s\x00%d", spec.Config.Name, spec.Workload, spec.SeedIdx)
}

// errKind classifies a cell error for the wire so retry classification
// survives process boundaries: bad traces stay permanent, supervisor
// cancels map back to the supervisor's cause, everything else rides as a
// plain (permanent) message.
func errKind(ctx context.Context, err error) string {
	switch {
	case errors.Is(err, sim.ErrBadTrace):
		return kindBadTrace
	case errors.Is(err, errCanceledBySupervisor) || ctx.Err() != nil:
		return kindCanceled
	}
	return ""
}

// chaosFromEnv parses EnvChaos ("seed=N,exit=RATE") into a fault plan
// whose Panic kind means "hard-exit the worker process". Unset or
// malformed values disable injection (chaos is a test harness; a typo
// must not fail production cells).
func chaosFromEnv() *faultinject.Plan {
	v := os.Getenv(EnvChaos)
	if v == "" {
		return nil
	}
	plan := &faultinject.Plan{}
	for _, kv := range strings.Split(v, ",") {
		k, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil
			}
			plan.Seed = n
		case "exit":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return nil
			}
			plan.PanicRate = r
		case "maxfaults":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil
			}
			plan.MaxFaultsPerCell = n
		default:
			return nil
		}
	}
	if !plan.Enabled() {
		return nil
	}
	return plan
}
