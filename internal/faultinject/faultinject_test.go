package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestPlanDeterminism: two plans built from the same seed and rates must
// produce the identical fault schedule — the property the whole chaos
// suite leans on.
func TestPlanDeterminism(t *testing.T) {
	mk := func() *Plan {
		return &Plan{Seed: 42, PanicRate: 0.2, HangRate: 0.2, TransientRate: 0.2, CorruptTraceRate: 0.1}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cfg%d\x00wl%d\x000", i%7, i%13)
		for attempt := 1; attempt <= 3; attempt++ {
			if a.Cell(key, attempt) != b.Cell(key, attempt) {
				t.Fatalf("plan not deterministic at key %q attempt %d", key, attempt)
			}
		}
	}
	for f := 0; f < 64; f++ {
		if a.Torn(f) != b.Torn(f) {
			t.Fatalf("torn-write schedule not deterministic at flush %d", f)
		}
	}
}

// TestPlanSeedsDiffer: different seeds must give different schedules (not
// a constant function).
func TestPlanSeedsDiffer(t *testing.T) {
	a := &Plan{Seed: 1, TransientRate: 0.5}
	b := &Plan{Seed: 2, TransientRate: 0.5}
	same := true
	for i := 0; i < 64 && same; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if a.Cell(key, 1) != b.Cell(key, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("64 draws identical across different seeds")
	}
}

// TestPlanRates: over many keys the empirical fault fraction must track
// the configured rates (loose bounds; the draw is hash-uniform).
func TestPlanRates(t *testing.T) {
	p := &Plan{Seed: 7, PanicRate: 0.1, HangRate: 0.1, TransientRate: 0.3}
	counts := map[Kind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.Cell(fmt.Sprintf("k%d", i), 1)]++
	}
	check := func(k Kind, want float64) {
		got := float64(counts[k]) / n
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("%s rate = %.3f, want ~%.3f", k, got, want)
		}
	}
	check(Panic, 0.1)
	check(Hang, 0.1)
	check(Transient, 0.3)
	check(None, 0.5)
	if counts[CorruptTrace] != 0 {
		t.Errorf("corrupt-trace injected with zero rate")
	}
}

// TestMaxFaultsPerCell: attempts beyond the bound never fault, so retries
// past it always converge.
func TestMaxFaultsPerCell(t *testing.T) {
	p := &Plan{Seed: 3, TransientRate: 1}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if p.Cell(key, 1) != Transient || p.Cell(key, 2) != Transient {
			t.Fatalf("rate-1 plan must fault attempts 1..2 of %q", key)
		}
		if got := p.Cell(key, 3); got != None {
			t.Fatalf("attempt 3 of %q = %s, want none (default MaxFaultsPerCell=2)", key, got)
		}
	}
	p.MaxFaultsPerCell = 1
	if p.Cell("x", 2) != None {
		t.Fatal("attempt 2 faulted with MaxFaultsPerCell=1")
	}
}

// TestNilAndZeroPlans inject nothing.
func TestNilAndZeroPlans(t *testing.T) {
	var nilPlan *Plan
	zero := &Plan{Seed: 99}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i)
		if nilPlan.Cell(key, 1) != None || zero.Cell(key, 1) != None {
			t.Fatal("nil/zero plan injected a cell fault")
		}
		if nilPlan.Torn(i) || zero.Torn(i) {
			t.Fatal("nil/zero plan tore a write")
		}
	}
	if nilPlan.Enabled() || zero.Enabled() {
		t.Fatal("nil/zero plan reports Enabled")
	}
}

// TestCorrupt: deterministic, flips exactly one byte, leaves the input
// untouched.
func TestCorrupt(t *testing.T) {
	p := &Plan{Seed: 11}
	orig := []byte("specsched checkpoint body, reasonably long to give positions room")
	keep := append([]byte(nil), orig...)
	a := p.Corrupt(orig, "trace:gzip")
	b := p.Corrupt(orig, "trace:gzip")
	if !bytes.Equal(a, b) {
		t.Fatal("Corrupt not deterministic")
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("Corrupt mutated its input")
	}
	diff := 0
	for i := range orig {
		if a[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("Corrupt changed %d bytes, want 1", diff)
	}
	if c := p.Corrupt(orig, "other-key"); bytes.Equal(c, a) {
		t.Log("note: two keys hit the same position (possible, not fatal)")
	}
	if got := p.Corrupt(nil, "k"); len(got) != 0 {
		t.Fatal("Corrupt of empty input must stay empty")
	}
}

// TestTransientClassification: the injected transient error must be
// recognizable both by errors.Is and by the Transient() interface the
// pool's classifier uses.
func TestTransientClassification(t *testing.T) {
	wrapped := fmt.Errorf("cell gzip#0: %w", ErrTransient)
	if !errors.Is(wrapped, ErrTransient) {
		t.Fatal("wrapped injected transient does not match ErrTransient")
	}
	var tr interface{ Transient() bool }
	if !errors.As(wrapped, &tr) || !tr.Transient() {
		t.Fatal("injected transient does not classify via Transient()")
	}
}
