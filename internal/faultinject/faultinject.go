// Package faultinject provides deterministic fault plans for chaos-testing
// the sweep orchestration layer. A Plan is a pure function from (seed, cell
// key, attempt) to a fault kind, built on the same splitmix64 finalizer the
// sweep uses for seed derivation, so a fault schedule is reproducible from
// its seed alone: the same plan injects the same panics, hangs, transient
// errors, trace corruptions, and torn checkpoint writes on every run,
// regardless of worker count or scheduling order. internal/sim threads a
// Plan through Pool (cell faults) and Checkpoint (torn writes); every
// recovery path the resilience machinery implements is exercised in CI
// through plans, not through races won by sleeping.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// None injects nothing; the attempt runs normally.
	None Kind = iota
	// Panic makes the cell goroutine panic mid-attempt (exercises the
	// pool's panic containment and retry classification).
	Panic
	// Hang blocks the cell until its context is canceled (exercises the
	// cell timeout, the stall watchdog, and the abandoned-goroutine
	// budget).
	Hang
	// Transient fails the cell with an error that classifies as
	// retryable (models a worker that returned garbage once).
	Transient
	// CorruptTrace fails the cell as if its recorded trace body failed
	// its digest check — a permanent failure that must NOT be retried.
	CorruptTrace
	// TornWrite applies to checkpoint flushes, not cells: the flush
	// writes a truncated body and skips fsync, modeling a crash
	// mid-write (exercises salvage and .bak fallback on resume).
	TornWrite
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Transient:
		return "transient"
	case CorruptTrace:
		return "corrupt-trace"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ErrTransient is the injected transient failure. It implements the
// Transient() classification interface the pool's retry policy recognizes,
// so injected transients retry exactly like real ones would.
var ErrTransient error = &transientError{}

type transientError struct{}

func (*transientError) Error() string   { return "faultinject: injected transient failure" }
func (*transientError) Transient() bool { return true }

// Plan is a deterministic fault schedule. The zero value (and a nil plan)
// injects nothing. Rates are probabilities in [0, 1] evaluated
// independently per (cell key, attempt) for cell faults and per flush
// index for torn writes; their sum across kinds should not exceed 1 (the
// draw is cumulative: panic wins over hang wins over transient wins over
// corrupt-trace).
type Plan struct {
	// Seed anchors every draw. Two plans with equal seeds and rates are
	// the same schedule.
	Seed uint64

	// Per-attempt cell fault rates.
	PanicRate        float64
	HangRate         float64
	TransientRate    float64
	CorruptTraceRate float64

	// TornWriteRate is the probability that one checkpoint flush writes
	// a truncated, unsynced body.
	TornWriteRate float64

	// MaxFaultsPerCell bounds how many leading attempts of one cell may
	// fault (0 means the default of 2). Attempts beyond the bound never
	// fault, so any retry policy allowing MaxFaultsPerCell+1 attempts is
	// guaranteed to converge on transient kinds.
	MaxFaultsPerCell int
}

// maxFaults returns the effective per-cell fault bound.
func (p *Plan) maxFaults() int {
	if p.MaxFaultsPerCell <= 0 {
		return 2
	}
	return p.MaxFaultsPerCell
}

// Enabled reports whether the plan can inject any cell fault at all.
func (p *Plan) Enabled() bool {
	return p != nil &&
		(p.PanicRate > 0 || p.HangRate > 0 || p.TransientRate > 0 || p.CorruptTraceRate > 0)
}

// Cell returns the fault for one attempt (1-based) of the cell identified
// by key. A nil plan, or an attempt past MaxFaultsPerCell, returns None.
func (p *Plan) Cell(key string, attempt int) Kind {
	if p == nil || attempt > p.maxFaults() {
		return None
	}
	x := p.draw("cell", key, attempt)
	for _, f := range [...]struct {
		rate float64
		kind Kind
	}{
		{p.PanicRate, Panic},
		{p.HangRate, Hang},
		{p.TransientRate, Transient},
		{p.CorruptTraceRate, CorruptTrace},
	} {
		if x < f.rate {
			return f.kind
		}
		x -= f.rate
	}
	return None
}

// Torn reports whether the flush-th checkpoint flush (0-based) should be
// written torn: truncated body, no fsync.
func (p *Plan) Torn(flush int) bool {
	if p == nil || p.TornWriteRate <= 0 {
		return false
	}
	return p.draw("torn", "", flush) < p.TornWriteRate
}

// Corrupt returns a copy of data with one byte flipped at a position drawn
// deterministically from (seed, key) — a reproducible way to damage a
// trace or checkpoint body in tests. Empty input is returned unchanged.
func (p *Plan) Corrupt(data []byte, key string) []byte {
	out := append([]byte(nil), data...)
	if p == nil || len(out) == 0 {
		return out
	}
	pos := int(p.mix("corrupt", key, 0) % uint64(len(out)))
	out[pos] ^= 0xa5
	return out
}

// draw maps (domain, key, n) to a uniform float64 in [0, 1).
func (p *Plan) draw(domain, key string, n int) float64 {
	return float64(p.mix(domain, key, n)>>11) / (1 << 53)
}

// mix hashes the draw coordinates through FNV-64a and the splitmix64
// finalizer — the identical derivation style sim.DeriveSeed uses, so fault
// schedules inherit its distribution quality.
func (p *Plan) mix(domain, key string, n int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, domain)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return splitmix64(p.Seed ^ h.Sum64() ^ (uint64(n) * 0x9e3779b97f4a7c15))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer (same constants as internal/sim).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
