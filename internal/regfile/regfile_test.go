package regfile

import (
	"testing"
	"testing/quick"

	"specsched/internal/rng"
	"specsched/internal/uop"
)

func TestInitialMapping(t *testing.T) {
	m := New(256, 256)
	for i := 0; i < uop.NumIntRegs; i++ {
		if m.Lookup(i) != i {
			t.Fatalf("int reg %d maps to %d at reset", i, m.Lookup(i))
		}
	}
	for i := 0; i < uop.NumFPRegs; i++ {
		if got := m.Lookup(uop.NumIntRegs + i); got != 256+i {
			t.Fatalf("fp reg %d maps to %d at reset", i, got)
		}
	}
	if m.FreeInt() != 256-32 || m.FreeFP() != 256-32 {
		t.Fatalf("free counts = %d/%d, want 224/224", m.FreeInt(), m.FreeFP())
	}
	if err := m.LiveCheck(0); err != nil {
		t.Fatal(err)
	}
}

func TestRenameCommitCycle(t *testing.T) {
	m := New(256, 256)
	newP, oldP, ok := m.Rename(5)
	if !ok {
		t.Fatal("rename failed with free registers available")
	}
	if oldP != 5 {
		t.Fatalf("old mapping = %d, want 5", oldP)
	}
	if m.Lookup(5) != newP {
		t.Fatal("mapping not installed")
	}
	if err := m.LiveCheck(1); err != nil {
		t.Fatal(err)
	}
	m.Commit(oldP)
	if err := m.LiveCheck(0); err != nil {
		t.Fatal(err)
	}
	if m.FreeInt() != 224 {
		t.Fatalf("free INT after commit = %d, want 224", m.FreeInt())
	}
}

func TestRollbackRestoresMapping(t *testing.T) {
	m := New(256, 256)
	n1, o1, _ := m.Rename(7)
	n2, o2, _ := m.Rename(7)
	// Rollback youngest-first.
	m.Rollback(7, o2, n2)
	if m.Lookup(7) != n1 {
		t.Fatalf("after rollback of second rename, mapping = %d, want %d", m.Lookup(7), n1)
	}
	m.Rollback(7, o1, n1)
	if m.Lookup(7) != 7 {
		t.Fatalf("after full rollback, mapping = %d, want 7", m.Lookup(7))
	}
	if err := m.LiveCheck(0); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackOutOfOrderPanics(t *testing.T) {
	m := New(256, 256)
	n1, o1, _ := m.Rename(7)
	m.Rename(7)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order rollback did not panic")
		}
	}()
	m.Rollback(7, o1, n1) // oldest first: must panic
}

func TestFPAllocationsUseFPList(t *testing.T) {
	m := New(256, 256)
	fpArch := uop.NumIntRegs + 3
	newP, _, ok := m.Rename(fpArch)
	if !ok || newP < 256 {
		t.Fatalf("FP rename returned phys %d (ok=%t), want >= 256", newP, ok)
	}
	if m.FreeFP() != 223 || m.FreeInt() != 224 {
		t.Fatalf("free counts = %d/%d after FP rename", m.FreeInt(), m.FreeFP())
	}
}

func TestExhaustion(t *testing.T) {
	m := New(64, 64) // minimal PRF: 32 free in each file
	count := 0
	for {
		_, _, ok := m.Rename(1)
		if !ok {
			break
		}
		count++
	}
	if count != 32 {
		t.Fatalf("allocated %d INT registers before exhaustion, want 32", count)
	}
	if m.CanRename(1) {
		t.Fatal("CanRename true with empty free list")
	}
	if m.CanRename(uop.NumIntRegs) != true {
		t.Fatal("FP list should still have registers")
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: any interleaving of rename/commit/rollback conserves
	// physical registers and never double-maps.
	type event struct {
		arch int
		newP int
		oldP int
	}
	f := func(seed uint64) bool {
		m := New(96, 96)
		r := rng.New(seed)
		var live []event
		for step := 0; step < 300; step++ {
			switch r.Intn(3) {
			case 0: // rename
				arch := r.Intn(uop.NumArchRegs)
				if n, o, ok := m.Rename(arch); ok {
					live = append(live, event{arch, n, o})
				}
			case 1: // commit oldest
				if len(live) > 0 {
					m.Commit(live[0].oldP)
					live = live[1:]
				}
			case 2: // rollback youngest
				if len(live) > 0 {
					e := live[len(live)-1]
					m.Rollback(e.arch, e.oldP, e.newP)
					live = live[:len(live)-1]
				}
			}
			if err := m.LiveCheck(len(live)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTooSmallPRFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized PRF did not panic")
		}
	}()
	New(16, 256)
}
