// Package regfile implements register renaming: a rename map from the 64
// architectural registers onto the 256-entry INT and 256-entry FP physical
// register files of Table 1, free-list management, and precise rollback via
// reverse ROB walk (each rename records the previous mapping; squashes
// undo renames youngest-first).
package regfile

import (
	"fmt"

	"specsched/internal/uop"
)

// RenameMap tracks architectural-to-physical mappings and the free lists.
// Physical registers [0, intPRF) back integer state; [intPRF, intPRF+fpPRF)
// back floating-point state. It is not safe for concurrent use.
type RenameMap struct {
	intPRF, fpPRF int
	table         [uop.NumArchRegs]int
	intFree       []int
	fpFree        []int
}

// New constructs a rename map. At reset, architectural register i maps to
// physical register i (FP registers to the base of the FP file), and the
// remaining physical registers populate the free lists.
func New(intPRF, fpPRF int) *RenameMap {
	if intPRF < uop.NumIntRegs || fpPRF < uop.NumFPRegs {
		panic("regfile: physical register file smaller than architectural state")
	}
	m := &RenameMap{intPRF: intPRF, fpPRF: fpPRF}
	for i := 0; i < uop.NumIntRegs; i++ {
		m.table[i] = i
	}
	for i := 0; i < uop.NumFPRegs; i++ {
		m.table[uop.NumIntRegs+i] = intPRF + i
	}
	for p := uop.NumIntRegs; p < intPRF; p++ {
		m.intFree = append(m.intFree, p)
	}
	for p := intPRF + uop.NumFPRegs; p < intPRF+fpPRF; p++ {
		m.fpFree = append(m.fpFree, p)
	}
	return m
}

// TotalPhys returns the total number of physical registers.
func (m *RenameMap) TotalPhys() int { return m.intPRF + m.fpPRF }

// FreeInt and FreeFP return the number of free registers in each file.
func (m *RenameMap) FreeInt() int { return len(m.intFree) }

// FreeFP returns the number of free FP physical registers.
func (m *RenameMap) FreeFP() int { return len(m.fpFree) }

// Lookup returns the current physical mapping of an architectural register.
func (m *RenameMap) Lookup(arch int) int {
	return m.table[arch]
}

// CanRename reports whether a destination of the given kind can be renamed
// right now (a free physical register exists).
func (m *RenameMap) CanRename(arch int) bool {
	if uop.IsFPReg(arch) {
		return len(m.fpFree) > 0
	}
	return len(m.intFree) > 0
}

// Rename allocates a new physical register for architectural destination
// arch and installs the mapping. It returns the new mapping and the
// previous one (which the ROB entry must remember for rollback/commit).
// ok is false when the relevant free list is empty; no state changes then.
func (m *RenameMap) Rename(arch int) (newPhys, oldPhys int, ok bool) {
	list := &m.intFree
	if uop.IsFPReg(arch) {
		list = &m.fpFree
	}
	n := len(*list)
	if n == 0 {
		return 0, 0, false
	}
	newPhys = (*list)[n-1]
	*list = (*list)[:n-1]
	oldPhys = m.table[arch]
	m.table[arch] = newPhys
	return newPhys, oldPhys, true
}

// Rollback undoes a rename during a reverse ROB walk: the mapping of arch
// reverts to oldPhys and newPhys returns to its free list. Rollbacks must
// proceed youngest-first.
func (m *RenameMap) Rollback(arch, oldPhys, newPhys int) {
	if m.table[arch] != newPhys {
		panic(fmt.Sprintf("regfile: rollback of %d expected mapping %d, found %d",
			arch, newPhys, m.table[arch]))
	}
	m.table[arch] = oldPhys
	m.free(newPhys)
}

// Commit releases the previous mapping of a retiring µ-op's destination;
// the old physical register can no longer be referenced.
func (m *RenameMap) Commit(oldPhys int) {
	m.free(oldPhys)
}

func (m *RenameMap) free(phys int) {
	if phys < m.intPRF {
		m.intFree = append(m.intFree, phys)
	} else {
		m.fpFree = append(m.fpFree, phys)
	}
}

// LiveCheck verifies the free-list conservation invariant: every physical
// register is exactly one of {architecturally mapped, free, in-flight}.
// inflight is the number of physical registers currently held by
// uncommitted µ-ops (their newPhys allocations). It returns an error when
// the books do not balance; tests and debug builds call it.
func (m *RenameMap) LiveCheck(inflight int) error {
	mapped := make(map[int]bool, uop.NumArchRegs)
	for _, p := range m.table {
		if mapped[p] {
			return fmt.Errorf("regfile: physical register %d mapped twice", p)
		}
		mapped[p] = true
	}
	total := uop.NumArchRegs + len(m.intFree) + len(m.fpFree) + inflight
	if total != m.TotalPhys() {
		return fmt.Errorf("regfile: conservation violated: %d mapped + %d free INT + %d free FP + %d inflight != %d total",
			uop.NumArchRegs, len(m.intFree), len(m.fpFree), inflight, m.TotalPhys())
	}
	for _, p := range m.intFree {
		if mapped[p] {
			return fmt.Errorf("regfile: free INT register %d is also mapped", p)
		}
	}
	for _, p := range m.fpFree {
		if mapped[p] {
			return fmt.Errorf("regfile: free FP register %d is also mapped", p)
		}
	}
	return nil
}
