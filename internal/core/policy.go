package core

import (
	"specsched/internal/config"
	"specsched/internal/predict"
)

// allowSpecWakeup implements the paper's hit/miss arbitration: may this
// load wake its dependents speculatively (assuming an L1 hit)?
//
//   - Always Hit (SpecSched_*): yes, unconditionally.
//   - Global counter (§5.2, SpecSched_*_Ctr): the Alpha 21264's 4-bit
//     counter MSB decides.
//   - Filter + counter (§5.2, SpecSched_*_Filter): a per-PC sure-hit wakes,
//     a sure-miss stalls, and silenced/unknown entries defer to the global
//     counter.
//   - Criticality gating (§5.3, SpecSched_*_Crit): unless the filter says
//     sure-hit, dependents of a non-critical load are never woken
//     speculatively; critical loads fall through to the global counter.
func (c *Core) allowSpecWakeup(e *inst) bool {
	if !c.cfg.SpecSched {
		return false
	}
	switch c.cfg.HitMiss {
	case config.NeverHit:
		return false
	case config.AlwaysHit:
		if c.cfg.CriticalityGate && !c.crit.Critical(e.u.PC) {
			return false
		}
		return true
	case config.GlobalCounter:
		if c.cfg.CriticalityGate && !c.crit.Critical(e.u.PC) {
			return false
		}
		return c.gctr.SpeculateHit()
	case config.FilterAndCounter:
		switch c.filter.Predict(e.u.PC) {
		case predict.FilterSureHit:
			return true
		case predict.FilterSureMiss:
			return false
		default:
			if c.cfg.CriticalityGate && !c.crit.Critical(e.u.PC) {
				return false
			}
			return c.gctr.SpeculateHit()
		}
	default:
		return false
	}
}

// shiftSecondLoad decides whether a load issued as the non-first load of
// its group gets the one-cycle Schedule Shifting slack. Plain Shifting
// (§5.1) always shifts; the bank-predictor variant shifts only when this
// load is predicted to collide with a load already issued this cycle.
func (c *Core) shiftSecondLoad(e *inst) bool {
	if c.cfg.ScheduleShifting {
		return true
	}
	if !c.cfg.BankPredictShift {
		return false
	}
	bank, conf := c.bankp.Predict(e.u.PC)
	if !conf {
		// Unknown bank: shift conservatively, like plain Shifting.
		return true
	}
	for _, b := range c.loadBanksThisCycle {
		if b == bank {
			return true
		}
	}
	return false
}
