package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/trace"
	"specsched/internal/uop"
)

// TestTimingWheelRollover exercises the wheel beyond one revolution:
// entries scheduled past the ring size must stay parked through the
// intermediate visits of their slot and fire exactly at their cycle.
func TestTimingWheelRollover(t *testing.T) {
	w := newWheel[int](16, 2)
	size := int64(w.mask + 1)
	if size != 16 {
		t.Fatalf("wheel size = %d, want 16", size)
	}
	// Three entries hash to the same slot: due now, due next revolution,
	// due two revolutions out.
	w.schedule(5, 100)
	w.schedule(5+size, 200)
	w.schedule(5+2*size, 300)
	// An entry in a different slot must not be disturbed.
	w.schedule(7, 700)

	var got []int
	for now := int64(0); now <= 5+2*size; now++ {
		fired := w.collect(now, nil)
		for _, v := range fired {
			got = append(got, v)
		}
		switch now {
		case 5:
			if len(fired) != 1 || fired[0] != 100 {
				t.Fatalf("cycle %d fired %v, want [100]", now, fired)
			}
			if !w.busy(5) {
				t.Fatal("slot with future-revolution entries reported idle")
			}
		case 7:
			if len(fired) != 1 || fired[0] != 700 {
				t.Fatalf("cycle %d fired %v, want [700]", now, fired)
			}
		case 5 + size:
			if len(fired) != 1 || fired[0] != 200 {
				t.Fatalf("cycle %d fired %v, want [200]", now, fired)
			}
		case 5 + 2*size:
			if len(fired) != 1 || fired[0] != 300 {
				t.Fatalf("cycle %d fired %v, want [300]", now, fired)
			}
			if w.busy(5 + 2*size) {
				t.Fatal("fully drained slot still reports busy")
			}
		default:
			if len(fired) != 0 {
				t.Fatalf("cycle %d fired %v, want nothing", now, fired)
			}
		}
	}
	if len(got) != 4 {
		t.Fatalf("fired %v, want exactly 4 entries", got)
	}
}

// TestWheelNextBusy covers the occupancy-bitmap query feeding the
// quiescent-cycle skipper: empty wheel, horizon capping, due-now entries,
// and multi-word bitmap slots.
func TestWheelNextBusy(t *testing.T) {
	w := newWheel[int](128, 2)
	size := w.mask + 1
	if size != 128 {
		t.Fatalf("wheel size = %d, want 128", size)
	}
	if got := w.nextBusy(10, 1000); got != 1010 {
		t.Fatalf("empty wheel nextBusy = %d, want horizon 1010", got)
	}
	// Slot 100 lives in the second bitmap word.
	w.schedule(100, 1)
	if got := w.nextBusy(10, 1000); got != 100 {
		t.Fatalf("nextBusy = %d, want 100", got)
	}
	if got := w.nextBusy(10, 50); got != 60 {
		t.Fatalf("nextBusy beyond horizon = %d, want cap 60", got)
	}
	if got := w.nextBusy(100, 1000); got != 100 {
		t.Fatalf("due-now nextBusy = %d, want 100", got)
	}
	w.schedule(40, 2)
	if got := w.nextBusy(10, 1000); got != 40 {
		t.Fatalf("nextBusy = %d, want earliest 40", got)
	}
	if got := w.collect(40, nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("collect(40) = %v", got)
	}
	if got := w.nextBusy(41, 1000); got != 100 {
		t.Fatalf("nextBusy after collect = %d, want 100", got)
	}
}

// TestWheelNextBusyExactRevolution pins the aliasing cases: an entry
// scheduled exactly size cycles ahead shares its slot (and occupancy bit)
// with "now", and nextBusy must neither report it as due now nor lose it —
// across a full revolution of queries.
func TestWheelNextBusyExactRevolution(t *testing.T) {
	w := newWheel[int](16, 2)
	size := w.mask + 1 // 16
	now := int64(5)
	w.schedule(now+size, 42) // same slot as now, one revolution out
	if !w.busy(now) {
		t.Fatal("aliased slot must report busy (bitmap is an over-approximation)")
	}
	if got := w.nextBusy(now, 10*size); got != now+size {
		t.Fatalf("nextBusy = %d, want %d (not the aliased slot's current cycle)", got, now+size)
	}
	// Nothing fires until the entry's own cycle, even though its slot's
	// bit stays set the whole revolution.
	for c := now; c < now+size; c++ {
		if fired := w.collect(c, nil); len(fired) != 0 {
			t.Fatalf("cycle %d fired %v, want nothing before the revolution completes", c, fired)
		}
		if got := w.nextBusy(c, 10*size); got != now+size {
			t.Fatalf("cycle %d: nextBusy = %d, want %d", c, got, now+size)
		}
	}
	if fired := w.collect(now+size, nil); len(fired) != 1 || fired[0] != 42 {
		t.Fatalf("collect(%d) = %v, want [42]", now+size, fired)
	}
	if got := w.nextBusy(now+size, 10*size); got != now+11*size {
		t.Fatalf("drained wheel nextBusy = %d, want horizon", got)
	}
	if w.n != 0 {
		t.Fatalf("drained wheel still counts %d entries", w.n)
	}
}

// TestWheelBitmapWraparound schedules entries whose slot indices wrap both
// the ring and the occupancy bitmap's word boundary (slots 63/64 and the
// last slot), and checks the bits clear exactly when slots drain.
func TestWheelBitmapWraparound(t *testing.T) {
	w := newWheel[int](128, 1)
	size := w.mask + 1 // 128
	at := []int64{63, 64, size - 1, size, 2*size - 1}
	for i, a := range at {
		w.schedule(a, i)
	}
	if w.n != len(at) {
		t.Fatalf("entry count %d, want %d", w.n, len(at))
	}
	// Cycle size aliases slot 0; cycle 2*size-1 aliases slot size-1.
	var got []int
	for now := int64(0); now < 2*size; now++ {
		got = append(got, w.collect(now, nil)...)
	}
	if len(got) != len(at) {
		t.Fatalf("collected %v, want all %d entries", got, len(at))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("collected %v out of schedule order", got)
		}
	}
	for i := range w.bits {
		if w.bits[i] != 0 {
			t.Fatalf("bitmap word %d still set after draining: %b", i, w.bits[i])
		}
	}
	if w.n != 0 {
		t.Fatalf("drained wheel still counts %d entries", w.n)
	}
}

// TestReadyListOrderAndPrepend drives the three prepare paths (back
// extend, front prepend, interleaved merge) and checks the live window
// stays age-sorted.
func TestReadyListOrderAndPrepend(t *testing.T) {
	var l readyList
	mk := func(id int64) readyEntry {
		e := &inst{}
		e.dynID = id
		return readyEntry{dynID: id, e: e}
	}
	check := func(want ...int64) {
		t.Helper()
		live := l.live()
		if len(live) != len(want) {
			t.Fatalf("live len = %d, want %d", len(live), len(want))
		}
		for i, id := range want {
			if live[i].dynID != id {
				t.Fatalf("live[%d] = %d, want %d (%v)", i, live[i].dynID, id, live)
			}
		}
	}
	l.add(mk(30))
	l.add(mk(10))
	l.add(mk(20))
	l.prepare()
	check(10, 20, 30)
	// Back extend.
	l.add(mk(40))
	l.add(mk(50))
	l.prepare()
	check(10, 20, 30, 40, 50)
	// Consume a prefix the way issue does (front advance).
	l.off += 2
	l.n -= 2
	check(30, 40, 50)
	// Front prepend into the vacated slack.
	l.add(mk(5))
	l.add(mk(7))
	l.prepare()
	check(5, 7, 30, 40, 50)
	// Interleaved merge.
	l.add(mk(35))
	l.add(mk(6))
	l.prepare()
	check(5, 6, 7, 30, 35, 40, 50)
}

// stepWithInvariants single-steps a core, validating the event scheduler's
// structural invariants every cycle.
func stepWithInvariants(t *testing.T, c *Core, cycles int, label string) {
	t.Helper()
	if c.sched == nil {
		t.Fatalf("%s: core is not running the event scheduler", label)
	}
	for i := 0; i < cycles; i++ {
		c.Step()
		if msg := c.sched.checkInvariants(); msg != "" {
			t.Fatalf("%s: cycle %d: %s", label, i, msg)
		}
	}
}

// TestConsumerListUnlinkOnSquash runs squash-heavy workloads (branchy
// profiles under speculative scheduling, plus memory-order violations)
// while checking every cycle that squashFrom left no squashed µ-op on any
// consumer list and no corrupted back-links — the lists are walked through
// raw pointers, so a missed unlink would become a use-after-recycle.
func TestConsumerListUnlinkOnSquash(t *testing.T) {
	for _, tc := range []struct {
		wl     string
		preset string
	}{
		{"twolf", "SpecSched_4"},       // mispredict-heavy
		{"vortex", "SpecSched_4_Crit"}, // memory-order violations
		{"xalancbmk", "SpecSched_6"},   // deep replay window
		{"libquantum", "SpecSched_4"},  // miss replays
	} {
		p, err := trace.ByName(tc.wl)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Preset(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		c := MustNew(cfg, trace.New(p), p.Seed)
		stepWithInvariants(t, c, 12000, tc.preset+"/"+tc.wl)
		if c.run.Mispredicts == 0 {
			t.Fatalf("%s: no mispredictions — the squash path was never exercised", tc.wl)
		}
	}
}

// TestSchedInvariantsUnderSelectiveReplay covers the poison-propagation
// squash path, which re-parks transitive dependents of mis-scheduled loads.
func TestSchedInvariantsUnderSelectiveReplay(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replay = config.SelectiveReplay
	p, err := trace.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, trace.New(p), p.Seed)
	stepWithInvariants(t, c, 12000, "selective/libquantum")
	if c.run.Replayed() == 0 {
		t.Fatal("no replays — the selective squash path was never exercised")
	}
}

// TestMemDepWaiterWakeup pins the store-waiter list behavior: a load
// predicted dependent on a store must not issue before the store executes,
// and must become issuable the cycle it does. Observed end to end through
// the memdep-subscription machinery on a store-to-load workload.
func TestMemDepWaiterWakeup(t *testing.T) {
	p, err := trace.ByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, trace.New(p), p.Seed)
	r := c.Run(5000, 20000)
	if r.LateOperands != 0 {
		t.Fatalf("late operands with memdep waiters: %d", r.LateOperands)
	}
	if r.MemOrderViolations > r.Committed/100 {
		t.Fatalf("memdep wakeups not containing violations: %d of %d",
			r.MemOrderViolations, r.Committed)
	}
}

// TestEventSchedulerWakeupCounters sanity-checks the new throughput
// diagnostics: the event scheduler must report wakeups and events, and
// the scan implementation must report none.
func TestEventSchedulerWakeupCounters(t *testing.T) {
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []config.SchedulerImpl{config.SchedEvent, config.SchedScan} {
		cfg, err := config.Preset("SpecSched_4")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler = impl
		c := MustNew(cfg, trace.New(p), p.Seed)
		r := c.Run(2000, 10000)
		if impl == config.SchedEvent {
			if r.SchedWakeups == 0 || r.SchedEvents == 0 {
				t.Fatalf("event scheduler reported no wakeups/events: %+v", r)
			}
			if r.WakeupsPerCycle() <= 0 || r.EventsPerCycle() <= 0 {
				t.Fatal("per-cycle diagnostics are zero")
			}
		} else if r.SchedWakeups != 0 || r.SchedEvents != 0 {
			t.Fatalf("scan scheduler reported scheduler events: %+v", r)
		}
	}
}

// TestSubscribePanicsOnReadyUOp documents the subscribe precondition.
func TestSubscribePanicsOnReadyUOp(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, trace.NewStreamSum(4<<10), 1)
	e := c.newInst()
	e.u = uop.UOp{Class: uop.ClassALU, Src1: uop.RegNone, Src2: uop.RegNone, Dest: uop.RegNone}
	e.src1Phys, e.src2Phys = -1, -1
	defer func() {
		if recover() == nil {
			t.Fatal("subscribe on a ready µ-op did not panic")
		}
	}()
	c.sched.subscribe(e)
}
