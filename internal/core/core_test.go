package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/uop"
)

// runKernel simulates a kernel stream under a preset and returns the
// measurement-window statistics.
func runKernel(t *testing.T, cfgName string, s uop.Stream, warm, measure int64) *stats.Run {
	t.Helper()
	cfg, err := config.Preset(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, s, 42)
	c.SetWorkloadName("kernel")
	return c.Run(warm, measure)
}

func runProfile(t *testing.T, cfgName, wl string, warm, measure int64) *stats.Run {
	t.Helper()
	p, err := trace.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Preset(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, trace.New(p), p.Seed)
	c.SetWorkloadName(wl)
	return c.Run(warm, measure)
}

func TestDeterminism(t *testing.T) {
	a := runProfile(t, "SpecSched_4", "gzip", 5000, 20000)
	b := runProfile(t, "SpecSched_4", "gzip", 5000, 20000)
	if *a != *b {
		t.Fatalf("two identical simulations diverged:\n%+v\n%+v", a, b)
	}
}

func TestStreamSumThroughput(t *testing.T) {
	// An L1-resident streaming reduction on the ideal machine should
	// sustain high IPC: 10 µ-ops per iteration, loads independent.
	r := runKernel(t, "Baseline_0", trace.NewStreamSum(8<<10), 5000, 30000)
	if ipc := r.IPC(); ipc < 2.0 {
		t.Fatalf("StreamSum IPC = %.2f, want >= 2 on Baseline_0", ipc)
	}
	if r.LateOperands != 0 {
		t.Fatalf("LateOperands = %d, want 0", r.LateOperands)
	}
}

func TestPointerChaseLatencyBound(t *testing.T) {
	// A DRAM pointer chase is bound by memory latency: with 3 µ-ops per
	// ~100+-cycle hop, IPC must be well under 0.1.
	r := runKernel(t, "Baseline_0", trace.NewPointerChase(7, 1<<18), 2000, 10000)
	if ipc := r.IPC(); ipc > 0.12 {
		t.Fatalf("pointer chase IPC = %.3f, want < 0.12", ipc)
	}
}

func TestChaseL1ResidentFasterThanDRAM(t *testing.T) {
	small := runKernel(t, "Baseline_0", trace.NewPointerChase(7, 64), 2000, 10000)
	big := runKernel(t, "Baseline_0", trace.NewPointerChase(7, 1<<18), 2000, 10000)
	if small.IPC() <= 2*big.IPC() {
		t.Fatalf("L1-resident chase (%.3f) not clearly faster than DRAM chase (%.3f)",
			small.IPC(), big.IPC())
	}
}

func TestBaselinesNeverReplay(t *testing.T) {
	for _, cfg := range []string{"Baseline_0", "Baseline_4", "Baseline_6"} {
		r := runProfile(t, cfg, "xalancbmk", 5000, 20000)
		if r.Replayed() != 0 {
			t.Fatalf("%s replayed %d µ-ops; conservative scheduling must never replay",
				cfg, r.Replayed())
		}
	}
}

func TestFig3ConservativeSlowdownShape(t *testing.T) {
	// Fig. 3: without speculative scheduling, performance falls as the
	// issue-to-execute delay grows. The pointer-dependent xalancbmk
	// profile stresses load-to-use chains.
	ipc := map[string]float64{}
	for _, cfg := range []string{"Baseline_0", "Baseline_2", "Baseline_4", "Baseline_6"} {
		ipc[cfg] = runProfile(t, cfg, "xalancbmk", 5000, 30000).IPC()
	}
	if !(ipc["Baseline_0"] > ipc["Baseline_2"] && ipc["Baseline_2"] > ipc["Baseline_4"] &&
		ipc["Baseline_4"] > ipc["Baseline_6"]) {
		t.Fatalf("conservative scheduling should degrade monotonically with delay: %v", ipc)
	}
	if ipc["Baseline_6"] > 0.92*ipc["Baseline_0"] {
		t.Fatalf("Baseline_6 only %.1f%% below Baseline_0; Fig 3 expects a clear drop",
			100*(1-ipc["Baseline_6"]/ipc["Baseline_0"]))
	}
}

func TestSpecSchedBeatsConservative(t *testing.T) {
	// The point of speculative scheduling: at delay 4, SpecSched (dual
	// ported) recovers performance on hit-dominated workloads and beats
	// Baseline_4. (On xalancbmk — the paper's one exception, with ~half
	// the loads missing — always-hit speculation legitimately loses.)
	for _, wl := range []string{"gzip", "swim"} {
		cons := runProfile(t, "Baseline_4", wl, 5000, 30000)
		spec := runProfile(t, "SpecSched_4_dual", wl, 5000, 30000)
		if spec.IPC() <= cons.IPC() {
			t.Fatalf("%s: SpecSched_4_dual (%.3f) does not beat Baseline_4 (%.3f)",
				wl, spec.IPC(), cons.IPC())
		}
	}
}

func TestStencilBankConflictsAndShifting(t *testing.T) {
	// The stencil kernel issues same-bank load pairs: on the banked L1
	// it must suffer bank-conflict replays, and Schedule Shifting must
	// remove the vast majority of them (§5.1: -74.8%).
	base := runKernel(t, "SpecSched_4", trace.NewStencil(8<<10), 5000, 30000)
	if base.ReplayedBank == 0 {
		t.Fatal("stencil on banked L1 produced no bank-conflict replays")
	}
	shift := runKernel(t, "SpecSched_4_Shift", trace.NewStencil(8<<10), 5000, 30000)
	if shift.ReplayedBank > base.ReplayedBank/3 {
		t.Fatalf("Schedule Shifting left %d of %d bank replays (> 1/3)",
			shift.ReplayedBank, base.ReplayedBank)
	}
	if shift.IPC() < base.IPC() {
		t.Fatalf("Shifting lost performance on a conflict-heavy kernel: %.3f vs %.3f",
			shift.IPC(), base.IPC())
	}
}

func TestDualPortedHasNoBankReplays(t *testing.T) {
	r := runKernel(t, "SpecSched_4_dual", trace.NewStencil(8<<10), 5000, 30000)
	if r.ReplayedBank != 0 || r.BankConflicts != 0 {
		t.Fatalf("dual-ported L1 reported bank conflicts: replays=%d conflicts=%d",
			r.ReplayedBank, r.BankConflicts)
	}
}

func TestFilterCutsMissReplays(t *testing.T) {
	// §5.2: on a miss-heavy workload the per-PC filter plus global
	// counter removes most replays caused by L1 misses.
	base := runProfile(t, "SpecSched_4", "libquantum", 5000, 30000)
	filt := runProfile(t, "SpecSched_4_Filter", "libquantum", 5000, 30000)
	if base.ReplayedMiss == 0 {
		t.Fatal("libquantum produced no miss replays under Always Hit")
	}
	if filt.ReplayedMiss > base.ReplayedMiss/2 {
		t.Fatalf("filter left %d of %d miss replays (> 1/2)",
			filt.ReplayedMiss, base.ReplayedMiss)
	}
}

func TestCritRemovesMostReplays(t *testing.T) {
	// §5.3 headline: SpecSched_4_Crit removes ~90% of all replays.
	var baseTot, critTot int64
	for _, wl := range []string{"xalancbmk", "libquantum", "swim", "gzip"} {
		baseTot += runProfile(t, "SpecSched_4", wl, 5000, 25000).Replayed()
		critTot += runProfile(t, "SpecSched_4_Crit", wl, 5000, 25000).Replayed()
	}
	if baseTot == 0 {
		t.Fatal("no replays to remove")
	}
	if critTot > baseTot/4 {
		t.Fatalf("Crit left %d of %d replays (want < 25%%)", critTot, baseTot)
	}
}

func TestCritReducesIssuedUOps(t *testing.T) {
	// Headline: -13.4% issued µ-ops for SpecSched_4_Crit vs SpecSched_4.
	var baseIss, critIss int64
	for _, wl := range []string{"xalancbmk", "libquantum", "mcf"} {
		baseIss += runProfile(t, "SpecSched_4", wl, 5000, 25000).Issued
		critIss += runProfile(t, "SpecSched_4_Crit", wl, 5000, 25000).Issued
	}
	if critIss >= baseIss {
		t.Fatalf("Crit issued more µ-ops (%d) than Always Hit (%d)", critIss, baseIss)
	}
}

func TestNoLateOperandsAcrossConfigs(t *testing.T) {
	// Scoreboard consistency: no µ-op may reach Execute before its
	// sources are on the bypass, under any configuration.
	for _, cfg := range []string{"Baseline_4", "SpecSched_4", "SpecSched_4_Shift",
		"SpecSched_4_Ctr", "SpecSched_4_Filter", "SpecSched_4_Combined", "SpecSched_4_Crit",
		"SpecSched_2", "SpecSched_6"} {
		for _, wl := range []string{"gzip", "swim", "mcf", "xalancbmk"} {
			r := runProfile(t, cfg, wl, 3000, 12000)
			if r.LateOperands != 0 {
				t.Errorf("%s/%s: %d late operands", cfg, wl, r.LateOperands)
			}
		}
	}
}

func TestCommittedMatchesCorrectPath(t *testing.T) {
	// The committed count equals the requested measurement length and the
	// committed stream equals the correct path (spot check via a wrapped
	// generator recording what was handed out).
	p, _ := trace.ByName("gzip")
	cfg, _ := config.Preset("SpecSched_4")
	c := MustNew(cfg, trace.New(p), p.Seed)
	r := c.Run(1000, 15000)
	// The run stops at the first commit cycle reaching the target; up to
	// RetireWidth-1 extra µ-ops may retire in that final group.
	if r.Committed < 15000 || r.Committed >= 15000+int64(cfg.RetireWidth) {
		t.Fatalf("committed %d, want 15000..15007", r.Committed)
	}
	if r.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
}

func TestIssuedAtLeastUnique(t *testing.T) {
	r := runProfile(t, "SpecSched_4", "xalancbmk", 5000, 20000)
	if r.Issued < r.Unique {
		t.Fatalf("issued (%d) < unique (%d)", r.Issued, r.Unique)
	}
	// Unique may trail Committed by the in-flight window (µ-ops issued
	// during warmup committing inside the measurement window).
	if r.Unique+1000 < r.Committed {
		t.Fatalf("unique issued (%d) far below committed (%d): committed µ-ops must issue",
			r.Unique, r.Committed)
	}
}

func TestBranchMispredictionsCostCycles(t *testing.T) {
	// A random-branch-heavy profile must show mispredictions and a lower
	// IPC than a loop-dominated profile of similar memory behaviour.
	hard := runProfile(t, "Baseline_0", "twolf", 5000, 20000)
	if hard.Mispredicts == 0 {
		t.Fatal("twolf (random branches) has zero mispredictions")
	}
	if hard.MPKI() < 3 {
		t.Fatalf("twolf MPKI = %.1f, expected a branchy profile", hard.MPKI())
	}
}

func TestMemOrderViolationsTrainStoreSets(t *testing.T) {
	// Profiles with shared load/store regions trigger occasional memory
	// order violations; Store Sets must keep them rare (they train on
	// each one). We only require the machine to survive and count them.
	r := runProfile(t, "SpecSched_4", "vortex", 5000, 30000)
	if r.MemOrderViolations > r.Committed/100 {
		t.Fatalf("violations = %d for %d committed; store sets not containing them",
			r.MemOrderViolations, r.Committed)
	}
}

func TestGlobalCounterConfigRuns(t *testing.T) {
	r := runProfile(t, "SpecSched_4_Ctr", "libquantum", 5000, 20000)
	// With a near-100% miss workload the global counter must stop
	// speculative wakeup most of the time.
	if r.LoadsSpecWakeup > r.LoadsDelayedWakeup {
		t.Fatalf("global counter kept speculating on a miss-dominated workload: spec=%d delayed=%d",
			r.LoadsSpecWakeup, r.LoadsDelayedWakeup)
	}
}

func TestIQRetentionAblationDegrades(t *testing.T) {
	// §3.1: holding IQ entries until correct execution throttles a
	// 60-entry scheduler relative to the recovery-buffer scheme.
	cfg, _ := config.Preset("SpecSched_4")
	p, _ := trace.ByName("xalancbmk")
	rec := MustNew(cfg, trace.New(p), p.Seed).Run(5000, 25000)

	cfg2 := cfg
	cfg2.Replay = config.IQRetention
	ret := MustNew(cfg2, trace.New(p), p.Seed).Run(5000, 25000)
	// Retention holds entries longer and must never win; on this window
	// the penalty can be small, so allow noise but not an advantage.
	if ret.IPC() > rec.IPC()*1.02 {
		t.Fatalf("IQ retention (%.3f) outperforms the recovery buffer (%.3f)",
			ret.IPC(), rec.IPC())
	}
}

func TestSetInterleaveRuns(t *testing.T) {
	cfg, _ := config.Preset("SpecSched_4")
	cfg.L1Interleave = config.SetInterleave
	r := MustNew(cfg, trace.NewStencil(8<<10), 1).Run(3000, 15000)
	if r.Committed == 0 {
		t.Fatal("set-interleaved config did not run")
	}
	if r.LateOperands != 0 {
		t.Fatalf("late operands under set interleaving: %d", r.LateOperands)
	}
}

func TestWrongPathUOpsNeverCommit(t *testing.T) {
	// Committed equals the measure length by construction; additionally
	// the mix of committed vs issued shows wrong-path work happened (on a
	// mispredict-heavy profile unique > committed).
	r := runProfile(t, "SpecSched_4", "twolf", 5000, 20000)
	if r.Unique <= r.Committed {
		t.Fatalf("expected wrong-path issue on twolf: unique=%d committed=%d",
			r.Unique, r.Committed)
	}
}

func TestShiftingSecondLoadPromise(t *testing.T) {
	// Direct policy check: with ScheduleShifting, the second load issued
	// in a cycle gets a one-cycle-later promise. We observe it indirectly:
	// on a dual-ported cache (no conflicts possible), Shifting should not
	// increase replays, only slightly delay second loads.
	cfg, _ := config.Preset("SpecSched_4_dual")
	cfg.ScheduleShifting = true
	s := MustNew(cfg, trace.NewStencil(8<<10), 1).Run(3000, 15000)
	if s.ReplayedBank != 0 {
		t.Fatalf("dual-ported + shifting produced %d bank replays", s.ReplayedBank)
	}
}

func TestSelectiveReplayFewerReplaysAndNotSlower(t *testing.T) {
	// §2.1: selective replay cancels only the dependence chain; it must
	// replay (far) fewer µ-ops than the Alpha-style squash and must not
	// lose performance.
	p, _ := trace.ByName("xalancbmk")
	alpha, _ := config.Preset("SpecSched_4")
	sel := alpha
	sel.Replay = config.SelectiveReplay

	ra := MustNew(alpha, trace.New(p), p.Seed).Run(5000, 25000)
	rs := MustNew(sel, trace.New(p), p.Seed).Run(5000, 25000)
	if rs.Replayed() >= ra.Replayed() {
		t.Fatalf("selective replayed %d µ-ops, alpha %d; selective must replay fewer",
			rs.Replayed(), ra.Replayed())
	}
	if rs.IPC() < ra.IPC() {
		t.Fatalf("selective replay slower (%.3f) than full squash (%.3f)", rs.IPC(), ra.IPC())
	}
	if rs.LateOperands != 0 {
		t.Fatalf("selective replay broke the scoreboard: %d late operands", rs.LateOperands)
	}
}

func TestSelectiveReplayAgnosticism(t *testing.T) {
	// The paper's mechanisms are replay-scheme-agnostic: Crit must slash
	// replays under selective replay too.
	p, _ := trace.ByName("libquantum")
	base, _ := config.Preset("SpecSched_4")
	base.Replay = config.SelectiveReplay
	crit, _ := config.Preset("SpecSched_4_Crit")
	crit.Replay = config.SelectiveReplay

	rb := MustNew(base, trace.New(p), p.Seed).Run(5000, 25000)
	rc := MustNew(crit, trace.New(p), p.Seed).Run(5000, 25000)
	if rb.Replayed() == 0 {
		t.Fatal("no replays under selective replay on a miss-heavy workload")
	}
	if rc.Replayed() > rb.Replayed()/3 {
		t.Fatalf("Crit under selective replay left %d of %d replays", rc.Replayed(), rb.Replayed())
	}
}

func TestBankPredictShiftMatchesShiftOnConflicts(t *testing.T) {
	// The stencil's loads have perfectly stable banks, so the Yoaz-style
	// predictor should remove (nearly) as many bank replays as plain
	// Shifting while shifting fewer loads overall.
	base := runKernel(t, "SpecSched_4", trace.NewStencil(8<<10), 5000, 30000)
	pred := runKernel(t, "SpecSched_4_BankPred", trace.NewStencil(8<<10), 5000, 30000)
	if base.ReplayedBank == 0 {
		t.Fatal("no bank replays to remove")
	}
	if pred.ReplayedBank > base.ReplayedBank/3 {
		t.Fatalf("bank predictor left %d of %d bank replays", pred.ReplayedBank, base.ReplayedBank)
	}
	if pred.IPC() < base.IPC() {
		t.Fatalf("bank-predicted shifting slower (%.3f) than no shifting (%.3f)",
			pred.IPC(), base.IPC())
	}
}

func TestBankPredictShiftBeatsAlwaysShiftOnConflictFreeLoads(t *testing.T) {
	// On a stream whose paired loads never collide, plain Shifting taxes
	// every second load; the predictor should learn the banks and stop
	// shifting. Compare the spec-wakeup promise tax via IPC.
	shift := runKernel(t, "SpecSched_4_Shift", trace.NewStreamSum(8<<10), 5000, 30000)
	pred := runKernel(t, "SpecSched_4_BankPred", trace.NewStreamSum(8<<10), 5000, 30000)
	if pred.IPC() < shift.IPC()*0.98 {
		t.Fatalf("bank predictor (%.3f) clearly slower than always-shift (%.3f) on conflict-free loads",
			pred.IPC(), shift.IPC())
	}
}
