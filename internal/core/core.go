// Package core implements the paper's contribution: a cycle-level model of
// a 6-issue out-of-order superscalar with *speculative scheduling* — µ-ops
// are issued IssueToExecuteDelay+1 cycles before they execute, dependents
// of loads are woken assuming an L1 hit, and scheduling misspeculations
// (L1 misses, L1 bank conflicts) squash the in-flight issue groups into a
// recovery buffer that replays with priority over the scheduler (§3.1,
// §4). On top of the baseline speculative scheduler it implements the
// paper's three mitigations: Schedule Shifting (§5.1), hit/miss filtering
// with a global counter and a per-PC filter (§5.2), and criticality-gated
// wakeup (§5.3).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"specsched/internal/bpred"
	"specsched/internal/cache"
	"specsched/internal/config"
	"specsched/internal/dram"
	"specsched/internal/memdep"
	"specsched/internal/predict"
	"specsched/internal/regfile"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/uop"
)

// ErrStreamEnded reports that the µ-op stream was exhausted before the
// requested simulation window completed — the pipeline drained, nothing
// more can commit. The synthetic experiment streams are infinite and never
// trigger it; a recorded trace (internal/traceio) that is shorter than the
// simulation window it is asked to drive does.
var ErrStreamEnded = errors.New("core: µ-op stream ended before the simulation window completed")

// redirectBubble is the fetch-redirect latency after a branch resolves,
// calibrated together with FrontendDepth so the minimum misprediction
// penalty matches the paper's 20 cycles.
const redirectBubble = 2

// dramAdapter exposes the DRAM model through the cache.MemBackend
// interface.
type dramAdapter struct{ d *dram.DRAM }

func (a dramAdapter) Access(addr, pc uint64, now int64, write bool) int64 {
	return a.d.Access(addr, now, write)
}

func (a dramAdapter) NextCompletion(now int64) int64 {
	return a.d.NextCompletion(now)
}

// Core is one simulated processor running one workload. It is not safe for
// concurrent use; run one Core per goroutine.
type Core struct {
	cfg config.CoreConfig

	// Substrates.
	tage   *bpred.TAGE
	btb    *bpred.BTB
	ss     *memdep.StoreSets
	l1     *cache.L1D
	l2     *cache.L2
	mem    *dram.DRAM
	rmap   *regfile.RenameMap
	gctr   *predict.GlobalCounter
	filter *predict.Filter
	crit   *predict.Criticality
	bankp  *predict.BankPredictor

	stream uop.Stream
	// streamInto is stream's optional copy-free fast path, resolved once
	// at construction.
	streamInto uop.StreamInto
	wp         *trace.WrongPath

	cycle int64

	// Physical register scoreboard. specReady is the cycle at which the
	// scheduler may select consumers; actReady the cycle the value is on
	// the bypass network at the Execute stage.
	specReady []int64
	actReady  []int64

	// Windows. rob is a FIFO (index 0 = head = oldest).
	rob      []*inst
	iq       []*inst
	iqCount  int
	lq       []*inst
	sq       []*inst
	recovery []*inst
	inflight []*inst // issued, not yet executed

	frontQ    []*inst
	refetchQ  []uop.UOp
	wrongPath bool
	nextDynID int64
	// dispSeq is the next dispatch sequence number (see instState.seq);
	// squashFrom rolls it back over squashed ROB suffixes.
	dispSeq int64

	fetchResume int64 // no fetch before this cycle
	issueBlock  int64 // issue blocked at exactly this cycle (replay handling)

	events []replayEvent

	// sched is the event-driven scheduler state (config.SchedEvent); nil
	// selects the legacy scan implementation.
	sched *eventSched

	// Pre-sized buffers backing the ROB/front-end FIFOs and the refetch
	// queue so the steady-state simulate loop allocates nothing: the FIFOs
	// re-slice from the front and copy down when their tail reaches the
	// buffer end; the refetch queue alternates between two buffers on
	// rebuild.
	robBuf        []*inst
	frontBuf      []*inst
	lqBuf         []*inst
	sqBuf         []*inst
	refetchBase   []uop.UOp
	refetchSpare  []uop.UOp
	squashRefetch []uop.UOp

	// Unpipelined units: earliest next issue cycle.
	divFree   int64
	fpDivFree [2]int64

	// loadBanksThisCycle records the predicted banks of loads issued in
	// the current cycle (bank-predictor Shifting variant).
	loadBanksThisCycle []int

	// pool recycles inst allocations; graveyard holds squashed entries
	// until the next cycle boundary so no in-flight iteration can observe
	// a recycled instruction. snapPool recycles the branch-history
	// snapshots branches carry.
	pool      []*inst
	graveyard []*inst
	snapPool  []*bpred.Snapshot

	// Measurement.
	run           *stats.Run
	committed     int64 // total committed µ-ops since construction
	lastCommitted int64 // deadlock watchdog
	lastProgress  int64

	// heartbeat, when non-nil, receives the current simulated cycle at
	// every cancellation poll of the step loop (see SetHeartbeat) — the
	// liveness signal behind the sweep pool's stall watchdog.
	heartbeat *atomic.Int64

	// streamDone records that the correct-path µ-op stream reported
	// exhaustion. The experiment streams are infinite, but recorded traces
	// (internal/traceio) are not: once the pipeline has drained past the
	// last recorded µ-op, stepTo returns ErrStreamEnded instead of letting
	// the deadlock watchdog trip.
	streamDone bool

	// CommitHook, when non-nil, is invoked for every retiring µ-op in
	// commit order — the architectural instruction stream. Used by tests
	// (commit-order invariants) and tools (trace dumping).
	CommitHook func(u uop.UOp)

	// missThisCycle and loadThisCycle feed the Alpha global counter: it
	// is decremented by two on cycles where an L1 miss takes place and
	// incremented by one on other cycles with cache activity. Ticking it
	// on load-free cycles would let sparse misses (low-IPC memory-bound
	// phases) saturate it high, defeating the mechanism the paper
	// evaluates, so idle cycles leave it untouched.
	missThisCycle bool
	loadThisCycle bool
}

// New builds a core with the given configuration running the given µ-op
// stream. wpSeed seeds the wrong-path filler generator.
func New(cfg config.CoreConfig, stream uop.Stream, wpSeed uint64) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:    cfg,
		stream: stream,
		wp:     trace.NewWrongPath(wpSeed, 4<<10),
		tage:   bpred.NewTAGE(&cfg),
		btb:    bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ss:     memdep.New(1024, 1024),
		mem:    dram.New(cfg.DRAM),
		rmap:   regfile.New(cfg.IntPRF, cfg.FPPRF),
		gctr:   predict.NewGlobalCounter(),
		filter: predict.NewFilter(cfg.FilterEntries, cfg.FilterResetInterval, cfg.FilterNoSilence),
		crit:   predict.NewCriticality(cfg.CritEntries, cfg.CritCtrBits),
		bankp:  predict.NewBankPredictor(max(cfg.BankPredEntries, 64)),
		run:    &stats.Run{Workload: "?", Config: cfg.Name},
	}
	c.l2 = cache.NewL2(&cfg, dramAdapter{c.mem})
	c.l1 = cache.NewL1D(&cfg, c.l2)
	if si, ok := stream.(uop.StreamInto); ok {
		c.streamInto = si
	}
	n := c.rmap.TotalPhys()
	c.specReady = make([]int64, n)
	c.actReady = make([]int64, n)
	c.issueBlock = -1
	c.robBuf = make([]*inst, 0, 2*cfg.ROBEntries)
	c.rob = c.robBuf
	frontCap := c.frontCap()
	c.frontBuf = make([]*inst, 0, 2*frontCap+cfg.FetchWidth)
	c.frontQ = c.frontBuf
	c.lqBuf = make([]*inst, 0, 2*cfg.LQEntries)
	c.lq = c.lqBuf
	c.sqBuf = make([]*inst, 0, 2*cfg.SQEntries)
	c.sq = c.sqBuf
	// Pre-size the pools and squash scratch buffers to their structural
	// bounds so the steady-state simulate loop never allocates: at most
	// ROB + front-end µ-ops are live, another window's worth can sit in
	// the graveyard for one cycle, and a squash re-queues at most one
	// window of correct-path µ-ops.
	window := cfg.ROBEntries + frontCap + cfg.FetchWidth
	arena := make([]inst, 2*window)
	c.pool = make([]*inst, 0, 4*window)
	for i := range arena {
		c.pool = append(c.pool, &arena[i])
	}
	snaps := make([]bpred.Snapshot, window)
	c.snapPool = make([]*bpred.Snapshot, 0, 2*window)
	for i := range snaps {
		c.snapPool = append(c.snapPool, &snaps[i])
	}
	c.squashRefetch = make([]uop.UOp, 0, window)
	c.refetchBase = make([]uop.UOp, 0, 2*window)
	c.refetchSpare = make([]uop.UOp, 0, 2*window)
	c.graveyard = make([]*inst, 0, 2*window)
	if cfg.Scheduler == config.SchedEvent {
		c.sched = newEventSched(c)
	}
	return c, nil
}

// publishSpecReady writes the speculative scoreboard and, under the
// event-driven scheduler, schedules the consumer wakeup the write implies.
// Every specReady store in shared code must go through here.
func (c *Core) publishSpecReady(p int, t int64) {
	c.specReady[p] = t
	if c.sched != nil {
		c.sched.onPublish(p, t)
	}
}

// robAppend appends to the ROB FIFO, copying the live window back to the
// start of the backing buffer when the tail reaches its end (the head is
// consumed by re-slicing in commit). Amortized alloc-free.
func (c *Core) robAppend(e *inst) {
	if len(c.rob) == cap(c.rob) {
		n := copy(c.robBuf[:cap(c.robBuf)], c.rob)
		c.rob = c.robBuf[:n]
	}
	c.rob = append(c.rob, e)
}

// frontAppend is robAppend for the front-end delay queue.
func (c *Core) frontAppend(e *inst) {
	if len(c.frontQ) == cap(c.frontQ) {
		n := copy(c.frontBuf[:cap(c.frontBuf)], c.frontQ)
		c.frontQ = c.frontBuf[:n]
	}
	c.frontQ = append(c.frontQ, e)
}

// lqAppend and sqAppend are robAppend for the load and store queues, whose
// heads are consumed by removeOldest at commit.
func (c *Core) lqAppend(e *inst) {
	if len(c.lq) == cap(c.lq) {
		n := copy(c.lqBuf[:cap(c.lqBuf)], c.lq)
		c.lq = c.lqBuf[:n]
	}
	c.lq = append(c.lq, e)
}

func (c *Core) sqAppend(e *inst) {
	if len(c.sq) == cap(c.sq) {
		n := copy(c.sqBuf[:cap(c.sqBuf)], c.sq)
		c.sq = c.sqBuf[:n]
	}
	c.sq = append(c.sq, e)
}

// insertRecovery inserts one squashed µ-op into the age-ordered recovery
// buffer (the event-driven replacement for batch mergeByAge).
func (c *Core) insertRecovery(e *inst) {
	c.recovery = append(c.recovery, e)
	for i := len(c.recovery) - 1; i > 0 && c.recovery[i-1].dynID > e.dynID; i-- {
		c.recovery[i] = c.recovery[i-1]
		c.recovery[i-1] = e
	}
}

// MustNew is New for known-good configurations (presets); it panics on
// configuration errors.
func MustNew(cfg config.CoreConfig, stream uop.Stream, wpSeed uint64) *Core {
	c, err := New(cfg, stream, wpSeed)
	if err != nil {
		panic(err)
	}
	return c
}

// SetWorkloadName labels the statistics record.
func (c *Core) SetWorkloadName(name string) { c.run.Workload = name }

// SetHeartbeat registers a counter the step loop stores the current
// simulated cycle into, piggybacked on the existing cancellation poll
// (every cancelPollCycles busy cycles, so it costs nothing extra on the
// hot path, and only with a cancelable context). A watchdog reading the
// counter can distinguish a slow-but-progressing cell (heartbeats advance)
// from a hung one (heartbeats freeze): a core stuck inside a single Step —
// or a cell stuck before the core ever starts stepping — never advances
// it. Pass nil to detach.
func (c *Core) SetHeartbeat(hb *atomic.Int64) { c.heartbeat = hb }

// Stats returns the live statistics record for the current measurement
// window.
func (c *Core) Stats() *stats.Run { return c.run }

// Cycle returns the current cycle number.
func (c *Core) Cycle() int64 { return c.cycle }

// StreamExhausted reports whether the µ-op stream has reported
// exhaustion. A run that completed its window with this set consumed the
// stream's final µ-op mid-window: for a recorded trace that means fetch
// wanted µ-ops the recording does not have, so the machine's fetch-ahead —
// and therefore its statistics — can diverge from a live run. Callers
// replaying traces must treat it as an error even when the window
// committed fully.
func (c *Core) StreamExhausted() bool { return c.streamDone }

// delay returns the issue-to-execute delay D.
func (c *Core) delay() int64 { return int64(c.cfg.IssueToExecuteDelay) }

// Step advances the simulation by one cycle. Pipeline phases run in
// reverse order so each stage consumes the previous cycle's products.
// Zero steady-state allocations (TestSteadyStateZeroAllocs) — enforced
// statically by specschedlint on top of the runtime guard.
//
//specsched:hotpath
func (c *Core) Step() {
	if len(c.graveyard) > 0 {
		c.pool = append(c.pool, c.graveyard...) //lint:allow hotpathalloc(recycle into the pool the µ-ops came from: both slices are sized to RobSize at construction and their lengths are complementary)
		c.graveyard = c.graveyard[:0]
	}
	c.commit()
	c.missThisCycle = false
	c.loadThisCycle = false
	if c.sched != nil {
		c.sched.execute()
	} else {
		c.execute()
	}
	if c.loadThisCycle {
		c.gctr.Tick(c.missThisCycle)
	}
	if c.sched != nil {
		c.sched.processEvents()
	} else {
		c.processEvents()
	}
	if c.sched != nil {
		c.sched.issue()
	} else {
		c.issue()
	}
	c.dispatch()
	c.fetch()
	c.run.Cycles++
	c.run.IQOccupancySum += int64(c.iqCount)
	c.run.ROBOccupancySum += int64(len(c.rob))
	c.cycle++
}

// Run simulates until warmup µ-ops have committed, resets the statistics,
// then simulates until measure more µ-ops commit, and returns the
// measurement window's statistics.
func (c *Core) Run(warmup, measure int64) *stats.Run {
	r, err := c.RunContext(context.Background(), warmup, measure)
	if err != nil {
		// The background context never cancels, so the only reachable
		// error is ErrStreamEnded from a too-short finite stream — callers
		// running finite traces must use RunContext.
		panic(err)
	}
	return r
}

// RunContext is Run with cooperative cancellation: the step loop polls the
// context every cancelPollCycles simulated busy cycles (sub-millisecond in
// wall-clock terms) and returns the context's cause error, leaving the core
// in a consistent mid-simulation state — a later RunContext call resumes
// where the canceled one stopped. An uncancelable context pays no polling
// cost.
func (c *Core) RunContext(ctx context.Context, warmup, measure int64) (*stats.Run, error) {
	if err := c.stepTo(ctx, c.committed+warmup); err != nil {
		return nil, err
	}
	c.ResetStats()
	if err := c.stepTo(ctx, c.committed+measure); err != nil {
		return nil, err
	}
	return c.run, nil
}

// ResetStats zeroes the statistics record while keeping all architectural
// and microarchitectural state (used at the warmup/measure boundary).
func (c *Core) ResetStats() {
	name, cfgName := c.run.Workload, c.run.Config
	*c.run = stats.Run{Workload: name, Config: cfgName}
}

// cancelPollCycles is how many step-loop iterations (busy cycles; skipped
// quiescent spans count as one) run between context-cancellation polls. At
// the simulator's worst-case ~5M busy cycles/sec this bounds the response
// to a cancel at well under a millisecond of wall clock, while keeping the
// poll amortized to nothing on the hot path.
const cancelPollCycles = 4096

// stepTo simulates until targetCommitted µ-ops have committed, or until ctx
// is canceled (returning the cancellation cause). The scan scheduler steps
// every cycle; the event scheduler, when config.TimeSkip is on, first jumps
// any provably quiescent span straight to the next interesting cycle (see
// skipQuiescent) and then executes the cycle where something can actually
// happen — per-cycle semantics inside Step are untouched, so
// single-stepping tests and the scan path see the exact same machine.
// The alloc_test.go stepTo guard pins this loop at zero steady-state
// allocations.
//
//specsched:hotpath
func (c *Core) stepTo(ctx context.Context, targetCommitted int64) error {
	skip := c.sched != nil && c.cfg.TimeSkip
	cancelable := ctx.Done() != nil
	poll := cancelPollCycles
	c.lastProgress = c.cycle
	if hb := c.heartbeat; hb != nil && cancelable {
		// First beat before the first step: "simulation has started" is
		// itself progress a watchdog should see.
		hb.Store(c.cycle)
	}
	for c.committed < targetCommitted {
		if cancelable {
			if poll--; poll <= 0 {
				if ctx.Err() != nil {
					return context.Cause(ctx)
				}
				if hb := c.heartbeat; hb != nil {
					hb.Store(c.cycle)
				}
				poll = cancelPollCycles
			}
		}
		if skip {
			c.skipQuiescent()
		}
		c.Step()
		if c.committed != c.lastCommitted {
			c.lastCommitted = c.committed
			c.lastProgress = c.cycle
		} else if c.streamDone && len(c.rob) == 0 && len(c.frontQ) == 0 && len(c.refetchQ) == 0 {
			// The stream ran dry and the pipeline has fully drained:
			// nothing can ever commit again. Infinite experiment streams
			// never get here; a too-short recorded trace does.
			return ErrStreamEnded
		} else if c.cycle-c.lastProgress > 500000 {
			//lint:allow hotpathalloc(cold watchdog path: formatting happens once, immediately before the panic kills the run)
			panic(fmt.Sprintf("core: no commit for 500000 cycles (cycle %d, committed %d, rob %d, iq %d, buffer %d, head %s)",
				c.cycle, c.committed, len(c.rob), c.iqCount, len(c.recovery), c.describeHead()))
		}
	}
	return nil
}

func (c *Core) describeHead() string {
	if len(c.rob) == 0 {
		return "<empty rob>"
	}
	e := c.rob[0]
	return fmt.Sprintf("%s issued=%t executed=%t done=%d buffer=%t",
		e.u.String(), e.issued, e.executed, e.doneCycle, e.inBuffer)
}
