package core

import (
	"bytes"
	"fmt"
	"testing"

	"specsched/internal/config"
	"specsched/internal/rng"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/traceio"
	"specsched/internal/uop"
)

// randomProfile synthesizes an arbitrary-but-valid workload profile from a
// seed, spanning the generator's parameter space more broadly than the
// calibrated suite does.
func randomProfile(seed uint64) trace.Profile {
	r := rng.New(seed)
	kinds := []trace.AgenKind{trace.AgenStride, trace.AgenRandom, trace.AgenChase}
	nAgens := 1 + r.Intn(4)
	agens := make([]trace.AgenSpec, nAgens)
	for i := range agens {
		agens[i] = trace.AgenSpec{
			Kind:      kinds[r.Intn(len(kinds))],
			Footprint: 1 << (10 + r.Intn(14)), // 1KB .. 8MB
			Stride:    8 << r.Intn(4),         // 8..64
			Weight:    0.1 + r.Float64(),
		}
	}
	return trace.Profile{
		Name:             fmt.Sprintf("fuzz-%d", seed),
		Seed:             seed,
		Blocks:           2 + r.Intn(30),
		BlockLen:         1 + r.Intn(16),
		LoadFrac:         r.Float64() * 0.5,
		StoreFrac:        r.Float64() * 0.3,
		FPFrac:           r.Float64(),
		MulDivFrac:       r.Float64() * 0.3,
		MeanDepDist:      1 + r.Float64()*10,
		UseBaseFrac:      r.Float64(),
		AddrDepFrac:      r.Float64() * 0.6,
		LoadUseFrac:      r.Float64(),
		Agens:            agens,
		InnerLoopFrac:    r.Float64() * 0.7,
		LoopTrip:         2 + r.Intn(64),
		SkipFrac:         r.Float64() * 0.4,
		SkipBias:         0.5 + r.Float64()*0.5,
		RandomBranchFrac: r.Float64() * 0.2,
	}
}

// randomConfig perturbs a preset within valid bounds.
func randomConfig(seed uint64) config.CoreConfig {
	r := rng.New(seed ^ 0xc0ffee)
	presets := []string{"Baseline_0", "Baseline_2", "Baseline_4", "Baseline_6",
		"SpecSched_2", "SpecSched_4", "SpecSched_6", "SpecSched_4_Shift",
		"SpecSched_4_Ctr", "SpecSched_4_Filter", "SpecSched_4_Combined", "SpecSched_4_Crit"}
	cfg, err := config.Preset(presets[r.Intn(len(presets))])
	if err != nil {
		panic(err)
	}
	// Structural perturbations.
	cfg.IQEntries = 16 + r.Intn(64)
	cfg.ROBEntries = 64 + r.Intn(192)
	cfg.LQEntries = 16 + r.Intn(64)
	cfg.SQEntries = 16 + r.Intn(48)
	cfg.IssueWidth = 2 + r.Intn(6)
	cfg.RetireWidth = 2 + r.Intn(8)
	cfg.MaxLoadsPerCycle = 1 + r.Intn(2)
	switch r.Intn(3) {
	case 0:
		cfg.Replay = config.RecoveryBuffer
	case 1:
		cfg.Replay = config.IQRetention
	case 2:
		cfg.Replay = config.SelectiveReplay
	}
	if r.Bool(0.3) {
		cfg.L1Interleave = config.SetInterleave
	}
	if r.Bool(0.2) {
		cfg.SingleLineBuffer = false
	}
	if r.Bool(0.2) {
		cfg.PrefetchEnable = false
	}
	// Exercise both wakeup/select implementations and both time-advance
	// modes; the differential fuzz below additionally pins them against
	// each other.
	if r.Bool(0.5) {
		cfg.Scheduler = config.SchedScan
	} else {
		cfg.Scheduler = config.SchedEvent
	}
	cfg.TimeSkip = r.Bool(0.5)
	cfg.ReadyBitmap = r.Bool(0.5)
	cfg.Name = fmt.Sprintf("fuzz-cfg-%d", seed)
	return cfg
}

// TestFuzzCoreInvariants drives random configurations against random
// workloads and checks the machine's global invariants: it makes forward
// progress, never executes a µ-op before its operands are on the bypass,
// and commits exactly the correct path.
func TestFuzzCoreInvariants(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		seed := uint64(i*7919 + 13)
		cfg := randomConfig(seed)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid config: %v", seed, err)
		}
		prof := randomProfile(seed)
		if err := prof.Validate(); err != nil {
			// Some random mixes are rejected by design; skip them.
			continue
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("seed %d (cfg %s, profile %s): panic: %v",
						seed, cfg.Name, prof.Name, rec)
				}
			}()
			c := MustNew(cfg, trace.New(prof), seed)
			c.SetWorkloadName(prof.Name)
			r := c.Run(1000, 6000)
			if r.Committed < 6000 {
				t.Fatalf("seed %d: committed only %d", seed, r.Committed)
			}
			if r.LateOperands != 0 {
				t.Errorf("seed %d (cfg %s): %d late operands", seed, cfg.Name, r.LateOperands)
			}
			// µ-ops issued during warmup may commit inside the
			// measurement window, so Unique can trail Committed by up
			// to the in-flight window.
			if r.Unique+1000 < r.Committed {
				t.Errorf("seed %d: unique (%d) far below committed (%d)", seed, r.Unique, r.Committed)
			}
			if r.Issued < r.Unique {
				t.Errorf("seed %d: issued (%d) < unique (%d)", seed, r.Issued, r.Unique)
			}
		}()
	}
}

// TestFuzzDifferentialScanVsEvent drives random configurations against
// random workloads under six variants — the scan implementation, the
// event-driven implementation stepping every cycle with list ready
// queues, the same with bitmap ready queues, the event-driven
// implementation with quiescent-cycle skipping (lists and bitmaps), and
// the event-driven implementation replaying a recorded trace of the same
// stream — and requires bit-identical statistics from all of them: the
// strongest evidence that the event-driven rewrite, time skipping,
// bitmap ready selection, and trace record/replay all model exactly the
// same machine across the whole configuration space (window sizes,
// widths, replay schemes, interleavings).
func TestFuzzDifferentialScanVsEvent(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 5
	}
	const warm, measure = 1000, 6000
	variants := []struct {
		label    string
		impl     config.SchedulerImpl
		timeskip bool
		bitmap   bool
		replay   bool
	}{
		{"scan", config.SchedScan, false, false, false},
		{"event", config.SchedEvent, false, false, false},
		{"event+bitmap", config.SchedEvent, false, true, false},
		{"event+skip", config.SchedEvent, true, false, false},
		{"event+skip+bitmap", config.SchedEvent, true, true, false},
		{"event+skip+bitmap+replay", config.SchedEvent, true, true, true},
	}
	for i := 0; i < n; i++ {
		seed := uint64(i*104729 + 7)
		cfg := randomConfig(seed)
		prof := randomProfile(seed)
		if prof.Validate() != nil {
			continue
		}
		runs := make([]*stats.Run, len(variants))
		for k, v := range variants {
			cfg := cfg
			cfg.Scheduler = v.impl
			cfg.TimeSkip = v.timeskip
			cfg.ReadyBitmap = v.bitmap
			stream := uop.Stream(trace.New(prof))
			if v.replay {
				var buf bytes.Buffer
				if _, err := traceio.Record(&buf, stream, warm+measure+8192, "fuzz", seed); err != nil {
					t.Fatalf("seed %d: record: %v", seed, err)
				}
				d, err := traceio.NewDecoder(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: decode: %v", seed, err)
				}
				stream = d
			}
			c := MustNew(cfg, stream, seed)
			c.SetWorkloadName(prof.Name)
			runs[k] = c.Run(warm, measure)
		}
		ref := runs[0].MaskSchedulerCounters()
		for k := 1; k < len(variants); k++ {
			if got := runs[k].MaskSchedulerCounters(); ref != got {
				t.Errorf("seed %d (cfg %s, profile %s): %s diverged from %s\n %s: %+v\n %s: %+v",
					seed, cfg.Name, prof.Name, variants[k].label, variants[0].label,
					variants[0].label, ref, variants[k].label, got)
			}
		}
	}
}

// TestFuzzKernelsAcrossConfigs runs each exact-semantics kernel under a
// spread of presets and checks the scoreboard invariant.
func TestFuzzKernelsAcrossConfigs(t *testing.T) {
	for _, preset := range []string{"Baseline_0", "Baseline_6", "SpecSched_2",
		"SpecSched_4", "SpecSched_4_Shift", "SpecSched_4_Crit", "SpecSched_6"} {
		cfg, err := config.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		streams := map[string]func() uop.Stream{
			"chase":   func() uop.Stream { return trace.NewPointerChase(3, 256) },
			"stream":  func() uop.Stream { return trace.NewStreamSum(16 << 10) },
			"stencil": func() uop.Stream { return trace.NewStencil(16 << 10) },
		}
		for name, mkS := range streams {
			c := MustNew(cfg, mkS(), 11)
			c.SetWorkloadName(name)
			r := c.Run(1000, 8000)
			if r.LateOperands != 0 {
				t.Errorf("%s/%s: %d late operands", preset, name, r.LateOperands)
			}
			if r.Committed < 8000 {
				t.Errorf("%s/%s: committed only %d", preset, name, r.Committed)
			}
		}
	}
}
