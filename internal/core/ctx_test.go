package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"specsched/internal/config"
	"specsched/internal/trace"
)

// TestRunContextCancelsPromptly: a canceled context must stop the step loop
// within (roughly) one cancellation-poll interval, and a follow-up
// RunContext on the same core must resume the simulation where the canceled
// call stopped.
func TestRunContextCancelsPromptly(t *testing.T) {
	p, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, trace.New(p), p.Seed)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// 1G µ-ops would run for minutes; only the cancel can end this call.
	r, err := c.RunContext(ctx, 1_000_000_000, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RunContext returned nil error after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if r != nil {
		t.Fatal("canceled RunContext must not return a stats record")
	}
	// Generous bound (race detector, loaded CI): the poll interval itself
	// is sub-millisecond.
	if elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to take effect", elapsed)
	}

	// The core must still be usable: resume with a fresh context.
	before := c.committed
	r2, err := c.RunContext(context.Background(), 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Commit is RetireWidth-wide, so the window can overshoot by a group.
	if r2.Committed < 1000 {
		t.Fatalf("resumed run committed %d, want >= 1000", r2.Committed)
	}
	if c.committed <= before {
		t.Fatal("resumed run made no progress")
	}
}

// TestRunContextCancelCause: a context canceled with a cause must surface
// that cause, so callers can attach typed sentinel errors.
func TestRunContextCancelCause(t *testing.T) {
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	c := MustNew(config.Default(), trace.New(p), p.Seed)
	sentinel := errors.New("sweep torn down")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(sentinel)
	if _, err := c.RunContext(ctx, 1_000_000_000, 1); !errors.Is(err, sentinel) {
		t.Fatalf("RunContext error = %v, want cause %v", err, sentinel)
	}
}
