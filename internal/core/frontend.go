package core

import (
	"specsched/internal/bpred"
	"specsched/internal/uop"
)

// fetch models the in-order front end: up to FetchWidth µ-ops per cycle
// enter a delay queue of FrontendDepth cycles (the paper's 15−D-cycle
// front end). Conditional branches are predicted here (TAGE direction, BTB
// target); a misprediction switches the fetch source to the wrong-path
// generator until the branch resolves.
func (c *Core) fetch() {
	if c.cycle < c.fetchResume {
		return
	}
	capacity := c.frontCap()
	budget := c.cfg.FetchWidth
	for budget > 0 && len(c.frontQ) < capacity {
		e := c.newInst()
		switch {
		case c.wrongPath:
			c.wp.NextInto(&e.u)
		case len(c.refetchQ) > 0:
			e.u = c.refetchQ[0]
			c.refetchQ = c.refetchQ[1:]
		default:
			ok := false
			if c.streamInto != nil {
				ok = c.streamInto.NextInto(&e.u)
			} else {
				e.u, ok = c.stream.Next()
			}
			if !ok {
				c.streamDone = true
				c.pool = append(c.pool, e)
				return
			}
		}
		e.dynID = c.nextDynID
		e.readyAt = c.cycle + int64(c.cfg.FrontendDepth)
		c.nextDynID++
		budget--

		if e.isBranch() {
			c.predictBranch(e)
			// A predicted-taken branch ends the fetch group (one taken
			// branch per cycle, §3.1).
			if e.predTaken {
				budget = 0
			}
		}
		c.frontAppend(e)
	}
}

// newInst returns a zeroed instruction record, recycling retired and
// squashed ones. The recycling generation survives the reset: lazily
// purged scheduler structures use it to recognize stale references to a
// recycled record.
func (c *Core) newInst() *inst {
	var e *inst
	if n := len(c.pool); n > 0 {
		e = c.pool[n-1]
		c.pool = c.pool[:n-1]
		if e.snap != nil {
			c.snapPool = append(c.snapPool, e.snap)
		}
		gen := e.gen
		// Reset the pipeline state only: u is overwritten in full by
		// whichever fetch path fills this record next.
		e.instState = instState{}
		e.gen = gen + 1
	} else {
		e = &inst{}
	}
	e.memDepID = -1
	e.destPhys = -1
	e.oldPhys = -1
	e.becameHead = -1
	return e
}

// predictBranch runs the front-end predictors for a conditional branch and
// decides whether fetch must divert to the wrong path.
func (c *Core) predictBranch(e *inst) {
	if n := len(c.snapPool); n > 0 {
		e.snap = c.snapPool[n-1]
		c.snapPool = c.snapPool[:n-1]
	} else {
		e.snap = new(bpred.Snapshot)
	}
	c.tage.SnapshotInto(e.snap)
	e.pred = c.tage.Predict(e.u.PC)
	e.predTaken = e.pred.Taken
	if e.predTaken {
		if tgt, ok := c.btb.Lookup(e.u.PC); ok {
			e.predTarget = tgt
		} else {
			// Predicted taken but no target known: the front end can
			// only continue sequentially.
			e.predTaken = false
		}
	}
	if !e.predTaken {
		// Fall-through: correct exactly when the branch is not taken.
		e.predTarget = e.u.Target
		if e.u.Taken {
			e.predTarget = 0 // definitely wrong; any non-target value
		}
	}
	// Speculative history update with the predicted direction.
	c.tage.UpdateHistory(e.predTaken)

	e.mispred = e.predTaken != e.u.Taken ||
		(e.predTaken && e.predTarget != e.u.Target)
	if e.mispred && !e.u.WrongPath {
		c.wrongPath = true
	}
}

// frontCap is the front-end delay queue's capacity: FrontendDepth fetch
// groups in flight plus the group being fetched. Shared by fetch, the
// buffer pre-sizing in New, and the quiescent-cycle skipper's fetch-blocked
// test, which must all agree.
func (c *Core) frontCap() int {
	return c.cfg.FrontendDepth*c.cfg.FetchWidth + c.cfg.FetchWidth
}

// dispatchBlocked reports whether a structural hazard (ROB/IQ/LQ/SQ/PRF
// full) prevents dispatching e this cycle. Shared by dispatch and the
// quiescent-cycle skipper, which relies on exactly these hazards being
// relieved only by commit/issue/execute.
func (c *Core) dispatchBlocked(e *inst) bool {
	return len(c.rob) >= c.cfg.ROBEntries || c.iqCount >= c.cfg.IQEntries ||
		(e.isLoad() && len(c.lq) >= c.cfg.LQEntries) ||
		(e.isStore() && len(c.sq) >= c.cfg.SQEntries) ||
		(e.u.HasDest() && !c.rmap.CanRename(e.u.Dest))
}

// dispatch renames and inserts into the window up to RenameWidth µ-ops
// that have traversed the front end, stopping at the first structural
// hazard (ROB/IQ/LQ/SQ/PRF full).
func (c *Core) dispatch() {
	width := c.cfg.RenameWidth
	for width > 0 && len(c.frontQ) > 0 {
		e := c.frontQ[0]
		if e.readyAt > c.cycle {
			return
		}
		if c.dispatchBlocked(e) {
			return
		}
		c.frontQ = c.frontQ[1:]
		width--
		e.seq = c.dispSeq
		c.dispSeq++
		c.rename(e)
		c.robAppend(e)
		if c.sched == nil {
			c.iq = append(c.iq, e)
		}
		e.inIQ = true
		c.iqCount++
		switch {
		case e.isLoad():
			c.lqAppend(e)
			if dep, ok := c.ss.RenameLoad(e.u.PC); ok {
				e.memDepID = dep
			}
		case e.isStore():
			c.sqAppend(e)
			if dep, ok := c.ss.RenameStore(e.u.PC, e.dynID); ok {
				e.memDepID = dep
			}
		}
		if c.sched != nil {
			// Event-driven dispatch: ready µ-ops enter the ready queue,
			// the rest subscribe to their first unavailable source.
			c.sched.enqueue(e)
		}
	}
}

// rename maps the µ-op's architectural registers onto physical ones.
func (c *Core) rename(e *inst) {
	e.src1Phys, e.src2Phys = -1, -1
	if e.u.Src1 != uop.RegNone {
		e.src1Phys = c.rmap.Lookup(e.u.Src1)
	}
	if e.u.Src2 != uop.RegNone {
		e.src2Phys = c.rmap.Lookup(e.u.Src2)
	}
	if e.u.HasDest() {
		newP, oldP, ok := c.rmap.Rename(e.u.Dest)
		if !ok {
			panic("core: rename called without a free physical register")
		}
		e.destPhys, e.oldPhys = newP, oldP
		c.publishSpecReady(newP, infinity)
		c.actReady[newP] = infinity
	}
	e.renamed = true
}
