package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/trace"
	"specsched/internal/uop"
)

// scriptStream replays a fixed µ-op slice, then loops it with fresh
// sequence numbers — a minimal deterministic stimulus for micro-tests.
type scriptStream struct {
	ops []uop.UOp
	i   int
	seq int64
}

func (s *scriptStream) Next() (uop.UOp, bool) {
	u := s.ops[s.i%len(s.ops)]
	s.i++
	s.seq++
	u.Seq = s.seq
	return u, true
}

// mispredictingLoop builds a loop whose branch direction is a coin flip
// driven by the iteration parity of a long pattern TAGE cannot fully learn
// in a short run — actually: a branch alternating in a prime-period
// pattern. Used to measure the misprediction penalty.
func aluChain(n int) []uop.UOp {
	ops := make([]uop.UOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, uop.UOp{
			PC: uint64(0x1000 + i*4), Class: uop.ClassALU,
			Src1: 6, Src2: uop.RegNone, Dest: 6,
		})
	}
	return ops
}

func TestSerialALUChainIPC(t *testing.T) {
	// A pure serial chain (every ALU reads and writes r6) can never
	// exceed IPC 1, and with back-to-back wakeup should achieve ~1.
	cfg, _ := config.Preset("Baseline_0")
	c := MustNew(cfg, &scriptStream{ops: aluChain(64)}, 1)
	r := c.Run(2000, 20000)
	if ipc := r.IPC(); ipc > 1.01 || ipc < 0.9 {
		t.Fatalf("serial ALU chain IPC = %.3f, want ~1.0", ipc)
	}
}

func TestSerialChainUnaffectedByDelayUnderSpec(t *testing.T) {
	// Fixed-latency producers wake dependents back-to-back regardless of
	// the issue-to-execute delay: the serial chain must not slow down
	// from Baseline_0 to SpecSched_6 (no loads involved).
	cfg0, _ := config.Preset("Baseline_0")
	cfg6, _ := config.Preset("SpecSched_6")
	r0 := MustNew(cfg0, &scriptStream{ops: aluChain(64)}, 1).Run(2000, 20000)
	r6 := MustNew(cfg6, &scriptStream{ops: aluChain(64)}, 1).Run(2000, 20000)
	if r6.IPC() < 0.95*r0.IPC() {
		t.Fatalf("ALU chain slowed by delay: %.3f vs %.3f", r6.IPC(), r0.IPC())
	}
}

func TestWideIndependentALUHitsIssueWidth(t *testing.T) {
	// Independent ALU µ-ops reading loop-invariant bases should saturate
	// near the 4-ALU limit (issue width 6 but only 4 ALUs).
	ops := make([]uop.UOp, 0, 32)
	for i := 0; i < 32; i++ {
		ops = append(ops, uop.UOp{
			PC: uint64(0x2000 + i*4), Class: uop.ClassALU,
			Src1: i % 6, Src2: uop.RegNone, Dest: 6 + i%24,
		})
	}
	cfg, _ := config.Preset("Baseline_0")
	r := MustNew(cfg, &scriptStream{ops: ops}, 1).Run(2000, 20000)
	if ipc := r.IPC(); ipc < 3.5 {
		t.Fatalf("independent ALU IPC = %.3f, want ~4 (ALU-bound)", ipc)
	}
}

func TestUnpipelinedDivThroughput(t *testing.T) {
	// Independent INT divides serialize on the single unpipelined MulDiv
	// unit: throughput is bounded by 1 per 25 cycles.
	ops := make([]uop.UOp, 0, 8)
	for i := 0; i < 8; i++ {
		ops = append(ops, uop.UOp{
			PC: uint64(0x3000 + i*4), Class: uop.ClassDiv,
			Src1: i % 6, Src2: uop.RegNone, Dest: 6 + i%8,
		})
	}
	cfg, _ := config.Preset("Baseline_0")
	r := MustNew(cfg, &scriptStream{ops: ops}, 1).Run(200, 2000)
	maxIPC := 1.0 / float64(uop.ClassDiv.Latency())
	if ipc := r.IPC(); ipc > maxIPC*1.1 {
		t.Fatalf("div IPC = %.4f exceeds unpipelined bound %.4f", ipc, maxIPC)
	}
}

func TestPipelinedMulThroughput(t *testing.T) {
	// Independent multiplies are pipelined on one unit: ~1 per cycle.
	ops := make([]uop.UOp, 0, 8)
	for i := 0; i < 8; i++ {
		ops = append(ops, uop.UOp{
			PC: uint64(0x4000 + i*4), Class: uop.ClassMul,
			Src1: i % 6, Src2: uop.RegNone, Dest: 6 + i%8,
		})
	}
	cfg, _ := config.Preset("Baseline_0")
	r := MustNew(cfg, &scriptStream{ops: ops}, 1).Run(500, 5000)
	if ipc := r.IPC(); ipc < 0.85 {
		t.Fatalf("pipelined mul IPC = %.3f, want ~1 (single MulDiv unit)", ipc)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A load reading the quadword a just-executed store wrote must
	// forward from the SQ: it counts as a hit even though the line was
	// never in the cache, and triggers no replay.
	ops := []uop.UOp{
		{PC: 0x5000, Class: uop.ClassALU, Src1: 0, Src2: uop.RegNone, Dest: 6},
		{PC: 0x5004, Class: uop.ClassStore, Src1: 6, Src2: 1, Dest: uop.RegNone, Addr: 0x66660000, Size: 8},
		{PC: 0x5008, Class: uop.ClassLoad, Src1: 2, Src2: uop.RegNone, Dest: 7, Addr: 0x66660000, Size: 8},
		{PC: 0x500c, Class: uop.ClassALU, Src1: 7, Src2: uop.RegNone, Dest: 8},
	}
	cfg, _ := config.Preset("SpecSched_4")
	c := MustNew(cfg, &scriptStream{ops: ops}, 1)
	r := c.Run(400, 4000)
	if r.L1MissRate() > 0.2 {
		t.Fatalf("forwarded loads counted as misses: miss rate %.3f", r.L1MissRate())
	}
	if r.LateOperands != 0 {
		t.Fatalf("forwarding broke the scoreboard: %d late operands", r.LateOperands)
	}
}

func TestBranchMispredictPenaltyBand(t *testing.T) {
	// A branch whose direction is a 50/50 coin flip mispredicts ~half
	// the time; each misprediction costs about the paper's 20-cycle
	// penalty. Measure CPI of a loop that is otherwise free-flowing.
	p := trace.Profile{
		Name: "coinflip", Seed: 123,
		Blocks: 4, BlockLen: 3,
		MeanDepDist: 8, UseBaseFrac: 0.8, LoadUseFrac: 0,
		Agens:            nil,
		RandomBranchFrac: 1.0, // every non-terminal block flips a coin
		LoadFrac:         0, StoreFrac: 0,
	}
	cfg, _ := config.Preset("Baseline_0")
	c := MustNew(cfg, trace.New(p), p.Seed)
	r := c.Run(5000, 40000)
	if r.Mispredicts == 0 {
		t.Fatal("coin-flip branches never mispredicted")
	}
	// Penalty per mispredict = lost cycles / mispredicts. The all-ALU
	// loop would run at ~4 IPC without mispredicts.
	idealCycles := float64(r.Committed) / 4.0
	penalty := (float64(r.Cycles) - idealCycles) / float64(r.Mispredicts)
	if penalty < 12 || penalty > 32 {
		t.Fatalf("misprediction penalty ≈ %.1f cycles, want ~20 (paper)", penalty)
	}
}

func TestPRFPressureStallsButProgresses(t *testing.T) {
	// A machine with the minimum legal PRF must still make progress
	// (dispatch stalls until commit frees registers).
	cfg, _ := config.Preset("SpecSched_4")
	cfg.IntPRF = 64
	cfg.FPPRF = 64
	p, _ := trace.ByName("gzip")
	c := MustNew(cfg, trace.New(p), p.Seed)
	r := c.Run(2000, 10000)
	if r.Committed < 10000 {
		t.Fatalf("committed %d with tiny PRF", r.Committed)
	}
	// And it must be slower than the full-size machine.
	full, _ := config.Preset("SpecSched_4")
	rf := MustNew(full, trace.New(p), p.Seed).Run(2000, 10000)
	if r.IPC() > rf.IPC()*1.02 {
		t.Fatalf("tiny PRF (%.3f) outperformed full PRF (%.3f)", r.IPC(), rf.IPC())
	}
}

func TestTinyIQStallsButProgresses(t *testing.T) {
	cfg, _ := config.Preset("SpecSched_4")
	cfg.IQEntries = 8
	p, _ := trace.ByName("swim")
	r := MustNew(cfg, trace.New(p), p.Seed).Run(2000, 10000)
	if r.Committed < 10000 {
		t.Fatalf("committed %d with 8-entry IQ", r.Committed)
	}
	full, _ := config.Preset("SpecSched_4")
	rf := MustNew(full, trace.New(p), p.Seed).Run(2000, 10000)
	if r.IPC() >= rf.IPC() {
		t.Fatalf("8-entry IQ (%.3f) not slower than 60-entry (%.3f)", r.IPC(), rf.IPC())
	}
}

func TestSingleLoadPortHalvesLoadBandwidth(t *testing.T) {
	// Fig 3's first bar: Baseline_0 with one load per cycle. The stencil
	// kernel needs ~1.3 loads/cycle at full speed, so a single port must
	// cap it visibly.
	two := runKernel(t, "Baseline_0", trace.NewStencil(8<<10), 3000, 20000)
	one := runKernel(t, "Baseline_0_1ld", trace.NewStencil(8<<10), 3000, 20000)
	if one.IPC() >= two.IPC() {
		t.Fatalf("single load port (%.3f) not slower than dual (%.3f)", one.IPC(), two.IPC())
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	cfg, _ := config.Preset("SpecSched_4")
	p, _ := trace.ByName("mcf") // long-latency loads fill the window
	c := MustNew(cfg, trace.New(p), p.Seed)
	for i := 0; i < 20000; i++ {
		c.Step()
		if len(c.rob) > cfg.ROBEntries {
			t.Fatalf("cycle %d: ROB holds %d > %d entries", i, len(c.rob), cfg.ROBEntries)
		}
		if c.iqCount > cfg.IQEntries {
			t.Fatalf("cycle %d: IQ holds %d > %d entries", i, c.iqCount, cfg.IQEntries)
		}
		if len(c.lq) > cfg.LQEntries || len(c.sq) > cfg.SQEntries {
			t.Fatalf("cycle %d: LSQ overflow (%d/%d)", i, len(c.lq), len(c.sq))
		}
	}
}

func TestRecoveryBufferStaysAgeOrdered(t *testing.T) {
	cfg, _ := config.Preset("SpecSched_4")
	p, _ := trace.ByName("xalancbmk")
	c := MustNew(cfg, trace.New(p), p.Seed)
	for i := 0; i < 30000; i++ {
		c.Step()
		for j := 1; j < len(c.recovery); j++ {
			if c.recovery[j].dynID < c.recovery[j-1].dynID {
				t.Fatalf("cycle %d: recovery buffer out of age order", i)
			}
		}
	}
}

func TestCommitStreamIsExactCorrectPath(t *testing.T) {
	// The strongest end-to-end invariant: across branch mispredictions,
	// wrong-path injection, memory-order violation squash-refetches, and
	// scheduling replays, the committed stream must be exactly the
	// correct path — every sequence number once, in order.
	for _, cfgName := range []string{"SpecSched_4", "SpecSched_4_Crit", "Baseline_4"} {
		for _, wl := range []string{"vortex", "twolf", "xalancbmk"} {
			p, _ := trace.ByName(wl)
			cfg, _ := config.Preset(cfgName)
			c := MustNew(cfg, trace.New(p), p.Seed)
			var prev int64
			bad := false
			c.CommitHook = func(u uop.UOp) {
				if u.Seq != prev+1 {
					bad = true
					t.Errorf("%s/%s: committed seq %d after %d (gap or reorder)",
						cfgName, wl, u.Seq, prev)
				}
				prev = u.Seq
			}
			c.Run(0, 20000)
			if bad {
				return
			}
			if prev < 20000 {
				t.Fatalf("%s/%s: hook saw only %d commits", cfgName, wl, prev)
			}
		}
	}
}
