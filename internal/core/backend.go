package core

import (
	"specsched/internal/config"
	"specsched/internal/uop"
)

// fuBudget tracks the per-cycle functional unit and port capacity during
// the issue phase.
type fuBudget struct {
	alu, mulDiv, fp, fpMulDiv int
	ldst, loads, stores       int
}

func (c *Core) newBudget() fuBudget {
	return fuBudget{
		alu:      c.cfg.NumALU,
		mulDiv:   c.cfg.NumMulDiv,
		fp:       c.cfg.NumFP,
		fpMulDiv: c.cfg.NumFPMulDiv,
		ldst:     c.cfg.NumLdStPorts,
		loads:    c.cfg.MaxLoadsPerCycle,
		stores:   c.cfg.MaxStoresPerCycle,
	}
}

// takeFU reserves a functional unit and port for e, returning false when
// the required resource is exhausted this cycle. Unpipelined divide units
// additionally enforce an issue-spacing window.
func (c *Core) takeFU(e *inst, b *fuBudget) bool {
	switch e.u.Class {
	case uop.ClassALU, uop.ClassBranch, uop.ClassNop:
		if b.alu == 0 {
			return false
		}
		b.alu--
	case uop.ClassMul:
		if b.mulDiv == 0 || c.divFree > c.cycle {
			return false
		}
		b.mulDiv--
	case uop.ClassDiv:
		if b.mulDiv == 0 || c.divFree > c.cycle {
			return false
		}
		b.mulDiv--
		c.divFree = c.cycle + int64(uop.ClassDiv.Latency())
	case uop.ClassFP:
		if b.fp == 0 {
			return false
		}
		b.fp--
	case uop.ClassFPMul:
		if b.fpMulDiv == 0 {
			return false
		}
		b.fpMulDiv--
	case uop.ClassFPDiv:
		unit := -1
		for i := range c.fpDivFree {
			if c.fpDivFree[i] <= c.cycle {
				unit = i
				break
			}
		}
		if b.fpMulDiv == 0 || unit < 0 {
			return false
		}
		b.fpMulDiv--
		c.fpDivFree[unit] = c.cycle + int64(uop.ClassFPDiv.Latency())
	case uop.ClassLoad:
		if b.ldst == 0 || b.loads == 0 {
			return false
		}
		b.ldst--
		b.loads--
	case uop.ClassStore:
		if b.ldst == 0 || b.stores == 0 {
			return false
		}
		b.ldst--
		b.stores--
	}
	return true
}

// ready reports whether every source of e is (speculatively) available and
// any predicted memory dependence is satisfied.
func (c *Core) ready(e *inst) bool {
	if e.src1Phys >= 0 && c.specReady[e.src1Phys] > c.cycle {
		return false
	}
	if e.src2Phys >= 0 && c.specReady[e.src2Phys] > c.cycle {
		return false
	}
	if e.memDepID >= 0 {
		if s := c.findStore(e.memDepID); s != nil && !s.executed {
			return false
		}
		// Memoize the satisfied dependence: it is monotone while e lives
		// (the store can only stay executed or leave the SQ; a squash that
		// refetches e builds a fresh inst with a fresh memDepID), so the
		// repeated SQ binary searches — every recovery-buffer poll, every
		// scan-mode IQ pass — collapse to one. The event-driven enqueue
		// path memoizes identically (see parkTarget).
		e.memDepID = -1
	}
	return true
}

func (c *Core) findStore(dynID int64) *inst {
	if i := ageSearch(c.sq, dynID-1); i < len(c.sq) && c.sq[i].dynID == dynID {
		return c.sq[i]
	}
	return nil
}

// issueRecovery replays the recovery buffer with priority, oldest first.
// The buffer is age-ordered; not-yet-ready entries (dependents waiting on
// a revised load promise) are skipped so independent replayed work keeps
// flowing — the property Kim & Lipasti identify as essential for any
// usable replay scheme. Shared verbatim by both scheduler implementations
// (the buffer's size is already event-proportional). Returns the remaining
// issue width.
func (c *Core) issueRecovery(budget *fuBudget, width int, loadsIssued *int) int {
	if len(c.recovery) == 0 {
		return width
	}
	rest := c.recovery[:0]
	for i, e := range c.recovery {
		if e.squashed {
			continue
		}
		if width == 0 {
			rest = append(rest, c.recovery[i:]...)
			break
		}
		if !c.ready(e) || !c.takeFU(e, budget) {
			rest = append(rest, e)
			continue
		}
		e.inBuffer = false
		c.doIssue(e, loadsIssued)
		width--
	}
	c.recovery = rest
	return width
}

// issue selects up to IssueWidth µ-ops: the recovery buffer replays first
// (FIFO, head group only — §3.1), then the scheduler fills the remaining
// slots oldest-first. This is the scan implementation (config.SchedScan):
// it re-evaluates ready() for every IQ entry every cycle.
func (c *Core) issue() {
	if c.cycle == c.issueBlock {
		return
	}
	c.loadBanksThisCycle = c.loadBanksThisCycle[:0]
	// Compact the IQ view (entries released at issue or execute).
	iq := c.iq[:0]
	for _, e := range c.iq {
		if e.inIQ {
			iq = append(iq, e)
		}
	}
	c.iq = iq

	budget := c.newBudget()
	width := c.cfg.IssueWidth
	loadsIssued := 0

	width = c.issueRecovery(&budget, width, &loadsIssued)

	// Scheduler fills the holes, oldest first.
	for _, e := range c.iq {
		if width == 0 {
			break
		}
		if e.issued || e.inBuffer || e.executed {
			continue
		}
		if !c.ready(e) {
			continue
		}
		if !c.takeFU(e, &budget) {
			continue
		}
		c.doIssue(e, &loadsIssued)
		width--
	}
}

// doIssue moves e into the issue-to-execute latches and publishes its
// wakeup promise.
func (c *Core) doIssue(e *inst, loadsIssued *int) {
	e.issued = true
	e.timesIssued++
	e.issueCycle = c.cycle
	e.execCycle = c.cycle + c.delay() + 1
	if c.sched != nil {
		c.sched.onIssue(e)
	} else {
		c.inflight = append(c.inflight, e)
	}
	c.run.Issued++
	if e.timesIssued == 1 {
		c.run.Unique++
	}

	if e.destPhys >= 0 {
		var p int64
		switch {
		case e.isLoad():
			if c.allowSpecWakeup(e) {
				e.specWoken = true
				lat := c.l1.LoadToUse()
				if *loadsIssued >= 1 && c.shiftSecondLoad(e) {
					e.shifted = true
					lat++
				}
				p = c.cycle + lat
				c.run.LoadsSpecWakeup++
			} else {
				e.specWoken = false
				p = infinity
				c.run.LoadsDelayedWakeup++
			}
		default:
			p = c.cycle + int64(e.u.Class.Latency())
		}
		e.promise = p
		c.publishSpecReady(e.destPhys, p)
	}
	if e.isLoad() {
		*loadsIssued++
		if c.cfg.BankPredictShift {
			b, _ := c.bankp.Predict(e.u.PC)
			c.loadBanksThisCycle = append(c.loadBanksThisCycle, b)
		}
	}

	// Non-memory µ-ops release their IQ entry at issue under the
	// recovery-buffer and selective schemes (the Pentium 4's "issued
	// instructions immediately release their entry", §2.1.1); everything
	// retains it under IQ retention.
	if e.inIQ && c.cfg.Replay != config.IQRetention && !e.isMem() {
		e.inIQ = false
		c.iqCount--
	}
}

// addReplayEvent files a scheduling-misspeculation detection with whichever
// scheduler implementation is active.
func (c *Core) addReplayEvent(ev replayEvent) {
	if c.sched != nil {
		c.sched.scheduleReplay(ev)
		return
	}
	c.events = append(c.events, ev)
}

// execute drains the issue-to-execute latches whose time has come (scan
// implementation; the event-driven one pops the execute wheel instead).
func (c *Core) execute() {
	if len(c.inflight) == 0 {
		return
	}
	var execs []*inst
	rest := c.inflight[:0]
	for _, e := range c.inflight {
		if e.execCycle == c.cycle && !e.squashed {
			execs = append(execs, e)
		} else if !e.squashed {
			rest = append(rest, e)
		}
	}
	c.inflight = rest
	for _, e := range execs {
		if e.squashed {
			continue // squashed by an older µ-op executing this cycle
		}
		c.executeOne(e)
	}
}

func (c *Core) executeOne(e *inst) {
	e.executed = true
	// Release the IQ entry (memory µ-ops under the recovery-buffer
	// scheme; everything under IQ retention).
	if e.inIQ {
		e.inIQ = false
		c.iqCount--
	}

	// Defensive scoreboard check: promises are exact in this model, so a
	// late operand indicates a modelling bug; it is counted and the
	// completion time stretched to stay causally consistent.
	lateBy := int64(0)
	if e.src1Phys >= 0 && c.actReady[e.src1Phys] > c.cycle {
		lateBy = max(lateBy, c.actReady[e.src1Phys]-c.cycle)
	}
	if e.src2Phys >= 0 && c.actReady[e.src2Phys] > c.cycle {
		lateBy = max(lateBy, c.actReady[e.src2Phys]-c.cycle)
	}
	if lateBy > 0 {
		c.run.LateOperands++
	}

	switch {
	case e.isBranch():
		c.resolveBranch(e)
	case e.isLoad():
		c.executeLoad(e, lateBy)
	case e.isStore():
		c.executeStore(e)
	default:
		e.doneCycle = c.cycle + lateBy + int64(e.u.Class.Latency())
		if e.destPhys >= 0 {
			c.actReady[e.destPhys] = e.doneCycle
		}
	}
}

func (c *Core) resolveBranch(e *inst) {
	e.doneCycle = c.cycle + 1
	c.run.Branches++
	taken := e.u.Taken
	c.tage.Update(e.u.PC, taken, e.pred)
	if e.mispred {
		c.run.Mispredicts++
		c.squashFrom(e.dynID, false)
		// Rewind the direction history to just before this branch and
		// record the true outcome.
		c.tage.RestoreFrom(e.snap)
		c.tage.UpdateHistory(taken)
		if taken {
			c.btb.Insert(e.u.PC, e.u.Target)
		}
		c.wrongPath = false
		c.fetchResume = c.cycle + redirectBubble
	} else if taken {
		c.btb.Insert(e.u.PC, e.u.Target)
	}
}

func (c *Core) executeLoad(e *inst, lateBy int64) {
	// Hit/miss statistics cover the correct path only (the paper reports
	// committed-load behaviour); the global counter and bank arbitration
	// see every access, wrong path included.
	if !e.u.WrongPath {
		c.run.Loads++
	}
	c.loadThisCycle = true
	if s := c.youngestOlderStoreSameQW(e); s != nil && s.executed {
		// Store-to-load forwarding from the store queue: same latency as
		// an L1 hit, no bank access.
		e.forwarded = true
		e.loadHit = true
		e.doneCycle = c.cycle + lateBy + c.l1.LoadToUse()
		if !e.u.WrongPath {
			c.run.L1Hits++
		}
	} else {
		res := c.l1.Load(e.u.Addr, e.u.PC, c.cycle)
		if c.cfg.BankPredictShift {
			c.bankp.Update(e.u.PC, c.l1.BankOf(e.u.Addr))
		}
		e.loadRes = res
		e.loadHit = res.Hit
		e.doneCycle = max(res.DataReady, c.cycle+lateBy+c.l1.LoadToUse())
		if !res.Hit {
			c.missThisCycle = true
		}
		if !e.u.WrongPath {
			if res.Hit {
				c.run.L1Hits++
			} else {
				c.run.L1Misses++
			}
		}
		if res.BankDelayed {
			c.run.BankConflicts++
		}
	}
	e.loadDone = true
	if e.destPhys >= 0 {
		c.actReady[e.destPhys] = e.doneCycle
	}

	if e.specWoken {
		// Scheduling misspeculation: the data arrives after the promise
		// made to dependents (promise + D + 1).
		if e.doneCycle > e.promise+c.delay()+1 && !e.forwarded {
			promisedData := e.promise + c.delay() + 1
			if e.loadRes.BankDelayed {
				// The conflict is discovered at arbitration (now); the
				// re-promise still assumes a hit, after the delay.
				hitDone := e.loadRes.ServiceCycle + c.l1.LoadToUse()
				if hitDone > promisedData {
					c.addReplayEvent(replayEvent{
						detect:   c.cycle,
						reviseTo: hitDone - c.delay() - 1,
						cause:    causeBank,
						load:     e,
					})
				}
			}
			if e.doneCycle > e.loadRes.ServiceCycle+c.l1.LoadToUse() ||
				!e.loadRes.BankDelayed {
				// Miss (or late in-flight fill): discovered one cycle
				// before the L1 data would have returned (footnote 2).
				detect := e.loadRes.HitKnown
				if detect < c.cycle {
					detect = c.cycle
				}
				c.addReplayEvent(replayEvent{
					detect:   detect,
					reviseTo: e.doneCycle - c.delay() - 1,
					cause:    causeMiss,
					load:     e,
				})
			}
		}
	} else if e.destPhys >= 0 {
		// Conservative scheduling: dependents wake when the hit/miss
		// outcome is known, one cycle before the data (Fig. 2 top).
		w := e.doneCycle - 1
		if w <= c.cycle {
			w = c.cycle + 1
		}
		c.publishSpecReady(e.destPhys, w)
	}
}

func (c *Core) executeStore(e *inst) {
	e.doneCycle = c.cycle + 1
	e.storeDone = true
	if e.destPhys >= 0 {
		// Stores normally have no destination; publish one defensively
		// so a mis-built µ-op cannot wedge the scoreboard.
		c.actReady[e.destPhys] = e.doneCycle
	}
	c.ss.StoreExecuted(e.u.PC, e.dynID)
	if c.sched != nil {
		// Memory-dependence wakeup: µ-ops predicted to order after this
		// store become schedulable the cycle it executes.
		c.sched.onStoreExecuted(e)
	}

	// Memory-order violation: a younger load to the same quadword already
	// executed and read stale data. Squash-refetch from that load and
	// train Store Sets (§3.1 "Store Sets"). The LQ is age-ordered, so the
	// scan starts past the younger-than boundary and the first match is
	// the oldest violator.
	var victim *inst
	for i := ageSearch(c.lq, e.dynID); i < len(c.lq); i++ {
		ld := c.lq[i]
		if ld.executed && !ld.squashed && ld.quadword() == e.quadword() {
			victim = ld
			break
		}
	}
	if victim != nil {
		c.run.MemOrderViolations++
		c.ss.Violation(victim.u.PC, e.u.PC)
		c.squashFrom(victim.dynID, true)
		c.wrongPath = false
		c.fetchResume = c.cycle + redirectBubble
	}
}

// youngestOlderStoreSameQW walks the age-ordered SQ backwards from the
// load's age boundary; the first same-quadword store found is the youngest
// older one.
func (c *Core) youngestOlderStoreSameQW(ld *inst) *inst {
	for i := ageSearch(c.sq, ld.dynID) - 1; i >= 0; i-- {
		if s := c.sq[i]; s.quadword() == ld.quadword() {
			return s
		}
	}
	return nil
}

// ageSearch returns the index of the first entry of a dynID-ascending
// queue younger than dynID (i.e. with a larger dynID).
func ageSearch(q []*inst, dynID int64) int {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].dynID <= dynID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// processEvents fires pending schedule-misspeculation events whose
// detection cycle has arrived. Multiple events in one cycle coalesce into
// a single squash, classified by the first cause.
func (c *Core) processEvents() {
	if len(c.events) == 0 {
		return
	}
	triggered := false
	var cause replayCause
	var fired []replayEvent
	rest := c.events[:0]
	for _, ev := range c.events {
		switch {
		case ev.load.squashed:
			// Dropped with its load.
		case ev.detect > c.cycle:
			rest = append(rest, ev)
		default:
			// Publish the event's revised timing so dependents
			// reschedule accordingly.
			if ev.load.destPhys >= 0 {
				w := ev.reviseTo
				if w <= c.cycle {
					w = c.cycle + 1
				}
				c.specReady[ev.load.destPhys] = w
			}
			if ev.cause == causeBank {
				c.run.BankReplayEvents++
			} else {
				c.run.MissReplayEvents++
			}
			fired = append(fired, ev)
			if !triggered {
				triggered = true
				cause = ev.cause
			}
		}
	}
	c.events = rest
	if triggered {
		if c.cfg.Replay == config.SelectiveReplay {
			c.selectiveSquash(fired)
		} else {
			c.replaySquash(cause)
		}
	}
}

// selectiveSquash implements Pentium-4-style selective replay (§2.1.1):
// for each fired event, only the in-flight µ-ops transitively dependent on
// the mis-scheduled load are cancelled into the recovery buffer. No issue
// cycle is lost; independent work is untouched.
func (c *Core) selectiveSquash(fired []replayEvent) {
	for _, ev := range fired {
		if ev.load.destPhys < 0 {
			continue
		}
		// Poison propagates through destinations in issue order
		// (consumers always issue at or after their producers).
		poisoned := map[int]bool{ev.load.destPhys: true}
		count := int64(0)
		var squashedNow []*inst
		rest := c.inflight[:0]
		for _, e := range c.inflight {
			if e.squashed {
				continue
			}
			dep := (e.src1Phys >= 0 && poisoned[e.src1Phys]) ||
				(e.src2Phys >= 0 && poisoned[e.src2Phys])
			if !dep {
				rest = append(rest, e)
				continue
			}
			if e.destPhys >= 0 {
				poisoned[e.destPhys] = true
				c.specReady[e.destPhys] = infinity
				c.actReady[e.destPhys] = infinity
			}
			e.issued = false
			e.inBuffer = true
			e.specWoken = false
			e.shifted = false
			squashedNow = append(squashedNow, e)
			count++
		}
		c.inflight = rest
		c.recovery = mergeByAge(c.recovery, squashedNow)
		if ev.cause == causeBank {
			c.run.ReplayedBank += count
		} else {
			c.run.ReplayedMiss += count
		}
	}
}

// replaySquash cancels the D in-flight issue groups issued in
// [cycle-D, cycle-1], moves them to the recovery buffer, and blocks this
// cycle's issue — the paper's D+1 lost issue groups. The buffer is kept
// sorted by dynamic age: register dependences always point from older to
// younger µ-ops, so age order guarantees a replayed consumer never waits
// on a producer stuck behind it (head-blocking FIFO replay stays live).
func (c *Core) replaySquash(cause replayCause) {
	lo := c.cycle - c.delay()
	count := int64(0)
	var squashedNow []*inst
	rest := c.inflight[:0]
	for _, e := range c.inflight {
		if e.squashed {
			continue
		}
		if e.issueCycle >= lo && e.issueCycle < c.cycle {
			e.issued = false
			e.inBuffer = true
			if e.destPhys >= 0 {
				c.specReady[e.destPhys] = infinity
				c.actReady[e.destPhys] = infinity
			}
			e.specWoken = false
			e.shifted = false
			squashedNow = append(squashedNow, e)
			count++
		} else {
			rest = append(rest, e)
		}
	}
	c.inflight = rest
	c.recovery = mergeByAge(c.recovery, squashedNow)
	if cause == causeBank {
		c.run.ReplayedBank += count
	} else {
		c.run.ReplayedMiss += count
	}
	c.issueBlock = c.cycle
}

// commit retires up to RetireWidth completed µ-ops from the ROB head,
// training the commit-time predictors (hit/miss filter, criticality).
func (c *Core) commit() {
	width := c.cfg.RetireWidth
	storesThisCycle := 0
	if len(c.rob) > 0 && c.rob[0].becameHead < 0 {
		c.rob[0].becameHead = c.cycle
	}
	for width > 0 && len(c.rob) > 0 {
		e := c.rob[0]
		if !e.executed || e.inBuffer || e.doneCycle > c.cycle {
			break
		}
		if e.isStore() {
			if storesThisCycle >= 2 {
				break
			}
			c.l1.Store(e.u.Addr, e.u.PC, c.cycle)
			storesThisCycle++
			c.sq = removeOldest(c.sq, e)
		}
		if e.isLoad() {
			c.filter.Update(e.u.PC, e.loadHit)
			c.lq = removeOldest(c.lq, e)
		}
		// ROB-head criticality criterion (§5.3): the µ-op completed at
		// or after the cycle it became the ROB head.
		c.crit.Update(e.u.PC, e.doneCycle >= e.becameHead)
		if e.destPhys >= 0 {
			c.rmap.Commit(e.oldPhys)
		}
		if c.CommitHook != nil {
			c.CommitHook(e.u)
		}
		c.rob = c.rob[1:]
		c.graveyard = append(c.graveyard, e)
		if len(c.rob) > 0 && c.rob[0].becameHead < 0 {
			c.rob[0].becameHead = c.cycle
		}
		c.committed++
		c.run.Committed++
		width--
	}
}

// squashFrom rolls the machine back to just before dynID (inclusive=true
// squashes dynID itself, as for memory-order violations; false keeps it, as
// for branch mispredictions). Correct-path victims are queued for refetch.
func (c *Core) squashFrom(dynID int64, inclusive bool) {
	cut := len(c.rob)
	for cut > 0 {
		d := c.rob[cut-1].dynID
		if d > dynID || (inclusive && d == dynID) {
			cut--
		} else {
			break
		}
	}
	victims := c.rob[cut:]

	var oldestBranch *inst
	refetch := c.squashRefetch[:0]
	for i := len(victims) - 1; i >= 0; i-- {
		v := victims[i]
		v.squashed = true
		if c.sched != nil {
			// Eagerly unlink from consumer/memory-dependence waiter
			// lists: those are walked through raw pointers and the inst
			// will be recycled next cycle. (Ready-list and timing-wheel
			// entries are purged lazily via the generation check; the
			// ready bitmap's slots are reused by the seq rollback below,
			// so its bits are cleared eagerly too.)
			c.sched.unlink(v)
			c.sched.dropReady(v)
		}
		if v.renamed && v.destPhys >= 0 {
			c.rmap.Rollback(v.u.Dest, v.oldPhys, v.destPhys)
		}
		if v.inIQ {
			v.inIQ = false
			c.iqCount--
		}
		v.inBuffer = false
		v.issued = false
		v.inReadyQ = false
		if v.isBranch() {
			oldestBranch = v
		}
		if !v.u.WrongPath {
			refetch = append(refetch, v.u)
		}
		c.graveyard = append(c.graveyard, v)
	}
	c.squashRefetch = refetch
	c.rob = c.rob[:cut]

	// Roll the dispatch-sequence counter back over the squashed suffix:
	// the next dispatch reuses the oldest victim's seq, keeping live ROB
	// seqs contiguous (span <= ROBEntries) so the bitmap ready queue's
	// seq&mask slots never alias. With an emptied ROB contiguity is
	// trivial, so dispSeq is left alone.
	if cut > 0 {
		c.dispSeq = c.rob[cut-1].seq + 1
	}

	// Rebuild the refetch queue into the standby buffer: ROB victims
	// (oldest first — reverse the youngest-first collection), then
	// front-end victims (already oldest first), then whatever was pending.
	// The two backing buffers alternate so steady-state squashes allocate
	// nothing.
	merged := c.refetchSpare[:0]
	for i := len(refetch) - 1; i >= 0; i-- {
		merged = append(merged, refetch[i])
	}

	// The front end is entirely younger than anything in the ROB: flush
	// it, re-queueing correct-path µ-ops.
	for _, v := range c.frontQ {
		v.squashed = true
		if !v.u.WrongPath {
			merged = append(merged, v.u)
		}
		c.graveyard = append(c.graveyard, v)
	}
	c.frontQ = c.frontQ[:0]

	merged = append(merged, c.refetchQ...)
	c.refetchSpare = c.refetchBase[:0]
	c.refetchBase = merged
	c.refetchQ = merged

	// Purge squashed entries from the scheduler-side structures. The
	// event-driven implementation has no IQ slice, inflight slice, or
	// event list to purge — its wheel and heap entries die by generation.
	if c.sched == nil {
		c.iq = filterSquashed(c.iq)
		c.inflight = filterSquashed(c.inflight)
		evs := c.events[:0]
		for _, ev := range c.events {
			if !ev.load.squashed {
				evs = append(evs, ev)
			}
		}
		c.events = evs
	}
	c.lq = filterSquashed(c.lq)
	c.sq = filterSquashed(c.sq)
	c.recovery = filterSquashed(c.recovery)

	// Rewind the branch-history to before the oldest squashed branch; a
	// mispredicting resolver will override with its own snapshot.
	if oldestBranch != nil {
		c.tage.RestoreFrom(oldestBranch.snap)
	}
	c.ss.SquashAfter(dynID)
}

// mergeByAge merges two dynID-ascending inst lists. a must already be
// sorted (the recovery buffer invariant); b may be in any order.
func mergeByAge(a, b []*inst) []*inst {
	if len(b) == 0 {
		return a
	}
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].dynID < b[j-1].dynID; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
	out := make([]*inst, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].dynID <= b[j].dynID {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func filterSquashed(in []*inst) []*inst {
	out := in[:0]
	for _, e := range in {
		if !e.squashed {
			out = append(out, e)
		}
	}
	return out
}

func removeInst(in []*inst, e *inst) []*inst {
	for i, x := range in {
		if x == e {
			return append(in[:i], in[i+1:]...)
		}
	}
	return in
}

// removeOldest removes e from an age-ordered queue. In-order commit always
// retires the queue head, so this is O(1) head consumption (the queues'
// append helpers copy the live window down when the backing buffer's tail
// is reached); the splice fallback keeps it correct for any caller.
func removeOldest(in []*inst, e *inst) []*inst {
	if len(in) > 0 && in[0] == e {
		return in[1:]
	}
	return removeInst(in, e)
}
