package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/trace"
)

// These are the wheel-style edge tests for the bitmap ready queue
// (config.ReadyBitmap): word-boundary and ring wraparound of the slot
// space, exact-capacity slot aliasing after clears, and the empty-word
// skip in wide multi-word configurations — the same seams the timing
// wheels are pinned on. The unit tests below drive readyBM directly; the
// integration tests run real cores through stepWithInvariants, whose
// checkInvariants cross-checks every set bit against the ROB, and
// against the list-based ready queues for bit-identity.

// fakeReadyInst builds a detached inst with just enough state to file in
// a readyBM: a seq for the slot computation.
func fakeReadyInst(seq int64) *inst {
	e := &inst{}
	e.seq = seq
	return e
}

// TestReadyBMWordWraparound files candidates whose slots straddle an
// occupancy-word boundary and the ring boundary (slot capacity-1 -> 0),
// then verifies bit positions, per-family counts, and SoA rows — the
// bitmap analogue of TestWheelBitmapWraparound.
func TestReadyBMWordWraparound(t *testing.T) {
	bm := newReadyBM(192) // rounds up to capacity 256, 4 words/family
	if bm.mask != 255 || bm.nwords != 4 {
		t.Fatalf("capacity rounding: mask=%d nwords=%d, want 255/4", bm.mask, bm.nwords)
	}
	// Seqs 60..67 straddle words 0/1; seqs 250..260 straddle the ring
	// boundary (slots 250..255, then 0..4 on the next revolution).
	var filed []*inst
	for _, seq := range []int64{60, 61, 62, 63, 64, 65, 66, 67,
		250, 251, 252, 253, 254, 255, 256, 257, 258, 259, 260} {
		e := fakeReadyInst(seq)
		bm.set(e, famALU, 0)
		filed = append(filed, e)
	}
	if bm.count[famALU] != len(filed) {
		t.Fatalf("count[famALU]=%d, want %d", bm.count[famALU], len(filed))
	}
	for _, e := range filed {
		slot := e.seq & bm.mask
		if bm.words[famALU][slot>>6]&(1<<uint(slot&63)) == 0 {
			t.Errorf("seq %d: bit for slot %d (word %d) not set", e.seq, slot, slot>>6)
		}
		if bm.slotInst[slot] != e || bm.slotSeq[slot] != e.seq {
			t.Errorf("seq %d: SoA row for slot %d does not match", e.seq, slot)
		}
	}
	// Clearing every candidate must leave all four words empty.
	for _, e := range filed {
		slot := e.seq & bm.mask
		bm.clearSlot(slot, famALU)
	}
	if bm.count[famALU] != 0 {
		t.Fatalf("count[famALU]=%d after clearing all, want 0", bm.count[famALU])
	}
	for wi, w := range bm.words[famALU] {
		if w != 0 {
			t.Errorf("word %d nonzero after clearing all: %#x", wi, w)
		}
	}
}

// TestReadyBMExactCapacityAliasing pins the aliasing contract at its
// boundary: a contiguous seq span equal to the capacity maps injectively
// onto all slots (the exact-capacity regime a full ROB of size
// ROBEntries == capacity produces), and a slot freed by clearSlot is
// correctly reused by the seq one full revolution later.
func TestReadyBMExactCapacityAliasing(t *testing.T) {
	bm := newReadyBM(64) // capacity exactly 64: one word per family
	if bm.mask != 63 || bm.nwords != 1 {
		t.Fatalf("capacity: mask=%d nwords=%d, want 63/1", bm.mask, bm.nwords)
	}
	// A full window: seqs 100..163 fill every slot exactly once.
	for seq := int64(100); seq < 164; seq++ {
		bm.set(fakeReadyInst(seq), famLoad, 7)
	}
	if bm.count[famLoad] != 64 || bm.words[famLoad][0] != ^uint64(0) {
		t.Fatalf("full window: count=%d word=%#x, want 64/all-ones",
			bm.count[famLoad], bm.words[famLoad][0])
	}
	// Slot reuse one revolution later: clear seq 100's slot (issue or
	// squash), then file seq 164 — same slot, new SoA row.
	old := bm.slotInst[100&bm.mask]
	bm.clearSlot(100&bm.mask, famLoad)
	next := fakeReadyInst(100 + 64)
	bm.set(next, famALU, 9)
	slot := next.seq & bm.mask
	if slot != 100&bm.mask {
		t.Fatalf("seq %d landed in slot %d, want alias of slot %d", next.seq, slot, 100&bm.mask)
	}
	if bm.slotInst[slot] != next || bm.slotInst[slot] == old {
		t.Errorf("slot %d SoA row not overwritten by the aliasing candidate", slot)
	}
	if bm.slotFam[slot] != famALU || bm.slotEpoch[slot] != 9 {
		t.Errorf("slot %d fam/epoch = %d/%d, want %d/9", slot, bm.slotFam[slot], bm.slotEpoch[slot], famALU)
	}
}

// TestBitmapInvariantsAtCapacityEdges runs real cores in the slot-space
// edge regimes — ROBEntries equal to the minimum capacity (64, where a
// full ROB uses every slot), one past a power of two (65, forcing the
// round-up), and the wide window (512-entry ROB, eight words per family,
// where sparse ready sets exercise the empty-word skip) — on
// mispredict-heavy workloads so squash rollback repeatedly rewinds the
// seq counter across word and ring boundaries. checkInvariants validates
// the full bit/SoA/ROB correspondence every cycle, and each shape must
// stay bit-identical to the list-based ready queues.
func TestBitmapInvariantsAtCapacityEdges(t *testing.T) {
	for _, tc := range []struct {
		name       string
		robEntries int
	}{
		{"exact-capacity-64", 64},
		{"round-up-65", 65},
		{"wide-512", 512},
	} {
		cfg, err := config.Preset("SpecSched_4")
		if err != nil {
			t.Fatal(err)
		}
		cfg.ROBEntries = tc.robEntries
		if tc.robEntries < cfg.IQEntries {
			cfg.IQEntries = tc.robEntries
		}
		for _, wl := range []string{"gzip", "xalancbmk"} {
			p, err := trace.ByName(wl)
			if err != nil {
				t.Fatal(err)
			}
			c := MustNew(cfg, trace.New(p), p.Seed)
			stepWithInvariants(t, c, 12000, tc.name+"/"+wl)
			if c.run.Mispredicts == 0 {
				t.Fatalf("%s/%s: no mispredictions — squash rollback never exercised", tc.name, wl)
			}
			if c.run.SchedBitmapPicks == 0 || c.run.SchedBitmapWords == 0 {
				t.Fatalf("%s/%s: bitmap pick loop never ran: %+v", tc.name, wl, c.run)
			}
			list := runEvent(t, cfg, trace.New(p), p.Seed, true, false, 2000, 8000)
			bitmap := runEvent(t, cfg, trace.New(p), p.Seed, true, true, 2000, 8000)
			compareRuns(t, tc.name+"/"+wl+"/list-vs-bitmap", list, bitmap)
		}
	}
}

// TestEventSchedulerBitmapCounters sanity-checks the new observability
// counters: the bitmap pick loop must report picks and word visits, and
// both the list-based event configuration and the scan implementation
// must report none.
func TestEventSchedulerBitmapCounters(t *testing.T) {
	p, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		label  string
		impl   config.SchedulerImpl
		bitmap bool
	}{
		{"event+bitmap", config.SchedEvent, true},
		{"event+list", config.SchedEvent, false},
		{"scan", config.SchedScan, false},
	} {
		cfg, err := config.Preset("SpecSched_4")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler = tc.impl
		cfg.ReadyBitmap = tc.bitmap
		c := MustNew(cfg, trace.New(p), p.Seed)
		r := c.Run(2000, 10000)
		if tc.bitmap {
			if r.SchedBitmapPicks == 0 || r.SchedBitmapWords == 0 {
				t.Fatalf("%s: bitmap counters zero: %+v", tc.label, r)
			}
			// Every pick comes out of a scanned word.
			if r.SchedBitmapPicks > 64*r.SchedBitmapWords {
				t.Fatalf("%s: %d picks from %d words — impossible density",
					tc.label, r.SchedBitmapPicks, r.SchedBitmapWords)
			}
		} else if r.SchedBitmapPicks != 0 || r.SchedBitmapWords != 0 {
			t.Fatalf("%s: non-bitmap run reported bitmap activity: %+v", tc.label, r)
		}
	}
}

// TestBitmapSteadyStateZeroAllocs mirrors TestSteadyStateZeroAllocs with
// the ready-queue implementation pinned explicitly on both sides: the
// bitmap pick loop must stay allocation-free after warmup (its state is
// fully pre-sized in newReadyBM), and the legacy list path must remain
// clean too now that it is no longer the default.
func TestBitmapSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		wl     string
		preset string
		bitmap bool
	}{
		{"gzip", "SpecSched_4", true},
		{"libquantum", "SpecSched_4", true},
		{"gzip", "SpecSched_4", false},
	} {
		p, err := trace.ByName(tc.wl)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Preset(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ReadyBitmap = tc.bitmap
		c := MustNew(cfg, trace.New(p), p.Seed)
		c.Run(60000, 1)
		avg := testing.AllocsPerRun(20, func() {
			for i := 0; i < 2000; i++ {
				c.Step()
			}
		})
		if avg != 0 {
			t.Errorf("%s/%s bitmap=%v: %.1f allocations per 2000 steady-state cycles, want 0",
				tc.preset, tc.wl, tc.bitmap, avg)
		}
	}
}
