package core

// This file implements quiescent-cycle skipping (config.TimeSkip): under
// the event-driven scheduler, simulated time advances event-to-event
// instead of cycle-by-cycle whenever the machine is provably dead. A core
// stalled on a DRAM miss spends hundreds of cycles in which every pipeline
// phase is a no-op — commit blocked on the ROB head, the window asleep on
// consumer lists, the front end full — and per-cycle stepping pays the
// whole Step fixed cost for each of them. skipQuiescent instead computes
// the *next interesting cycle* — the minimum over every source of future
// work — and jumps c.cycle straight there, bulk-accumulating the per-cycle
// statistics (Cycles, occupancy sums) for the span.
//
// Soundness argument (why the skip is unobservable): every state change in
// the machine is initiated by one of the pipeline phases, and each phase
// can act at cycle T only if
//
//   - commit:  the ROB head is retirable (executed, not in the recovery
//     buffer, doneCycle <= T) or still needs its becameHead stamp;
//   - execute: an execute-wheel entry is due at T;
//   - events:  a replay-wheel entry is due at T;
//   - issue:   a register wakeup is due at T (regWheel), a ready-queue
//     candidate exists, or a recovery-buffer entry passes ready();
//   - dispatch: the front-queue head has traversed the front end
//     (readyAt <= T) and no structural hazard blocks it — and hazards
//     (ROB/IQ/LQ/SQ/PRF) are only ever relieved by commit/issue/execute,
//     i.e. by phases pinned above;
//   - fetch:   the front queue is below capacity and T >= fetchResume.
//
// Each activation time is either a concrete cycle this file pins as a jump
// candidate (wheel entries via wheel.nextBusy, the head's doneCycle, the
// dispatch head's readyAt, fetchResume, a recovery entry's earliest
// possible ready cycle) or requires one of the pinned events to fire
// first. By induction, no phase can act strictly before the minimum of the
// candidates, so jumping to it skips only cycles in which per-cycle
// stepping would have done nothing — including the Alpha global counter,
// which ticks only on cycles with load execution. The MSHR minimum
// (cache.CompletionSource) is folded in as an extra conservative bound:
// every fill a µ-op actually waits on already has a scheduled wakeup, so
// it can only shorten a skip.
//
// The scan scheduler keeps exact per-cycle stepping (it re-polls the whole
// window each cycle, so there is no event set to take a minimum over), and
// Step itself still advances exactly one cycle — the differential suite
// runs skip-on, skip-off, and scan side by side and requires bit-identical
// statistics.

// skipHorizon bounds one quiescent jump. It keeps the no-commit watchdog
// in stepTo live (a deadlocked machine re-checks at least every horizon)
// and bounds wheel.nextBusy's answer; real event gaps (DRAM row conflicts
// plus queueing, ~10^2..10^3 cycles) fit far inside it.
const skipHorizon = 1 << 15

// skipQuiescent jumps c.cycle to the next interesting cycle when the
// current cycle is provably dead, accumulating the skipped span's
// per-cycle statistics. A no-op when anything can happen this cycle.
func (c *Core) skipQuiescent() {
	now := c.cycle
	target := c.quiesceTarget(now)
	if target <= now {
		return
	}
	span := target - now
	// The skipped cycles change no machine state, so the per-cycle sums
	// accumulate a constant: iqCount and len(rob) are what per-cycle
	// stepping would have sampled on every one of them.
	c.run.Cycles += span
	c.run.IQOccupancySum += int64(c.iqCount) * span
	c.run.ROBOccupancySum += int64(len(c.rob)) * span
	c.run.SkippedCycles += span
	c.run.SkipSpans++
	c.cycle = target
}

// quiesceTarget returns the earliest cycle >= now at which any pipeline
// phase can possibly act. A result equal to now means the current cycle is
// not skippable. Cheap activity checks run first so busy cycles exit
// before the wheel scans.
func (c *Core) quiesceTarget(now int64) int64 {
	s := c.sched
	// Ready-queue candidates issue (or are lazily dropped) this cycle.
	if s.readyTotal > 0 {
		return now
	}
	// A busy wheel slot is collected this cycle (possibly a no-op compact
	// of future-revolution entries — which per-cycle stepping also does).
	if s.execWheel.busy(now) || s.replayWheel.busy(now) || s.regWheel.busy(now) {
		return now
	}

	target := now + skipHorizon

	// Fetch: active unless the delay queue is full or fetch is parked on a
	// redirect bubble.
	if len(c.frontQ) < c.frontCap() {
		if c.fetchResume <= now {
			return now
		}
		target = min(target, c.fetchResume)
	}

	// Dispatch: pinned by the front-queue head's rename-ready cycle unless
	// a structural hazard blocks it (hazards clear only via pinned phases).
	if len(c.frontQ) > 0 {
		e := c.frontQ[0]
		if !c.dispatchBlocked(e) {
			if e.readyAt <= now {
				return now
			}
			target = min(target, e.readyAt)
		}
	}

	// Commit: pinned by the head's completion. A head that has not been
	// stamped becameHead yet must see a real commit phase this cycle (the
	// stamp cycle feeds the criticality predictor).
	if len(c.rob) > 0 {
		head := c.rob[0]
		if head.becameHead < 0 {
			return now
		}
		if head.executed {
			if head.doneCycle <= now {
				return now
			}
			target = min(target, head.doneCycle)
		}
	}

	// Recovery buffer: issueRecovery re-polls ready() every cycle, so pin
	// each entry's earliest possible ready cycle.
	for _, e := range c.recovery {
		at, pinned := c.recoveryReadyAt(e)
		if !pinned {
			continue // waits on a source only a pinned event can publish
		}
		if at <= now {
			return now
		}
		target = min(target, at)
	}

	// Timing wheels: next due register wakeup, issue-to-execute latch, and
	// replay detection.
	target = min(target, s.regWheel.nextBusy(now, skipHorizon))
	target = min(target, s.execWheel.nextBusy(now, skipHorizon))
	target = min(target, s.replayWheel.nextBusy(now, skipHorizon))

	// Memory hierarchy: earliest in-flight MSHR fill (L1D, L2, below).
	// Strictly conservative — see the file comment.
	if fill := c.l1.NextCompletion(now); fill >= 0 {
		if fill <= now {
			return now
		}
		target = min(target, fill)
	}
	return target
}

// recoveryReadyAt bounds when a recovery-buffer entry can first pass
// ready(): the latest of its not-yet-ready source promises. pinned is
// false when the entry waits on a withdrawn promise (specReady infinity)
// or an unexecuted predicted-dependence store — both can only advance via
// an event quiesceTarget already pins (a replay revision, a replaying
// producer, the store's own execution), so the entry contributes no
// candidate of its own.
func (c *Core) recoveryReadyAt(e *inst) (at int64, pinned bool) {
	if e.src1Phys >= 0 && c.specReady[e.src1Phys] > at {
		at = c.specReady[e.src1Phys]
	}
	if e.src2Phys >= 0 && c.specReady[e.src2Phys] > at {
		at = c.specReady[e.src2Phys]
	}
	if at >= infinity {
		return 0, false
	}
	if e.memDepID >= 0 {
		if st := c.findStore(e.memDepID); st != nil && !st.executed {
			return 0, false
		}
	}
	return at, true
}
