package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/trace"
)

// TestSteadyStateZeroAllocs is the allocation regression guard for the
// event-driven scheduler: after warmup, the simulate loop must not
// allocate at all — the inst pool, pre-sized FIFO buffers, timing-wheel
// slots, and scratch slices absorb every steady-state need. Run on
// contrasting workloads (cache-resident high-IPC, DRAM-bound, and
// mispredict-heavy, which exercises the squash/refetch path).
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		wl     string
		preset string
	}{
		{"gzip", "SpecSched_4"},
		{"swim", "SpecSched_4_Crit"},
		{"libquantum", "SpecSched_4"},
		{"twolf", "Baseline_0"},
	} {
		p, err := trace.ByName(tc.wl)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Preset(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		c := MustNew(cfg, trace.New(p), p.Seed)
		// Warm until pools, buffers, and wheel slots reach steady size.
		c.Run(60000, 1)
		avg := testing.AllocsPerRun(20, func() {
			for i := 0; i < 2000; i++ {
				c.Step()
			}
		})
		if avg != 0 {
			t.Errorf("%s/%s: %.1f allocations per 2000 steady-state cycles, want 0",
				tc.preset, tc.wl, avg)
		}
		// The quiescent-cycle skip path (stepTo with config.TimeSkip) must
		// be just as clean: quiesceTarget only reads, skipQuiescent only
		// bumps counters.
		avg = testing.AllocsPerRun(20, func() {
			c.Run(0, 500)
		})
		if avg != 0 {
			t.Errorf("%s/%s: %.1f allocations per 500 committed µ-ops through stepTo, want 0",
				tc.preset, tc.wl, avg)
		}
	}
}
