package core

import (
	"fmt"
	"math/bits"

	"specsched/internal/config"
	"specsched/internal/uop"
)

// This file implements the event-driven wakeup/select scheduler
// (config.SchedEvent). It models exactly the same machine as the scan
// scheduler in backend.go — the two must produce bit-identical statistics —
// but its simulator cost is proportional to *events* (issues, completions,
// wakeups, replays) instead of window size:
//
//   - Per-physical-register consumer lists: a µ-op whose ready() predicate
//     fails subscribes to the first unavailable source (a physical register
//     or a predicted store dependence) and sleeps until that source
//     publishes a wakeup, instead of being re-polled every cycle.
//   - An age-ordered ready queue (binary min-heap on dynID): the issue
//     stage pops ready µ-ops oldest-first, matching the scan's oldest-first
//     selection exactly, and re-verifies ready() at pop time so that
//     revised or invalidated promises (replays) are honoured.
//   - Timing wheels keyed by cycle replace the per-cycle scans over
//     c.events (replay detections) and c.inflight (issue-to-execute
//     latches): register wakeups, FU completions, and scheduling-
//     misspeculation detections all fire in the cycle they are due.
//
// Readiness is not monotone under speculative scheduling — a load's promise
// can be revised later (bank conflict, miss) or withdrawn entirely (squash
// to the recovery buffer sets specReady to infinity) — so the structures
// are *candidate* sets, not truth: every pop re-checks ready() and
// re-subscribes on failure. Completeness holds because a µ-op only ever
// sleeps on a source whose specReady lies in the future, and every write
// that moves a specReady entry to a finite cycle schedules a wakeup.
//
// Stale pointers are handled with generation counters: squashed µ-ops are
// recycled through the inst pool one cycle after their squash, so the
// lazily-purged heap and wheel entries snapshot inst.gen and are dropped on
// mismatch. Consumer lists are the exception — they are walked through raw
// pointers — so squashFrom unlinks victims eagerly (schedUnlink).

// wheelItem is one scheduled entry; at disambiguates entries hashed onto
// the same slot from different wheel revolutions.
type wheelItem[T any] struct {
	at int64
	v  T
}

// wheel is a single-level timing wheel: a power-of-two ring of slots
// indexed by cycle. Entries beyond one revolution stay in their slot and
// are skipped (and retained) until their revolution comes around — an
// overflow list is unnecessary because collect compacts in place. A
// per-slot occupancy bitmap (two cache lines for a 1K-slot wheel) makes
// the every-cycle emptiness probe an L1 hit instead of a stroll through
// the 24-byte slot headers.
type wheel[T any] struct {
	mask  int64
	slots [][]wheelItem[T]
	bits  []uint64
	// n counts scheduled-but-uncollected entries across all slots, so the
	// quiescent-cycle skipper's nextBusy query is O(1) on an empty wheel
	// (the execute and replay wheels are empty through a deep stall).
	n int
}

// newWheel builds a wheel of at least minSize slots, each pre-sized to
// slotCap entries so the steady-state simulate loop never grows a slot
// (growth beyond slotCap still works; the enlarged backing is kept).
func newWheel[T any](minSize, slotCap int) wheel[T] {
	size := 8
	for size < minSize {
		size *= 2
	}
	w := wheel[T]{
		mask:  int64(size - 1),
		slots: make([][]wheelItem[T], size),
		bits:  make([]uint64, (size+63)/64),
	}
	if slotCap > 0 {
		backing := make([]wheelItem[T], size*slotCap)
		for i := range w.slots {
			w.slots[i] = backing[i*slotCap : i*slotCap : (i+1)*slotCap]
		}
	}
	return w
}

// busy reports whether the slot for cycle now holds any entries (of any
// revolution).
func (w *wheel[T]) busy(now int64) bool {
	i := now & w.mask
	return w.bits[i>>6]&(1<<uint(i&63)) != 0
}

// nextBusy returns the earliest cycle in [now, now+horizon] at which an
// entry is due, or now+horizon when nothing is scheduled in that range —
// the wheel's contribution to the quiescent-cycle skipper's "next
// interesting cycle". The occupancy bitmap alone over-approximates (a slot
// can hold only future-revolution entries), so each busy slot's entries are
// checked against their exact due cycle. Entries due before now cannot
// exist: every phase collects its wheel's due slot each executed cycle, and
// the skipper never jumps past the cycle this query returns.
func (w *wheel[T]) nextBusy(now, horizon int64) int64 {
	best := now + horizon
	if w.n == 0 {
		return best
	}
	for wi, word := range w.bits {
		for word != 0 {
			slot := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, it := range w.slots[slot] {
				if it.at >= now && it.at < best {
					best = it.at
					if best == now {
						return now
					}
				}
			}
		}
	}
	return best
}

// schedule inserts v to fire at cycle at (strictly in the future of the
// caller's current cycle; same-cycle work lands in the slot its phase is
// about to collect).
func (w *wheel[T]) schedule(at int64, v T) {
	i := at & w.mask
	w.bits[i>>6] |= 1 << uint(i&63)
	s := &w.slots[i]
	*s = append(*s, wheelItem[T]{at: at, v: v})
	w.n++
}

// collect appends every entry due at cycle now to dst, keeping future-
// revolution entries in place, and returns the extended dst.
func (w *wheel[T]) collect(now int64, dst []T) []T {
	i := now & w.mask
	s := w.slots[i]
	if len(s) == 0 {
		return dst
	}
	keep := s[:0]
	for _, it := range s {
		if it.at == now {
			dst = append(dst, it.v)
		} else {
			keep = append(keep, it)
		}
	}
	w.n -= len(s) - len(keep)
	w.slots[i] = keep
	if len(keep) == 0 {
		w.bits[i>>6] &^= 1 << uint(i&63)
	}
	return dst
}

// readyEntry is one candidate in the age-ordered ready queue. epoch
// snapshots the scheduler's revision epoch at enqueue: while no promise
// has been revised since (see eventSched.revEpoch), the entry's readiness
// verdict still stands and the pop-time re-check is skipped.
type readyEntry struct {
	dynID int64
	gen   uint32
	epoch uint32
	e     *inst
}

// readyList is the age-ordered ready queue: a dynID-sorted window inside a
// backing buffer, iterated (not popped) by the issue stage, with incoming
// candidates batched and folded in once per issue cycle. The window keeps
// slack on both sides: issue consumes the oldest entries, so the common
// compaction is an O(1) front advance, and the vacated front doubles as a
// prepend area for woken candidates older than the queue. Only arrivals
// that interleave with resident entries pay a real merge.
type readyList struct {
	buf    []readyEntry // backing; live entries are buf[off : off+n]
	off, n int
	spare  []readyEntry // standby backing for the merge (buffers alternate)
	batch  []readyEntry // unsorted arrivals since the last fold
}

// frontSlack is the prepend headroom left when a list is (re)built.
const frontSlack = 16

func (l *readyList) live() []readyEntry { return l.buf[l.off : l.off+l.n] }

func (l *readyList) add(ent readyEntry) { l.batch = append(l.batch, ent) }

func (l *readyList) len() int { return l.n + len(l.batch) }

// place rebuilds the live window from sorted src, leaving front slack.
func (l *readyList) place(src []readyEntry) {
	need := len(src) + frontSlack
	if cap(l.buf) < need {
		l.buf = make([]readyEntry, 2*need)
	}
	l.buf = l.buf[:cap(l.buf)]
	l.off = frontSlack
	l.n = copy(l.buf[l.off:], src)
}

// Functional-unit families, mirroring the budget classes of takeFU. The
// ready queue is segregated by family so that a cycle whose budget for a
// family is exhausted skips that family's entire queue in O(1) — on
// port-saturated workloads (streaming loads, FP-bound codes) this is the
// difference between O(ready) and O(issued) select cost. A family is
// skipped exactly when takeFU would fail every µop in it, so selection
// order is unchanged.
const (
	famALU = iota
	famMulDiv
	famFP
	famFPMulDiv
	famLoad
	famStore
	numFam
)

func fuFamily(cl uop.Class) int {
	switch cl {
	case uop.ClassMul, uop.ClassDiv:
		return famMulDiv
	case uop.ClassFP:
		return famFP
	case uop.ClassFPMul, uop.ClassFPDiv:
		return famFPMulDiv
	case uop.ClassLoad:
		return famLoad
	case uop.ClassStore:
		return famStore
	default: // ALU, Branch, Nop
		return famALU
	}
}

// famBlocked reports whether every µop of family f would fail takeFU this
// cycle on budget alone (unit-occupancy checks — unpipelined divides —
// still run per µop in takeFU).
func famBlocked(f int, b *fuBudget) bool {
	switch f {
	case famALU:
		return b.alu == 0
	case famMulDiv:
		return b.mulDiv == 0
	case famFP:
		return b.fp == 0
	case famFPMulDiv:
		return b.fpMulDiv == 0
	case famLoad:
		return b.ldst == 0 || b.loads == 0
	default: // famStore
		return b.ldst == 0 || b.stores == 0
	}
}

// prepare merges the arrival batch into the sorted list; called once at
// the top of each issue cycle. Batches are small (bounded by rename width
// plus woken consumers), so an insertion sort beats the sort.Slice
// indirection and allocates nothing.
func (l *readyList) prepare() {
	b := l.batch
	if len(b) == 0 {
		return
	}
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].dynID < b[j-1].dynID; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
	l.batch = b[:0]
	live := l.live()
	switch {
	case l.n == 0:
		l.place(b)
	case b[0].dynID > live[l.n-1].dynID:
		// Dispatch-driven arrivals are the youngest µops in the machine:
		// extend at the back (recentering when the buffer's tail is hit).
		if l.off+l.n+len(b) > cap(l.buf) {
			l.buf = l.buf[:cap(l.buf)]
			if frontSlack+l.n+len(b) > cap(l.buf) {
				grown := make([]readyEntry, 2*(frontSlack+l.n+len(b)))
				copy(grown[frontSlack:], live)
				l.buf = grown
			} else {
				copy(l.buf[frontSlack:], live)
			}
			l.off = frontSlack
			live = l.live()
		}
		l.n += copy(l.buf[l.off+l.n:], b)
	case b[len(b)-1].dynID < live[0].dynID && l.off >= len(b):
		// Woken candidates older than everything queued: prepend into the
		// slack the front advance leaves behind.
		l.off -= len(b)
		l.n += len(b)
		copy(l.buf[l.off:], b)
	default:
		// Interleaved arrivals: genuine merge into the standby buffer.
		need := l.n + len(b) + frontSlack
		if cap(l.spare) < need {
			l.spare = make([]readyEntry, 2*need)
		}
		merged := l.spare[:cap(l.spare)][frontSlack:frontSlack]
		i, j := 0, 0
		for i < l.n && j < len(b) {
			if live[i].dynID <= b[j].dynID {
				merged = append(merged, live[i])
				i++
			} else {
				merged = append(merged, b[j])
				j++
			}
		}
		merged = append(merged, live[i:]...)
		merged = append(merged, b[j:]...)
		l.spare, l.buf = l.buf, l.spare[:cap(l.spare)]
		l.off = frontSlack
		l.n = len(merged)
	}
}

// readyBM is the bitmap ready queue (config.ReadyBitmap, the default):
// per-family occupancy bitmaps over dispatch-sequence slots, with the hot
// per-candidate state packed into slot-indexed SoA arrays for cache
// density. A µ-op's slot is seq&mask; because squashFrom rolls the
// dispatch-sequence counter back over squashed ROB suffixes, live ROB
// seqs are always contiguous with span <= ROBEntries <= capacity, so the
// slotting never aliases two live µ-ops. Selection walks the occupancy
// words with bits.TrailingZeros64 in circular slot order starting at the
// ROB head's slot — which is exactly global age order, so the pick
// visits candidates in the same sequence as the scan scheduler and the
// list-based ready queues.
//
// Unlike the generation-purged ready lists, bits are cleared eagerly —
// at issue, at re-park (revised promise), and at squash (dropReady) —
// so a set bit always denotes a live, unissued, in-IQ candidate and the
// pick loop needs no generation or state checks.
type readyBM struct {
	mask   int64 // capacity-1; capacity is a power of two >= ROBEntries
	nwords int   // occupancy words per family (power of two)
	// words[f] is family f's occupancy bitmap; count[f] tracks its set
	// bits so empty families drop out of the pick in O(1).
	words [numFam][]uint64
	count [numFam]int
	// Slot-indexed SoA candidate state: the µ-op, its seq (invariant
	// checking), the revision epoch snapshotted at enqueue, and its
	// functional-unit family.
	slotInst  []*inst
	slotSeq   []int64
	slotEpoch []uint32
	slotFam   []uint8
}

func newReadyBM(robEntries int) *readyBM {
	size := 64
	for size < robEntries {
		size *= 2
	}
	bm := &readyBM{
		mask:      int64(size - 1),
		nwords:    size / 64,
		slotInst:  make([]*inst, size),
		slotSeq:   make([]int64, size),
		slotEpoch: make([]uint32, size),
		slotFam:   make([]uint8, size),
	}
	for f := range bm.words {
		bm.words[f] = make([]uint64, bm.nwords)
	}
	return bm
}

// set files e as a ready candidate of family f.
//
//specsched:hotpath
func (bm *readyBM) set(e *inst, f int, epoch uint32) {
	slot := e.seq & bm.mask
	bm.words[f][slot>>6] |= 1 << uint(slot&63)
	bm.count[f]++
	bm.slotInst[slot] = e
	bm.slotSeq[slot] = e.seq
	bm.slotEpoch[slot] = epoch
	bm.slotFam[slot] = uint8(f)
}

// clearSlot removes the candidate at slot (family f). Callers own the
// inReadyQ bookkeeping.
//
//specsched:hotpath
func (bm *readyBM) clearSlot(slot int64, f int) {
	bm.words[f][slot>>6] &^= 1 << uint(slot&63)
	bm.count[f]--
}

// execEntry is one issue-to-execute latch entry on the execute wheel.
type execEntry struct {
	e   *inst
	gen uint32
}

// eventSched holds all event-driven scheduler state for one core.
type eventSched struct {
	c *Core

	// ready is the age-ordered ready queue for IQ-side candidates,
	// segregated by functional-unit family (the recovery buffer keeps its
	// own age-ordered slice and replay-priority scan, per §3.1 — its size
	// is already event-proportional). readyTotal counts entries across all
	// families and batches so the per-cycle idle check is one compare.
	// With config.ReadyBitmap (the default) bm replaces the lists and
	// readyTotal is exact (no lazily-purged entries).
	ready      [numFam]readyList
	bm         *readyBM
	readyTotal int

	// revEpoch advances whenever a published promise is revised — which
	// happens only when replay events fire (processEvents): a ready
	// source register cannot otherwise move back to the future while its
	// consumer is un-issued (its physical register cannot be reallocated
	// before the consumer commits, and first-time promises only concern
	// registers that were still infinity). Ready-queue entries enqueued at
	// the current epoch therefore need no pop-time ready() re-check.
	revEpoch uint32

	// consHead[p] heads the intrusive consumer list of physical register p.
	consHead []*inst
	// regWakeAt[p] is the cycle of the most recently scheduled wakeup for
	// p — a dedup hint so fan-out subscriptions don't multiply wheel
	// entries; correctness never depends on it.
	regWakeAt []int64

	// Each wheel is collected directly by the pipeline phase it feeds:
	// execWheel by execute, replayWheel by processEvents, regWheel by
	// issue. Same-cycle insertions land in the slot being collected later
	// in the same Step (detections during execute fire in this cycle's
	// processEvents; promises published during any phase are strictly
	// future), so no staging lists are needed.
	regWheel    wheel[int32]
	execWheel   wheel[execEntry]
	replayWheel wheel[replayEvent]

	// Scratch for per-cycle drains, squash walks, and poison propagation
	// (selective replay).
	regScratch   []int32
	firedScratch []replayEvent
	inflScratch  []*inst
	execScratch  []*inst
	poisonMark   []int64
	poisonEpoch  int64
}

func newEventSched(c *Core) *eventSched {
	n := c.rmap.TotalPhys()
	s := &eventSched{
		c:         c,
		consHead:  make([]*inst, n),
		regWakeAt: make([]int64, n),
		// Register wakeups and replay detections can land a DRAM round
		// trip (plus queueing) in the future; one-K slots keep nearly all
		// of them within a single revolution.
		regWheel:    newWheel[int32](1024, 8),
		replayWheel: newWheel[replayEvent](1024, 2),
		// Issue-to-execute completions are bounded by D+1 cycles out.
		execWheel:  newWheel[execEntry](c.cfg.IssueToExecuteDelay+2, 2*c.cfg.IssueWidth),
		poisonMark: make([]int64, n),
	}
	for i := range s.regWakeAt {
		s.regWakeAt[i] = -1
	}
	if c.cfg.ReadyBitmap {
		s.bm = newReadyBM(c.cfg.ROBEntries)
	}
	return s
}

// ---- consumer lists -------------------------------------------------------

// parkTarget evaluates e's sources in one scoreboard pass and picks the
// wakeup source to park on: an unready register (reg >= 0), an unexecuted
// predicted-dependence store (st != nil), or neither — e is ready. Among
// unready registers the one with the latest promise is preferred
// (withdrawn — i.e. infinite — beats finite): any currently-unready source
// keeps the candidate-set complete, and parking on the latest one
// minimizes wake-then-repark round trips for two-source µops. A satisfied
// memory dependence is memoized away (monotone while e lives, see ready).
func (s *eventSched) parkTarget(e *inst) (reg int, st *inst) {
	c := s.c
	best, bestT := -1, int64(-1)
	if e.src1Phys >= 0 {
		if t := c.specReady[e.src1Phys]; t > c.cycle {
			best, bestT = e.src1Phys, t
		}
	}
	if e.src2Phys >= 0 {
		if t := c.specReady[e.src2Phys]; t > c.cycle && t > bestT {
			best = e.src2Phys
		}
	}
	if best >= 0 {
		return best, nil
	}
	if e.memDepID >= 0 {
		if st := c.findStore(e.memDepID); st != nil && !st.executed {
			return -1, st
		}
		e.memDepID = -1
	}
	return -1, nil
}

// subscribe parks e on an unavailable source. Callers must have
// established that ready(e) is false at the current cycle.
func (s *eventSched) subscribe(e *inst) {
	switch reg, st := s.parkTarget(e); {
	case reg >= 0:
		s.subReg(e, reg)
	case st != nil:
		s.subStore(e, st)
	default:
		// ready() flipped between the caller's check and now — impossible
		// within one cycle (nothing runs in between), so treat as a bug.
		panic("core: subscribe called on a ready µ-op")
	}
}

func (s *eventSched) subReg(e *inst, p int) {
	e.waitKind = waitOnReg
	e.waitReg = p
	e.waitPrev = nil
	e.waitNext = s.consHead[p]
	if e.waitNext != nil {
		e.waitNext.waitPrev = e
	}
	s.consHead[p] = e
	// The register's availability cycle may already be known (a finite
	// promise): make sure a wakeup is scheduled for it.
	if t := s.c.specReady[p]; t != infinity && s.regWakeAt[p] != t {
		s.regWheel.schedule(t, int32(p))
		s.regWakeAt[p] = t
	}
}

func (s *eventSched) subStore(e *inst, st *inst) {
	e.waitKind = waitOnStore
	e.waitOn = st
	e.waitPrev = nil
	e.waitNext = st.memWaitHead
	if e.waitNext != nil {
		e.waitNext.waitPrev = e
	}
	st.memWaitHead = e
}

// unlink removes e from whichever wakeup list it is subscribed to.
func (s *eventSched) unlink(e *inst) {
	switch e.waitKind {
	case waitNone:
		return
	case waitOnReg:
		if e.waitPrev == nil {
			s.consHead[e.waitReg] = e.waitNext
		} else {
			e.waitPrev.waitNext = e.waitNext
		}
	case waitOnStore:
		if e.waitPrev == nil {
			e.waitOn.memWaitHead = e.waitNext
		} else {
			e.waitPrev.waitNext = e.waitNext
		}
	}
	if e.waitNext != nil {
		e.waitNext.waitPrev = e.waitPrev
	}
	e.waitKind = waitNone
	e.waitOn = nil
	e.waitPrev = nil
	e.waitNext = nil
}

// enqueue (re-)evaluates a dispatched or woken µ-op in one scoreboard
// pass: ready candidates join the ready queue; the rest park on their
// wakeup source (see parkTarget for the policy).
func (s *eventSched) enqueue(e *inst) {
	if e.squashed || e.inReadyQ {
		return
	}
	switch reg, st := s.parkTarget(e); {
	case reg >= 0:
		s.subReg(e, reg)
	case st != nil:
		s.subStore(e, st)
	default:
		e.inReadyQ = true
		if s.bm != nil {
			s.bm.set(e, fuFamily(e.u.Class), s.revEpoch)
		} else {
			s.ready[fuFamily(e.u.Class)].add(readyEntry{dynID: e.dynID, gen: e.gen, epoch: s.revEpoch, e: e})
		}
		s.readyTotal++
	}
}

// dropReady eagerly clears a squashed µ-op's ready-bitmap bit. The
// bitmap's slot will be reused as soon as squashFrom rolls the dispatch
// sequence back, so — unlike the generation-purged list and wheel
// entries — bitmap membership cannot be purged lazily. List mode is a
// no-op (squashFrom already clears inReadyQ; the list entry dies by
// generation).
func (s *eventSched) dropReady(e *inst) {
	if s.bm == nil || !e.inReadyQ {
		return
	}
	s.bm.clearSlot(e.seq&s.bm.mask, int(s.bm.slotFam[e.seq&s.bm.mask]))
	s.readyTotal--
}

// wakeReg flushes register p's consumer list through enqueue.
func (s *eventSched) wakeReg(p int) {
	e := s.consHead[p]
	s.consHead[p] = nil
	for e != nil {
		next := e.waitNext
		e.waitKind = waitNone
		e.waitPrev = nil
		e.waitNext = nil
		s.c.run.SchedWakeups++
		s.enqueue(e)
		e = next
	}
}

// onStoreExecuted flushes the memory-dependence waiters of a store the
// moment it executes — the cycle scan-mode ready() would first see
// st.executed.
func (s *eventSched) onStoreExecuted(st *inst) {
	e := st.memWaitHead
	st.memWaitHead = nil
	for e != nil {
		next := e.waitNext
		e.waitKind = waitNone
		e.waitOn = nil
		e.waitPrev = nil
		e.waitNext = nil
		s.c.run.SchedWakeups++
		s.enqueue(e)
		e = next
	}
}

// onPublish is the hook behind every finite specReady write: dependents of
// p need a wakeup at cycle t. Infinity writes (rename, squash-to-buffer)
// schedule nothing — consumers stay parked until a finite promise appears.
func (s *eventSched) onPublish(p int, t int64) {
	if t == infinity || s.consHead[p] == nil || s.regWakeAt[p] == t {
		return
	}
	if t <= s.c.cycle {
		// All finite publications promise at least cycle+1 (minimum
		// latency is one cycle); a same-or-past-cycle publication would
		// mean a wakeup silently missed.
		panic(fmt.Sprintf("core: specReady publication for r%d at cycle %d not in the future (cycle %d)",
			p, t, s.c.cycle))
	}
	s.regWheel.schedule(t, int32(p))
	s.regWakeAt[p] = t
}

// onIssue latches an issued µ-op on the execute wheel (replacing the
// c.inflight slice).
func (s *eventSched) onIssue(e *inst) {
	s.execWheel.schedule(e.execCycle, execEntry{e: e, gen: e.gen})
}

// scheduleReplay files a scheduling-misspeculation detection (replacing the
// c.events slice). Detections are created during execute with detect >=
// the current cycle; same-cycle ones land in the slot this cycle's
// processEvents is about to collect.
func (s *eventSched) scheduleReplay(ev replayEvent) {
	ev.gen = ev.load.gen
	s.replayWheel.schedule(ev.detect, ev)
}

// ---- pipeline phases ------------------------------------------------------

// liveExec reports whether a popped execute-wheel entry still denotes the
// issue it was filed for (the µ-op may have been squashed, replayed to the
// recovery buffer, or recycled for a different dynamic µ-op since).
func liveExec(ent execEntry, now int64) bool {
	e := ent.e
	return e.gen == ent.gen && e.issued && !e.executed && e.execCycle == now
}

// execute drains this cycle's issue-to-execute latches from the execute
// wheel. Mirrors the scan execute(): collect first, then run with
// per-entry squash re-checks so an older µ-op squashing mid-cycle cancels
// younger same-cycle executions.
func (s *eventSched) execute() {
	c := s.c
	now := c.cycle
	if !s.execWheel.busy(now) {
		return
	}
	slot := &s.execWheel.slots[now&s.execWheel.mask]
	execs := s.execScratch[:0]
	keep := (*slot)[:0]
	for _, it := range *slot {
		if it.at != now {
			keep = append(keep, it) // future revolution
			continue
		}
		if liveExec(it.v, now) && !it.v.e.squashed {
			execs = append(execs, it.v.e)
		}
	}
	s.execWheel.n -= len(*slot) - len(keep)
	*slot = keep
	if len(keep) == 0 {
		i := now & s.execWheel.mask
		s.execWheel.bits[i>>6] &^= 1 << uint(i&63)
	}
	c.run.SchedEvents += int64(len(execs))
	for _, e := range execs {
		if e.squashed {
			continue // squashed by an older µ-op executing this cycle
		}
		c.executeOne(e)
	}
	s.execScratch = execs[:0]
}

// processEvents fires this cycle's pending schedule-misspeculation events.
// Identical coalescing semantics to the scan version: one squash per cycle,
// classified by the first triggering cause.
func (s *eventSched) processEvents() {
	c := s.c
	if !s.replayWheel.busy(c.cycle) {
		return
	}
	pending := s.replayWheel.collect(c.cycle, s.firedScratch[:0])
	if len(pending) == 0 {
		s.firedScratch = pending
		return
	}
	triggered := false
	var cause replayCause
	fired := pending[:0]
	for _, ev := range pending {
		if ev.gen != ev.load.gen || ev.load.squashed {
			continue // dropped with its load
		}
		c.run.SchedEvents++
		if ev.load.destPhys >= 0 {
			w := ev.reviseTo
			if w <= c.cycle {
				w = c.cycle + 1
			}
			c.publishSpecReady(ev.load.destPhys, w)
		}
		if ev.cause == causeBank {
			c.run.BankReplayEvents++
		} else {
			c.run.MissReplayEvents++
		}
		fired = append(fired, ev)
		if !triggered {
			triggered = true
			cause = ev.cause
		}
	}
	if len(fired) > 0 {
		// Fired events revised promises (and a triggered squash withdraws
		// more): previously verified ready-queue entries must re-check.
		s.revEpoch++
	}
	if triggered {
		if c.cfg.Replay == config.SelectiveReplay {
			s.selectiveSquash(fired)
		} else {
			s.replaySquash(cause)
		}
	}
	s.firedScratch = fired[:0]
}

// collectInflight snapshots the live in-flight (issued, not yet executed)
// µ-ops in issue order by walking the execute wheel's future slots. At
// processEvents time every in-flight µ-op was issued in
// [cycle-D, cycle-1], i.e. executes in [cycle+1, cycle+D]; within a slot,
// entries sit in doIssue order, and slots ascend in issue cycle, so the
// walk reproduces the scan's inflight list order exactly.
func (s *eventSched) collectInflight() []*inst {
	c := s.c
	out := s.inflScratch[:0]
	for t := c.cycle + 1; t <= c.cycle+c.delay(); t++ {
		for _, it := range s.execWheel.slots[t&s.execWheel.mask] {
			if it.at == t && liveExec(it.v, t) && !it.v.e.squashed {
				out = append(out, it.v.e)
			}
		}
	}
	s.inflScratch = out
	return out
}

// selectiveSquash is the event-driven counterpart of the scan
// selectiveSquash: per fired event, only transitive dependents of the
// mis-scheduled load are cancelled into the recovery buffer. Poison
// propagation uses an epoch-stamped mark array instead of a per-event map.
func (s *eventSched) selectiveSquash(fired []replayEvent) {
	c := s.c
	for _, ev := range fired {
		if ev.load.destPhys < 0 {
			continue
		}
		s.poisonEpoch++
		epoch := s.poisonEpoch
		s.poisonMark[ev.load.destPhys] = epoch
		count := int64(0)
		for _, e := range s.collectInflight() {
			dep := (e.src1Phys >= 0 && s.poisonMark[e.src1Phys] == epoch) ||
				(e.src2Phys >= 0 && s.poisonMark[e.src2Phys] == epoch)
			if !dep {
				continue
			}
			if e.destPhys >= 0 {
				s.poisonMark[e.destPhys] = s.poisonEpoch
				c.publishSpecReady(e.destPhys, infinity)
				c.actReady[e.destPhys] = infinity
			}
			e.issued = false
			e.inBuffer = true
			e.specWoken = false
			e.shifted = false
			c.insertRecovery(e)
			count++
		}
		if ev.cause == causeBank {
			c.run.ReplayedBank += count
		} else {
			c.run.ReplayedMiss += count
		}
	}
}

// replaySquash cancels the D in-flight issue groups (Alpha-style squash),
// exactly as the scan version does over c.inflight.
func (s *eventSched) replaySquash(cause replayCause) {
	c := s.c
	lo := c.cycle - c.delay()
	count := int64(0)
	for _, e := range s.collectInflight() {
		if e.issueCycle < lo || e.issueCycle >= c.cycle {
			continue
		}
		e.issued = false
		e.inBuffer = true
		if e.destPhys >= 0 {
			c.publishSpecReady(e.destPhys, infinity)
			c.actReady[e.destPhys] = infinity
		}
		e.specWoken = false
		e.shifted = false
		c.insertRecovery(e)
		count++
	}
	if cause == causeBank {
		c.run.ReplayedBank += count
	} else {
		c.run.ReplayedMiss += count
	}
	c.issueBlock = c.cycle
}

// issue is the event-driven select stage: due register wakeups flush their
// consumer lists, the recovery buffer replays with priority (shared with
// the scan implementation), and the remaining width pops the age-ordered
// ready queue — re-verifying ready() at pop so revised promises park the
// µ-op back on a consumer list.
func (s *eventSched) issue() {
	c := s.c
	// Fire due register wakeups — even on a replay-blocked cycle (wakeup
	// is not select: the scan implementation implicitly re-polls every
	// cycle, so the blocked cycle must not swallow these). A wakeup is
	// valid only if the register's promise still stands (specReady <= now);
	// otherwise the promise was revised or withdrawn and consumers stay
	// parked — the revision itself scheduled (or will schedule) their next
	// wakeup.
	if s.regWheel.busy(c.cycle) {
		regs := s.regWheel.collect(c.cycle, s.regScratch[:0])
		for _, p := range regs {
			if c.specReady[p] <= c.cycle {
				c.run.SchedEvents++
				s.wakeReg(int(p))
			}
		}
		s.regScratch = regs[:0]
	}

	if c.cycle == c.issueBlock {
		return
	}

	// Idle fast path: nothing schedulable anywhere (common on memory-bound
	// phases, where the window is full but asleep). Checked before any of
	// the select state below exists — at 10+ cycles per committed µ-op,
	// per-cycle fixed cost is what dominates simulator time.
	if s.readyTotal == 0 && len(c.recovery) == 0 {
		return
	}

	c.loadBanksThisCycle = c.loadBanksThisCycle[:0]

	budget := c.newBudget()
	width := c.cfg.IssueWidth
	loadsIssued := 0

	// Recovery buffer: replay with priority, oldest first (shared helper —
	// identical semantics in both scheduler implementations).
	width = c.issueRecovery(&budget, width, &loadsIssued)

	if s.bm != nil {
		s.pickBitmap(&budget, width, &loadsIssued)
	} else {
		s.pickList(&budget, width, &loadsIssued)
	}
}

// pickBitmap is the bitmap select stage: one circular pass over the
// occupancy words of the budget-eligible families, oldest candidate
// first. The pass starts at the ROB head's slot; the base word is
// visited twice — masked to its high bits first and its low bits last —
// so within-word bit order never yields a younger candidate before an
// older one. Families whose per-cycle budget is exhausted drop out of
// the union wholesale, exactly the candidates takeFU would reject one by
// one (budgets only decrease within a cycle).
//
//specsched:hotpath
func (s *eventSched) pickBitmap(budget *fuBudget, width int, loadsIssued *int) {
	c := s.c
	bm := s.bm
	var act [numFam]int
	na := 0
	for f := 0; f < numFam; f++ {
		if bm.count[f] > 0 && !famBlocked(f, budget) {
			act[na] = f
			na++
		}
	}
	if na == 0 || width <= 0 {
		return
	}
	// A non-empty bitmap implies a non-empty ROB (every candidate is a
	// live ROB entry), so the head's slot anchors the circular scan.
	baseSlot := c.rob[0].seq & bm.mask
	wi := int(baseSlot >> 6)
	wmask := bm.nwords - 1
	baseOff := uint(baseSlot & 63)
	visits := bm.nwords
	if baseOff != 0 {
		visits++
	}
	for v := 0; v < visits && width > 0 && na > 0; v++ {
		var cur uint64
		for a := 0; a < na; a++ {
			cur |= bm.words[act[a]][wi]
		}
		if v == 0 {
			cur &= ^uint64(0) << baseOff
		} else if v == visits-1 && baseOff != 0 {
			cur &= ^(^uint64(0) << baseOff)
		}
		c.run.SchedBitmapWords++
		for cur != 0 && width > 0 {
			slot := int64(wi<<6 + bits.TrailingZeros64(cur))
			cur &= cur - 1
			c.run.SchedBitmapPicks++
			f := int(bm.slotFam[slot])
			if famBlocked(f, budget) {
				// f's budget ran out mid-pass: drop it from the union and
				// mask its remaining bits out of the current word.
				for a := 0; a < na; a++ {
					if act[a] == f {
						na--
						act[a] = act[na]
						break
					}
				}
				if na == 0 {
					return
				}
				cur &^= bm.words[f][wi]
				continue
			}
			e := bm.slotInst[slot]
			if bm.slotEpoch[slot] != s.revEpoch {
				if !c.ready(e) {
					// A promise was revised since enqueue and this
					// candidate's source is no longer available: park on a
					// consumer list.
					bm.clearSlot(slot, f)
					e.inReadyQ = false
					s.readyTotal--
					s.subscribe(e)
					continue
				}
				// Still ready under the current epoch: refresh so later
				// cycles skip the re-check (readiness cannot regress
				// without another revision).
				bm.slotEpoch[slot] = s.revEpoch
			}
			if !c.takeFU(e, budget) {
				// Unit occupied (divide spacing): stays ready — only this
				// cycle's working copy consumed the bit.
				continue
			}
			bm.clearSlot(slot, f)
			e.inReadyQ = false
			s.readyTotal--
			c.doIssue(e, loadsIssued)
			width--
		}
		wi = (wi + 1) & wmask
	}
}

// pickList is the legacy list select stage (config.ReadyBitmap off).
func (s *eventSched) pickList(budget *fuBudget, width int, loadsIssued *int) {
	c := s.c

	// Fold arrival batches and build the active-family worklist.
	var idx, keep [numFam]int
	var lives [numFam][]readyEntry
	var act [numFam]int
	na := 0
	for f := range s.ready {
		s.ready[f].prepare()
		lives[f] = s.ready[f].live()
		if len(lives[f]) > 0 {
			act[na] = f
			na++
		}
	}

	// Scheduler fills the holes, oldest first, from the family-segregated
	// ready queues: a merge by dynID over the active families visits
	// candidates in exactly the scan's age order, but families whose
	// per-cycle budget is exhausted drop out of the merge wholesale —
	// precisely the entries takeFU would reject one by one (budgets only
	// ever decrease within a cycle, so removal is permanent). Issued and
	// invalidated entries compact out; in the common case a family's
	// removals form a prefix and compaction is a pure front advance.
	for width > 0 && na > 0 {
		best := -1
		var bestID int64
		for a := 0; a < na; {
			f := act[a]
			if idx[f] >= len(lives[f]) || famBlocked(f, budget) {
				na--
				act[a] = act[na]
				continue
			}
			if id := lives[f][idx[f]].dynID; best < 0 || id < bestID {
				best, bestID = f, id
			}
			a++
		}
		if best < 0 {
			break
		}
		ent := lives[best][idx[best]]
		idx[best]++
		e := ent.e
		if e.gen != ent.gen {
			continue // recycled: stale entry for a squashed µ-op
		}
		if e.squashed || e.issued || e.inBuffer || e.executed || !e.inIQ {
			e.inReadyQ = false
			continue
		}
		if ent.epoch != s.revEpoch && !c.ready(e) {
			// A promise was revised since enqueue and this entry's source
			// is no longer available: park on a consumer list.
			e.inReadyQ = false
			s.subscribe(e)
			continue
		}
		if !c.takeFU(e, budget) {
			// Unit occupied (divide spacing): stays ready, like the scan
			// continuing past it to younger entries.
			lives[best][keep[best]] = ent
			keep[best]++
			continue
		}
		e.inReadyQ = false
		c.doIssue(e, loadsIssued)
		width--
	}
	for f := range s.ready {
		switch {
		case idx[f] == keep[f]:
			// Nothing removed: list unchanged in place.
		case keep[f] == 0:
			// Removals form a prefix (the overwhelmingly common case —
			// the oldest ready µops issued): pure front advance.
			s.ready[f].off += idx[f]
			s.ready[f].n -= idx[f]
			s.readyTotal -= idx[f]
		default:
			live := lives[f]
			kept := keep[f] + copy(live[keep[f]:], live[idx[f]:])
			s.readyTotal -= len(live) - kept
			s.ready[f].n = kept
		}
	}
}

// ---- invariant checking (tests) ------------------------------------------

// checkInvariants validates the scheduler's structural invariants; tests
// call it while single-stepping cores. It returns an error description or
// "" when consistent.
func (s *eventSched) checkInvariants() string {
	for p, head := range s.consHead {
		var prev *inst
		for e := head; e != nil; e = e.waitNext {
			switch {
			case e.squashed:
				return fmt.Sprintf("squashed µ-op %d still subscribed to r%d", e.dynID, p)
			case e.waitKind != waitOnReg || e.waitReg != p:
				return fmt.Sprintf("µ-op %d on r%d's consumer list but waitKind=%d waitReg=%d",
					e.dynID, p, e.waitKind, e.waitReg)
			case e.waitPrev != prev:
				return fmt.Sprintf("µ-op %d on r%d's consumer list has a broken back-link", e.dynID, p)
			case e.inReadyQ:
				return fmt.Sprintf("µ-op %d both subscribed to r%d and in the ready queue", e.dynID, p)
			}
			prev = e
		}
	}
	for f := range s.ready {
		live := s.ready[f].live()
		for i := 1; i < len(live); i++ {
			if live[i-1].dynID >= live[i].dynID {
				return fmt.Sprintf("family %d ready queue out of age order at %d", f, i)
			}
		}
		for _, seg := range [2][]readyEntry{live, s.ready[f].batch} {
			for _, ent := range seg {
				if ent.e.gen != ent.gen {
					continue // lazily dropped at the next issue iteration
				}
				if ent.e.squashed {
					continue // dropped at the next issue iteration, before recycling
				}
				if !ent.e.inReadyQ {
					return fmt.Sprintf("live ready entry for µ-op %d without inReadyQ", ent.dynID)
				}
			}
		}
	}
	if s.bm != nil {
		// Live ROB seqs must be contiguous (the alias-freedom argument) …
		for i := 1; i < len(s.c.rob); i++ {
			if s.c.rob[i].seq != s.c.rob[i-1].seq+1 {
				return fmt.Sprintf("ROB seqs not contiguous at %d: %d then %d",
					i, s.c.rob[i-1].seq, s.c.rob[i].seq)
			}
		}
		if n := len(s.c.rob); n > 0 && s.c.dispSeq != s.c.rob[n-1].seq+1 {
			return fmt.Sprintf("dispSeq %d does not follow ROB tail seq %d",
				s.c.dispSeq, s.c.rob[n-1].seq)
		}
		// … and every set bit must denote a live, unissued, in-IQ
		// candidate whose SoA row matches (the eager-clearing contract).
		total := 0
		for f := range s.bm.words {
			n := 0
			for wi, w := range s.bm.words[f] {
				for w != 0 {
					slot := int64(wi<<6 + bits.TrailingZeros64(w))
					w &= w - 1
					n++
					e := s.bm.slotInst[slot]
					switch {
					case e == nil:
						return fmt.Sprintf("family %d bit at slot %d with no µ-op", f, slot)
					case e.seq&s.bm.mask != slot || s.bm.slotSeq[slot] != e.seq:
						return fmt.Sprintf("bitmap slot %d aliased: µ-op %d has seq %d (slotSeq %d)",
							slot, e.dynID, e.seq, s.bm.slotSeq[slot])
					case e.squashed:
						return fmt.Sprintf("squashed µ-op %d still in the ready bitmap", e.dynID)
					case !e.inReadyQ:
						return fmt.Sprintf("bitmap candidate µ-op %d without inReadyQ", e.dynID)
					case e.issued || e.inBuffer || e.executed || !e.inIQ:
						return fmt.Sprintf("bitmap candidate µ-op %d is not an unissued IQ entry", e.dynID)
					case int(s.bm.slotFam[slot]) != fuFamily(e.u.Class) || f != fuFamily(e.u.Class):
						return fmt.Sprintf("bitmap candidate µ-op %d filed under family %d, class wants %d",
							e.dynID, f, fuFamily(e.u.Class))
					}
				}
			}
			if n != s.bm.count[f] {
				return fmt.Sprintf("family %d bitmap count %d, %d bits set", f, s.bm.count[f], n)
			}
			total += n
		}
		if total != s.readyTotal {
			return fmt.Sprintf("readyTotal %d, %d bitmap bits set", s.readyTotal, total)
		}
	}
	return ""
}

// wakeListLen counts subscribers of register p (tests).
func (s *eventSched) wakeListLen(p int) int {
	n := 0
	for e := s.consHead[p]; e != nil; e = e.waitNext {
		n++
	}
	return n
}
