package core

import (
	"specsched/internal/bpred"
	"specsched/internal/cache"
	"specsched/internal/uop"
)

// infinity is the "not ready / unknown" sentinel for scoreboard cycles.
const infinity = int64(1) << 60

// inst is one dynamic µ-op in flight, from fetch to retirement. It carries
// all per-instruction pipeline state; the core's structures (frontend
// queue, ROB, IQ, LSQ, recovery buffer, issue-to-execute latches) hold
// pointers into a single allocation per dynamic µ-op. The pipeline state
// lives in the embedded instState so pool recycling can zero it without
// touching u, which every fetch path overwrites in full.
type inst struct {
	u uop.UOp
	instState
}

// instState is every per-µ-op field except the µ-op itself.
type instState struct {
	// dynID is the core-local dynamic ordering id (allocated at fetch,
	// monotone; wrong-path µ-ops get ids too, unlike u.Seq).
	dynID int64

	// seq is the dispatch sequence number. Unlike dynID it is rolled back
	// when a ROB suffix is squashed (squashFrom), so the seqs of live ROB
	// entries are always contiguous — the property that makes the bitmap
	// ready queue's seq&mask slotting alias-free (see readyBM).
	seq int64

	readyAt int64 // frontend: cycle the µ-op reaches rename

	// Rename state.
	renamed            bool
	src1Phys, src2Phys int
	destPhys, oldPhys  int

	// Memory dependence (Store Sets): dynID of the store this µ-op must
	// order after, or -1.
	memDepID int64

	// Scheduler state.
	inIQ     bool // occupies an IQ entry
	inBuffer bool // sits in the recovery buffer awaiting replay
	issued   bool // in the issue-to-execute latches
	executed bool

	issueCycle  int64
	execCycle   int64
	doneCycle   int64 // result on the bypass network
	timesIssued int

	// Speculative-scheduling state (loads).
	specWoken bool  // dependents were woken assuming an L1 hit
	shifted   bool  // Schedule Shifting added one cycle to the promise
	promise   int64 // specReady value published for the destination
	loadRes   cache.LoadResult
	loadHit   bool // L1 hit (or store forward) — trains the filter
	loadDone  bool
	forwarded bool

	// Branch state. snap is pooled by the core and set for branches only —
	// inlining it would grow (and force zeroing of) every µop record by
	// the size of the captured TAGE folded state.
	pred       bpred.Prediction
	snap       *bpred.Snapshot
	predTaken  bool
	predTarget uint64
	mispred    bool

	// Store state.
	storeDone bool

	// Retirement bookkeeping.
	becameHead int64 // cycle this entry became the ROB head
	squashed   bool

	// Event-driven scheduler state (config.SchedEvent only). gen is the
	// pool-recycling generation: it survives newInst resets and lets the
	// lazily-purged structures (ready heap, timing-wheel slots) detect
	// entries whose inst has been recycled for a different dynamic µ-op.
	gen uint32
	// An unready µ-op subscribes to exactly one wakeup source at a time:
	// either a physical register's consumer list or a store's memory-
	// dependence waiter list, linked intrusively through waitPrev/waitNext.
	waitKind waitKind
	waitReg  int   // subscribed physical register (waitOnReg)
	waitOn   *inst // subscribed store (waitOnStore)
	waitPrev *inst
	waitNext *inst
	// memWaitHead heads the waiter list of µ-ops whose predicted memory
	// dependence points at this store.
	memWaitHead *inst
	// inReadyQ marks live membership in the age-ordered ready queue.
	inReadyQ bool
}

// waitKind labels what an unready µ-op is subscribed to.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitOnReg
	waitOnStore
)

func (e *inst) isLoad() bool   { return e.u.Class == uop.ClassLoad }
func (e *inst) isStore() bool  { return e.u.Class == uop.ClassStore }
func (e *inst) isBranch() bool { return e.u.Class == uop.ClassBranch }
func (e *inst) isMem() bool    { return e.u.Class.IsMem() }

// quadword returns the 8-byte-aligned address unit used for forwarding and
// violation detection.
func (e *inst) quadword() uint64 { return e.u.Addr >> 3 }

// replayCause labels a scheduling-replay trigger.
type replayCause uint8

const (
	causeBank replayCause = iota
	causeMiss
)

func (c replayCause) String() string {
	if c == causeBank {
		return "bank-conflict"
	}
	return "l1-miss"
}

// replayEvent is a pending schedule-misspeculation: at cycle detect, the
// in-flight issue groups are squashed into the recovery buffer and the
// load's destination is re-promised at reviseTo. A load that is both
// bank-delayed and missing raises two events — the conflict is discovered
// at arbitration and re-promises assuming a (delayed) hit; the miss is
// discovered when the hit signal arrives and re-promises with the true
// fill time — reproducing the paper's repeated-replay behaviour.
type replayEvent struct {
	detect   int64
	reviseTo int64
	cause    replayCause
	load     *inst
	// gen snapshots load.gen at creation; the event-driven scheduler's
	// timing wheel uses it to drop events whose load was squashed and
	// recycled before the detection cycle arrived. The scan scheduler
	// filters on load.squashed every cycle instead and ignores it.
	gen uint32
}
