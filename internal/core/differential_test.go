package core

import (
	"bytes"
	"testing"

	"specsched/internal/config"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/traceio"
	"specsched/internal/uop"
)

// The event-driven scheduler (config.SchedEvent) is a pure simulator
// optimization: it must be cycle-exact against the scan implementation —
// identical cycle counts, IPC, replay counts, and every other
// architecturally meaningful counter — on every workload, replay scheme,
// and preset. The same holds for quiescent-cycle skipping (config.TimeSkip)
// on top of it: jumping simulated time event-to-event must be unobservable.
// The bitmap ready queues (config.ReadyBitmap) are a third such layer:
// replacing the family-segregated ready lists with occupancy bitmaps must
// not move a single architectural counter. These tests run the
// implementations side by side — scan, event with per-cycle stepping,
// event with skipping, event with skipping and bitmaps — and compare
// entire stats.Run records (with the simulator-side scheduler diagnostics
// masked, since only the event implementation counts wakeups, skips, and
// bitmap picks).

func runImpl(t *testing.T, cfg config.CoreConfig, s uop.Stream, seed uint64, impl config.SchedulerImpl, warm, measure int64) *stats.Run {
	t.Helper()
	cfg.Scheduler = impl
	// The scan reference ignores TimeSkip; pin it off so the variant labels
	// stay honest.
	if impl == config.SchedScan {
		cfg.TimeSkip = false
	}
	c, err := New(cfg, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkloadName("diff")
	return c.Run(warm, measure)
}

// runEvent runs the event-driven scheduler with quiescent-cycle skipping
// and bitmap ready selection each explicitly on or off — the skip and
// bitmap differential axes.
func runEvent(t *testing.T, cfg config.CoreConfig, s uop.Stream, seed uint64, timeskip, bitmap bool, warm, measure int64) *stats.Run {
	t.Helper()
	cfg.Scheduler = config.SchedEvent
	cfg.TimeSkip = timeskip
	cfg.ReadyBitmap = bitmap
	c, err := New(cfg, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkloadName("diff")
	return c.Run(warm, measure)
}

func compareRuns(t *testing.T, label string, scan, event *stats.Run) {
	t.Helper()
	a, b := scan.MaskSchedulerCounters(), event.MaskSchedulerCounters()
	if a != b {
		t.Errorf("%s: scan and event-driven schedulers diverged\n scan: %+v\nevent: %+v",
			label, a, b)
	}
}

// TestDifferentialWorkloadsSchemesSeeds is the headline equivalence matrix:
// six Table 2 workloads × all three replay schemes × three wrong-path
// seeds, on the paper's principal configuration (SpecSched_4, banked L1).
// Every cell runs four ways — scan, event stepping every cycle, event
// skipping quiescent cycles, event skipping with bitmap ready queues —
// and all four must agree bit for bit.
func TestDifferentialWorkloadsSchemesSeeds(t *testing.T) {
	workloads := []string{"swim", "hmmer", "xalancbmk", "libquantum", "mcf", "gzip"}
	schemes := []config.ReplayScheme{
		config.RecoveryBuffer, config.IQRetention, config.SelectiveReplay,
	}
	seeds := []uint64{0, 1000, 77777}
	if testing.Short() {
		workloads = workloads[:3]
		seeds = seeds[:1]
	}
	for _, wl := range workloads {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			for _, ds := range seeds {
				cfg, err := config.Preset("SpecSched_4")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Replay = scheme
				seed := p.Seed + ds
				scan := runImpl(t, cfg, trace.New(p), seed, config.SchedScan, 2000, 8000)
				event := runEvent(t, cfg, trace.New(p), seed, false, false, 2000, 8000)
				skip := runEvent(t, cfg, trace.New(p), seed, true, false, 2000, 8000)
				bitmap := runEvent(t, cfg, trace.New(p), seed, true, true, 2000, 8000)
				compareRuns(t, wl+"/"+scheme.String(), scan, event)
				compareRuns(t, wl+"/"+scheme.String()+"/timeskip", event, skip)
				compareRuns(t, wl+"/"+scheme.String()+"/bitmap", skip, bitmap)
			}
		}
	}
}

// TestDifferentialAcrossPresets sweeps the paper's preset family (delays,
// mitigations, banked vs dual-ported L1, conservative baselines) on two
// contrasting workloads.
func TestDifferentialAcrossPresets(t *testing.T) {
	presets := []string{
		"Baseline_0", "Baseline_6", "Baseline_0_1ld",
		"SpecSched_2", "SpecSched_4_dual", "SpecSched_6",
		"SpecSched_4_Shift", "SpecSched_4_BankPred", "SpecSched_4_Ctr",
		"SpecSched_4_Filter", "SpecSched_4_Combined", "SpecSched_4_Crit",
	}
	if testing.Short() {
		presets = []string{"Baseline_0", "SpecSched_4_Crit"}
	}
	for _, preset := range presets {
		for _, wl := range []string{"xalancbmk", "swim"} {
			p, err := trace.ByName(wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := config.Preset(preset)
			if err != nil {
				t.Fatal(err)
			}
			scan := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedScan, 2000, 8000)
			event := runEvent(t, cfg, trace.New(p), p.Seed, false, false, 2000, 8000)
			skip := runEvent(t, cfg, trace.New(p), p.Seed, true, false, 2000, 8000)
			bitmap := runEvent(t, cfg, trace.New(p), p.Seed, true, true, 2000, 8000)
			compareRuns(t, preset+"/"+wl, scan, event)
			compareRuns(t, preset+"/"+wl+"/timeskip", event, skip)
			compareRuns(t, preset+"/"+wl+"/bitmap", skip, bitmap)
		}
	}
}

// TestDifferentialKernels covers the exact-semantics kernels, whose issue
// patterns (serial chains, paired same-bank loads, pointer chases) stress
// wakeup ordering differently from the profile generator.
func TestDifferentialKernels(t *testing.T) {
	kernels := map[string]func() uop.Stream{
		"chase-l1":   func() uop.Stream { return trace.NewPointerChase(3, 256) },
		"chase-dram": func() uop.Stream { return trace.NewPointerChase(7, 1<<18) },
		"stream":     func() uop.Stream { return trace.NewStreamSum(16 << 10) },
		"stencil":    func() uop.Stream { return trace.NewStencil(16 << 10) },
	}
	for name, mk := range kernels {
		for _, preset := range []string{"SpecSched_4", "SpecSched_4_Crit", "Baseline_4"} {
			cfg, err := config.Preset(preset)
			if err != nil {
				t.Fatal(err)
			}
			scan := runImpl(t, cfg, mk(), 11, config.SchedScan, 1000, 8000)
			event := runEvent(t, cfg, mk(), 11, false, false, 1000, 8000)
			skip := runEvent(t, cfg, mk(), 11, true, false, 1000, 8000)
			bitmap := runEvent(t, cfg, mk(), 11, true, true, 1000, 8000)
			compareRuns(t, preset+"/"+name, scan, event)
			compareRuns(t, preset+"/"+name+"/timeskip", event, skip)
			compareRuns(t, preset+"/"+name+"/bitmap", skip, bitmap)
		}
	}
}

// TestDifferentialWideWindow checks equivalence on an enlarged machine
// (256-entry IQ, 512-entry ROB) — the regime where the scan scheduler's
// O(window) cost dominates and an event-driven bug would most plausibly
// hide behind rare structural stalls.
func TestDifferentialWideWindow(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	cfg = config.WideWindow(cfg)
	for _, wl := range []string{"mcf", "xalancbmk"} {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		scan := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedScan, 2000, 8000)
		event := runEvent(t, cfg, trace.New(p), p.Seed, false, false, 2000, 8000)
		skip := runEvent(t, cfg, trace.New(p), p.Seed, true, false, 2000, 8000)
		bitmap := runEvent(t, cfg, trace.New(p), p.Seed, true, true, 2000, 8000)
		compareRuns(t, "IQ256/"+wl, scan, event)
		compareRuns(t, "IQ256/"+wl+"/timeskip", event, skip)
		compareRuns(t, "IQ256/"+wl+"/bitmap", skip, bitmap)
	}
}

// recordStream captures n µ-ops of a stream as an in-memory trace and
// returns a replay decoder over it — the record/replay differential axis.
func recordStream(t *testing.T, s uop.Stream, n int64, wpSeed uint64) *traceio.Decoder {
	t.Helper()
	var buf bytes.Buffer
	if _, err := traceio.Record(&buf, s, n, "differential", wpSeed); err != nil {
		t.Fatal(err)
	}
	d, err := traceio.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// traceSlack is how many µ-ops past the simulation window the record/
// replay tests capture: the core fetches ahead of commit by at most the
// in-flight window (ROB + frontend + refetch buffers), so the recorded
// trace must extend past the last committed µ-op by that much.
const traceSlack = 8192

// TestDifferentialTraceReplay is the record/replay equivalence axis over
// the complete Table 2 suite: recording every workload's stream with
// internal/traceio and replaying the trace through an identical core must
// reproduce the live run's stats.Run bit for bit — every counter,
// simulator-side diagnostics included, since recording must be perfectly
// invisible. This is the contract that makes recorded traces first-class
// workloads for the experiment grids and the CI traces job.
func TestDifferentialTraceReplay(t *testing.T) {
	const warm, measure = 1000, 6000
	workloads := trace.ProfileNames()
	if testing.Short() {
		workloads = workloads[:6]
	}
	for _, wl := range workloads {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Preset("SpecSched_4")
		if err != nil {
			t.Fatal(err)
		}
		live := runEvent(t, cfg, trace.New(p), p.Seed, true, true, warm, measure)

		d := recordStream(t, trace.New(p), warm+measure+traceSlack, p.Seed)
		replay := runEvent(t, cfg, d, d.Header().WrongPathSeed, true, true, warm, measure)
		if err := d.Err(); err != nil {
			t.Fatalf("%s: replay decoder: %v", wl, err)
		}
		if *live != *replay {
			t.Errorf("%s: trace replay diverged from live generation\n live:   %+v\n replay: %+v",
				wl, *live, *replay)
		}
	}
}

// TestDifferentialTraceReplayAcrossPresets replays one recording under
// contrasting presets (conservative baseline, principal configuration,
// full mitigations): one trace file must serve every configuration of the
// grid, exactly as the live stream does — the property the paper's
// normalization (every config over the identical instruction stream)
// depends on.
func TestDifferentialTraceReplayAcrossPresets(t *testing.T) {
	const warm, measure = 1000, 6000
	p, err := trace.ByName("xalancbmk")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := traceio.Record(&buf, trace.New(p), warm+measure+traceSlack, "differential", p.Seed); err != nil {
		t.Fatal(err)
	}
	for _, preset := range []string{"Baseline_0", "SpecSched_4", "SpecSched_4_Crit"} {
		cfg, err := config.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		live := runEvent(t, cfg, trace.New(p), p.Seed, true, true, warm, measure)
		d, err := traceio.NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		replay := runEvent(t, cfg, d, p.Seed, true, true, warm, measure)
		if *live != *replay {
			t.Errorf("%s: trace replay diverged from live generation\n live:   %+v\n replay: %+v",
				preset, *live, *replay)
		}
	}
}

// TestDifferentialTimeSkipEngages pins the optimization itself, not just
// its safety: on memory-bound workloads — the figures this PR targets — a
// large share of simulated cycles must actually be skipped, and the skip
// must be exactly invisible in the masked statistics. A silent "never
// skips" regression would pass every equivalence test while giving up the
// speedup.
func TestDifferentialTimeSkipEngages(t *testing.T) {
	for _, tc := range []struct {
		wl, preset string
		minSkipPct float64
	}{
		{"libquantum", "SpecSched_4", 50}, // L1-miss replay stalls
		{"mcf", "SpecSched_4", 50},        // DRAM pointer chasing
		{"libquantum", "Baseline_0", 50},  // conservative (NeverHit) wakeups
		{"mcf", "SpecSched_4_Crit", 50},   // filter+criticality gating
	} {
		p, err := trace.ByName(tc.wl)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := config.Preset(tc.preset)
		if err != nil {
			t.Fatal(err)
		}
		step := runEvent(t, cfg, trace.New(p), p.Seed, false, true, 2000, 20000)
		skip := runEvent(t, cfg, trace.New(p), p.Seed, true, true, 2000, 20000)
		compareRuns(t, tc.preset+"/"+tc.wl, step, skip)
		if step.SkippedCycles != 0 || step.SkipSpans != 0 {
			t.Errorf("%s/%s: skip-off run reported skips: %+v", tc.preset, tc.wl, step)
		}
		pct := 100 * float64(skip.SkippedCycles) / float64(skip.Cycles)
		if pct < tc.minSkipPct {
			t.Errorf("%s/%s: only %.1f%% of %d cycles skipped (want >= %.0f%%, %d spans)",
				tc.preset, tc.wl, pct, skip.Cycles, tc.minSkipPct, skip.SkipSpans)
		}
		if skip.SkipSpans == 0 || skip.SkippedCycles < skip.SkipSpans {
			t.Errorf("%s/%s: inconsistent skip counters: %d cycles in %d spans",
				tc.preset, tc.wl, skip.SkippedCycles, skip.SkipSpans)
		}
	}
}
