package core

import (
	"testing"

	"specsched/internal/config"
	"specsched/internal/stats"
	"specsched/internal/trace"
	"specsched/internal/uop"
)

// The event-driven scheduler (config.SchedEvent) is a pure simulator
// optimization: it must be cycle-exact against the scan implementation —
// identical cycle counts, IPC, replay counts, and every other
// architecturally meaningful counter — on every workload, replay scheme,
// and preset. These tests run both implementations side by side and
// compare entire stats.Run records (with the simulator-side scheduler
// diagnostics masked, since only the event implementation counts wakeups).

func runImpl(t *testing.T, cfg config.CoreConfig, s uop.Stream, seed uint64, impl config.SchedulerImpl, warm, measure int64) *stats.Run {
	t.Helper()
	cfg.Scheduler = impl
	c, err := New(cfg, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkloadName("diff")
	return c.Run(warm, measure)
}

func compareRuns(t *testing.T, label string, scan, event *stats.Run) {
	t.Helper()
	a, b := scan.MaskSchedulerCounters(), event.MaskSchedulerCounters()
	if a != b {
		t.Errorf("%s: scan and event-driven schedulers diverged\n scan: %+v\nevent: %+v",
			label, a, b)
	}
}

// TestDifferentialWorkloadsSchemesSeeds is the headline equivalence matrix:
// six Table 2 workloads × all three replay schemes × three wrong-path
// seeds, on the paper's principal configuration (SpecSched_4, banked L1).
func TestDifferentialWorkloadsSchemesSeeds(t *testing.T) {
	workloads := []string{"swim", "hmmer", "xalancbmk", "libquantum", "mcf", "gzip"}
	schemes := []config.ReplayScheme{
		config.RecoveryBuffer, config.IQRetention, config.SelectiveReplay,
	}
	seeds := []uint64{0, 1000, 77777}
	if testing.Short() {
		workloads = workloads[:3]
		seeds = seeds[:1]
	}
	for _, wl := range workloads {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			for _, ds := range seeds {
				cfg, err := config.Preset("SpecSched_4")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Replay = scheme
				seed := p.Seed + ds
				scan := runImpl(t, cfg, trace.New(p), seed, config.SchedScan, 2000, 8000)
				event := runImpl(t, cfg, trace.New(p), seed, config.SchedEvent, 2000, 8000)
				compareRuns(t, wl+"/"+scheme.String(), scan, event)
			}
		}
	}
}

// TestDifferentialAcrossPresets sweeps the paper's preset family (delays,
// mitigations, banked vs dual-ported L1, conservative baselines) on two
// contrasting workloads.
func TestDifferentialAcrossPresets(t *testing.T) {
	presets := []string{
		"Baseline_0", "Baseline_6", "Baseline_0_1ld",
		"SpecSched_2", "SpecSched_4_dual", "SpecSched_6",
		"SpecSched_4_Shift", "SpecSched_4_BankPred", "SpecSched_4_Ctr",
		"SpecSched_4_Filter", "SpecSched_4_Combined", "SpecSched_4_Crit",
	}
	if testing.Short() {
		presets = []string{"Baseline_0", "SpecSched_4_Crit"}
	}
	for _, preset := range presets {
		for _, wl := range []string{"xalancbmk", "swim"} {
			p, err := trace.ByName(wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := config.Preset(preset)
			if err != nil {
				t.Fatal(err)
			}
			scan := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedScan, 2000, 8000)
			event := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedEvent, 2000, 8000)
			compareRuns(t, preset+"/"+wl, scan, event)
		}
	}
}

// TestDifferentialKernels covers the exact-semantics kernels, whose issue
// patterns (serial chains, paired same-bank loads, pointer chases) stress
// wakeup ordering differently from the profile generator.
func TestDifferentialKernels(t *testing.T) {
	kernels := map[string]func() uop.Stream{
		"chase-l1":   func() uop.Stream { return trace.NewPointerChase(3, 256) },
		"chase-dram": func() uop.Stream { return trace.NewPointerChase(7, 1<<18) },
		"stream":     func() uop.Stream { return trace.NewStreamSum(16 << 10) },
		"stencil":    func() uop.Stream { return trace.NewStencil(16 << 10) },
	}
	for name, mk := range kernels {
		for _, preset := range []string{"SpecSched_4", "SpecSched_4_Crit", "Baseline_4"} {
			cfg, err := config.Preset(preset)
			if err != nil {
				t.Fatal(err)
			}
			scan := runImpl(t, cfg, mk(), 11, config.SchedScan, 1000, 8000)
			event := runImpl(t, cfg, mk(), 11, config.SchedEvent, 1000, 8000)
			compareRuns(t, preset+"/"+name, scan, event)
		}
	}
}

// TestDifferentialWideWindow checks equivalence on an enlarged machine
// (256-entry IQ, 512-entry ROB) — the regime where the scan scheduler's
// O(window) cost dominates and an event-driven bug would most plausibly
// hide behind rare structural stalls.
func TestDifferentialWideWindow(t *testing.T) {
	cfg, err := config.Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	cfg = config.WideWindow(cfg)
	for _, wl := range []string{"mcf", "xalancbmk"} {
		p, err := trace.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		scan := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedScan, 2000, 8000)
		event := runImpl(t, cfg, trace.New(p), p.Seed, config.SchedEvent, 2000, 8000)
		compareRuns(t, "IQ256/"+wl, scan, event)
	}
}
