package config

import (
	"sort"
	"strings"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	if c.IssueWidth != 6 || c.IQEntries != 60 || c.ROBEntries != 192 {
		t.Fatalf("Default() does not match Table 1: %+v", c)
	}
	if c.L1D.Sets() != 64 {
		t.Fatalf("L1D sets = %d, want 64 (32KB/8way/64B)", c.L1D.Sets())
	}
	if c.L2.Sets() != 1024 {
		t.Fatalf("L2 sets = %d, want 1024 (1MB/16way/64B)", c.L2.Sets())
	}
}

func TestAllPresetsValid(t *testing.T) {
	for _, name := range Presets() {
		c, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if c.Name != name {
			t.Fatalf("Preset(%q).Name = %q", name, c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := Preset("SpecSched_3"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestPresetsSortedAndComplete(t *testing.T) {
	names := Presets()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Presets() not sorted: %v", names)
	}
	// 1 single-load baseline + 9 families × 4 delays.
	if want := 1 + 9*len(PresetDelays); len(names) != want {
		t.Fatalf("Presets() lists %d names, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate preset name %q", n)
		}
		seen[n] = true
	}
}

func TestPresetWideWindowSuffix(t *testing.T) {
	c, err := Preset("Baseline_0_IQ256")
	if err != nil {
		t.Fatal(err)
	}
	want := WideWindow(Baseline(0))
	if c.Name != "Baseline_0_IQ256" || c.IQEntries != 256 || c.Digest() != want.Digest() {
		t.Fatalf("Preset(Baseline_0_IQ256) = %+v, want WideWindow(Baseline_0)", c)
	}
	if _, err := Preset("Nope_IQ256"); err == nil {
		t.Fatal("unknown base preset with _IQ256 suffix must fail")
	}
	if _, err := Preset("_IQ256"); err == nil {
		t.Fatal("bare _IQ256 must fail")
	}
}

func TestBranchPenaltyConstantAcrossDelays(t *testing.T) {
	// §3.1: the frontend shrinks as the backend deepens so that the
	// minimum misprediction penalty stays at 20 cycles.
	base := Baseline(0)
	basePathLen := base.FrontendDepth + base.ExecuteStageOffset()
	for _, d := range []int{2, 4, 6} {
		c := Baseline(d)
		if got := c.FrontendDepth + c.ExecuteStageOffset(); got != basePathLen {
			t.Fatalf("delay %d: frontend+backend = %d, want %d", d, got, basePathLen)
		}
	}
}

func TestExecuteStageOffset(t *testing.T) {
	c := Baseline(4)
	if c.ExecuteStageOffset() != 5 {
		// The paper: with a 4-cycle delay, a µ-op issued at cycle 0
		// executes at cycle 5.
		t.Fatalf("ExecuteStageOffset = %d, want 5", c.ExecuteStageOffset())
	}
}

func TestPresetFlags(t *testing.T) {
	cases := []struct {
		cfg    CoreConfig
		spec   bool
		banked bool
		shift  bool
		crit   bool
		policy HitMissPolicy
	}{
		{Baseline(4), false, false, false, false, NeverHit},
		{SpecSched(4, true), true, true, false, false, AlwaysHit},
		{SpecSched(4, false), true, false, false, false, AlwaysHit},
		{SpecSchedShift(4), true, true, true, false, AlwaysHit},
		{SpecSchedCtr(4), true, true, false, false, GlobalCounter},
		{SpecSchedFilter(4), true, true, false, false, FilterAndCounter},
		{SpecSchedCombined(4), true, true, true, false, FilterAndCounter},
		{SpecSchedCrit(4), true, true, true, true, FilterAndCounter},
	}
	for _, tc := range cases {
		c := tc.cfg
		if c.SpecSched != tc.spec || c.BankedL1 != tc.banked ||
			c.ScheduleShifting != tc.shift || c.CriticalityGate != tc.crit ||
			c.HitMiss != tc.policy {
			t.Errorf("%s: flags mismatch: spec=%t banked=%t shift=%t crit=%t policy=%v",
				c.Name, c.SpecSched, c.BankedL1, c.ScheduleShifting,
				c.CriticalityGate, c.HitMiss)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*CoreConfig)
	}{
		{"negative delay", func(c *CoreConfig) { c.IssueToExecuteDelay = -1 }},
		{"zero issue width", func(c *CoreConfig) { c.IssueWidth = 0 }},
		{"zero IQ", func(c *CoreConfig) { c.IQEntries = 0 }},
		{"zero LQ", func(c *CoreConfig) { c.LQEntries = 0 }},
		{"tiny PRF", func(c *CoreConfig) { c.IntPRF = 10 }},
		{"bad load capacity", func(c *CoreConfig) { c.MaxLoadsPerCycle = 3 }},
		{"bad L1 geometry", func(c *CoreConfig) { c.L1D.SizeBytes = 1000 }},
		{"bad bank count", func(c *CoreConfig) { c.BankedL1 = true; c.L1Banks = 6 }},
		{"zero frontend", func(c *CoreConfig) { c.FrontendDepth = 0 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate did not report an error", m.name)
		}
	}
}

func TestSingleLoadPreset(t *testing.T) {
	c := BaselineSingleLoad()
	if c.MaxLoadsPerCycle != 1 {
		t.Fatalf("MaxLoadsPerCycle = %d, want 1", c.MaxLoadsPerCycle)
	}
	got, err := Preset("Baseline_0_1ld")
	if err != nil || got.MaxLoadsPerCycle != 1 {
		t.Fatalf("Preset lookup of single-load baseline failed: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if !strings.Contains(AlwaysHit.String(), "hit") {
		t.Error("AlwaysHit stringer")
	}
	if GlobalCounter.String() != "global-counter" {
		t.Error("GlobalCounter stringer")
	}
	if RecoveryBuffer.String() != "recovery-buffer" {
		t.Error("RecoveryBuffer stringer")
	}
	if IQRetention.String() != "iq-retention" {
		t.Error("IQRetention stringer")
	}
	if WordInterleave.String() != "quadword" || SetInterleave.String() != "set" {
		t.Error("Interleave stringer")
	}
}

func TestSchedulerImplDefaultAndStringer(t *testing.T) {
	// The zero value — and therefore every preset — selects the
	// event-driven scheduler; the scan implementation is opt-in.
	if Default().Scheduler != SchedEvent {
		t.Error("default scheduler is not event-driven")
	}
	for _, name := range Presets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Scheduler != SchedEvent {
			t.Errorf("preset %s does not default to the event scheduler", name)
		}
	}
	if SchedEvent.String() != "event" || SchedScan.String() != "scan" {
		t.Error("SchedulerImpl stringer")
	}
}

func TestDelaySweepNames(t *testing.T) {
	for _, d := range []int{0, 2, 4, 6} {
		if got := SpecSchedCrit(d).Name; got != strings.ReplaceAll("SpecSched_D_Crit", "D", itoa(d)) {
			t.Fatalf("name = %q", got)
		}
	}
}

func itoa(d int) string { return string(rune('0' + d)) }

// TestDigestDiscriminatesContents: equal configs share a digest; changing
// any parameter (even with the name held fixed) changes it — the property
// sweep checkpoints rely on to reject stale cells.
func TestDigestDiscriminatesContents(t *testing.T) {
	a, err := Preset("SpecSched_4")
	if err != nil {
		t.Fatal(err)
	}
	b := a
	if a.Digest() != b.Digest() {
		t.Fatal("identical configs must share a digest")
	}
	b.IQEntries *= 2
	if a.Digest() == b.Digest() {
		t.Fatal("changed config kept its digest")
	}
	c := a
	c.Scheduler = SchedScan
	if a.Digest() == c.Digest() {
		t.Fatal("scheduler implementation change kept its digest")
	}
}
