// Package config defines the simulated core's configuration and the named
// presets evaluated in the paper (Baseline_N, SpecSched_N and its _Ctr,
// _Filter, _Shift, _Combined and _Crit variants).
//
// The default parameter values reproduce Table 1 of the paper: a 4 GHz,
// 8-wide fetch/decode/rename, 6-issue out-of-order core with a 60-entry
// unified IQ, 192-entry ROB, 72/48-entry LQ/SQ, a banked 32 KB L1D with a
// 4-cycle load-to-use latency, a 1 MB L2 with a stride prefetcher, and a
// single-channel DDR3-1600 memory.
package config

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// HitMissPolicy selects how the scheduler decides whether a load may wake
// its dependents speculatively (i.e. assuming an L1 hit).
type HitMissPolicy uint8

const (
	// AlwaysHit speculatively wakes dependents of every load (the
	// baseline speculative scheduling scheme, SpecSched_*).
	AlwaysHit HitMissPolicy = iota
	// GlobalCounter uses the Alpha 21264's 4-bit global counter: the MSB
	// decides whether loads may wake dependents speculatively
	// (SpecSched_*_Ctr).
	GlobalCounter
	// FilterAndCounter consults a per-PC 2-bit saturating counter with a
	// silence bit first; silenced entries defer to the global counter
	// (SpecSched_*_Filter).
	FilterAndCounter
	// NeverHit never wakes load dependents speculatively; they wait for
	// the hit/miss signal. This is what Baseline_* uses internally.
	NeverHit
)

func (p HitMissPolicy) String() string {
	switch p {
	case AlwaysHit:
		return "always-hit"
	case GlobalCounter:
		return "global-counter"
	case FilterAndCounter:
		return "filter+counter"
	case NeverHit:
		return "never-hit"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ReplayScheme selects how issued-but-unexecuted µ-ops are kept for replay.
type ReplayScheme uint8

const (
	// RecoveryBuffer releases IQ entries at issue (except memory µ-ops)
	// and keeps issue groups in a recovery buffer with replay priority, as
	// in §3.1 of the paper (after Morancho et al.).
	RecoveryBuffer ReplayScheme = iota
	// IQRetention keeps every µ-op in the scheduler until it executes
	// correctly. The paper reports this "greatly decreased performance
	// for a 60-entry scheduler"; provided as an ablation.
	IQRetention
	// SelectiveReplay cancels only the transitive dependents of the
	// mis-scheduled load, Pentium-4 style (§2.1.1): independent in-flight
	// µ-ops execute unharmed and no issue cycle is lost. The paper's
	// mechanisms are replay-scheme-agnostic; this scheme demonstrates it.
	SelectiveReplay
)

func (s ReplayScheme) String() string {
	switch s {
	case IQRetention:
		return "iq-retention"
	case SelectiveReplay:
		return "selective"
	default:
		return "recovery-buffer"
	}
}

// SchedulerImpl selects the software implementation of the wakeup/select
// logic in the simulated backend. Both implementations are cycle-exact
// models of the same machine — they must produce bit-identical statistics —
// and differ only in simulator cost: the scan implementation re-evaluates
// every issue-queue entry every cycle (O(window) per cycle), while the
// event-driven implementation maintains per-physical-register consumer
// lists, an age-ordered ready queue, and a timing wheel so scheduling work
// is proportional to events (completions, wakeups) rather than window size.
type SchedulerImpl uint8

const (
	// SchedEvent is the event-driven scheduler (consumer lists + ready
	// queue + timing wheel). The default.
	SchedEvent SchedulerImpl = iota
	// SchedScan is the legacy per-cycle full-window scan, kept for one
	// release as the differential-testing reference.
	SchedScan
)

func (s SchedulerImpl) String() string {
	if s == SchedScan {
		return "scan"
	}
	return "event"
}

// Interleave selects the L1D bank-interleaving function.
type Interleave uint8

const (
	// WordInterleave spreads consecutive quadwords (8 B) across banks —
	// the Sandy Bridge layout the paper models.
	WordInterleave Interleave = iota
	// SetInterleave spreads consecutive cache sets across banks.
	SetInterleave
)

func (i Interleave) String() string {
	if i == SetInterleave {
		return "set"
	}
	return "quadword"
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// Latency is the load-to-use latency (L1) or access latency (L2).
	Latency int
	MSHRs   int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// DRAMConfig describes the DDR3 timing model. All times are in CPU cycles
// unless suffixed otherwise.
type DRAMConfig struct {
	// CPUCyclesPerDRAMCycle converts DRAM bus cycles to CPU cycles
	// (4 GHz CPU over an 800 MHz DDR3-1600 bus = 5).
	CPUCyclesPerDRAMCycle int
	// TRCD, TCAS, TRP are in DRAM cycles (11-11-11 for DDR3-1600).
	TRCD, TCAS, TRP int
	// BurstDRAMCycles is the data-transfer occupancy of one 64 B line
	// over the 8 B DDR bus (4 bus cycles).
	BurstDRAMCycles int
	Ranks           int
	BanksPerRank    int
	RowBytes        int
	// TREFICycles is the refresh interval in CPU cycles (7.8 µs @ 4 GHz).
	TREFICycles int64
	// TRFCCycles is the refresh duration in CPU cycles.
	TRFCCycles int
	// ControllerOverhead is a fixed request overhead in CPU cycles added
	// to every access. The paper's 75-cycle minimum read latency equals
	// tCAS (11 DRAM cycles = 55 CPU) plus the burst (4 DRAM cycles = 20
	// CPU) exactly, and the 185-cycle maximum equals tRP+tRCD+tCAS+burst,
	// so the calibrated overhead is 0.
	ControllerOverhead int
}

// CoreConfig is the complete configuration of one simulated core.
type CoreConfig struct {
	// Name is the preset name, e.g. "SpecSched_4_Crit".
	Name string

	// IssueToExecuteDelay is the paper's N-1: a µ-op issued at cycle T
	// reaches Execute at T + IssueToExecuteDelay + 1.
	IssueToExecuteDelay int

	// FrontendDepth is the number of cycles between fetch and rename.
	// The presets keep FrontendDepth + backend depth constant so the
	// 20-cycle minimum branch misprediction penalty is preserved (§3.1).
	FrontendDepth int

	// Widths (in µ-ops per cycle).
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	// Window structures.
	IQEntries  int
	ROBEntries int
	LQEntries  int
	SQEntries  int
	IntPRF     int
	FPPRF      int

	// Functional units.
	NumALU      int
	NumMulDiv   int
	NumFP       int
	NumFPMulDiv int
	// NumLdStPorts is the number of AGU/cache ports usable by loads and
	// stores combined; at most MaxStoresPerCycle of them may be stores
	// and at most MaxLoadsPerCycle loads.
	NumLdStPorts      int
	MaxLoadsPerCycle  int
	MaxStoresPerCycle int

	// Speculative scheduling.
	SpecSched        bool
	HitMiss          HitMissPolicy
	ScheduleShifting bool
	// BankPredictShift replaces unconditional Schedule Shifting with a
	// Yoaz-style bank predictor: the second load's dependents are
	// delayed only when the two loads of the issue group are predicted
	// to hit the same bank (§2.2, §4.2).
	BankPredictShift bool
	// BankPredEntries sizes the bank predictor table.
	BankPredEntries int
	CriticalityGate bool
	Replay          ReplayScheme

	// Scheduler selects the simulator-side wakeup/select implementation
	// (event-driven by default; the legacy scan kept for differential
	// testing). It must not affect simulated timing, only simulator speed.
	Scheduler SchedulerImpl

	// TimeSkip lets the event-driven scheduler advance simulated time
	// straight to the next scheduled event when the machine is provably
	// quiescent (no ready or replayable µ-op, no due timing-wheel entry,
	// no retirable ROB head, front end blocked) instead of stepping the
	// pipeline loop through every dead cycle. Per-cycle statistics are
	// bulk-accumulated over the skipped span, so results are bit-identical
	// to per-cycle stepping (asserted by the differential suite). Ignored
	// by SchedScan, which always steps cycle by cycle. On by default.
	TimeSkip bool

	// ReadyBitmap replaces the event-driven scheduler's family-segregated
	// ready-queue lists with per-family occupancy bitmaps over
	// dispatch-sequence slots, picked oldest-first with
	// bits.TrailingZeros64, the hot per-candidate state packed into
	// slot-indexed SoA arrays. Purely a simulator-speed lever: results are
	// bit-identical either way (asserted by the differential suite).
	// Ignored by SchedScan. On by default.
	ReadyBitmap bool

	// Hit/miss filter geometry (§5.2).
	FilterEntries       int
	FilterResetInterval int64
	// FilterNoSilence disables the silence bit (ablation; the paper
	// found the silence bit performs better).
	FilterNoSilence bool

	// Criticality predictor geometry (§5.3).
	CritEntries int
	CritCtrBits int

	// L1 data cache.
	L1D          CacheConfig
	BankedL1     bool
	L1Banks      int
	L1Interleave Interleave
	// SingleLineBuffer enables the Rivers-style two-read-port line buffer
	// that lets two same-set accesses proceed in one cycle (§4.2).
	SingleLineBuffer bool

	// L2 cache and prefetcher.
	L2             CacheConfig
	PrefetchDegree int
	PrefetchEnable bool

	DRAM DRAMConfig

	// Branch prediction.
	MinBranchPenalty int
	BTBEntries       int
	BTBWays          int
	RASEntries       int
	// TAGE geometry: number of tagged components and total budget knob.
	TAGEComponents int
	TAGEBaseBits   int // log2 entries of the bimodal base predictor
	TAGETaggedBits int // log2 entries of each tagged component
	TAGEMaxHistory int
}

// Validate reports configuration errors a user could plausibly introduce
// when deriving a custom config from a preset.
func (c *CoreConfig) Validate() error {
	switch {
	case c.IssueToExecuteDelay < 0:
		return fmt.Errorf("config %q: negative issue-to-execute delay", c.Name)
	case c.IssueWidth <= 0 || c.FetchWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("config %q: non-positive pipeline width", c.Name)
	case c.IQEntries <= 0 || c.ROBEntries <= 0:
		return fmt.Errorf("config %q: non-positive window size", c.Name)
	case c.LQEntries <= 0 || c.SQEntries <= 0:
		return fmt.Errorf("config %q: non-positive LSQ size", c.Name)
	case c.IntPRF < 64 || c.FPPRF < 64:
		return fmt.Errorf("config %q: physical register file smaller than architectural state", c.Name)
	case c.MaxLoadsPerCycle <= 0 || c.MaxLoadsPerCycle > c.NumLdStPorts:
		return fmt.Errorf("config %q: invalid load issue capacity", c.Name)
	case c.L1D.SizeBytes%(c.L1D.Ways*c.L1D.LineBytes) != 0:
		return fmt.Errorf("config %q: L1D geometry not a whole number of sets", c.Name)
	case c.L2.SizeBytes%(c.L2.Ways*c.L2.LineBytes) != 0:
		return fmt.Errorf("config %q: L2 geometry not a whole number of sets", c.Name)
	case c.BankedL1 && (c.L1Banks <= 0 || c.L1Banks&(c.L1Banks-1) != 0):
		return fmt.Errorf("config %q: bank count must be a positive power of two", c.Name)
	case c.FrontendDepth < 1:
		return fmt.Errorf("config %q: frontend depth must be at least 1", c.Name)
	}
	return nil
}

// ExecuteStageOffset returns the number of cycles after issue at which a
// µ-op reaches the Execute stage (the paper's N = delay + 1).
func (c *CoreConfig) ExecuteStageOffset() int { return c.IssueToExecuteDelay + 1 }

// Digest returns a stable hash over every configuration field. Sweep
// checkpoints (internal/sim) store it next to each completed cell so a
// configuration whose name stayed the same while its parameters changed —
// common for hand-built ablation variants — never reuses stale results.
func (c CoreConfig) Digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", c)
	return h.Sum64()
}

// baseFrontendDepth is Baseline_0's frontend depth (15 cycles, §3.1); the
// presets shorten the frontend as the backend deepens to keep the branch
// misprediction penalty constant at 20 cycles.
const baseFrontendDepth = 15

// Default returns the Table 1 machine with no speculative scheduling and a
// zero-cycle issue-to-execute delay (the paper's Baseline_0). The L1 is
// dual-ported (not banked), matching the normalization baseline of §5.
func Default() CoreConfig {
	return CoreConfig{
		Name:                "Baseline_0",
		IssueToExecuteDelay: 0,
		FrontendDepth:       baseFrontendDepth,
		FetchWidth:          8,
		RenameWidth:         8,
		IssueWidth:          6,
		RetireWidth:         8,
		IQEntries:           60,
		ROBEntries:          192,
		LQEntries:           72,
		SQEntries:           48,
		IntPRF:              256,
		FPPRF:               256,
		NumALU:              4,
		NumMulDiv:           1,
		NumFP:               2,
		NumFPMulDiv:         2,
		NumLdStPorts:        2,
		MaxLoadsPerCycle:    2,
		MaxStoresPerCycle:   1,

		SpecSched:        false,
		HitMiss:          NeverHit,
		ScheduleShifting: false,
		CriticalityGate:  false,
		Replay:           RecoveryBuffer,
		TimeSkip:         true,
		ReadyBitmap:      true,

		FilterEntries:       2048,
		FilterResetInterval: 10000,
		BankPredEntries:     2048,
		CritEntries:         8192,
		CritCtrBits:         4,

		L1D: CacheConfig{
			SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 4, MSHRs: 64,
		},
		BankedL1:         false,
		L1Banks:          8,
		L1Interleave:     WordInterleave,
		SingleLineBuffer: true,

		L2: CacheConfig{
			SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, Latency: 13, MSHRs: 64,
		},
		PrefetchDegree: 8,
		PrefetchEnable: true,

		DRAM: DRAMConfig{
			CPUCyclesPerDRAMCycle: 5,
			TRCD:                  11,
			TCAS:                  11,
			TRP:                   11,
			BurstDRAMCycles:       4,
			Ranks:                 2,
			BanksPerRank:          8,
			RowBytes:              8 << 10,
			TREFICycles:           31200, // 7.8 µs at 4 GHz
			TRFCCycles:            1040,  // 260 ns at 4 GHz
			ControllerOverhead:    0,
		},

		MinBranchPenalty: 20,
		BTBEntries:       8192,
		BTBWays:          2,
		RASEntries:       32,
		TAGEComponents:   12,
		TAGEBaseBits:     13,
		TAGETaggedBits:   10,
		TAGEMaxHistory:   640,
	}
}

// withDelay adjusts the issue-to-execute delay and rebalances the frontend
// so the minimum branch misprediction penalty stays constant (§3.1:
// Baseline_0 has a 15-cycle frontend and 4-cycle backend; Baseline_6 a
// 9-cycle frontend and 10-cycle backend).
func withDelay(c CoreConfig, delay int) CoreConfig {
	c.IssueToExecuteDelay = delay
	c.FrontendDepth = baseFrontendDepth - delay
	return c
}

// Baseline returns Baseline_N: no speculative scheduling (load dependents
// wait for the data), dual-ported L1D.
func Baseline(delay int) CoreConfig {
	c := withDelay(Default(), delay)
	c.Name = fmt.Sprintf("Baseline_%d", delay)
	return c
}

// BaselineSingleLoad returns Baseline_0 restricted to one load issue per
// cycle (the first bar of Fig. 3).
func BaselineSingleLoad() CoreConfig {
	c := Baseline(0)
	c.Name = "Baseline_0_1ld"
	c.MaxLoadsPerCycle = 1
	return c
}

// SpecSched returns SpecSched_N: speculative scheduling with the Always Hit
// policy and the recovery-buffer replay mechanism. banked selects a banked
// L1D (8 quadword-interleaved banks) instead of a dual-ported one.
func SpecSched(delay int, banked bool) CoreConfig {
	c := withDelay(Default(), delay)
	c.SpecSched = true
	c.HitMiss = AlwaysHit
	c.BankedL1 = banked
	c.Name = fmt.Sprintf("SpecSched_%d", delay)
	if !banked {
		c.Name += "_dual"
	}
	return c
}

// SpecSchedShift returns SpecSched_N plus Schedule Shifting (§5.1), banked L1.
func SpecSchedShift(delay int) CoreConfig {
	c := SpecSched(delay, true)
	c.ScheduleShifting = true
	c.Name = fmt.Sprintf("SpecSched_%d_Shift", delay)
	return c
}

// SpecSchedBankPred returns SpecSched_N_BankPred: like Schedule Shifting,
// but the one-cycle slack is applied only when a Yoaz-style bank predictor
// expects the issue group's loads to collide.
func SpecSchedBankPred(delay int) CoreConfig {
	c := SpecSched(delay, true)
	c.BankPredictShift = true
	c.Name = fmt.Sprintf("SpecSched_%d_BankPred", delay)
	return c
}

// SpecSchedCtr returns SpecSched_N_Ctr: the 4-bit global counter drives
// speculative wakeup (§5.2), banked L1.
func SpecSchedCtr(delay int) CoreConfig {
	c := SpecSched(delay, true)
	c.HitMiss = GlobalCounter
	c.Name = fmt.Sprintf("SpecSched_%d_Ctr", delay)
	return c
}

// SpecSchedFilter returns SpecSched_N_Filter: per-PC filter backed by the
// global counter (§5.2), banked L1.
func SpecSchedFilter(delay int) CoreConfig {
	c := SpecSched(delay, true)
	c.HitMiss = FilterAndCounter
	c.Name = fmt.Sprintf("SpecSched_%d_Filter", delay)
	return c
}

// SpecSchedCombined returns SpecSched_N_Combined: Schedule Shifting plus
// hit/miss filtering (§5.3), banked L1.
func SpecSchedCombined(delay int) CoreConfig {
	c := SpecSchedFilter(delay)
	c.ScheduleShifting = true
	c.Name = fmt.Sprintf("SpecSched_%d_Combined", delay)
	return c
}

// SpecSchedCrit returns SpecSched_N_Crit: Combined plus criticality gating —
// unless the filter predicts a sure hit, dependents of non-critical loads
// are not woken speculatively (§5.3), banked L1.
func SpecSchedCrit(delay int) CoreConfig {
	c := SpecSchedCombined(delay)
	c.CriticalityGate = true
	c.Name = fmt.Sprintf("SpecSched_%d_Crit", delay)
	return c
}

// WideWindow scales a configuration to the widened-window study point used
// by the benchmarks and differential tests: a 256-entry IQ with the ROB,
// LSQ, and PRF grown to keep it fillable. One definition so the
// BenchmarkIQ256 pair, cmd/benchjson's iq256 comparison, and the wide
// differential test all describe the same machine.
func WideWindow(c CoreConfig) CoreConfig {
	c.IQEntries = 256
	c.ROBEntries = 512
	c.LQEntries = 192
	c.SQEntries = 128
	c.IntPRF = 640
	c.FPPRF = 640
	c.Name += "_IQ256"
	return c
}

// PresetDelays are the issue-to-execute delays the paper evaluates; every
// delay-parameterized preset family is registered for exactly these values.
var PresetDelays = []int{0, 2, 4, 6}

// wideWindowSuffix marks the widened-window (IQ=256) variant of any preset;
// Preset resolves it by applying WideWindow to the base preset.
const wideWindowSuffix = "_IQ256"

// allPresets enumerates every registered preset. It is the single source of
// truth behind Preset and Presets, so a preset family added here is
// automatically constructible by name and listed everywhere.
func allPresets() []CoreConfig {
	out := []CoreConfig{BaselineSingleLoad()}
	for _, d := range PresetDelays {
		out = append(out,
			Baseline(d), SpecSched(d, true), SpecSched(d, false),
			SpecSchedShift(d), SpecSchedBankPred(d), SpecSchedCtr(d),
			SpecSchedFilter(d), SpecSchedCombined(d), SpecSchedCrit(d),
		)
	}
	return out
}

// Preset looks up a configuration by its paper name. Recognized names:
// Baseline_N, Baseline_0_1ld, SpecSched_N, SpecSched_N_dual,
// SpecSched_N_{Shift,BankPred,Ctr,Filter,Combined,Crit} for N in
// PresetDelays, plus any of those with an _IQ256 suffix selecting the
// WideWindow study point of the base preset.
func Preset(name string) (CoreConfig, error) {
	if base, ok := strings.CutSuffix(name, wideWindowSuffix); ok && base != "" {
		c, err := Preset(base)
		if err != nil {
			return CoreConfig{}, err
		}
		return WideWindow(c), nil
	}
	for _, c := range allPresets() {
		if c.Name == name {
			return c, nil
		}
	}
	return CoreConfig{}, fmt.Errorf("config: unknown preset %q", name)
}

// Presets lists every registered preset name in sorted order — the
// canonical listing behind cmd/specsched -list, cmd/experiments -list, and
// the public presets package. The _IQ256 variants are resolvable by Preset
// but deliberately not listed: they are simulator study points, not paper
// configurations.
func Presets() []string {
	ps := allPresets()
	names := make([]string, len(ps))
	for i, c := range ps {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
