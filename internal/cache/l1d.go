package cache

import "specsched/internal/config"

// LoadResult describes the timing outcome of one load access.
type LoadResult struct {
	// ServiceCycle is the cycle the cache access actually starts. It
	// equals the submit cycle unless a bank conflict queued the load.
	ServiceCycle int64
	// DataReady is the cycle the value is available on the bypass network.
	DataReady int64
	// HitKnown is the cycle the L1 hit/miss signal is available — one
	// cycle before the L1 data would return (paper footnote 2).
	HitKnown int64
	// Hit reports an L1 hit (including hits on in-flight fills being
	// merged, which still deliver late and therefore count as misses for
	// scheduling purposes — see Merged).
	Hit bool
	// BankDelayed reports that a bank conflict delayed the access.
	BankDelayed bool
	// Merged reports that the access matched an in-flight fill (MSHR
	// merge): no new request was sent below.
	Merged bool
}

// occRing tracks port and bank usage for a sliding window of future
// cycles, allocation-free: slot i describes cycle tags[i], lazily reset
// when a new cycle maps onto it. The window bounds how far a bank backlog
// can push a single access; the watchdog in core would flag anything
// approaching it long before.
type occRing struct {
	window   int64
	banks    int
	tags     []int64
	total    []uint8
	bankUse  []uint8  // window*banks
	bankAddr []uint64 // window*banks: first access per bank (SLB pairing)
}

func newOccRing(banks int) *occRing {
	const window = 4096
	o := &occRing{
		window:   window,
		banks:    banks,
		tags:     make([]int64, window),
		total:    make([]uint8, window),
		bankUse:  make([]uint8, window*banks),
		bankAddr: make([]uint64, window*banks),
	}
	for i := range o.tags {
		o.tags[i] = -1
	}
	return o
}

// slot returns the ring index for cycle c, resetting the slot if it still
// describes an older cycle.
func (o *occRing) slot(c int64) int {
	i := int(c & (o.window - 1))
	if o.tags[i] != c {
		o.tags[i] = c
		o.total[i] = 0
		base := i * o.banks
		for b := 0; b < o.banks; b++ {
			o.bankUse[base+b] = 0
		}
	}
	return i
}

// L1D is the banked first-level data cache. Loads are submitted at their
// execute cycle in non-decreasing cycle order; the cache assigns each a
// service cycle subject to its two read ports and bank constraints,
// queueing conflicting accesses exactly as the buffer described in §3.1
// ("Bank Conflicts") does.
type L1D struct {
	arr  *Array
	mshr *mshrFile
	next MemBackend
	// below is next's CompletionSource view, resolved once at construction
	// (NextCompletion runs on the simulator's per-skip-attempt path).
	below CompletionSource

	loadToUse int64
	banked    bool
	banks     int
	interlv   config.Interleave
	slb       bool
	readPorts int

	occ        *occRing
	lastSubmit int64

	// Statistics.
	Loads         int64
	Stores        int64
	LoadHits      int64
	LoadMisses    int64
	BankConflicts int64 // loads delayed by bank conflicts
	MSHRMerges    int64
}

// NewL1D constructs the L1D from the core configuration, backed by next
// (normally the L2).
func NewL1D(cfg *config.CoreConfig, next MemBackend) *L1D {
	l := &L1D{
		arr:       NewArray(cfg.L1D.SizeBytes, cfg.L1D.Ways, cfg.L1D.LineBytes),
		mshr:      newMSHRFile(cfg.L1D.MSHRs),
		next:      next,
		loadToUse: int64(cfg.L1D.Latency),
		banked:    cfg.BankedL1,
		banks:     cfg.L1Banks,
		interlv:   cfg.L1Interleave,
		slb:       cfg.SingleLineBuffer,
		readPorts: 2,
		occ:       newOccRing(cfg.L1Banks),
	}
	l.below, _ = next.(CompletionSource)
	return l
}

// LoadToUse returns the L1 load-to-use latency in cycles.
func (l *L1D) LoadToUse() int64 { return l.loadToUse }

// BankOf returns the bank index addr maps to under the configured
// interleaving.
func (l *L1D) BankOf(addr uint64) int {
	if l.interlv == config.SetInterleave {
		return l.arr.SetOf(addr) & (l.banks - 1)
	}
	return int(addr>>3) & (l.banks - 1) // quadword interleaved
}

// canService reports whether an access to addr can be serviced at the
// ring slot i.
func (l *L1D) canService(i int, addr uint64) bool {
	if int(l.occ.total[i]) >= l.readPorts {
		return false
	}
	if !l.banked {
		return true
	}
	bi := i*l.occ.banks + l.BankOf(addr)
	switch l.occ.bankUse[bi] {
	case 0:
		return true
	case 1:
		// The Single Line Buffer allows a second access to the same set
		// of the same bank (two concurrent reads of one line buffer).
		return l.slb && l.arr.SetOf(l.occ.bankAddr[bi]) == l.arr.SetOf(addr)
	default:
		return false
	}
}

func (l *L1D) reserve(i int, addr uint64) {
	l.occ.total[i]++
	if !l.banked {
		return
	}
	bi := i*l.occ.banks + l.BankOf(addr)
	if l.occ.bankUse[bi] == 0 {
		l.occ.bankAddr[bi] = addr
	}
	l.occ.bankUse[bi]++
}

// Load submits a load reaching the Execute stage at cycle now. Submissions
// must be in non-decreasing cycle order. The per-bank buffer of §3.1 is
// modeled by assigning the earliest feasible service cycle: ports and banks
// are reserved greedily, so same-bank accesses are serviced in arrival
// order and younger loads may slip past older queued loads only to other
// banks — exactly the paper's arbitration.
func (l *L1D) Load(addr, pc uint64, now int64) LoadResult {
	if now < l.lastSubmit {
		panic("cache: L1D loads must be submitted in cycle order")
	}
	l.lastSubmit = now
	l.Loads++

	service := now
	for {
		if service-now >= l.occ.window {
			panic("cache: L1D bank backlog exceeded the occupancy window")
		}
		i := l.occ.slot(service)
		if l.canService(i, addr) {
			l.reserve(i, addr)
			break
		}
		service++
	}
	res := LoadResult{ServiceCycle: service, BankDelayed: service > now}
	if res.BankDelayed {
		l.BankConflicts++
	}
	res.HitKnown = service + l.loadToUse - 1

	line := l.arr.LineOf(addr)
	if l.arr.Lookup(addr) {
		res.Hit = true
		l.LoadHits++
		res.DataReady = service + l.loadToUse
		// A hit on a line whose fill is still in flight delivers when
		// the fill completes.
		if fill, ok := l.mshr.lookup(line); ok && fill > res.DataReady {
			res.DataReady = fill
			res.Hit = false // late data: scheduling-wise a miss
			res.Merged = true
			l.MSHRMerges++
			l.LoadHits--
			l.LoadMisses++
		}
		return res
	}
	l.LoadMisses++

	if fill, ok := l.mshr.lookup(line); ok && fill > service {
		// Merge with an in-flight miss to the same line.
		res.Merged = true
		l.MSHRMerges++
		res.DataReady = max(fill, service+l.loadToUse)
		return res
	}

	start := l.mshr.allocate(line, service)
	fill := l.next.Access(addr, pc, start+l.loadToUse, false)
	l.mshr.record(line, fill)
	l.arr.Insert(addr)
	res.DataReady = max(fill, service+l.loadToUse)
	return res
}

// Store submits a store performing its cache access at cycle now (at
// commit, through the 2 write ports; stores do not contend with load banks
// in this model, matching the paper's focus on load bank conflicts). Misses
// allocate the line (write-allocate); nobody waits on the returned fill.
func (l *L1D) Store(addr, pc uint64, now int64) {
	l.Stores++
	line := l.arr.LineOf(addr)
	if l.arr.Lookup(addr) {
		return
	}
	if _, ok := l.mshr.lookup(line); ok {
		return
	}
	start := l.mshr.allocate(line, now)
	fill := l.next.Access(addr, pc, start+l.loadToUse, true)
	l.mshr.record(line, fill)
	l.arr.Insert(addr)
}

// Probe reports whether addr is present, without disturbing LRU or stats.
func (l *L1D) Probe(addr uint64) bool { return l.arr.Contains(addr) }

// NextCompletion implements CompletionSource for the whole hierarchy under
// the L1D: the earliest MSHR fill still in flight here or below, or -1.
func (l *L1D) NextCompletion(now int64) int64 {
	below := int64(-1)
	if l.below != nil {
		below = l.below.NextCompletion(now)
	}
	return combineCompletions(l.mshr.nextCompletion(now), below)
}
