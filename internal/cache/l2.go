package cache

import "specsched/internal/config"

// strideEntry is one PC-indexed stride-detection slot.
type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8 // confidence, saturates at 3; prefetch when >= 2
}

// stridePrefetcher is the L2's degree-N PC-based stride prefetcher
// (Table 1: "Stride prefetcher, degree 8").
type stridePrefetcher struct {
	table  []strideEntry
	degree int
	// out is the reused result buffer for observe — its contents are only
	// valid until the next call, which every caller consumes immediately.
	out []uint64

	Issued int64 // prefetch requests sent below
}

func newStridePrefetcher(degree int) *stridePrefetcher {
	return &stridePrefetcher{
		table:  make([]strideEntry, 256),
		degree: degree,
		out:    make([]uint64, 0, degree),
	}
}

// observe trains on a demand access and returns the addresses to prefetch
// (empty unless a stride is confirmed).
func (p *stridePrefetcher) observe(addr, pc uint64) []uint64 {
	e := &p.table[(pc>>2)&uint64(len(p.table)-1)]
	if e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	out := p.out[:0]
	for k := 1; k <= p.degree; k++ {
		out = append(out, uint64(int64(addr)+stride*int64(k)))
	}
	p.out = out
	return out
}

// L2 is the unified second-level cache: 1 MB, 16-way, 13 cycles, 64 MSHRs,
// no port constraints (Table 1), with a stride prefetcher.
type L2 struct {
	arr     *Array
	mshr    *mshrFile
	next    MemBackend
	below   CompletionSource // next's CompletionSource view, or nil
	latency int64
	pf      *stridePrefetcher

	Demand     int64
	DemandHits int64
	Prefetches int64
	MSHRMerges int64
}

// NewL2 constructs the L2 from the core configuration, backed by next
// (normally the DRAM).
func NewL2(cfg *config.CoreConfig, next MemBackend) *L2 {
	l := &L2{
		arr:     NewArray(cfg.L2.SizeBytes, cfg.L2.Ways, cfg.L2.LineBytes),
		mshr:    newMSHRFile(cfg.L2.MSHRs),
		next:    next,
		latency: int64(cfg.L2.Latency),
	}
	if cfg.PrefetchEnable {
		l.pf = newStridePrefetcher(cfg.PrefetchDegree)
	}
	l.below, _ = next.(CompletionSource)
	return l
}

// Access implements MemBackend: an L1 miss requests the line containing
// addr at cycle now; the return value is the cycle the line reaches the L1.
func (l *L2) Access(addr, pc uint64, now int64, write bool) int64 {
	l.Demand++
	ready := l.accessInternal(addr, pc, now, write, true)
	if l.pf != nil && !write {
		for _, pa := range l.pf.observe(addr, pc) {
			l.prefetch(pa, pc, now)
		}
	}
	return ready
}

func (l *L2) accessInternal(addr, pc uint64, now int64, write, demand bool) int64 {
	line := l.arr.LineOf(addr)
	if l.arr.Lookup(addr) {
		if demand {
			l.DemandHits++
		}
		ready := now + l.latency
		// Hit on a line still being filled (e.g. by a prefetch): wait
		// for the fill.
		if fill, ok := l.mshr.lookup(line); ok && fill > ready {
			ready = fill
		}
		return ready
	}
	if fill, ok := l.mshr.lookup(line); ok && fill > now {
		l.MSHRMerges++
		return max(fill, now+l.latency)
	}
	start := l.mshr.allocate(line, now)
	fill := l.next.Access(addr, pc, start+l.latency, write)
	l.mshr.record(line, fill)
	l.arr.Insert(addr)
	return max(fill, now+l.latency)
}

// prefetch requests a line speculatively; it consumes MSHR and DRAM
// bandwidth but nobody waits on it.
func (l *L2) prefetch(addr, pc uint64, now int64) {
	line := l.arr.LineOf(addr)
	if l.arr.Contains(addr) {
		return
	}
	if _, ok := l.mshr.lookup(line); ok {
		return
	}
	l.Prefetches++
	if l.pf != nil {
		l.pf.Issued++
	}
	start := l.mshr.allocate(line, now)
	fill := l.next.Access(addr, pc, start+l.latency, false)
	l.mshr.record(line, fill)
	l.arr.Insert(addr)
}

// Latency returns the L2 access latency in cycles.
func (l *L2) Latency() int64 { return l.latency }

// NextCompletion implements CompletionSource: the earliest in-flight fill
// (demand or prefetch) at this level or below, or -1.
func (l *L2) NextCompletion(now int64) int64 {
	below := int64(-1)
	if l.below != nil {
		below = l.below.NextCompletion(now)
	}
	return combineCompletions(l.mshr.nextCompletion(now), below)
}
