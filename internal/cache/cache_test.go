package cache

import (
	"testing"
	"testing/quick"

	"specsched/internal/config"
	"specsched/internal/rng"
)

// stubBackend is a fixed-latency MemBackend recording its requests.
type stubBackend struct {
	lat   int64
	calls int64
	addrs []uint64
}

func (s *stubBackend) Access(addr, pc uint64, now int64, write bool) int64 {
	s.calls++
	s.addrs = append(s.addrs, addr)
	return now + s.lat
}

func TestArrayBasic(t *testing.T) {
	a := NewArray(1024, 2, 64) // 8 sets, 2 ways
	if a.Lookup(0x40) {
		t.Fatal("empty array hit")
	}
	a.Insert(0x40)
	if !a.Lookup(0x40) {
		t.Fatal("inserted line missing")
	}
	if a.Lookup(0x80) {
		t.Fatal("different line hit")
	}
	// Same line, different offset within the 64 B line.
	if !a.Lookup(0x7f) {
		t.Fatal("same-line different-offset missed")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	a := NewArray(1024, 2, 64) // 8 sets; same set every 512 bytes
	setStride := uint64(8 * 64)
	a.Insert(0)
	a.Insert(setStride)
	a.Lookup(0) // line 0 is now MRU
	a.Insert(2 * setStride)
	if a.Contains(setStride) {
		t.Fatal("LRU line not evicted")
	}
	if !a.Contains(0) || !a.Contains(2*setStride) {
		t.Fatal("wrong line evicted")
	}
}

func TestArrayInsertExistingRefreshes(t *testing.T) {
	a := NewArray(1024, 2, 64)
	setStride := uint64(8 * 64)
	a.Insert(0)
	a.Insert(setStride)
	if _, evicted := a.Insert(0); evicted {
		t.Fatal("re-inserting a present line evicted something")
	}
	a.Insert(2 * setStride)
	if !a.Contains(0) {
		t.Fatal("refreshed line was evicted")
	}
}

func TestArrayEvictionReturnsOldLine(t *testing.T) {
	a := NewArray(128, 1, 64) // direct-mapped, 2 sets
	a.Insert(0)
	old, evicted := a.Insert(128) // same set as 0
	if !evicted || old != 0 {
		t.Fatalf("eviction = (%#x, %t), want (0, true)", old, evicted)
	}
}

func TestArrayInvalidate(t *testing.T) {
	a := NewArray(1024, 2, 64)
	a.Insert(0x40)
	a.Invalidate(0x40)
	if a.Contains(0x40) {
		t.Fatal("invalidated line still present")
	}
}

func TestArrayWorkingSetProperty(t *testing.T) {
	// Property: any working set with at most `ways` lines per set never
	// misses after the first touch, under any access order.
	f := func(seed uint64) bool {
		a := NewArray(4096, 4, 64) // 16 sets, 4 ways
		r := rng.New(seed)
		// Pick 4 lines in each of 3 random sets.
		var lines []uint64
		for s := 0; s < 3; s++ {
			set := uint64(r.Intn(16))
			for w := 0; w < 4; w++ {
				lines = append(lines, (uint64(w*16)+set)*64)
			}
		}
		for _, l := range lines {
			a.Insert(l)
		}
		for i := 0; i < 200; i++ {
			l := lines[r.Intn(len(lines))]
			if !a.Lookup(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayInvalidGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewArray(0, 2, 64) },
		func() { NewArray(1000, 2, 64) },
		func() { NewArray(3*64*2, 2, 64) }, // 3 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func newTestL1(banked bool, slb bool) (*L1D, *stubBackend) {
	cfg := config.Default()
	cfg.BankedL1 = banked
	cfg.SingleLineBuffer = slb
	b := &stubBackend{lat: 13}
	return NewL1D(&cfg, b), b
}

func TestL1HitTiming(t *testing.T) {
	l, _ := newTestL1(false, true)
	l.Load(0x1000, 0x40, 10) // miss, fills
	res := l.Load(0x1000, 0x44, 200)
	if !res.Hit {
		t.Fatal("expected hit after fill")
	}
	if res.DataReady != 200+l.LoadToUse() {
		t.Fatalf("hit DataReady = %d, want %d", res.DataReady, 200+l.LoadToUse())
	}
	if res.HitKnown != 200+l.LoadToUse()-1 {
		t.Fatalf("HitKnown = %d, want one cycle before data", res.HitKnown)
	}
	if res.BankDelayed {
		t.Fatal("unbanked cache reported a bank delay")
	}
}

func TestL1MissGoesBelow(t *testing.T) {
	l, b := newTestL1(false, true)
	res := l.Load(0x1000, 0x40, 10)
	if res.Hit {
		t.Fatal("cold access hit")
	}
	if b.calls != 1 {
		t.Fatalf("backend calls = %d, want 1", b.calls)
	}
	// Miss latency: service + loadToUse (tag check) + backend latency.
	want := int64(10) + l.LoadToUse() + 13
	if res.DataReady != want {
		t.Fatalf("miss DataReady = %d, want %d", res.DataReady, want)
	}
}

func TestL1MSHRMerge(t *testing.T) {
	l, b := newTestL1(false, true)
	first := l.Load(0x1000, 0x40, 10)
	second := l.Load(0x1010, 0x44, 11) // same line, while fill in flight
	if b.calls != 1 {
		t.Fatalf("backend calls = %d, want 1 (merge)", b.calls)
	}
	if !second.Merged {
		t.Fatal("second access not marked merged")
	}
	if second.DataReady < first.DataReady-1 && second.DataReady < 11+l.LoadToUse() {
		t.Fatalf("merged access ready too early: %d", second.DataReady)
	}
}

func TestL1BankConflictSameBankDifferentSet(t *testing.T) {
	l, _ := newTestL1(true, true)
	// Warm both lines so only bank behaviour matters.
	l.Load(0x0000, 0x40, 0)
	l.Load(0x1040, 0x44, 1)
	// 0x0000 and 0x1040 share bank 0 (bits 3..5) but sit in sets 0 and 1.
	a := l.Load(0x0000, 0x40, 100)
	c := l.Load(0x1040, 0x44, 100)
	if a.BankDelayed {
		t.Fatal("first load of the pair delayed")
	}
	if !c.BankDelayed || c.ServiceCycle != 101 {
		t.Fatalf("conflicting load: delayed=%t service=%d, want true/101",
			c.BankDelayed, c.ServiceCycle)
	}
	if l.BankConflicts != 1 {
		t.Fatalf("BankConflicts = %d, want 1", l.BankConflicts)
	}
}

func TestL1NoConflictDifferentBanks(t *testing.T) {
	l, _ := newTestL1(true, true)
	l.Load(0x0000, 0x40, 0)
	l.Load(0x0008, 0x44, 1) // next quadword: next bank
	a := l.Load(0x0000, 0x40, 100)
	c := l.Load(0x0008, 0x44, 100)
	if a.BankDelayed || c.BankDelayed {
		t.Fatal("different banks should not conflict")
	}
}

func TestL1SLBAllowsSameSetPair(t *testing.T) {
	l, _ := newTestL1(true, true)
	// Same line => same set and same bank for identical quadword offset.
	l.Load(0x0000, 0x40, 0)
	a := l.Load(0x0000, 0x40, 100)
	c := l.Load(0x0000, 0x44, 100)
	if a.BankDelayed || c.BankDelayed {
		t.Fatal("SLB pair delayed")
	}
	// A third access to the same set conflicts (only two SLB ports).
	d := l.Load(0x0000, 0x48, 100)
	if !d.BankDelayed {
		t.Fatal("third same-set access must be delayed")
	}
}

func TestL1NoSLBSameSetConflicts(t *testing.T) {
	l, _ := newTestL1(true, false)
	l.Load(0x0000, 0x40, 0)
	a := l.Load(0x0000, 0x40, 100)
	c := l.Load(0x0000, 0x44, 100)
	if a.BankDelayed {
		t.Fatal("first access delayed")
	}
	if !c.BankDelayed {
		t.Fatal("same-bank pair without SLB must conflict")
	}
}

func TestL1PortLimit(t *testing.T) {
	l, _ := newTestL1(true, true)
	// Three loads to three different banks in one cycle: two ports only.
	a := l.Load(0x0000, 0x40, 100)
	b := l.Load(0x0008, 0x44, 100)
	c := l.Load(0x0010, 0x48, 100)
	if a.BankDelayed || b.BankDelayed {
		t.Fatal("first two loads should both be serviced")
	}
	if !c.BankDelayed || c.ServiceCycle != 101 {
		t.Fatalf("third load service = %d (delayed=%t), want 101", c.ServiceCycle, c.BankDelayed)
	}
}

func TestL1CascadedConflictPaperExample(t *testing.T) {
	// §3.1: two conflicting loads at cycle 0; at cycle 1 two more loads
	// that conflict with each other but not with the queued one — the
	// cache services the queued load plus one of the new pair; the last
	// proceeds at cycle 2.
	l, _ := newTestL1(true, true)
	a := l.Load(0x0000, 0x40, 0) // bank 0, set 0
	b := l.Load(0x1040, 0x44, 0) // bank 0, set 1 -> queued to cycle 1
	c := l.Load(0x0010, 0x48, 1) // bank 2, set 0
	d := l.Load(0x1050, 0x4c, 1) // bank 2, set 1
	if a.ServiceCycle != 0 || b.ServiceCycle != 1 {
		t.Fatalf("first pair services = %d,%d, want 0,1", a.ServiceCycle, b.ServiceCycle)
	}
	if c.ServiceCycle != 1 {
		t.Fatalf("first of second pair service = %d, want 1", c.ServiceCycle)
	}
	if d.ServiceCycle != 2 {
		t.Fatalf("last load service = %d, want 2", d.ServiceCycle)
	}
}

func TestL1OutOfOrderSubmitPanics(t *testing.T) {
	l, _ := newTestL1(true, true)
	l.Load(0x0000, 0x40, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order submit did not panic")
		}
	}()
	l.Load(0x0000, 0x40, 50)
}

func TestL1StoreFillsLine(t *testing.T) {
	l, b := newTestL1(false, true)
	l.Store(0x3000, 0x40, 10)
	if b.calls != 1 {
		t.Fatalf("store miss backend calls = %d, want 1", b.calls)
	}
	res := l.Load(0x3000, 0x44, 200)
	if !res.Hit {
		t.Fatal("load after store-allocate missed")
	}
}

func TestL1SetInterleave(t *testing.T) {
	cfg := config.Default()
	cfg.BankedL1 = true
	cfg.L1Interleave = config.SetInterleave
	l := NewL1D(&cfg, &stubBackend{lat: 13})
	// Under set interleaving, two quadwords of the same line share a bank.
	if l.BankOf(0x0000) != l.BankOf(0x0008) {
		t.Fatal("same line must map to one bank under set interleaving")
	}
	// Consecutive sets map to different banks.
	if l.BankOf(0x0000) == l.BankOf(0x0040) {
		t.Fatal("consecutive sets should hit different banks")
	}
}

func TestL2HitMissTiming(t *testing.T) {
	cfg := config.Default()
	b := &stubBackend{lat: 100}
	l2 := NewL2(&cfg, b)
	miss := l2.Access(0x8000, 0x40, 1000, false)
	// Miss: tag check (13) + backend (100).
	if miss != 1000+13+100 {
		t.Fatalf("L2 miss ready = %d, want %d", miss, 1000+13+100)
	}
	hit := l2.Access(0x8000, 0x40, 5000, false)
	if hit != 5000+13 {
		t.Fatalf("L2 hit ready = %d, want %d", hit, 5000+13)
	}
}

func TestL2MSHRMerge(t *testing.T) {
	cfg := config.Default()
	b := &stubBackend{lat: 100}
	l2 := NewL2(&cfg, b)
	first := l2.Access(0x8000, 0x40, 1000, false)
	second := l2.Access(0x8010, 0x44, 1001, false)
	if b.calls != 1 {
		t.Fatalf("backend calls = %d, want 1", b.calls)
	}
	if second > first {
		t.Fatalf("merged access ready %d after original %d", second, first)
	}
}

func TestStridePrefetcherTrains(t *testing.T) {
	p := newStridePrefetcher(8)
	pc := uint64(0x40)
	var out []uint64
	for i := 0; i < 5; i++ {
		out = p.observe(uint64(0x1000+i*64), pc)
	}
	if len(out) != 8 {
		t.Fatalf("confirmed stride issued %d prefetches, want 8", len(out))
	}
	if out[0] != 0x1000+5*64 || out[7] != 0x1000+12*64 {
		t.Fatalf("prefetch addresses wrong: first=%#x last=%#x", out[0], out[7])
	}
}

func TestStridePrefetcherResetsOnStrideChange(t *testing.T) {
	p := newStridePrefetcher(8)
	pc := uint64(0x40)
	for i := 0; i < 5; i++ {
		p.observe(uint64(0x1000+i*64), pc)
	}
	if out := p.observe(0x9000, pc); out != nil {
		t.Fatal("stride change should reset confidence")
	}
}

func TestStridePrefetcherIgnoresZeroStride(t *testing.T) {
	p := newStridePrefetcher(8)
	for i := 0; i < 10; i++ {
		if out := p.observe(0x1000, 0x40); out != nil {
			t.Fatal("zero stride must not prefetch")
		}
	}
}

func TestL2PrefetchHidesStreamLatency(t *testing.T) {
	cfg := config.Default()
	b := &stubBackend{lat: 100}
	l2 := NewL2(&cfg, b)
	// Stream 64 consecutive lines through the same PC.
	now := int64(1000)
	misses := 0
	for i := 0; i < 64; i++ {
		addr := uint64(0x100000 + i*64)
		ready := l2.Access(addr, 0x40, now, false)
		if ready > now+int64(cfg.L2.Latency) {
			misses++
		}
		now += 50
	}
	if l2.Prefetches == 0 {
		t.Fatal("prefetcher never fired on a pure stream")
	}
	if misses > 16 {
		t.Fatalf("%d/64 stream accesses paid miss latency despite prefetching", misses)
	}
}

func TestL2PrefetchDisabled(t *testing.T) {
	cfg := config.Default()
	cfg.PrefetchEnable = false
	b := &stubBackend{lat: 100}
	l2 := NewL2(&cfg, b)
	for i := 0; i < 16; i++ {
		l2.Access(uint64(0x100000+i*64), 0x40, int64(1000+i*200), false)
	}
	if l2.Prefetches != 0 {
		t.Fatalf("prefetches issued while disabled: %d", l2.Prefetches)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	m := newMSHRFile(2)
	m.record(1, 1000)
	m.record(2, 2000)
	start := m.allocate(3, 100)
	if start != 1000 {
		t.Fatalf("allocate with full MSHRs start = %d, want 1000", start)
	}
	if m.FullStalls != 1 {
		t.Fatalf("FullStalls = %d, want 1", m.FullStalls)
	}
}

func TestMSHRPrune(t *testing.T) {
	m := newMSHRFile(4)
	m.record(1, 100)
	m.record(2, 200)
	m.prune(150)
	if _, ok := m.lookup(1); ok {
		t.Fatal("completed fill not pruned")
	}
	if _, ok := m.lookup(2); !ok {
		t.Fatal("in-flight fill wrongly pruned")
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	// L1 -> L2 -> stub DRAM: a pointer-chase over a 256 KB footprint
	// misses the L1 often, hits the L2 mostly after warmup.
	cfg := config.Default()
	dram := &stubBackend{lat: 130}
	l2 := NewL2(&cfg, dram)
	l1 := NewL1D(&cfg, l2)
	r := rng.New(5)
	now := int64(0)
	for i := 0; i < 20000; i++ {
		addr := uint64(r.Intn(256<<10)) &^ 7
		l1.Load(addr, 0x40, now)
		now += 3
	}
	if l1.LoadMisses == 0 {
		t.Fatal("working set larger than L1 never missed")
	}
	missRate := float64(l1.LoadMisses) / float64(l1.Loads)
	if missRate < 0.05 {
		t.Fatalf("L1 miss rate %.3f implausibly low for 256KB random footprint", missRate)
	}
	if l2.DemandHits == 0 {
		t.Fatal("L2 never hit despite footprint fitting")
	}
}

func TestOccRingSlotReuse(t *testing.T) {
	o := newOccRing(8)
	i1 := o.slot(5)
	o.total[i1] = 2
	// Revisiting the same cycle keeps the reservation.
	if i2 := o.slot(5); o.total[i2] != 2 {
		t.Fatal("slot reset on revisit of the same cycle")
	}
	// A different cycle mapping to the same index resets it.
	far := int64(5 + o.window)
	if i3 := o.slot(far); o.total[i3] != 0 {
		t.Fatal("stale slot not reset for a new cycle")
	}
}

func TestOccRingBankRowsIndependent(t *testing.T) {
	o := newOccRing(8)
	i := o.slot(100)
	o.bankUse[i*8+3] = 1
	j := o.slot(101)
	if i == j {
		t.Fatal("consecutive cycles mapped to the same slot")
	}
	if o.bankUse[j*8+3] != 0 {
		t.Fatal("bank occupancy leaked across cycles")
	}
}

func TestL1BacklogOverflowPanics(t *testing.T) {
	// A single bank hammered beyond the occupancy window must panic
	// (the core's watchdog would flag such a livelock first in practice).
	cfg := config.Default()
	cfg.BankedL1 = true
	l := NewL1D(&cfg, &stubBackend{lat: 13})
	defer func() {
		if recover() == nil {
			t.Fatal("unbounded bank backlog did not panic")
		}
	}()
	for i := 0; i < 10000; i++ {
		// All to bank 0, different sets, same submit cycle.
		l.Load(uint64(i)*4096, 0x40, 0)
	}
}

func TestL1ServiceNeverBeforeSubmit(t *testing.T) {
	cfg := config.Default()
	cfg.BankedL1 = true
	l := NewL1D(&cfg, &stubBackend{lat: 13})
	r := rng.New(3)
	now := int64(0)
	for i := 0; i < 5000; i++ {
		addr := uint64(r.Intn(64<<10)) &^ 7
		res := l.Load(addr, 0x40, now)
		if res.ServiceCycle < now {
			t.Fatalf("service %d before submit %d", res.ServiceCycle, now)
		}
		if res.DataReady < res.ServiceCycle {
			t.Fatalf("data ready %d before service %d", res.DataReady, res.ServiceCycle)
		}
		if res.HitKnown >= res.DataReady && !res.Merged && res.Hit {
			t.Fatalf("hit signal at %d not before data at %d", res.HitKnown, res.DataReady)
		}
		if i%3 == 0 {
			now++
		}
	}
}

// completionStub is a stubBackend that also reports a fixed pending
// completion, standing in for a lower level with in-flight work.
type completionStub struct {
	stubBackend
	next int64
}

func (s *completionStub) NextCompletion(now int64) int64 { return s.next }

func TestL1NextCompletion(t *testing.T) {
	l, _ := newTestL1(false, true)
	if got := l.NextCompletion(0); got != -1 {
		t.Fatalf("idle L1 NextCompletion = %d, want -1", got)
	}
	first := l.Load(0x1000, 0x40, 10) // miss: fill in flight
	if got := l.NextCompletion(10); got != first.DataReady {
		t.Fatalf("NextCompletion = %d, want the in-flight fill %d", got, first.DataReady)
	}
	second := l.Load(0x9000, 0x44, 11) // second, later fill
	if got := l.NextCompletion(11); got != first.DataReady {
		t.Fatalf("NextCompletion = %d, want the earliest fill %d", got, first.DataReady)
	}
	// Once the first fill completes it is pruned; the later one remains.
	if got := l.NextCompletion(first.DataReady); got != second.DataReady {
		t.Fatalf("NextCompletion after first fill = %d, want %d", got, second.DataReady)
	}
	if got := l.NextCompletion(second.DataReady + 1); got != -1 {
		t.Fatalf("NextCompletion after both fills = %d, want -1", got)
	}
}

// TestNextCompletionChainsBelow pins the hierarchy plumbing: a level
// reports the minimum of its own MSHR fills and whatever the level below
// reports, and -1 only when neither has anything in flight.
func TestNextCompletionChainsBelow(t *testing.T) {
	cfg := config.Default()
	b := &completionStub{stubBackend: stubBackend{lat: 13}, next: -1}
	l := NewL1D(&cfg, b)
	if got := l.NextCompletion(0); got != -1 {
		t.Fatalf("idle hierarchy NextCompletion = %d, want -1", got)
	}
	b.next = 500
	if got := l.NextCompletion(0); got != 500 {
		t.Fatalf("NextCompletion = %d, want the level below's 500", got)
	}
	res := l.Load(0x1000, 0x40, 10) // own fill, earlier than below's
	if got := l.NextCompletion(10); got != res.DataReady {
		t.Fatalf("NextCompletion = %d, want own fill %d", got, res.DataReady)
	}
	b.next = res.DataReady - 5 // below becomes the earlier one
	if got := l.NextCompletion(10); got != res.DataReady-5 {
		t.Fatalf("NextCompletion = %d, want below's %d", got, res.DataReady-5)
	}
}

// TestL2NextCompletionSeesPrefetches checks that speculative prefetch
// fills — which no µ-op waits on and therefore schedule no core-side
// wakeup — still show up as pending completions, keeping the
// quiescent-cycle skipper's bound conservative.
func TestL2NextCompletionSeesPrefetches(t *testing.T) {
	cfg := config.Default()
	l2 := NewL2(&cfg, &stubBackend{lat: 100})
	// Train the stride prefetcher: same PC, constant stride, enough
	// confidence to fire.
	now := int64(0)
	var last int64
	for i := 0; i < 4; i++ {
		last = l2.Access(uint64(0x10000+i*256), 0x40, now, false)
		now += 500
	}
	if l2.Prefetches == 0 {
		t.Fatal("stride prefetcher never fired; test premise broken")
	}
	// The demand fill for the last access is at `last`; prefetches were
	// issued alongside it and complete no earlier. All must be visible.
	got := l2.NextCompletion(now - 500)
	if got < 0 {
		t.Fatal("prefetch fills in flight but NextCompletion = -1")
	}
	if got > last {
		t.Fatalf("NextCompletion = %d, want <= demand fill %d", got, last)
	}
}
