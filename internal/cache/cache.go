// Package cache implements the data-cache hierarchy of Table 1: a 32 KB
// 8-way L1D with two read ports, eight 8 B quadword-interleaved banks, a
// Rivers-style Single Line Buffer, and 64 MSHRs; and a 1 MB 16-way L2 with
// a degree-8 stride prefetcher. The package exposes timing-level behaviour
// only — no data is stored, since the simulator is trace driven.
package cache

// MemBackend is the next level of the hierarchy (the L2 below the L1D, the
// DRAM below the L2). Access requests the 64 B line containing addr at CPU
// cycle now and returns the cycle the line is available to the requester.
// pc is the requesting instruction's PC (used by PC-indexed prefetchers);
// write marks stores.
type MemBackend interface {
	Access(addr, pc uint64, now int64, write bool) int64
}

// CompletionSource is implemented by hierarchy levels that can report
// pending in-flight work. NextCompletion returns the earliest cycle
// strictly after now at which an in-flight fill completes at this level or
// any level below, or -1 when nothing is in flight. The core's
// quiescent-cycle skipper folds it into its "next interesting cycle"
// minimum; the bound is conservative (every fill someone actually waits on
// already has a scheduled wakeup), so it may only shorten a skip, never
// lengthen one.
type CompletionSource interface {
	NextCompletion(now int64) int64
}

// combineCompletions folds two NextCompletion results (-1 = none).
func combineCompletions(a, b int64) int64 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	return min(a, b)
}

const invalidTag = ^uint64(0)

// Array is a set-associative tag array with true LRU replacement. It tracks
// presence only (trace-driven timing model).
type Array struct {
	sets     int
	ways     int
	lineBits uint
	tags     []uint64
	stamps   []int64
	clock    int64

	Hits   int64
	Misses int64
}

// NewArray builds a tag array with the given geometry. sizeBytes must be
// ways*lineBytes*2^k for some k >= 0.
func NewArray(sizeBytes, ways, lineBytes int) *Array {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 ||
		sizeBytes%(ways*lineBytes) != 0 {
		panic("cache: invalid geometry")
	}
	sets := sizeBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	a := &Array{
		sets:     sets,
		ways:     ways,
		lineBits: lineBits,
		tags:     make([]uint64, sets*ways),
		stamps:   make([]int64, sets*ways),
	}
	for i := range a.tags {
		a.tags[i] = invalidTag
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// SetOf returns the set index addr maps to.
func (a *Array) SetOf(addr uint64) int {
	return int(addr>>a.lineBits) & (a.sets - 1)
}

// LineOf returns the line address (addr with the offset bits stripped).
func (a *Array) LineOf(addr uint64) uint64 { return addr >> a.lineBits }

// Lookup probes the array, refreshing LRU state on a hit.
func (a *Array) Lookup(addr uint64) bool {
	line := a.LineOf(addr)
	base := a.SetOf(addr) * a.ways
	for w := 0; w < a.ways; w++ {
		if a.tags[base+w] == line {
			a.clock++
			a.stamps[base+w] = a.clock
			a.Hits++
			return true
		}
	}
	a.Misses++
	return false
}

// Contains probes without updating LRU or statistics.
func (a *Array) Contains(addr uint64) bool {
	line := a.LineOf(addr)
	base := a.SetOf(addr) * a.ways
	for w := 0; w < a.ways; w++ {
		if a.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, evicting the LRU way if the set is
// full. It returns the evicted line address and whether an eviction
// happened. Inserting an already-present line refreshes its LRU state.
func (a *Array) Insert(addr uint64) (evicted uint64, wasEvicted bool) {
	line := a.LineOf(addr)
	base := a.SetOf(addr) * a.ways
	victim := base
	for w := 0; w < a.ways; w++ {
		i := base + w
		if a.tags[i] == line {
			a.clock++
			a.stamps[i] = a.clock
			return 0, false
		}
		if a.tags[i] == invalidTag {
			victim = i
			// Keep scanning: the line might be present in a later way.
			continue
		}
		if a.tags[victim] != invalidTag && a.stamps[i] < a.stamps[victim] {
			victim = i
		}
	}
	var old uint64
	had := a.tags[victim] != invalidTag
	if had {
		old = a.tags[victim] << a.lineBits
	}
	a.tags[victim] = line
	a.clock++
	a.stamps[victim] = a.clock
	return old, had
}

// Invalidate removes the line containing addr if present.
func (a *Array) Invalidate(addr uint64) {
	line := a.LineOf(addr)
	base := a.SetOf(addr) * a.ways
	for w := 0; w < a.ways; w++ {
		if a.tags[base+w] == line {
			a.tags[base+w] = invalidTag
		}
	}
}

// mshrFile tracks in-flight line fills: line address -> fill-complete cycle.
// It bounds the number of outstanding misses; when full, new misses are
// delayed until the earliest in-flight fill completes.
type mshrFile struct {
	capacity int
	inflight mshrMap
	// heap is a min-heap on fill time mirroring every inflight write, so
	// prune and earliest run in O(completed · log n) instead of scanning
	// the whole table per miss. Entries whose (line, time) no longer
	// matches the table (overwritten or already deleted) are stale and
	// skipped at pop time.
	heap []mshrEntry

	Merges     int64 // accesses that hit an in-flight fill
	FullStalls int64 // accesses delayed by MSHR exhaustion
}

type mshrEntry struct {
	at   int64
	line uint64
}

// mshrMap is a small open-addressed line -> fill-time table (linear
// probing, backward-shift deletion). MSHR files cap at a few dozen live
// entries, and the simulator probes them on every cache access — a flat
// power-of-two table at low load factor beats a general-purpose map's
// hashing and bucket walk on the memory-bound workloads that dominate
// simulation wall time. Keys are stored as line+1 so zero means empty.
type mshrMap struct {
	keys  []uint64
	vals  []int64
	mask  uint64
	shift uint
	n     int
}

func newMSHRMap(capacity int) mshrMap {
	size, bits := 8, uint(3)
	for size < 4*capacity {
		size *= 2
		bits++
	}
	return mshrMap{
		keys:  make([]uint64, size),
		vals:  make([]int64, size),
		mask:  uint64(size - 1),
		shift: 64 - bits,
	}
}

func (m *mshrMap) home(key uint64) uint64 {
	// Fibonacci hashing: the multiply pushes entropy into the high bits,
	// which the shift selects.
	return (key * 0x9e3779b97f4a7c15) >> m.shift
}

func (m *mshrMap) get(line uint64) (int64, bool) {
	key := line + 1
	for i := m.home(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			return m.vals[i], true
		case 0:
			return 0, false
		}
	}
}

func (m *mshrMap) put(line uint64, v int64) {
	key := line + 1
	for i := m.home(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			m.vals[i] = v
			return
		case 0:
			m.keys[i] = key
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// del removes line (if present) with backward-shift deletion, keeping
// probe chains intact without tombstones.
func (m *mshrMap) del(line uint64) {
	key := line + 1
	i := m.home(key)
	for m.keys[i] != key {
		if m.keys[i] == 0 {
			return
		}
		i = (i + 1) & m.mask
	}
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		if m.keys[j] == 0 {
			break
		}
		h := m.home(m.keys[j])
		// Move j's entry into the hole at i unless its home lies in the
		// cyclic range (i, j] (then it must stay reachable from home).
		inRange := (j > i && h > i && h <= j) || (j < i && (h > i || h <= j))
		if !inRange {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
}

func newMSHRFile(capacity int) *mshrFile {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &mshrFile{capacity: capacity, inflight: newMSHRMap(capacity)}
}

// lookup returns the fill time of an in-flight request for line, if any.
func (m *mshrFile) lookup(line uint64) (int64, bool) {
	return m.inflight.get(line)
}

func (m *mshrFile) heapPush(e mshrEntry) {
	m.heap = append(m.heap, e)
	i := len(m.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if m.heap[p].at <= m.heap[i].at {
			break
		}
		m.heap[p], m.heap[i] = m.heap[i], m.heap[p]
		i = p
	}
}

func (m *mshrFile) heapPop() {
	n := len(m.heap) - 1
	m.heap[0] = m.heap[n]
	m.heap = m.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && m.heap[l].at < m.heap[min].at {
			min = l
		}
		if r < n && m.heap[r].at < m.heap[min].at {
			min = r
		}
		if min == i {
			break
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}

// top returns the earliest live heap entry, discarding stale ones, or
// ok == false when no fills are in flight.
func (m *mshrFile) top() (mshrEntry, bool) {
	for len(m.heap) > 0 {
		e := m.heap[0]
		if t, ok := m.inflight.get(e.line); !ok || t != e.at {
			m.heapPop() // stale: overwritten or already deleted
			continue
		}
		return e, true
	}
	return mshrEntry{}, false
}

// prune drops completed fills (fill time <= now).
func (m *mshrFile) prune(now int64) {
	for {
		e, ok := m.top()
		if !ok || e.at > now {
			return
		}
		m.heapPop()
		m.inflight.del(e.line)
	}
}

// earliest returns the soonest in-flight fill completion.
func (m *mshrFile) earliest() int64 {
	e, ok := m.top()
	if !ok {
		return -1
	}
	return e.at
}

// nextCompletion returns the earliest in-flight fill completing strictly
// after now, or -1 when none is in flight. Completed fills are pruned
// first; pruning earlier than the next allocate would have is unobservable
// (completed entries can never influence a lookup or capacity decision),
// so calling this every cycle is safe.
func (m *mshrFile) nextCompletion(now int64) int64 {
	m.prune(now)
	return m.earliest()
}

// allocate registers a new in-flight fill. If the file is full even after
// pruning, the request start time is pushed to the earliest completion.
// It returns the (possibly delayed) request start time.
func (m *mshrFile) allocate(line uint64, now int64) int64 {
	m.prune(now)
	start := now
	for m.inflight.n >= m.capacity {
		e := m.earliest()
		if e < 0 {
			break
		}
		m.FullStalls++
		start = e
		m.prune(start)
	}
	return start
}

// record stores the fill completion time after the backend access.
func (m *mshrFile) record(line uint64, fillAt int64) {
	m.inflight.put(line, fillAt)
	m.heapPush(mshrEntry{at: fillAt, line: line})
}
