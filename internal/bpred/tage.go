// Package bpred implements the front-end branch prediction stack of the
// simulated core: a TAGE conditional-direction predictor (base bimodal plus
// 12 partially tagged components with geometric history lengths, after
// Seznec & Michaud), a set-associative branch target buffer, and a return
// address stack. Table 1 of the paper specifies "TAGE 1+12 components,
// 15K-entry total (~32KB), 20 cycles min. branch mis. penalty; 2-way
// 8K-entry BTB, 32-entry RAS".
package bpred

import (
	"math"

	"specsched/internal/config"
)

const (
	tagBits     = 11
	ctrMax      = 3 // 3-bit signed counter range [-4, 3]
	ctrMin      = -4
	usefulMax   = 3 // 2-bit useful counter
	uResetEvery = 1 << 18
)

// foldedHistory incrementally maintains a hash of the most recent histLen
// branch outcomes folded onto targetBits bits, using the classic circular
// shift register formulation from the TAGE reference code.
type foldedHistory struct {
	value      uint32
	histLen    int
	targetBits int
	outPoint   int
}

func newFolded(histLen, targetBits int) foldedHistory {
	return foldedHistory{histLen: histLen, targetBits: targetBits,
		outPoint: histLen % targetBits}
}

// update shifts in the newest outcome bit and folds out the bit that falls
// off the end of the history window. ghist is the circular global history
// buffer and ptr the index of the newest bit.
func (f *foldedHistory) update(ghist []byte, ptr int) {
	mask := uint32(1)<<f.targetBits - 1
	f.value = (f.value << 1) | uint32(ghist[ptr&(len(ghist)-1)])
	f.value ^= uint32(ghist[(ptr-f.histLen)&(len(ghist)-1)]) << f.outPoint
	f.value ^= f.value >> f.targetBits
	f.value &= mask
}

// recompute rebuilds the folded value from the raw history buffer by feeding
// the window's bits into a zeroed register. Folding is linear over GF(2), so
// this equals the incrementally maintained value. O(histLen); only paid on
// squash recovery.
func (f *foldedHistory) recompute(ghist []byte, ptr int) {
	mask := uint32(1)<<f.targetBits - 1
	v := uint32(0)
	for p := ptr - f.histLen + 1; p <= ptr; p++ {
		v = (v << 1) | uint32(ghist[p&(len(ghist)-1)])
		v ^= v >> f.targetBits
		v &= mask
	}
	f.value = v
}

type tageEntry struct {
	tag    uint32
	ctr    int8 // signed, [-4, 3]; >= 0 predicts taken
	useful uint8
}

type tageComponent struct {
	entries []tageEntry
	histLen int
	idxBits int
	fIdx    foldedHistory // folded history for index
	fTag1   foldedHistory // folded histories for tag
	fTag2   foldedHistory
}

// TAGE is a TAgged GEometric history length branch direction predictor.
// It is not safe for concurrent use.
type TAGE struct {
	base     []int8 // bimodal base predictor, 2-bit counters in [-2, 1]
	baseBits int
	comps    []tageComponent

	ghist []byte // circular global history buffer
	gptr  int

	tick int // allocation aging counter
}

// Snapshot captures the speculative direction-history position — and the
// incrementally folded per-component hashes — so a pipeline squash can be
// restored in O(components) instead of refolding O(histLen) bits per
// component. Capturing the folded values is exact: folding is linear over
// GF(2), and the raw history bits at or before the snapshot position are
// never overwritten while the snapshot can still be restored (the ring
// holds 4x the maximum history, far more than the machine's in-flight
// branch count).
type Snapshot struct {
	gptr int
	// captured is false when the configuration has more components than
	// the fixed-size capture array; Restore then falls back to refolding.
	captured bool
	folded   [3 * snapComps]uint32
}

// snapComps bounds the number of tagged components whose folded state a
// Snapshot captures inline (the paper's configuration has 12).
const snapComps = 16

// NewTAGE builds a predictor from the configuration's TAGE geometry.
func NewTAGE(cfg *config.CoreConfig) *TAGE {
	nComps := cfg.TAGEComponents
	if nComps <= 0 {
		nComps = 12
	}
	maxHist := cfg.TAGEMaxHistory
	if maxHist <= 0 {
		maxHist = 640
	}
	const minHist = 4
	baseBits := cfg.TAGEBaseBits
	if baseBits <= 0 {
		baseBits = 13
	}
	taggedBits := cfg.TAGETaggedBits
	if taggedBits <= 0 {
		taggedBits = 10
	}

	histSize := 1
	for histSize < 4*maxHist {
		histSize <<= 1
	}
	t := &TAGE{
		base:     make([]int8, 1<<baseBits),
		baseBits: baseBits,
		ghist:    make([]byte, histSize),
	}
	ratio := 1.0
	if nComps > 1 {
		ratio = math.Pow(float64(maxHist)/minHist, 1/float64(nComps-1))
	}
	l := float64(minHist)
	prev := 0
	for i := 0; i < nComps; i++ {
		hl := int(l + 0.5)
		if hl <= prev {
			hl = prev + 1
		}
		prev = hl
		t.comps = append(t.comps, tageComponent{
			entries: make([]tageEntry, 1<<taggedBits),
			histLen: hl,
			idxBits: taggedBits,
			fIdx:    newFolded(hl, taggedBits),
			fTag1:   newFolded(hl, tagBits),
			fTag2:   newFolded(hl, tagBits-1),
		})
		l *= ratio
	}
	return t
}

// HistoryLengths returns the geometric history lengths of the tagged
// components, shortest first.
func (t *TAGE) HistoryLengths() []int {
	out := make([]int, len(t.comps))
	for i := range t.comps {
		out[i] = t.comps[i].histLen
	}
	return out
}

func (t *TAGE) baseIndex(pc uint64) int {
	return int(pc>>2) & (len(t.base) - 1)
}

func (c *tageComponent) index(pc uint64) int {
	h := uint32(pc>>2) ^ uint32(pc>>(2+uint(c.idxBits))) ^ c.fIdx.value
	return int(h) & (len(c.entries) - 1)
}

func (c *tageComponent) tag(pc uint64) uint32 {
	return (uint32(pc>>2) ^ c.fTag1.value ^ (c.fTag2.value << 1)) & ((1 << tagBits) - 1)
}

// maxComponents bounds the per-prediction index/tag arrays so Prediction
// values stay allocation-free.
const maxComponents = 16

// Prediction is the result of a TAGE lookup; the caller keeps it with the
// in-flight branch and passes it back to Update at retirement. It carries
// the prediction-time indices and tags of every component: the update and
// allocation must address the entries the lookup saw, not the entries the
// (by then advanced) history would select.
type Prediction struct {
	Taken    bool
	provider int // component index + 1; 0 = base predictor
	altPred  bool
	baseIdx  int
	weak     bool
	idx      [maxComponents]int32
	tag      [maxComponents]uint32
}

// Predict returns the predicted direction for the conditional branch at pc.
func (t *TAGE) Predict(pc uint64) Prediction {
	p := Prediction{baseIdx: t.baseIndex(pc)}
	basePred := t.base[p.baseIdx] >= 0
	p.Taken, p.altPred = basePred, basePred

	for i := range t.comps {
		c := &t.comps[i]
		p.idx[i] = int32(c.index(pc))
		p.tag[i] = c.tag(pc)
	}

	provider, alt := -1, -1
	for i := len(t.comps) - 1; i >= 0; i-- {
		if t.comps[i].entries[p.idx[i]].tag == p.tag[i] {
			if provider < 0 {
				provider = i
			} else {
				alt = i
				break
			}
		}
	}
	if provider >= 0 {
		e := &t.comps[provider].entries[p.idx[provider]]
		p.provider = provider + 1
		p.weak = e.ctr == 0 || e.ctr == -1
		if alt >= 0 {
			p.altPred = t.comps[alt].entries[p.idx[alt]].ctr >= 0
		}
		// Weak, likely newly allocated entries defer to the alternate
		// prediction (simplified USE_ALT_ON_NA policy).
		if p.weak {
			p.Taken = p.altPred
		} else {
			p.Taken = e.ctr >= 0
		}
	}
	return p
}

// Update trains the predictor with the resolved outcome of a conditional
// branch. pred must be the Prediction returned by Predict for this dynamic
// branch. Direction history is advanced separately via UpdateHistory at
// prediction time.
func (t *TAGE) Update(pc uint64, taken bool, pred Prediction) {
	correct := pred.Taken == taken

	if pred.provider > 0 {
		ci := pred.provider - 1
		e := &t.comps[ci].entries[pred.idx[ci]]
		// The entry may have been displaced since prediction; train only
		// if the tag still matches (commit-time update).
		if e.tag == pred.tag[ci] {
			e.ctr = satSigned(e.ctr, taken, ctrMin, ctrMax)
			providerPred := e.ctr >= 0
			if providerPred == taken && pred.altPred != taken {
				if e.useful < usefulMax {
					e.useful++
				}
			} else if providerPred != taken && pred.altPred == taken {
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	} else {
		t.base[pred.baseIdx] = satSigned(t.base[pred.baseIdx], taken, -2, 1)
	}
	// Keep the fallback trained while the provider is still weak.
	if pred.provider > 0 && pred.weak {
		t.base[pred.baseIdx] = satSigned(t.base[pred.baseIdx], taken, -2, 1)
	}

	if !correct && pred.provider < len(t.comps) {
		t.allocate(&pred, taken, pred.provider)
	}

	t.tick++
	if t.tick >= uResetEvery {
		t.tick = 0
		t.age()
	}
}

// allocate installs a new entry in a component with a longer history than
// the provider, preferring entries whose useful counter is zero. If none is
// available the useful counters along the way are decayed instead, so a
// steady stream of mispredictions eventually frees space.
func (t *TAGE) allocate(pred *Prediction, taken bool, fromComp int) {
	for i := fromComp; i < len(t.comps); i++ {
		e := &t.comps[i].entries[pred.idx[i]]
		if e.useful == 0 {
			e.tag = pred.tag[i]
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	for i := fromComp; i < len(t.comps); i++ {
		if e := &t.comps[i].entries[pred.idx[i]]; e.useful > 0 {
			e.useful--
		}
	}
}

func (t *TAGE) age() {
	for i := range t.comps {
		for j := range t.comps[i].entries {
			t.comps[i].entries[j].useful >>= 1
		}
	}
}

// UpdateHistory appends the (possibly speculative) outcome of a conditional
// branch to the global direction history at prediction time.
func (t *TAGE) UpdateHistory(taken bool) {
	t.gptr++
	bit := byte(0)
	if taken {
		bit = 1
	}
	t.ghist[t.gptr&(len(t.ghist)-1)] = bit
	for i := range t.comps {
		c := &t.comps[i]
		c.fIdx.update(t.ghist, t.gptr)
		c.fTag1.update(t.ghist, t.gptr)
		c.fTag2.update(t.ghist, t.gptr)
	}
}

// Snapshot captures the current speculative history position and folded
// hashes.
func (t *TAGE) Snapshot() Snapshot {
	var s Snapshot
	t.SnapshotInto(&s)
	return s
}

// SnapshotInto is Snapshot without the value copy — the caller owns (and
// typically pools) the destination.
func (t *TAGE) SnapshotInto(s *Snapshot) {
	s.gptr = t.gptr
	s.captured = len(t.comps) <= snapComps
	if !s.captured {
		return
	}
	for i := range t.comps {
		c := &t.comps[i]
		s.folded[3*i] = c.fIdx.value
		s.folded[3*i+1] = c.fTag1.value
		s.folded[3*i+2] = c.fTag2.value
	}
}

// Restore rewinds the direction history to a snapshot taken before a
// squashed region: folded histories are restored from the captured values,
// or recomputed from the raw buffer for oversized configurations.
func (t *TAGE) Restore(s Snapshot) { t.RestoreFrom(&s) }

// RestoreFrom is Restore without the argument copy.
func (t *TAGE) RestoreFrom(s *Snapshot) {
	t.gptr = s.gptr
	if s.captured {
		for i := range t.comps {
			c := &t.comps[i]
			c.fIdx.value = s.folded[3*i]
			c.fTag1.value = s.folded[3*i+1]
			c.fTag2.value = s.folded[3*i+2]
		}
		return
	}
	for i := range t.comps {
		c := &t.comps[i]
		c.fIdx.recompute(t.ghist, t.gptr)
		c.fTag1.recompute(t.ghist, t.gptr)
		c.fTag2.recompute(t.ghist, t.gptr)
	}
}

func satSigned(v int8, up bool, lo, hi int8) int8 {
	if up {
		if v < hi {
			return v + 1
		}
		return v
	}
	if v > lo {
		return v - 1
	}
	return v
}
