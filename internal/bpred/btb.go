package bpred

// BTB is a set-associative branch target buffer with LRU replacement.
// Table 1: 2-way, 8K entries.
type BTB struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways; 0 means invalid (PC 0 is never a branch)
	tgts  []uint64
	lru   []uint8 // per-entry recency; higher = more recent
	clock uint8
}

// NewBTB constructs a BTB with the given total entry count and
// associativity. entries must be a positive multiple of ways with a
// power-of-two set count.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("bpred: invalid BTB geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	return &BTB{
		sets: sets,
		ways: ways,
		tags: make([]uint64, entries),
		tgts: make([]uint64, entries),
		lru:  make([]uint8, entries),
	}
}

func (b *BTB) setOf(pc uint64) int { return int(pc>>2) & (b.sets - 1) }

// Lookup returns the predicted target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	base := b.setOf(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc {
			b.touch(base + w)
			return b.tgts[base+w], true
		}
	}
	return 0, false
}

// Insert records (or refreshes) the target of the branch at pc, evicting the
// least recently used way of the set if needed.
func (b *BTB) Insert(pc, target uint64) {
	base := b.setOf(pc) * b.ways
	victim := base
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.tags[i] == pc || b.tags[i] == 0 {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = pc
	b.tgts[victim] = target
	b.touch(victim)
}

func (b *BTB) touch(i int) {
	b.clock++
	if b.clock == 0 { // wrapped: rescale all recencies
		for j := range b.lru {
			b.lru[j] >>= 1
		}
		b.clock = 128
	}
	b.lru[i] = b.clock
}

// RAS is a fixed-depth return address stack with wrap-around overwrite, as
// in real front ends (32 entries in Table 1). Underflow returns ok=false.
type RAS struct {
	stack []uint64
	top   int // index of next push slot
	depth int // number of live entries, capped at len(stack)
}

// NewRAS constructs a return address stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		panic("bpred: RAS size must be positive")
	}
	return &RAS{stack: make([]uint64, n)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }
