package bpred

import (
	"testing"
	"testing/quick"

	"specsched/internal/config"
	"specsched/internal/rng"
)

func newTAGE() *TAGE {
	cfg := config.Default()
	return NewTAGE(&cfg)
}

// predictAndTrain runs one dynamic branch through the full predict/update
// protocol and reports whether the prediction was correct.
func predictAndTrain(t *TAGE, pc uint64, taken bool) bool {
	p := t.Predict(pc)
	t.UpdateHistory(taken)
	t.Update(pc, taken, p)
	return p.Taken == taken
}

func TestHistoryLengthsGeometric(t *testing.T) {
	tg := newTAGE()
	hl := tg.HistoryLengths()
	if len(hl) != 12 {
		t.Fatalf("component count = %d, want 12", len(hl))
	}
	for i := 1; i < len(hl); i++ {
		if hl[i] <= hl[i-1] {
			t.Fatalf("history lengths not strictly increasing: %v", hl)
		}
	}
	if hl[0] != 4 || hl[len(hl)-1] != 640 {
		t.Fatalf("history span = [%d, %d], want [4, 640]", hl[0], hl[len(hl)-1])
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	tg := newTAGE()
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 200; i++ {
		if !predictAndTrain(tg, pc, true) && i > 4 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Fatalf("always-taken branch mispredicted %d times after warmup", wrong)
	}
}

func TestLearnsAlternating(t *testing.T) {
	// A strictly alternating branch is perfectly correlated with its own
	// last outcome; TAGE must learn it via short history components.
	tg := newTAGE()
	pc := uint64(0x400200)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if !predictAndTrain(tg, pc, taken) && i > 1000 {
			wrong++
		}
	}
	if wrong > 10 {
		t.Fatalf("alternating branch mispredicted %d/1000 after training", wrong)
	}
}

func TestLearnsLoopPattern(t *testing.T) {
	// Pattern: 7 taken, 1 not-taken (a loop with trip count 8). Requires
	// medium-length history.
	tg := newTAGE()
	pc := uint64(0x400300)
	wrong := 0
	for i := 0; i < 8000; i++ {
		taken := i%8 != 7
		if !predictAndTrain(tg, pc, taken) && i > 4000 {
			wrong++
		}
	}
	if frac := float64(wrong) / 4000; frac > 0.02 {
		t.Fatalf("loop pattern misprediction rate %.3f, want < 0.02", frac)
	}
}

func TestRandomBranchNearCoinFlip(t *testing.T) {
	// An uncorrelated random branch cannot be predicted; the predictor
	// must not do catastrophically worse than 50%.
	tg := newTAGE()
	r := rng.New(99)
	pc := uint64(0x400400)
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := r.Bool(0.5)
		if !predictAndTrain(tg, pc, taken) {
			wrong++
		}
	}
	if frac := float64(wrong) / n; frac > 0.6 {
		t.Fatalf("random branch misprediction rate %.3f, want <= ~0.5", frac)
	}
}

func TestBiasedBranchBeatsBias(t *testing.T) {
	tg := newTAGE()
	r := rng.New(7)
	pc := uint64(0x400500)
	wrong := 0
	const n = 10000
	for i := 0; i < n; i++ {
		taken := r.Bool(0.9)
		if !predictAndTrain(tg, pc, taken) && i > 1000 {
			wrong++
		}
	}
	if frac := float64(wrong) / (n - 1000); frac > 0.15 {
		t.Fatalf("90%%-biased branch misprediction rate %.3f, want <= 0.15", frac)
	}
}

func TestMultipleBranchesNoDestructiveAliasing(t *testing.T) {
	tg := newTAGE()
	wrong := 0
	const n = 3000
	for i := 0; i < n; i++ {
		for b := 0; b < 16; b++ {
			pc := uint64(0x10000 + b*4)
			taken := b%2 == 0 // each branch has a fixed direction
			if !predictAndTrain(tg, pc, taken) && i > 100 {
				wrong++
			}
		}
	}
	if wrong > 50 {
		t.Fatalf("%d mispredictions across fixed-direction branches", wrong)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a, b := newTAGE(), newTAGE()
	r := rng.New(3)
	// Drive both with the same prefix.
	for i := 0; i < 500; i++ {
		taken := r.Bool(0.5)
		a.UpdateHistory(taken)
		b.UpdateHistory(taken)
	}
	snap := a.Snapshot()
	// Pollute a's history with wrong-path outcomes, then restore.
	for i := 0; i < 100; i++ {
		a.UpdateHistory(i%3 == 0)
	}
	a.Restore(snap)
	// The two predictors must now agree on folded state: feed identical
	// suffixes and compare predictions over many PCs.
	r2 := rng.New(17)
	for i := 0; i < 200; i++ {
		taken := r2.Bool(0.5)
		a.UpdateHistory(taken)
		b.UpdateHistory(taken)
	}
	for pc := uint64(0x5000); pc < 0x5400; pc += 4 {
		pa, pb := a.Predict(pc), b.Predict(pc)
		if pa.Taken != pb.Taken || pa.provider != pb.provider {
			t.Fatalf("pc %#x: restored predictor diverges (taken %v vs %v, provider %d vs %d)",
				pc, pa.Taken, pb.Taken, pa.provider, pb.provider)
		}
	}
}

func TestFoldedHistoryIncrementalMatchesRecompute(t *testing.T) {
	// Property: after any outcome sequence, the incrementally maintained
	// folded value equals the from-scratch recompute.
	f := func(seedLow uint32, steps uint8) bool {
		ghist := make([]byte, 256)
		inc := newFolded(17, 7)
		r := rng.New(uint64(seedLow))
		ptr := 0
		n := int(steps) + 20
		for i := 0; i < n; i++ {
			ptr++
			if r.Bool(0.5) {
				ghist[ptr&255] = 1
			} else {
				ghist[ptr&255] = 0
			}
			inc.update(ghist, ptr)
		}
		chk := newFolded(17, 7)
		chk.recompute(ghist, ptr)
		return chk.value == inc.value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTBBasic(t *testing.T) {
	b := NewBTB(64, 2)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("empty BTB returned a hit")
	}
	b.Insert(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("Lookup = (%#x, %t), want (0x2000, true)", tgt, ok)
	}
	// Update in place.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Fatalf("updated target = %#x, want 0x3000", tgt)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(8, 2)                                       // 4 sets, 2 ways
	set0 := func(i int) uint64 { return uint64(i) * 4 * 4 } // all map to set 0
	b.Insert(set0(1), 0xA)
	b.Insert(set0(2), 0xB)
	b.Lookup(set0(1)) // make way holding set0(1) most recent
	b.Insert(set0(3), 0xC)
	if _, ok := b.Lookup(set0(2)); ok {
		t.Fatal("LRU way not evicted")
	}
	if _, ok := b.Lookup(set0(1)); !ok {
		t.Fatal("MRU way evicted")
	}
	if _, ok := b.Lookup(set0(3)); !ok {
		t.Fatal("inserted entry missing")
	}
}

func TestBTBManyInsertionsAllRetrievable(t *testing.T) {
	b := NewBTB(8192, 2)
	for i := 0; i < 4096; i++ {
		pc := uint64(0x400000 + i*4) // consecutive instruction slots: distinct sets
		b.Insert(pc, pc+4)
	}
	misses := 0
	for i := 0; i < 4096; i++ {
		pc := uint64(0x400000 + i*4)
		if tgt, ok := b.Lookup(pc); !ok || tgt != pc+4 {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("%d/4096 entries lost in a half-full BTB", misses)
	}
}

func TestBTBInvalidGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBTB(0, 2) },
		func() { NewBTB(10, 3) },
		func() { NewBTB(24, 2) }, // 12 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid BTB geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop of empty RAS succeeded")
	}
	r.Push(0x100)
	r.Push(0x200)
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Fatalf("pop = %#x, want 0x200", a)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Fatalf("pop = %#x, want 0x100", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS should be empty")
	}
}

func TestRASOverflowWrapsKeepingNewest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, _ := r.Pop(); a != 3 {
		t.Fatalf("pop = %d, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Fatalf("pop = %d, want 2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("oldest entry should have been overwritten")
	}
}

func TestRASDepth(t *testing.T) {
	r := NewRAS(8)
	for i := 0; i < 5; i++ {
		r.Push(uint64(i))
	}
	if r.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", r.Depth())
	}
	r.Pop()
	if r.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", r.Depth())
	}
}
