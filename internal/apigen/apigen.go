// Package apigen renders the exported surface of the public specsched
// packages as a stable, diffable text document. The committed golden
// (api/specsched.txt) is regenerated and compared in CI, so any change to
// the public API — a new function, a removed field, a changed signature —
// must show up in review as a diff of that file.
//
// The dump is AST-based (no type checking): it lists every exported
// constant, variable, function, type, struct field, and method with its
// source-level signature, normalized and sorted within each package.
package apigen

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Surface renders the exported API of the Go packages in dirs (one package
// per directory; test files are ignored) into one sorted text document.
func Surface(dirs ...string) (string, error) {
	var out strings.Builder
	for i, dir := range dirs {
		sec, err := packageSurface(dir)
		if err != nil {
			return "", err
		}
		if i > 0 {
			out.WriteString("\n")
		}
		out.WriteString(sec)
	}
	return out.String(), nil
}

func packageSurface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi iofs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", fmt.Errorf("apigen: %s: %w", dir, err)
	}
	if len(pkgs) != 1 {
		return "", fmt.Errorf("apigen: %s holds %d packages, want 1", dir, len(pkgs))
	}
	var lines []string
	var pkgName string
	for name, pkg := range pkgs {
		pkgName = name
		files := make([]string, 0, len(pkg.Files))
		for f := range pkg.Files {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			lines = append(lines, fileSurface(fset, pkg.Files[f])...)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	fmt.Fprintf(&b, "package %s // %q\n", pkgName, filepath.ToSlash(dir))
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func fileSurface(fset *token.FileSet, f *ast.File) []string {
	var lines []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil {
				recv := exprString(fset, d.Recv.List[0].Type)
				// Methods on unexported receivers are unreachable.
				if !ast.IsExported(strings.TrimLeft(recv, "*")) {
					continue
				}
				lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, funcSig(fset, d.Type)))
			} else {
				lines = append(lines, fmt.Sprintf("func %s%s", d.Name.Name, funcSig(fset, d.Type)))
			}
		case *ast.GenDecl:
			lines = append(lines, genDeclSurface(fset, d)...)
		}
	}
	return lines
}

func genDeclSurface(fset *token.FileSet, d *ast.GenDecl) []string {
	var lines []string
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			assign := ""
			if sp.Assign.IsValid() {
				assign = "= "
			}
			switch t := sp.Type.(type) {
			case *ast.StructType:
				lines = append(lines, fmt.Sprintf("type %s struct", sp.Name.Name))
				for _, fld := range t.Fields.List {
					ft := exprString(fset, fld.Type)
					if len(fld.Names) == 0 { // embedded
						if ast.IsExported(strings.TrimLeft(ft, "*")) || strings.Contains(ft, ".") {
							lines = append(lines, fmt.Sprintf("type %s struct, embed %s", sp.Name.Name, ft))
						}
						continue
					}
					for _, n := range fld.Names {
						if n.IsExported() {
							lines = append(lines, fmt.Sprintf("type %s struct, field %s %s", sp.Name.Name, n.Name, ft))
						}
					}
				}
			case *ast.InterfaceType:
				lines = append(lines, fmt.Sprintf("type %s interface", sp.Name.Name))
				for _, m := range t.Methods.List {
					for _, n := range m.Names {
						if n.IsExported() {
							lines = append(lines, fmt.Sprintf("type %s interface, method %s%s",
								sp.Name.Name, n.Name, funcSig(fset, m.Type.(*ast.FuncType))))
						}
					}
				}
			default:
				lines = append(lines, fmt.Sprintf("type %s %s%s", sp.Name.Name, assign, exprString(fset, sp.Type)))
			}
		case *ast.ValueSpec:
			kw := "var"
			if d.Tok == token.CONST {
				kw = "const"
			}
			typ := ""
			if sp.Type != nil {
				typ = " " + exprString(fset, sp.Type)
			}
			for i, n := range sp.Names {
				if !n.IsExported() {
					continue
				}
				val := ""
				if kw == "const" && i < len(sp.Values) {
					val = " = " + exprString(fset, sp.Values[i])
				}
				lines = append(lines, fmt.Sprintf("%s %s%s%s", kw, n.Name, typ, val))
			}
		}
	}
	return lines
}

func funcSig(fset *token.FileSet, t *ast.FuncType) string {
	sig := exprString(fset, t)
	return strings.TrimPrefix(sig, "func")
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	// Normalize whitespace so formatting churn never diffs the golden.
	return strings.Join(strings.Fields(b.String()), " ")
}
