package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"specsched"
)

// ClientHeader names the submitting client for queue fairness. Absent or
// empty, the client is "default".
const ClientHeader = "X-Specsched-Client"

// maxSpecBytes bounds a submitted SweepSpec body.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/sweeps                 submit a SweepSpec, get a job ID (202)
//	GET    /v1/sweeps                 list jobs
//	GET    /v1/sweeps/{id}            job status + failure report
//	DELETE /v1/sweeps/{id}            cancel a job
//	GET    /v1/sweeps/{id}/cells      stream finished cells (NDJSON, or SSE
//	                                  with Accept: text/event-stream);
//	                                  resumable via ?after=N / Last-Event-ID
//	GET    /v1/sweeps/{id}/report/{name}  render a named report (done jobs)
//	GET    /healthz                   liveness (200 as long as the process serves)
//	GET    /readyz                    readiness: 503 while draining, so load
//	                                  balancers stop routing before shutdown
//	GET    /metrics                   Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/cells", s.handleCells)
	mux.HandleFunc("GET /v1/sweeps/{id}/report/{name}", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Retry-After values for shed load: queue-full is transient (jobs finish
// on the order of seconds to minutes), draining means "find another
// instance" — a restart takes at least this long.
const (
	retryAfterQueueFull = "10"
	retryAfterDraining  = "30"
)

// apiError is the uniform error body: a message plus a machine-matchable
// kind derived from the façade's sentinel taxonomy.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
	// QueueDepth reports the submitting client's queued-job count on
	// queue-full rejections, so clients can back off proportionally.
	QueueDepth *int `json:"queue_depth,omitempty"`
}

func errKind(err error) string {
	switch {
	case errors.Is(err, specsched.ErrInvalidConfig):
		return "invalid_config"
	case errors.Is(err, specsched.ErrUnknownWorkload):
		return "unknown_workload"
	case errors.Is(err, specsched.ErrBadTrace):
		return "bad_trace"
	case errors.Is(err, specsched.ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrClosed):
		return "shutting_down"
	}
	return ""
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error(), Kind: errKind(err)})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return nil, false
	}
	return j, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec specsched.SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	// Strict decoding: a misspelled axis would otherwise silently sweep
	// the defaults, which for a service is worse than a 400.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec: " + err.Error(), Kind: "bad_json"})
		return
	}
	client := r.Header.Get(ClientHeader)
	j, err := s.Submit(client, spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			depth := s.QueueDepth(client)
			w.Header().Set("Retry-After", retryAfterQueueFull)
			writeJSON(w, http.StatusTooManyRequests,
				apiError{Error: err.Error(), Kind: errKind(err), QueueDepth: &depth})
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retryAfterDraining)
			writeErr(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status(r.URL.Query().Get("spec") == "1"))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.Cancel(j)
	writeJSON(w, http.StatusOK, j.Status(false))
}

// handleCells streams the job's finished cells from ?after=N on (N cells
// already received; default 0). Default framing is NDJSON — one CellRecord
// per line, connection closing when the job is terminal. With
// Accept: text/event-stream it speaks SSE instead: each cell is an event
// whose id is its index (so EventSource reconnection resumes for free via
// Last-Event-ID), and a final "done" event carries the terminal status.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad after cursor", Kind: "bad_cursor"})
			return
		}
		after = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				after = n + 1
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	next := after
	for {
		cells, state, wait := j.cellsFrom(next)
		for _, c := range cells {
			data, err := json.Marshal(c)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "id: %d\nevent: cell\ndata: %s\n\n", c.Index, data)
			} else {
				w.Write(data)
				w.Write([]byte{'\n'})
			}
		}
		next += len(cells)
		if flusher != nil && len(cells) > 0 {
			flusher.Flush()
		}
		if wait == nil {
			if state.Terminal() {
				if sse {
					data, _ := json.Marshal(j.Status(false))
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
					if flusher != nil {
						flusher.Flush()
					}
				}
				return
			}
			// New cells landed between snapshot and wait registration;
			// loop to pick them up.
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return // daemon shutting down; client reconnects to the next one
		case <-wait:
		}
	}
}

// handleReport renders one named experiment report for a finished job.
// Reports run whatever extra cells their grids need, so the request can
// take a while; it is bound to the request context.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j.State() != JobDone {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("job %s is %s; reports need a done job", j.ID, j.State()),
			Kind:  "not_done",
		})
		return
	}
	name := r.PathValue("name")
	if !slicesContains(specsched.Reports(), name) {
		writeJSON(w, http.StatusNotFound, apiError{
			Error: fmt.Sprintf("unknown report %q (see /v1/sweeps/%s for the list)", name, j.ID),
			Kind:  "unknown_report",
		})
		return
	}
	sweep := j.sweepRef()
	if sweep == nil {
		// Terminal without a sweep only happens for recovered failed jobs,
		// which can't reach here (state is not done); defend anyway.
		writeJSON(w, http.StatusConflict, apiError{Error: "job has no live sweep", Kind: "not_done"})
		return
	}
	out, err := sweep.Report(r.Context(), name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(out))
}

// handleHealthz is pure liveness: 200 as long as the process can serve a
// request at all. Readiness (routing decisions) lives on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 503 once a drain (or Close) has begun, so
// load balancers pull the instance before shutdown instead of racing it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.Header().Set("Retry-After", retryAfterDraining)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g := gauges{queued: s.queued, running: s.running, ready: !s.draining && !s.closed}
	s.mu.Unlock()
	g.cache = s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.render(w, g)
}
