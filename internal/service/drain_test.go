package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specsched"
)

// longSpec is a 1-cell grid whose measurement window is effectively
// unbounded: the job holds its run slot until canceled, which lets the
// drain tests pin the daemon in a "one running, one queued" state
// deterministically instead of sleeping and hoping.
func longSpec() specsched.SweepSpec {
	w, m := int64(0), int64(1)<<40
	return specsched.SweepSpec{
		Configs:   []string{"Baseline_0"},
		Workloads: []string{"gzip"},
		Warmup:    &w,
		Measure:   &m,
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceDrain walks the whole graceful-degradation sequence: a drain
// rejects new submissions, flips readiness, never starts queued jobs,
// AwaitIdle honors its deadline while a sweep still runs and returns once
// the daemon is idle — and the queued job is still queued (parked for the
// next daemon), not silently started or failed.
func TestServiceDrain(t *testing.T) {
	s, err := New(Config{MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	running, err := s.Submit("a", longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, JobRunning)
	queued, err := s.Submit("a", longSpec())
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != JobQueued {
		t.Fatalf("second job is %s, want queued behind MaxRunning=1", queued.State())
	}

	if !s.Ready() {
		t.Fatal("daemon not ready before drain")
	}
	s.StartDrain()
	s.StartDrain() // idempotent
	if s.Ready() {
		t.Fatal("daemon still ready after StartDrain")
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	if _, err := s.Submit("a", testSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission during drain: %v, want ErrDraining", err)
	}

	// The running sweep holds the daemon busy: AwaitIdle must time out,
	// not return early.
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.AwaitIdle(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AwaitIdle with a running sweep: %v, want deadline exceeded", err)
	}

	// Finish the running job; the drain must then report idle WITHOUT
	// starting the queued job.
	s.Cancel(running)
	waitState(t, running, JobCanceled)
	idleCtx, cancelIdle := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelIdle()
	if err := s.AwaitIdle(idleCtx); err != nil {
		t.Fatalf("AwaitIdle after the running sweep finished: %v", err)
	}
	if st := queued.State(); st != JobQueued {
		t.Fatalf("queued job transitioned to %s during drain; it must stay parked", st)
	}
}

// TestServiceDrainHTTP pins the wire form of shutdown and load shedding:
// /readyz 503 + Retry-After during drain (200 before), submissions 503
// with the "draining" kind, queue-full 429 with Retry-After and the
// client's queue depth in the body, and the specschedd_ready gauge.
func TestServiceDrainHTTP(t *testing.T) {
	s, err := New(Config{MaxRunning: 1, MaxQueue: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}
	submit := func(client string) (*http.Response, apiError) {
		t.Helper()
		spec, _ := json.Marshal(longSpec())
		req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(string(spec)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientHeader, client)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae apiError
		json.NewDecoder(resp.Body).Decode(&ae)
		return resp, ae
	}

	if resp, body := get("/readyz"); resp.StatusCode != http.StatusOK || body != "ready\n" {
		t.Fatalf("readyz before drain: %d %q", resp.StatusCode, body)
	}

	// Fill the daemon: one running (holds its slot), one queued (fills the
	// 1-deep queue). The next submission must shed with a 429 that tells
	// the client how deep it already is.
	if resp, _ := submit("alice"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	var running *Job
	for _, j := range s.Jobs() {
		running = j
	}
	waitState(t, running, JobRunning)
	if resp, _ := submit("alice"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp, ae := submit("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != retryAfterQueueFull {
		t.Fatalf("queue-full Retry-After = %q, want %q", resp.Header.Get("Retry-After"), retryAfterQueueFull)
	}
	if ae.Kind != "queue_full" || ae.QueueDepth == nil || *ae.QueueDepth != 1 {
		t.Fatalf("queue-full body = %+v, want kind queue_full and queue_depth 1", ae)
	}

	s.StartDrain()
	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz during drain: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != retryAfterDraining {
		t.Fatalf("readyz Retry-After = %q, want %q", resp.Header.Get("Retry-After"), retryAfterDraining)
	}
	resp, ae = submit("alice")
	if resp.StatusCode != http.StatusServiceUnavailable || ae.Kind != "draining" {
		t.Fatalf("submit during drain: %d kind=%q, want 503/draining", resp.StatusCode, ae.Kind)
	}
	if resp.Header.Get("Retry-After") != retryAfterDraining {
		t.Fatalf("drain submit Retry-After = %q, want %q", resp.Header.Get("Retry-After"), retryAfterDraining)
	}
	// Liveness stays green through the drain — that split is the point.
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz during drain: %d %q", resp.StatusCode, body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, "specschedd_ready 0") {
		t.Fatal("metrics during drain do not report specschedd_ready 0")
	}

	s.Cancel(running)
	waitState(t, running, JobCanceled)
}
