package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"specsched"
	"specsched/results"
)

// testSpec is a small 4-cell grid (2 configs × 2 workloads × 1 seed) that
// keeps every service test fast while still exercising merge order,
// dedup, and checkpointing.
func testSpec() specsched.SweepSpec {
	w, m := int64(500), int64(2000)
	return specsched.SweepSpec{
		Configs:   []string{"Baseline_0", "SpecSched_4"},
		Workloads: []string{"gzip", "hmmer"},
		Seeds:     1,
		Jobs:      2,
		Warmup:    &w,
		Measure:   &m,
	}
}

type cellKey struct {
	config, workload string
	seed             int
}

// runBaseline computes the ground truth for a spec through the plain
// public façade — exactly what the daemon's results must be bit-identical
// to.
func runBaseline(t *testing.T, spec specsched.SweepSpec) map[cellKey]results.Run {
	t.Helper()
	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[cellKey]results.Run, len(cells))
	for _, c := range cells {
		r := c.Run
		r.Elapsed = 0
		out[cellKey{c.Config, c.Workload, c.Seed}] = r
	}
	return out
}

// checkCells asserts a job's cell log matches the baseline bit for bit.
func checkCells(t *testing.T, name string, cells []CellRecord, want map[cellKey]results.Run) {
	t.Helper()
	if len(cells) != len(want) {
		t.Fatalf("%s: %d cells, want %d", name, len(cells), len(want))
	}
	for _, rec := range cells {
		if rec.Error != "" {
			t.Fatalf("%s: cell %s/%s/%d failed: %s", name, rec.Config, rec.Workload, rec.Seed, rec.Error)
		}
		wantRun, ok := want[cellKey{rec.Config, rec.Workload, rec.Seed}]
		if !ok {
			t.Fatalf("%s: unexpected cell %s/%s/%d", name, rec.Config, rec.Workload, rec.Seed)
		}
		got := *rec.Run
		got.Elapsed = 0
		if got != wantRun {
			t.Fatalf("%s: cell %s/%s/%d not bit-identical to a standalone Sweep.Run", name, rec.Config, rec.Workload, rec.Seed)
		}
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
}

// TestServiceDedupAcrossJobs is the cross-job dedup contract the daemon
// exists for: two concurrent jobs over the same grid produce results
// bit-identical to independent standalone runs while simulating each
// distinct cell exactly once between them — the saving visible in the
// jobs' dedup counters and the shared cache's stats.
func TestServiceDedupAcrossJobs(t *testing.T) {
	spec := testSpec()
	want := runBaseline(t, spec)

	srv, err := New(Config{MaxRunning: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	j1, err := srv.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := srv.Submit("bob", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	waitDone(t, j2)

	grid := len(want)
	total := 0
	deduped := 0
	for _, j := range []*Job{j1, j2} {
		st := j.Status(false)
		if st.State != JobDone {
			t.Fatalf("job %s finished %s: %s", j.ID, st.State, st.Error)
		}
		cells, _, _ := j.cellsFrom(0)
		checkCells(t, "job "+j.ID, cells, want)
		total += st.DoneCells
		deduped += st.DedupedCells
	}
	if total != 2*grid {
		t.Fatalf("jobs completed %d cells, want %d", total, 2*grid)
	}
	// The whole point: 2×grid cells delivered, only grid simulated.
	if deduped != grid {
		t.Fatalf("jobs deduped %d cells, want %d (every cell of one job)", deduped, grid)
	}
	cs := srv.Cache().Stats()
	if cs.Simulated != int64(grid) {
		t.Fatalf("cache simulated %d cells for two jobs, want %d", cs.Simulated, grid)
	}
	if cs.Hits+cs.Deduped != int64(grid) {
		t.Fatalf("cache saved %d+%d cells, want %d", cs.Hits, cs.Deduped, grid)
	}
}

// TestServiceSubmitValidation: a bad spec is rejected at submission with
// the façade's typed sentinels — it never enters the queue.
func TestServiceSubmitValidation(t *testing.T) {
	srv, err := New(Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		name string
		spec specsched.SweepSpec
		want error
	}{
		{"no configs", specsched.SweepSpec{Workloads: []string{"gzip"}}, specsched.ErrInvalidConfig},
		{"unknown config", specsched.SweepSpec{Configs: []string{"Baseline_9"}}, specsched.ErrInvalidConfig},
		{"unknown workload", specsched.SweepSpec{Configs: []string{"Baseline_0"}, Workloads: []string{"nope"}}, specsched.ErrUnknownWorkload},
		{"negative seeds", specsched.SweepSpec{Configs: []string{"Baseline_0"}, Seeds: -1}, specsched.ErrInvalidConfig},
	}
	for _, tc := range cases {
		j, err := srv.Submit("c", tc.spec)
		if j != nil || err == nil {
			t.Fatalf("%s: submission was accepted", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: error %v does not match %v", tc.name, err, tc.want)
		}
	}
	if jobs := srv.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions entered the job table: %d jobs", len(jobs))
	}
}

// TestServiceQueueBoundsAndFairness drives the queue machinery without a
// dispatcher (hand-built Server, so nothing dequeues underneath the
// assertions): the queue bound rejects with ErrQueueFull, Close rejects
// with ErrClosed, and nextLocked serves clients round-robin — a client
// flooding the queue only delays its own jobs.
func TestServiceQueueBoundsAndFairness(t *testing.T) {
	s := &Server{
		cfg:    Config{MaxQueue: 5},
		jobs:   make(map[string]*Job),
		queues: make(map[string][]*Job),
	}

	var submitted []*Job
	for _, client := range []string{"a", "a", "a", "b", "c"} {
		j, err := s.Submit(client, testSpec())
		if err != nil {
			t.Fatal(err)
		}
		submitted = append(submitted, j)
	}
	if _, err := s.Submit("d", testSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("6th submission into a 5-queue: %v, want ErrQueueFull", err)
	}

	// a1 a2 a3 b1 c1 submitted; round-robin serves a1 b1 c1 a2 a3.
	wantOrder := []*Job{submitted[0], submitted[3], submitted[4], submitted[1], submitted[2]}
	s.mu.Lock()
	for i, want := range wantOrder {
		got := s.nextLocked()
		if got != want {
			s.mu.Unlock()
			t.Fatalf("dispatch %d: got %s (client %s), want %s (client %s)",
				i, got.ID, got.Client, want.ID, want.Client)
		}
	}
	if s.nextLocked() != nil {
		s.mu.Unlock()
		t.Fatal("drained queue still serves jobs")
	}
	s.mu.Unlock()

	s.closed = true
	if _, err := s.Submit("a", testSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submission after close: %v, want ErrClosed", err)
	}
}

// TestServiceCancel: canceling a queued job finishes it immediately
// without running; canceling the running job cancels its sweep context.
func TestServiceCancel(t *testing.T) {
	srv, err := New(Config{MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// j1 occupies the single run slot (full Table 2 suite keeps it busy
	// long enough); j2 sits queued behind it.
	w, m := int64(500), int64(4000)
	heavy := specsched.SweepSpec{Configs: []string{"Baseline_0"}, Warmup: &w, Measure: &m}
	j1, err := srv.Submit("alice", heavy)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := srv.Submit("bob", testSpec())
	if err != nil {
		t.Fatal(err)
	}

	srv.Cancel(j2)
	waitDone(t, j2)
	if st := j2.Status(false); st.State != JobCanceled || st.DoneCells != 0 {
		t.Fatalf("queued job canceled to state %s with %d cells, want canceled/0", st.State, st.DoneCells)
	}

	srv.Cancel(j1)
	waitDone(t, j1)
	if st := j1.State(); st != JobCanceled && st != JobDone {
		t.Fatalf("running job canceled to state %s", st)
	}
	// Canceling a terminal job is a no-op.
	srv.Cancel(j2)
	if st := j2.State(); st != JobCanceled {
		t.Fatalf("re-cancel changed a terminal job to %s", st)
	}
}

// TestServiceRestartRecovery is the daemon restart contract, in process:
// a server killed mid-job leaves a "running" manifest and a checkpoint;
// the next server re-enqueues the job and completes it bit-identically.
// A *finished* job recovered on a third start replays entirely from its
// checkpoint — every cell served cached, nothing re-simulated.
func TestServiceRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec()
	spec.Seeds = 2 // 8 cells: room for the shutdown to land mid-sweep
	want := runBaseline(t, spec)

	srv1, err := New(Config{StateDir: dir, MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := srv1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.ID
	// Let it make some progress, then take the daemon down mid-run. (If
	// the tiny sweep happens to finish first, recovery still replays it
	// from checkpoint — both paths must converge on identical results.)
	deadline := time.Now().Add(time.Minute)
	for {
		if st := j1.Status(false); st.DoneCells >= 1 || st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress (state %s)", j1.State())
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Close()

	srv2, err := New(Config{StateDir: dir, MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := srv2.Job(id)
	if !ok {
		t.Fatalf("job %s not recovered", id)
	}
	waitDone(t, j2)
	st := j2.Status(false)
	if st.State != JobDone {
		t.Fatalf("recovered job finished %s: %s", st.State, st.Error)
	}
	cells, _, _ := j2.cellsFrom(0)
	checkCells(t, "recovered job", cells, want)
	srv2.Close()

	// Third start: the job is done on disk; it replays from checkpoint so
	// its cells are streamable again, without simulating anything.
	srv3, err := New(Config{StateDir: dir, MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	j3, ok := srv3.Job(id)
	if !ok {
		t.Fatalf("done job %s not recovered", id)
	}
	waitDone(t, j3)
	st = j3.Status(false)
	if st.State != JobDone {
		t.Fatalf("replayed job finished %s: %s", st.State, st.Error)
	}
	if st.CachedCells != len(want) {
		t.Fatalf("replayed job served %d cells from checkpoint, want all %d", st.CachedCells, len(want))
	}
	cells, _, _ = j3.cellsFrom(0)
	checkCells(t, "replayed job", cells, want)
}
