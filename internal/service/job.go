package service

import (
	"sync"

	"specsched"
	"specsched/results"
)

// JobState is the lifecycle of one submitted sweep. Transitions are
// queued → running → (done | failed | canceled); a queued job may also
// jump straight to canceled. The terminal states never change again —
// a daemon restart re-enqueues interrupted (queued/running) jobs only.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// CellRecord is the wire form of one finished sweep cell, in the order the
// job completed them. Index is the record's position in the job's cell log
// and doubles as the resume cursor for GET /v1/sweeps/{id}/cells?after=N.
type CellRecord struct {
	Index    int          `json:"index"`
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Seed     int          `json:"seed"`
	Run      *results.Run `json:"run,omitempty"`
	Error    string       `json:"error,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
	Deduped  bool         `json:"deduped,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
}

// CellFailure is the wire form of one entry of a sweep's failure report.
type CellFailure struct {
	Config    string `json:"config"`
	Workload  string `json:"workload"`
	Seed      int    `json:"seed"`
	Error     string `json:"error"`
	Attempts  int    `json:"attempts"`
	Transient bool   `json:"transient,omitempty"`
}

// FailureSummary is the wire form of specsched.FailureReport.
type FailureSummary struct {
	Failed            []CellFailure `json:"failed,omitempty"`
	Recovered         int           `json:"recovered,omitempty"`
	Retries           int           `json:"retries,omitempty"`
	Abandoned         int           `json:"abandoned,omitempty"`
	CheckpointSalvage string        `json:"checkpoint_salvage,omitempty"`
}

// JobStatus is the status-endpoint response.
type JobStatus struct {
	ID           string               `json:"id"`
	Client       string               `json:"client"`
	State        JobState             `json:"state"`
	TotalCells   int                  `json:"total_cells"`
	DoneCells    int                  `json:"done_cells"`
	FailedCells  int                  `json:"failed_cells"`
	CachedCells  int                  `json:"cached_cells"`
	DedupedCells int                  `json:"deduped_cells"`
	Error        string               `json:"error,omitempty"`
	Failures     *FailureSummary      `json:"failures,omitempty"`
	Reports      []string             `json:"reports,omitempty"`
	Spec         *specsched.SweepSpec `json:"spec,omitempty"`
}

// Job is one submitted sweep: the spec as the client sent it, a
// completion-ordered log of finished cells, and the state machine above.
// All mutable fields are guarded by mu; the identity fields are immutable
// after construction.
type Job struct {
	ID     string
	Client string
	Spec   specsched.SweepSpec
	seq    uint64

	mu        sync.Mutex
	state     JobState
	cells     []CellRecord
	total     int
	failed    int
	cached    int
	deduped   int
	err       error
	sweep     *specsched.Sweep // set once running; source of FailureReport and Report
	cancel    func(error)      // cancels the running sweep's context
	cancelReq bool
	waiters   []chan struct{}
	done      chan struct{}
}

func newJob(id, client string, seq uint64, spec specsched.SweepSpec) *Job {
	return &Job{
		ID:     id,
		Client: client,
		Spec:   spec,
		seq:    seq,
		state:  JobQueued,
		done:   make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// start moves a queued job to running and installs the sweep's cancel
// function. It reports false if the job was canceled before it could start,
// and true with the pre-start cancel request flag otherwise (the caller
// must honor a pending request by canceling immediately — the request
// arrived before cancel was installed).
func (j *Job) start(cancel func(error)) (ok, cancelPending bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false, false
	}
	j.state = JobRunning
	j.cancel = cancel
	return true, j.cancelReq
}

// requestCancel marks the job as client-canceled and cancels its sweep if
// one is running. Queued jobs are finished by the server (which also owns
// the queue they sit in); this only flags and fires.
func (j *Job) requestCancel(cause error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cancelReq = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(cause)
	}
}

// cancelRequested reports whether a client asked for cancellation.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// setSweep publishes the constructed sweep for status/report queries.
func (j *Job) setSweep(s *specsched.Sweep) {
	j.mu.Lock()
	j.sweep = s
	j.mu.Unlock()
}

func (j *Job) sweepRef() *specsched.Sweep {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sweep
}

// noteTotal records the grid size, learned from the first progress event.
func (j *Job) noteTotal(total int) {
	j.mu.Lock()
	j.total = total
	j.mu.Unlock()
}

// appendCell adds one finished cell to the log and wakes streamers.
func (j *Job) appendCell(c specsched.Cell) {
	rec := CellRecord{
		Config:   c.Config,
		Workload: c.Workload,
		Seed:     c.Seed,
		Cached:   c.Cached,
		Deduped:  c.Deduped,
		Attempts: c.Attempts,
	}
	if c.Err != nil {
		rec.Error = c.Err.Error()
	} else {
		run := c.Run
		rec.Run = &run
	}
	j.mu.Lock()
	rec.Index = len(j.cells)
	j.cells = append(j.cells, rec)
	if c.Err != nil {
		j.failed++
	}
	if c.Cached {
		j.cached++
	}
	if c.Deduped {
		j.deduped++
	}
	j.notifyLocked()
	j.mu.Unlock()
}

// cellsFrom returns a copy of the cell log from index n on, the current
// state, and — iff nothing new is available and the job is still live — a
// channel that closes when either changes. Streamers loop on it.
func (j *Job) cellsFrom(n int) ([]CellRecord, JobState, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 {
		n = 0
	}
	var out []CellRecord
	if n < len(j.cells) {
		out = append(out, j.cells[n:]...)
	}
	var ch chan struct{}
	if len(out) == 0 && !j.state.Terminal() {
		ch = make(chan struct{})
		j.waiters = append(j.waiters, ch)
	}
	return out, j.state, ch
}

func (j *Job) notifyLocked() {
	for _, ch := range j.waiters {
		close(ch)
	}
	j.waiters = nil
}

// notifyAll wakes streamers without changing state (daemon shutdown: the
// job stays "running" on disk so a restart resumes it).
func (j *Job) notifyAll() {
	j.mu.Lock()
	j.notifyLocked()
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once; it reports
// whether this call was the one that did it.
func (j *Job) finish(state JobState, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	if err != nil && state != JobDone {
		j.err = err
	}
	close(j.done)
	j.notifyLocked()
	return true
}

// Status snapshots the job for the status endpoint. For live jobs it calls
// the sweep's FailureReport concurrently with the sweep's own execution —
// exactly the concurrent use the façade documents as safe.
func (j *Job) Status(includeSpec bool) JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:           j.ID,
		Client:       j.Client,
		State:        j.state,
		TotalCells:   j.total,
		DoneCells:    len(j.cells),
		FailedCells:  j.failed,
		CachedCells:  j.cached,
		DedupedCells: j.deduped,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	sweep := j.sweep
	if includeSpec {
		spec := j.Spec
		st.Spec = &spec
	}
	j.mu.Unlock()

	if sweep != nil {
		fr := sweep.FailureReport()
		if fr.Retries != 0 || fr.Recovered != 0 || fr.Abandoned != 0 ||
			fr.CheckpointSalvage != "" || len(fr.Failed) != 0 {
			fs := &FailureSummary{
				Recovered:         fr.Recovered,
				Retries:           fr.Retries,
				Abandoned:         fr.Abandoned,
				CheckpointSalvage: fr.CheckpointSalvage,
			}
			for _, f := range fr.Failed {
				fs.Failed = append(fs.Failed, CellFailure{
					Config:    f.Cell.Config,
					Workload:  f.Cell.Workload,
					Seed:      f.Cell.Seed,
					Error:     f.Err.Error(),
					Attempts:  f.Attempts,
					Transient: f.Transient,
				})
			}
			st.Failures = fs
		}
	}
	if st.State == JobDone {
		st.Reports = specsched.Reports()
	}
	return st
}
