package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServiceHTTP drives the whole wire API through a real HTTP server:
// submit, live NDJSON streaming, the ?after= resume cursor, SSE framing
// with Last-Event-ID resumption, status with and without the spec echo,
// error mapping, metrics exposition, and health.
func TestServiceHTTP(t *testing.T) {
	spec := testSpec()
	want := runBaseline(t, spec)

	srv, err := New(Config{MaxRunning: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string, hdr ...string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(hdr); i += 2 {
			req.Header.Set(hdr[i], hdr[i+1])
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Liveness first.
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Submission errors map to 400s with machine-matchable kinds.
	for _, tc := range []struct {
		body, kind string
	}{
		{`{"konfigs":["Baseline_0"]}`, "bad_json"}, // unknown field: strict decode
		{`{"configs":["Baseline_9"]}`, "invalid_config"},
		{`{"configs":["Baseline_0"],"workloads":["nope"]}`, "unknown_workload"},
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr apiError
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || apiErr.Kind != tc.kind {
			t.Fatalf("submit %s: %d kind %q, want 400 %q", tc.body, resp.StatusCode, apiErr.Kind, tc.kind)
		}
	}

	// A good submission: 202, a Location header, and a queued/running job.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ClientHeader, "curl-test")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.Client != "curl-test" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Fatalf("Location %q", loc)
	}

	// Live NDJSON stream: the connection opens while the job runs, blocks
	// for new cells, and closes at the terminal state with the full log.
	streamResp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + st.ID + "/cells")
	if err != nil {
		t.Fatal(err)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var streamed []CellRecord
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec CellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		streamed = append(streamed, rec)
	}
	streamResp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	checkCells(t, "ndjson stream", streamed, want)
	for i, rec := range streamed {
		if rec.Index != i {
			t.Fatalf("stream record %d carries index %d", i, rec.Index)
		}
	}

	// The job is terminal now; status reflects it, with the spec echoed
	// only on request.
	resp2, body := get("/v1/sweeps/" + st.ID)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status: %d %s", resp2.StatusCode, body)
	}
	var done JobStatus
	if err := json.Unmarshal(body, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone || done.DoneCells != len(want) || done.Spec != nil {
		t.Fatalf("status: %+v", done)
	}
	if len(done.Reports) == 0 {
		t.Fatal("done job lists no reports")
	}
	_, body = get("/v1/sweeps/" + st.ID + "?spec=1")
	var withSpec JobStatus
	if err := json.Unmarshal(body, &withSpec); err != nil {
		t.Fatal(err)
	}
	if withSpec.Spec == nil || len(withSpec.Spec.Configs) != len(spec.Configs) {
		t.Fatalf("spec echo: %+v", withSpec.Spec)
	}

	// Resume cursor: ?after=N skips the first N records.
	resp3, body := get(fmt.Sprintf("/v1/sweeps/%s/cells?after=%d", st.ID, len(want)-1))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d", resp3.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Fatalf("resume from %d returned %d records, want 1", len(want)-1, len(lines))
	}
	var last CellRecord
	if err := json.Unmarshal([]byte(lines[0]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Index != len(want)-1 {
		t.Fatalf("resumed record has index %d, want %d", last.Index, len(want)-1)
	}
	if resp4, _ := get("/v1/sweeps/" + st.ID + "/cells?after=x"); resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d, want 400", resp4.StatusCode)
	}

	// SSE framing: one "cell" event per record with its index as the event
	// id, then a final "done" event carrying the terminal status.
	resp5, body := get("/v1/sweeps/"+st.ID+"/cells", "Accept", "text/event-stream")
	if ct := resp5.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type %q", ct)
	}
	events := strings.Split(strings.TrimSpace(string(body)), "\n\n")
	if len(events) != len(want)+1 {
		t.Fatalf("SSE sent %d events, want %d cells + done", len(events), len(want))
	}
	for i, ev := range events[:len(want)] {
		if !strings.Contains(ev, fmt.Sprintf("id: %d\n", i)) || !strings.Contains(ev, "event: cell\n") {
			t.Fatalf("SSE event %d malformed:\n%s", i, ev)
		}
	}
	if !strings.Contains(events[len(want)], "event: done") {
		t.Fatalf("no terminal done event:\n%s", events[len(want)])
	}
	// EventSource reconnection: Last-Event-ID resumes after that cell.
	_, body = get("/v1/sweeps/"+st.ID+"/cells",
		"Accept", "text/event-stream", "Last-Event-ID", fmt.Sprint(len(want)-2))
	if n := strings.Count(string(body), "event: cell"); n != 1 {
		t.Fatalf("Last-Event-ID resume replayed %d cells, want 1", n)
	}

	// Report endpoint guards: unknown job 404, unknown report name 404.
	if resp6, _ := get("/v1/sweeps/nope"); resp6.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp6.StatusCode)
	}
	if resp7, _ := get("/v1/sweeps/" + st.ID + "/report/nope"); resp7.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown report: %d, want 404", resp7.StatusCode)
	}

	// List includes the job.
	_, body = get("/v1/sweeps")
	var list []JobStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}

	// Metrics exposition: the advertised counters exist and the cache
	// counters add up (one grid simulated, zero shared — single job).
	_, body = get("/metrics")
	metricsText := string(body)
	for _, name := range []string{
		"specschedd_jobs_queued", "specschedd_jobs_running",
		"specschedd_jobs_completed_total 1",
		fmt.Sprintf("specschedd_cells_completed_total %d", len(want)),
		fmt.Sprintf("specschedd_cells_simulated_total %d", len(want)),
		"specschedd_cells_deduped_total 0",
		"specschedd_cells_cache_hits_total 0",
	} {
		if !strings.Contains(metricsText, name) {
			t.Fatalf("metrics missing %q:\n%s", name, metricsText)
		}
	}

	// DELETE on a terminal job reports its (unchanged) final state.
	delReq, err := http.NewRequest("DELETE", ts.URL+"/v1/sweeps/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp8, err := ts.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var afterCancel JobStatus
	if err := json.NewDecoder(resp8.Body).Decode(&afterCancel); err != nil {
		t.Fatal(err)
	}
	resp8.Body.Close()
	if afterCancel.State != JobDone {
		t.Fatalf("cancel of a done job changed its state to %s", afterCancel.State)
	}
}
