// Package service is the engine behind specschedd, the sweep-serving
// daemon: a bounded job queue with per-client round-robin fairness, a
// dispatcher running a fixed number of sweeps at once, cross-job cell
// deduplication and result caching through a shared specsched.CellCache,
// and restart recovery — every job persists a manifest and a resume
// checkpoint under its state directory, so a killed daemon re-enqueues
// interrupted jobs and resumes them from checkpoint instead of
// recomputing.
//
// The package is deliberately a pure consumer of the public specsched
// façade: every sweep it runs goes through SweepSpec validation,
// NewSweepFromSpec, and Results(ctx), exactly like an external caller.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"specsched"
)

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("service: server is shutting down")

// ErrDraining rejects submissions after StartDrain: the daemon is shutting
// down gracefully and admits no new work (running sweeps finish or park).
var ErrDraining = errors.New("service: daemon is draining")

// errShutdown is the cancellation cause used for daemon shutdown, so
// runJob can tell it apart from a client's cancel request.
var errShutdown = errors.New("service: daemon shutting down")

// Config parameterizes a Server. The zero value works: in-memory state
// (no recovery), a small queue, two concurrent sweeps.
type Config struct {
	// StateDir holds one manifest (<id>.job) and one resume checkpoint
	// (<id>.ckpt) per job. Empty disables persistence and recovery.
	StateDir string
	// MaxQueue bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail with ErrQueueFull. 0 selects 64.
	MaxQueue int
	// MaxRunning is how many sweeps execute concurrently. 0 selects 2.
	MaxRunning int
	// CacheEntries bounds the shared cell cache (0 selects the
	// specsched.NewCellCache default).
	CacheEntries int
	// SweepJobs caps each sweep's worker count. A spec asking for more —
	// or for the default (0 = GOMAXPROCS) — is clamped to it, so one
	// greedy job cannot monopolize the machine. 0 leaves specs alone.
	SweepJobs int
	// MaxWorkers caps each job's subprocess worker count (the spec's
	// "workers" field): a spec asking for more is clamped. Results are
	// bit-identical at any clamp — worker placement never affects cell
	// outcomes — so clamping is a resource decision, not a semantic one.
	// 0 leaves specs alone; negative forces every job in-process
	// (workers = 0) regardless of what its spec asks.
	MaxWorkers int
	// Logf receives operational log lines. Nil selects log.Printf.
	Logf func(format string, args ...any)
}

// Server owns the job table, the fair queue, and the dispatcher. Create
// one with New, expose it with Handler, stop it with Close.
type Server struct {
	cfg   Config
	cache *specsched.CellCache
	m     metrics
	logf  func(format string, args ...any)

	ctx      context.Context
	shutdown context.CancelCauseFunc
	wg       sync.WaitGroup
	wake     chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	queues   map[string][]*Job // per-client FIFO of queued jobs
	ring     []string          // round-robin order of clients ever enqueued
	rr       int               // next ring slot to serve
	queued   int
	running  int
	seq      uint64
	closed   bool
	draining bool
}

// New builds a server, recovers any persisted jobs from cfg.StateDir
// (interrupted jobs re-enqueue and resume from their checkpoints; jobs
// that had finished re-enqueue too and replay entirely from checkpoint,
// so their cells are streamable again), and starts the dispatcher.
func New(cfg Config) (*Server, error) {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 2
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    specsched.NewCellCache(cfg.CacheEntries),
		logf:     logf,
		ctx:      ctx,
		shutdown: cancel,
		wake:     make(chan struct{}, 1),
		jobs:     make(map[string]*Job),
		queues:   make(map[string][]*Job),
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			cancel(nil)
			return nil, fmt.Errorf("service: state dir: %w", err)
		}
		if err := s.recover(); err != nil {
			cancel(nil)
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Cache exposes the shared cell cache (for stats).
func (s *Server) Cache() *specsched.CellCache { return s.cache }

// Submit validates the spec, enqueues a job for the given client, and
// returns it. Validation errors are the façade's typed sentinels
// (ErrInvalidConfig, ErrUnknownWorkload, ErrBadTrace) — the HTTP layer
// maps them to 400s. The daemon runs raw grids, so a spec without
// configurations is rejected here even though the façade accepts one.
func (s *Server) Submit(client string, spec specsched.SweepSpec) (*Job, error) {
	if len(spec.Configs) == 0 {
		return nil, fmt.Errorf("%w: a submitted sweep needs at least one configuration", specsched.ErrInvalidConfig)
	}
	if _, err := specsched.NewSweepFromSpec(spec); err != nil {
		return nil, err
	}
	if client == "" {
		client = "default"
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	seq := s.seq
	s.seq++
	id := s.jobIDLocked(seq, client, spec)
	j := newJob(id, client, seq, spec)
	s.jobs[id] = j
	s.enqueueLocked(j)
	s.mu.Unlock()
	s.persist(j)
	s.kick()
	return j, nil
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Cancel cancels a job: a queued one leaves the queue and finishes
// immediately; a running one has its sweep context canceled and finishes
// when the sweep unwinds (already-completed cells stay streamable).
// Terminal jobs are left alone.
func (s *Server) Cancel(j *Job) {
	s.mu.Lock()
	removed := s.removeQueuedLocked(j)
	s.mu.Unlock()
	if removed {
		s.finishJob(j, JobCanceled, specsched.ErrCanceled)
		return
	}
	j.requestCancel(specsched.ErrCanceled)
}

// Close stops accepting jobs, cancels running sweeps with a shutdown
// cause (their manifests keep state "running"/"queued" so a restart
// resumes them), and waits for the dispatcher and job goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.shutdown(errShutdown)
	s.kick()
	s.wg.Wait()
}

// StartDrain begins graceful shutdown: submissions are rejected with
// ErrDraining (503 + Retry-After on the wire), /readyz flips to 503 so
// load balancers stop routing, and the dispatcher starts no further jobs —
// queued jobs keep their manifests and re-enqueue on the next daemon.
// Running sweeps are untouched; pair with AwaitIdle to let them finish,
// then Close to park whatever remains (checkpoints make parked jobs
// resumable). Idempotent.
func (s *Server) StartDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.logf("drain: admitting no new jobs; waiting for running sweeps")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the daemon should receive traffic: constructed,
// not draining, not closed. The /readyz endpoint is its wire form.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.closed
}

// AwaitIdle blocks until no job is running (queued jobs do not count —
// during a drain they will never start) or ctx expires, returning the
// context error in the latter case.
func (s *Server) AwaitIdle(ctx context.Context) error {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		idle := s.running == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// QueueDepth returns how many jobs the given client currently has queued
// (the 429 error body reports it so clients can back off proportionally).
func (s *Server) QueueDepth(client string) int {
	if client == "" {
		client = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[client])
}

// kick nudges the dispatcher without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch is the scheduler loop: as long as a run slot is free it starts
// the next job the fairness policy picks, then sleeps until kicked.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.running < s.cfg.MaxRunning && !s.draining {
			j := s.nextLocked()
			if j == nil {
				break
			}
			s.running++
			s.wg.Add(1)
			go s.runJob(j)
		}
		s.mu.Unlock()
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
	}
}

// enqueueLocked appends the job to its client's FIFO, registering the
// client in the round-robin ring on first contact.
func (s *Server) enqueueLocked(j *Job) {
	if _, ok := s.queues[j.Client]; !ok {
		if !slicesContains(s.ring, j.Client) {
			s.ring = append(s.ring, j.Client)
		}
	}
	s.queues[j.Client] = append(s.queues[j.Client], j)
	s.queued++
}

func slicesContains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// nextLocked implements per-client round-robin: starting after the last
// served client, take the head of the first non-empty client queue. A
// client that floods the queue therefore only delays its own jobs — other
// clients' heads are served in between.
func (s *Server) nextLocked() *Job {
	n := len(s.ring)
	for i := 0; i < n; i++ {
		slot := (s.rr + i) % n
		client := s.ring[slot]
		q := s.queues[client]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[client] = q[1:]
		s.queued--
		s.rr = (slot + 1) % n
		return j
	}
	return nil
}

// removeQueuedLocked pulls a still-queued job out of its client's FIFO;
// it reports false if the job already left the queue (running/terminal).
func (s *Server) removeQueuedLocked(j *Job) bool {
	q := s.queues[j.Client]
	for i, cand := range q {
		if cand == j {
			s.queues[j.Client] = append(q[:i:i], q[i+1:]...)
			s.queued--
			return true
		}
	}
	return false
}

// runJob drives one sweep end to end through the public façade.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.kick()
	}()

	ctx, cancel := context.WithCancelCause(s.ctx)
	defer cancel(nil)
	ok, cancelPending := j.start(cancel)
	if !ok {
		return
	}
	if cancelPending {
		// The DELETE raced the dispatcher: the request arrived after the
		// job left the queue but before the sweep context existed.
		cancel(specsched.ErrCanceled)
	}
	s.persist(j)

	spec := j.Spec
	spec.Checkpoint = s.checkpointPath(j.ID) // daemon-owned; client paths are ignored
	if s.cfg.SweepJobs > 0 && (spec.Jobs <= 0 || spec.Jobs > s.cfg.SweepJobs) {
		spec.Jobs = s.cfg.SweepJobs
	}
	switch {
	case s.cfg.MaxWorkers < 0:
		spec.Workers = 0 // per-job isolation disabled daemon-wide
	case s.cfg.MaxWorkers > 0 && spec.Workers > s.cfg.MaxWorkers:
		spec.Workers = s.cfg.MaxWorkers
	}
	sweep, err := specsched.NewSweepFromSpec(spec,
		specsched.SweepCellCache(s.cache),
		specsched.SweepProgress(func(p specsched.Progress) {
			s.m.onProgress(p)
			j.noteTotal(p.Total)
		}),
	)
	if err != nil {
		s.finishJob(j, JobFailed, err)
		return
	}
	j.setSweep(sweep)

	var terminal error
	for cell, cerr := range sweep.Results(ctx) {
		if cell.CellRef == (specsched.CellRef{}) && cerr != nil {
			terminal = cerr
			break
		}
		j.appendCell(cell)
	}
	switch {
	case terminal == nil:
		s.finishJob(j, JobDone, nil)
	case errors.Is(terminal, specsched.ErrCanceled) && j.cancelRequested():
		s.finishJob(j, JobCanceled, terminal)
	case errors.Is(terminal, specsched.ErrCanceled) && s.ctx.Err() != nil:
		// Daemon shutdown, not a job outcome: the manifest still says
		// "running", so the next daemon re-enqueues and resumes from the
		// checkpoint. Wake streamers so they observe the stall and bail.
		j.notifyAll()
	default:
		s.finishJob(j, JobFailed, terminal)
	}
}

// finishJob applies a terminal transition once, then records metrics and
// persists the final manifest.
func (s *Server) finishJob(j *Job, state JobState, err error) {
	if !j.finish(state, err) {
		return
	}
	var fr specsched.FailureReport
	if sweep := j.sweepRef(); sweep != nil {
		fr = sweep.FailureReport()
	}
	s.m.onJobFinish(state, fr)
	s.persist(j)
	if err != nil && state == JobFailed {
		s.logf("job %s failed: %v", j.ID, err)
	}
}

// manifest is the persisted form of a job: identity, submitted spec, and
// last known state. It deliberately omits the cell log — cells live in
// the checkpoint, which is the recovery source of truth.
type manifest struct {
	ID     string              `json:"id"`
	Client string              `json:"client"`
	Seq    uint64              `json:"seq"`
	State  JobState            `json:"state"`
	Error  string              `json:"error,omitempty"`
	Spec   specsched.SweepSpec `json:"spec"`
}

func (s *Server) manifestPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".job")
}

func (s *Server) checkpointPath(id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, id+".ckpt")
}

// persist writes the job's manifest atomically (temp file + rename).
// Best-effort: a write failure degrades recovery, not the job.
func (s *Server) persist(j *Job) {
	if s.cfg.StateDir == "" {
		return
	}
	j.mu.Lock()
	m := manifest{ID: j.ID, Client: j.Client, Seq: j.seq, State: j.state, Spec: j.Spec}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		s.logf("job %s: manifest marshal: %v", j.ID, err)
		return
	}
	path := s.manifestPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		s.logf("job %s: manifest write: %v", j.ID, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.logf("job %s: manifest rename: %v", j.ID, err)
	}
}

// recover reloads persisted jobs. Interrupted jobs (queued or running at
// the time of death) re-enqueue and resume from their checkpoints; done
// jobs re-enqueue too and replay entirely from checkpoint so their cells
// are streamable again; failed and canceled jobs stay terminal.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("service: recover: %w", err)
	}
	var revived []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".job") {
			continue
		}
		path := filepath.Join(s.cfg.StateDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			s.logf("recover: %s: %v (skipped)", e.Name(), err)
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID == "" {
			s.logf("recover: %s: bad manifest (skipped)", e.Name())
			continue
		}
		j := newJob(m.ID, m.Client, m.Seq, m.Spec)
		if m.Seq >= s.seq {
			s.seq = m.Seq + 1
		}
		switch m.State {
		case JobFailed, JobCanceled:
			j.state = m.State
			if m.Error != "" {
				j.err = errors.New(m.Error)
			}
			close(j.done)
			s.jobs[j.ID] = j
		default: // queued, running, done — all replay through the checkpoint
			s.jobs[j.ID] = j
			revived = append(revived, j)
		}
	}
	sort.Slice(revived, func(a, b int) bool { return revived[a].seq < revived[b].seq })
	for _, j := range revived {
		s.enqueueLocked(j)
	}
	if len(s.jobs) > 0 {
		s.logf("recovered %d job(s), %d re-enqueued", len(s.jobs), len(revived))
	}
	return nil
}

// jobIDLocked derives a short collision-checked ID from the submission.
func (s *Server) jobIDLocked(seq uint64, client string, spec specsched.SweepSpec) string {
	raw, _ := json.Marshal(spec)
	for salt := uint64(0); ; salt++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d\x00%d\x00%s\x00", seq, salt, client)
		h.Write(raw)
		id := fmt.Sprintf("j%012x", h.Sum64()&0xffffffffffff)
		if _, taken := s.jobs[id]; !taken {
			return id
		}
	}
}
