package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"specsched"
)

// metrics is the daemon's hand-rolled Prometheus instrumentation: a fixed
// set of atomic counters rendered in the text exposition format (version
// 0.0.4) by render. No client library — the format is three line shapes
// (# HELP, # TYPE, name value) and the daemon needs nothing fancier.
type metrics struct {
	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64

	cellsCompleted  atomic.Int64 // cells finished across all jobs (any outcome)
	cellsFailed     atomic.Int64
	cellsCheckpoint atomic.Int64 // served from a job's resume checkpoint
	cellRetries     atomic.Int64 // extra attempts beyond each cell's first
	abandoned       atomic.Int64 // goroutines abandoned to timeouts/stalls

	workerRestarts  atomic.Int64 // subprocess workers respawned after a crash
	cellsReassigned atomic.Int64 // cell attempts lost to worker deaths, retried elsewhere
}

// onProgress folds one finished-cell progress event into the counters.
func (m *metrics) onProgress(p specsched.Progress) {
	m.cellsCompleted.Add(1)
	if p.Err != nil {
		m.cellsFailed.Add(1)
	}
	if p.IsCache {
		m.cellsCheckpoint.Add(1)
	}
	if p.Attempts > 1 {
		m.cellRetries.Add(int64(p.Attempts - 1))
	}
}

// onJobFinish records a job's terminal state and its failure-report
// residuals that have no per-cell progress event.
func (m *metrics) onJobFinish(state JobState, fr specsched.FailureReport) {
	switch state {
	case JobDone:
		m.jobsDone.Add(1)
	case JobFailed:
		m.jobsFailed.Add(1)
	case JobCanceled:
		m.jobsCanceled.Add(1)
	}
	m.abandoned.Add(int64(fr.Abandoned))
	m.workerRestarts.Add(int64(fr.WorkerRestarts))
	m.cellsReassigned.Add(int64(fr.WorkerReassigned))
}

// gauges are the point-in-time values render needs from the server.
type gauges struct {
	queued, running int
	ready           bool
	cache           specsched.CellCacheStats
}

// render writes the exposition text. Counter names follow the Prometheus
// conventions (unit suffix, _total for counters).
func (m *metrics) render(w io.Writer, g gauges) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("specschedd_jobs_queued", "Jobs waiting in the submission queue.", int64(g.queued))
	gauge("specschedd_jobs_running", "Jobs currently executing their sweep.", int64(g.running))
	counter("specschedd_jobs_completed_total", "Jobs that reached the done state.", m.jobsDone.Load())
	counter("specschedd_jobs_failed_total", "Jobs that reached the failed state.", m.jobsFailed.Load())
	counter("specschedd_jobs_canceled_total", "Jobs canceled by clients or shutdown.", m.jobsCanceled.Load())
	counter("specschedd_cells_completed_total", "Sweep cells finished across all jobs (any outcome).", m.cellsCompleted.Load())
	counter("specschedd_cells_failed_total", "Sweep cells whose final outcome was an error.", m.cellsFailed.Load())
	counter("specschedd_cells_checkpoint_total", "Cells satisfied from a job's resume checkpoint.", m.cellsCheckpoint.Load())
	counter("specschedd_cells_simulated_total", "Cells actually simulated through the shared cell cache.", g.cache.Simulated)
	counter("specschedd_cells_deduped_total", "Cells that shared a concurrent job's in-flight simulation.", g.cache.Deduped)
	counter("specschedd_cells_cache_hits_total", "Cells served from the shared result cache's LRU.", g.cache.Hits)
	gauge("specschedd_cache_entries", "Cell results currently retained in the shared cache.", int64(g.cache.Entries))
	counter("specschedd_cell_retries_total", "Extra per-cell attempts spent on transient-failure retries.", m.cellRetries.Load())
	counter("specschedd_cells_abandoned_total", "Goroutines abandoned to timed-out or stalled cells.", m.abandoned.Load())
	counter("specschedd_worker_restarts_total", "Subprocess cell workers respawned after a crash.", m.workerRestarts.Load())
	counter("specschedd_cells_reassigned_total", "Cell attempts lost to worker deaths and reassigned via retry.", m.cellsReassigned.Load())
	ready := int64(0)
	if g.ready {
		ready = 1
	}
	gauge("specschedd_ready", "Whether the daemon admits new jobs (0 while draining).", ready)
}
