package trace

import (
	"testing"

	"specsched/internal/uop"
)

func collect(s uop.Stream, n int) []uop.UOp {
	out := make([]uop.UOp, 0, n)
	for i := 0; i < n; i++ {
		u, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, u)
	}
	return out
}

func TestGeneratorDeterminism(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	a := collect(New(p), 5000)
	b := collect(New(p), 5000)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at µ-op %d: %v vs %v", i, a[i].String(), b[i].String())
		}
	}
}

func TestGeneratorSeqMonotone(t *testing.T) {
	g := New(Profiles()[0])
	var prev int64
	for i := 0; i < 10000; i++ {
		u, _ := g.Next()
		if u.Seq <= prev {
			t.Fatalf("sequence not monotone at %d: %d after %d", i, u.Seq, prev)
		}
		prev = u.Seq
	}
}

func TestAllProfilesValidAndRunnable(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			g := New(p)
			us := collect(g, 20000)
			if len(us) != 20000 {
				t.Fatalf("stream ended early: %d", len(us))
			}
			var loads, stores, branches, fp float64
			for i := range us {
				switch us[i].Class {
				case uop.ClassLoad:
					loads++
				case uop.ClassStore:
					stores++
				case uop.ClassBranch:
					branches++
				case uop.ClassFP, uop.ClassFPMul, uop.ClassFPDiv:
					fp++
				}
			}
			n := float64(len(us))
			// Branches: one per block; the effective non-branch slot
			// fraction plus jitter allows a loose band.
			if branches/n < 0.03 || branches/n > 0.35 {
				t.Errorf("branch fraction %.3f out of band", branches/n)
			}
			// The dynamic load fraction tracks the static one only
			// loosely (hot inner loops skew it), so allow [0.4x, 2x].
			wantLoads := p.LoadFrac * (1 - branches/n)
			if loads/n < 0.4*wantLoads || loads/n > 2*wantLoads {
				t.Errorf("load fraction %.3f, configured %.3f", loads/n, wantLoads)
			}
			if p.FPFrac == 0 && fp > 0 {
				t.Errorf("INT profile emitted %v FP µ-ops", fp)
			}
		})
	}
}

func TestProfileNamesMatchPaperSuite(t *testing.T) {
	names := ProfileNames()
	if len(names) != 36 {
		t.Fatalf("suite has %d workloads, want 36 (Table 2)", len(names))
	}
	for _, want := range []string{"swim", "mcf", "libquantum", "xalancbmk", "crafty", "GemsFDTD"} {
		if _, err := ByName(want); err != nil {
			t.Errorf("missing paper benchmark %q", want)
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark lookup should fail")
	}
}

func TestBranchTargetsAreBlockStarts(t *testing.T) {
	g := New(Profiles()[2]) // swim
	valid := map[uint64]bool{}
	for i := range g.program {
		valid[g.program[i].pc] = true
	}
	for i := 0; i < 20000; i++ {
		u, _ := g.Next()
		if u.Class == uop.ClassBranch && !valid[u.Target] {
			t.Fatalf("branch target %#x is not a block start", u.Target)
		}
	}
}

func TestControlFlowConsistency(t *testing.T) {
	// After a taken branch, the next µ-op's PC must equal the target;
	// after a not-taken branch it must be the fall-through block.
	g := New(Profiles()[5]) // vpr
	var lastBranch *uop.UOp
	for i := 0; i < 30000; i++ {
		u, _ := g.Next()
		if lastBranch != nil {
			if u.PC != lastBranch.Target {
				t.Fatalf("after branch (taken=%t) expected PC %#x, got %#x",
					lastBranch.Taken, lastBranch.Target, u.PC)
			}
			lastBranch = nil
		}
		if u.Class == uop.ClassBranch {
			c := u
			lastBranch = &c
		}
	}
}

func TestChaseLoadsSerialized(t *testing.T) {
	p := Profile{
		Name: "chase-only", Seed: 9, Blocks: 2, BlockLen: 2,
		LoadFrac: 0.85, MeanDepDist: 2, UseBaseFrac: 0,
		Agens: []AgenSpec{bigChase(1)},
	}
	g := New(p)
	// Every chase load's Src1 must equal the previous load's Dest for the
	// same static slot.
	lastDest := map[uint64]int{}
	checked := 0
	for i := 0; i < 5000; i++ {
		u, _ := g.Next()
		if u.Class != uop.ClassLoad {
			continue
		}
		if prev, ok := lastDest[u.PC]; ok {
			if u.Src1 != prev {
				t.Fatalf("chase load at %#x reads r%d, previous dest was r%d", u.PC, u.Src1, prev)
			}
			checked++
		}
		lastDest[u.PC] = u.Dest
	}
	if checked == 0 {
		t.Fatal("no chase pairs checked")
	}
}

func TestStrideAgenWraps(t *testing.T) {
	r := newAgenForTest(AgenSpec{Kind: AgenStride, Footprint: 1024, Stride: 64})
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.next()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("stride-64 walk over 1KB touched %d addresses, want 16", len(seen))
	}
}

func TestRandomAgenStaysInFootprint(t *testing.T) {
	a := newAgenForTest(AgenSpec{Kind: AgenRandom, Footprint: 4096})
	for i := 0; i < 1000; i++ {
		addr := a.next()
		if addr-a.base > 4095 {
			t.Fatalf("address %#x outside footprint", addr)
		}
		if addr%8 != 0 {
			t.Fatalf("address %#x not 8-byte aligned", addr)
		}
	}
}

func TestPointerChaseKernel(t *testing.T) {
	k := NewPointerChase(3, 64)
	us := collect(k, 64*3)
	loads := 0
	var addrs []uint64
	for i := range us {
		if us[i].Class == uop.ClassLoad {
			loads++
			addrs = append(addrs, us[i].Addr)
			// Serialization: load reads the register it writes.
			if us[i].Src1 != us[i].Dest {
				t.Fatal("chase load must read its own previous destination")
			}
		}
	}
	if loads != 64 {
		t.Fatalf("loads = %d, want 64 (one per iteration)", loads)
	}
	// Sattolo cycle: all 64 node addresses distinct.
	seen := map[uint64]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if len(seen) != 64 {
		t.Fatalf("chase visited %d distinct nodes, want 64", len(seen))
	}
}

func TestStreamSumKernel(t *testing.T) {
	k := NewStreamSum(4096)
	us := collect(k, 1000)
	// Unrolled by 4: 4 loads, 5 ALU, 1 branch per 10 µ-ops.
	loads, alus, brs := 0, 0, 0
	for i := range us {
		switch us[i].Class {
		case uop.ClassLoad:
			loads++
		case uop.ClassALU:
			alus++
		case uop.ClassBranch:
			brs++
		}
	}
	if loads != 400 || alus != 500 || brs != 100 {
		t.Fatalf("mix = %d loads / %d alus / %d branches, want 400/500/100", loads, alus, brs)
	}
	// Addresses stride by 8 within the footprint.
	var prev uint64
	for i := range us {
		if us[i].Class == uop.ClassLoad {
			if prev != 0 && us[i].Addr != prev+8 && us[i].Addr >= prev {
				t.Fatalf("stream not sequential: %#x after %#x", us[i].Addr, prev)
			}
			prev = us[i].Addr
		}
	}
}

func TestStencilKernelBankPattern(t *testing.T) {
	k := NewStencil(64 << 10)
	us := collect(k, 500)
	// The two loads of each iteration must map to the same bank
	// (bits 3..5 of the address equal) but different sets.
	var pair []uint64
	checked := 0
	for i := range us {
		if us[i].Class == uop.ClassLoad {
			pair = append(pair, us[i].Addr)
			if len(pair) == 2 {
				b0 := (pair[0] >> 3) & 7
				b1 := (pair[1] >> 3) & 7
				if b0 != b1 {
					t.Fatalf("stencil loads hit banks %d and %d, want equal", b0, b1)
				}
				s0 := (pair[0] >> 6) & 63
				s1 := (pair[1] >> 6) & 63
				if s0 == s1 {
					t.Fatalf("stencil loads share set %d; conflict would be hidden by the SLB", s0)
				}
				pair = pair[:0]
				checked++
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d load pairs checked", checked)
	}
}

func TestWrongPathGenerator(t *testing.T) {
	w := NewWrongPath(5, 1<<20)
	loads := 0
	for i := 0; i < 1000; i++ {
		u := w.Next()
		if !u.WrongPath || u.Seq != -1 {
			t.Fatal("wrong-path µ-op not marked")
		}
		if u.Class == uop.ClassLoad {
			loads++
			if u.Addr < 0x7f0000000 {
				t.Fatalf("wrong-path load address %#x overlaps correct-path data", u.Addr)
			}
		}
	}
	if loads < 150 || loads > 350 {
		t.Fatalf("wrong-path load fraction %d/1000 outside [150,350]", loads)
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid profile did not panic")
		}
	}()
	New(Profile{Name: "bad", Blocks: 1, BlockLen: 4})
}

// newAgenForTest builds a standalone address generator.
func newAgenForTest(spec AgenSpec) *agen {
	g := New(Profile{
		Name: "agen-host", Seed: 1, Blocks: 2, BlockLen: 1,
		Agens: []AgenSpec{spec},
	})
	return newAgen(spec, 0, g.r)
}
