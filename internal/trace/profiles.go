package trace

import (
	"fmt"
	"sort"
)

// Footprint tiers relative to the Table 1 cache sizes (32 KB L1, 1 MB L2).
const (
	fpL1   = 8 << 10   // comfortably L1-resident
	fpEdge = 64 << 10  // twice the L1: ~50% L1 miss, L2 hit
	fpL2   = 256 << 10 // misses L1, hits L2
	fpBig  = 32 << 20  // misses everything; DRAM-bound
)

// memTier classifies a benchmark's dominant memory behaviour.
type memTier uint8

const (
	tierL1    memTier = iota // cache-friendly: a few % L1 misses
	tierL2    memTier = iota // noticeable L1 misses, L2-resident
	tierEdge                 // xalancbmk-like: ~half the loads miss L1, hit L2
	tierDRAM                 // streaming or random DRAM traffic
	tierChase                // pointer chasing in DRAM
)

// brTier classifies branch predictability (approximate MPKI bands).
type brTier uint8

const (
	brEasy brTier = iota // < 1 MPKI: loop-dominated
	brMid                // 2-6 MPKI
	brHard               // 7-12 MPKI: data-dependent branches
)

// profileRow is the calibration-facing description of one benchmark; the
// generator parameters are derived from it in deriveProfile.
type profileRow struct {
	name     string
	seed     uint64
	paperIPC float64 // Table 2
	fp       bool    // floating-point benchmark
	mem      memTier
	br       brTier
	// conflictW is the weight of the bank-conflict-prone (line-stride,
	// same-bank) stream family; Fig. 4 names the benchmarks that lose
	// > 5% to banking — they get the larger weights.
	conflictW float64
	// ilp in [0,1] scales dependence looseness beyond what paperIPC
	// implies (1 = very wide dataflow).
	ilp float64
}

// rows mirrors Table 2 of the paper: 18 INT + 18 FP benchmarks with their
// reference-input IPCs on the paper's Baseline_0.
var rows = []profileRow{
	// ---- SPEC CPU2000 ----
	{name: "gzip", seed: 1001, paperIPC: 0.906, mem: tierL1, br: brHard, ilp: 0.1},
	{name: "wupwise", seed: 1002, paperIPC: 1.392, fp: true, mem: tierL1, br: brEasy, conflictW: 0.10, ilp: 0.3},
	{name: "swim", seed: 1003, paperIPC: 2.267, fp: true, mem: tierL1, br: brEasy, conflictW: 0.25, ilp: 0.6},
	{name: "mgrid", seed: 10041, paperIPC: 2.382, fp: true, mem: tierL1, br: brEasy, conflictW: 0.12, ilp: 1.0},
	{name: "applu", seed: 1005, paperIPC: 1.424, fp: true, mem: tierL2, br: brEasy, ilp: 0.85},
	{name: "vpr", seed: 1006, paperIPC: 0.681, mem: tierL2, br: brHard, ilp: 0.3},
	{name: "mesa", seed: 1007, paperIPC: 1.335, fp: true, mem: tierL1, br: brMid, ilp: 0.65},
	{name: "art", seed: 1008, paperIPC: 0.299, fp: true, mem: tierDRAM, br: brEasy, ilp: 0.55},
	{name: "equake", seed: 1009, paperIPC: 0.494, fp: true, mem: tierDRAM, br: brMid, ilp: 0.6},
	{name: "crafty", seed: 1010, paperIPC: 1.695, mem: tierL1, br: brMid, conflictW: 0.22, ilp: 0.8},
	{name: "ammp", seed: 1011, paperIPC: 1.278, fp: true, mem: tierL2, br: brEasy, ilp: 0.75},
	{name: "parser", seed: 1012, paperIPC: 0.914, mem: tierL1, br: brHard, ilp: 0.1},
	{name: "vortex", seed: 1013, paperIPC: 1.880, mem: tierL1, br: brMid, ilp: 0.55},
	{name: "twolf", seed: 1014, paperIPC: 0.476, mem: tierL2, br: brHard, ilp: 0.1},
	// ---- SPEC CPU2006 ----
	{name: "perlbench", seed: 2001, paperIPC: 1.545, mem: tierL1, br: brMid, ilp: 0.8},
	{name: "bzip2", seed: 2002, paperIPC: 0.828, mem: tierL2, br: brHard, ilp: 0.45},
	{name: "gcc", seed: 2003, paperIPC: 1.056, mem: tierL2, br: brMid, ilp: 0.6},
	{name: "gamess", seed: 2004, paperIPC: 1.879, fp: true, mem: tierL1, br: brEasy, conflictW: 0.22, ilp: 0.8},
	{name: "mcf", seed: 2005, paperIPC: 0.116, mem: tierChase, br: brHard, ilp: 0.3},
	{name: "milc", seed: 2006, paperIPC: 0.458, fp: true, mem: tierDRAM, br: brEasy, ilp: 0.75},
	{name: "gromacs", seed: 2007, paperIPC: 0.595, fp: true, mem: tierL2, br: brMid, conflictW: 0.20, ilp: 0.3},
	{name: "leslie3d", seed: 2008, paperIPC: 2.205, fp: true, mem: tierL1, br: brEasy, conflictW: 0.20, ilp: 0.6},
	{name: "namd", seed: 20091, paperIPC: 2.436, fp: true, mem: tierL1, br: brEasy, ilp: 0.9},
	{name: "gobmk", seed: 2010, paperIPC: 0.827, mem: tierL1, br: brHard, ilp: 0.05},
	{name: "soplex", seed: 2011, paperIPC: 0.258, fp: true, mem: tierDRAM, br: brMid, ilp: 0.25},
	{name: "povray", seed: 2012, paperIPC: 1.571, fp: true, mem: tierL1, br: brMid, ilp: 0.4},
	{name: "hmmer", seed: 2013, paperIPC: 2.362, mem: tierL1, br: brEasy, conflictW: 0.25, ilp: 1.0},
	{name: "sjeng", seed: 2014, paperIPC: 1.421, mem: tierL1, br: brMid, ilp: 0.5},
	{name: "GemsFDTD", seed: 2015, paperIPC: 2.312, fp: true, mem: tierL1, br: brEasy, conflictW: 0.22, ilp: 0.8},
	{name: "libquantum", seed: 2016, paperIPC: 0.399, mem: tierDRAM, br: brEasy, ilp: 0.8},
	{name: "h264ref", seed: 2017, paperIPC: 1.228, mem: tierL1, br: brMid, conflictW: 0.18, ilp: 0.15},
	{name: "lbm", seed: 2018, paperIPC: 0.362, fp: true, mem: tierDRAM, br: brEasy, ilp: 0.65},
	{name: "omnetpp", seed: 2019, paperIPC: 0.304, mem: tierChase, br: brHard, ilp: 0.45},
	{name: "astar", seed: 2020, paperIPC: 1.252, mem: tierL2, br: brMid, ilp: 0.8},
	{name: "sphinx3", seed: 2021, paperIPC: 0.776, fp: true, mem: tierL2, br: brMid, ilp: 0.5},
	{name: "xalancbmk", seed: 2022, paperIPC: 1.980, mem: tierEdge, br: brMid, ilp: 0.2},
}

// deriveProfile turns a calibration row into generator parameters. The
// mapping was calibrated against the paper's Table 2 IPCs on Baseline_0
// (see EXPERIMENTS.md for the resulting paper-vs-measured table).
func deriveProfile(r profileRow) Profile {
	p := Profile{
		Name:     r.name,
		Seed:     r.seed,
		PaperIPC: r.paperIPC,
		Blocks:   20,
		BlockLen: 7,

		LoadFrac:  0.27,
		StoreFrac: 0.09,

		MeanDepDist: 2 + 8*r.ilp,
		UseBaseFrac: 0.25 + 0.35*r.ilp,
		AddrDepFrac: 0.45 - 0.4*r.ilp,
		LoadUseFrac: 0.75 - 0.35*r.ilp,
	}
	if r.fp {
		p.FPFrac = 0.5
		p.MulDivFrac = 0.1
		p.Blocks = 12
		p.BlockLen = 13
	} else {
		p.MulDivFrac = 0.02
	}

	// Memory streams. conflictW (if any) carves weight out of the
	// L1-resident share.
	cw := r.conflictW
	switch r.mem {
	case tierL1:
		p.Agens = []AgenSpec{
			l1Stride(0.58 - cw/2), l1Rand(0.40 - cw/2),
			{Kind: AgenRandom, Footprint: fpL2, Weight: 0.02},
		}
	case tierL2:
		p.Agens = []AgenSpec{
			l1Rand(0.58 - cw/2), l1Stride(0.32 - cw/2),
			{Kind: AgenRandom, Footprint: fpL2, Weight: 0.09},
			{Kind: AgenRandom, Footprint: fpBig, Weight: 0.01},
		}
	case tierEdge:
		p.Agens = []AgenSpec{
			{Kind: AgenRandom, Footprint: fpEdge, Weight: 0.9 - cw},
			l1Rand(0.10),
		}
	case tierDRAM:
		p.Agens = []AgenSpec{
			bigStream(0.45 - cw/2),
			{Kind: AgenRandom, Footprint: fpBig, Weight: 0.15},
			l1Rand(0.40 - cw/2),
		}
	case tierChase:
		chaseW := 0.30 - 1.6*(r.ilp-0.2) // deeper chasing for lower-ILP rows
		if chaseW < 0.10 {
			chaseW = 0.10
		}
		p.Agens = []AgenSpec{
			bigChase(chaseW),
			{Kind: AgenRandom, Footprint: fpBig, Weight: 0.12},
			{Kind: AgenRandom, Footprint: fpL2, Weight: 0.20},
			l1Rand(0.68 - chaseW),
		}
	}
	if cw > 0 {
		p.Agens = append(p.Agens, conflictStride(cw, fpL1))
	}

	// Streaming DRAM codes walk arrays off loop-invariant bases: their
	// loads are mutually independent (high MLP), which is what lets real
	// streaming benchmarks survive DRAM latency.
	if r.mem == tierDRAM && r.br == brEasy {
		p.AddrDepFrac = 0.05
	}

	// Branch behaviour.
	switch r.br {
	case brEasy:
		p.InnerLoopFrac, p.LoopTrip = 0.6, 48
		p.SkipFrac, p.SkipBias = 0.15, 0.97
	case brMid:
		p.InnerLoopFrac, p.LoopTrip = 0.35, 16
		p.SkipFrac, p.SkipBias = 0.35, 0.93
		p.RandomBranchFrac = 0.01
	case brHard:
		p.InnerLoopFrac, p.LoopTrip = 0.25, 8
		p.SkipFrac, p.SkipBias = 0.40, 0.78
		p.RandomBranchFrac = 0.08
	}
	return p
}

// Common address-stream families. A line-granularity (64 B) stride with
// quadword-interleaved banks revisits the same bank every access
// (conflict-prone, like column-walking FP codes); stride 8 touches
// consecutive banks.
func l1Stride(w float64) AgenSpec {
	// Half the L1-resident footprint: the walk's lap (reuse distance)
	// stays short enough to survive L2-stream pollution under LRU.
	return AgenSpec{Kind: AgenStride, Footprint: fpL1 / 4, Stride: 8, Weight: w}
}
func l1Rand(w float64) AgenSpec { return AgenSpec{Kind: AgenRandom, Footprint: fpL1, Weight: w} }
func bigStream(w float64) AgenSpec {
	// Line stride: every access touches a fresh line, so the stream's
	// static loads miss essentially always — the behaviour the paper
	// describes for libquantum and the case the per-PC hit/miss filter
	// is designed to capture as "sure miss".
	return AgenSpec{Kind: AgenStride, Footprint: fpBig, Stride: 64, Weight: w}
}
func bigChase(w float64) AgenSpec { return AgenSpec{Kind: AgenChase, Footprint: fpBig, Weight: w} }

// conflictStride is the bank-conflict-prone family: a line-granularity walk
// that keeps hitting one bank while staying cache-resident.
func conflictStride(w float64, footprint int) AgenSpec {
	return AgenSpec{Kind: AgenStride, Footprint: footprint, Stride: 64, Weight: w}
}

// Profiles returns the full benchmark suite in the paper's table order.
func Profiles() []Profile {
	out := make([]Profile, 0, len(rows))
	for _, r := range rows {
		out = append(out, deriveProfile(r))
	}
	return out
}

// ProfileNames returns the suite's workload names in table order.
func ProfileNames() []string {
	names := make([]string, len(rows))
	for i := range rows {
		names[i] = rows[i].name
	}
	return names
}

// ByName looks a profile up by its benchmark name.
func ByName(name string) (Profile, error) {
	for _, r := range rows {
		if r.name == name {
			return deriveProfile(r), nil
		}
	}
	known := make([]string, len(rows))
	for i := range rows {
		known[i] = rows[i].name
	}
	sort.Strings(known)
	return Profile{}, fmt.Errorf("trace: unknown workload %q (known: %v)", name, known)
}
