package trace

import "specsched/internal/rng"

// AgenKind selects an address-generation pattern for memory µ-ops.
type AgenKind uint8

const (
	// AgenStride walks an array with a fixed byte stride, wrapping at the
	// footprint. Stride 64 with word-interleaved banks keeps hitting the
	// same bank (bank-conflict-prone, like column-major FP codes);
	// stride 8 touches consecutive banks.
	AgenStride AgenKind = iota
	// AgenRandom draws uniformly from the footprint; the footprint
	// relative to the cache sizes sets the miss rates.
	AgenRandom
	// AgenChase emits a serialized pointer chase: each load's address
	// depends on the previous load of the same static slot, so the loads
	// cannot overlap (mcf/omnetpp-like).
	AgenChase
)

func (k AgenKind) String() string {
	switch k {
	case AgenStride:
		return "stride"
	case AgenRandom:
		return "random"
	case AgenChase:
		return "chase"
	default:
		return "agen(?)"
	}
}

// AgenSpec describes one address-stream family of a workload profile.
type AgenSpec struct {
	Kind AgenKind
	// Footprint is the working-set size in bytes (rounded up to a power
	// of two internally).
	Footprint int
	// Stride is the byte stride for AgenStride.
	Stride int
	// Weight is the relative probability that a static memory slot of
	// the program binds to this family.
	Weight float64
}

// agen is the runtime state of one static memory slot's address stream.
type agen struct {
	kind      AgenKind
	base      uint64
	mask      uint64 // footprint-1 (power of two)
	stride    uint64
	pos       uint64
	r         *rng.RNG
	serialize bool // chase: next address depends on the previous load
}

// regionStride separates the address regions of distinct stream families.
// All static slots bound to the same family share one region, so a
// workload's data working set is the union of its families' footprints —
// not a per-slot multiple of them.
const regionStride = 1 << 28

func newAgen(spec AgenSpec, family int, r *rng.RNG) *agen {
	fp := uint64(64)
	for fp < uint64(spec.Footprint) {
		fp <<= 1
	}
	a := &agen{
		kind:   spec.Kind,
		mask:   fp - 1,
		stride: uint64(spec.Stride),
		r:      r.Fork(),
	}
	a.base = uint64(family+1) * regionStride
	a.pos = uint64(a.r.Intn(int(fp))) &^ 7
	switch spec.Kind {
	case AgenStride:
		if a.stride == 0 {
			a.stride = 8
		}
	case AgenChase:
		a.serialize = true
	}
	return a
}

// next returns the next effective address of the stream.
func (a *agen) next() uint64 {
	switch a.kind {
	case AgenStride:
		a.pos = (a.pos + a.stride) & a.mask
	default: // AgenRandom, AgenChase
		a.pos = a.r.Uint64() & a.mask &^ 7
	}
	return a.base + a.pos
}
