package trace

import (
	"specsched/internal/rng"
	"specsched/internal/uop"
)

// WrongPath synthesizes the µ-ops fetched after a mispredicted branch until
// it resolves. The paper's wrong-path instructions come from real misfetched
// code; here they are statistically plausible filler — a mix of ALU µ-ops
// and loads over a bounded region — whose only roles are to occupy issue
// slots, pollute the cache, and inflate the "Unique" issued-µ-op category
// the way real wrong-path work does (§4.2).
type WrongPath struct {
	r    *rng.RNG
	mask uint64
	base uint64
	pcs  uint64
}

// NewWrongPath constructs a wrong-path generator with its own seed;
// footprint bounds the addresses its loads touch.
func NewWrongPath(seed uint64, footprint int) *WrongPath {
	fp := uint64(64)
	for fp < uint64(footprint) {
		fp <<= 1
	}
	return &WrongPath{
		r:    rng.New(seed ^ 0x77726f6e67), // "wrong"
		mask: fp - 1,
		base: 0x7f0000000, // disjoint from correct-path data
	}
}

// Next produces one wrong-path µ-op starting at the given PC region.
func (w *WrongPath) Next() uop.UOp {
	var u uop.UOp
	w.NextInto(&u)
	return u
}

// NextInto emits one wrong-path µ-op directly into dst (hot-path variant).
// Every field is stored explicitly — a composite-literal assignment through
// the pointer would build a stack temporary and block copy it.
func (w *WrongPath) NextInto(dst *uop.UOp) bool {
	w.pcs++
	dst.Seq = -1
	dst.PC = 0x700000 + (w.pcs&1023)*4
	dst.Class = uop.ClassNop
	dst.Src1 = w.r.Intn(numIntBases)
	dst.Src2 = uop.RegNone
	dst.Dest = uop.RegNone
	dst.Addr = 0
	dst.Size = 8
	dst.Taken = false
	dst.Target = 0
	dst.WrongPath = true
	if w.r.Bool(0.25) {
		dst.Class = uop.ClassLoad
		dst.Addr = w.base + (w.r.Uint64() & w.mask &^ 7)
		dst.Dest = firstIntDest + w.r.Intn(uop.NumIntRegs-firstIntDest)
	} else {
		dst.Class = uop.ClassALU
		dst.Dest = firstIntDest + w.r.Intn(uop.NumIntRegs-firstIntDest)
	}
	return true
}
