package trace

import (
	"specsched/internal/rng"
	"specsched/internal/uop"
)

// The kernels below are exact-semantics miniature programs (as opposed to
// the statistical Profile generator): their dynamic instruction sequences
// are what a compiler would emit for the loop in question. They back the
// runnable examples and give the simulator's behaviours concrete,
// explainable stimuli.

// PointerChase emits the load-use chain of traversing a randomly permuted
// linked list of n nodes (64 B apart, one node per cache line). Every load
// depends on the previous one, so the chain exposes raw load-to-use and
// memory latency — the mcf-style worst case for speculative scheduling.
type PointerChase struct {
	perm  []uint32
	cur   uint32
	base  uint64
	seq   int64
	phase int
}

// NewPointerChase builds a chase over n nodes from a random cycle.
func NewPointerChase(seed uint64, n int) *PointerChase {
	if n < 2 {
		n = 2
	}
	r := rng.New(seed)
	perm := make([]uint32, n)
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	// Sattolo's algorithm: a single cycle through all nodes.
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i)
		order[i], order[j] = order[j], order[i]
	}
	for i := 0; i < n; i++ {
		perm[order[i]] = order[(i+1)%n]
	}
	return &PointerChase{perm: perm, base: 0x10000000}
}

// Next implements uop.Stream. Loop body: load next pointer; compare; branch
// back (always taken — the traversal is endless).
func (p *PointerChase) Next() (uop.UOp, bool) {
	p.seq++
	const (
		ptrReg = firstIntDest // holds the current node pointer
		tmpReg = firstIntDest + 1
	)
	switch p.phase {
	case 0: // load ptr = node->next
		addr := p.base + uint64(p.cur)*64
		p.cur = p.perm[p.cur]
		p.phase = 1
		return uop.UOp{
			Seq: p.seq, PC: 0x401000, Class: uop.ClassLoad,
			Src1: ptrReg, Src2: uop.RegNone, Dest: ptrReg,
			Addr: addr, Size: 8,
		}, true
	case 1: // test the pointer
		p.phase = 2
		return uop.UOp{
			Seq: p.seq, PC: 0x401004, Class: uop.ClassALU,
			Src1: ptrReg, Src2: uop.RegNone, Dest: tmpReg,
		}, true
	default: // loop back
		p.phase = 0
		return uop.UOp{
			Seq: p.seq, PC: 0x401008, Class: uop.ClassBranch,
			Src1: tmpReg, Src2: uop.RegNone, Dest: uop.RegNone,
			Taken: true, Target: 0x401000,
		}, true
	}
}

// StreamSum emits the classic reduction `for i { sum += a[i] }` over an
// array of elems 8-byte elements: a strided load stream feeding an
// accumulator chain, with a perfectly predictable loop branch every 8
// elements. Loads are independent of each other, so speculative scheduling
// shines; the footprint decides which cache level feeds the loop.
type StreamSum struct {
	elems  uint64
	i      uint64
	seq    int64
	phase  int
	unroll int
}

// NewStreamSum builds a streaming reduction over footprint bytes.
func NewStreamSum(footprint int) *StreamSum {
	e := uint64(footprint / 8)
	if e < 16 {
		e = 16
	}
	return &StreamSum{elems: e}
}

// Next implements uop.Stream. The loop is unrolled by 4: four loads, four
// adds into the accumulator, one counter add, one branch.
func (s *StreamSum) Next() (uop.UOp, bool) {
	s.seq++
	const (
		accReg  = firstIntDest
		idxReg  = firstIntDest + 1
		valBase = firstIntDest + 2
	)
	base := uint64(0x20000000)
	switch {
	case s.phase < 4: // loads
		k := s.phase
		s.phase++
		addr := base + ((s.i+uint64(k))%s.elems)*8
		return uop.UOp{
			Seq: s.seq, PC: 0x402000 + uint64(k)*4, Class: uop.ClassLoad,
			Src1: idxReg, Src2: uop.RegNone, Dest: valBase + k,
			Addr: addr, Size: 8,
		}, true
	case s.phase < 8: // adds into the accumulator
		k := s.phase - 4
		s.phase++
		return uop.UOp{
			Seq: s.seq, PC: 0x402010 + uint64(k)*4, Class: uop.ClassALU,
			Src1: accReg, Src2: valBase + k, Dest: accReg,
		}, true
	case s.phase == 8: // index increment
		s.phase++
		return uop.UOp{
			Seq: s.seq, PC: 0x402020, Class: uop.ClassALU,
			Src1: idxReg, Src2: uop.RegNone, Dest: idxReg,
		}, true
	default: // loop branch (taken except at wrap)
		s.phase = 0
		s.i += 4
		taken := s.i%s.elems != 0
		return uop.UOp{
			Seq: s.seq, PC: 0x402024, Class: uop.ClassBranch,
			Src1: idxReg, Src2: uop.RegNone, Dest: uop.RegNone,
			Taken: taken, Target: 0x402000,
		}, true
	}
}

// Stencil emits `c[i] = a[i] + b[i]` over three arrays whose bases are laid
// out so the a[i] and b[i] loads of each iteration map to the *same* L1
// bank in different sets — the bank-conflict-prone pattern Schedule
// Shifting targets (§5.1). Arrays advance by a full line each iteration.
type Stencil struct {
	lines uint64
	i     uint64
	seq   int64
	phase int
}

// NewStencil builds a conflict-prone stencil over footprint bytes per array.
func NewStencil(footprint int) *Stencil {
	l := uint64(footprint / 64)
	if l < 16 {
		l = 16
	}
	return &Stencil{lines: l}
}

// Next implements uop.Stream. Loop body: load a[i]; load b[i] (same bank,
// different set); FP add; store c[i]; branch.
func (s *Stencil) Next() (uop.UOp, bool) {
	s.seq++
	const (
		aReg = firstIntDest
		bReg = firstIntDest + 1
		cReg = firstFPDest
	)
	// Bases 0x1000 apart: identical low 12 bits walk identical banks and
	// identical quadword offsets, but different L1 sets per array index.
	baseA := uint64(0x30000000)
	baseB := uint64(0x30000000 + 0x1040)
	baseC := uint64(0x38000000)
	off := (s.i % s.lines) * 64
	switch s.phase {
	case 0:
		s.phase = 1
		return uop.UOp{Seq: s.seq, PC: 0x403000, Class: uop.ClassLoad,
			Src1: 0, Src2: uop.RegNone, Dest: aReg, Addr: baseA + off, Size: 8}, true
	case 1:
		s.phase = 2
		return uop.UOp{Seq: s.seq, PC: 0x403004, Class: uop.ClassLoad,
			Src1: 1, Src2: uop.RegNone, Dest: bReg, Addr: baseB + off, Size: 8}, true
	case 2:
		s.phase = 3
		return uop.UOp{Seq: s.seq, PC: 0x403008, Class: uop.ClassFP,
			Src1: aReg, Src2: bReg, Dest: cReg}, true
	case 3:
		s.phase = 4
		return uop.UOp{Seq: s.seq, PC: 0x40300c, Class: uop.ClassStore,
			Src1: cReg, Src2: 2, Dest: uop.RegNone, Addr: baseC + off, Size: 8}, true
	default:
		s.phase = 0
		s.i++
		taken := s.i%s.lines != 0
		return uop.UOp{Seq: s.seq, PC: 0x403010, Class: uop.ClassBranch,
			Src1: aReg, Src2: uop.RegNone, Dest: uop.RegNone,
			Taken: taken, Target: 0x403000}, true
	}
}
