// Package trace generates the deterministic, synthetic µ-op streams that
// substitute for the paper's SPEC CPU2000/2006 SimPoint slices (see
// DESIGN.md §2 for the substitution argument). A workload is a synthetic
// *program*: a static control-flow graph of basic blocks whose instruction
// slots have fixed classes, fixed register templates and — for memory
// slots — a fixed address-stream family. Walking the CFG yields a dynamic
// µ-op stream with stable per-PC behaviour, which is what the paper's
// PC-indexed predictors (hit/miss filter, criticality table, TAGE, stride
// prefetcher) require to be exercised meaningfully.
package trace

import (
	"fmt"

	"specsched/internal/rng"
	"specsched/internal/uop"
)

// Profile parameterizes a synthetic workload. The fields control the
// statistical structure that drives scheduling behaviour: instruction mix,
// dependence distances (ILP), address streams (cache hit rates and bank
// behaviour) and branch predictability.
type Profile struct {
	Name string
	Seed uint64

	// Static program shape.
	Blocks   int // number of basic blocks
	BlockLen int // mean non-branch µ-ops per block

	// Instruction mix.
	LoadFrac   float64 // fraction of slots that are loads
	StoreFrac  float64 // fraction of slots that are stores
	FPFrac     float64 // fraction of compute slots that are FP
	MulDivFrac float64 // fraction of compute slots that are long-latency

	// Dependence structure.
	MeanDepDist float64 // mean register dependence distance in µ-ops
	UseBaseFrac float64 // fraction of sources reading loop-invariant bases
	// AddrDepFrac is the fraction of (non-chase) loads whose address
	// register comes from a recent result instead of a loop-invariant
	// base — pointer arithmetic that puts the load on a dependence chain
	// and makes the load-to-use latency matter.
	AddrDepFrac float64
	// LoadUseFrac is the probability that the first compute µ-op after a
	// load consumes that load's result — the classic load-use pair that
	// makes the effective load-to-use latency visible. Real code
	// consumes almost every load quickly; without this coupling,
	// conservative scheduling (Fig. 3) would look nearly free.
	LoadUseFrac float64

	// PaperIPC is the IPC the paper's Table 2 reports for the benchmark
	// this profile imitates (0 for kernels); used for calibration checks
	// and EXPERIMENTS.md comparisons, never by the generator itself.
	PaperIPC float64

	// Address streams; memory slots bind to one family by Weight.
	Agens []AgenSpec

	// Branch behaviour (one conditional branch per block).
	InnerLoopFrac    float64 // blocks ending in a self-loop branch
	LoopTrip         int     // trip count of self-loops
	SkipFrac         float64 // blocks ending in a biased forward skip
	SkipBias         float64 // taken probability of skips
	RandomBranchFrac float64 // blocks ending in an unpredictable branch
}

// WithSeed returns a copy of the profile with its RNG seed replaced — the
// hook internal/sim uses to run decorrelated seed replicas of one workload.
// The static program shape is a function of the seed, so two replicas of a
// profile are distinct-but-statistically-alike programs.
func (p Profile) WithSeed(seed uint64) Profile {
	p.Seed = seed
	return p
}

// Validate reports obviously broken profiles.
func (p *Profile) Validate() error {
	switch {
	case p.Blocks < 2:
		return fmt.Errorf("trace: profile %q needs at least 2 blocks", p.Name)
	case p.BlockLen < 1:
		return fmt.Errorf("trace: profile %q needs positive block length", p.Name)
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.9:
		return fmt.Errorf("trace: profile %q memory mix out of range", p.Name)
	case len(p.Agens) == 0 && p.LoadFrac+p.StoreFrac > 0:
		return fmt.Errorf("trace: profile %q has memory slots but no address streams", p.Name)
	}
	return nil
}

type branchKind uint8

const (
	brLoop branchKind = iota
	brBiased
	brPattern
	brBack
)

// slotSpec is one static instruction slot of a basic block.
type slotSpec struct {
	class uop.Class
	gen   *agen // memory slots only
	// lastChaseDest is runtime state for chase slots: the architectural
	// register holding the previously loaded pointer.
	lastChaseDest int
}

type blockSpec struct {
	pc    uint64
	slots []slotSpec

	brPC     uint64
	brKind   branchKind
	trip     int
	bias     float64
	pattern  uint64
	patLen   int
	takenIdx int
	ntIdx    int
}

// Generator walks a synthetic program and implements uop.Stream. The stream
// is infinite and deterministic for a given profile.
type Generator struct {
	prof    Profile
	program []blockSpec
	r       *rng.RNG

	cur  int
	slot int
	seq  int64

	loopCount []int
	patPhase  []int

	destRing [64]int
	ringPos  int
	ringLive int

	// Precomputed geometric samplers for the two fixed means the hot
	// emission path draws from every few µ-ops.
	depDist  rng.GeometricSampler
	addrDist rng.GeometricSampler

	// pendingLoadDest is the most recent load destination not yet
	// consumed by a load-use pair, or RegNone.
	pendingLoadDest int

	nextIntDest int
	nextFPDest  int
}

// Register conventions: r0..r5 and f0..f3 are loop-invariant bases; the
// remaining registers are destination pools.
const (
	numIntBases  = 6
	numFPBases   = 4
	firstIntDest = numIntBases
	firstFPDest  = uop.NumIntRegs + numFPBases
	codeBase     = 0x400000
	blockSpan    = 0x400 // bytes of address space per block
)

// New constructs a generator for the profile. It panics on invalid
// profiles (construction is programmer-driven; presets are always valid).
func New(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:            p,
		r:               rng.New(p.Seed ^ 0xabcdef123456),
		nextIntDest:     firstIntDest,
		nextFPDest:      firstFPDest,
		pendingLoadDest: uop.RegNone,
		depDist:         rng.NewGeometricSampler(p.MeanDepDist),
		addrDist:        rng.NewGeometricSampler(3),
	}
	g.build()
	g.loopCount = make([]int, len(g.program))
	g.patPhase = make([]int, len(g.program))
	for i := range g.destRing {
		g.destRing[i] = i % numIntBases // harmless initial sources
	}
	return g
}

// build synthesizes the static program in two passes: the control-flow
// plan first (which fixes each block's expected execution frequency), then
// the instruction slots. Memory slots bind to address-stream families by
// hotness-weighted greedy deficit matching, so the *dynamic* share of each
// family tracks its configured Weight even though inner-loop blocks
// execute orders of magnitude more often than skipped ones.
func (g *Generator) build() {
	r := g.r.Fork()

	// Pass 1: branch plan and block hotness.
	type brPlan struct {
		kind    branchKind
		trip    int
		bias    float64
		pattern uint64
		patLen  int
	}
	plans := make([]brPlan, g.prof.Blocks)
	hot := make([]float64, g.prof.Blocks)
	for b := range plans {
		hot[b] = 1
		x := r.Float64()
		switch {
		case b == g.prof.Blocks-1:
			plans[b].kind = brBack
		case x < g.prof.InnerLoopFrac:
			plans[b].kind = brLoop
			plans[b].trip = g.prof.LoopTrip + r.Intn(g.prof.LoopTrip/2+1)
			hot[b] = float64(plans[b].trip)
		case x < g.prof.InnerLoopFrac+g.prof.SkipFrac:
			plans[b].kind = brBiased
			plans[b].bias = g.prof.SkipBias
		case x < g.prof.InnerLoopFrac+g.prof.SkipFrac+g.prof.RandomBranchFrac:
			plans[b].kind = brBiased
			plans[b].bias = 0.5
		default:
			plans[b].kind = brPattern
			plans[b].patLen = 2 + r.Intn(6)
			plans[b].pattern = r.Uint64()
		}
	}

	// Pass 2: slots, with deficit-matched family binding.
	totalWeight := 0.0
	for _, a := range g.prof.Agens {
		totalWeight += a.Weight
	}
	assigned := make([]float64, len(g.prof.Agens))
	assignedTotal := 0.0
	pickAgen := func(h float64) (AgenSpec, int) {
		best, bestDeficit := 0, -1e18
		for i, a := range g.prof.Agens {
			deficit := a.Weight/totalWeight*(assignedTotal+h) - assigned[i]
			if deficit > bestDeficit {
				best, bestDeficit = i, deficit
			}
		}
		assigned[best] += h
		assignedTotal += h
		return g.prof.Agens[best], best
	}

	for b := 0; b < g.prof.Blocks; b++ {
		n := g.prof.BlockLen
		if n > 2 {
			n += r.Intn(n/2+1) - n/4 // ±25% jitter
		}
		if n < 1 {
			n = 1
		}
		blk := blockSpec{pc: codeBase + uint64(b)*blockSpan}
		for s := 0; s < n; s++ {
			var spec slotSpec
			x := r.Float64()
			switch {
			case x < g.prof.LoadFrac:
				spec.class = uop.ClassLoad
				as, fam := pickAgen(hot[b])
				spec.gen = newAgen(as, fam, r)
				spec.lastChaseDest = uop.RegNone
			case x < g.prof.LoadFrac+g.prof.StoreFrac:
				spec.class = uop.ClassStore
				as, fam := pickAgen(hot[b])
				// Stores never chase.
				if as.Kind == AgenChase {
					as.Kind = AgenRandom
				}
				spec.gen = newAgen(as, fam, r)
			default:
				spec.class = g.computeClass(r, hot[b] > 1)
			}
			blk.slots = append(blk.slots, spec)
		}
		blk.brPC = blk.pc + uint64(len(blk.slots))*4

		next := (b + 1) % g.prof.Blocks
		skipTo := (b + 2) % g.prof.Blocks
		p := plans[b]
		blk.brKind = p.kind
		blk.trip = p.trip
		blk.bias = p.bias
		blk.pattern = p.pattern
		blk.patLen = p.patLen
		switch p.kind {
		case brBack:
			blk.takenIdx, blk.ntIdx = 0, 0
		case brLoop:
			blk.takenIdx, blk.ntIdx = b, next
		default:
			blk.takenIdx, blk.ntIdx = skipTo, next
		}
		g.program = append(g.program, blk)
	}
}

// computeClass draws a compute µ-op class. Unpipelined divides are never
// placed in hot loop bodies — compilers hoist them — which keeps a
// workload's throughput from being capped by a single unlucky draw.
func (g *Generator) computeClass(r *rng.RNG, hotLoop bool) uop.Class {
	fp := r.Bool(g.prof.FPFrac)
	long := r.Bool(g.prof.MulDivFrac)
	switch {
	case fp && long:
		if !hotLoop && r.Bool(0.2) {
			return uop.ClassFPDiv
		}
		return uop.ClassFPMul
	case fp:
		return uop.ClassFP
	case long:
		if !hotLoop && r.Bool(0.15) {
			return uop.ClassDiv
		}
		return uop.ClassMul
	default:
		return uop.ClassALU
	}
}

// pushDest records a newly written architectural register.
func (g *Generator) pushDest(reg int) {
	g.ringPos = (g.ringPos + 1) & 63
	g.destRing[g.ringPos] = reg
	if g.ringLive < 64 {
		g.ringLive++
	}
}

// srcReg picks a source register according to the dependence model.
func (g *Generator) srcReg() int {
	if g.r.Bool(g.prof.UseBaseFrac) || g.ringLive == 0 {
		return g.r.Intn(numIntBases)
	}
	d := g.depDist.Sample(g.r)
	if d > g.ringLive {
		d = g.ringLive
	}
	return g.destRing[(g.ringPos-d+1+64)&63]
}

// loadUseOrSrc consumes the pending load result with probability
// LoadUseFrac, else falls back to the general source model.
func (g *Generator) loadUseOrSrc() int {
	if g.pendingLoadDest != uop.RegNone && g.r.Bool(g.prof.LoadUseFrac) {
		d := g.pendingLoadDest
		g.pendingLoadDest = uop.RegNone
		return d
	}
	return g.srcReg()
}

func (g *Generator) allocIntDest() int {
	d := g.nextIntDest
	g.nextIntDest++
	if g.nextIntDest >= uop.NumIntRegs {
		g.nextIntDest = firstIntDest
	}
	return d
}

func (g *Generator) allocFPDest() int {
	d := g.nextFPDest
	g.nextFPDest++
	if g.nextFPDest >= uop.NumArchRegs {
		g.nextFPDest = firstFPDest
	}
	return d
}

// Next emits the next correct-path µ-op. The stream never ends.
func (g *Generator) Next() (uop.UOp, bool) {
	var u uop.UOp
	ok := g.NextInto(&u)
	return u, ok
}

// NextInto implements uop.StreamInto, emitting directly into dst on the
// simulator's per-µop hot path.
func (g *Generator) NextInto(dst *uop.UOp) bool {
	blk := &g.program[g.cur]
	if g.slot < len(blk.slots) {
		spec := &blk.slots[g.slot]
		g.emitSlot(blk, spec, dst)
		g.slot++
		return true
	}
	// Branch slot.
	g.emitBranch(blk, dst)
	g.slot = 0
	return true
}

func (g *Generator) emitSlot(blk *blockSpec, spec *slotSpec, dst *uop.UOp) {
	g.seq++
	// Explicit field stores: a composite-literal assignment through the
	// pointer would build a stack temporary and block copy it.
	dst.Seq = g.seq
	dst.PC = blk.pc + uint64(g.slot)*4
	dst.Class = spec.class
	dst.Src1 = uop.RegNone
	dst.Src2 = uop.RegNone
	dst.Dest = uop.RegNone
	dst.Addr = 0
	dst.Size = 8
	dst.Taken = false
	dst.Target = 0
	dst.WrongPath = false
	u := dst
	switch spec.class {
	case uop.ClassLoad:
		switch {
		case spec.gen.serialize && spec.lastChaseDest != uop.RegNone:
			u.Src1 = spec.lastChaseDest
		case g.r.Bool(g.prof.AddrDepFrac) && g.ringLive > 0:
			// Address computed from a recent result: the load joins a
			// dependence chain.
			d := g.addrDist.Sample(g.r)
			if d > g.ringLive {
				d = g.ringLive
			}
			u.Src1 = g.destRing[(g.ringPos-d+1+64)&63]
		default:
			u.Src1 = g.r.Intn(numIntBases)
		}
		u.Addr = spec.gen.next()
		u.Dest = g.allocIntDest()
		if spec.gen.serialize {
			spec.lastChaseDest = u.Dest
		}
		g.pendingLoadDest = u.Dest
		g.pushDest(u.Dest)
	case uop.ClassStore:
		u.Src1 = g.srcReg() // data
		u.Src2 = g.r.Intn(numIntBases)
		u.Addr = spec.gen.next()
	case uop.ClassFP, uop.ClassFPMul, uop.ClassFPDiv:
		u.Src1 = g.loadUseOrSrc()
		u.Src2 = g.srcReg()
		u.Dest = g.allocFPDest()
		g.pushDest(u.Dest)
	default: // ALU, Mul, Div
		u.Src1 = g.loadUseOrSrc()
		if g.r.Bool(0.6) {
			u.Src2 = g.srcReg()
		}
		u.Dest = g.allocIntDest()
		g.pushDest(u.Dest)
	}
}

func (g *Generator) emitBranch(blk *blockSpec, dst *uop.UOp) {
	g.seq++
	bIdx := g.cur
	taken := false
	switch blk.brKind {
	case brBack:
		taken = true
	case brLoop:
		g.loopCount[bIdx]++
		if g.loopCount[bIdx] < blk.trip {
			taken = true
		} else {
			g.loopCount[bIdx] = 0
		}
	case brBiased:
		taken = g.r.Bool(blk.bias)
	case brPattern:
		taken = (blk.pattern>>(uint(g.patPhase[bIdx])%uint(blk.patLen)))&1 == 1
		g.patPhase[bIdx]++
		if g.patPhase[bIdx] >= blk.patLen {
			g.patPhase[bIdx] = 0
		}
	}
	next := blk.ntIdx
	if taken {
		next = blk.takenIdx
	}
	dst.Seq = g.seq
	dst.PC = blk.brPC
	dst.Class = uop.ClassBranch
	dst.Src1 = g.destRing[g.ringPos] // depends on the latest result
	dst.Src2 = uop.RegNone
	dst.Dest = uop.RegNone
	dst.Addr = 0
	dst.Size = 0
	dst.Taken = taken
	dst.Target = g.program[next].pc
	dst.WrongPath = false
	if !taken {
		// For a not-taken branch the "target" field carries the
		// fall-through PC (the next sequential block).
		dst.Target = g.program[blk.ntIdx].pc
	}
	g.cur = next
}

// StaticSlots returns the number of static µ-op slots (including branches),
// useful for sizing expectations in tests.
func (g *Generator) StaticSlots() int {
	n := 0
	for i := range g.program {
		n += len(g.program[i].slots) + 1
	}
	return n
}
