// Package dram models the main memory of Table 1: a single-channel
// DDR3-1600 (11-11-11) with 2 ranks of 8 banks, 8 KB row buffers, an 8 B
// data bus, and periodic refresh (tREFI 7.8 µs). The model is deterministic
// and tracks, per bank, the open row and the earliest cycle the bank can
// accept a new access; the shared channel bus serializes data bursts.
//
// Calibration: a row-buffer hit on an idle bank costs
// tCAS + burst = (11+4)·5 = 75 CPU cycles, the paper's minimum read
// latency; a row conflict costs tRP + tRCD + tCAS + burst = 185 cycles,
// the paper's maximum.
package dram

import "specsched/internal/config"

const closedRow = int64(-1)

type bank struct {
	openRow int64
	readyAt int64 // earliest cycle the bank can start a new access
}

// DRAM is the memory controller + DIMM timing model. It is not safe for
// concurrent use.
type DRAM struct {
	cfg   config.DRAMConfig
	banks []bank
	// busFreeAt is the cycle at which the shared data bus becomes free.
	busFreeAt int64

	linesPerRow int
	numBanks    int

	// Statistics.
	Reads         int64
	RowHits       int64
	RowMisses     int64 // closed-row accesses
	RowConflicts  int64
	RefreshStalls int64
}

// New constructs the DRAM model from its configuration.
func New(cfg config.DRAMConfig) *DRAM {
	n := cfg.Ranks * cfg.BanksPerRank
	if n <= 0 {
		panic("dram: non-positive bank count")
	}
	if cfg.RowBytes <= 0 || cfg.CPUCyclesPerDRAMCycle <= 0 {
		panic("dram: invalid geometry")
	}
	d := &DRAM{
		cfg:         cfg,
		banks:       make([]bank, n),
		linesPerRow: cfg.RowBytes / 64,
		numBanks:    n,
	}
	for i := range d.banks {
		d.banks[i].openRow = closedRow
	}
	return d
}

// mapAddr decomposes a byte address into (bank, row). Row-adjacent lines
// stay in the same row so streaming accesses enjoy row-buffer hits; banks
// interleave at row granularity across the rank/bank space.
func (d *DRAM) mapAddr(addr uint64) (bankIdx int, row int64) {
	line := int64(addr >> 6)
	rowGlobal := line / int64(d.linesPerRow)
	bankIdx = int(rowGlobal % int64(d.numBanks))
	row = rowGlobal / int64(d.numBanks)
	return bankIdx, row
}

func (d *DRAM) cpu(dramCycles int) int64 {
	return int64(dramCycles * d.cfg.CPUCyclesPerDRAMCycle)
}

// refreshDelay pushes start past any refresh window it lands in. Refresh
// occupies all banks for TRFCCycles every TREFICycles.
func (d *DRAM) refreshDelay(start int64) int64 {
	if d.cfg.TREFICycles <= 0 || d.cfg.TRFCCycles <= 0 {
		return start
	}
	windowStart := (start / d.cfg.TREFICycles) * d.cfg.TREFICycles
	if start < windowStart+int64(d.cfg.TRFCCycles) {
		d.RefreshStalls++
		return windowStart + int64(d.cfg.TRFCCycles)
	}
	return start
}

// Access requests the 64 B line containing addr at CPU cycle now and returns
// the cycle at which the line's data has fully arrived at the controller.
// The write flag models writebacks, which occupy the bank and bus but whose
// completion time nobody waits on; Access still returns it for symmetry.
func (d *DRAM) Access(addr uint64, now int64, write bool) int64 {
	d.Reads++
	bi, row := d.mapAddr(addr)
	b := &d.banks[bi]

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	start = d.refreshDelay(start)

	var coreLat int64
	switch {
	case b.openRow == row:
		d.RowHits++
		coreLat = d.cpu(d.cfg.TCAS)
	case b.openRow == closedRow:
		d.RowMisses++
		coreLat = d.cpu(d.cfg.TRCD + d.cfg.TCAS)
	default:
		d.RowConflicts++
		coreLat = d.cpu(d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS)
	}
	b.openRow = row

	burst := d.cpu(d.cfg.BurstDRAMCycles)
	dataStart := start + coreLat + int64(d.cfg.ControllerOverhead)
	if d.busFreeAt > dataStart {
		dataStart = d.busFreeAt
	}
	d.busFreeAt = dataStart + burst
	ready := dataStart + burst

	// The bank is busy until the burst completes (a simplification of
	// tRAS/tRTP that keeps same-bank requests serialized).
	b.readyAt = ready
	_ = write
	return ready
}

// NextCompletion implements the cache package's CompletionSource. The DRAM
// model is fully demand-driven — every access computes its completion time
// at request submission and nothing fires autonomously afterwards (bank and
// bus occupancy only delay future requests, which carry their own
// completions) — so there is never a pending completion to report.
func (d *DRAM) NextCompletion(now int64) int64 { return -1 }

// MinReadLatency returns the calibrated best-case read latency (row hit,
// idle bank and bus).
func (d *DRAM) MinReadLatency() int64 {
	return d.cpu(d.cfg.TCAS+d.cfg.BurstDRAMCycles) + int64(d.cfg.ControllerOverhead)
}

// MaxUncontendedLatency returns the worst-case latency without queueing
// (row conflict: precharge + activate + CAS + burst).
func (d *DRAM) MaxUncontendedLatency() int64 {
	return d.cpu(d.cfg.TRP+d.cfg.TRCD+d.cfg.TCAS+d.cfg.BurstDRAMCycles) +
		int64(d.cfg.ControllerOverhead)
}
