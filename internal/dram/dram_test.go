package dram

import (
	"testing"

	"specsched/internal/config"
)

func newDRAM() *DRAM {
	return New(config.Default().DRAM)
}

func TestCalibrationMatchesPaper(t *testing.T) {
	d := newDRAM()
	if min := d.MinReadLatency(); min != 75 {
		t.Fatalf("min read latency = %d, want 75 (Table 1)", min)
	}
	if max := d.MaxUncontendedLatency(); max != 185 {
		t.Fatalf("max uncontended latency = %d, want 185 (Table 1)", max)
	}
}

func TestFirstAccessIsRowMiss(t *testing.T) {
	d := newDRAM()
	now := int64(2000) // avoid the refresh window at cycle 0
	ready := d.Access(0x10000, now, false)
	// Closed row: tRCD + tCAS + burst = (11+11+4)*5 = 130.
	if got := ready - now; got != 130 {
		t.Fatalf("closed-row latency = %d, want 130", got)
	}
	if d.RowMisses != 1 || d.RowHits != 0 || d.RowConflicts != 0 {
		t.Fatalf("row stats = hit %d miss %d conf %d", d.RowHits, d.RowMisses, d.RowConflicts)
	}
}

func TestRowHitAfterOpen(t *testing.T) {
	d := newDRAM()
	now := int64(2000)
	r1 := d.Access(0x10000, now, false)
	// Next line in the same row, after the bank is free.
	r2 := d.Access(0x10040, r1, false)
	if got := r2 - r1; got != 75 {
		t.Fatalf("row-hit latency = %d, want 75", got)
	}
	if d.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", d.RowHits)
	}
}

func TestRowConflictLatency(t *testing.T) {
	d := newDRAM()
	now := int64(2000)
	r1 := d.Access(0x10000, now, false)
	// Same bank, different row: rows interleave across banks at row
	// granularity, so the same bank recurs every numBanks rows.
	cfg := config.Default().DRAM
	rowBytes := uint64(cfg.RowBytes)
	numBanks := uint64(cfg.Ranks * cfg.BanksPerRank)
	conflictAddr := uint64(0x10000) + rowBytes*numBanks
	r2 := d.Access(conflictAddr, r1, false)
	if got := r2 - r1; got != 185 {
		t.Fatalf("row-conflict latency = %d, want 185", got)
	}
	if d.RowConflicts != 1 {
		t.Fatalf("RowConflicts = %d, want 1", d.RowConflicts)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d := newDRAM()
	now := int64(2000)
	r1 := d.Access(0x10000, now, false)
	// Second access to the same bank issued while the first is in flight
	// must wait for the bank.
	r2 := d.Access(0x10040, now+1, false)
	if r2 <= r1 {
		t.Fatalf("overlapping same-bank accesses: r1=%d r2=%d", r1, r2)
	}
	if got := r2 - r1; got != 75 {
		t.Fatalf("queued row-hit took %d, want 75 after bank free", got)
	}
}

func TestDifferentBanksOverlapButShareBus(t *testing.T) {
	d := newDRAM()
	cfg := config.Default().DRAM
	now := int64(2000)
	r1 := d.Access(0x10000, now, false)
	// Next row maps to the next bank.
	otherBank := uint64(0x10000) + uint64(cfg.RowBytes)
	r2 := d.Access(otherBank, now, false)
	// Both are closed-row accesses started at the same time; the second
	// burst must wait for the bus: r2 = r1 + burst.
	if got := r2 - r1; got != int64(cfg.BurstDRAMCycles*cfg.CPUCyclesPerDRAMCycle) {
		t.Fatalf("bus serialization delta = %d, want %d", got,
			cfg.BurstDRAMCycles*cfg.CPUCyclesPerDRAMCycle)
	}
}

func TestRefreshDelaysAccess(t *testing.T) {
	d := newDRAM()
	cfg := config.Default().DRAM
	// An access landing just inside a refresh window is pushed to its end.
	start := cfg.TREFICycles * 5 // beginning of the 5th window
	ready := d.Access(0x10000, start, false)
	wantStart := start + int64(cfg.TRFCCycles)
	if ready != wantStart+130 {
		t.Fatalf("refresh-delayed ready = %d, want %d", ready, wantStart+130)
	}
	if d.RefreshStalls != 1 {
		t.Fatalf("RefreshStalls = %d, want 1", d.RefreshStalls)
	}
}

func TestAccessOutsideRefreshWindowUnaffected(t *testing.T) {
	d := newDRAM()
	cfg := config.Default().DRAM
	start := cfg.TREFICycles*5 + int64(cfg.TRFCCycles) + 100
	ready := d.Access(0x10000, start, false)
	if ready-start != 130 {
		t.Fatalf("latency near refresh = %d, want 130", ready-start)
	}
}

func TestMonotoneReadyTimes(t *testing.T) {
	d := newDRAM()
	now := int64(2000)
	var prev int64
	for i := 0; i < 100; i++ {
		addr := uint64(i) * 64
		ready := d.Access(addr, now, false)
		if ready < now {
			t.Fatalf("access %d ready %d before request time %d", i, ready, now)
		}
		if ready < prev && i > 0 {
			// The shared bus serializes bursts, so completion times of
			// successive requests issued at the same cycle are monotone.
			t.Fatalf("access %d completes at %d, before previous %d", i, ready, prev)
		}
		prev = ready
	}
}

func TestStatsCount(t *testing.T) {
	d := newDRAM()
	for i := 0; i < 10; i++ {
		d.Access(uint64(i)*64, 2000, false)
	}
	if d.Reads != 10 {
		t.Fatalf("Reads = %d, want 10", d.Reads)
	}
	if d.RowHits+d.RowMisses+d.RowConflicts != 10 {
		t.Fatal("row outcome counters do not sum to access count")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := config.Default().DRAM
	bad.Ranks = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid DRAM config did not panic")
		}
	}()
	New(bad)
}

func TestBankMappingCoversAllBanks(t *testing.T) {
	d := newDRAM()
	cfg := config.Default().DRAM
	seen := map[int]bool{}
	for i := 0; i < cfg.Ranks*cfg.BanksPerRank; i++ {
		addr := uint64(i) * uint64(cfg.RowBytes)
		b, _ := d.mapAddr(addr)
		seen[b] = true
	}
	if len(seen) != cfg.Ranks*cfg.BanksPerRank {
		t.Fatalf("row-granularity addresses hit %d banks, want %d",
			len(seen), cfg.Ranks*cfg.BanksPerRank)
	}
}

func TestNextCompletionAlwaysNone(t *testing.T) {
	d := New(config.Default().DRAM)
	if got := d.NextCompletion(0); got != -1 {
		t.Fatalf("idle DRAM NextCompletion = %d, want -1", got)
	}
	ready := d.Access(0x1000, 100, false)
	// Demand-driven model: the access already carried its completion time;
	// nothing is left pending.
	if got := d.NextCompletion(100); got != -1 {
		t.Fatalf("NextCompletion after access (ready %d) = %d, want -1", ready, got)
	}
}
