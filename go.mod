module specsched

go 1.24
