module specsched

go 1.23
