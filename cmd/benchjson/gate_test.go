package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLatestBench(t *testing.T) {
	dir := t.TempDir()
	if _, err := latestBench(dir); err == nil {
		t.Error("empty dir: want an error, got a baseline")
	}
	for _, name := range []string{
		"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", // 10 > 2 numerically, not lexically
		"BENCH_3.json.bak", "BENCH_x.json", "bench-smoke.json",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Errorf("latestBench = %q, want %q", got, want)
	}
}

func TestGateEventThroughput(t *testing.T) {
	base := comparison{Name: "table2", EventMinsts: 2.0, ScanMinsts: 1.0, Speedup: 2.0}
	cases := []struct {
		name string
		cur  comparison
		ok   bool
	}{
		// Same machine, same speedup: passes.
		{"unchanged", comparison{EventMinsts: 2.0, ScanMinsts: 1.0, Speedup: 2.0}, true},
		// Twice-slower CI machine, scheduler unchanged: must still pass —
		// the scan anchor normalizes machine speed out.
		{"slow machine", comparison{EventMinsts: 1.0, ScanMinsts: 0.5, Speedup: 2.0}, true},
		// Mild regression inside the 20% allowance.
		{"within allowance", comparison{EventMinsts: 1.7, ScanMinsts: 1.0, Speedup: 1.7}, true},
		// Event path got 40% slower relative to scan: fails on any machine.
		{"real regression", comparison{EventMinsts: 1.2, ScanMinsts: 1.0, Speedup: 1.2}, false},
		{"real regression, slow machine", comparison{EventMinsts: 0.6, ScanMinsts: 0.5, Speedup: 1.2}, false},
		// Degenerate inputs never pass silently.
		{"zero scan", comparison{EventMinsts: 2.0, ScanMinsts: 0}, false},
	}
	for _, tc := range cases {
		verdict, ok := gateEventThroughput(tc.cur, base, 0.20)
		if ok != tc.ok {
			t.Errorf("%s: gate=%v, want %v (%s)", tc.name, ok, tc.ok, verdict)
		}
	}
	if _, ok := gateEventThroughput(comparison{EventMinsts: 2, ScanMinsts: 1}, comparison{}, 0.20); ok {
		t.Error("missing baseline table2 comparison must fail the gate")
	}
}

func TestFindComparison(t *testing.T) {
	list := []comparison{
		{Name: "table2", EventMinsts: 2},
		{Name: "tracereplay", EventMinsts: 3},
	}
	if got := findComparison(list, "tracereplay"); got.EventMinsts != 3 {
		t.Errorf("findComparison(tracereplay) = %+v", got)
	}
	if got := findComparison(list, "iq256"); got.Name != "" {
		t.Errorf("missing point should return zero comparison, got %+v", got)
	}
	// The gate list must keep table2 first: it is the one point every
	// baseline carries, and the only one whose absence fails the gate.
	if gatedComparisons[0] != "table2" {
		t.Errorf("gatedComparisons = %v, want table2 first", gatedComparisons)
	}
}
