// Command benchjson runs the repository's benchmark suite and writes a
// machine-readable BENCH_<n>.json so successive PRs can track the
// simulator's performance trajectory. It measures:
//
//   - every figure-regenerating experiment (table2, fig3..fig8, delays)
//     under the default event-driven scheduler: wall time, allocations,
//     and simulation throughput (Minsts/sec);
//   - the scheduler comparison: Table 2, the widened IQ=256 point, and a
//     trace-replay point (libquantum recorded in memory, then replayed
//     through the internal/traceio decoder) under both the event-driven
//     and the legacy scan wakeup/select implementations, interleaved and
//     best-of-N to shave scheduler-independent machine noise, with the
//     resulting speedup ratios.
//
// The whole suite drives the public specsched API (Simulator for the
// scheduler comparisons, Sweep.Report for the figure runs), so it doubles
// as a continuous end-to-end exercise of the façade.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_1.json] [-reps 3] [-warmup N] [-measure N]
//	                       [-jobs N] [-smoke] [-for LABEL] [-profile DIR]
//	                       [-gate BENCH_<n>.json|auto] [-maxregress 0.20]
//
// -smoke skips the figure sweep for a CI-sized run (the scheduler
// comparison is kept at the default windows and reps, so it stays
// like-for-like with committed baselines). -profile DIR writes a CPU and
// a heap profile per measured section (each figure, each scheduler
// comparison point) into DIR as <name>.cpu.pprof / <name>.heap.pprof —
// the artifacts CI uploads on every perf job, so a gate failure comes
// with the profile that explains it. -gate compares the run's Table 2
// and trace-replay event-mode throughputs against a committed baseline
// file — "auto" selects the highest-numbered BENCH_<n>.json — and exits
// non-zero on a regression beyond -maxregress; the current scan-mode
// throughput anchors each comparison so that the gate measures the
// scheduler, not the speed of the machine CI happened to land on (see
// gateEventThroughput), and each verdict names the anchor file and
// prints the nominal delta next to the scan-anchored one. Baselines
// recorded before the trace-replay point existed gate on Table 2 alone.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"specsched"
	"specsched/presets"
)

type figureResult struct {
	Name       string  `json:"name"`
	NsOp       int64   `json:"ns_op"`
	AllocsOp   uint64  `json:"allocs_op"`
	UOps       int64   `json:"uops_simulated"`
	MinstsPerS float64 `json:"minsts_per_sec"`
}

type comparison struct {
	Name        string  `json:"name"`
	EventMinsts float64 `json:"event_minsts_per_sec"`
	ScanMinsts  float64 `json:"scan_minsts_per_sec"`
	Speedup     float64 `json:"speedup"`
	// PerWorkload breaks the table2 comparison down (absent for iq256).
	PerWorkload []wlComparison `json:"per_workload,omitempty"`
}

type wlComparison struct {
	Workload string  `json:"workload"`
	EventMs  float64 `json:"event_ms"`
	ScanMs   float64 `json:"scan_ms"`
	Speedup  float64 `json:"speedup"`
}

type report struct {
	Schema     string         `json:"schema"`
	CreatedFor string         `json:"created_for"`
	GoVersion  string         `json:"go_version"`
	GOARCH     string         `json:"goarch"`
	Reps       int            `json:"reps"`
	Warmup     int64          `json:"warmup_uops"`
	Measure    int64          `json:"measure_uops"`
	Figures    []figureResult `json:"figures"`
	Scheduler  []comparison   `json:"scheduler_comparison"`
}

var benchWorkloads = []string{"swim", "hmmer", "xalancbmk", "libquantum", "mcf", "gzip"}

var ctx = context.Background()

func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// runFigure executes one named experiment on a fresh sweep and reports
// wall time, allocations, and throughput.
func runFigure(name string, warmup, measure int64, jobs int) (figureResult, error) {
	sweep := specsched.NewSweep(
		specsched.SweepWarmup(warmup),
		specsched.SweepMeasure(measure),
		specsched.SweepWorkloads(benchWorkloads...),
		specsched.SweepJobs(jobs),
	)
	a0 := mallocs()
	start := time.Now()
	if _, err := sweep.Report(ctx, name); err != nil {
		return figureResult{}, err
	}
	wall := time.Since(start)
	uops := sweep.SimulatedUOps()
	return figureResult{
		Name:       name,
		NsOp:       wall.Nanoseconds(),
		AllocsOp:   mallocs() - a0,
		UOps:       uops,
		MinstsPerS: float64(uops) / wall.Seconds() / 1e6,
	}, nil
}

// timedRun builds a fresh core for (workload, impl) and returns the
// measurement window's wall-clock seconds (construction and warmup
// excluded — results.Run.Elapsed times the measured window only).
func timedRun(workload string, impl specsched.Scheduler, warmup, measure int64) (float64, error) {
	r, err := specsched.NewSimulator(
		specsched.WithPreset(presets.Baseline(0)),
		specsched.WithWorkload(workload),
		specsched.WithWarmup(warmup),
		specsched.WithMeasure(measure),
		specsched.WithScheduler(impl),
	).Run(ctx)
	if err != nil {
		return 0, err
	}
	return r.Elapsed.Seconds(), nil
}

// table2Comparison measures the Table 2 suite (Baseline_0 over the bench
// workloads) under both scheduler implementations. The two implementations
// run back-to-back per workload and the best of reps is kept per
// (workload, impl) pair — the tightest pairing against slow drift in the
// host machine, which a whole-suite-at-a-time comparison soaks up as
// ratio noise.
func table2Comparison(warmup, measure int64, reps int) (comparison, error) {
	cmp := comparison{Name: "table2"}
	var totEv, totSc float64 // seconds
	for _, wl := range benchWorkloads {
		best := map[specsched.Scheduler]float64{}
		for i := 0; i < reps; i++ {
			for _, impl := range []specsched.Scheduler{specsched.SchedulerScan, specsched.SchedulerEvent} {
				el, err := timedRun(wl, impl, warmup, measure)
				if err != nil {
					return cmp, err
				}
				if b, ok := best[impl]; !ok || el < b {
					best[impl] = el
				}
			}
		}
		cmp.PerWorkload = append(cmp.PerWorkload, wlComparison{
			Workload: wl,
			EventMs:  1e3 * best[specsched.SchedulerEvent],
			ScanMs:   1e3 * best[specsched.SchedulerScan],
			Speedup:  best[specsched.SchedulerScan] / best[specsched.SchedulerEvent],
		})
		totEv += best[specsched.SchedulerEvent]
		totSc += best[specsched.SchedulerScan]
	}
	uops := float64(int64(len(benchWorkloads)) * measure)
	cmp.EventMinsts = uops / totEv / 1e6
	cmp.ScanMinsts = uops / totSc / 1e6
	cmp.Speedup = totSc / totEv
	return cmp, nil
}

// traceReplayComparison measures trace-replay throughput: libquantum —
// memory-bound, so it exercises quiescent-cycle skipping on the replay
// path too — is recorded once in memory, then replayed under both
// scheduler implementations, best of reps. The point guards the trace
// decoder's place on the simulator's hot path: a decoder regression
// (allocation creep, lost NextInto fast path) shows up here and nowhere
// else, because the synthetic-generation points never decode.
func traceReplayComparison(warmup, measure int64, reps int) (comparison, error) {
	var buf bytes.Buffer
	// Slack past the simulation window covers fetch-ahead into the
	// in-flight window (ROB + frontend) at the moment measurement ends.
	if err := specsched.WorkloadByName("libquantum").RecordTo(&buf, warmup+measure+16384); err != nil {
		return comparison{}, err
	}
	data := buf.Bytes()
	cmp := comparison{Name: "tracereplay"}
	best := map[specsched.Scheduler]float64{}
	for i := 0; i < reps; i++ {
		for _, impl := range []specsched.Scheduler{specsched.SchedulerScan, specsched.SchedulerEvent} {
			r, err := specsched.NewSimulator(
				specsched.WithPreset(presets.Baseline(0)),
				specsched.WithWorkloadSpec(specsched.TraceWorkloadReader(bytes.NewReader(data))),
				specsched.WithWarmup(warmup),
				specsched.WithMeasure(measure),
				specsched.WithScheduler(impl),
			).Run(ctx)
			if err != nil {
				return cmp, err
			}
			if el := r.Elapsed.Seconds(); best[impl] == 0 || el < best[impl] {
				best[impl] = el
			}
		}
	}
	uops := float64(measure)
	cmp.EventMinsts = uops / best[specsched.SchedulerEvent] / 1e6
	cmp.ScanMinsts = uops / best[specsched.SchedulerScan] / 1e6
	cmp.Speedup = best[specsched.SchedulerScan] / best[specsched.SchedulerEvent]
	return cmp, nil
}

// iq256Throughput measures steady-state core throughput on the widened
// window (256-entry IQ) point: a conservative wide machine on a
// streaming-DRAM workload, where ~100 sleeping IQ entries punish the
// per-cycle scan.
func iq256Throughput(impl specsched.Scheduler, measure int64) (float64, error) {
	r, err := specsched.NewSimulator(
		specsched.WithPreset(presets.WideWindow(presets.Baseline(0))),
		specsched.WithWorkload("libquantum"),
		specsched.WithWarmup(20000),
		specsched.WithMeasure(measure),
		specsched.WithScheduler(impl),
	).Run(ctx)
	if err != nil {
		return 0, err
	}
	return float64(r.Committed) / r.Elapsed.Seconds() / 1e6, nil
}

// latestBench returns the committed BENCH_<n>.json in dir with the highest
// n — the gate baseline "auto" resolves to, so CI keeps gating against the
// newest committed trajectory point without the workflow hard-coding a
// filename that every bench-recording PR would have to edit.
func latestBench(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err != nil || name != fmt.Sprintf("BENCH_%d.json", n) {
			continue
		}
		if n > bestN {
			best, bestN = name, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json found in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// loadBaseline reads a previously committed benchjson report.
func loadBaseline(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// gateEventThroughput decides the bench-regression gate: is the current
// Table 2 event-mode throughput more than maxRegress below the baseline's,
// after normalizing out the speed of the machine? The scan-mode
// implementation is the anchor — it is frozen legacy code, so the ratio
// cur.Scan/base.Scan estimates how fast this machine is relative to the
// machine that produced the baseline file, and the event-mode floor scales
// with it. (Algebraically this gates the event/scan speedup ratio, which
// is what a hosted CI runner can measure reproducibly.) It returns a
// human-readable verdict and whether the gate passes.
func gateEventThroughput(cur, base comparison, maxRegress float64) (string, bool) {
	if base.EventMinsts <= 0 || base.ScanMinsts <= 0 || cur.ScanMinsts <= 0 {
		return fmt.Sprintf("unusable throughputs (cur scan %.3f, base event %.3f scan %.3f)",
			cur.ScanMinsts, base.EventMinsts, base.ScanMinsts), false
	}
	machine := cur.ScanMinsts / base.ScanMinsts
	floor := base.EventMinsts * machine * (1 - maxRegress)
	// Both deltas side by side: nominal is the raw throughput change the
	// trajectory reader cares about, scan-anchored is what the gate
	// actually judges (machine speed normalized out).
	nominal := 100 * (cur.EventMinsts/base.EventMinsts - 1)
	anchored := 100 * (cur.EventMinsts/(base.EventMinsts*machine) - 1)
	verdict := fmt.Sprintf(
		"event %.3f Minsts/s vs floor %.3f (baseline event %.3f x machine factor %.2f x allowance %.0f%%); nominal %+.1f%%, scan-anchored %+.1f%%; speedup %.2fx vs baseline %.2fx",
		cur.EventMinsts, floor, base.EventMinsts, machine, 100*(1-maxRegress),
		nominal, anchored, cur.Speedup, base.Speedup)
	return verdict, cur.EventMinsts >= floor
}

// profileSection brackets one measured section with a CPU profile and
// dumps a heap profile when it finishes, as dir/<name>.cpu.pprof and
// dir/<name>.heap.pprof. With an empty dir it just runs the section.
func profileSection(dir, name string, fn func() error) error {
	if dir == "" {
		return fn()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, name+".cpu.pprof"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := pprof.StartCPUProfile(cf); err != nil {
		return err
	}
	sectionErr := fn()
	pprof.StopCPUProfile()
	hf, err := os.Create(filepath.Join(dir, name+".heap.pprof"))
	if err != nil {
		return err
	}
	defer hf.Close()
	runtime.GC() // fold transient garbage so the heap profile shows retained state
	if err := pprof.WriteHeapProfile(hf); err != nil {
		return err
	}
	return sectionErr
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output path")
	reps := flag.Int("reps", 3, "interleaved repetitions per comparison point (best-of)")
	warmup := flag.Int64("warmup", 4000, "warmup µ-ops per run")
	measure := flag.Int64("measure", 20000, "measured µ-ops per run")
	jobs := flag.Int("jobs", 0, "sweep worker goroutines for the figure runs (default: GOMAXPROCS)")
	smoke := flag.Bool("smoke", false, "CI-sized run: figure sweep skipped (comparison windows/reps unchanged)")
	profileDir := flag.String("profile", "", "directory for per-section CPU/heap pprof profiles (empty = no profiling)")
	gate := flag.String("gate", "", "baseline BENCH_<n>.json to gate Table 2 event throughput against (\"auto\" = highest-numbered committed BENCH_<n>.json)")
	maxRegress := flag.Float64("maxregress", 0.20, "allowed fractional event-throughput regression for -gate")
	createdFor := flag.String("for", "", "label recorded as created_for (what this trajectory point measures)")
	flag.Parse()

	// Resolve and load the gate baseline BEFORE anything is measured or
	// written: -gate auto must not be able to select the file this very
	// run is about to write with -out, which would gate the run against
	// itself and pass vacuously.
	var gatePath string
	var gateBase report
	if *gate != "" {
		gatePath = *gate
		if gatePath == "auto" {
			var err error
			if gatePath, err = latestBench("."); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
				os.Exit(1)
			}
			fmt.Println("gate: auto-selected baseline", gatePath)
		}
		var err error
		if gateBase, err = loadBaseline(gatePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
			os.Exit(1)
		}
	}

	// -smoke only skips the figure sweep; the scheduler comparison keeps
	// the default windows and reps. The gate's scan-anchored comparison is
	// only meaningful like-for-like with the committed baseline (recorded
	// at the defaults): quiescent-cycle skipping makes the event/scan
	// ratio depend on the measurement window, so a shrunken smoke window
	// would read as a phantom regression. The comparison itself is cheap —
	// the figure sweep is what a CI run cannot afford.

	if *createdFor == "" {
		*createdFor = "perf trajectory point"
		if *smoke {
			*createdFor = "smoke run (CI bench-regression gate)"
		}
	}
	rep := report{
		Schema:     "specsched-bench/v1",
		CreatedFor: *createdFor,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		Reps:       *reps,
		Warmup:     *warmup,
		Measure:    *measure,
	}

	// The figure sweep exercises the sweep façade end to end (it is
	// skipped in smoke mode: the gate only needs the scheduler comparison
	// below).
	if !*smoke {
		for _, name := range []string{"table2", "fig3", "fig4", "fig5", "fig7", "fig8", "delays"} {
			var fr figureResult
			err := profileSection(*profileDir, "fig-"+name, func() error {
				var err error
				fr, err = runFigure(name, *warmup, *measure, *jobs)
				return err
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
				os.Exit(1)
			}
			rep.Figures = append(rep.Figures, fr)
			fmt.Printf("%-8s %8.1f ms  %9d allocs  %6.3f Minsts/sec\n",
				name, float64(fr.NsOp)/1e6, fr.AllocsOp, fr.MinstsPerS)
		}
	}

	// Scheduler comparison: per-workload back-to-back pairs, best of reps.
	var t2 comparison
	err := profileSection(*profileDir, "cmp-table2", func() error {
		var err error
		t2, err = table2Comparison(*warmup, *measure, *reps)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: table2 comparison: %v\n", err)
		os.Exit(1)
	}
	var iqev, iqsc float64
	err = profileSection(*profileDir, "cmp-iq256", func() error {
		for i := 0; i < *reps; i++ {
			for _, m := range []struct {
				impl specsched.Scheduler
				dst  *float64
			}{{specsched.SchedulerScan, &iqsc}, {specsched.SchedulerEvent, &iqev}} {
				v, err := iq256Throughput(m.impl, 5**measure)
				if err != nil {
					return fmt.Errorf("%s: %w", m.impl, err)
				}
				if v > *m.dst {
					*m.dst = v
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: iq256: %v\n", err)
		os.Exit(1)
	}
	var tr comparison
	err = profileSection(*profileDir, "cmp-tracereplay", func() error {
		var err error
		tr, err = traceReplayComparison(*warmup, *measure, *reps)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: trace replay comparison: %v\n", err)
		os.Exit(1)
	}
	rep.Scheduler = []comparison{
		t2,
		{Name: "iq256", EventMinsts: iqev, ScanMinsts: iqsc, Speedup: iqev / iqsc},
		tr,
	}
	for _, ccmp := range rep.Scheduler {
		fmt.Printf("%-8s event %6.3f  scan %6.3f  speedup %.2fx\n",
			ccmp.Name, ccmp.EventMinsts, ccmp.ScanMinsts, ccmp.Speedup)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	if *gate != "" {
		pass := true
		for _, name := range gatedComparisons {
			base := findComparison(gateBase.Scheduler, name)
			cur := findComparison(rep.Scheduler, name)
			if base.Name == "" && name != "table2" {
				// Older committed baselines predate this comparison point;
				// table2 is the one every baseline must carry.
				fmt.Printf("gate[%s]: baseline %s has no such point, skipping\n", name, gatePath)
				continue
			}
			verdict, ok := gateEventThroughput(cur, base, *maxRegress)
			fmt.Printf("gate[%s] vs %s: %s\n", name, filepath.Base(gatePath), verdict)
			pass = pass && ok
		}
		if !pass {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION against %s\n", gatePath)
			os.Exit(1)
		}
	}
}

// gatedComparisons are the scheduler-comparison points -gate checks
// against the baseline: the Table 2 suite (generation path) and trace
// replay (decode path). Points absent from an older baseline are skipped,
// except table2, which every baseline carries.
var gatedComparisons = []string{"table2", "tracereplay"}

// findComparison returns the named comparison, or a zero value whose empty
// Name marks it missing.
func findComparison(list []comparison, name string) comparison {
	for _, c := range list {
		if c.Name == name {
			return c
		}
	}
	return comparison{}
}
