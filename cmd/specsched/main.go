// Command specsched runs a single workload on a single configuration and
// prints the detailed statistics — the entry point for exploring the
// simulator interactively. It is built entirely on the public specsched
// API; see examples/quickstart for the embeddable equivalent.
//
// Usage:
//
//	specsched [-config SpecSched_4_Crit] [-workload xalancbmk]
//	          [-measure N] [-warmup N] [-scheduler event|scan] [-list]
//	          [-spec FILE] [-dump]
//
// -spec FILE runs a whole sweep from a declarative SweepSpec JSON file
// (the same wire format specschedd accepts) and prints one line per cell.
// -dump prints the effective SweepSpec of the invocation — flag-built or
// -spec-loaded — as JSON and exits, turning flags into a submittable file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"specsched"
	"specsched/presets"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	// Must run before anything else: when this process was re-exec'd as a
	// sweep cell worker, it serves cells and never returns.
	specsched.MaybeWorker()
	cfgName := flag.String("config", "SpecSched_4", "configuration preset")
	workload := flag.String("workload", "xalancbmk", "workload name")
	measure := flag.Int64("measure", 100000, "measured µ-ops")
	warmup := flag.Int64("warmup", 20000, "warmup µ-ops")
	scheduler := flag.String("scheduler", "event", "simulator wakeup/select implementation: event|scan (results are bit-identical; speed differs)")
	list := flag.Bool("list", false, "list configurations and workloads, then exit")
	specFile := flag.String("spec", "", "run a sweep from this SweepSpec JSON file instead of a single cell")
	dump := flag.Bool("dump", false, "print the effective SweepSpec as JSON and exit")
	flag.Parse()

	if *list {
		fmt.Println("configurations:")
		for _, n := range presets.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("workloads:")
		fmt.Println("  " + strings.Join(specsched.WorkloadNames(), " "))
		return
	}

	if *specFile != "" || *dump {
		runSpec(*specFile, *dump, specsched.SweepSpec{
			Configs:   []string{*cfgName},
			Workloads: []string{*workload},
			Warmup:    warmup,
			Measure:   measure,
			Scheduler: specsched.Scheduler(*scheduler),
		})
		return
	}

	sim := specsched.NewSimulator(
		specsched.WithPreset(*cfgName),
		specsched.WithWorkload(*workload),
		specsched.WithWarmup(*warmup),
		specsched.WithMeasure(*measure),
		specsched.WithScheduler(specsched.Scheduler(*scheduler)),
	)
	r, err := sim.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var paperIPC float64
	for _, w := range specsched.Workloads() {
		if w.Name == *workload {
			paperIPC = w.PaperIPC
		}
	}

	fmt.Printf("workload %s on %s (%d warmup + %d measured µ-ops)\n\n",
		r.Workload, r.Config, *warmup, r.Committed)
	fmt.Printf("  IPC                 %8.3f   (paper Table 2: %.3f)\n", r.IPC(), paperIPC)
	fmt.Printf("  cycles              %8d\n", r.Cycles)
	fmt.Printf("  issued µ-ops        %8d\n", r.Issued)
	fmt.Printf("  distinct (Unique)   %8d\n", r.Unique)
	fmt.Printf("  replayed (L1 miss)  %8d   events %d\n", r.ReplayedMiss, r.MissReplayEvents)
	fmt.Printf("  replayed (bank)     %8d   events %d\n", r.ReplayedBank, r.BankReplayEvents)
	fmt.Printf("  loads               %8d   L1 miss rate %.3f, bank conflicts %d\n",
		r.Loads, r.L1MissRate(), r.BankConflicts)
	fmt.Printf("  spec wakeups        %8d   delayed wakeups %d\n", r.LoadsSpecWakeup, r.LoadsDelayedWakeup)
	fmt.Printf("  branches            %8d   mispredicts %d (%.1f MPKI)\n", r.Branches, r.Mispredicts, r.MPKI())
	fmt.Printf("  mem-order violations%8d\n", r.MemOrderViolations)
	fmt.Printf("  avg IQ / ROB occ    %8.1f / %.1f\n",
		float64(r.IQOccupancySum)/float64(r.Cycles), float64(r.ROBOccupancySum)/float64(r.Cycles))
	if specsched.Scheduler(*scheduler) != specsched.SchedulerScan {
		fmt.Printf("  scheduler (event)   %8.2f wakeups/cycle, %.2f events/cycle\n",
			r.WakeupsPerCycle(), r.EventsPerCycle())
		if r.SkipSpans > 0 {
			fmt.Printf("  time skipped        %8.1f%%   (%d of %d cycles in %d spans)\n",
				100*float64(r.SkippedCycles)/float64(r.Cycles),
				r.SkippedCycles, r.Cycles, r.SkipSpans)
		}
	}
	fmt.Printf("  simulated in        %8.0f ms (%.2f Minsts/s)\n",
		r.Elapsed.Seconds()*1e3, float64(r.Committed)/r.Elapsed.Seconds()/1e6)
}

// runSpec handles the -spec/-dump sweep modes: flagSpec is the
// flag-equivalent SweepSpec used when no file is given.
func runSpec(path string, dump bool, flagSpec specsched.SweepSpec) {
	spec := flagSpec
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		spec = specsched.SweepSpec{}
		if err := json.Unmarshal(data, &spec); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	sweep, err := specsched.NewSweepFromSpec(spec)
	if err != nil {
		fatal(err)
	}
	if dump {
		data, err := json.MarshalIndent(sweep.Spec(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	failed := false
	for cell, cerr := range sweep.Results(context.Background()) {
		if cell.CellRef == (specsched.CellRef{}) && cerr != nil {
			fatal(cerr)
		}
		switch {
		case cerr != nil:
			failed = true
			fmt.Printf("%-40s FAILED: %v\n", cell.CellRef, cerr)
		default:
			note := ""
			if cell.Cached {
				note = "  (checkpoint)"
			}
			if cell.Deduped {
				note = "  (deduped)"
			}
			fmt.Printf("%-40s IPC %6.3f  cycles %9d  replays %d%s\n",
				cell.CellRef, cell.Run.IPC(), cell.Run.Cycles,
				cell.Run.ReplayedMiss+cell.Run.ReplayedBank, note)
		}
	}
	if failed {
		os.Exit(1)
	}
}
