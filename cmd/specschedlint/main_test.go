package main

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestSuiteRunsCleanOverModule is the dogfooding gate: the shipped
// analyzer suite must produce zero findings over this module itself.
// Every waiver in the tree is an explicit //lint:allow with a reason,
// so a failure here means a new invariant violation landed.
func TestSuiteRunsCleanOverModule(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool over the whole module")
	}
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(self)))

	exe := filepath.Join(t.TempDir(), "specschedlint")
	build := exec.Command("go", "build", "-o", exe, "specsched/cmd/specschedlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building specschedlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+exe, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("specschedlint found violations in the module:\n%s", out)
	}
}
