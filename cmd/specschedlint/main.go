// Command specschedlint runs the repo's analyzer suite (internal/lint):
// mechanical enforcement of the determinism, hot-path-allocation,
// API-boundary, error-taxonomy, and cancellation-poll invariants.
//
// Two modes share one binary:
//
//	specschedlint ./...          # standalone: re-execs `go vet -vettool=<self> ./...`
//	go vet -vettool=$(which specschedlint) ./...
//
// In vet mode (recognized by -V=full, -flags, or a *.cfg argument) it
// speaks the vet tool protocol; see internal/lint/unitchecker. The
// rule catalog and the `//lint:allow <analyzer>(reason)` /
// `//specsched:hotpath` / `//specsched:determinism` annotation syntax
// are documented in DESIGN.md §13.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"specsched/internal/lint"
	"specsched/internal/lint/unitchecker"
)

func main() {
	args := os.Args[1:]
	if vetMode(args) {
		os.Exit(unitchecker.Main(args, lint.Analyzers()))
	}
	if len(args) == 1 && (args[0] == "-list" || args[0] == "help") {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	os.Exit(standalone(args))
}

func vetMode(args []string) bool {
	if len(args) != 1 {
		return false
	}
	return strings.HasPrefix(args[0], "-V") || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")
}

// standalone re-executes the binary through `go vet`, which feeds each
// compilation unit back to it in vet mode — the exact pipeline CI runs,
// so local and CI findings can never disagree.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "specschedlint:", err)
		return 1
	}
	return 0
}
