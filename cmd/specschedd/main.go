// Command specschedd serves specsched sweeps over HTTP: clients POST a
// declarative SweepSpec and stream finished cells back as NDJSON or SSE.
// The daemon runs a bounded job queue with per-client round-robin
// fairness, dedupes identical cells across concurrent jobs through a
// shared result cache, and persists per-job manifests and resume
// checkpoints under -state so a killed daemon picks up where it stopped.
//
// Quickstart:
//
//	specschedd -addr :8372 -state /var/lib/specsched &
//	curl -s -X POST localhost:8372/v1/sweeps \
//	     -H 'X-Specsched-Client: alice' \
//	     -d '{"configs":["Baseline_0"],"workloads":["gcc","mcf"]}'
//	curl -sN localhost:8372/v1/sweeps/<id>/cells
//
// See EXPERIMENTS.md ("Serving sweeps") for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specsched/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("specschedd: ")

	addr := flag.String("addr", "127.0.0.1:8372", "listen address")
	state := flag.String("state", "", "state directory for job manifests and resume checkpoints (empty = in-memory only)")
	maxQueue := flag.Int("max-queue", 64, "maximum queued (not yet running) jobs")
	maxRunning := flag.Int("max-running", 2, "sweeps executed concurrently")
	cacheEntries := flag.Int("cache-entries", 0, "shared cell-result cache size (0 = default)")
	sweepJobs := flag.Int("sweep-jobs", 0, "cap each sweep's worker count (0 = honor specs)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: specschedd [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	svc, err := service.New(service.Config{
		StateDir:     *state,
		MaxQueue:     *maxQueue,
		MaxRunning:   *maxRunning,
		CacheEntries: *cacheEntries,
		SweepJobs:    *sweepJobs,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (state=%q, max-running=%d)", *addr, *state, *maxRunning)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: shutting down", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Stop sweeps first — their manifests stay "running" so the next
	// daemon resumes them from checkpoint — then drain HTTP briefly.
	// Streamers are unblocked by the service shutdown itself.
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
}
