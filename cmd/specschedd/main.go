// Command specschedd serves specsched sweeps over HTTP: clients POST a
// declarative SweepSpec and stream finished cells back as NDJSON or SSE.
// The daemon runs a bounded job queue with per-client round-robin
// fairness, dedupes identical cells across concurrent jobs through a
// shared result cache, and persists per-job manifests and resume
// checkpoints under -state so a killed daemon picks up where it stopped.
// Jobs whose spec sets "workers" execute their cells in supervised
// subprocess workers (re-execs of this binary), so a runaway simulation
// costs one worker respawn instead of the daemon.
//
// Quickstart:
//
//	specschedd -addr :8372 -state /var/lib/specsched &
//	curl -s -X POST localhost:8372/v1/sweeps \
//	     -H 'X-Specsched-Client: alice' \
//	     -d '{"configs":["Baseline_0"],"workloads":["gcc","mcf"]}'
//	curl -sN localhost:8372/v1/sweeps/<id>/cells
//
// Shutdown: SIGTERM (or SIGINT) starts a graceful drain — /readyz flips
// to 503 so load balancers stop routing, new submissions are rejected
// with Retry-After, and running sweeps get -drain-timeout to finish.
// Whatever is still running then parks: manifests and checkpoints stay on
// disk, and the next daemon resumes the work instead of recomputing it.
// A second signal skips the wait.
//
// See EXPERIMENTS.md ("Serving sweeps") for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specsched"
	"specsched/internal/service"
)

func main() {
	// Must run before anything else: when this process was re-exec'd as a
	// sweep cell worker, it serves cells and never returns.
	specsched.MaybeWorker()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("specschedd: ")

	addr := flag.String("addr", "127.0.0.1:8372", "listen address")
	state := flag.String("state", "", "state directory for job manifests and resume checkpoints (empty = in-memory only)")
	maxQueue := flag.Int("max-queue", 64, "maximum queued (not yet running) jobs")
	maxRunning := flag.Int("max-running", 2, "sweeps executed concurrently")
	cacheEntries := flag.Int("cache-entries", 0, "shared cell-result cache size (0 = default)")
	sweepJobs := flag.Int("sweep-jobs", 0, "cap each sweep's worker count (0 = honor specs)")
	maxWorkers := flag.Int("max-workers", 0, "cap each job's subprocess worker count (0 = honor specs; negative = force in-process)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running sweeps before parking them")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: specschedd [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	svc, err := service.New(service.Config{
		StateDir:     *state,
		MaxQueue:     *maxQueue,
		MaxRunning:   *maxRunning,
		CacheEntries: *cacheEntries,
		SweepJobs:    *sweepJobs,
		MaxWorkers:   *maxWorkers,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (state=%q, max-running=%d)", *addr, *state, *maxRunning)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s; signal again to skip)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatal(err)
	}

	// Graceful drain: stop admitting (429/503 + Retry-After, /readyz goes
	// 503) and give running sweeps a bounded window to finish cleanly. A
	// second signal — or the timeout — moves on to the hard phase.
	svc.StartDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigc
		log.Printf("second signal: parking running sweeps now")
		cancelDrain()
	}()
	if err := svc.AwaitIdle(drainCtx); err != nil {
		log.Printf("drain: %d sweep(s) still running; parking them for the next daemon", len(runningJobs(svc)))
	}
	cancelDrain()

	// Stop sweeps — manifests of anything still running stay "running" so
	// the next daemon resumes them from checkpoint — then drain HTTP
	// briefly. Streamers are unblocked by the service shutdown itself.
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	log.Printf("exit: drain complete")
}

// runningJobs counts jobs still executing (for the drain log line).
func runningJobs(svc *service.Server) []*service.Job {
	var out []*service.Job
	for _, j := range svc.Jobs() {
		if j.State() == service.JobRunning {
			out = append(out, j)
		}
	}
	return out
}
