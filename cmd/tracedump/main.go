// Command tracedump prints the first µ-ops of a workload's dynamic stream —
// useful for inspecting what a profile or kernel actually generates.
//
// Usage:
//
//	tracedump [-workload gzip | -kernel chase|stream|stencil] [-n 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"specsched/internal/trace"
	"specsched/internal/uop"
)

func main() {
	workload := flag.String("workload", "", "workload profile name")
	kernel := flag.String("kernel", "", "kernel name: chase, stream, stencil")
	n := flag.Int("n", 50, "number of µ-ops to print")
	flag.Parse()

	var s uop.Stream
	switch {
	case *kernel != "":
		switch *kernel {
		case "chase":
			s = trace.NewPointerChase(1, 1024)
		case "stream":
			s = trace.NewStreamSum(8 << 10)
		case "stencil":
			s = trace.NewStencil(8 << 10)
		default:
			fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
			os.Exit(1)
		}
	case *workload != "":
		p, err := trace.ByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s = trace.New(p)
	default:
		fmt.Fprintln(os.Stderr, "specify -workload or -kernel (see -h)")
		os.Exit(1)
	}

	for i := 0; i < *n; i++ {
		u, ok := s.Next()
		if !ok {
			break
		}
		fmt.Println(u.String())
	}
}
