// Command tracedump records, inspects, and prints binary µ-op traces (see
// DESIGN.md §9 for the format).
//
// Usage:
//
//	tracedump record (-workload NAME | -kernel chase|stream|stencil | -trace FILE)
//	                 [-n UOPS] -o FILE
//	tracedump info [-verify] FILE
//	tracedump cat [-n 50] (FILE | -workload NAME | -kernel NAME)
//
// record captures a workload's dynamic stream as a trace file; replaying
// the file (specsched.TraceWorkload, experiments -trace) reproduces the
// live workload's statistics bit for bit. Recording from -trace re-records
// an existing file (default: in full), which must reproduce it byte for
// byte — the determinism check the CI traces job runs. info prints a
// trace's self-describing header; -verify additionally decodes the whole
// body, checking every record against the count and content digest. cat
// prints µ-ops as text, from a trace file or live from any workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"specsched"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracedump: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracedump record (-workload NAME | -kernel chase|stream|stencil | -trace FILE) [-n UOPS] -o FILE
  tracedump info [-verify] FILE
  tracedump cat [-n 50] (FILE | -workload NAME | -kernel NAME)`)
	os.Exit(2)
}

// workloadFlags registers the shared workload-selection flags on fs.
func workloadFlags(fs *flag.FlagSet) (workload, kernel *string) {
	workload = fs.String("workload", "", "Table 2 workload profile name")
	kernel = fs.String("kernel", "", "kernel name: chase, stream, stencil")
	return
}

// selectWorkload resolves the -workload/-kernel pair (and optionally a
// positional or -trace file) to a Workload.
func selectWorkload(workload, kernel, tracePath string) (specsched.Workload, bool) {
	set := 0
	for _, s := range []string{workload, kernel, tracePath} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return specsched.Workload{}, false
	}
	switch {
	case tracePath != "":
		return specsched.TraceWorkload(tracePath), true
	case workload != "":
		return specsched.WorkloadByName(workload), true
	}
	switch kernel {
	case "chase":
		return specsched.PointerChaseWorkload(1024), true
	case "stream":
		return specsched.StreamWorkload(8 << 10), true
	case "stencil":
		return specsched.StencilWorkload(8 << 10), true
	}
	fatalf("unknown kernel %q (want chase, stream, or stencil)", kernel)
	panic("unreachable")
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload, kernel := workloadFlags(fs)
	traceIn := fs.String("trace", "", "re-record an existing trace file")
	n := fs.Int64("n", 0, "µ-ops to record (required unless re-recording; 0 = the source trace's full length)")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 0 {
		usage()
	}
	w, ok := selectWorkload(*workload, *kernel, *traceIn)
	if !ok {
		usage()
	}
	if err := w.Record(*out, *n); err != nil {
		fatalf("%v", err)
	}
	info, err := specsched.ReadTraceInfo(*out)
	if err != nil {
		fatalf("recorded but unreadable: %v", err)
	}
	fmt.Printf("wrote %s: %d µ-ops, generator %q, digest %016x\n",
		*out, info.UOps, info.Generator, info.Digest)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	verify := fs.Bool("verify", false, "decode the whole body, checking records, count, and digest")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	var (
		info specsched.TraceInfo
		err  error
	)
	if *verify {
		info, err = specsched.VerifyTrace(path)
	} else {
		info, err = specsched.ReadTraceInfo(path)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("file:            %s\n", path)
	fmt.Printf("format version:  %d\n", info.Version)
	fmt.Printf("generator:       %s\n", info.Generator)
	fmt.Printf("µ-ops:           %d\n", info.UOps)
	fmt.Printf("digest:          %016x\n", info.Digest)
	fmt.Printf("wrong-path seed: %d\n", info.WrongPathSeed)
	if *verify {
		fmt.Println("verified:        body decodes cleanly, count and digest match")
	}
}

func cmdCat(args []string) {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	workload, kernel := workloadFlags(fs)
	n := fs.Int("n", 50, "number of µ-ops to print")
	fs.Parse(args)
	tracePath := ""
	switch fs.NArg() {
	case 0:
	case 1:
		tracePath = fs.Arg(0)
	default:
		usage()
	}
	w, ok := selectWorkload(*workload, *kernel, tracePath)
	if !ok {
		usage()
	}
	uops, err := w.Trace(*n)
	if err != nil {
		fatalf("%v", err)
	}
	for _, u := range uops {
		fmt.Println(u)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "cat":
		cmdCat(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}
