// Command tracedump prints the first µ-ops of a workload's dynamic stream —
// useful for inspecting what a profile or kernel actually generates.
//
// Usage:
//
//	tracedump [-workload gzip | -kernel chase|stream|stencil] [-n 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"specsched"
)

func main() {
	workload := flag.String("workload", "", "workload profile name")
	kernel := flag.String("kernel", "", "kernel name: chase, stream, stencil")
	n := flag.Int("n", 50, "number of µ-ops to print")
	flag.Parse()

	var w specsched.Workload
	switch {
	case *kernel != "":
		switch *kernel {
		case "chase":
			w = specsched.PointerChaseWorkload(1024)
		case "stream":
			w = specsched.StreamWorkload(8 << 10)
		case "stencil":
			w = specsched.StencilWorkload(8 << 10)
		default:
			fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
			os.Exit(1)
		}
	case *workload != "":
		w = specsched.WorkloadByName(*workload)
	default:
		fmt.Fprintln(os.Stderr, "specify -workload or -kernel (see -h)")
		os.Exit(1)
	}

	uops, err := w.Trace(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, u := range uops {
		fmt.Println(u)
	}
}
