// Command experiments regenerates the paper's tables and figures as text
// reports, running the (configuration × workload × seed) grid through the
// public specsched Sweep façade (work-stealing pool, resumable
// checkpoints, context cancellation).
//
// Usage:
//
//	experiments [-exp all|table1,fig5,...] [-list]
//	            [-measure N] [-warmup N] [-workloads a,b,c] [-filter REGEX]
//	            [-trace GLOB] [-jobs N] [-workers N] [-seeds N] [-timeout DUR]
//	            [-stall-timeout DUR] [-retries N] [-retry-backoff DUR]
//	            [-chaos RATE] [-chaos-seed N] [-timeskip=false]
//	            [-resume FILE] [-json FILE] [-progress]
//	            [-spec FILE] [-dump]
//
// Each report prints the same rows/series the paper reports, normalized the
// same way (per-benchmark vs Baseline_0, geometric means); paper reference
// numbers are attached where the paper states them.
//
//	-jobs     worker goroutines for the sweep grid (default GOMAXPROCS)
//	-workers  execute cells in this many supervised worker subprocesses
//	          (re-execs of this binary) instead of in-process goroutines;
//	          results are bit-identical, but a runaway cell costs one
//	          worker respawn instead of the whole process (0 = in-process)
//	-seeds    seed replicas per (config, workload) cell, pooled into one
//	          result (default 1: the calibrated profile seeds)
//	-filter   regular expression selecting workloads (applied to the
//	          -workloads list, default the full 36-benchmark suite)
//	-trace    glob of recorded µ-op traces (see cmd/tracedump) to run the
//	          experiment grid over, each named by its file stem. Without
//	          -workloads/-filter the grid runs over the traces alone;
//	          with them, the traces are appended to the workload axis
//	          (a trace name shadows the same-named profile)
//	-timeout  per-cell wall-clock bound; a diverging cell fails alone
//	-stall-timeout
//	          per-cell stall watchdog: a cell whose simulated-cycle
//	          counter stops advancing for this long is killed early (slow
//	          but progressing cells are spared; 0 = disabled)
//	-retries  attempt budget per cell (default 1 = no retries); only
//	          transient failures — panics, timeouts, stalls — are
//	          retried, deterministic ones (bad trace, bad config) fail
//	          immediately
//	-retry-backoff
//	          delay before the first retry, doubling per attempt
//	          (default 100ms, capped at 32×)
//	-chaos    deterministic fault-injection rate (0..1) for resilience
//	          testing: each cell attempt panics or fails transiently with
//	          this probability (plus hangs when -timeout/-stall-timeout
//	          is set, and torn checkpoint writes when -resume is set),
//	          decided by a pure function of -chaos-seed and the cell, so
//	          reruns inject identical faults. Results stay bit-identical
//	          to a fault-free run; use with -retries 3 or more
//	-chaos-seed
//	          seed for the -chaos plan (default 1)
//	-timeskip quiescent-cycle skipping (default true): advance simulated
//	          time event-to-event over provably dead cycles; results are
//	          bit-identical either way, only simulator speed changes.
//	          -timeskip=false restores per-cycle stepping
//	-resume   resumable sweep checkpoint: completed cells are saved there
//	          and skipped when the sweep restarts with the same options
//	-spec     build the sweep from a declarative SweepSpec JSON file (the
//	          wire format specschedd serves; see EXPERIMENTS.md) instead
//	          of the sweep flags, with up-front validation
//	-dump     print the sweep's effective SweepSpec as JSON and exit —
//	          turns a flag invocation into a -spec/daemon-submittable file
//	-json     write the reports plus every per-(config, workload) run as
//	          machine-readable JSON
//	-progress stream per-cell completion lines to stderr
//
// SIGINT/SIGTERM cancel the sweep's context: in-flight cells stop within
// milliseconds, completed cells are flushed to the -resume checkpoint (if
// one is configured), and the command exits non-zero after printing how to
// resume.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"specsched"
	"specsched/presets"
	"specsched/results"
)

// jsonReport is the -json output schema.
type jsonReport struct {
	Schema    string           `json:"schema"`
	GoVersion string           `json:"go_version"`
	Options   jsonOptions      `json:"options"`
	Reports   []jsonExperiment `json:"reports"`
	Runs      []results.Run    `json:"runs"`
	Elapsed   float64          `json:"elapsed_sec"`
	Simulated int64            `json:"simulated_uops"`
}

type jsonOptions struct {
	Warmup    int64    `json:"warmup_uops"`
	Measure   int64    `json:"measure_uops"`
	Seeds     int      `json:"seeds"`
	Jobs      int      `json:"jobs"`
	Workloads []string `json:"workloads"`
	Traces    []string `json:"traces,omitempty"`
}

type jsonExperiment struct {
	Name   string `json:"name"`
	Report string `json:"report"`
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// Must run before anything else: when this process was re-exec'd as a
	// sweep cell worker (-workers), it serves cells and never returns.
	specsched.MaybeWorker()
	exp := flag.String("exp", "all", "experiments to run, comma-separated ("+strings.Join(specsched.Reports(), "|")+"|all)")
	list := flag.Bool("list", false, "print the known experiment names, presets, and workloads, then exit")
	measure := flag.Int64("measure", 60000, "measured µ-ops per cell")
	warmup := flag.Int64("warmup", 10000, "warmup µ-ops per cell")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all 36)")
	filter := flag.String("filter", "", "regexp selecting workloads (applied after -workloads)")
	traceGlob := flag.String("trace", "", "glob of recorded µ-op traces to run the grid over")
	jobs := flag.Int("jobs", 0, "sweep worker goroutines (default: GOMAXPROCS)")
	workers := flag.Int("workers", 0, "execute cells in this many supervised worker subprocesses (0 = in-process; bit-identical results)")
	seeds := flag.Int("seeds", 1, "seed replicas per (config, workload) cell, pooled")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock bound (0 = unbounded)")
	stallTimeout := flag.Duration("stall-timeout", 0, "kill cells whose simulated-cycle counter freezes this long (0 = disabled)")
	retries := flag.Int("retries", 1, "attempt budget per cell; transient failures retry, deterministic ones fail fast")
	retryBackoff := flag.Duration("retry-backoff", 0, "delay before the first retry, doubling per attempt (0 = 100ms default)")
	chaosRate := flag.Float64("chaos", 0, "deterministic fault-injection rate per cell attempt (0..1; testing only)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed of the -chaos fault plan")
	timeskip := flag.Bool("timeskip", true, "skip provably quiescent cycles event-to-event (bit-identical; off = per-cycle stepping)")
	resume := flag.String("resume", "", "resumable sweep checkpoint file (created if missing)")
	jsonOut := flag.String("json", "", "write reports and per-cell runs as JSON to this file")
	progress := flag.Bool("progress", false, "stream per-cell completions to stderr")
	specFile := flag.String("spec", "", "build the sweep from this SweepSpec JSON file (the sweep flags above are ignored)")
	dump := flag.Bool("dump", false, "print the sweep's effective SweepSpec as JSON and exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, n := range specsched.Reports() {
			fmt.Println("  " + n)
		}
		fmt.Println("configuration presets:")
		for _, n := range presets.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("workloads:")
		fmt.Println("  " + strings.Join(specsched.WorkloadNames(), " "))
		return
	}

	var tracePaths []string
	if *traceGlob != "" {
		var err error
		tracePaths, err = filepath.Glob(*traceGlob)
		if err != nil {
			fatalf("bad -trace glob: %v", err)
		}
		if len(tracePaths) == 0 {
			fatalf("-trace %q matches no files", *traceGlob)
		}
		sort.Strings(tracePaths)
	}

	// With -trace and no explicit workload selection, the grid runs over
	// the traces alone: pass no synthetic workloads and let the sweep's
	// default (traces only) apply.
	explicitWls := *workloads != "" || *filter != ""
	wls := specsched.WorkloadNames()
	if *workloads != "" {
		wls = strings.Split(*workloads, ",")
	}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fatalf("bad -filter: %v", err)
		}
		var kept []string
		for _, wl := range wls {
			if re.MatchString(wl) {
				kept = append(kept, wl)
			}
		}
		if len(kept) == 0 {
			fatalf("-filter %q matches none of %v", *filter, wls)
		}
		wls = kept
	}

	opts := []specsched.SweepOption{
		specsched.SweepWarmup(*warmup),
		specsched.SweepMeasure(*measure),
		specsched.SweepJobs(*jobs),
		specsched.SweepWorkers(*workers),
		specsched.SweepSeeds(*seeds),
		specsched.SweepCellTimeout(*timeout),
		specsched.SweepStallTimeout(*stallTimeout),
		specsched.SweepRetries(*retries),
		specsched.SweepRetryBackoff(*retryBackoff, 0),
		specsched.SweepCheckpoint(*resume),
		specsched.SweepTimeSkip(*timeskip),
	}
	if *chaosRate < 0 || *chaosRate > 1 {
		fatalf("-chaos %v out of range [0,1]", *chaosRate)
	}
	if *chaosRate > 0 {
		chaos := specsched.Chaos{
			Seed:          *chaosSeed,
			PanicRate:     *chaosRate,
			TransientRate: *chaosRate,
		}
		// Hangs are only recoverable when something bounds the cell, and
		// torn checkpoint writes only matter when a checkpoint exists.
		if *timeout > 0 || *stallTimeout > 0 {
			chaos.HangRate = *chaosRate
		}
		if *resume != "" {
			chaos.TornWriteRate = *chaosRate
		}
		opts = append(opts, specsched.SweepChaos(chaos))
		if *retries <= 1 {
			fmt.Fprintln(os.Stderr, "experiments: warning: -chaos without -retries > 1 will fail injected cells permanently")
		}
	}
	switch {
	case len(tracePaths) > 0 && !explicitWls:
		wls = nil
	default:
		opts = append(opts, specsched.SweepWorkloads(wls...))
	}
	if len(tracePaths) > 0 {
		opts = append(opts, specsched.SweepTraces(tracePaths...))
	}
	progressOpt := specsched.SweepProgress(func(p specsched.Progress) {
		state := fmt.Sprintf("%.2fs", p.Elapsed.Seconds())
		if p.IsCache {
			state = "checkpoint"
		}
		if p.Err != nil {
			state = "FAILED"
		}
		if p.Attempts > 1 {
			state += fmt.Sprintf(" (attempt %d)", p.Attempts)
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %-40s %s\n", p.Done, p.Total, p.Cell, state)
	})
	if *progress {
		opts = append(opts, progressOpt)
	}

	// -spec replaces the flag-built sweep wholesale with a declarative
	// SweepSpec, validated up front; the axis and resilience flags above
	// are ignored. -progress/-exp/-json still apply either way.
	var sweep *specsched.Sweep
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatalf("-spec: %v", err)
		}
		var spec specsched.SweepSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			fatalf("-spec %s: %v", *specFile, err)
		}
		var extra []specsched.SweepOption
		if *progress {
			extra = append(extra, progressOpt)
		}
		sweep, err = specsched.NewSweepFromSpec(spec, extra...)
		if err != nil {
			fatalf("-spec %s: %v", *specFile, err)
		}
		// The summary and -json metadata describe the effective sweep.
		wls = spec.Workloads
		tracePaths = spec.Traces
	} else {
		sweep = specsched.NewSweep(opts...)
	}

	if *dump {
		data, err := json.MarshalIndent(sweep.Spec(), "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(data))
		return
	}

	// SIGINT/SIGTERM cancel the sweep context. The simulator cores poll it,
	// so in-flight cells abort within milliseconds and the checkpoint is
	// flushed with everything that completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := specsched.Reports()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	start := time.Now()
	eff := sweep.Spec() // effective options, whether flag- or -spec-built
	rep := jsonReport{
		Schema:    "specsched-experiments/v1",
		GoVersion: runtime.Version(),
		Options: jsonOptions{
			Warmup: *eff.Warmup, Measure: *eff.Measure,
			Seeds: eff.Seeds, Jobs: eff.Jobs, Workloads: wls, Traces: tracePaths,
		},
	}
	// A failed cell must not discard the rest of the sweep: report the
	// error, keep running the remaining experiments (their healthy cells
	// are cached/checkpointed already), still write -json, exit non-zero.
	// An interrupt, by contrast, stops everything — but still writes -json
	// and prints the resume hint.
	failed, interrupted := false, false
	for _, name := range names {
		out, err := sweep.Report(ctx, name)
		if err != nil {
			if errors.Is(err, specsched.ErrCanceled) {
				interrupted = true
				break
			}
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			failed = true
			continue
		}
		fmt.Println(out)
		rep.Reports = append(rep.Reports, jsonExperiment{Name: name, Report: out})
	}
	elapsed := time.Since(start)

	// End-of-run resilience summary: what failed for good, what the retry
	// machinery recovered, and whether the resume checkpoint needed
	// salvaging. Silent when nothing noteworthy happened.
	fr := sweep.FailureReport()
	if fr.CheckpointSalvage != "" {
		fmt.Fprintf(os.Stderr, "experiments: checkpoint salvaged: %s\n", fr.CheckpointSalvage)
	}
	if fr.Retries > 0 || fr.Abandoned > 0 {
		fmt.Fprintf(os.Stderr, "experiments: resilience: %d retries, %d cells recovered, %d goroutines abandoned\n",
			fr.Retries, fr.Recovered, fr.Abandoned)
	}
	if len(fr.Failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d cells failed permanently:\n", len(fr.Failed))
		for _, f := range fr.Failed {
			kind := "permanent"
			if f.Transient {
				kind = "transient; raise -retries"
			}
			fmt.Fprintf(os.Stderr, "  %-40s attempts=%d (%s): %v\n", f.Cell, f.Attempts, kind, f.Err)
		}
	}

	if interrupted {
		fmt.Fprintln(os.Stderr, "experiments: interrupted — completed cells are preserved")
		if eff.Checkpoint != "" {
			fmt.Fprintf(os.Stderr, "experiments: checkpoint flushed; resumable via -resume %s (same options)\n", eff.Checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "experiments: hint: run with -resume FILE to make interrupted sweeps resumable")
		}
	} else {
		// The sweep owns the effective workload axis (trace names shadow
		// same-named profiles); report the two inputs rather than
		// re-deriving the merge here.
		axis := fmt.Sprintf("%d workloads", len(wls))
		switch {
		case len(tracePaths) > 0 && len(wls) == 0:
			axis = fmt.Sprintf("%d traces", len(tracePaths))
		case len(tracePaths) > 0:
			axis = fmt.Sprintf("%d workloads + %d traces", len(wls), len(tracePaths))
		}
		fmt.Printf("(completed in %.1fs, %d µ-ops simulated, %s, %d seeds, jobs=%d)\n",
			elapsed.Seconds(), sweep.SimulatedUOps(), axis, eff.Seeds, effectiveJobs(eff.Jobs))
	}

	if *jsonOut != "" {
		rep.Runs = sweep.Snapshot()
		rep.Elapsed = elapsed.Seconds()
		rep.Simulated = sweep.SimulatedUOps()
		data, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("wrote", *jsonOut)
	}
	if interrupted {
		os.Exit(130)
	}
	if failed {
		os.Exit(1)
	}
}

func effectiveJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}
